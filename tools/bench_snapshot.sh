#!/usr/bin/env bash
# Captures the data-plane performance snapshot as BENCH_05.json:
#   - cells/s through the link hot path and a full switch transit
#     (BM_LinkCellHotPath / BM_SwitchForward, burst size 64)
#   - events/s through the simulator engine (BM_SimulatorEventChurn/100000)
#   - wall-clock seconds of the E05 closed-loop monitoring scenario
#     (12 simulated seconds of real cross-traffic overload + recovery)
# and the metro-scale fleet snapshot as BENCH_06.json (admission latency,
# blocking probability and sustained cells/s on the generated small and mid
# metro fabrics under Poisson session churn, from bench_e16_metro_scale),
# and the admission-plane snapshot as BENCH_07.json (open/renegotiate/close
# contract-churn ops/s plus metro admission latencies and fleet
# fingerprints, from bench_e17_contract_churn), and the region-sharded PDES
# snapshot as BENCH_08.json (metro-large wall clocks and fingerprints at
# 1/2/4/8 shards vs the single-simulator reference, from
# `bench_e16_metro_scale shards` — identical fingerprints are enforced),
# and the broadcast fan-out snapshot as BENCH_09.json (viewer sweep with
# measured cell-hops vs the per-viewer unicast baseline and per-edge
# reservations, from bench_e18_broadcast — the O(tree edges) acceptance is
# enforced by the bench's exit code).
#
# Usage: tools/bench_snapshot.sh <build-dir> [out.json]
# The build should be a Release build; numbers from Debug builds are noise.
set -euo pipefail

BUILD_DIR="${1:?usage: tools/bench_snapshot.sh <build-dir> [out.json]}"
OUT="${2:-BENCH_05.json}"
MICRO="$BUILD_DIR/bench/bench_micro"
E05="$BUILD_DIR/bench/bench_e05_qos_adaptation"

if [[ ! -x "$MICRO" || ! -x "$E05" ]]; then
  echo "bench binaries missing under $BUILD_DIR/bench (configure with google-benchmark installed)" >&2
  exit 1
fi

MICRO_JSON=$(mktemp)
trap 'rm -f "$MICRO_JSON"' EXIT
"$MICRO" \
  --benchmark_filter='BM_LinkCellHotPath/64|BM_SwitchForward/64|BM_SimulatorEventChurn/100000' \
  --benchmark_min_time=0.2 --benchmark_format=json >"$MICRO_JSON" 2>/dev/null

# items_per_second for an exact benchmark name, from the JSON report.
rate() {
  awk -v want="\"name\": \"$1\"," '
    index($0, want) { hit = 1 }
    hit && /"items_per_second":/ {
      gsub(/[^0-9.eE+-]/, "", $2); print $2; exit
    }' "$MICRO_JSON"
}

LINK_CPS=$(rate "BM_LinkCellHotPath/64")
SWITCH_CPS=$(rate "BM_SwitchForward/64")
EVENTS_PS=$(rate "BM_SimulatorEventChurn/100000")

E05_SIM_SECONDS=12
START_NS=$(date +%s%N)
"$E05" closed-loop "$E05_SIM_SECONDS" >/dev/null
END_NS=$(date +%s%N)
E05_WALL=$(awk -v s="$START_NS" -v e="$END_NS" 'BEGIN { printf "%.3f", (e - s) / 1e9 }')

cat >"$OUT" <<JSON
{
  "bench": "BENCH_05",
  "description": "cell-train data plane: pooled event engine + batched link/switch forwarding",
  "link_cells_per_sec": ${LINK_CPS:-0},
  "switch_cells_per_sec": ${SWITCH_CPS:-0},
  "events_per_sec": ${EVENTS_PS:-0},
  "e05_closed_loop_sim_seconds": $E05_SIM_SECONDS,
  "e05_closed_loop_wall_seconds": $E05_WALL
}
JSON
echo "wrote $OUT:"
cat "$OUT"

# The metro fleet bench emits its own machine-readable snapshot; it rides
# along whenever the binary exists so the fleet numbers travel with the
# data-plane ones.
E16="$BUILD_DIR/bench/bench_e16_metro_scale"
OUT06="$(dirname "$OUT")/BENCH_06.json"
if [[ -x "$E16" ]]; then
  "$E16" snapshot >"$OUT06"
  echo "wrote $OUT06:"
  cat "$OUT06"
else
  echo "skipping $OUT06: $E16 missing" >&2
fi

# Admission-plane snapshot: contract-churn ops/s and the same metro
# admission-latency points (fingerprints must match BENCH_06's).
E17="$BUILD_DIR/bench/bench_e17_contract_churn"
OUT07="$(dirname "$OUT")/BENCH_07.json"
if [[ -x "$E17" ]]; then
  "$E17" snapshot >"$OUT07"
  echo "wrote $OUT07:"
  cat "$OUT07"
else
  echo "skipping $OUT07: $E17 missing" >&2
fi

# Region-sharded PDES scaling: the shards mode exits non-zero if any shard
# count's fleet fingerprint diverges from the single-simulator reference,
# so a determinism break fails the snapshot job, not just the JSON diff.
OUT08="$(dirname "$OUT")/BENCH_08.json"
if [[ -x "$E16" ]]; then
  "$E16" shards >"$OUT08"
  echo "wrote $OUT08:"
  cat "$OUT08"
else
  echo "skipping $OUT08: $E16 missing" >&2
fi

# Broadcast fan-out: cells must scale with tree edges, not viewers. The
# bench exits non-zero when the 1k-viewer sweep point falls under 10x
# against per-viewer unicast or any tree edge is double-reserved.
E18="$BUILD_DIR/bench/bench_e18_broadcast"
OUT09="$(dirname "$OUT")/BENCH_09.json"
if [[ -x "$E18" ]]; then
  "$E18" snapshot >"$OUT09"
  echo "wrote $OUT09:"
  cat "$OUT09"
else
  echo "skipping $OUT09: $E18 missing" >&2
fi
