// Digital TV director: the Pegasus project's flagship application.
//
// The ESPRIT project description names "a digital TV director" as the
// application to prove the system. Three cameras stream into a mixing
// display; the director's control program — pure window-descriptor
// manipulation, no pixel copying — cuts between sources by raising and
// resizing windows, while the selected programme is simultaneously recorded
// to the Pegasus File Server with index marks for later seeking.
//
//   ./build/examples/tv_director
#include <cstdio>

#include "src/core/system.h"
#include "src/devices/control.h"

using namespace pegasus;

int main() {
  sim::Simulator sim;
  core::PegasusSystem system(&sim);

  core::Workstation* studio = system.AddWorkstation("studio");
  core::Workstation* gallery = system.AddWorkstation("gallery");

  // Three studio cameras.
  dev::AtmCamera::Config cam_cfg;
  cam_cfg.width = 128;
  cam_cfg.height = 96;
  cam_cfg.fps = 25;
  cam_cfg.compression = dev::CompressionMode::kMotionJpeg;
  std::vector<dev::AtmCamera*> cameras;
  for (int i = 0; i < 3; ++i) {
    cameras.push_back(studio->AddCamera(cam_cfg));
  }

  // The gallery's monitor wall: all three feeds visible, one "on air".
  dev::AtmDisplay* monitor = gallery->AddDisplay(800, 600);
  dev::WindowManager wm(monitor);

  std::vector<atm::Vci> feed_vci;
  for (int i = 0; i < 3; ++i) {
    auto s = system.BuildStream("feed-" + std::to_string(i))
                 .From(studio, cameras[static_cast<size_t>(i)])
                 .To(gallery, monitor)
                 .WithSpec(core::StreamSpec::Video(25, 4'000'000))
                 .WithWindow(20 + i * 150, 420)
                 .Open();
    if (!s.report.ok()) {
      std::printf("feed %d failed: %s\n", i, core::AdmitFailureName(s.report.failure));
      return 1;
    }
    feed_vci.push_back(s.session->sink_vci());
    cameras[static_cast<size_t>(i)]->Start(s.session->source_vci());
  }

  // Record the programme (camera 0's stream, as a second VC from the same
  // device in real Pegasus; here we record feed 0's source directly).
  pfs::PfsConfig pfs_cfg;
  pfs_cfg.segment_size = 256 << 10;
  pfs_cfg.block_size = 8 << 10;
  pfs_cfg.geometry.capacity_bytes = 256 << 20;
  core::StorageNode* storage = system.AddStorageServer(pfs_cfg);
  // The recording session reserves disk rate at the file server alongside
  // the network path — one contract across both layers.
  auto rec = system.BuildStream("programme")
                 .FromEndpoint(studio, studio->device_endpoint(cameras[0]))
                 .ToStorage(storage, /*stream_id=*/1)
                 .WithSpec([] {
                   core::StreamSpec s = core::StreamSpec::Video(25, 4'000'000);
                   s.disk_bps = 1'000'000;
                   return s;
                 }())
                 .Open();
  if (!rec.report.ok()) {
    std::printf("recording session failed: %s\n", core::AdmitFailureName(rec.report.failure));
    return 1;
  }
  core::StreamSession* rec_session = rec.session;
  pfs::FileId programme = rec_session->file();
  // Point-to-multipoint: camera 0 also ships every packet on the recording VC.
  cameras[0]->AddOutput(rec_session->source_vci());

  // The studio host emits a sync mark per second of programme time.
  for (int s = 0; s <= 20; ++s) {
    sim.ScheduleAt(sim::Seconds(s), [&, s]() {
      dev::ControlMessage mark;
      mark.type = dev::ControlType::kSyncMark;
      mark.stream_id = 1;
      mark.media_ts = sim::Seconds(s);
      studio->host_transport()->Send(rec_session->control_send_vci(), mark.Serialize());
    });
  }

  // The director cuts every 4 seconds: raise the chosen feed into the big
  // "on air" window. Pure descriptor updates.
  for (int cut = 0; cut < 5; ++cut) {
    sim.ScheduleAt(sim::Seconds(cut * 4), [&, cut]() {
      const atm::Vci on_air = feed_vci[static_cast<size_t>(cut % 3)];
      for (size_t i = 0; i < feed_vci.size(); ++i) {
        // Preview strip at the bottom.
        wm.MoveWindow(feed_vci[i], 20 + static_cast<int>(i) * 150, 420);
        wm.ResizeWindow(feed_vci[i], 128, 96);
      }
      wm.MoveWindow(on_air, 200, 40);
      wm.ResizeWindow(on_air, 128, 96);  // the hardware scales via tiles 1:1 here
      wm.RaiseWindow(on_air);
      std::printf("  t=%2llds  cut to camera %d\n",
                  static_cast<long long>(sim::ToMilliseconds(sim.now())) / 1000, cut % 3);
    });
  }

  sim.RunUntil(sim::Seconds(20));
  bool synced = false;
  storage->StopRecording(rec_session->sink_vci(), [&]() { synced = true; });
  sim.RunUntilPredicate([&]() { return synced; });

  std::printf("\ntv director: 20 simulated seconds, 5 cuts, programme recorded\n\n");
  std::printf("  director operations     %lld descriptor updates, 0 pixels copied\n",
              static_cast<long long>(wm.operations()));
  std::printf("  tiles on monitor wall   %lld\n",
              static_cast<long long>(monitor->tiles_blitted()));
  std::printf("  programme file size     %.2f MB\n",
              static_cast<double>(storage->server()->FileSize(programme)) / 1e6);
  std::printf("  records recorded        %lld\n",
              static_cast<long long>(storage->records_recorded()));
  auto idx = storage->server()->LookupIndex(programme, sim::Seconds(10));
  std::printf("  index: t=10s lives at   byte %lld\n",
              idx.has_value() ? static_cast<long long>(*idx) : -1LL);

  // Instant replay: jump to t=10s of the programme using the index.
  dev::AtmDisplay* replay_monitor = gallery->AddDisplay(640, 480);
  auto play = system.BuildStream("replay")
                  .FromStorage(storage, programme)
                  .To(gallery, replay_monitor)
                  .WithWindow(0, 0, 128, 96)
                  .Open();
  if (play.report.ok() &&
      storage->StartPlayback(programme, play.session->source_vci(), 1.0, sim::Seconds(10))) {
    sim.RunUntil(sim.now() + sim::Seconds(3));
    std::printf("  replay from t=10s       %lld records, %lld tiles\n",
                static_cast<long long>(storage->records_played()),
                static_cast<long long>(replay_monitor->tiles_blitted()));
  }
  return 0;
}
