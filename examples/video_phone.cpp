// Video phone: the paper's canonical application (§2).
//
// Two workstations call each other: camera and microphone on each side
// stream directly — switch to switch — to the far display and speaker, with
// QoS reservations on every virtual circuit. A playback controller at each
// end synchronises audio and video play-out using the streams' embedded
// timestamps. "No processors need to process any video data" (§2): the
// example prints each host's media cell count to prove it.
//
// The call also demonstrates closed-loop monitoring: the QosMonitor watches
// every link, and when a best-effort bulk transfer floods alice's uplink
// mid-call, the congestion it MEASURES (queue growth, tail-drops) degrades
// alice's adaptive video stream — and restores it once the transfer ends —
// with no explicit congestion signal anywhere.
//
//   ./build/examples/video_phone
#include <cstdio>

#include "src/core/system.h"
#include "src/devices/sync.h"

using namespace pegasus;

namespace {

struct Party {
  const char* name = nullptr;
  core::Workstation* ws = nullptr;
  dev::AtmCamera* camera = nullptr;
  dev::AtmDisplay* display = nullptr;
  dev::AudioCapture* mic = nullptr;
  dev::AudioPlayback* speaker = nullptr;
  std::unique_ptr<dev::PlaybackController> sync;
  int video_stream = 0;
  int audio_stream = 0;
};

void Equip(core::PegasusSystem& system, Party& p, sim::Simulator& sim) {
  p.ws = system.AddWorkstation(p.name);
  dev::AtmCamera::Config cam_cfg;
  cam_cfg.width = 160;
  cam_cfg.height = 120;
  cam_cfg.fps = 25;
  cam_cfg.compression = dev::CompressionMode::kMotionJpeg;
  p.camera = p.ws->AddCamera(cam_cfg);
  p.display = p.ws->AddDisplay(640, 480);
  p.mic = p.ws->AddAudioCapture();
  p.speaker = p.ws->AddAudioPlayback();
  dev::PlaybackController::Options sync_opts;
  sync_opts.margin = sim::Milliseconds(30);
  p.sync = std::make_unique<dev::PlaybackController>(&sim, sync_opts);
  p.video_stream = p.sync->RegisterStream("video");
  p.audio_stream = p.sync->RegisterStream("audio");
}

}  // namespace

int main() {
  sim::Simulator sim;
  core::PegasusSystem system(&sim);

  Party alice;
  alice.name = "alice";
  Party bob;
  bob.name = "bob";
  Equip(system, alice, sim);
  Equip(system, bob, sim);

  // Both directions: video needs ~2 Mb/s MJPEG, audio a few hundred kb/s.
  // Each leg is one end-to-end contract, admitted across every hop.
  const core::StreamSpec video_spec = core::StreamSpec::Video(25, 8'000'000);
  const core::StreamSpec audio_spec = core::StreamSpec::Audio(500'000);

  // Video degrades by frame-rate scaling when any layer loses capacity —
  // the monitor below is what decides that capacity is gone.
  core::AdaptationPolicy adapt;
  adapt.mode = core::AdaptationMode::kFrameRateScaling;
  adapt.floor = 0.1;
  adapt.hysteresis = 0.02;

  core::StreamSession* alice_video = nullptr;
  auto wire = [&](Party& from, Party& to) {
    auto v = system.BuildStream(std::string(from.name) + "/video")
                 .From(from.ws, from.camera)
                 .To(to.ws, to.display)
                 .WithSpec(video_spec)
                 .WithWindow(240, 180)
                 .WithAdaptation(adapt)
                 .Open();
    auto a = system.BuildStream(std::string(from.name) + "/audio")
                 .From(from.ws, from.mic)
                 .To(to.ws, to.speaker)
                 .WithSpec(audio_spec)
                 .Open();
    if (!v.report.ok() || !a.report.ok()) {
      std::printf("call setup failed\n");
      std::exit(1);
    }
    if (&from == &alice) {
      alice_video = v.session;
    }
    from.camera->Start(v.session->source_vci());
    from.mic->Start(a.session->source_vci());
    // Both sinks report arrivals to the playback controller for lip sync.
    dev::PlaybackController* sync = to.sync.get();
    to.display->set_packet_callback(
        [sync, vs = to.video_stream, last = std::make_shared<uint32_t>(UINT32_MAX)](
            atm::Vci, uint32_t frame_no, sim::TimeNs capture_ts) {
          if (*last != frame_no) {  // one sync sample per frame
            *last = frame_no;
            sync->OnArrival(vs, capture_ts);
          }
        });
    to.speaker->set_playout_callback([sync, as = to.audio_stream](sim::TimeNs capture_ts,
                                                                  sim::TimeNs) {
      sync->OnArrival(as, capture_ts);
    });
  };
  wire(alice, bob);
  wire(bob, alice);

  // Closed-loop monitoring: no explicit SignalCongestion call appears in
  // this file — the monitor derives severity from the queues themselves.
  system.EnableQosMonitor();

  // Mid-call, a best-effort bulk transfer (a backup, say) floods alice's
  // uplink at beyond line rate for three seconds.
  auto bulk = system.network().OpenVc(alice.ws->host(), bob.ws->host());
  if (bulk.has_value()) {
    for (sim::TimeNs t = sim::Seconds(4); t < sim::Seconds(7); t += sim::Milliseconds(1)) {
      sim.ScheduleAt(t, [&, vci = bulk->source_vci]() {
        for (int i = 0; i < 500; ++i) {
          atm::Cell cell;
          cell.vci = vci;
          cell.low_priority = true;
          alice.ws->host()->SendCell(cell);
        }
      });
    }
  }

  sim.RunUntil(sim::Seconds(6));
  std::printf("t=6s, bulk transfer flooding alice's uplink:\n");
  std::printf("  alice video degraded to %.0f%% of nominal (%.1f Mb/s, %.1f fps) by the\n"
              "  monitor's measured congestion — no explicit signal was raised\n\n",
              alice_video->adaptation_fraction() * 100,
              static_cast<double>(alice_video->contract().granted.bandwidth_bps) / 1e6,
              alice_video->contract().granted.frame_rate);

  sim.RunUntil(sim::Seconds(10));

  std::printf("t=10s, transfer done: queues drained, recovery signal restored the video "
              "to %.0f%% (%.1f Mb/s)\n\n",
              alice_video->adaptation_fraction() * 100,
              static_cast<double>(alice_video->contract().granted.bandwidth_bps) / 1e6);
  std::printf("video phone: 10 simulated seconds, both directions live\n\n");
  auto report = [&](const Party& p, const Party& peer) {
    std::printf("  [%s]\n", p.name);
    std::printf("    sent video frames      %u\n", p.camera->frames_captured());
    std::printf("    video bandwidth        %.2f Mbit/s\n",
                p.camera->average_bandwidth_bps(sim.now()) / 1e6);
    std::printf("    audio cells played     %lld (underruns %lld)\n",
                static_cast<long long>(p.speaker->cells_played()),
                static_cast<long long>(p.speaker->underruns()));
    std::printf("    tile latency (median)  %s\n",
                sim::FormatDuration(
                    static_cast<sim::DurationNs>(p.display->tile_latency().Quantile(0.5)))
                    .c_str());
    std::printf("    audio latency (mean)   %s\n",
                sim::FormatDuration(
                    static_cast<sim::DurationNs>(p.speaker->end_to_end_latency().mean()))
                    .c_str());
    std::printf("    host media cells       %llu\n",
                static_cast<unsigned long long>(p.ws->host()->cells_received()));
    if (p.sync->skew().count() > 0) {
      std::printf("    lip-sync skew (p90)    %s\n",
                  sim::FormatDuration(
                      static_cast<sim::DurationNs>(p.sync->skew().Quantile(0.9)))
                      .c_str());
    }
    (void)peer;
  };
  report(alice, bob);
  report(bob, alice);
  std::printf("\n  admission rejections: %lld (all reservations fitted)\n",
              static_cast<long long>(system.network().admission_rejections()));
  return 0;
}
