// Media recorder: the storage half of the system (§5).
//
// A camera records half a minute of video to the Pegasus File Server over
// the ATM network, with the control stream generating a time index. The
// recording is then played back from arbitrary time offsets, fast-forwarded
// at 4x, and finally survives a server crash: the log and checkpoint bring
// the metadata back, and every durable byte is still there.
//
//   ./build/examples/media_recorder
#include <cstdio>

#include "src/core/system.h"
#include "src/devices/control.h"

using namespace pegasus;

int main() {
  sim::Simulator sim;
  core::PegasusSystem system(&sim);
  core::Workstation* ws = system.AddWorkstation("desk");

  dev::AtmCamera::Config cam_cfg;
  cam_cfg.width = 128;
  cam_cfg.height = 96;
  cam_cfg.fps = 25;
  cam_cfg.compression = dev::CompressionMode::kMotionJpeg;
  dev::AtmCamera* camera = ws->AddCamera(cam_cfg);

  pfs::PfsConfig pfs_cfg;
  pfs_cfg.segment_size = 256 << 10;
  pfs_cfg.block_size = 8 << 10;
  pfs_cfg.geometry.capacity_bytes = 256 << 20;
  pfs_cfg.write_back_delay = sim::Seconds(5);
  core::StorageNode* storage = system.AddStorageServer(pfs_cfg);

  // The recording contract spans the network path and the file server's
  // stream budget; admission binds both or neither.
  core::StreamSpec rec_spec = core::StreamSpec::Video(25, 4'000'000);
  rec_spec.disk_bps = 1'000'000;
  auto rec = system.BuildStream("movie")
                 .FromEndpoint(ws, ws->device_endpoint(camera))
                 .ToStorage(storage, /*stream_id=*/7)
                 .WithSpec(rec_spec)
                 .Open();
  if (!rec.report.ok()) {
    std::printf("session setup failed: %s\n", core::AdmitFailureName(rec.report.failure));
    return 1;
  }
  core::StreamSession* session = rec.session;
  pfs::FileId movie = session->file();
  std::printf("media recorder: recording 30 s of MJPEG video to the PFS\n");

  // One index mark per second from the managing host's control stream.
  for (int s = 0; s <= 30; ++s) {
    sim.ScheduleAt(sim::Seconds(s), [&, s]() {
      dev::ControlMessage mark;
      mark.type = dev::ControlType::kSyncMark;
      mark.stream_id = 7;
      mark.media_ts = sim::Seconds(s);
      ws->host_transport()->Send(session->control_send_vci(), mark.Serialize());
    });
  }
  camera->Start(session->source_vci());
  sim.RunUntil(sim::Seconds(30));
  camera->Stop();
  bool synced = false;
  storage->StopRecording(session->sink_vci(), [&]() { synced = true; });
  sim.RunUntilPredicate([&]() { return synced; });

  pfs::PegasusFileServer* server = storage->server();
  std::printf("\n  recorded %.2f MB in %lld records\n",
              static_cast<double>(server->FileSize(movie)) / 1e6,
              static_cast<long long>(storage->records_recorded()));
  std::printf("  segments written %lld, garbage %lld bytes, free segments %lld/%lld\n",
              static_cast<long long>(server->segments_written()),
              static_cast<long long>(server->garbage_bytes()),
              static_cast<long long>(server->free_segments()),
              static_cast<long long>(server->total_segments()));

  // Seek: play 3 seconds starting at t=20s via the control-stream index.
  dev::AtmDisplay* monitor = ws->AddDisplay(640, 480);
  auto play = system.BuildStream("playout")
                  .FromStorage(storage, movie)
                  .To(ws, monitor)
                  .WithWindow(0, 0, 128, 96)
                  .Open();
  if (play.report.ok()) {
    storage->StartPlayback(movie, play.session->source_vci(), 1.0, sim::Seconds(20));
    sim.RunUntil(sim.now() + sim::Seconds(3));
    storage->StopPlayback(movie);
    std::printf("  seek to t=20s: %lld records played, %lld tiles on screen\n",
                static_cast<long long>(storage->records_played()),
                static_cast<long long>(monitor->tiles_blitted()));

    // Fast forward at 4x from the beginning.
    const int64_t before_ff = storage->records_played();
    storage->StartPlayback(movie, play.session->source_vci(), 4.0);
    sim.RunUntil(sim.now() + sim::Seconds(3));
    storage->StopPlayback(movie);
    std::printf("  4x fast-forward: %lld records in 3 s of wall time\n",
                static_cast<long long>(storage->records_played() - before_ff));
  }

  // Crash the server and recover: metadata comes back from the checkpoint.
  server->Crash();
  bool recovered = false;
  server->Recover([&](bool ok) { recovered = ok; });
  sim.RunUntilPredicate([&]() { return recovered; });
  std::printf("  server crashed and recovered: file still %.2f MB, index intact: %s\n",
              static_cast<double>(server->FileSize(movie)) / 1e6,
              server->LookupIndex(movie, sim::Seconds(15)).has_value() ? "yes" : "no");
  return 0;
}
