// QoS studio: the Nemesis scheduling story (§3) meets the stream API.
//
// A workstation's host CPU runs a media decoder domain (25 fps, 8 ms per
// frame), an interactive RPC server/client pair, a user-level-threaded
// transcoder and a pile of batch hogs — all under the share+EDF scheduler
// with the QoS manager re-weighting on its longer timescale. On top of that
// the studio's camera feed is opened through the cross-layer stream API: its
// protocol-handling CPU contract is admitted against the same Atropos
// headroom the applications compete for, so an over-greedy stream gets a
// counter-offer instead of silently wrecking the guarantees.
//
//   ./build/examples/qos_studio
#include <cstdio>

#include "src/core/system.h"
#include "src/nemesis/atropos.h"
#include "src/nemesis/kernel.h"
#include "src/nemesis/qos_manager.h"
#include "src/nemesis/threads.h"
#include "src/nemesis/workloads.h"

using namespace pegasus;
using nemesis::QosParams;
using sim::Milliseconds;
using sim::Seconds;

int main() {
  sim::Simulator sim;
  nemesis::Kernel kernel(&sim, std::make_unique<nemesis::AtroposScheduler>(0.98));

  // The workstation whose host CPU the kernel models; attaching it lets
  // stream admission see the scheduler's headroom.
  core::PegasusSystem system(&sim);
  core::Workstation* desk = system.AddWorkstation("desk");
  desk->AttachKernel(&kernel);
  dev::AtmCamera::Config cam_cfg;
  cam_cfg.width = 160;
  cam_cfg.height = 120;
  cam_cfg.fps = 25;
  cam_cfg.compression = dev::CompressionMode::kMotionJpeg;
  dev::AtmCamera* camera = desk->AddCamera(cam_cfg);
  dev::AtmDisplay* display = desk->AddDisplay(640, 480);

  // The QoS manager itself runs as a domain.
  nemesis::QosManagerDomain::Options mgr_opts;
  mgr_opts.epoch = Milliseconds(250);
  mgr_opts.target_utilization = 0.85;
  nemesis::QosManagerDomain manager(&sim, "qos-manager",
                                    QosParams::Guaranteed(Milliseconds(1), Milliseconds(100)),
                                    mgr_opts);

  // A 25 fps video decoder: 8 ms of CPU per 40 ms frame.
  nemesis::PeriodicDomain decoder(&sim, "video-decoder",
                                  QosParams::Guaranteed(Milliseconds(9), Milliseconds(40)),
                                  Milliseconds(8), Milliseconds(40));
  // An RPC service used by an interactive client.
  nemesis::ServerDomain server("name-server",
                               QosParams::Guaranteed(Milliseconds(5), Milliseconds(50)),
                               sim::Microseconds(200));
  nemesis::ClientDomain client(&sim, "shell",
                               QosParams::Guaranteed(Milliseconds(5), Milliseconds(50)),
                               sim::Microseconds(100), /*total_calls=*/100000,
                               /*think_time=*/Milliseconds(5));
  // A transcoder running four user-level threads over its own allocation.
  nemesis::UlsDomain transcoder(&sim, "transcoder",
                                QosParams::Guaranteed(Milliseconds(20), Milliseconds(100)), 4,
                                Milliseconds(2), Milliseconds(4));
  // Batch hogs: best effort only.
  nemesis::BatchDomain hog1("make -j", QosParams::BestEffort());
  nemesis::BatchDomain hog2("latex", QosParams::BestEffort());

  const std::vector<nemesis::Domain*> domains = {&manager, &decoder,    &server, &client,
                                                 &transcoder, &hog1, &hog2};
  for (nemesis::Domain* d : domains) {
    if (!kernel.AddDomain(d)) {
      std::printf("admission failed for %s\n", d->name().c_str());
      return 1;
    }
  }
  nemesis::IpcChannel* ch =
      kernel.CreateIpcChannel(&client, &server, 16, 64, /*synchronous=*/true);
  client.BindChannel(ch);
  server.BindChannel(ch);

  manager.Register(&decoder, /*weight=*/4.0,
                   QosParams::Guaranteed(Milliseconds(9), Milliseconds(40)));
  manager.Register(&transcoder, /*weight=*/2.0,
                   QosParams::Guaranteed(Milliseconds(20), Milliseconds(100)));

  // --- the cross-layer stream: network bandwidth AND a CPU contract for the
  // sink-side protocol handling, admitted in one decision.
  core::StreamSpec feed_spec = core::StreamSpec::Video(25, 8'000'000);
  feed_spec.sink_cpu = QosParams::Guaranteed(Milliseconds(8), Milliseconds(40));
  int64_t grant_updates = 0;
  auto feed = system.BuildStream("studio-feed")
                  .From(desk, camera)
                  .To(desk, display)
                  .WithSpec(feed_spec)
                  .WithWindow(240, 180)
                  .ManagedBy(&manager, /*weight=*/3.0)
                  .OnDegrade([&grant_updates](const core::QosContract& c) {
                    // The manager adapts on its epoch timescale; report the
                    // first few adjustments, count the rest.
                    if (++grant_updates <= 3) {
                      std::printf("  [qos-manager] feed CPU grant now %.1f%%\n",
                                  c.granted.sink_cpu.Utilization() * 100);
                    }
                  })
                  .Open();
  if (!feed.report.ok()) {
    std::printf("feed admission failed: %s\n", core::AdmitFailureName(feed.report.failure));
    return 1;
  }
  camera->Start(feed.session->source_vci());
  std::printf("studio feed admitted: %.1f Mb/s network, %.1f%% sink CPU, %d hops\n",
              static_cast<double>(feed.session->contract().granted.bandwidth_bps) / 1e6,
              feed.session->contract().granted.sink_cpu.Utilization() * 100,
              feed.session->contract().hop_count);

  // A greedy second stream: its CPU demand exceeds the remaining Atropos
  // headroom, so admission counter-offers what is actually left.
  core::StreamSpec greedy = core::StreamSpec::Video(25, 8'000'000);
  greedy.sink_cpu = QosParams::Guaranteed(Milliseconds(20), Milliseconds(40));
  auto rejected = system.BuildStream("greedy")
                      .From(desk, camera)
                      .To(desk, display)
                      .WithSpec(greedy)
                      .Open();
  std::printf("greedy stream (50%% CPU): %s",
              rejected.report.ok() ? "accepted?!\n" : "refused");
  if (rejected.report.counter_offer.has_value()) {
    const core::StreamSpec& offer = *rejected.report.counter_offer;
    std::printf(", counter-offer %.1f%% CPU\n", offer.sink_cpu.Utilization() * 100);
    auto retry = system.BuildStream("greedy-degraded")
                     .From(desk, camera)
                     .To(desk, display)
                     .WithSpec(offer)
                     .Open();
    std::printf("counter-offer re-submitted: %s\n",
                retry.report.ok() ? "accepted" : "refused");
    if (retry.report.ok()) {
      retry.session->Close();  // give the headroom back for the run below
    }
  } else {
    std::printf("\n");
  }

  // --- the tiled filter path: camera -> compute server -> display as ONE
  // pipeline contract. The edge-detector stage's CPU is admitted against
  // the compute node's own Atropos kernel in the same decision as both
  // legs' network bandwidth and the sink-side handler on the studio host.
  core::ComputeNode* fx_node = system.AddComputeServer("studio-fx");
  nemesis::Kernel fx_kernel(&sim, std::make_unique<nemesis::AtroposScheduler>(1.0));
  fx_node->AttachKernel(&fx_kernel);
  dev::TileProcessor::Config fx_stage;
  fx_stage.transform = dev::EdgeTransform();
  fx_stage.per_tile_cost = sim::Microseconds(10);
  core::StreamSpec fx_spec = core::StreamSpec::Video(25, 8'000'000);
  fx_spec.legs.resize(2);
  // 160x120 = 300 tiles/frame at 25 fps and 10 us/tile ~= 7.5% CPU.
  fx_spec.legs[0].compute_cpu = QosParams::Guaranteed(Milliseconds(6), Milliseconds(40));
  fx_spec.sink_cpu = QosParams::Guaranteed(Milliseconds(2), Milliseconds(40));
  auto fx_feed = system.BuildStream("studio-fx-feed")
                     .From(desk, camera)
                     .Via(fx_node, fx_stage)
                     .To(desk, display)
                     .WithSpec(fx_spec)
                     .WithWindow(420, 180)
                     .Open();
  if (!fx_feed.report.ok()) {
    std::printf("fx pipeline admission failed: %s\n",
                core::AdmitFailureName(fx_feed.report.failure));
    return 1;
  }
  camera->AddOutput(fx_feed.session->source_vci());
  std::printf("fx pipeline admitted: %d legs, stage CPU %.1f%% on %s, sink CPU %.1f%%\n",
              fx_feed.session->leg_count(),
              fx_feed.session->contract().granted.legs[0].compute_cpu.Utilization() * 100,
              fx_node->name().c_str(),
              fx_feed.session->contract().granted.sink_cpu.Utilization() * 100);

  kernel.Start();
  fx_kernel.Start();
  std::printf("\nqos studio: 30 simulated seconds on one CPU\n\n");
  std::printf("%6s %10s %10s %10s %10s %10s\n", "t(s)", "decoder%", "xcode%", "hogs%",
              "misses", "rpc(ms)");
  sim::DurationNs last_dec = 0;
  sim::DurationNs last_x = 0;
  sim::DurationNs last_hogs = 0;
  for (int t = 5; t <= 30; t += 5) {
    sim.RunUntil(Seconds(t));
    const sim::DurationNs dec = decoder.cpu_total();
    const sim::DurationNs xco = transcoder.cpu_total();
    const sim::DurationNs hogs = hog1.cpu_total() + hog2.cpu_total();
    std::printf("%6d %9.1f%% %9.1f%% %9.1f%% %10lld %10.2f\n", t,
                static_cast<double>(dec - last_dec) / 5e7,
                static_cast<double>(xco - last_x) / 5e7,
                static_cast<double>(hogs - last_hogs) / 5e7,
                static_cast<long long>(decoder.deadline_misses()),
                client.round_trip().count() > 0 ? client.round_trip().mean() / 1e6 : 0.0);
    last_dec = dec;
    last_x = xco;
    last_hogs = hogs;
  }

  // Renegotiate the feed's CPU contract upward mid-session: the kernel
  // re-runs admission, the network reservation is untouched.
  core::StreamSpec more = feed.session->contract().granted;
  more.sink_cpu = QosParams::Guaranteed(Milliseconds(10), Milliseconds(40));
  auto renegotiation = feed.session->Renegotiate(more);
  std::printf("\nrenegotiation to %.1f%% sink CPU: %s\n",
              more.sink_cpu.Utilization() * 100,
              renegotiation.ok() ? "accepted" : "refused");

  std::printf("\n  decoder frames %lld, misses %lld (guarantee held under load)\n",
              static_cast<long long>(decoder.jobs_completed()),
              static_cast<long long>(decoder.deadline_misses()));
  std::printf("  transcoder items %lld via %lld user-level switches\n",
              static_cast<long long>(transcoder.items_completed()),
              static_cast<long long>(transcoder.user_switches()));
  std::printf("  rpc calls %lld, mean round trip %.2f ms (sync events + shared memory)\n",
              static_cast<long long>(client.calls_completed()),
              client.round_trip().mean() / 1e6);
  std::printf("  qos manager reviews %lld (epoch %s), feed grant updates %lld\n",
              static_cast<long long>(manager.reviews()),
              sim::FormatDuration(mgr_opts.epoch).c_str(),
              static_cast<long long>(grant_updates));
  dev::TileProcessor* fx = fx_feed.session->legs()[0].processor;
  std::printf("  fx pipeline tiles %lld via %s, stage residence %s mean\n",
              static_cast<long long>(fx->tiles_processed()), fx_node->name().c_str(),
              sim::FormatDuration(static_cast<sim::DurationNs>(fx->processing_latency().mean()))
                  .c_str());
  std::printf("  context switches %llu, activations %llu, preemptions %llu\n",
              static_cast<unsigned long long>(kernel.context_switches()),
              static_cast<unsigned long long>(kernel.activation_count()),
              static_cast<unsigned long long>(kernel.preemptions()));
  return 0;
}
