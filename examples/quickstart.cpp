// Quickstart: the smallest complete Pegasus setup.
//
// One workstation, one ATM camera, one ATM display. The device manager opens
// a data VC from camera to display through the workstation's own switch,
// the window manager grants the VC a window, and video flows without ever
// touching the host CPU.
//
//   cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "src/core/system.h"

using namespace pegasus;

int main() {
  sim::Simulator sim;
  core::PegasusSystem system(&sim);

  // A workstation with a camera and a display on its local switch.
  core::Workstation* ws = system.AddWorkstation("desk");
  dev::AtmCamera::Config cam_cfg;
  cam_cfg.width = 160;
  cam_cfg.height = 120;
  cam_cfg.fps = 25;
  cam_cfg.compression = dev::CompressionMode::kMotionJpeg;
  dev::AtmCamera* camera = ws->AddCamera(cam_cfg);
  dev::AtmDisplay* display = ws->AddDisplay(640, 480);

  // Establish the session: one admission-controlled contract covering the
  // network path (data VC + control VC) and the window, then roll.
  auto session = system.BuildStream("quickstart")
                     .From(ws, camera)
                     .To(ws, display)
                     .WithSpec(core::StreamSpec::Video(25, 8'000'000))
                     .WithWindow(100, 80)
                     .Open();
  if (!session.report.ok()) {
    std::printf("admission rejected the stream: %s\n",
                core::AdmitFailureName(session.report.failure));
    return 1;
  }
  camera->Start(session.session->source_vci());

  // Run five seconds of simulated time.
  sim.RunUntil(sim::Seconds(5));

  std::printf("quickstart: 5 simulated seconds of camera -> display video\n\n");
  std::printf("  frames captured        %u\n", camera->frames_captured());
  std::printf("  packets sent           %lld\n", static_cast<long long>(camera->packets_sent()));
  std::printf("  camera bandwidth       %.2f Mbit/s (MJPEG)\n",
              camera->average_bandwidth_bps(sim.now()) / 1e6);
  std::printf("  tiles blitted          %lld\n",
              static_cast<long long>(display->tiles_blitted()));
  std::printf("  median tile latency    %s\n",
              sim::FormatDuration(
                  static_cast<sim::DurationNs>(display->tile_latency().Quantile(0.5)))
                  .c_str());
  std::printf("  host CPU cells seen    %llu (the DAN path bypasses the host)\n",
              static_cast<unsigned long long>(ws->host()->cells_received()));
  std::printf("  decode errors          %llu\n",
              static_cast<unsigned long long>(display->decode_errors()));
  return 0;
}
