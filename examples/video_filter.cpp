// Video filter: media processed in transit, the paper's headline thesis.
//
// "Audio and video should not be second-class media on which the only
// operations are capture, storage and rendering, but media that can be
// processed — analysed, filtered, modified — just like text and data" (§1).
// A camera streams through the multimedia compute server of Figure 4, which
// runs a Sobel edge detector on every tile before forwarding to the
// display — and the stream stays real time, with the extra hop visible in
// the end-to-end latency.
//
// The detour is ONE pipeline contract: camera -> compute -> display is
// admitted atomically — bandwidth on both legs' links, the filter stage's
// CPU on the compute server's own Atropos kernel, all in a single
// decision. Over-committing any leg refuses the whole chain with a joint
// counter-offer covering every failing resource at once.
//
//   ./build/examples/video_filter
#include <cstdio>

#include "src/core/system.h"
#include "src/nemesis/atropos.h"
#include "src/nemesis/kernel.h"

using namespace pegasus;
using nemesis::QosParams;
using sim::Milliseconds;

int main() {
  sim::Simulator sim;
  core::PegasusSystem system(&sim);
  core::Workstation* ws = system.AddWorkstation("desk");
  core::ComputeNode* compute = system.AddComputeServer();
  nemesis::Kernel compute_kernel(&sim, std::make_unique<nemesis::AtroposScheduler>(1.0));
  compute->AttachKernel(&compute_kernel);

  dev::AtmCamera::Config cam_cfg;
  cam_cfg.width = 128;
  cam_cfg.height = 96;
  cam_cfg.fps = 25;
  dev::AtmCamera* camera = ws->AddCamera(cam_cfg);
  dev::AtmDisplay* display = ws->AddDisplay(640, 480);

  // Two side-by-side windows: the raw feed, and the edge-detected feed that
  // detours through the compute server.
  auto raw = system.BuildStream("raw")
                 .From(ws, camera)
                 .To(ws, display)
                 .WithWindow(40, 60)
                 .Open();
  if (!raw.report.ok()) {
    return 1;
  }

  // The filter pipeline: two legs (camera -> compute, compute -> display)
  // plus the Sobel stage's CPU contract, one admission decision.
  dev::TileProcessor::Config stage;
  stage.transform = dev::EdgeTransform();
  stage.per_tile_cost = sim::Microseconds(15);
  core::StreamSpec filter_spec = core::StreamSpec::Video(25, 10'000'000);
  filter_spec.legs.resize(2);
  // 128x96 = 192 tiles/frame at 25 fps and 15 us/tile ~= 7.2% CPU; contract
  // 4 ms in every 40 ms frame time.
  filter_spec.legs[0].compute_cpu = QosParams::Guaranteed(Milliseconds(4), Milliseconds(40));
  auto filtered = system.BuildStream("filtered")
                      .From(ws, camera)
                      .Via(compute, stage)
                      .To(ws, display)
                      .WithSpec(filter_spec)
                      .WithWindow(260, 60)
                      .Open();
  if (!filtered.report.ok()) {
    std::printf("pipeline admission failed: %s\n",
                core::AdmitFailureName(filtered.report.failure));
    return 1;
  }
  std::printf("filter pipeline admitted: %d legs, %d hops, stage CPU %.1f%%\n",
              filtered.session->leg_count(), filtered.session->contract().hop_count,
              filtered.session->contract().granted.legs[0].compute_cpu.Utilization() * 100);

  // Over-committing ANY single resource of the chain refuses the whole
  // pipeline — and the counter-offer covers every failing resource in one
  // pass, not just the first.
  core::StreamSpec greedy = core::StreamSpec::Video(25, 500'000'000);  // > any link
  greedy.legs.resize(2);
  greedy.legs[0].compute_cpu =
      QosParams::Guaranteed(Milliseconds(80), Milliseconds(40));  // 200% of the node
  auto rejected = system.BuildStream("greedy")
                      .From(ws, camera)
                      .Via(compute, stage)
                      .To(ws, display)
                      .WithSpec(greedy)
                      .Open();
  std::printf("greedy pipeline (500 Mb/s, 200%% stage CPU): %s, %zu failing resources",
              rejected.report.ok() ? "accepted?!" : "refused",
              rejected.report.failures.size());
  if (rejected.report.counter_offer.has_value()) {
    const core::StreamSpec& offer = *rejected.report.counter_offer;
    std::printf(" -> joint counter: %.1f/%.1f Mb/s, %.1f%% CPU\n",
                static_cast<double>(offer.LegBandwidthBps(0)) / 1e6,
                static_cast<double>(offer.LegBandwidthBps(1)) / 1e6,
                offer.LegComputeCpu(0).Utilization() * 100);
  } else {
    std::printf("\n");
  }

  dev::TileProcessor* processor = filtered.session->legs()[0].processor;
  camera->AddOutput(filtered.session->source_vci());  // tap the camera into the pipeline
  camera->Start(raw.session->source_vci());
  sim.RunUntil(sim::Seconds(5));

  std::printf("\nvideo filter: 5 s of live video, edge-detected in transit\n\n");
  std::printf("  tiles filtered           %lld (%lld packets)\n",
              static_cast<long long>(processor->tiles_processed()),
              static_cast<long long>(processor->packets_processed()));
  std::printf("  processing residence     %s mean\n",
              sim::FormatDuration(
                  static_cast<sim::DurationNs>(processor->processing_latency().mean()))
                  .c_str());
  std::printf("  end-to-end tile latency  %s median (raw + filtered mixed)\n",
              sim::FormatDuration(
                  static_cast<sim::DurationNs>(display->tile_latency().Quantile(0.5)))
                  .c_str());
  std::printf("  raw pixel  (60,100)      %d\n", display->PixelAt(60, 100));
  std::printf("  edge pixel (280,100)     %d (flat regions go dark)\n",
              display->PixelAt(280, 100));
  std::printf("  decode errors            %llu\n",
              static_cast<unsigned long long>(processor->decode_errors()));

  // Teardown releases both legs, the stage and its CPU contract together.
  filtered.session->Close();
  std::printf("  after Close()            compute CPU admitted %.1f%%, stages active %d\n",
              compute_kernel.scheduler()->AdmittedUtilization() * 100,
              compute->active_stages());

  // --- a heterogeneous 3-stage chain: decode -> analyse -> re-encode ---
  //
  // Two Via() detours make three legs of ONE contract, with per-stage
  // bandwidth narrowing: the raw feed needs 12 Mb/s, the analysed stream
  // 8 Mb/s, and the re-encoded output only 4 Mb/s — each leg reserves
  // exactly what that section of the pipeline still carries.
  core::ComputeNode* analyse_node = system.AddComputeServer("analyse");
  nemesis::Kernel analyse_kernel(&sim, std::make_unique<nemesis::AtroposScheduler>(1.0));
  analyse_node->AttachKernel(&analyse_kernel);
  core::ComputeNode* encode_node = system.AddComputeServer("encode", ws);  // desk-side
  nemesis::Kernel encode_kernel(&sim, std::make_unique<nemesis::AtroposScheduler>(1.0));
  encode_node->AttachKernel(&encode_kernel);

  dev::TileProcessor::Config analyse_stage;
  analyse_stage.transform = dev::EdgeTransform();  // the "analysis"
  analyse_stage.per_tile_cost = sim::Microseconds(20);
  dev::TileProcessor::Config encode_stage;
  encode_stage.transform = dev::BrightnessTransform(10);
  encode_stage.per_tile_cost = sim::Microseconds(10);
  encode_stage.output_compression = dev::CompressionMode::kMotionJpeg;  // the re-encode

  core::StreamSpec chain_spec = core::StreamSpec::Video(25, 12'000'000);
  chain_spec.legs.resize(3);
  chain_spec.legs[0].bandwidth_bps = 12'000'000;  // camera -> analyse (raw)
  chain_spec.legs[0].compute_cpu = QosParams::Guaranteed(Milliseconds(6), Milliseconds(40));
  chain_spec.legs[1].bandwidth_bps = 8'000'000;  // analyse -> encode (edges)
  chain_spec.legs[1].compute_cpu = QosParams::Guaranteed(Milliseconds(3), Milliseconds(40));
  chain_spec.legs[2].bandwidth_bps = 4'000'000;  // encode -> display (mjpeg)
  auto chain = system.BuildStream("3-stage")
                   .From(ws, camera)
                   .Via(analyse_node, analyse_stage)
                   .Via(encode_node, encode_stage)
                   .To(ws, display)
                   .WithSpec(chain_spec)
                   .WithWindow(460, 60)
                   .Open();
  if (!chain.report.ok()) {
    std::printf("3-stage chain admission failed: %s\n",
                core::AdmitFailureName(chain.report.failure));
    return 1;
  }
  // The narrowed grants hold end-to-end, leg by leg.
  const core::StreamSpec& granted = chain.session->contract().granted;
  const int64_t expect_bps[3] = {12'000'000, 8'000'000, 4'000'000};
  for (int i = 0; i < 3; ++i) {
    if (granted.LegBandwidthBps(static_cast<size_t>(i)) != expect_bps[i] ||
        chain.session->legs()[static_cast<size_t>(i)].granted_bps != expect_bps[i]) {
      std::printf("3-stage chain: leg %d granted %lld bps, wanted %lld\n", i,
                  static_cast<long long>(chain.session->legs()[static_cast<size_t>(i)].granted_bps),
                  static_cast<long long>(expect_bps[i]));
      return 1;
    }
  }
  std::printf("\n3-stage chain admitted: %d legs narrowing 12 -> 8 -> 4 Mb/s, stage CPU "
              "%.1f%% + %.1f%%\n",
              chain.session->leg_count(),
              granted.LegComputeCpu(0).Utilization() * 100,
              granted.LegComputeCpu(1).Utilization() * 100);

  camera->AddOutput(chain.session->source_vci());
  sim.RunUntil(sim::Seconds(8));
  dev::TileProcessor* analyser = chain.session->legs()[0].processor;
  dev::TileProcessor* encoder = chain.session->legs()[1].processor;
  std::printf("  analyse stage            %lld tiles (%s mean residence)\n",
              static_cast<long long>(analyser->tiles_processed()),
              sim::FormatDuration(
                  static_cast<sim::DurationNs>(analyser->processing_latency().mean()))
                  .c_str());
  std::printf("  re-encode stage          %lld tiles (%s mean residence)\n",
              static_cast<long long>(encoder->tiles_processed()),
              sim::FormatDuration(
                  static_cast<sim::DurationNs>(encoder->processing_latency().mean()))
                  .c_str());
  if (analyser->tiles_processed() == 0 || encoder->tiles_processed() == 0) {
    std::printf("3-stage chain: no tiles flowed through a stage\n");
    return 1;
  }
  chain.session->Close();
  std::printf("  after Close()            analyse CPU %.1f%%, encode CPU %.1f%%\n",
              analyse_kernel.scheduler()->AdmittedUtilization() * 100,
              encode_kernel.scheduler()->AdmittedUtilization() * 100);
  return 0;
}
