// Video filter: media processed in transit, the paper's headline thesis.
//
// "Audio and video should not be second-class media on which the only
// operations are capture, storage and rendering, but media that can be
// processed — analysed, filtered, modified — just like text and data" (§1).
// A camera streams through the multimedia compute server of Figure 4, which
// runs a Sobel edge detector on every tile before forwarding to the
// display — and the stream stays real time, with the extra hop visible in
// the end-to-end latency.
//
//   ./build/examples/video_filter
#include <cstdio>

#include "src/core/system.h"

using namespace pegasus;

int main() {
  sim::Simulator sim;
  core::PegasusSystem system(&sim);
  core::Workstation* ws = system.AddWorkstation("desk");
  core::ComputeNode* compute = system.AddComputeServer();

  dev::AtmCamera::Config cam_cfg;
  cam_cfg.width = 128;
  cam_cfg.height = 96;
  cam_cfg.fps = 25;
  dev::AtmCamera* camera = ws->AddCamera(cam_cfg);
  dev::AtmDisplay* display = ws->AddDisplay(640, 480);

  // Two side-by-side windows: the raw feed, and the edge-detected feed that
  // detours through the compute server.
  auto raw = system.BuildStream("raw")
                 .From(ws, camera)
                 .To(ws, display)
                 .WithWindow(40, 60)
                 .Open();
  if (!raw.report.ok()) {
    return 1;
  }
  // The filter detour is plumbed as raw VCs: the compute stage is a
  // cell-level pipeline element, not a stream endpoint.
  auto leg_in = system.network().OpenVc(ws->device_endpoint(camera), compute->endpoint());
  auto leg_out = system.network().OpenVc(compute->endpoint(), ws->device_endpoint(display));
  if (!leg_in.has_value() || !leg_out.has_value()) {
    return 1;
  }
  dev::TileProcessor::Config stage;
  stage.transform = dev::EdgeTransform();
  stage.per_tile_cost = sim::Microseconds(15);
  dev::TileProcessor* processor =
      compute->AddStage(leg_in->destination_vci, leg_out->source_vci, stage);
  dev::WindowManager wm(display);
  wm.CreateWindow(leg_out->destination_vci, 260, 60, 128, 96);

  camera->AddOutput(leg_in->source_vci);  // tap the camera into the filter path
  camera->Start(raw.session->source_vci());
  sim.RunUntil(sim::Seconds(5));

  std::printf("video filter: 5 s of live video, edge-detected in transit\n\n");
  std::printf("  tiles filtered           %lld (%lld packets)\n",
              static_cast<long long>(processor->tiles_processed()),
              static_cast<long long>(processor->packets_processed()));
  std::printf("  processing residence     %s mean\n",
              sim::FormatDuration(
                  static_cast<sim::DurationNs>(processor->processing_latency().mean()))
                  .c_str());
  std::printf("  end-to-end tile latency  %s median (raw + filtered mixed)\n",
              sim::FormatDuration(
                  static_cast<sim::DurationNs>(display->tile_latency().Quantile(0.5)))
                  .c_str());
  std::printf("  raw pixel  (60,100)      %d\n", display->PixelAt(60, 100));
  std::printf("  edge pixel (280,100)     %d (flat regions go dark)\n",
              display->PixelAt(280, 100));
  std::printf("  decode errors            %llu\n",
              static_cast<unsigned long long>(processor->decode_errors()));
  return 0;
}
