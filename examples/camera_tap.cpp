// Camera tap: one capture, many consumers (§2.2, §4).
//
// The point-to-multipoint tap AtmCamera::AddOutput only approximates —
// re-sending every packet once per extra circuit, O(outputs) at the source
// — done properly: ONE multicast stream contract fans the capture out over
// a shared delivery tree to a live monitor AND a recording on the Pegasus
// File Server. The camera sends each packet exactly once; the switches
// replicate cell trains only where the tree branches, and shared links
// carry one stream's reservation no matter how many consumers hang off
// them. A director's preview joins mid-stream (AddSink grafts just its own
// branch) and leaves again (RemoveSink prunes it) without the monitor or
// the recording noticing.
//
//   ./build/examples/camera_tap
#include <cstdio>

#include "src/core/system.h"
#include "src/devices/control.h"

using namespace pegasus;

int main() {
  sim::Simulator sim;
  core::PegasusSystem system(&sim);
  core::Workstation* studio = system.AddWorkstation("studio");
  core::Workstation* editor = system.AddWorkstation("editor");
  core::Workstation* director = system.AddWorkstation("director");

  dev::AtmCamera::Config cam_cfg;
  cam_cfg.width = 128;
  cam_cfg.height = 96;
  cam_cfg.fps = 25;
  cam_cfg.compression = dev::CompressionMode::kMotionJpeg;
  dev::AtmCamera* camera = studio->AddCamera(cam_cfg);
  dev::AtmDisplay* monitor = editor->AddDisplay(640, 480);
  dev::AtmDisplay* preview = director->AddDisplay(640, 480);

  pfs::PfsConfig pfs_cfg;
  pfs_cfg.segment_size = 256 << 10;
  pfs_cfg.block_size = 8 << 10;
  pfs_cfg.geometry.capacity_bytes = 256 << 20;
  core::StorageNode* storage = system.AddStorageServer(pfs_cfg);

  // One contract covers the whole fan-out: live monitoring and recording
  // from the same capture, each tree edge reserved once.
  core::MulticastSink live;
  live.ws = editor;
  live.display = monitor;
  core::MulticastSink record;
  record.storage = storage;
  record.record_stream_id = 7;

  auto r = system.BuildStream("studio/tap")
               .From(studio, camera)
               .ToMany({live, record})
               .WithSpec(core::StreamSpec::Video(25, 4'000'000))
               .WithWindow(0, 0, 128, 96)
               .Open();
  if (!r.report.ok()) {
    std::printf("tap setup failed: %s\n", core::AdmitFailureName(r.report.failure));
    return 1;
  }
  core::StreamSession* session = r.session;
  std::printf("camera tap: one capture -> live monitor + PFS recording\n");
  std::printf("  tree leaves %d, hop count %d\n", session->sink_count(),
              session->contract().hop_count);

  // Index marks for the recording ride the control stream, once per second.
  for (int s = 0; s <= 10; ++s) {
    sim.ScheduleAt(sim::Seconds(s), [&, s]() {
      dev::ControlMessage mark;
      mark.type = dev::ControlType::kSyncMark;
      mark.stream_id = 7;
      mark.media_ts = sim::Seconds(s);
      studio->host_transport()->Send(session->control_send_vci(), mark.Serialize());
    });
  }

  camera->Start(session->source_vci());
  sim.RunUntil(sim::Seconds(4));

  // The director's preview joins mid-stream: the graft admits and reserves
  // only the new branch; the camera keeps sending each packet once.
  auto graft = session->AddSink({.ws = director, .display = preview});
  std::printf("  t=4s director joins: %s (leaves now %d)\n",
              graft.ok() ? "grafted" : graft.detail.c_str(), session->sink_count());
  sim.RunUntil(sim::Seconds(8));
  session->RemoveSink(director->device_endpoint(preview));
  std::printf("  t=8s director leaves: branch pruned (leaves %d)\n", session->sink_count());
  sim.RunUntil(sim::Seconds(10));
  camera->Stop();

  std::printf("\n  camera sent %lld packets — each exactly once, with two or three "
              "consumers alike\n",
              static_cast<long long>(camera->packets_sent()));
  std::printf("  monitor blitted %lld tiles over %u frames\n",
              static_cast<long long>(monitor->tiles_blitted()),
              monitor->frames_completed());
  std::printf("  preview blitted %lld tiles during its 4 s visit\n",
              static_cast<long long>(preview->tiles_blitted()));
  std::printf("  recorder stored %lld records with a live time index: t=2s -> %s\n",
              static_cast<long long>(storage->records_recorded()),
              storage->server()->LookupIndex(session->file(), sim::Seconds(2)).has_value()
                  ? "indexed"
                  : "missing");
  session->Close();
  const bool ok = monitor->tiles_blitted() > 0 && preview->tiles_blitted() > 0 &&
                  storage->records_recorded() > 0;
  std::printf("\n%s one capture served every consumer over one shared tree\n",
              ok ? "[REPRODUCED]" : "[FAILED]");
  return ok ? 0 : 1;
}
