// Integration tests: full-system assembly, DAN vs bus media paths, recording
// to and playback from the storage node, naming across nodes (§2.3, Fig 4).
#include <gtest/gtest.h>

#include "src/core/system.h"
#include "src/devices/sync.h"
#include "src/naming/name_space.h"

namespace pegasus::core {
namespace {

using sim::Milliseconds;
using sim::Seconds;

class SystemFixture : public ::testing::Test {
 protected:
  SystemFixture() : system_(&sim_) {}

  sim::Simulator sim_;
  PegasusSystem system_;
};

TEST_F(SystemFixture, VideoPhoneAcrossWorkstations) {
  Workstation* alice = system_.AddWorkstation("alice");
  Workstation* bob = system_.AddWorkstation("bob");
  dev::AtmCamera::Config cam_cfg;
  cam_cfg.width = 64;
  cam_cfg.height = 48;
  cam_cfg.compression = dev::CompressionMode::kMotionJpeg;
  dev::AtmCamera* camera = alice->AddCamera(cam_cfg);
  dev::AtmDisplay* display = bob->AddDisplay(320, 240);

  auto session = system_.BuildStream("phone/video")
                     .From(alice, camera)
                     .To(bob, display)
                     .WithSpec(StreamSpec::Video(25, 0))
                     .WithWindow(20, 20)
                     .Open();
  ASSERT_TRUE(session.report.ok());
  camera->Start(session.session->source_vci());
  sim_.RunUntil(Seconds(1));

  EXPECT_GT(display->tiles_blitted(), 500);
  EXPECT_NE(display->PixelAt(25, 25), 0);
  EXPECT_EQ(display->decode_errors(), 0u);
  // The media path crossed two local switches and the backbone, but neither
  // host endpoint saw a single media cell.
  EXPECT_EQ(alice->host()->cells_received(), 0u);
  EXPECT_EQ(bob->host()->cells_received(), 0u);
}

TEST_F(SystemFixture, DanPathBeatsBusPathOnCpuAndLatency) {
  // E03 in miniature. DAN: camera -> display direct. Bus: camera -> host
  // NIC -> (CPU relay) -> display.
  Workstation* ws = system_.AddWorkstation("ws");
  dev::AtmCamera::Config cam_cfg;
  cam_cfg.width = 64;
  cam_cfg.height = 48;
  dev::AtmCamera* camera = ws->AddCamera(cam_cfg);
  dev::AtmDisplay* display = ws->AddDisplay(320, 240);

  auto dan = system_.BuildStream("dan")
                 .From(ws, camera)
                 .To(ws, display)
                 .WithWindow(0, 0)
                 .Open();
  ASSERT_TRUE(dan.report.ok());
  camera->Start(dan.session->source_vci());
  sim_.RunUntil(Seconds(1));
  camera->Stop();
  const double dan_latency = display->tile_latency().mean();
  ASSERT_GT(display->tile_latency().count(), 0);

  // Now the bus path on a second workstation.
  Workstation* ws2 = system_.AddWorkstation("ws2");
  dev::AtmCamera* camera2 = ws2->AddCamera(cam_cfg);
  dev::AtmDisplay* display2 = ws2->AddDisplay(320, 240);
  HostRelay* relay = ws2->EnableHostRelay(sim::Microseconds(8));
  atm::Endpoint* bus_nic = ws2->device_endpoint(relay);
  auto leg1 = system_.network().OpenVc(ws2->device_endpoint(camera2), bus_nic);
  auto leg2 = system_.network().OpenVc(bus_nic, ws2->device_endpoint(display2));
  ASSERT_TRUE(leg1.has_value());
  ASSERT_TRUE(leg2.has_value());
  relay->AddRoute(leg1->destination_vci, leg2->source_vci);
  dev::WindowManager wm(display2);
  wm.CreateWindow(leg2->destination_vci, 0, 0, 64, 48);
  camera2->Start(leg1->source_vci);
  sim_.RunUntil(sim_.now() + Seconds(1));
  camera2->Stop();

  ASSERT_GT(display2->tile_latency().count(), 0);
  const double bus_latency = display2->tile_latency().mean();
  EXPECT_GT(relay->cells_relayed(), 1000);
  EXPECT_GT(relay->cpu_time_spent(), Milliseconds(10));
  EXPECT_GT(bus_latency, dan_latency);
}

TEST_F(SystemFixture, RecordThenPlayback) {
  Workstation* ws = system_.AddWorkstation("ws");
  dev::AtmCamera::Config cam_cfg;
  cam_cfg.width = 32;
  cam_cfg.height = 32;
  cam_cfg.fps = 25;
  dev::AtmCamera* camera = ws->AddCamera(cam_cfg);
  pfs::PfsConfig pfs_cfg;
  pfs_cfg.segment_size = 64 << 10;
  pfs_cfg.block_size = 8 << 10;
  pfs_cfg.geometry.capacity_bytes = 64 << 20;
  StorageNode* storage = system_.AddStorageServer(pfs_cfg);

  auto rec = system_.BuildStream("rec")
                 .FromEndpoint(ws, ws->device_endpoint(camera))
                 .ToStorage(storage, /*stream_id=*/1)
                 .Open();
  ASSERT_TRUE(rec.report.ok());
  StreamSession* session = rec.session;
  pfs::FileId file = session->file();
  ASSERT_GE(file, 0);

  // The camera's manager announces sync marks on the control stream once per
  // frame, which the storage node turns into index entries.
  atm::MessageTransport* host_t = ws->host_transport();
  for (int i = 0; i < 25; ++i) {
    sim_.ScheduleAt(i * Milliseconds(40), [host_t, session, i]() {
      dev::ControlMessage mark;
      mark.type = dev::ControlType::kSyncMark;
      mark.stream_id = 1;
      mark.media_ts = i * Milliseconds(40);
      host_t->Send(session->control_send_vci(), mark.Serialize());
    });
  }
  camera->Start(session->source_vci());
  sim_.RunUntil(Seconds(1));
  camera->Stop();
  bool synced = false;
  storage->StopRecording(session->sink_vci(), [&]() { synced = true; });
  sim_.RunUntilPredicate([&]() { return synced; });

  EXPECT_GT(storage->records_recorded(), 50);
  EXPECT_GT(storage->server()->FileSize(file), 10'000);
  // The control stream produced a usable index.
  EXPECT_TRUE(storage->server()->LookupIndex(file, Milliseconds(400)).has_value());

  // Play the recording back to a display.
  dev::AtmDisplay* display = ws->AddDisplay(320, 240);
  auto play = system_.BuildStream("play")
                  .FromStorage(storage, file)
                  .To(ws, display)
                  .WithWindow(0, 0, 32, 32)
                  .Open();
  ASSERT_TRUE(play.report.ok());
  ASSERT_TRUE(storage->StartPlayback(file, play.session->source_vci()));
  sim_.RunUntil(sim_.now() + Seconds(3));
  EXPECT_GT(storage->records_played(), 50);
  EXPECT_GT(display->tiles_blitted(), 100);
  EXPECT_NE(display->PixelAt(5, 5), 0);
}

TEST_F(SystemFixture, PlaybackFromIndexSkipsAhead) {
  Workstation* ws = system_.AddWorkstation("ws");
  pfs::PfsConfig pfs_cfg;
  pfs_cfg.segment_size = 64 << 10;
  pfs_cfg.block_size = 8 << 10;
  pfs_cfg.geometry.capacity_bytes = 64 << 20;
  StorageNode* storage = system_.AddStorageServer(pfs_cfg);

  // Hand-record a message stream with index marks via the network.
  auto data_vc = system_.network().OpenVc(ws->host(), storage->endpoint());
  auto ctl_vc = system_.network().OpenVc(ws->host(), storage->endpoint());
  ASSERT_TRUE(data_vc.has_value());
  ASSERT_TRUE(ctl_vc.has_value());
  pfs::FileId file =
      storage->StartRecording(data_vc->destination_vci, ctl_vc->destination_vci, 9);

  atm::MessageTransport* t = ws->host_transport();
  for (int i = 0; i < 10; ++i) {
    sim_.ScheduleAt(i * Milliseconds(100), [t, &data_vc, &ctl_vc, i]() {
      dev::ControlMessage mark;
      mark.type = dev::ControlType::kSyncMark;
      mark.media_ts = i * Milliseconds(100);
      t->Send(ctl_vc->source_vci, mark.Serialize());
      t->Send(data_vc->source_vci, std::vector<uint8_t>(100, static_cast<uint8_t>(i)));
    });
  }
  sim_.RunUntil(Seconds(2));
  bool synced = false;
  storage->StopRecording(data_vc->destination_vci, [&]() { synced = true; });
  sim_.RunUntilPredicate([&]() { return synced; });

  // Play from media time 500 ms: first record received must be payload 5+.
  auto out_vc = system_.network().OpenVc(storage->endpoint(), ws->host());
  ASSERT_TRUE(out_vc.has_value());
  std::vector<uint8_t> first;
  t->SetHandler(out_vc->destination_vci,
                [&](atm::Vci, std::vector<uint8_t> msg, sim::TimeNs) {
                  if (first.empty()) {
                    first = std::move(msg);
                  }
                });
  ASSERT_TRUE(storage->StartPlayback(file, out_vc->source_vci, 1.0, Milliseconds(500)));
  sim_.RunUntil(sim_.now() + Seconds(2));
  ASSERT_FALSE(first.empty());
  EXPECT_GE(first[0], 5);
}

TEST_F(SystemFixture, UnixNodeServesRpcAndRemoteNames) {
  Workstation* ws = system_.AddWorkstation("ws");
  UnixNode* unix = system_.AddUnixNode("unix");

  naming::CounterObject counter;
  unix->Export("app/counter", &counter);

  // Client on the workstation host: duplex VC pair to the Unix node.
  auto pair = system_.network().OpenDuplex(ws->host(), unix->endpoint());
  ASSERT_TRUE(pair.has_value());
  unix->ServeRpc(pair->first.destination_vci, pair->second.source_vci);
  naming::RpcClient client(&sim_, ws->host_transport(), pair->first.source_vci,
                           pair->second.destination_vci);

  // Mount the Unix node's name space at /global/unix, per the paper's
  // convention for shared names.
  naming::NameSpace local("ws-process");
  local.Mount("global/unix", std::make_shared<naming::RemoteNameSpaceConnection>(&client));

  std::optional<naming::ObjectHandle> handle;
  local.Resolve("global/unix/app/counter",
                [&](std::optional<naming::ObjectHandle> h) { handle = std::move(h); });
  sim_.Run();
  ASSERT_TRUE(handle.has_value());

  // Invoke through the handle: remote procedure call over the ATM network.
  std::vector<uint8_t> delta(8, 0);
  delta[0] = 5;
  naming::InvokeStatus status = naming::InvokeStatus::kTransportError;
  handle->Invoke("add", delta, [&](naming::InvokeStatus s, std::vector<uint8_t>) {
    status = s;
  });
  sim_.Run();
  EXPECT_EQ(status, naming::InvokeStatus::kOk);
  EXPECT_EQ(counter.value(), 5);
  EXPECT_EQ(handle->kind(), "remote-procedure-call");
}

TEST_F(SystemFixture, LiveAvSessionStaysInLipSync) {
  // End-to-end E13: camera and microphone stream across the backbone to a
  // display and speaker; the playback controller aligns their play-out using
  // the devices' own timestamps.
  Workstation* src = system_.AddWorkstation("src");
  Workstation* dst = system_.AddWorkstation("dst");
  dev::AtmCamera::Config cam_cfg;
  cam_cfg.width = 64;
  cam_cfg.height = 48;
  dev::AtmCamera* camera = src->AddCamera(cam_cfg);
  dev::AudioCapture* mic = src->AddAudioCapture();
  dev::AtmDisplay* display = dst->AddDisplay(320, 240);
  dev::AudioPlayback* speaker = dst->AddAudioPlayback();

  auto v = system_.BuildStream("av/video")
               .From(src, camera)
               .To(dst, display)
               .WithWindow(0, 0)
               .Open();
  auto a = system_.BuildStream("av/audio")
               .From(src, mic)
               .To(dst, speaker)
               .WithSpec(StreamSpec::Audio(0))
               .Open();
  ASSERT_TRUE(v.report.ok());
  ASSERT_TRUE(a.report.ok());

  dev::PlaybackController::Options opts;
  opts.margin = Milliseconds(30);
  dev::PlaybackController sync(&sim_, opts);
  const int vs = sync.RegisterStream("video");
  const int as = sync.RegisterStream("audio");
  display->set_packet_callback(
      [&sync, vs, last = std::make_shared<uint32_t>(UINT32_MAX)](atm::Vci, uint32_t frame_no,
                                                                 sim::TimeNs ts) {
        if (*last != frame_no) {
          *last = frame_no;
          sync.OnArrival(vs, ts);
        }
      });
  speaker->set_playout_callback(
      [&sync, as](sim::TimeNs capture_ts, sim::TimeNs) { sync.OnArrival(as, capture_ts); });

  camera->Start(v.session->source_vci());
  mic->Start(a.session->source_vci());
  sim_.RunUntil(Seconds(5));

  ASSERT_GT(sync.skew().count(), 100);
  // Audio sits behind a 10 ms jitter buffer; the controller still keeps the
  // playout skew far below a frame time.
  EXPECT_LT(sync.skew().Quantile(0.9), 15e6);
  EXPECT_EQ(speaker->underruns(), 0);
}

TEST_F(SystemFixture, QosSessionRejectedWhenLinksFull) {
  Workstation* a = system_.AddWorkstation("a");
  Workstation* b = system_.AddWorkstation("b");
  dev::AtmCamera::Config cfg;
  dev::AtmCamera* cam1 = a->AddCamera(cfg);
  dev::AtmCamera* cam2 = a->AddCamera(cfg);
  dev::AtmDisplay* disp = b->AddDisplay(640, 480);

  const StreamSpec heavy = StreamSpec::Video(25, 100'000'000);
  auto s1 = system_.BuildStream("s1")
                .From(a, cam1)
                .To(b, disp)
                .WithSpec(heavy)
                .WithWindow(0, 0)
                .Open();
  EXPECT_TRUE(s1.report.ok());
  // The second 100 Mb/s reservation exceeds the 155 Mb/s backbone uplink;
  // admission answers with a counter-offer for the remaining capacity.
  auto s2 = system_.BuildStream("s2")
                .From(a, cam2)
                .To(b, disp)
                .WithSpec(heavy)
                .WithWindow(0, 200)
                .Open();
  EXPECT_FALSE(s2.report.ok());
  EXPECT_EQ(s2.report.failure, AdmitFailure::kNetworkBandwidth);
  ASSERT_EQ(s2.report.verdict, AdmitVerdict::kCounterOffer);
  ASSERT_TRUE(s2.report.counter_offer.has_value());
  EXPECT_EQ(s2.report.counter_offer->bandwidth_bps, 55'000'000);
}

}  // namespace
}  // namespace pegasus::core
