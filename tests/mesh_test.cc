// Mesh and dual-homed topologies: per-link admission accounting when VCs —
// and legs of ONE pipeline contract — share a directed link. The hub
// topologies of PegasusSystem never produce shared links; a triangle mesh
// and a pipeline that revisits a workstation uplink do, which is exactly
// what Network::PathLinks + the joint per-link admission pass exist for.
#include <gtest/gtest.h>

#include <algorithm>

#include "src/atm/network.h"
#include "src/core/compute_node.h"
#include "src/core/stream.h"
#include "src/core/system.h"
#include "src/nemesis/atropos.h"
#include "src/nemesis/kernel.h"

namespace pegasus {
namespace {

using sim::Milliseconds;

// --- raw Network mesh: a triangle of switches, endpoints on each corner,
// plus a dual-homed storage front-end (one NIC on sw2, one on sw3) ---
class MeshFixture : public ::testing::Test {
 protected:
  MeshFixture() : network_(&sim_) {
    sw1_ = network_.AddSwitch("sw1", 8);
    sw2_ = network_.AddSwitch("sw2", 8);
    sw3_ = network_.AddSwitch("sw3", 8);
    network_.ConnectSwitches(sw1_, 0, sw2_, 0, 155'000'000);
    network_.ConnectSwitches(sw2_, 1, sw3_, 0, 155'000'000);
    network_.ConnectSwitches(sw1_, 1, sw3_, 1, 155'000'000);
    a_ = network_.AddEndpoint("a", sw1_, 2, 155'000'000);
    b_ = network_.AddEndpoint("b", sw1_, 3, 155'000'000);
    c_ = network_.AddEndpoint("c", sw2_, 2, 155'000'000);
    // The dual-homed storage front-end: two NICs of one node.
    store_nic1_ = network_.AddEndpoint("store-nic1", sw2_, 3, 155'000'000);
    store_nic2_ = network_.AddEndpoint("store-nic2", sw3_, 2, 155'000'000);
  }

  // The directed inter-switch link sw1 -> sw2 (second hop of a -> c).
  atm::Link* Sw1ToSw2() {
    auto links = network_.PathLinks(a_, c_);
    EXPECT_TRUE(links.has_value());
    return (*links)[1];
  }

  sim::Simulator sim_;
  atm::Network network_;
  atm::Switch* sw1_;
  atm::Switch* sw2_;
  atm::Switch* sw3_;
  atm::Endpoint* a_;
  atm::Endpoint* b_;
  atm::Endpoint* c_;
  atm::Endpoint* store_nic1_;
  atm::Endpoint* store_nic2_;
};

TEST_F(MeshFixture, PathLinksTakeTheDirectMeshEdge) {
  // a(sw1) -> c(sw2): uplink, the direct sw1->sw2 edge, downlink — BFS does
  // not detour through sw3.
  auto links = network_.PathLinks(a_, c_);
  ASSERT_TRUE(links.has_value());
  EXPECT_EQ(links->size(), 3u);
  // Both a and b reach c over the same directed middle link.
  auto links_b = network_.PathLinks(b_, c_);
  ASSERT_TRUE(links_b.has_value());
  EXPECT_EQ((*links)[1], (*links_b)[1]);
  // The reverse direction is a different link (directed accounting).
  auto reverse = network_.PathLinks(c_, a_);
  ASSERT_TRUE(reverse.has_value());
  EXPECT_NE((*links)[1], (*reverse)[1]);
}

TEST_F(MeshFixture, SharedDirectedLinkAdmitsAndRejectsJointly) {
  atm::Link* shared = Sw1ToSw2();
  const int64_t rejections_before = network_.admission_rejections();

  auto vc1 = network_.OpenVc(a_, c_, atm::QosSpec{100'000'000});
  ASSERT_TRUE(vc1.has_value());
  EXPECT_EQ(network_.ReservedBandwidth(shared), 100'000'000);

  // A second VC from a different endpoint crosses the same directed link:
  // joint accounting rejects what no longer fits...
  auto vc2 = network_.OpenVc(b_, c_, atm::QosSpec{100'000'000});
  EXPECT_FALSE(vc2.has_value());
  EXPECT_EQ(network_.admission_rejections(), rejections_before + 1);
  // ...and admits exactly the remainder.
  EXPECT_EQ(network_.PathAvailableBps(b_, c_), 55'000'000);
  auto vc3 = network_.OpenVc(b_, c_, atm::QosSpec{55'000'000});
  ASSERT_TRUE(vc3.has_value());
  EXPECT_EQ(network_.AvailableBandwidth(shared), 0);

  // Raising either reservation in place is refused; freeing one re-opens
  // headroom for the other.
  EXPECT_FALSE(network_.UpdateVcQos(vc3->id, atm::QosSpec{56'000'000}));
  ASSERT_TRUE(network_.CloseVc(vc1->id));
  EXPECT_TRUE(network_.UpdateVcQos(vc3->id, atm::QosSpec{155'000'000}));
  EXPECT_EQ(network_.AvailableBandwidth(shared), 0);
}

TEST_F(MeshFixture, DualHomedPathsAccountPerLink) {
  // Another workstation saturates the sw1->sw2 edge toward the storage
  // node's first NIC; a's path to that home now has nothing left.
  auto vc1 = network_.OpenVc(b_, store_nic1_, atm::QosSpec{155'000'000});
  ASSERT_TRUE(vc1.has_value());
  EXPECT_EQ(network_.PathAvailableBps(a_, store_nic1_), 0);

  // The second home rides sw1->sw3: per-link (not per-node) accounting
  // leaves that path untouched, so the dual-homed node stays reachable at
  // full rate.
  EXPECT_EQ(network_.PathAvailableBps(a_, store_nic2_), 155'000'000);
  auto vc2 = network_.OpenVc(a_, store_nic2_, atm::QosSpec{155'000'000});
  ASSERT_TRUE(vc2.has_value());

  // Releasing both reservations restores both homes in full (a's own
  // uplink was the remaining constraint once vc2 held it).
  ASSERT_TRUE(network_.CloseVc(vc1->id));
  EXPECT_EQ(network_.PathAvailableBps(a_, store_nic1_), 0);  // vc2 holds a's uplink
  ASSERT_TRUE(network_.CloseVc(vc2->id));
  EXPECT_EQ(network_.PathAvailableBps(a_, store_nic1_), 155'000'000);
  EXPECT_EQ(network_.PathAvailableBps(a_, store_nic2_), 155'000'000);
}

// --- system-level: two legs of ONE pipeline contract share a directed
// uplink (camera -> backbone compute -> desk-side compute -> remote
// display revisits the desk's uplink), exercising the joint per-link
// admission pass end to end ---
class SharedLegFixture : public ::testing::Test {
 protected:
  SharedLegFixture() : system_(&sim_) {
    desk_ = system_.AddWorkstation("desk");
    viewer_ = system_.AddWorkstation("viewer");
    hub_compute_ = system_.AddComputeServer("hub-fx");
    edge_compute_ = system_.AddComputeServer("edge-fx", desk_);
    dev::AtmCamera::Config cfg;
    camera_ = desk_->AddCamera(cfg);
    display_ = viewer_->AddDisplay(640, 480);
  }

  core::StreamResult OpenChain(const core::StreamSpec& spec) {
    dev::TileProcessor::Config stage;
    stage.transform = dev::InvertTransform();
    return system_.BuildStream("revisit")
        .From(desk_, camera_)
        .Via(hub_compute_, stage)
        .Via(edge_compute_, stage)
        .To(viewer_, display_)
        .WithSpec(spec)
        .Open();
  }

  // The directed desk -> backbone uplink, shared by legs 0 and 2.
  atm::Link* DeskUplink(core::StreamSession* session) {
    const std::vector<atm::Link*>* leg0 = system_.network().VcLinks(session->legs()[0].vc);
    EXPECT_NE(leg0, nullptr);
    return (*leg0)[1];
  }

  sim::Simulator sim_;
  core::PegasusSystem system_;
  core::Workstation* desk_;
  core::Workstation* viewer_;
  core::ComputeNode* hub_compute_;
  core::ComputeNode* edge_compute_;
  dev::AtmCamera* camera_;
  dev::AtmDisplay* display_;
};

TEST_F(SharedLegFixture, LegsSharingAnUplinkAreChargedJointly) {
  // 70 Mb/s per leg: legs 0 and 2 both cross the desk uplink, so it must
  // carry 140 Mb/s of this ONE contract.
  core::StreamSpec spec = core::StreamSpec::Video(25, 70'000'000);
  auto r = OpenChain(spec);
  ASSERT_TRUE(r.report.ok());
  ASSERT_EQ(r.session->leg_count(), 3);

  atm::Link* uplink = DeskUplink(r.session);
  const std::vector<atm::Link*>* leg2 = system_.network().VcLinks(r.session->legs()[2].vc);
  ASSERT_NE(leg2, nullptr);
  ASSERT_NE(std::find(leg2->begin(), leg2->end(), uplink), leg2->end())
      << "topology regression: legs 0 and 2 no longer share the desk uplink";
  EXPECT_EQ(system_.network().ReservedBandwidth(uplink), 140'000'000);

  // Close releases both legs' shares of the shared link.
  r.session->Close();
  EXPECT_EQ(system_.network().ReservedBandwidth(uplink), 0);
}

TEST_F(SharedLegFixture, OverSharedLinkCountersScaleBothLegsJointly) {
  // 100 Mb/s per leg fits every link individually but puts 200 Mb/s on the
  // shared 155 Mb/s uplink: the chain is refused with BOTH crossing legs
  // scaled to their joint share, leg 1 untouched.
  core::StreamSpec spec = core::StreamSpec::Video(25, 100'000'000);
  auto r = OpenChain(spec);
  EXPECT_FALSE(r.report.ok());
  ASSERT_EQ(r.report.verdict, core::AdmitVerdict::kCounterOffer);
  EXPECT_EQ(r.report.failure, core::AdmitFailure::kNetworkBandwidth);
  EXPECT_EQ(std::count(r.report.failures.begin(), r.report.failures.end(),
                       core::AdmitFailure::kNetworkBandwidth),
            2);
  ASSERT_TRUE(r.report.counter_offer.has_value());
  const core::StreamSpec& counter = *r.report.counter_offer;
  EXPECT_EQ(counter.LegBandwidthBps(0), 77'500'000);
  EXPECT_EQ(counter.LegBandwidthBps(1), 100'000'000);
  EXPECT_EQ(counter.LegBandwidthBps(2), 77'500'000);
  // Nothing was left allocated by the refusal.
  for (const auto& link : system_.network().links()) {
    EXPECT_EQ(system_.network().ReservedBandwidth(link.get()), 0);
  }

  // The joint counter-offer is admissible verbatim.
  auto accepted = OpenChain(counter);
  ASSERT_TRUE(accepted.report.ok());
  EXPECT_EQ(system_.network().ReservedBandwidth(DeskUplink(accepted.session)), 155'000'000);
}

TEST_F(SharedLegFixture, RenegotiationHonoursSharedLinkJointly) {
  core::StreamSpec spec = core::StreamSpec::Video(25, 70'000'000);
  auto r = OpenChain(spec);
  ASSERT_TRUE(r.report.ok());

  // Raising both crossing legs to 80 Mb/s would put 160 Mb/s on the shared
  // uplink: the joint pre-check refuses and leaves the contract intact.
  core::StreamSpec more = r.session->contract().granted;
  more.legs[0].bandwidth_bps = 80'000'000;
  more.legs[2].bandwidth_bps = 80'000'000;
  auto refused = r.session->Renegotiate(more);
  EXPECT_FALSE(refused.ok());
  EXPECT_EQ(refused.failure, core::AdmitFailure::kNetworkBandwidth);
  EXPECT_EQ(r.session->legs()[0].granted_bps, 70'000'000);
  EXPECT_EQ(r.session->legs()[2].granted_bps, 70'000'000);
  EXPECT_EQ(system_.network().ReservedBandwidth(DeskUplink(r.session)), 140'000'000);

  // 77/77 fits (154 <= 155) and rebinds in place.
  core::StreamSpec fits = r.session->contract().granted;
  fits.legs[0].bandwidth_bps = 77'000'000;
  fits.legs[2].bandwidth_bps = 77'000'000;
  EXPECT_TRUE(r.session->Renegotiate(fits).ok());
  EXPECT_EQ(system_.network().ReservedBandwidth(DeskUplink(r.session)), 154'000'000);
}

// --- deterministic path selection: equal-length paths must tie-break by
// switch insertion order, never by heap address ---

// A diamond with two equal-length routes: hub -> {mid1, mid2} -> sink. The
// BFS expands neighbours in switch-id (insertion) order, so the route via
// mid1 is the pinned golden route; a pointer-ordered expansion would pick
// whichever middle switch the allocator happened to place lower.
TEST(DeterministicRouting, EqualCostDiamondPicksInsertionOrderGoldenRoute) {
  sim::Simulator sim;
  atm::Network net(&sim);
  atm::Switch* hub = net.AddSwitch("hub", 8);
  atm::Switch* mid1 = net.AddSwitch("mid1", 8);
  atm::Switch* mid2 = net.AddSwitch("mid2", 8);
  atm::Switch* sink = net.AddSwitch("sink", 8);
  // Wire mid2 BEFORE mid1 so map-insertion order differs from id order too.
  net.ConnectSwitches(hub, 0, mid2, 0, 155'000'000);
  net.ConnectSwitches(hub, 1, mid1, 0, 155'000'000);
  net.ConnectSwitches(mid1, 1, sink, 0, 155'000'000);
  net.ConnectSwitches(mid2, 1, sink, 1, 155'000'000);
  atm::Endpoint* a = net.AddEndpoint("a", hub, 2, 155'000'000);
  atm::Endpoint* d = net.AddEndpoint("d", sink, 2, 155'000'000);

  auto links = net.PathLinks(a, d);
  ASSERT_TRUE(links.has_value());
  ASSERT_EQ(links->size(), 4u);
  // Golden route: through mid1 (lower switch id), regardless of the order
  // the mesh edges were wired or where the switches live on the heap.
  EXPECT_EQ((*links)[1]->name(), "hub->mid1");
  EXPECT_EQ((*links)[2]->name(), "mid1->sink");

  // A warmed cache returns the same resolution: cached routes inherit the
  // deterministic tie-break (the cache only memoises the BFS result).
  auto again = net.PathLinks(a, d);
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(*again, *links);

  // And the installed VC rides the same golden links.
  auto vc = net.OpenVc(a, d, atm::QosSpec{1'000'000});
  ASSERT_TRUE(vc.has_value());
  const auto* vc_links = net.VcLinks(vc->id);
  ASSERT_NE(vc_links, nullptr);
  EXPECT_EQ(*vc_links, *links);
}

// --- route-cache coherence across topology mutation ---
TEST(RouteCache, TopologyMutationInvalidatesWarmRoutes) {
  sim::Simulator sim;
  atm::Network net(&sim);
  atm::Switch* sw1 = net.AddSwitch("sw1", 8);
  atm::Switch* sw2 = net.AddSwitch("sw2", 8);
  atm::Switch* sw3 = net.AddSwitch("sw3", 8);
  net.ConnectSwitches(sw1, 0, sw2, 0, 155'000'000);
  net.ConnectSwitches(sw2, 1, sw3, 0, 155'000'000);
  atm::Endpoint* a = net.AddEndpoint("a", sw1, 2, 155'000'000);
  atm::Endpoint* d = net.AddEndpoint("d", sw3, 2, 155'000'000);

  // Warm the cache over the 2-inter-switch-hop chain.
  auto before = net.ResolveRoute(a, d);
  ASSERT_TRUE(before.has_value());
  EXPECT_EQ(before->links.size(), 4u);
  const sim::DurationNs latency_before = before->latency_ns;

  // A shortcut appears: sw1 -- sw3 directly. The warm entry must not be
  // served stale.
  net.ConnectSwitches(sw1, 1, sw3, 1, 155'000'000);
  auto after = net.ResolveRoute(a, d);
  ASSERT_TRUE(after.has_value());
  EXPECT_EQ(after->links.size(), 3u);
  EXPECT_EQ(after->links[1]->name(), "sw1->sw3");
  EXPECT_LT(after->latency_ns, latency_before);

  // A route resolved before the mutation carries a stale epoch; OpenVc must
  // fall back to a fresh resolve and install over the NEW (shorter) path.
  auto vc = net.OpenVc(a, d, atm::QosSpec{1'000'000}, *before);
  ASSERT_TRUE(vc.has_value());
  const auto* vc_links = net.VcLinks(vc->id);
  ASSERT_NE(vc_links, nullptr);
  EXPECT_EQ(vc_links->size(), 3u);
  EXPECT_EQ((*vc_links)[1]->name(), "sw1->sw3");
  EXPECT_EQ(vc->hop_count, 2);
}

// --- rejection-cause accounting: no-path and unattached-endpoint failures
// count (split from bandwidth), instead of silently returning nullopt ---
TEST(RejectionAccounting, NoPathAndUnattachedFailuresAreCounted) {
  sim::Simulator sim;
  atm::Network net(&sim);
  atm::Switch* sw1 = net.AddSwitch("sw1", 8);
  atm::Switch* island = net.AddSwitch("island", 8);  // never connected
  atm::Endpoint* a = net.AddEndpoint("a", sw1, 0, 155'000'000);
  atm::Endpoint* b = net.AddEndpoint("b", sw1, 1, 10'000'000);
  atm::Endpoint* far = net.AddEndpoint("far", island, 0, 155'000'000);

  EXPECT_EQ(net.admission_rejections(), 0);

  // Unreachable destination: counted as no_path.
  EXPECT_FALSE(net.OpenVc(a, far, atm::QosSpec{1'000'000}).has_value());
  EXPECT_EQ(net.admission_rejections_no_path(), 1);
  EXPECT_EQ(net.admission_rejections_bandwidth(), 0);

  // An endpoint this network never attached: also no_path.
  atm::Endpoint stray(&sim, "stray");
  EXPECT_FALSE(net.OpenVc(a, &stray).has_value());
  EXPECT_EQ(net.admission_rejections_no_path(), 2);

  // OpenDuplex across the partition counts the failing direction too.
  EXPECT_FALSE(net.OpenDuplex(far, a).has_value());
  EXPECT_EQ(net.admission_rejections_no_path(), 3);

  // A bandwidth refusal lands in the other bucket, and the historical
  // total keeps counting both causes.
  EXPECT_FALSE(net.OpenVc(a, b, atm::QosSpec{20'000'000}).has_value());
  EXPECT_EQ(net.admission_rejections_bandwidth(), 1);
  EXPECT_EQ(net.admission_rejections(), 4);
}

}  // namespace
}  // namespace pegasus
