// Admission invariants under randomized churn.
//
// Whatever sequence of open / renegotiate / close the system sees — point-
// to-point streams, compute pipelines, recordings with disk reservations,
// accepted counter-offers — the granted contracts never overcommit any
// layer: per-link reserved bandwidth stays within capacity, per-kernel
// admitted utilisation within the scheduler's capacity, and the PFS stream
// budget is never exceeded. And closing everything returns all three
// layers to their initial free capacity, exactly.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/core/compute_node.h"
#include "src/core/stream.h"
#include "src/core/system.h"
#include "src/nemesis/atropos.h"
#include "src/nemesis/kernel.h"
#include "src/sim/random.h"

namespace pegasus::core {
namespace {

using nemesis::QosParams;
using sim::Milliseconds;

class AdmissionChurnProperty : public ::testing::TestWithParam<uint64_t> {
 protected:
  AdmissionChurnProperty() : system_(&sim_) {
    for (int i = 0; i < 3; ++i) {
      Workstation* ws = system_.AddWorkstation("ws" + std::to_string(i));
      kernels_.push_back(std::make_unique<nemesis::Kernel>(
          &sim_, std::make_unique<nemesis::AtroposScheduler>(1.0)));
      ws->AttachKernel(kernels_.back().get());
      dev::AtmCamera::Config cfg;
      cfg.width = 64;
      cfg.height = 64;
      cameras_.push_back(ws->AddCamera(cfg));
      displays_.push_back(ws->AddDisplay(640, 480));
      workstations_.push_back(ws);
    }
    compute_ = system_.AddComputeServer();
    kernels_.push_back(std::make_unique<nemesis::Kernel>(
        &sim_, std::make_unique<nemesis::AtroposScheduler>(1.0)));
    compute_->AttachKernel(kernels_.back().get());

    pfs::PfsConfig pfs_cfg;
    pfs_cfg.segment_size = 64 << 10;
    pfs_cfg.block_size = 8 << 10;
    pfs_cfg.geometry.capacity_bytes = 64 << 20;
    storage_ = system_.AddStorageServer(pfs_cfg);
  }

  void CheckInvariants(const char* when) {
    for (const auto& link : system_.network().links()) {
      const int64_t reserved = system_.network().ReservedBandwidth(link.get());
      ASSERT_GE(reserved, 0) << when;
      ASSERT_LE(reserved, link->bits_per_second()) << when;
    }
    for (const auto& kernel : kernels_) {
      const double admitted = kernel->scheduler()->AdmittedUtilization();
      ASSERT_GE(admitted, -1e-9) << when;
      ASSERT_LE(admitted, kernel->scheduler()->Capacity() + 1e-9) << when;
    }
    const int64_t disk = storage_->server()->reserved_stream_bps();
    ASSERT_GE(disk, 0) << when;
    ASSERT_LE(disk, storage_->server()->StreamBudgetBps()) << when;
  }

  // The network's flat (link-id-indexed) reservation ledger must agree with
  // a shadow ledger rebuilt from first principles: the sum of every open
  // VC's granted peak rate over the links it traverses. Catches any drift
  // between the dense counters and the actual set of reservations.
  void CheckShadowLedger(const std::vector<StreamSession*>& open, const char* when) {
    std::map<const atm::Link*, int64_t> shadow;
    for (StreamSession* s : open) {
      for (const auto& leg : s->legs()) {
        const atm::VcDescriptor* vc = system_.network().GetVc(leg.vc);
        ASSERT_NE(vc, nullptr) << when;
        if (vc->qos.peak_bps <= 0) {
          continue;
        }
        const std::vector<atm::Link*>* links = system_.network().VcLinks(leg.vc);
        ASSERT_NE(links, nullptr) << when;
        for (const atm::Link* l : *links) {
          shadow[l] += vc->qos.peak_bps;
        }
      }
    }
    for (const auto& link : system_.network().links()) {
      auto it = shadow.find(link.get());
      const int64_t expected = it == shadow.end() ? 0 : it->second;
      ASSERT_EQ(system_.network().ReservedBandwidth(link.get()), expected)
          << when << " on " << link->name();
    }
  }

  // Grows the fleet mid-churn: a fresh workstation (own local switch, so
  // the network gains a switch, an inter-switch edge and endpoint links
  // after the route cache is warm) that subsequent random opens may use.
  void AddLateWorkstation() {
    Workstation* ws = system_.AddWorkstation("ws-late");
    kernels_.push_back(std::make_unique<nemesis::Kernel>(
        &sim_, std::make_unique<nemesis::AtroposScheduler>(1.0)));
    ws->AttachKernel(kernels_.back().get());
    dev::AtmCamera::Config cfg;
    cfg.width = 64;
    cfg.height = 64;
    cameras_.push_back(ws->AddCamera(cfg));
    displays_.push_back(ws->AddDisplay(640, 480));
    workstations_.push_back(ws);
  }

  QosParams RandomCpu(sim::Rng& rng, double max_fraction) {
    if (rng.Bernoulli(0.3)) {
      return QosParams{0, Milliseconds(100), true};  // no demand
    }
    const int64_t slice_ms =
        rng.UniformInt(1, static_cast<int64_t>(100.0 * max_fraction));
    return QosParams::Guaranteed(Milliseconds(slice_ms), Milliseconds(100));
  }

  StreamResult RandomOpen(sim::Rng& rng, int serial) {
    const int64_t last = static_cast<int64_t>(workstations_.size()) - 1;
    const size_t src = static_cast<size_t>(rng.UniformInt(0, last));
    const size_t dst = static_cast<size_t>(rng.UniformInt(0, last));
    StreamSpec spec = StreamSpec::Video(25, rng.UniformInt(0, 90'000'000));
    spec.source_cpu = RandomCpu(rng, 0.5);
    const bool via_compute = rng.Bernoulli(0.4);
    const bool to_storage = rng.Bernoulli(0.25);
    if (via_compute) {
      spec.legs.resize(2);
      spec.legs[0].compute_cpu = RandomCpu(rng, 0.6);
      if (rng.Bernoulli(0.5)) {
        spec.legs[1].bandwidth_bps = rng.UniformInt(0, 90'000'000);
      }
    }
    StreamBuilder builder = system_.BuildStream("churn-" + std::to_string(serial));
    builder.From(workstations_[src], cameras_[src]);
    if (via_compute) {
      dev::TileProcessor::Config stage;
      builder.Via(compute_, stage);
    }
    if (to_storage) {
      spec.disk_bps = rng.UniformInt(0, storage_->server()->StreamBudgetBps() / 2);
      builder.ToStorage(storage_);
    } else {
      spec.sink_cpu = RandomCpu(rng, 0.5);
      builder.To(workstations_[dst], displays_[dst]);
    }
    return builder.WithSpec(spec).Open();
  }

  // A random mutation of the session's granted contract.
  StreamSpec RandomRenegotiation(sim::Rng& rng, StreamSession* session) {
    StreamSpec spec = session->contract().granted;
    if (spec.legs.empty()) {
      spec.bandwidth_bps = rng.UniformInt(0, 120'000'000);
    } else {
      for (auto& leg : spec.legs) {
        if (rng.Bernoulli(0.6)) {
          leg.bandwidth_bps = rng.UniformInt(0, 120'000'000);
        }
      }
      if (rng.Bernoulli(0.5)) {
        spec.legs[0].compute_cpu = RandomCpu(rng, 0.8);
      }
    }
    if (rng.Bernoulli(0.4)) {
      spec.source_cpu = RandomCpu(rng, 0.8);
    }
    if (rng.Bernoulli(0.4) && spec.sink_cpu.slice > 0) {
      spec.sink_cpu = RandomCpu(rng, 0.8);
    }
    if (spec.disk_bps > 0 && rng.Bernoulli(0.5)) {
      spec.disk_bps = rng.UniformInt(0, storage_->server()->StreamBudgetBps());
    }
    return spec;
  }

  sim::Simulator sim_;
  PegasusSystem system_;
  std::vector<Workstation*> workstations_;
  std::vector<std::unique_ptr<nemesis::Kernel>> kernels_;
  std::vector<dev::AtmCamera*> cameras_;
  std::vector<dev::AtmDisplay*> displays_;
  ComputeNode* compute_ = nullptr;
  StorageNode* storage_ = nullptr;
};

TEST_P(AdmissionChurnProperty, GrantsNeverExceedCapacityAndCloseRestoresAll) {
  sim::Rng rng(GetParam());
  const int64_t base_vcs = system_.network().open_vc_count();
  std::vector<StreamSession*> open;
  int accepted = 0;
  int countered = 0;

  for (int op = 0; op < 150; ++op) {
    if (op == 75) {
      // Mid-churn topology mutation: the route cache is warm for every
      // workstation pair by now. The new workstation's routes must be
      // resolvable immediately (cache coherence across the epoch bump),
      // and later random opens exercise mixed old/new pairs.
      AddLateWorkstation();
      StreamBuilder probe = system_.BuildStream("late-probe");
      probe.From(workstations_.back(), cameras_.back());
      probe.To(workstations_[0], displays_[0]);
      auto pr = probe.WithSpec(StreamSpec::Video(25, 1'000'000)).Open();
      ASSERT_TRUE(pr.report.ok()) << "route to freshly added workstation not seen";
      open.push_back(pr.session);
      ASSERT_NO_FATAL_FAILURE(CheckShadowLedger(open, "after mutation"));
    }
    const int64_t kind = rng.UniformInt(0, 9);
    if (kind < 5 || open.empty()) {
      auto r = RandomOpen(rng, op);
      if (r.report.ok()) {
        open.push_back(r.session);
        ++accepted;
      } else if (r.report.verdict == AdmitVerdict::kCounterOffer && rng.Bernoulli(0.5)) {
        // A joint counter-offer must itself be admissible, immediately.
        ASSERT_TRUE(r.report.counter_offer.has_value());
        StreamBuilder retry = system_.BuildStream("counter-" + std::to_string(op));
        // Rebuild the same topology the counter was computed for.
        // (Counter specs carry explicit legs, so a 2-leg offer needs the
        // compute detour again.)
        const size_t src = 0;
        retry.From(workstations_[src], cameras_[src]);
        if (r.report.counter_offer->legs.size() == 2) {
          dev::TileProcessor::Config stage;
          retry.Via(compute_, stage);
        }
        if (r.report.counter_offer->disk_bps > 0 ||
            (r.report.counter_offer->sink_cpu.slice == 0 && rng.Bernoulli(0.5))) {
          retry.ToStorage(storage_);
        } else {
          retry.To(workstations_[1], displays_[1]);
        }
        auto r2 = retry.WithSpec(*r.report.counter_offer).Open();
        // The retry may legitimately bounce off a *different* path than the
        // one the counter was computed on (we rebuilt with fixed hosts);
        // what may not happen is an over-commitment — checked below.
        if (r2.report.ok()) {
          open.push_back(r2.session);
          ++countered;
        }
      }
    } else if (kind < 8) {
      const size_t pick = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(open.size()) - 1));
      StreamSession* session = open[pick];
      auto report = session->Renegotiate(RandomRenegotiation(rng, session));
      if (!report.ok() && report.verdict == AdmitVerdict::kCounterOffer) {
        // A renegotiation counter-offer is admissible on the same session.
        ASSERT_TRUE(report.counter_offer.has_value());
        ASSERT_TRUE(session->Renegotiate(*report.counter_offer).ok())
            << "joint renegotiation counter-offer was not admissible";
      }
    } else {
      const size_t pick = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(open.size()) - 1));
      open[pick]->Close();
      open.erase(open.begin() + static_cast<std::ptrdiff_t>(pick));
    }
    ASSERT_NO_FATAL_FAILURE(CheckInvariants("after op"));
    ASSERT_NO_FATAL_FAILURE(CheckShadowLedger(open, "after op"));
  }
  // The run must actually have exercised admission both ways.
  EXPECT_GT(accepted, 0);

  // Closing everything returns every layer to its initial free capacity.
  for (StreamSession* session : open) {
    session->Close();
  }
  for (const auto& link : system_.network().links()) {
    EXPECT_EQ(system_.network().ReservedBandwidth(link.get()), 0);
  }
  for (const auto& kernel : kernels_) {
    EXPECT_EQ(kernel->scheduler()->AdmittedUtilization(), 0.0);
  }
  EXPECT_EQ(storage_->server()->reserved_stream_bps(), 0);
  EXPECT_EQ(system_.network().open_vc_count(), base_vcs);
  EXPECT_EQ(compute_->active_stages(), 0);
}

// The tree analogue: randomized multicast open / graft / prune /
// renegotiate / close, interleaved with unicast churn on the same fabric.
// The shadow ledger rebuilds reservations as (tree rate) x (each tree link
// ONCE) — any per-leaf double-charging of a shared edge, or a prune
// releasing a link a remaining leaf still needs, breaks the comparison
// immediately. Closing everything must restore all layers exactly.
TEST_P(AdmissionChurnProperty, MulticastChurnChargesSharedEdgesOnce) {
  sim::Rng rng(GetParam() ^ 0x9e3779b97f4a7c15ULL);
  const int64_t base_vcs = system_.network().open_vc_count();

  struct Tree {
    StreamSession* session = nullptr;
    std::vector<size_t> leaves;  // workstation indices, graft order
  };
  std::vector<Tree> trees;
  std::vector<StreamSession*> unicast;
  int trees_opened = 0;
  int grafts = 0;
  int prunes = 0;

  auto all_sessions = [&]() {
    std::vector<StreamSession*> all = unicast;
    for (const Tree& t : trees) {
      all.push_back(t.session);
    }
    return all;
  };
  auto make_sink = [&](size_t ws) {
    MulticastSink sink;
    sink.ws = workstations_[ws];
    sink.display = displays_[ws];
    return sink;
  };

  for (int op = 0; op < 150; ++op) {
    const int64_t kind = rng.UniformInt(0, 9);
    if (kind < 2 || trees.empty()) {
      // Open a tree: random source host endpoint, a random non-empty set of
      // the OTHER workstations' displays as leaves.
      const size_t src = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(workstations_.size()) - 1));
      Tree tree;
      std::vector<MulticastSink> sinks;
      for (size_t ws = 0; ws < workstations_.size(); ++ws) {
        if (ws != src && rng.Bernoulli(0.6)) {
          sinks.push_back(make_sink(ws));
          tree.leaves.push_back(ws);
        }
      }
      if (sinks.empty()) {
        const size_t ws = (src + 1) % workstations_.size();
        sinks.push_back(make_sink(ws));
        tree.leaves.push_back(ws);
      }
      StreamSpec spec = StreamSpec::Video(25, rng.UniformInt(1'000'000, 40'000'000));
      spec.sink_cpu = RandomCpu(rng, 0.2);
      StreamBuilder builder = system_.BuildStream("mcast-" + std::to_string(op));
      builder.FromEndpoint(workstations_[src], workstations_[src]->host());
      auto r = builder.ToMany(sinks).WithSpec(spec).Open();
      if (r.report.ok()) {
        tree.session = r.session;
        trees.push_back(tree);
        ++trees_opened;
      }
    } else if (kind < 4) {
      // Unicast churn rides alongside: shared links must carry the sum of
      // both worlds' reservations.
      auto r = RandomOpen(rng, op);
      if (r.report.ok()) {
        unicast.push_back(r.session);
      }
    } else if (kind < 6) {
      // Graft: a workstation not yet watching this tree joins.
      Tree& tree = trees[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(trees.size()) - 1))];
      std::vector<size_t> candidates;
      for (size_t ws = 0; ws < workstations_.size(); ++ws) {
        bool watching = false;
        for (size_t leaf : tree.leaves) {
          watching = watching || leaf == ws;
        }
        if (!watching &&
            tree.session->SinkVci(workstations_[ws]->device_endpoint(displays_[ws])) ==
                std::nullopt) {
          candidates.push_back(ws);
        }
      }
      if (!candidates.empty()) {
        const size_t ws = candidates[static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(candidates.size()) - 1))];
        if (tree.session->AddSink(make_sink(ws)).ok()) {
          tree.leaves.push_back(ws);
          ++grafts;
        }
      }
    } else if (kind < 7) {
      // Prune: a random leaf leaves; the last leaf must be refused.
      Tree& tree = trees[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(trees.size()) - 1))];
      const size_t pick = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(tree.leaves.size()) - 1));
      const size_t ws = tree.leaves[pick];
      const bool removed =
          tree.session->RemoveSink(workstations_[ws]->device_endpoint(displays_[ws]));
      if (tree.leaves.size() == 1) {
        ASSERT_FALSE(removed) << "pruning the last leaf must be refused";
      } else {
        ASSERT_TRUE(removed);
        tree.leaves.erase(tree.leaves.begin() + static_cast<std::ptrdiff_t>(pick));
        ++prunes;
      }
    } else if (kind < 8) {
      // Renegotiate the whole tree as one unit.
      Tree& tree = trees[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(trees.size()) - 1))];
      StreamSpec spec = tree.session->contract().granted;
      spec.bandwidth_bps = rng.UniformInt(1'000'000, 60'000'000);
      auto report = tree.session->Renegotiate(spec);
      if (!report.ok() && report.verdict == AdmitVerdict::kCounterOffer) {
        ASSERT_TRUE(report.counter_offer.has_value());
        ASSERT_TRUE(tree.session->Renegotiate(*report.counter_offer).ok())
            << "multicast renegotiation counter-offer was not admissible";
      }
    } else if (kind < 9 && !unicast.empty()) {
      const size_t pick = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(unicast.size()) - 1));
      unicast[pick]->Close();
      unicast.erase(unicast.begin() + static_cast<std::ptrdiff_t>(pick));
    } else {
      const size_t pick = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(trees.size()) - 1));
      trees[pick].session->Close();
      trees.erase(trees.begin() + static_cast<std::ptrdiff_t>(pick));
    }
    ASSERT_NO_FATAL_FAILURE(CheckInvariants("after mcast op"));
    ASSERT_NO_FATAL_FAILURE(CheckShadowLedger(all_sessions(), "after mcast op"));
  }
  EXPECT_GT(trees_opened, 0);
  EXPECT_GT(grafts, 0);
  EXPECT_GT(prunes, 0);

  for (StreamSession* session : all_sessions()) {
    session->Close();
  }
  for (const auto& link : system_.network().links()) {
    EXPECT_EQ(system_.network().ReservedBandwidth(link.get()), 0);
  }
  for (const auto& kernel : kernels_) {
    EXPECT_EQ(kernel->scheduler()->AdmittedUtilization(), 0.0);
  }
  EXPECT_EQ(storage_->server()->reserved_stream_bps(), 0);
  EXPECT_EQ(system_.network().open_vc_count(), base_vcs);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AdmissionChurnProperty,
                         ::testing::Range(uint64_t{1}, uint64_t{9}));

}  // namespace
}  // namespace pegasus::core
