// Region-sharded parallel simulation: the sharded engine must reproduce
// the single-simulator engine bit for bit — identical event interleavings
// at the observable level (delivery instants, counters, fleet fingerprints)
// at every shard count — while the conservative window machinery actually
// exercises boundary channels and sync points.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/atm/network.h"
#include "src/scenario/topology.h"
#include "src/scenario/workload.h"
#include "src/sim/event_queue.h"
#include "src/sim/shard.h"

namespace pegasus {
namespace {

// FNV-1a over a (tag, time) observation log — the same digest discipline
// determinism_test applies to the single engine.
uint64_t DigestLog(const std::vector<std::pair<int, sim::TimeNs>>& log) {
  uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xff;
      h *= 1099511628211ULL;
    }
  };
  for (const auto& [tag, t] : log) {
    mix(static_cast<uint64_t>(tag));
    mix(static_cast<uint64_t>(t));
  }
  return h;
}

// --- Window machinery ------------------------------------------------------

TEST(ShardGroupTest, WindowsInterleaveShardAndControlEventsInTimeOrder) {
  sim::Simulator control;
  sim::ShardGroup group(&control, {/*shards=*/2, /*threads=*/1});
  sim::Simulator* a = group.shard(0);
  sim::Simulator* b = group.shard(1);
  sim::BoundaryChannel* ab = group.RegisterBoundary(a, b, /*lookahead=*/10);

  std::vector<std::pair<int, sim::TimeNs>> log;
  a->ScheduleAt(5, [&]() {
    log.emplace_back(0, a->now());
    ab->Post(a->now() + 10, [&]() { log.emplace_back(2, b->now()); });
  });
  b->ScheduleAt(12, [&]() { log.emplace_back(1, b->now()); });
  control.ScheduleAt(20, [&]() { log.emplace_back(3, control.now()); });

  group.RunUntil(30);

  ASSERT_EQ(log.size(), 4u);
  EXPECT_EQ(log[0], (std::pair<int, sim::TimeNs>{0, 5}));
  EXPECT_EQ(log[1], (std::pair<int, sim::TimeNs>{1, 12}));
  EXPECT_EQ(log[2], (std::pair<int, sim::TimeNs>{2, 15}));
  EXPECT_EQ(log[3], (std::pair<int, sim::TimeNs>{3, 20}));
  EXPECT_EQ(a->now(), 30);
  EXPECT_EQ(b->now(), 30);
  EXPECT_EQ(control.now(), 30);
  EXPECT_GE(group.stats().windows, 1u);
  EXPECT_EQ(group.stats().sync_points, 1u);
  EXPECT_EQ(group.stats().messages, 1u);
}

TEST(ShardGroupTest, EventsAtRunUntilLimitExecute) {
  sim::Simulator control;
  sim::ShardGroup group(&control, {/*shards=*/2, /*threads=*/1});
  int ran = 0;
  group.shard(0)->ScheduleAt(100, [&]() { ++ran; });
  group.shard(1)->ScheduleAt(100, [&]() { ++ran; });
  control.ScheduleAt(100, [&]() { ++ran; });
  group.RunUntil(100);
  EXPECT_EQ(ran, 3);
}

// --- Boundary-link torture: minimum lookahead, saturating both ways --------

struct TortureResult {
  uint64_t digest = 0;
  uint64_t received_a = 0;
  uint64_t received_b = 0;
  uint64_t trunk_sent = 0;
  uint64_t trunk_dropped = 0;
};

// Two switches wired by a 1 ns propagation trunk (the minimum legal
// lookahead), one endpoint on each side, VCs both ways, and both endpoints
// flooding at coprime cadences well above the trunk rate — every window is
// as small as windows get and the trunk queue lives at its limit.
TortureResult RunTorture(int shards, int threads) {
  sim::Simulator control;
  sim::ShardGroup group(&control, {shards, threads});
  atm::Network net(&control);
  scenario::RegionPartitioner part(&net, shards > 0 ? &group : nullptr);

  part.EnterRegion(0);
  atm::Switch* sa = net.AddSwitch("sa", 2);
  part.EnterRegion(1);
  atm::Switch* sb = net.AddSwitch("sb", 2);
  net.ConnectSwitches(sa, 0, sb, 0, /*bps=*/20'000'000, /*propagation=*/1);

  part.EnterRegion(0);
  atm::Endpoint* ea = net.AddEndpoint("ea", sa, 1, 155'000'000);
  part.EnterRegion(1);
  atm::Endpoint* eb = net.AddEndpoint("eb", sb, 1, 155'000'000);

  auto vc_ab = net.OpenVc(ea, eb);
  auto vc_ba = net.OpenVc(eb, ea);
  EXPECT_TRUE(vc_ab.has_value());
  EXPECT_TRUE(vc_ba.has_value());

  std::vector<std::pair<int, sim::TimeNs>> log_a;
  std::vector<std::pair<int, sim::TimeNs>> log_b;
  ea->set_cell_handler(
      [&](const atm::Cell&) { log_a.emplace_back(0, ea->simulator()->now()); });
  eb->set_cell_handler(
      [&](const atm::Cell&) { log_b.emplace_back(1, eb->simulator()->now()); });

  // Self-rescheduling floods on each endpoint's own shard clock: bursts big
  // enough to overrun the 20 Mb/s trunk, cadences coprime to each other and
  // to every cell time so emission instants never phase-lock.
  struct Flood {
    atm::Endpoint* ep;
    atm::Vci vci;
    sim::DurationNs period;
    void Fire() {
      atm::Cell cell;
      cell.vci = vci;
      for (int i = 0; i < 8; ++i) {
        cell.end_of_frame = (i == 7);
        ep->SendCell(cell);
      }
      ep->simulator()->ScheduleAfter(period, [this]() { Fire(); });
    }
  };
  Flood fa{ea, vc_ab->source_vci, 7001};
  Flood fb{eb, vc_ba->source_vci, 9973};
  ea->simulator()->ScheduleAt(1, [&]() { fa.Fire(); });
  eb->simulator()->ScheduleAt(1, [&]() { fb.Fire(); });

  if (shards > 0) {
    group.RunUntil(sim::Milliseconds(20));
  } else {
    control.RunUntil(sim::Milliseconds(20));
  }

  TortureResult result;
  result.received_a = ea->cells_received();
  result.received_b = eb->cells_received();
  for (const auto& link : net.links()) {
    if (link->propagation_delay() == 1) {
      result.trunk_sent += link->cells_sent();
      result.trunk_dropped += link->cells_dropped();
    }
  }
  std::vector<std::pair<int, sim::TimeNs>> log = std::move(log_a);
  log.insert(log.end(), log_b.begin(), log_b.end());
  result.digest = DigestLog(log);
  return result;
}

TEST(ShardGroupTest, BoundaryTortureMatchesSingleSimulatorBitForBit) {
  const TortureResult reference = RunTorture(/*shards=*/0, /*threads=*/0);
  EXPECT_GT(reference.received_a, 0u);
  EXPECT_GT(reference.received_b, 0u);
  // The floods overrun the trunk by design; the tail-drop path must be hot.
  EXPECT_GT(reference.trunk_dropped, 0u);

  for (const auto& [shards, threads] : std::vector<std::pair<int, int>>{
           {1, 1}, {2, 1}, {2, 2}, {2, 0}}) {
    const TortureResult sharded = RunTorture(shards, threads);
    EXPECT_EQ(sharded.digest, reference.digest)
        << "shards=" << shards << " threads=" << threads;
    EXPECT_EQ(sharded.received_a, reference.received_a);
    EXPECT_EQ(sharded.received_b, reference.received_b);
    EXPECT_EQ(sharded.trunk_sent, reference.trunk_sent);
    EXPECT_EQ(sharded.trunk_dropped, reference.trunk_dropped);
  }
}

// Three switches in a line, with the WORST-CASE lookahead split: a 1 ns
// trunk between sa and sb, a 5 us trunk between sb and sc. Per-channel
// lookahead lets sc's region run microseconds ahead while sa/sb crawl at
// nanosecond windows — every delivery instant must still land bit-equal to
// the single-simulator schedule, including traffic that crosses BOTH
// trunks (and so transits the fast region on its way to the slow one).
TortureResult RunAsymmetricTorture(int shards, int threads) {
  sim::Simulator control;
  sim::ShardGroup group(&control, {shards, threads});
  atm::Network net(&control);
  scenario::RegionPartitioner part(&net, shards > 0 ? &group : nullptr);

  part.EnterRegion(0);
  atm::Switch* sa = net.AddSwitch("sa", 2);
  part.EnterRegion(1);
  atm::Switch* sb = net.AddSwitch("sb", 3);
  part.EnterRegion(2);
  atm::Switch* sc = net.AddSwitch("sc", 2);
  net.ConnectSwitches(sa, 0, sb, 0, /*bps=*/20'000'000, /*propagation=*/1);
  net.ConnectSwitches(sb, 1, sc, 0, /*bps=*/20'000'000, /*propagation=*/sim::Microseconds(5));

  part.EnterRegion(0);
  atm::Endpoint* ea = net.AddEndpoint("ea", sa, 1, 155'000'000);
  part.EnterRegion(1);
  atm::Endpoint* eb = net.AddEndpoint("eb", sb, 2, 155'000'000);
  part.EnterRegion(2);
  atm::Endpoint* ec = net.AddEndpoint("ec", sc, 1, 155'000'000);

  auto vc_ab = net.OpenVc(ea, eb);
  auto vc_ba = net.OpenVc(eb, ea);
  auto vc_ac = net.OpenVc(ea, ec);  // crosses the 1 ns AND the 5 us trunk
  auto vc_ca = net.OpenVc(ec, ea);
  EXPECT_TRUE(vc_ab.has_value());
  EXPECT_TRUE(vc_ba.has_value());
  EXPECT_TRUE(vc_ac.has_value());
  EXPECT_TRUE(vc_ca.has_value());

  std::vector<std::pair<int, sim::TimeNs>> log_a;
  std::vector<std::pair<int, sim::TimeNs>> log_b;
  std::vector<std::pair<int, sim::TimeNs>> log_c;
  ea->set_cell_handler(
      [&](const atm::Cell& cell) { log_a.emplace_back(cell.vci, ea->simulator()->now()); });
  eb->set_cell_handler(
      [&](const atm::Cell& cell) { log_b.emplace_back(cell.vci, eb->simulator()->now()); });
  ec->set_cell_handler(
      [&](const atm::Cell& cell) { log_c.emplace_back(cell.vci, ec->simulator()->now()); });

  struct Flood {
    atm::Endpoint* ep;
    atm::Vci vci_1;
    atm::Vci vci_2;
    sim::DurationNs period;
    uint64_t n = 0;
    void Fire() {
      atm::Cell cell;
      cell.vci = (++n & 1) != 0 || vci_2 == 0 ? vci_1 : vci_2;
      for (int i = 0; i < 8; ++i) {
        cell.end_of_frame = (i == 7);
        ep->SendCell(cell);
      }
      ep->simulator()->ScheduleAfter(period, [this]() { Fire(); });
    }
  };
  Flood fa{ea, vc_ab->source_vci, vc_ac->source_vci, 7001};
  Flood fb{eb, vc_ba->source_vci, 0, 9973};
  Flood fc{ec, vc_ca->source_vci, 0, 11003};
  ea->simulator()->ScheduleAt(1, [&]() { fa.Fire(); });
  eb->simulator()->ScheduleAt(1, [&]() { fb.Fire(); });
  ec->simulator()->ScheduleAt(1, [&]() { fc.Fire(); });

  if (shards > 0) {
    group.RunUntil(sim::Milliseconds(20));
  } else {
    control.RunUntil(sim::Milliseconds(20));
  }

  TortureResult result;
  result.received_a = ea->cells_received();
  result.received_b = eb->cells_received() + ec->cells_received();
  for (const auto& link : net.links()) {
    if (link->propagation_delay() <= sim::Microseconds(5)) {
      result.trunk_sent += link->cells_sent();
      result.trunk_dropped += link->cells_dropped();
    }
  }
  std::vector<std::pair<int, sim::TimeNs>> log = std::move(log_a);
  log.insert(log.end(), log_b.begin(), log_b.end());
  log.insert(log.end(), log_c.begin(), log_c.end());
  result.digest = DigestLog(log);
  return result;
}

TEST(ShardGroupTest, AsymmetricLookaheadTortureMatchesSingleSimulatorBitForBit) {
  const TortureResult reference = RunAsymmetricTorture(/*shards=*/0, /*threads=*/0);
  EXPECT_GT(reference.received_a, 0u);
  EXPECT_GT(reference.received_b, 0u);
  EXPECT_GT(reference.trunk_dropped, 0u);

  for (const auto& [shards, threads] : std::vector<std::pair<int, int>>{
           {1, 1}, {3, 1}, {3, 2}, {3, 0}}) {
    const TortureResult sharded = RunAsymmetricTorture(shards, threads);
    EXPECT_EQ(sharded.digest, reference.digest)
        << "shards=" << shards << " threads=" << threads;
    EXPECT_EQ(sharded.received_a, reference.received_a);
    EXPECT_EQ(sharded.received_b, reference.received_b);
    EXPECT_EQ(sharded.trunk_sent, reference.trunk_sent);
    EXPECT_EQ(sharded.trunk_dropped, reference.trunk_dropped);
  }
}

// A registered channel that carries nothing must cost nothing at the merge:
// windows tick, the merge pass doesn't.
TEST(ShardGroupTest, ZeroBoundaryTrafficWindowsSkipMergePass) {
  sim::Simulator control;
  sim::ShardGroup group(&control, {/*shards=*/2, /*threads=*/1});
  sim::Simulator* a = group.shard(0);
  sim::Simulator* b = group.shard(1);
  sim::BoundaryChannel* ab = group.RegisterBoundary(a, b, /*lookahead=*/100);

  struct Ticker {
    sim::Simulator* s;
    int left;
    void Fire() {
      if (--left > 0) {
        s->ScheduleAfter(50, [this]() { Fire(); });
      }
    }
  };
  Ticker ta{a, 100};
  Ticker tb{b, 100};
  a->ScheduleAt(1, [&]() { ta.Fire(); });
  b->ScheduleAt(1, [&]() { tb.Fire(); });
  group.RunUntil(10'000);

  EXPECT_GT(group.stats().windows, 0u);
  EXPECT_EQ(group.stats().merges, 0u);
  EXPECT_EQ(group.stats().handoffs, 0u);
  EXPECT_EQ(group.stats().messages, 0u);

  // Positive control: one post makes exactly one hand-off and one merged
  // window.
  int delivered = 0;
  a->ScheduleAt(10'050, [&]() {
    ab->Post(a->now() + 100, [&]() { ++delivered; });
  });
  group.RunUntil(20'000);
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(group.stats().handoffs, 1u);
  EXPECT_EQ(group.stats().merges, 1u);
  EXPECT_EQ(group.stats().messages, 1u);
}

// A burst of control events at one instant is ONE global sync point, not
// one per event.
TEST(ShardGroupTest, SameTimestampControlEventsQuiesceOnce) {
  sim::Simulator control;
  sim::ShardGroup group(&control, {/*shards=*/2, /*threads=*/1});
  int ran = 0;
  group.shard(0)->ScheduleAt(50, []() {});
  group.shard(1)->ScheduleAt(150, []() {});
  for (int i = 0; i < 3; ++i) {
    control.ScheduleAt(100, [&]() { ++ran; });
  }
  group.RunUntil(200);
  EXPECT_EQ(ran, 3);
  EXPECT_EQ(group.stats().sync_points, 1u);

  // Distinct instants still quiesce separately.
  control.ScheduleAt(300, [&]() { ++ran; });
  control.ScheduleAt(400, [&]() { ++ran; });
  group.RunUntil(500);
  EXPECT_EQ(ran, 5);
  EXPECT_EQ(group.stats().sync_points, 3u);
}

// Per-channel lookahead: a busy pair coupled by 5 us trunks must not be
// throttled to the 1 ns lookahead of a channel between two IDLE shards —
// under the old global-min horizon this topology planned a window per
// nanosecond-scale step; per-channel bounds plan one per 5 us.
TEST(ShardGroupTest, PerChannelLookaheadWidensWindows) {
  sim::Simulator control;
  sim::ShardGroup group(&control, {/*shards=*/4, /*threads=*/1});
  sim::Simulator* a = group.shard(0);
  sim::Simulator* b = group.shard(1);
  group.RegisterBoundary(a, b, sim::Microseconds(5));
  group.RegisterBoundary(b, a, sim::Microseconds(5));
  // The distant fast pair: registered, never used, never scheduled.
  group.RegisterBoundary(group.shard(2), group.shard(3), /*lookahead=*/1);

  struct Ticker {
    sim::Simulator* s;
    int left;
    void Fire() {
      if (--left > 0) {
        s->ScheduleAfter(sim::Microseconds(1), [this]() { Fire(); });
      }
    }
  };
  Ticker ta{a, 1000};
  Ticker tb{b, 1000};
  a->ScheduleAt(1, [&]() { ta.Fire(); });
  b->ScheduleAt(1, [&]() { tb.Fire(); });
  group.RunUntil(sim::Milliseconds(1));

  // ~1 ms of 1 us events under 5 us windows: on the order of 200 windows.
  // The global-min horizon would need one window per event (2000+).
  EXPECT_GT(group.stats().windows, 0u);
  EXPECT_LT(group.stats().windows, 1000u);
}

// Tearing down a group whose workers are parked at the window barrier must
// neither deadlock nor leak threads — run a few windows, then destroy
// immediately, repeatedly, at several thread counts.
TEST(ShardGroupTest, DestructionWithParkedWorkersIsClean) {
  for (int threads : {2, 4}) {
    for (int iter = 0; iter < 25; ++iter) {
      sim::Simulator control;
      sim::ShardGroup group(&control, {/*shards=*/4, threads});
      sim::Simulator* a = group.shard(0);
      sim::Simulator* b = group.shard(1);
      sim::BoundaryChannel* ab = group.RegisterBoundary(a, b, /*lookahead=*/10);
      group.RegisterBoundary(b, a, /*lookahead=*/10);
      int delivered = 0;
      for (int s = 0; s < 4; ++s) {
        for (sim::TimeNs t = 1; t < 200; t += 7) {
          group.shard(s)->ScheduleAt(t, []() {});
        }
      }
      a->ScheduleAt(5, [&]() {
        ab->Post(a->now() + 10, [&]() { ++delivered; });
      });
      group.RunUntil(100 + iter);
      EXPECT_EQ(delivered, 1);
      // Destructor runs here with all workers parked mid-sequence.
    }
    // And the degenerate case: construct, never run, destroy.
    for (int iter = 0; iter < 25; ++iter) {
      sim::Simulator control;
      sim::ShardGroup group(&control, {/*shards=*/4, threads});
    }
  }
}

// --- Fleet equivalence: the full metro scenario, every shard count ---------

scenario::TopologyParams SmallMetro() {
  scenario::TopologyParams params;
  params.core_switches = 2;
  params.agg_per_core = 2;
  params.edge_per_agg = 2;
  params.hosts_per_edge = 3;
  params.storage_per_core = 1;
  return params;
}

scenario::WorkloadParams ChurnParams() {
  scenario::WorkloadParams wparams;
  wparams.seed = 7;
  wparams.arrivals_per_sec = 40.0;
  wparams.mean_holding_sec = 1.0;
  wparams.data_session_fraction = 0.25;
  return wparams;
}

// shards == 0 runs the classic single-simulator engine.
uint64_t RunFleet(int shards, int threads) {
  sim::Simulator sim;
  core::PegasusSystem system(&sim);
  const scenario::TopologyParams tparams = SmallMetro();
  sim::ShardGroup group(&sim, {shards > 0 ? shards : 1, threads});
  const scenario::MetroTopology topo =
      scenario::BuildMetroTopology(system, tparams, shards > 0 ? &group : nullptr);
  scenario::ScenarioEngine engine(&system, &topo, ChurnParams());
  const scenario::FleetMetrics& metrics = engine.Run(sim::Seconds(2));
  EXPECT_GT(metrics.arrivals, 0);
  EXPECT_GT(metrics.admitted, 0);
  EXPECT_GT(metrics.link_cells_sent, 0u);
  return metrics.Fingerprint();
}

TEST(ShardGroupTest, FleetFingerprintIdenticalAtEveryShardCount) {
  const uint64_t reference = RunFleet(/*shards=*/0, /*threads=*/0);
  for (const auto& [shards, threads] :
       std::vector<std::pair<int, int>>{{1, 1}, {2, 2}, {4, 2}, {8, 0}}) {
    EXPECT_EQ(RunFleet(shards, threads), reference)
        << "shards=" << shards << " threads=" << threads;
  }
}

// With the broadcast tier switched on, multicast trees span regions and
// replicated trains cross boundary channels; grafts and prunes land at
// global sync points. None of that may perturb the observable interleaving:
// the fleet fingerprint must stay bit-identical at every shard count, and
// the broadcast plane must actually have run (trees opened, leaves grafted).
uint64_t RunBroadcastFleet(int shards, int threads, scenario::FleetMetrics* out) {
  sim::Simulator sim;
  core::PegasusSystem system(&sim);
  const scenario::TopologyParams tparams = SmallMetro();
  sim::ShardGroup group(&sim, {shards > 0 ? shards : 1, threads});
  const scenario::MetroTopology topo =
      scenario::BuildMetroTopology(system, tparams, shards > 0 ? &group : nullptr);
  scenario::WorkloadParams wparams = ChurnParams();
  wparams.broadcast_weight = 0.30;
  wparams.data_session_fraction = 0.5;  // channels must move replicated cells
  scenario::ScenarioEngine engine(&system, &topo, wparams);
  const scenario::FleetMetrics& metrics = engine.Run(sim::Seconds(2));
  EXPECT_GT(metrics.arrivals, 0);
  EXPECT_GT(metrics.admitted, 0);
  EXPECT_GT(metrics.link_cells_sent, 0u);
  if (out != nullptr) {
    *out = metrics;
  }
  return metrics.Fingerprint();
}

TEST(ShardGroupTest, BroadcastFleetFingerprintIdenticalAtEveryShardCount) {
  scenario::FleetMetrics reference_metrics;
  const uint64_t reference = RunBroadcastFleet(/*shards=*/0, /*threads=*/0, &reference_metrics);
  EXPECT_GT(reference_metrics.mcast_trees_opened, 0);
  EXPECT_GT(reference_metrics.mcast_grafts, 0);
  EXPECT_GT(reference_metrics.mcast_peak_leaves, 1);
  for (const auto& [shards, threads] :
       std::vector<std::pair<int, int>>{{1, 1}, {2, 2}, {4, 2}, {8, 0}}) {
    scenario::FleetMetrics metrics;
    EXPECT_EQ(RunBroadcastFleet(shards, threads, &metrics), reference)
        << "shards=" << shards << " threads=" << threads;
    // The fan-out counters sit outside the fingerprint; pin them too.
    EXPECT_EQ(metrics.mcast_trees_opened, reference_metrics.mcast_trees_opened);
    EXPECT_EQ(metrics.mcast_grafts, reference_metrics.mcast_grafts);
    EXPECT_EQ(metrics.mcast_prunes, reference_metrics.mcast_prunes);
    EXPECT_EQ(metrics.mcast_peak_leaves, reference_metrics.mcast_peak_leaves);
  }
}

TEST(ShardGroupTest, ShardedFleetActuallyCrossesBoundaries) {
  sim::Simulator sim;
  core::PegasusSystem system(&sim);
  sim::ShardGroup group(&sim, {/*shards=*/4, /*threads=*/2});
  const scenario::MetroTopology topo =
      scenario::BuildMetroTopology(system, SmallMetro(), &group);
  scenario::ScenarioEngine engine(&system, &topo, ChurnParams());
  engine.Run(sim::Seconds(1));

  EXPECT_GT(group.stats().windows, 0u);
  EXPECT_GT(group.stats().sync_points, 0u);
  EXPECT_GT(group.stats().messages, 0u);
  // Cross-region wires are exactly the core mesh and core-agg trunks.
  int boundaries = 0;
  for (const auto& link : system.network().links()) {
    boundaries += link->is_boundary() ? 1 : 0;
  }
  EXPECT_GT(boundaries, 0);
}

// --- Per-purpose RNG streams ----------------------------------------------

// The data-session fraction draws from its own stream, so varying it must
// not shift which sessions arrive, where they go, or what admission says
// (with the monitor off and renegotiation disabled, data cells influence
// nothing upstream of them).
TEST(ScenarioRngStreamsTest, DataFractionDoesNotPerturbArrivalsOrAdmission) {
  auto run = [](double data_fraction) {
    sim::Simulator sim;
    core::PegasusSystem system(&sim);
    const scenario::TopologyParams tparams = SmallMetro();
    const scenario::MetroTopology topo = scenario::BuildMetroTopology(system, tparams);
    scenario::WorkloadParams wparams;
    wparams.seed = 11;
    wparams.arrivals_per_sec = 40.0;
    wparams.mean_holding_sec = 1.0;
    wparams.renegotiate_fraction = 0.0;
    wparams.data_session_fraction = data_fraction;
    scenario::ScenarioEngine engine(&system, &topo, wparams);
    return engine.Run(sim::Seconds(2));
  };
  const scenario::FleetMetrics lean = run(0.0);
  const scenario::FleetMetrics heavy = run(0.6);
  EXPECT_GT(lean.arrivals, 0);
  EXPECT_EQ(lean.arrivals, heavy.arrivals);
  EXPECT_EQ(lean.admitted, heavy.admitted);
  EXPECT_EQ(lean.blocked, heavy.blocked);
  EXPECT_EQ(lean.peak_concurrent, heavy.peak_concurrent);
  // The data plane, by contrast, must respond to the knob.
  EXPECT_GT(heavy.link_cells_sent, lean.link_cells_sent);
}

}  // namespace
}  // namespace pegasus
