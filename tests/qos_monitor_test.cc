// The closed-loop QoS monitor: congestion severity derived from observed
// link queues and drops, disk budget pressure derived from windowed play-out
// lateness — with EWMA smoothing, hysteresis against signal churn, and
// decay-to-zero recovery signals that restore adapting streams. No test here
// calls SignalCongestion or SignalBudgetPressure explicitly; every signal is
// the monitor's own.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/atm/network.h"
#include "src/core/qos_monitor.h"
#include "src/core/stream.h"
#include "src/core/system.h"
#include "src/sim/event_queue.h"

namespace pegasus::core {
namespace {

using sim::Milliseconds;
using sim::Seconds;

// One recorded congestion callback on a VC.
struct Signal {
  double severity = 0.0;
  sim::TimeNs at = 0;
};

// Schedules a burst of `cells_per_ms` raw cells per millisecond on `vci`
// from `ep`, for every millisecond in [from, to).
void Blast(sim::Simulator* sim, atm::Endpoint* ep, atm::Vci vci, int cells_per_ms,
           bool low_priority, sim::TimeNs from, sim::TimeNs to) {
  for (sim::TimeNs t = from; t < to; t += Milliseconds(1)) {
    sim->ScheduleAt(t, [ep, vci, cells_per_ms, low_priority]() {
      for (int i = 0; i < cells_per_ms; ++i) {
        atm::Cell cell;
        cell.vci = vci;
        cell.low_priority = low_priority;
        ep->SendCell(cell);
      }
    });
  }
}

// A slow two-endpoint network whose uplink is easy to overload, plus a
// monitor with the default mapping at a 10 ms tick.
class MonitorNetFixture : public ::testing::Test {
 protected:
  MonitorNetFixture() : net_(&sim_) {
    sw_ = net_.AddSwitch("sw", 4);
    // 10 Mb/s: one cell every 42.4 us, ~23.6 cells per millisecond.
    a_ = net_.AddEndpoint("a", sw_, 0, 10'000'000);
    b_ = net_.AddEndpoint("b", sw_, 1, 10'000'000);
    monitor_ = std::make_unique<QosMonitor>(&sim_, &net_, QosMonitor::Config());
  }

  // The link the blast overloads: a's uplink into the switch.
  const atm::Link* Uplink() const { return a_->uplink(); }

  sim::Simulator sim_;
  atm::Network net_;
  atm::Switch* sw_ = nullptr;
  atm::Endpoint* a_ = nullptr;
  atm::Endpoint* b_ = nullptr;
  std::unique_ptr<QosMonitor> monitor_;
};

// A sustained 2x overload trajectory: the monitor's smoothed severity must
// converge near the true lost-capacity fraction (~0.53), reach the VC's
// handler, and decay to a zero (recovery) signal once the source stops.
TEST_F(MonitorNetFixture, SeverityTracksDropTrajectoryAndRecovers) {
  auto vc = net_.OpenVc(a_, b_, atm::QosSpec{5'000'000});
  ASSERT_TRUE(vc.has_value());
  std::vector<Signal> signals;
  net_.SetCongestionHandler(vc->id, [&](atm::VcId, const atm::Link* link, double severity) {
    EXPECT_EQ(link, Uplink());
    signals.push_back({severity, sim_.now()});
  });
  monitor_->Start();

  // 50 cells/ms offered against ~23.6 deliverable: drop fraction ~0.53.
  Blast(&sim_, a_, vc->source_vci, 50, /*low_priority=*/false, Milliseconds(100),
        Milliseconds(800));
  sim_.RunUntil(Milliseconds(790));

  ASSERT_FALSE(signals.empty());
  EXPECT_GT(monitor_->congestion_signals(), 0);
  // The announced severity settled near the measured loss fraction.
  EXPECT_NEAR(signals.back().severity, 0.53, 0.18);
  EXPECT_NEAR(monitor_->link_score(Uplink()), 0.53, 0.1);
  EXPECT_GT(monitor_->link_severity(Uplink()), 0.0);

  // The overload ends: the smoothed score decays below the off threshold
  // and the monitor announces the all-clear for that link.
  sim_.RunUntil(Milliseconds(1200));
  ASSERT_GE(signals.size(), 2u);
  EXPECT_EQ(signals.back().severity, 0.0);
  EXPECT_EQ(monitor_->congestion_recoveries(), 1);
  EXPECT_EQ(monitor_->link_severity(Uplink()), 0.0);
  EXPECT_LT(monitor_->link_score(Uplink()), 0.05);

  // Severity never escalated past the loss fraction's neighbourhood, and
  // every non-zero announcement was a real move (no per-tick chatter).
  for (size_t i = 0; i + 1 < signals.size(); ++i) {
    EXPECT_GT(signals[i].severity, 0.0);
    EXPECT_LE(signals[i].severity, monitor_->config().max_severity);
  }
}

// Oscillating occupancy around the threshold band must not flap the
// announced severity: smoothing plus the on/off band plus the hold time
// bound the signal count to a handful over dozens of oscillation cycles.
TEST_F(MonitorNetFixture, HysteresisPreventsSignalChurnOnOscillatingOccupancy) {
  auto vc = net_.OpenVc(a_, b_, atm::QosSpec{5'000'000});
  ASSERT_TRUE(vc.has_value());
  int callbacks = 0;
  net_.SetCongestionHandler(vc->id,
                            [&](atm::VcId, const atm::Link*, double) { ++callbacks; });
  monitor_->Start();

  // 25 cycles of fill-and-drain: 42 ms at 2x rate builds the queue toward
  // its limit (no sustained drops), 42 ms of silence drains it fully. The
  // instantaneous occupancy seen by the 10 ms ticks swings 0 -> ~0.9 -> 0.
  for (int cycle = 0; cycle < 25; ++cycle) {
    const sim::TimeNs start = Milliseconds(100) + cycle * Milliseconds(84);
    Blast(&sim_, a_, vc->source_vci, 47, /*low_priority=*/false, start,
          start + Milliseconds(42));
  }
  sim_.RunUntil(Milliseconds(100) + 25 * Milliseconds(84) + Milliseconds(300));

  // Dozens of occupancy swings, at most a couple of announcements — and
  // never an alternating raise/clear/raise/clear chatter.
  EXPECT_LE(monitor_->congestion_signals(), 3);
  EXPECT_LE(monitor_->congestion_recoveries(), 1);
  EXPECT_LE(callbacks, 4);
  // Occupancy alone is capped well below what real loss can announce.
  for (const auto& link : net_.links()) {
    EXPECT_LE(monitor_->link_severity(link.get()),
              monitor_->config().occupancy_cap + 0.05);
  }
}

// Low-priority (best-effort) drops are discounted by the configured weight:
// the same drop trajectory announces a milder severity when the lost cells
// were best-effort than when they were reserved-class.
TEST_F(MonitorNetFixture, DropSeverityWeighsCellPriority) {
  auto vc = net_.OpenVc(a_, b_, atm::QosSpec{5'000'000});
  ASSERT_TRUE(vc.has_value());
  monitor_->Start();

  Blast(&sim_, a_, vc->source_vci, 50, /*low_priority=*/true, Milliseconds(100),
        Milliseconds(800));
  sim_.RunUntil(Milliseconds(790));

  // Weighted loss: (0.5 * 26.4) / (23.6 + 0.5 * 26.4) ~= 0.36 instead of
  // the unweighted ~0.53 of the high-priority trajectory.
  EXPECT_NEAR(monitor_->link_score(Uplink()), 0.36, 0.08);
  const auto stats = net_.GetLinkStats(Uplink());
  EXPECT_GT(stats.snapshot.cells_dropped_low, 0u);
  EXPECT_EQ(stats.snapshot.cells_dropped_high, 0u);
  EXPECT_EQ(stats.reserved_bps, 5'000'000);
}

// --- system level: the full closed loop through PegasusSystem ---

class ClosedLoopFixture : public ::testing::Test {
 protected:
  ClosedLoopFixture() : system_(&sim_) {
    desk_ = system_.AddWorkstation("desk");
    peer_ = system_.AddWorkstation("peer");
  }

  sim::Simulator sim_;
  PegasusSystem system_;
  Workstation* desk_ = nullptr;
  Workstation* peer_ = nullptr;
};

AdaptationPolicy TestPolicy(AdaptationMode mode = AdaptationMode::kFrameRateScaling) {
  AdaptationPolicy policy;
  policy.mode = mode;
  policy.floor = 0.05;
  policy.hysteresis = 0.02;
  policy.smoothing = 1.0;
  return policy;
}

// The acceptance scenario: with the monitor enabled and NO explicit signal
// calls anywhere, best-effort cross-traffic sharing the desk uplink
// degrades an adapting stream (an applied congestion-triggered adaptation
// event), and the stream restores to nominal after the cross-traffic stops.
TEST_F(ClosedLoopFixture, CrossTrafficDegradesAndRestoresAdaptingStream) {
  dev::AtmCamera::Config cfg;
  cfg.width = 320;
  cfg.height = 240;  // ~17 Mb/s of raw tiles on the wire at 25 fps
  dev::AtmCamera* camera = desk_->AddCamera(cfg);
  dev::AtmDisplay* display = peer_->AddDisplay(640, 480);

  auto r = system_.BuildStream("feed")
               .From(desk_, camera)
               .To(peer_, display)
               .WithSpec(StreamSpec::Video(25, 16'000'000))
               .WithAdaptation(TestPolicy())
               .Open();
  ASSERT_TRUE(r.report.ok());
  StreamSession* session = r.session;
  camera->Start(session->source_vci());

  QosMonitor* monitor = system_.EnableQosMonitor();
  ASSERT_NE(monitor, nullptr);
  EXPECT_EQ(system_.qos_monitor(), monitor);

  // Best-effort cross-traffic from the desk host floods the shared desk ->
  // backbone uplink at line rate for two seconds.
  auto cross = system_.network().OpenVc(desk_->host(), peer_->host());
  ASSERT_TRUE(cross.has_value());
  Blast(&sim_, desk_->host(), cross->source_vci, 500, /*low_priority=*/true, Seconds(1),
        Seconds(3));

  // Mid-blast: the stream has been degraded by a congestion-triggered
  // adaptation event the monitor raised on its own.
  sim_.RunUntil(Seconds(3));
  EXPECT_LT(session->adaptation_fraction(), 1.0);
  EXPECT_LT(session->contract().granted.bandwidth_bps, 16'000'000);
  int applied_congestion = 0;
  for (const AdaptationEvent& e : session->adaptation_log()) {
    if (e.applied && e.trigger == AdaptationEvent::Trigger::kNetworkCongestion) {
      ++applied_congestion;
    }
  }
  EXPECT_GE(applied_congestion, 1);
  // The camera pacing followed the degraded grant.
  EXPECT_EQ(camera->config().pace_bps, session->contract().granted.bandwidth_bps);

  // The cross-traffic stops: queues drain, the monitor announces recovery,
  // and the stream restores to its nominal contract — the half of the loop
  // that never happened without an operator.
  sim_.RunUntil(Seconds(5));
  EXPECT_GE(monitor->congestion_recoveries(), 1);
  EXPECT_NEAR(session->adaptation_fraction(), 1.0, 1e-9);
  EXPECT_EQ(session->contract().granted.bandwidth_bps, 16'000'000);
  EXPECT_EQ(camera->config().pace_bps, 16'000'000);
}

// Disk half of the loop: a synthetic lateness trajectory recorded against
// the file server's quality recorder drives budget pressure onto a reserved
// adapting stream, and the lateness clearing drives the restore.
TEST_F(ClosedLoopFixture, PlayoutLatenessDrivesDiskPressureAndRecovery) {
  pfs::PfsConfig pfs_cfg;
  pfs_cfg.segment_size = 64 << 10;
  pfs_cfg.block_size = 8 << 10;
  pfs_cfg.geometry.capacity_bytes = 64 << 20;
  StorageNode* storage = system_.AddStorageServer(pfs_cfg);

  dev::AtmCamera::Config cfg;
  dev::AtmCamera* camera = desk_->AddCamera(cfg);
  StreamSpec spec = StreamSpec::Video(25, 8'000'000);
  spec.disk_bps = 1'000'000;
  auto r = system_.BuildStream("rec")
               .From(desk_, camera)
               .ToStorage(storage)
               .WithSpec(spec)
               .WithAdaptation(TestPolicy(AdaptationMode::kQualityScaling))
               .Open();
  ASSERT_TRUE(r.report.ok());
  StreamSession* session = r.session;

  QosMonitor* monitor = system_.EnableQosMonitor();
  pfs::PegasusFileServer* server = storage->server();

  // One second of overloaded play-out: every chunk misses its deadline by
  // 5 ms (synthetic trajectory — the monitor cannot tell it from a slow
  // disk, which is the point of measuring instead of asserting).
  for (sim::TimeNs t = Seconds(1); t < Seconds(2); t += Milliseconds(1)) {
    sim_.ScheduleAt(t, [server]() { server->stream_quality().Record(Milliseconds(5)); });
  }

  sim_.RunUntil(Seconds(2));
  EXPECT_GT(monitor->pressure_signals(), 0);
  EXPECT_LT(monitor->disk_fraction(server), 1.0);
  EXPECT_LT(session->contract().granted.disk_bps, 1'000'000);
  EXPECT_LT(session->adaptation_fraction(), 1.0);
  int applied_disk = 0;
  for (const AdaptationEvent& e : session->adaptation_log()) {
    if (e.applied && e.trigger == AdaptationEvent::Trigger::kDiskPressure) {
      ++applied_disk;
    }
  }
  EXPECT_GE(applied_disk, 1);
  // Quality scaling holds the frame rate while bits shrink.
  EXPECT_NEAR(session->contract().granted.frame_rate, 25.0, 1e-9);

  // The lateness stops (windows come back empty): the score decays, the
  // monitor announces fraction 1.0, and the reservation restores.
  sim_.RunUntil(Seconds(3));
  EXPECT_GE(monitor->pressure_recoveries(), 1);
  EXPECT_EQ(monitor->disk_fraction(server), 1.0);
  EXPECT_NEAR(session->adaptation_fraction(), 1.0, 1e-9);
  EXPECT_EQ(session->contract().granted.disk_bps, 1'000'000);
  EXPECT_EQ(server->reserved_stream_bps(), 1'000'000);
}

// The windowed export itself: TakeWindow drains exactly the samples since
// the previous call, keeps cumulative totals, and summarises lateness.
TEST(StreamQualityRecorderTest, WindowedExportDrainsAndAccumulates) {
  pfs::StreamQualityRecorder recorder;
  recorder.Record(-Milliseconds(1));  // on time
  recorder.Record(Milliseconds(4));   // late
  recorder.Record(Milliseconds(8));   // later

  pfs::StreamQualityRecorder::Window w = recorder.TakeWindow();
  EXPECT_EQ(w.chunks, 3);
  EXPECT_EQ(w.deadline_misses, 2);
  EXPECT_EQ(w.max_lateness, Milliseconds(8));
  EXPECT_NEAR(w.mean_lateness, static_cast<double>(Milliseconds(6)), 1.0);

  // Drained: the next window is empty, the cumulative view is not.
  w = recorder.TakeWindow();
  EXPECT_EQ(w.chunks, 0);
  EXPECT_EQ(w.deadline_misses, 0);
  EXPECT_EQ(recorder.chunks(), 3);
  EXPECT_EQ(recorder.deadline_misses(), 2);
  EXPECT_EQ(recorder.max_lateness(), Milliseconds(8));
  EXPECT_NEAR(recorder.mean_lateness(), static_cast<double>(Milliseconds(11)) / 3, 1.0);

  // Sub-tolerance lateness is jitter, not a windowed miss: with the
  // monitor's tolerance set, a windowful of hair-late chunks plus one real
  // miss counts exactly one miss (the cumulative strict counter still sees
  // them all).
  recorder.set_miss_tolerance(Milliseconds(1));
  for (int i = 0; i < 49; ++i) {
    recorder.Record(Milliseconds(1) / 10);  // 0.1 ms late: jitter
  }
  recorder.Record(Milliseconds(2));  // a real miss
  w = recorder.TakeWindow();
  EXPECT_EQ(w.chunks, 50);
  EXPECT_EQ(w.deadline_misses, 1);
  EXPECT_EQ(w.max_lateness, Milliseconds(2));
  EXPECT_EQ(recorder.deadline_misses(), 52);
}

}  // namespace
}  // namespace pegasus::core
