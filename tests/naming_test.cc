// Tests for naming and invocation (§4): name spaces, mounts, maillons, and
// the procedure / protected / remote invocation triad.
#include <gtest/gtest.h>

#include "src/atm/network.h"
#include "src/naming/name_space.h"
#include "src/naming/object.h"
#include "src/naming/rpc.h"

namespace pegasus::naming {
namespace {

using sim::Microseconds;

TEST(ObjectTest, EchoAndCounterBehave) {
  EchoObject echo;
  std::vector<uint8_t> result;
  EXPECT_EQ(echo.Invoke("echo", {1, 2, 3}, &result), InvokeStatus::kOk);
  EXPECT_EQ(result, (std::vector<uint8_t>{1, 2, 3}));
  EXPECT_EQ(echo.Invoke("nope", {}, &result), InvokeStatus::kNoSuchMethod);

  CounterObject counter;
  std::vector<uint8_t> delta(8, 0);
  delta[0] = 7;
  EXPECT_EQ(counter.Invoke("add", delta, &result), InvokeStatus::kOk);
  EXPECT_EQ(counter.value(), 7);
  EXPECT_EQ(counter.Invoke("add", {1, 2}, &result), InvokeStatus::kBadArguments);
  EXPECT_EQ(counter.Invoke("get", {}, &result), InvokeStatus::kOk);
}

TEST(InvocationTest, LocalPathIsFastest) {
  sim::Simulator sim;
  EchoObject obj;
  LocalPath local(&sim, &obj, sim::Nanoseconds(100));
  ProtectedPath prot(&sim, &obj);

  sim::TimeNs local_done = -1;
  local.Call("echo", {1}, [&](InvokeStatus s, std::vector<uint8_t>) {
    EXPECT_EQ(s, InvokeStatus::kOk);
    local_done = sim.now();
  });
  sim.Run();
  const sim::TimeNs t1 = sim.now();
  sim::TimeNs prot_done = -1;
  prot.Call("echo", {1}, [&](InvokeStatus s, std::vector<uint8_t>) {
    EXPECT_EQ(s, InvokeStatus::kOk);
    prot_done = sim.now() - t1;
  });
  sim.Run();
  ASSERT_GE(local_done, 0);
  ASSERT_GE(prot_done, 0);
  // procedure call << protected call (two domain crossings).
  EXPECT_LT(local_done, Microseconds(1));
  EXPECT_GT(prot_done, Microseconds(25));
}

TEST(InvocationTest, ProtectedPathChargesPerByte) {
  sim::Simulator sim;
  EchoObject obj;
  ProtectedPath prot(&sim, &obj);
  sim::TimeNs small_cost = 0;
  prot.Call("echo", std::vector<uint8_t>(10), [&](InvokeStatus, std::vector<uint8_t>) {
    small_cost = sim.now();
  });
  sim.Run();
  sim::TimeNs t1 = sim.now();
  sim::TimeNs big_cost = 0;
  prot.Call("echo", std::vector<uint8_t>(10000), [&](InvokeStatus, std::vector<uint8_t>) {
    big_cost = sim.now() - t1;
  });
  sim.Run();
  EXPECT_GT(big_cost, small_cost);  // copying 10 kB costs more than 10 B
}

TEST(MaillonTest, ResolvesOnceAndCaches) {
  sim::Simulator sim;
  EchoObject obj;
  int resolver_calls = 0;
  ObjectHandle handle(ObjectRef{1}, [&](ObjectRef) {
    ++resolver_calls;
    return std::make_shared<LocalPath>(&sim, &obj);
  });
  EXPECT_FALSE(handle.resolved());
  EXPECT_EQ(handle.kind(), "unresolved");
  for (int i = 0; i < 5; ++i) {
    handle.Invoke("echo", {1}, [](InvokeStatus, std::vector<uint8_t>) {});
  }
  sim.Run();
  // "In the most common case — the object is already there and ready to be
  // invoked — the maillon imposes very little overhead": one resolution.
  EXPECT_EQ(resolver_calls, 1);
  EXPECT_EQ(handle.resolutions(), 1);
  EXPECT_EQ(handle.kind(), "procedure-call");
  EXPECT_EQ(obj.calls(), 5);
}

TEST(MaillonTest, FailedResolutionReportsNoSuchObject) {
  ObjectHandle handle(ObjectRef{1}, [](ObjectRef) { return nullptr; });
  InvokeStatus status = InvokeStatus::kOk;
  handle.Invoke("echo", {}, [&](InvokeStatus s, std::vector<uint8_t>) { status = s; });
  EXPECT_EQ(status, InvokeStatus::kNoSuchObject);
  ObjectHandle empty;
  EXPECT_FALSE(empty.valid());
}

class NameSpaceFixture : public ::testing::Test {
 protected:
  NameSpaceFixture() : ns_("proc") {
    handle_ = ObjectHandle(ObjectRef{7}, [this](ObjectRef) {
      return std::make_shared<LocalPath>(&sim_, &obj_);
    });
  }

  sim::Simulator sim_;
  EchoObject obj_;
  NameSpace ns_;
  ObjectHandle handle_;
};

TEST_F(NameSpaceFixture, BindAndResolveLocal) {
  EXPECT_TRUE(ns_.Bind("dev/camera", handle_));
  auto got = ns_.ResolveLocal("dev/camera");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->ref().value, 7u);
  EXPECT_FALSE(ns_.ResolveLocal("dev/display").has_value());
  EXPECT_FALSE(ns_.ResolveLocal("dev/camera/extra").has_value());
  EXPECT_FALSE(ns_.ResolveLocal("dev").has_value());  // a directory, not an object
}

TEST_F(NameSpaceFixture, UnbindRemoves) {
  EXPECT_TRUE(ns_.Bind("a/b", handle_));
  EXPECT_TRUE(ns_.Unbind("a/b"));
  EXPECT_FALSE(ns_.Unbind("a/b"));
  EXPECT_FALSE(ns_.ResolveLocal("a/b").has_value());
}

TEST_F(NameSpaceFixture, ShortLocalNamesResolveInFewerSteps) {
  // §4: "local names should be shortest ... near to the root of the naming
  // tree". Step counts grow with path depth.
  EXPECT_TRUE(ns_.Bind("cam", handle_));
  EXPECT_TRUE(ns_.Bind("global/site/org/dev/cam", handle_));
  ns_.ResolveLocal("cam");
  EXPECT_EQ(ns_.last_resolution_steps(), 1);
  ns_.ResolveLocal("global/site/org/dev/cam");
  EXPECT_EQ(ns_.last_resolution_steps(), 5);
}

TEST_F(NameSpaceFixture, MountDelegatesSubtree) {
  NameSpace other("other-process");
  EXPECT_TRUE(other.Bind("files/readme", handle_));
  EXPECT_TRUE(ns_.Mount("remote", std::make_shared<LocalNameSpaceConnection>(&other)));

  std::optional<ObjectHandle> got;
  ns_.Resolve("remote/files/readme", [&](std::optional<ObjectHandle> h) { got = std::move(h); });
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->ref().value, 7u);
  // Unknown names below the mount fail through the connection.
  bool called = false;
  ns_.Resolve("remote/files/missing", [&](std::optional<ObjectHandle> h) {
    called = true;
    EXPECT_FALSE(h.has_value());
  });
  EXPECT_TRUE(called);
  EXPECT_TRUE(ns_.Unmount("remote"));
  EXPECT_FALSE(ns_.Unmount("remote"));
}

TEST_F(NameSpaceFixture, ForkInheritsBindingsAndSharesMounts) {
  NameSpace other("other");
  EXPECT_TRUE(other.Bind("x", handle_));
  EXPECT_TRUE(ns_.Bind("local", handle_));
  EXPECT_TRUE(ns_.Mount("mnt", std::make_shared<LocalNameSpaceConnection>(&other)));

  auto child = ns_.Fork("child");
  EXPECT_TRUE(child->ResolveLocal("local").has_value());
  std::optional<ObjectHandle> via_mount;
  child->Resolve("mnt/x", [&](std::optional<ObjectHandle> h) { via_mount = std::move(h); });
  EXPECT_TRUE(via_mount.has_value());
  // The child's tree is a copy: new bindings do not leak back.
  EXPECT_TRUE(child->Bind("child-only", handle_));
  EXPECT_FALSE(ns_.ResolveLocal("child-only").has_value());
}

TEST(PathTest, SplitPathHandlesEdgeCases) {
  EXPECT_EQ(NameSpace::SplitPath("a/b/c"), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(NameSpace::SplitPath("/a//b/"), (std::vector<std::string>{"a", "b"}));
  EXPECT_TRUE(NameSpace::SplitPath("").empty());
  EXPECT_TRUE(NameSpace::SplitPath("///").empty());
}

class RpcFixture : public ::testing::Test {
 protected:
  RpcFixture() : net_(&sim_) {
    sw_ = net_.AddSwitch("sw", 4);
    client_ep_ = net_.AddEndpoint("client", sw_, 0, 155'000'000);
    server_ep_ = net_.AddEndpoint("server", sw_, 1, 155'000'000);
    client_t_ = std::make_unique<atm::MessageTransport>(client_ep_);
    server_t_ = std::make_unique<atm::MessageTransport>(server_ep_);
    auto pair = net_.OpenDuplex(client_ep_, server_ep_);
    EXPECT_TRUE(pair.has_value());
    server_ = std::make_unique<RpcServer>(&sim_, server_t_.get());
    server_->Serve(pair->first.destination_vci, pair->second.source_vci);
    client_ = std::make_unique<RpcClient>(&sim_, client_t_.get(), pair->first.source_vci,
                                          pair->second.destination_vci);
  }

  sim::Simulator sim_;
  atm::Network net_;
  atm::Switch* sw_;
  atm::Endpoint* client_ep_;
  atm::Endpoint* server_ep_;
  std::unique_ptr<atm::MessageTransport> client_t_;
  std::unique_ptr<atm::MessageTransport> server_t_;
  std::unique_ptr<RpcServer> server_;
  std::unique_ptr<RpcClient> client_;
};

TEST_F(RpcFixture, RemoteCallRoundTrip) {
  CounterObject counter;
  server_->ExportObject("counter", &counter);
  std::vector<uint8_t> delta(8, 0);
  delta[0] = 3;
  InvokeStatus status = InvokeStatus::kTransportError;
  client_->Call("counter", "add", delta, [&](InvokeStatus s, std::vector<uint8_t> r) {
    status = s;
    EXPECT_EQ(r.size(), 8u);
  });
  sim_.Run();
  EXPECT_EQ(status, InvokeStatus::kOk);
  EXPECT_EQ(counter.value(), 3);
  EXPECT_EQ(server_->calls_served(), 1);
  EXPECT_EQ(client_->calls_completed(), 1);
  EXPECT_GT(client_->latency().mean(), 0.0);
}

TEST_F(RpcFixture, UnknownObjectAndMethod) {
  EchoObject echo;
  server_->ExportObject("echo", &echo);
  InvokeStatus s1 = InvokeStatus::kOk;
  client_->Call("missing", "echo", {}, [&](InvokeStatus s, std::vector<uint8_t>) { s1 = s; });
  InvokeStatus s2 = InvokeStatus::kOk;
  client_->Call("echo", "missing", {}, [&](InvokeStatus s, std::vector<uint8_t>) { s2 = s; });
  sim_.Run();
  EXPECT_EQ(s1, InvokeStatus::kNoSuchObject);
  EXPECT_EQ(s2, InvokeStatus::kNoSuchMethod);
}

TEST_F(RpcFixture, PipelinedCallsMatchReplies) {
  EchoObject echo;
  server_->ExportObject("echo", &echo);
  std::vector<int> results;
  for (int i = 0; i < 10; ++i) {
    client_->Call("echo", "echo", {static_cast<uint8_t>(i)},
                  [&results](InvokeStatus s, std::vector<uint8_t> r) {
                    EXPECT_EQ(s, InvokeStatus::kOk);
                    results.push_back(r.empty() ? -1 : r[0]);
                  });
  }
  sim_.Run();
  ASSERT_EQ(results.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(results[static_cast<size_t>(i)], i);
  }
}

TEST_F(RpcFixture, LookupAnswersExportState) {
  EchoObject echo;
  server_->ExportObject("present", &echo);
  bool found_present = false;
  bool found_missing = true;
  client_->Lookup("present", [&](bool f) { found_present = f; });
  client_->Lookup("missing", [&](bool f) { found_missing = f; });
  sim_.Run();
  EXPECT_TRUE(found_present);
  EXPECT_FALSE(found_missing);
  EXPECT_EQ(server_->lookup_calls(), 2);
}

TEST_F(RpcFixture, RemoteNameSpaceMountResolvesAndInvokes) {
  // The full §4 flow: resolve a name across a mount to a remote server,
  // receive a maillon whose first invocation travels by RPC.
  CounterObject counter;
  server_->ExportObject("svc/counter", &counter);
  NameSpace local("proc");
  local.Mount("global/fs", std::make_shared<RemoteNameSpaceConnection>(client_.get()));

  std::optional<ObjectHandle> handle;
  local.Resolve("global/fs/svc/counter",
                [&](std::optional<ObjectHandle> h) { handle = std::move(h); });
  sim_.Run();
  ASSERT_TRUE(handle.has_value());
  std::vector<uint8_t> delta(8, 0);
  delta[0] = 9;
  handle->Invoke("add", delta, [](InvokeStatus s, std::vector<uint8_t>) {
    EXPECT_EQ(s, InvokeStatus::kOk);
  });
  sim_.Run();
  EXPECT_EQ(counter.value(), 9);
  EXPECT_EQ(handle->kind(), "remote-procedure-call");
}

TEST_F(RpcFixture, HandlePassingCreatesRemoteConnection) {
  // "Passing an object handle for a local object to a remote process has the
  // side effect of creating a connection through which the object can be
  // invoked remotely": exporting is that side effect; the remote party then
  // builds a RemotePath from the wire name.
  EchoObject echo;
  server_->ExportObject("passed/echo", &echo);
  ObjectHandle imported(ObjectRef{0}, [this](ObjectRef) {
    return std::make_shared<RemotePath>(client_.get(), "passed/echo");
  });
  InvokeStatus status = InvokeStatus::kTransportError;
  imported.Invoke("echo", {42}, [&](InvokeStatus s, std::vector<uint8_t> r) {
    status = s;
    EXPECT_EQ(r, (std::vector<uint8_t>{42}));
  });
  sim_.Run();
  EXPECT_EQ(status, InvokeStatus::kOk);
  EXPECT_EQ(echo.calls(), 1);
}

}  // namespace
}  // namespace pegasus::naming
