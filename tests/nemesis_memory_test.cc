// Unit tests for the single-address-space memory model (§3.1).
#include <gtest/gtest.h>

#include "src/nemesis/memory.h"

namespace pegasus::nemesis {
namespace {

TEST(AddressSpaceTest, StretchesDoNotOverlap) {
  AddressSpace space;
  Stretch* a = space.AllocateStretch(4096);
  Stretch* b = space.AllocateStretch(100);
  Stretch* c = space.AllocateStretch(8192);
  EXPECT_GE(b->base(), a->base() + a->size());
  EXPECT_GE(c->base(), b->base() + b->size());
}

TEST(AddressSpaceTest, FindAndFree) {
  AddressSpace space;
  Stretch* s = space.AllocateStretch(128);
  StretchId id = s->id();
  EXPECT_EQ(space.Find(id), s);
  EXPECT_TRUE(space.Free(id));
  EXPECT_EQ(space.Find(id), nullptr);
  EXPECT_FALSE(space.Free(id));
}

TEST(AddressSpaceTest, StretchAtResolvesInteriorAddresses) {
  AddressSpace space;
  Stretch* s = space.AllocateStretch(1000);
  EXPECT_EQ(space.StretchAt(s->base()), s);
  EXPECT_EQ(space.StretchAt(s->base() + 999), s);
  EXPECT_EQ(space.StretchAt(s->base() + 1000), nullptr);
}

TEST(AddressSpaceTest, CodePlacementReusedForSameImage) {
  AddressSpace space;
  Stretch* first = space.AllocateCodeStretch("libmedia.so#v1", 4096);
  EXPECT_TRUE(space.last_code_placement_reused());
  const VirtAddr base = first->base();
  space.Free(first->id());
  // Re-executing the same image lands at the same address: the cached
  // relocation result is valid again.
  Stretch* second = space.AllocateCodeStretch("libmedia.so#v1", 4096);
  EXPECT_TRUE(space.last_code_placement_reused());
  EXPECT_EQ(second->base(), base);
}

TEST(AddressSpaceTest, CodePlacementUsesSparseTopBits) {
  AddressSpace space;
  Stretch* a = space.AllocateCodeStretch("app-a", 4096);
  Stretch* b = space.AllocateCodeStretch("app-b", 4096);
  // Different images land in different (hashed) slots in the code region.
  EXPECT_NE(a->base() >> 32, b->base() >> 32);
  EXPECT_NE(a->base(), b->base());
}

TEST(AddressSpaceTest, LiveSlotForcesFallbackPlacement) {
  AddressSpace space;
  Stretch* a = space.AllocateCodeStretch("same-image", 4096);
  // The image is still loaded; a second instance cannot share the slot.
  Stretch* b = space.AllocateCodeStretch("same-image", 4096);
  EXPECT_FALSE(space.last_code_placement_reused());
  EXPECT_NE(a->base(), b->base());
}

TEST(ProtectionDomainTest, RightsEnforced) {
  AddressSpace space;
  Stretch* s = space.AllocateStretch(64);
  ProtectionDomain writer("writer");
  ProtectionDomain reader("reader");
  ProtectionDomain stranger("stranger");
  writer.Grant(s, AccessRights::ReadWrite());
  reader.Grant(s, AccessRights::ReadOnly());

  uint8_t data[4] = {1, 2, 3, 4};
  EXPECT_TRUE(writer.Write(s, s->base(), data, 4));
  uint8_t out[4] = {};
  EXPECT_TRUE(reader.Read(s, s->base(), out, 4));
  EXPECT_EQ(out[3], 4);

  // The sink of a unidirectional channel cannot write...
  EXPECT_FALSE(reader.Write(s, s->base(), data, 4));
  EXPECT_EQ(reader.faults(), 1u);
  // ...and an unrelated domain can do nothing at all.
  EXPECT_FALSE(stranger.Read(s, s->base(), out, 4));
  EXPECT_FALSE(stranger.Write(s, s->base(), data, 4));
  EXPECT_EQ(stranger.faults(), 2u);
}

TEST(ProtectionDomainTest, OutOfBoundsAccessFaults) {
  AddressSpace space;
  Stretch* s = space.AllocateStretch(16);
  ProtectionDomain d("d");
  d.Grant(s, AccessRights::ReadWrite());
  uint8_t buf[8] = {};
  EXPECT_FALSE(d.Read(s, s->base() + 12, buf, 8));  // crosses the end
  EXPECT_FALSE(d.Write(s, s->base() - 1, buf, 1));  // before the start
  EXPECT_EQ(d.faults(), 2u);
}

TEST(ProtectionDomainTest, RevokeRemovesAccess) {
  AddressSpace space;
  Stretch* s = space.AllocateStretch(16);
  ProtectionDomain d("d");
  d.Grant(s, AccessRights::ReadOnly());
  uint8_t b = 0;
  EXPECT_TRUE(d.Read(s, s->base(), &b, 1));
  d.Revoke(s);
  EXPECT_FALSE(d.Read(s, s->base(), &b, 1));
}

TEST(ProtectionDomainTest, SharedSegmentVisibleToBoth) {
  // §3.1: "objects may be shared in shared read/write segments".
  AddressSpace space;
  Stretch* s = space.AllocateStretch(8);
  ProtectionDomain d1("d1");
  ProtectionDomain d2("d2");
  d1.Grant(s, AccessRights::ReadWrite());
  d2.Grant(s, AccessRights::ReadWrite());
  uint8_t v = 42;
  EXPECT_TRUE(d1.Write(s, s->base() + 3, &v, 1));
  uint8_t out = 0;
  EXPECT_TRUE(d2.Read(s, s->base() + 3, &out, 1));
  EXPECT_EQ(out, 42);  // same backing bytes: one address space
}

}  // namespace
}  // namespace pegasus::nemesis
