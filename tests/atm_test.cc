// Unit tests for the ATM substrate: cells, AAL5, links, switches, signalling.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "src/atm/aal5.h"
#include "src/atm/cell.h"
#include "src/atm/crc32.h"
#include "src/atm/network.h"
#include "src/atm/transport.h"
#include "src/atm/wire.h"
#include "src/sim/event_queue.h"

namespace pegasus::atm {
namespace {

TEST(Crc32Test, KnownVectors) {
  // "123456789" -> 0xCBF43926 (standard CRC-32 check value).
  const uint8_t data[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(Crc32(data, sizeof(data)), 0xCBF43926u);
  EXPECT_EQ(Crc32(nullptr, 0), 0u);
}

TEST(Crc32Test, IncrementalMatchesWhole) {
  std::vector<uint8_t> data(257);
  std::iota(data.begin(), data.end(), 0);
  const uint32_t whole = Crc32(data.data(), data.size());
  // CRC-32 with seed chaining: crc(a||b) == crc(b, seed=crc(a)).
  const uint32_t part = Crc32(data.data() + 100, data.size() - 100, Crc32(data.data(), 100));
  EXPECT_EQ(whole, part);
}

TEST(Aal5Test, SingleCellRoundTrip) {
  std::vector<uint8_t> sdu{1, 2, 3, 4};
  auto cells = Aal5Segment(42, sdu);
  ASSERT_EQ(cells.size(), 1u);  // 4 + 8 trailer fits in 48
  EXPECT_TRUE(cells[0].end_of_frame);
  EXPECT_EQ(cells[0].vci, 42u);

  Aal5Reassembler r;
  auto out = r.Push(cells[0]);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, sdu);
  EXPECT_EQ(r.frames_ok(), 1u);
}

TEST(Aal5Test, MultiCellRoundTrip) {
  std::vector<uint8_t> sdu(1000);
  std::iota(sdu.begin(), sdu.end(), 0);
  auto cells = Aal5Segment(7, sdu);
  // 1000 + 8 = 1008 -> 21 cells exactly.
  ASSERT_EQ(cells.size(), 21u);
  for (size_t i = 0; i + 1 < cells.size(); ++i) {
    EXPECT_FALSE(cells[i].end_of_frame);
  }
  EXPECT_TRUE(cells.back().end_of_frame);

  Aal5Reassembler r;
  std::optional<std::vector<uint8_t>> out;
  for (const Cell& c : cells) {
    out = r.Push(c);
  }
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, sdu);
}

TEST(Aal5Test, EmptySduRoundTrip) {
  auto cells = Aal5Segment(1, {});
  ASSERT_EQ(cells.size(), 1u);
  Aal5Reassembler r;
  auto out = r.Push(cells[0]);
  ASSERT_TRUE(out.has_value());
  EXPECT_TRUE(out->empty());
}

TEST(Aal5Test, CorruptPayloadFailsCrc) {
  std::vector<uint8_t> sdu(100, 0xAB);
  auto cells = Aal5Segment(9, sdu);
  cells[0].payload[5] ^= 0x01;
  Aal5Reassembler r;
  std::optional<std::vector<uint8_t>> out;
  for (const Cell& c : cells) {
    out = r.Push(c);
  }
  EXPECT_FALSE(out.has_value());
  EXPECT_EQ(r.crc_errors(), 1u);
  EXPECT_EQ(r.frames_ok(), 0u);
}

TEST(Aal5Test, LostEndOfFrameResynchronises) {
  std::vector<uint8_t> a(100, 1);
  std::vector<uint8_t> b(100, 2);
  auto ca = Aal5Segment(3, a);
  auto cb = Aal5Segment(3, b);
  Aal5Reassembler r;
  // Drop the last cell of frame a: its cells merge into frame b and the
  // combined PDU must fail CRC, after which the next frame succeeds.
  for (size_t i = 0; i + 1 < ca.size(); ++i) {
    r.Push(ca[i]);
  }
  std::optional<std::vector<uint8_t>> out;
  for (const Cell& c : cb) {
    out = r.Push(c);
  }
  EXPECT_FALSE(out.has_value());
  EXPECT_EQ(r.crc_errors(), 1u);
  // A fresh frame now reassembles fine.
  auto cc = Aal5Segment(3, b);
  for (const Cell& c : cc) {
    out = r.Push(c);
  }
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, b);
}

TEST(Aal5Test, OversizeSduRejected) {
  std::vector<uint8_t> sdu(kAal5MaxSduSize + 1);
  EXPECT_TRUE(Aal5Segment(1, sdu).empty());
}

TEST(Aal5Test, MaxSizeSduRoundTrip) {
  std::vector<uint8_t> sdu(kAal5MaxSduSize, 0x5C);
  auto cells = Aal5Segment(1, sdu);
  ASSERT_FALSE(cells.empty());
  Aal5Reassembler r;
  std::optional<std::vector<uint8_t>> out;
  for (const Cell& c : cells) {
    out = r.Push(c);
  }
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->size(), kAal5MaxSduSize);
}

TEST(Aal5Test, SequenceNumbersAdvance) {
  std::vector<uint8_t> sdu(200);
  auto cells = Aal5Segment(1, sdu, 0, 100);
  for (size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(cells[i].seq, 100 + i);
  }
}

class CollectorSink : public CellSink {
 public:
  void DeliverCell(const Cell& cell) override {
    cells.push_back(cell);
    times.push_back(sim_ != nullptr ? sim_->now() : 0);
  }
  void set_sim(sim::Simulator* s) { sim_ = s; }
  std::vector<Cell> cells;
  std::vector<sim::TimeNs> times;

 private:
  sim::Simulator* sim_ = nullptr;
};

TEST(LinkTest, SerialisationAndPropagationDelay) {
  sim::Simulator sim;
  Link link(&sim, "l", 100'000'000, sim::Microseconds(10));
  CollectorSink sink;
  sink.set_sim(&sim);
  link.set_sink(&sink);
  Cell c;
  c.vci = 5;
  EXPECT_TRUE(link.SendCell(c));
  sim.Run();
  ASSERT_EQ(sink.cells.size(), 1u);
  // 53 bytes at 100 Mb/s = 4.24us serialisation + 10us propagation.
  EXPECT_EQ(sink.times[0], 4240 + 10'000);
}

// Back-to-back cells serialise at link rate and ride a cell train: the
// first cell is delivered when its serialisation completes, the coalesced
// remainder arrives together when the train's LAST cell clears the
// transmitter — the same instant the last cell arrived on the per-cell
// path, so frame completion times are unchanged.
TEST(LinkTest, BackToBackCellsCoalesceIntoTrain) {
  sim::Simulator sim;
  Link link(&sim, "l", 100'000'000, 0);
  CollectorSink sink;
  sink.set_sim(&sim);
  link.set_sink(&sink);
  for (int i = 0; i < 3; ++i) {
    Cell c;
    c.seq = static_cast<uint64_t>(i);
    link.SendCell(c);
  }
  sim.Run();
  ASSERT_EQ(sink.cells.size(), 3u);
  EXPECT_EQ(sink.times[0], 4240);
  EXPECT_EQ(sink.times[1], 3 * 4240);
  EXPECT_EQ(sink.times[2], 3 * 4240);
  // Order preserved, and the train spent exactly its serialisation time on
  // the wire.
  EXPECT_EQ(sink.cells[0].seq, 0u);
  EXPECT_EQ(sink.cells[2].seq, 2u);
  EXPECT_EQ(link.busy_time(), 3 * 4240);
  EXPECT_EQ(link.queued_cells(), 0u);
}

TEST(LinkTest, QueueLimitDropsExcess) {
  sim::Simulator sim;
  Link link(&sim, "l", 100'000'000, 0, /*queue_limit=*/4);
  CollectorSink sink;
  link.set_sink(&sink);
  for (int i = 0; i < 10; ++i) {
    link.SendCell(Cell{});
  }
  EXPECT_EQ(link.cells_dropped(), 6u);
  sim.Run();
  EXPECT_EQ(sink.cells.size(), 4u);
}

// Pins the tail-drop contract: a full queue drops the ARRIVING cell no
// matter its loss-priority bit — a queued low-priority cell is never evicted
// to admit a high-priority arrival — and each drop lands in the counter of
// the dropped cell's own class.
TEST(LinkTest, FullQueueTailDropsRegardlessOfPriority) {
  sim::Simulator sim;
  Link link(&sim, "l", 100'000'000, 0, /*queue_limit=*/4);
  CollectorSink sink;
  link.set_sink(&sink);
  // Fill the queue with low-priority cells...
  for (int i = 0; i < 4; ++i) {
    Cell c;
    c.low_priority = true;
    c.seq = static_cast<uint64_t>(i);
    EXPECT_TRUE(link.SendCell(c));
  }
  // ...then offer a high-priority cell: tail-dropped, not admitted by
  // evicting a queued low-priority cell.
  Cell high;
  high.low_priority = false;
  high.seq = 100;
  EXPECT_FALSE(link.SendCell(high));
  EXPECT_EQ(link.cells_dropped_high(), 1u);
  EXPECT_EQ(link.cells_dropped_low(), 0u);
  Cell low;
  low.low_priority = true;
  EXPECT_FALSE(link.SendCell(low));
  EXPECT_EQ(link.cells_dropped_low(), 1u);
  EXPECT_EQ(link.cells_dropped(), 2u);

  sim.Run();
  // Every queued low-priority cell survived and was delivered in order.
  ASSERT_EQ(sink.cells.size(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(sink.cells[i].low_priority);
    EXPECT_EQ(sink.cells[i].seq, static_cast<uint64_t>(i));
  }
  // The snapshot mirrors the split counters and queue bounds.
  const Link::StatsSnapshot stats = link.Stats();
  EXPECT_EQ(stats.cells_sent, 4u);
  EXPECT_EQ(stats.cells_dropped_high, 1u);
  EXPECT_EQ(stats.cells_dropped_low, 1u);
  EXPECT_EQ(stats.queue_limit, 4u);
  EXPECT_EQ(stats.queued_cells, 0u);
}

TEST(LinkTest, UtilizationTracksBusyFraction) {
  sim::Simulator sim;
  Link link(&sim, "l", 100'000'000, 0);
  CollectorSink sink;
  link.set_sink(&sink);
  link.SendCell(Cell{});
  sim.RunUntil(sim::Microseconds(8));  // busy 4.24us of 8.48us
  EXPECT_NEAR(link.utilization(), 0.53, 0.02);
}

TEST(SwitchTest, RoutesAndRelabels) {
  sim::Simulator sim;
  Switch sw(&sim, "sw", 4, sim::Microseconds(1));
  Link out(&sim, "out", 100'000'000, 0);
  CollectorSink sink;
  sink.set_sim(&sim);
  out.set_sink(&sink);
  sw.AttachOutput(2, &out);
  EXPECT_TRUE(sw.AddRoute(0, 40, 2, 77));
  Cell c;
  c.vci = 40;
  sw.input(0)->DeliverCell(c);
  sim.Run();
  ASSERT_EQ(sink.cells.size(), 1u);
  EXPECT_EQ(sink.cells[0].vci, 77u);
  EXPECT_EQ(sw.cells_switched(), 1u);
}

TEST(SwitchTest, UnroutedCellsDropped) {
  sim::Simulator sim;
  Switch sw(&sim, "sw", 4);
  Cell c;
  c.vci = 99;
  sw.input(1)->DeliverCell(c);
  sim.Run();
  EXPECT_EQ(sw.cells_unroutable(), 1u);
  EXPECT_EQ(sw.cells_switched(), 0u);
}

TEST(SwitchTest, DuplicateRouteRejected) {
  sim::Simulator sim;
  Switch sw(&sim, "sw", 4);
  EXPECT_TRUE(sw.AddRoute(0, 40, 1, 41));
  EXPECT_FALSE(sw.AddRoute(0, 40, 2, 42));
  EXPECT_TRUE(sw.RemoveRoute(0, 40));
  EXPECT_FALSE(sw.RemoveRoute(0, 40));
  EXPECT_TRUE(sw.AddRoute(0, 40, 2, 42));
}

TEST(SwitchTest, VciAllocationSkipsUsed) {
  sim::Simulator sim;
  Switch sw(&sim, "sw", 2);
  EXPECT_EQ(sw.AllocateVci(0), kVciFirstData);
  sw.AddRoute(0, kVciFirstData, 1, 50);
  EXPECT_EQ(sw.AllocateVci(0), kVciFirstData + 1);
  // Other port unaffected.
  EXPECT_EQ(sw.AllocateVci(1), kVciFirstData);
}

// The next-free hint must not change the allocator's observable behaviour:
// a removed route's VCI becomes allocatable again, repeated AllocateVci
// without AddRoute stays idempotent, and churny open/close cycles keep
// handing out the lowest free VCI.
TEST(SwitchTest, VciAllocationReusesRemovedRoutes) {
  sim::Simulator sim;
  Switch sw(&sim, "sw", 2);
  for (Vci v = kVciFirstData; v < kVciFirstData + 8; ++v) {
    EXPECT_EQ(sw.AllocateVci(0), v);
    EXPECT_TRUE(sw.AddRoute(0, v, 1, v + 100));
  }
  // AllocateVci without AddRoute is idempotent (the hint must not burn it).
  EXPECT_EQ(sw.AllocateVci(0), kVciFirstData + 8);
  EXPECT_EQ(sw.AllocateVci(0), kVciFirstData + 8);
  // Freeing a VCI in the middle makes it the next allocation again.
  EXPECT_TRUE(sw.RemoveRoute(0, kVciFirstData + 3));
  EXPECT_EQ(sw.AllocateVci(0), kVciFirstData + 3);
  EXPECT_TRUE(sw.AddRoute(0, kVciFirstData + 3, 1, 203));
  EXPECT_EQ(sw.AllocateVci(0), kVciFirstData + 8);
  // Churn: open/close at the same VCI never walks past the live run.
  for (int i = 0; i < 1000; ++i) {
    const Vci v = sw.AllocateVci(0);
    EXPECT_EQ(v, kVciFirstData + 8);
    EXPECT_TRUE(sw.AddRoute(0, v, 1, 300));
    EXPECT_TRUE(sw.RemoveRoute(0, v));
  }
}

// A multi-target entry replicates a burst once per BRANCH, relabelling per
// branch, and counts every copy switched.
TEST(SwitchTest, MultiTargetEntryReplicatesPerBranch) {
  sim::Simulator sim;
  Switch sw(&sim, "sw", 4, 0);
  Link out1(&sim, "o1", 100'000'000, 0);
  Link out2(&sim, "o2", 100'000'000, 0);
  CollectorSink sink1;
  CollectorSink sink2;
  out1.set_sink(&sink1);
  out2.set_sink(&sink2);
  sw.AttachOutput(1, &out1);
  sw.AttachOutput(2, &out2);
  EXPECT_TRUE(sw.AddRoute(0, 40, 1, 70));
  EXPECT_EQ(sw.RouteTargetCount(0, 40), 1);
  EXPECT_TRUE(sw.AddRouteTarget(0, 40, 2, 80));
  EXPECT_EQ(sw.RouteTargetCount(0, 40), 2);
  // A branch to an already-subscribed port is rejected (one copy per port).
  EXPECT_FALSE(sw.AddRouteTarget(0, 40, 1, 99));
  EXPECT_FALSE(sw.AddRouteTarget(0, 40, 2, 99));
  // Grafting onto a nonexistent entry fails.
  EXPECT_FALSE(sw.AddRouteTarget(0, 41, 2, 99));

  std::vector<Cell> burst(3);
  for (size_t i = 0; i < burst.size(); ++i) {
    burst[i].vci = 40;
    burst[i].seq = i;
  }
  sw.input(0)->DeliverBurst(burst.data(), burst.size());
  sim.Run();
  ASSERT_EQ(sink1.cells.size(), 3u);
  ASSERT_EQ(sink2.cells.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(sink1.cells[i].vci, 70u);
    EXPECT_EQ(sink1.cells[i].seq, i);
    EXPECT_EQ(sink2.cells[i].vci, 80u);
    EXPECT_EQ(sink2.cells[i].seq, i);
  }
  EXPECT_EQ(sw.cells_switched(), 6u);  // 3 cells x 2 branches
}

// Regression (multi-target entries vs the allocation hint): pruning ONE
// branch of a multicast entry must not hand its VCI out again — the entry
// still routes cells for the remaining branches. Only removing the LAST
// branch frees the VCI.
TEST(SwitchTest, PrunedBranchDoesNotFreeVciStillRoutingElsewhere) {
  sim::Simulator sim;
  Switch sw(&sim, "sw", 4, 0);
  const Vci v = sw.AllocateVci(0);
  EXPECT_TRUE(sw.AddRoute(0, v, 1, 70));
  EXPECT_TRUE(sw.AddRouteTarget(0, v, 2, 80));
  EXPECT_TRUE(sw.AddRouteTarget(0, v, 3, 90));

  // Prune the middle branch: entry stays live, VCI stays allocated.
  EXPECT_TRUE(sw.RemoveRouteTarget(0, v, 2));
  EXPECT_EQ(sw.RouteTargetCount(0, v), 2);
  EXPECT_TRUE(sw.HasRoute(0, v));
  EXPECT_NE(sw.AllocateVci(0), v);

  // Prune the PRIMARY branch: the next-oldest branch takes over, the VCI
  // still must not be reallocated.
  EXPECT_TRUE(sw.RemoveRouteTarget(0, v, 1));
  EXPECT_EQ(sw.RouteTargetCount(0, v), 1);
  EXPECT_NE(sw.AllocateVci(0), v);

  // Removing a branch twice fails; unknown ports fail.
  EXPECT_FALSE(sw.RemoveRouteTarget(0, v, 1));
  EXPECT_FALSE(sw.RemoveRouteTarget(0, v, 2));

  // The last branch retires the entry and only then frees the VCI.
  EXPECT_TRUE(sw.RemoveRouteTarget(0, v, 3));
  EXPECT_FALSE(sw.HasRoute(0, v));
  EXPECT_EQ(sw.AllocateVci(0), v);
}

// A unicast run gathered across VCIs must stop at a multicast entry: the
// replicated cells would otherwise be folded into the unicast train.
TEST(SwitchTest, UnicastRunStopsAtMulticastEntry) {
  sim::Simulator sim;
  Switch sw(&sim, "sw", 4, 0);
  Link out1(&sim, "o1", 100'000'000, 0);
  Link out2(&sim, "o2", 100'000'000, 0);
  CollectorSink sink1;
  CollectorSink sink2;
  out1.set_sink(&sink1);
  out2.set_sink(&sink2);
  sw.AttachOutput(1, &out1);
  sw.AttachOutput(2, &out2);
  EXPECT_TRUE(sw.AddRoute(0, 40, 1, 70));       // unicast -> port 1
  EXPECT_TRUE(sw.AddRoute(0, 41, 1, 71));       // multicast -> ports 1+2
  EXPECT_TRUE(sw.AddRouteTarget(0, 41, 2, 81));

  std::vector<Cell> burst(4);
  burst[0].vci = 40;
  burst[1].vci = 41;
  burst[2].vci = 41;
  burst[3].vci = 40;
  sw.input(0)->DeliverBurst(burst.data(), burst.size());
  sim.Run();
  // Port 1: 2 unicast + 2 replicated; port 2: 2 replicated.
  ASSERT_EQ(sink1.cells.size(), 4u);
  EXPECT_EQ(sink1.cells[0].vci, 70u);
  EXPECT_EQ(sink1.cells[1].vci, 71u);
  EXPECT_EQ(sink1.cells[2].vci, 71u);
  EXPECT_EQ(sink1.cells[3].vci, 70u);
  ASSERT_EQ(sink2.cells.size(), 2u);
  EXPECT_EQ(sink2.cells[0].vci, 81u);
  EXPECT_EQ(sw.cells_switched(), 6u);
}

class NetworkFixture : public ::testing::Test {
 protected:
  NetworkFixture() : net_(&sim_) {
    sw1_ = net_.AddSwitch("sw1", 8);
    sw2_ = net_.AddSwitch("sw2", 8);
    net_.ConnectSwitches(sw1_, 7, sw2_, 7, 155'000'000);
    a_ = net_.AddEndpoint("a", sw1_, 0, 155'000'000);
    b_ = net_.AddEndpoint("b", sw1_, 1, 155'000'000);
    c_ = net_.AddEndpoint("c", sw2_, 0, 155'000'000);
  }

  sim::Simulator sim_;
  Network net_;
  Switch* sw1_;
  Switch* sw2_;
  Endpoint* a_;
  Endpoint* b_;
  Endpoint* c_;
};

TEST_F(NetworkFixture, SameSwitchVc) {
  auto vc = net_.OpenVc(a_, b_);
  ASSERT_TRUE(vc.has_value());
  EXPECT_EQ(vc->hop_count, 1);

  std::vector<uint8_t> received;
  MessageTransport bt(b_);
  bt.SetDefaultHandler([&](Vci, std::vector<uint8_t> msg, sim::TimeNs) { received = msg; });
  MessageTransport at(a_);
  at.Send(vc->source_vci, {1, 2, 3});
  sim_.Run();
  EXPECT_EQ(received, (std::vector<uint8_t>{1, 2, 3}));
}

TEST_F(NetworkFixture, CrossSwitchVc) {
  auto vc = net_.OpenVc(a_, c_);
  ASSERT_TRUE(vc.has_value());
  EXPECT_EQ(vc->hop_count, 2);

  int got = 0;
  MessageTransport ct(c_);
  ct.SetHandler(vc->destination_vci,
                [&](Vci, std::vector<uint8_t> msg, sim::TimeNs) { got = static_cast<int>(msg[0]); });
  MessageTransport at(a_);
  at.Send(vc->source_vci, {99});
  sim_.Run();
  EXPECT_EQ(got, 99);
}

TEST_F(NetworkFixture, TwoVcsDoNotInterfere) {
  auto vc1 = net_.OpenVc(a_, c_);
  auto vc2 = net_.OpenVc(b_, c_);
  ASSERT_TRUE(vc1.has_value());
  ASSERT_TRUE(vc2.has_value());
  EXPECT_NE(vc1->destination_vci, vc2->destination_vci);

  std::map<Vci, int> counts;
  MessageTransport ct(c_);
  ct.SetDefaultHandler([&](Vci vci, std::vector<uint8_t>, sim::TimeNs) { ++counts[vci]; });
  MessageTransport at(a_);
  MessageTransport bt(b_);
  at.Send(vc1->source_vci, {1});
  bt.Send(vc2->source_vci, {2});
  sim_.Run();
  EXPECT_EQ(counts[vc1->destination_vci], 1);
  EXPECT_EQ(counts[vc2->destination_vci], 1);
}

TEST_F(NetworkFixture, CloseVcStopsDelivery) {
  auto vc = net_.OpenVc(a_, b_);
  ASSERT_TRUE(vc.has_value());
  EXPECT_TRUE(net_.CloseVc(vc->id));
  EXPECT_FALSE(net_.CloseVc(vc->id));

  MessageTransport bt(b_);
  int got = 0;
  bt.SetDefaultHandler([&](Vci, std::vector<uint8_t>, sim::TimeNs) { ++got; });
  MessageTransport at(a_);
  at.Send(vc->source_vci, {1});
  sim_.Run();
  EXPECT_EQ(got, 0);
  EXPECT_GE(sw1_->cells_unroutable(), 1u);
}

TEST_F(NetworkFixture, AdmissionControlRejectsOvercommit) {
  QosSpec q;
  q.peak_bps = 100'000'000;
  auto vc1 = net_.OpenVc(a_, c_, q);
  ASSERT_TRUE(vc1.has_value());
  // Second 100 Mb/s reservation cannot fit on the 155 Mb/s inter-switch link.
  auto vc2 = net_.OpenVc(b_, c_, q);
  EXPECT_FALSE(vc2.has_value());
  EXPECT_EQ(net_.admission_rejections(), 1);
  // Best-effort still fine.
  auto vc3 = net_.OpenVc(b_, c_);
  EXPECT_TRUE(vc3.has_value());
  // Releasing the first reservation frees the capacity.
  net_.CloseVc(vc1->id);
  auto vc4 = net_.OpenVc(b_, c_, q);
  EXPECT_TRUE(vc4.has_value());
}

TEST_F(NetworkFixture, DuplexOpensDataAndControl) {
  auto pair = net_.OpenDuplex(a_, c_, QosSpec{10'000'000}, QosSpec{});
  ASSERT_TRUE(pair.has_value());
  EXPECT_EQ(pair->first.source, a_);
  EXPECT_EQ(pair->second.source, c_);
}

TEST_F(NetworkFixture, PacedFrameArrivesAtPacedRate) {
  auto vc = net_.OpenVc(a_, b_);
  ASSERT_TRUE(vc.has_value());
  MessageTransport bt(b_);
  sim::TimeNs done_at = 0;
  bt.SetDefaultHandler([&](Vci, std::vector<uint8_t>, sim::TimeNs) { done_at = sim_.now(); });
  // 4800 bytes => 101 cells; paced at 10 Mb/s the last cell leaves around
  // 100 * 42.4us ≈ 4.24ms.
  a_->SendFrame(vc->source_vci, std::vector<uint8_t>(4800), 10'000'000);
  sim_.Run();
  EXPECT_GT(done_at, sim::Milliseconds(4));
  EXPECT_LT(done_at, sim::Milliseconds(5));
}

// Regression: SignalCongestion snapshots its notification set before
// invoking handlers, and a handler may close a SIBLING VC on the same link
// mid-signal. The closed VC's handler must not fire afterwards — it would
// observe a congestion report for a circuit that no longer exists.
TEST_F(NetworkFixture, CongestionHandlerClosingSiblingVcSuppressesItsCallback) {
  auto vc1 = net_.OpenVc(a_, c_);
  auto vc2 = net_.OpenVc(b_, c_);
  ASSERT_TRUE(vc1.has_value());
  ASSERT_TRUE(vc2.has_value());
  // Both traverse the inter-switch link.
  auto edge_links = net_.VcLinks(vc1->id);
  ASSERT_NE(edge_links, nullptr);
  const Link* shared = (*edge_links)[1];
  ASSERT_NE(std::find(net_.VcLinks(vc2->id)->begin(), net_.VcLinks(vc2->id)->end(), shared),
            net_.VcLinks(vc2->id)->end());

  int first_fired = 0;
  int second_fired = 0;
  net_.SetCongestionHandler(vc1->id, [&](VcId, const Link*, double) {
    ++first_fired;
    net_.CloseVc(vc2->id);  // renegotiation closing a sibling mid-signal
  });
  net_.SetCongestionHandler(vc2->id, [&](VcId, const Link*, double) { ++second_fired; });

  // Only the surviving VC is notified, and the return value counts it alone.
  EXPECT_EQ(net_.SignalCongestion(shared, 0.5), 1);
  EXPECT_EQ(first_fired, 1);
  EXPECT_EQ(second_fired, 0);
  EXPECT_EQ(net_.GetVc(vc2->id), nullptr);

  // A handler dropping its OWN registration mid-signal is equally safe.
  net_.SetCongestionHandler(vc1->id, [&](VcId id, const Link*, double) {
    ++first_fired;
    net_.ClearCongestionHandler(id);
  });
  EXPECT_EQ(net_.SignalCongestion(shared, 0.25), 1);
  EXPECT_EQ(first_fired, 2);
  EXPECT_EQ(net_.SignalCongestion(shared, 0.25), 0);  // nothing registered
  EXPECT_EQ(first_fired, 2);
}

TEST_F(NetworkFixture, MulticastVcDeliversToEveryLeafOnce) {
  auto vc = net_.OpenMulticastVc(a_, {b_, c_}, QosSpec{10'000'000});
  ASSERT_TRUE(vc.has_value());
  EXPECT_TRUE(net_.IsMulticastVc(vc->id));
  EXPECT_EQ(net_.McastLeafCount(vc->id), 2);
  ASSERT_TRUE(net_.McastLeafVci(vc->id, b_).has_value());
  ASSERT_TRUE(net_.McastLeafVci(vc->id, c_).has_value());
  EXPECT_EQ(*net_.McastLeafVci(vc->id, b_), vc->destination_vci);

  int got_b = 0;
  int got_c = 0;
  MessageTransport bt(b_);
  MessageTransport ct(c_);
  bt.SetHandler(*net_.McastLeafVci(vc->id, b_),
                [&](Vci, std::vector<uint8_t>, sim::TimeNs) { ++got_b; });
  ct.SetHandler(*net_.McastLeafVci(vc->id, c_),
                [&](Vci, std::vector<uint8_t>, sim::TimeNs) { ++got_c; });
  MessageTransport at(a_);
  at.Send(vc->source_vci, {42});
  sim_.Run();
  EXPECT_EQ(got_b, 1);
  EXPECT_EQ(got_c, 1);
}

TEST_F(NetworkFixture, MulticastChargesSharedEdgesOnce) {
  // Both leaves hang off sw2: the inter-switch trunk is a shared tree edge
  // and must carry ONE stream's reservation, not one per leaf.
  Endpoint* d = net_.AddEndpoint("d", sw2_, 1, 155'000'000);
  const QosSpec q{30'000'000};
  auto vc = net_.OpenMulticastVc(a_, {c_, d}, q);
  ASSERT_TRUE(vc.has_value());
  const Link* trunk = nullptr;
  for (const auto& l : net_.links()) {
    if (l->name() == "sw1->sw2") {
      trunk = l.get();
    }
  }
  ASSERT_NE(trunk, nullptr);
  EXPECT_EQ(net_.ReservedBps(trunk), 30'000'000);
  // Grafting a third leaf behind the same trunk admits only the graft path.
  Endpoint* e = net_.AddEndpoint("e", sw2_, 2, 155'000'000);
  auto leaf_vci = net_.AddLeaf(vc->id, e);
  ASSERT_TRUE(leaf_vci.has_value());
  EXPECT_EQ(net_.McastLeafCount(vc->id), 3);
  EXPECT_EQ(net_.ReservedBps(trunk), 30'000'000);
  // Pruning a leaf keeps shared edges; the trunk drops only when the last
  // downstream leaf goes (which is CloseVc's job for the final one).
  EXPECT_TRUE(net_.RemoveLeaf(vc->id, d));
  EXPECT_EQ(net_.ReservedBps(trunk), 30'000'000);
  EXPECT_TRUE(net_.RemoveLeaf(vc->id, c_));
  EXPECT_EQ(net_.ReservedBps(trunk), 30'000'000);
  // Removing the LAST leaf is refused; CloseVc releases everything.
  EXPECT_FALSE(net_.RemoveLeaf(vc->id, e));
  EXPECT_TRUE(net_.CloseVc(vc->id));
  EXPECT_EQ(net_.ReservedBps(trunk), 0);
  for (const auto& l : net_.links()) {
    EXPECT_EQ(net_.ReservedBps(l.get()), 0) << l->name();
  }
}

TEST_F(NetworkFixture, MulticastPruneStopsDeliveryToThatLeafOnly) {
  auto vc = net_.OpenMulticastVc(a_, {b_, c_});
  ASSERT_TRUE(vc.has_value());
  int got_b = 0;
  int got_c = 0;
  MessageTransport bt(b_);
  MessageTransport ct(c_);
  bt.SetDefaultHandler([&](Vci, std::vector<uint8_t>, sim::TimeNs) { ++got_b; });
  ct.SetDefaultHandler([&](Vci, std::vector<uint8_t>, sim::TimeNs) { ++got_c; });
  ASSERT_TRUE(net_.RemoveLeaf(vc->id, b_));
  EXPECT_FALSE(net_.McastLeafVci(vc->id, b_).has_value());
  MessageTransport at(a_);
  at.Send(vc->source_vci, {1});
  sim_.Run();
  EXPECT_EQ(got_b, 0);
  EXPECT_EQ(got_c, 1);
  // Re-grafting works and delivery resumes.
  ASSERT_TRUE(net_.AddLeaf(vc->id, b_).has_value());
  at.Send(vc->source_vci, {2});
  sim_.Run();
  EXPECT_EQ(got_b, 1);
  EXPECT_EQ(got_c, 2);
}

TEST_F(NetworkFixture, MulticastRejectsBadSinkSets) {
  EXPECT_FALSE(net_.OpenMulticastVc(a_, {}).has_value());
  EXPECT_FALSE(net_.OpenMulticastVc(a_, {a_}).has_value());          // self
  EXPECT_FALSE(net_.OpenMulticastVc(a_, {b_, b_}).has_value());      // dup
  auto vc = net_.OpenMulticastVc(a_, {b_});
  ASSERT_TRUE(vc.has_value());
  EXPECT_FALSE(net_.AddLeaf(vc->id, b_).has_value());                // dup leaf
  EXPECT_FALSE(net_.AddLeaf(vc->id, a_).has_value());                // source
  EXPECT_FALSE(net_.AddLeaf(vc->id + 999, c_).has_value());          // bad id
  EXPECT_FALSE(net_.RemoveLeaf(vc->id, c_));                         // not a leaf
  // Unicast VCs refuse tree operations.
  auto uni = net_.OpenVc(a_, b_);
  ASSERT_TRUE(uni.has_value());
  EXPECT_FALSE(net_.IsMulticastVc(uni->id));
  EXPECT_FALSE(net_.AddLeaf(uni->id, c_).has_value());
  EXPECT_FALSE(net_.RemoveLeaf(uni->id, b_));
}

TEST_F(NetworkFixture, MulticastQosUpdateScalesWholeTreeOnce) {
  Endpoint* d = net_.AddEndpoint("d", sw2_, 1, 155'000'000);
  auto vc = net_.OpenMulticastVc(a_, {c_, d}, QosSpec{20'000'000});
  ASSERT_TRUE(vc.has_value());
  const Link* trunk = nullptr;
  for (const auto& l : net_.links()) {
    if (l->name() == "sw1->sw2") {
      trunk = l.get();
    }
  }
  ASSERT_NE(trunk, nullptr);
  ASSERT_TRUE(net_.UpdateVcQos(vc->id, QosSpec{40'000'000}));
  EXPECT_EQ(net_.ReservedBps(trunk), 40'000'000);
  ASSERT_TRUE(net_.UpdateVcQos(vc->id, QosSpec{5'000'000}));
  EXPECT_EQ(net_.ReservedBps(trunk), 5'000'000);
  net_.CloseVc(vc->id);
  EXPECT_EQ(net_.ReservedBps(trunk), 0);
}

TEST(WireTest, RoundTrip) {
  WireWriter w;
  w.PutU8(0x12);
  w.PutU16(0x3456);
  w.PutU32(0x789ABCDE);
  w.PutU64(0x0123456789ABCDEFULL);
  w.PutString("hello");
  w.PutBytes({9, 8, 7});
  WireReader r(w.data());
  EXPECT_EQ(r.GetU8(), 0x12);
  EXPECT_EQ(r.GetU16(), 0x3456);
  EXPECT_EQ(r.GetU32(), 0x789ABCDEu);
  EXPECT_EQ(r.GetU64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.GetString(), "hello");
  EXPECT_EQ(r.GetBytes(), (std::vector<uint8_t>{9, 8, 7}));
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.AtEnd());
}

TEST(WireTest, ShortReadSetsBad) {
  WireWriter w;
  w.PutU16(7);
  WireReader r(w.data());
  r.GetU32();
  EXPECT_FALSE(r.ok());
}

TEST(WireTest, TruncatedStringSetsBad) {
  WireWriter w;
  w.PutU32(1000);  // claims 1000 bytes, provides none
  WireReader r(w.data());
  EXPECT_TRUE(r.GetString().empty());
  EXPECT_FALSE(r.ok());
}

}  // namespace
}  // namespace pegasus::atm
