// Train-equivalence regression: the cell-train data plane must be
// stat-for-stat identical to the per-cell path it replaced. A reference
// model of the old per-cell link (explicit in-flight queue, per-cell
// tail-drop, per-priority counters, per-cell delivery times) is run side by
// side with the real Link over a flood scenario; counters, occupancy
// samples and delivered cell order must match exactly — and frame-level
// (end-of-frame cell) delivery times must be unchanged from the per-cell
// path.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include "src/atm/aal5.h"
#include "src/atm/cell.h"
#include "src/atm/link.h"
#include "src/atm/switch.h"
#include "src/sim/event_queue.h"
#include "src/sim/random.h"
#include "src/sim/time.h"

namespace pegasus::atm {
namespace {

// The pre-train per-cell link accounting, reimplemented standalone AND
// independently: the queue is an explicit list of in-flight completion
// times (the old engine counted a queued_ member up on accept and down at
// each per-cell done event — occupancy at time t was "accepted cells whose
// serialisation completes after t"). No busy-horizon arithmetic is shared
// with the Link under test, so a formula bug there cannot hide here.
class PerCellReference {
 public:
  PerCellReference(int64_t bps, sim::DurationNs prop, size_t queue_limit)
      : cell_time_(sim::TransmissionTime(kCellSize, bps)),
        prop_(prop),
        queue_limit_(queue_limit) {}

  // Offers a cell at `now`; mirrors the old per-cell Link::SendCell.
  bool Offer(const Cell& cell, sim::TimeNs now) {
    if (QueuedAt(now) >= queue_limit_) {
      ++(cell.low_priority ? dropped_low_ : dropped_high_);
      return false;
    }
    const sim::TimeNs start = std::max(now, tx_free_at_);
    tx_free_at_ = start + cell_time_;
    busy_time_ += cell_time_;
    ++sent_;
    in_flight_done_.push_back(tx_free_at_);
    delivered_.push_back({cell.seq, tx_free_at_ + prop_});
    return true;
  }

  // Counts the in-flight completion times after `now` — the decrement-at-
  // done-event bookkeeping of the per-cell engine, replayed lazily.
  size_t QueuedAt(sim::TimeNs now) const {
    while (!in_flight_done_.empty() && in_flight_done_.front() <= now) {
      in_flight_done_.pop_front();
    }
    return in_flight_done_.size();
  }

  struct Delivery {
    uint64_t seq;
    sim::TimeNs at;
  };
  const std::vector<Delivery>& delivered() const { return delivered_; }
  uint64_t sent() const { return sent_; }
  uint64_t dropped_high() const { return dropped_high_; }
  uint64_t dropped_low() const { return dropped_low_; }
  sim::DurationNs busy_time() const { return busy_time_; }

 private:
  sim::DurationNs cell_time_;
  sim::DurationNs prop_;
  size_t queue_limit_;
  sim::TimeNs tx_free_at_ = 0;
  uint64_t sent_ = 0;
  uint64_t dropped_high_ = 0;
  uint64_t dropped_low_ = 0;
  sim::DurationNs busy_time_ = 0;
  mutable std::deque<sim::TimeNs> in_flight_done_;
  std::vector<Delivery> delivered_;
};

class RecordingSink : public CellSink {
 public:
  explicit RecordingSink(sim::Simulator* sim) : sim_(sim) {}
  void DeliverCell(const Cell& cell) override { cells_.push_back({cell, sim_->now()}); }
  struct Arrival {
    Cell cell;
    sim::TimeNs at;
  };
  const std::vector<Arrival>& cells() const { return cells_; }

 private:
  sim::Simulator* sim_;
  std::vector<Arrival> cells_;
};

// Floods a 10 Mb/s link far past its queue limit with mixed-priority
// bursts, sampling occupancy at fixed ticks; every counter and sample must
// match the per-cell reference exactly.
TEST(TrainEquivalence, FloodedLinkStatsMatchPerCellPath) {
  sim::Simulator sim;
  const int64_t kBps = 10'000'000;
  const sim::DurationNs kProp = sim::Microseconds(3);
  const size_t kLimit = 64;
  Link link(&sim, "l", kBps, kProp, kLimit);
  RecordingSink sink(&sim);
  link.set_sink(&sink);
  PerCellReference ref(kBps, kProp, kLimit);

  sim::Rng rng(7);
  uint64_t seq = 0;
  // 200 bursts of 1..80 cells at 0.5 ms spacing: alternating overload
  // (queue fills, tail-drops in both classes) and partial drain.
  for (int burst = 0; burst < 200; ++burst) {
    const sim::TimeNs at = burst * sim::Microseconds(500);
    const int n = static_cast<int>(rng.UniformInt(1, 80));
    sim.ScheduleAt(at, [&link, &ref, &rng, &sim, &seq, n]() {
      for (int i = 0; i < n; ++i) {
        Cell c;
        c.vci = 42;
        c.low_priority = rng.Bernoulli(0.5);
        c.seq = seq++;
        const bool accepted = link.SendCell(c);
        const bool ref_accepted = ref.Offer(c, sim.now());
        ASSERT_EQ(accepted, ref_accepted) << "admission diverged at seq " << c.seq;
      }
    });
  }
  // Occupancy sampled between bursts must match the reference formula.
  std::vector<std::pair<size_t, size_t>> occupancy;  // (link, reference)
  for (int tick = 0; tick < 400; ++tick) {
    const sim::TimeNs at = tick * sim::Microseconds(250) + sim::Microseconds(13);
    sim.ScheduleAt(at, [&link, &ref, &sim, &occupancy]() {
      occupancy.push_back({link.queued_cells(), ref.QueuedAt(sim.now())});
    });
  }
  sim.Run();

  EXPECT_EQ(link.cells_sent(), ref.sent());
  EXPECT_EQ(link.cells_dropped_high(), ref.dropped_high());
  EXPECT_EQ(link.cells_dropped_low(), ref.dropped_low());
  EXPECT_GT(link.cells_dropped(), 0u);  // the flood really overflowed
  EXPECT_EQ(link.busy_time(), ref.busy_time());
  for (const auto& [got, want] : occupancy) {
    EXPECT_EQ(got, want);
  }
  // Every accepted cell arrived, in order, and no later than the per-cell
  // path would have delivered the train's tail (batching may defer a cell
  // to its train's end, never past the last cell of its train).
  ASSERT_EQ(sink.cells().size(), ref.delivered().size());
  for (size_t i = 0; i < sink.cells().size(); ++i) {
    EXPECT_EQ(sink.cells()[i].cell.seq, ref.delivered()[i].seq);
    EXPECT_GE(sink.cells()[i].at, ref.delivered()[i].at);
  }
  // The snapshot agrees with the getters.
  const Link::StatsSnapshot stats = link.Stats();
  EXPECT_EQ(stats.cells_sent, ref.sent());
  EXPECT_EQ(stats.cells_dropped_high, ref.dropped_high());
  EXPECT_EQ(stats.cells_dropped_low, ref.dropped_low());
  EXPECT_EQ(stats.queued_cells, 0u);
}

// Frame-level timing invariant: a whole AAL5 frame sent back-to-back
// completes the link at exactly the per-cell path's last-cell time — the
// train only moves INTERIOR cell deliveries, never the end-of-frame cell.
TEST(TrainEquivalence, EndOfFrameTimingUnchanged) {
  sim::Simulator sim;
  const int64_t kBps = 100'000'000;
  const sim::DurationNs kProp = sim::Microseconds(10);
  Link link(&sim, "l", kBps, kProp, 1024);
  RecordingSink sink(&sim);
  link.set_sink(&sink);

  std::vector<uint8_t> sdu(1000);
  auto cells = Aal5Segment(7, sdu, 0, 0);
  ASSERT_EQ(cells.size(), 21u);
  for (const Cell& c : cells) {
    ASSERT_TRUE(link.SendCell(c));
  }
  sim.Run();

  ASSERT_EQ(sink.cells().size(), 21u);
  EXPECT_TRUE(sink.cells().back().cell.end_of_frame);
  // Per-cell path: cell i completes at (i+1) * cell_time; + propagation.
  const sim::DurationNs cell_time = link.cell_time();
  EXPECT_EQ(sink.cells().back().at, 21 * cell_time + kProp);
  // Reassembly succeeds on the train exactly as on per-cell arrivals.
  Aal5Reassembler r;
  std::optional<std::vector<uint8_t>> out;
  for (const auto& a : sink.cells()) {
    out = r.Push(a.cell);
  }
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, sdu);
}

// A switch in the middle must preserve the same equivalences: per-cell
// switched/unroutable counters and egress-side stats match a per-cell
// reference fed by the same arrivals.
TEST(TrainEquivalence, SwitchForwardingKeepsPerCellCounters) {
  sim::Simulator sim;
  Link ingress(&sim, "in", 50'000'000, sim::Microseconds(1), 2048);
  Link egress(&sim, "out", 10'000'000, sim::Microseconds(1), 32);
  Switch sw(&sim, "sw", 4, sim::Microseconds(1));
  ingress.set_sink(sw.input(0));
  sw.AttachOutput(1, &egress);
  sw.AddRoute(0, 40, 1, 77);
  sw.AddRoute(0, 41, 1, 78);
  RecordingSink sink(&sim);
  egress.set_sink(&sink);

  sim::Rng rng(11);
  uint64_t seq = 0;
  uint64_t unroutable_offered = 0;
  for (int burst = 0; burst < 60; ++burst) {
    const sim::TimeNs at = burst * sim::Microseconds(400);
    const int n = static_cast<int>(rng.UniformInt(4, 40));
    sim.ScheduleAt(at, [&, n]() {
      for (int i = 0; i < n; ++i) {
        Cell c;
        // Mixed VCIs within a burst exercise the relabel run-splitting; an
        // occasional unroutable VCI must be counted and skipped mid-train.
        const int64_t pick = rng.UniformInt(0, 19);
        c.vci = pick == 0 ? 99u : (pick % 2 == 0 ? 40u : 41u);
        c.low_priority = rng.Bernoulli(0.5);
        c.seq = seq++;
        if (c.vci == 99u) {
          ++unroutable_offered;
        }
        ingress.SendCell(c);
      }
    });
  }
  sim.Run();

  // Nothing was dropped on the fat ingress, so every cell reached the
  // fabric; the counters must account for every single one.
  EXPECT_EQ(ingress.cells_dropped(), 0u);
  EXPECT_EQ(sw.cells_unroutable(), unroutable_offered);
  EXPECT_EQ(sw.cells_switched(), ingress.cells_sent() - unroutable_offered);
  // Egress conservation: switched == delivered + tail-dropped, and the
  // narrow egress really dropped some.
  EXPECT_EQ(sw.cells_switched(), egress.cells_sent() + egress.cells_dropped());
  EXPECT_GT(egress.cells_dropped(), 0u);
  EXPECT_EQ(sink.cells().size(), egress.cells_sent());
  // Relabelling held per VCI, and per-VCI cell order survived the trains.
  std::vector<uint64_t> seq77;
  std::vector<uint64_t> seq78;
  for (const auto& a : sink.cells()) {
    ASSERT_TRUE(a.cell.vci == 77u || a.cell.vci == 78u);
    (a.cell.vci == 77u ? seq77 : seq78).push_back(a.cell.seq);
  }
  EXPECT_TRUE(std::is_sorted(seq77.begin(), seq77.end()));
  EXPECT_TRUE(std::is_sorted(seq78.begin(), seq78.end()));
}

// Span-ingest reassembly: chopping a mixed-VCI cell stream into arbitrary
// delivered trains and feeding boundary-free same-VC runs through
// IngestSpan (the transport's OnBurst strategy) must recover exactly the
// SDUs — and exactly the error counters — of the per-cell Push path,
// including resynchronisation after lost end-of-frame cells.
TEST(TrainEquivalence, SpanIngestReassemblyMatchesPerCellPath) {
  sim::Rng rng(23);
  // A long interleaved stream: frames on three VCIs, some with their
  // end-of-frame cell deleted. Frames are big enough that a lost EOF plus
  // the next frame overflows the reassembly buffer: the corruption surfaces
  // as BOTH mid-frame resyncs (length errors) and bad trailers (CRC
  // errors), and the span path must reproduce each count exactly.
  std::vector<Cell> stream;
  const Vci kVcis[] = {5, 9, 13};
  for (int frame = 0; frame < 120; ++frame) {
    const Vci vci = kVcis[rng.UniformInt(0, 2)];
    std::vector<uint8_t> sdu(static_cast<size_t>(rng.UniformInt(1, 40000)));
    for (auto& b : sdu) {
      b = static_cast<uint8_t>(rng.UniformInt(0, 255));
    }
    auto cells = Aal5Segment(vci, sdu, 0, 0);
    if (rng.Bernoulli(0.1)) {
      cells.pop_back();  // lost end-of-frame: the tail joins the next frame
    }
    stream.insert(stream.end(), cells.begin(), cells.end());
  }

  // Per-cell reference.
  std::map<Vci, Aal5Reassembler> ref;
  std::map<Vci, std::vector<std::vector<uint8_t>>> ref_sdus;
  for (const Cell& c : stream) {
    auto sdu = ref[c.vci].Push(c);
    if (sdu.has_value()) {
      ref_sdus[c.vci].push_back(*sdu);
    }
  }

  // Span path: random train boundaries, then the transport's run-splitting
  // — maximal boundary-free same-VC runs bulk-ingested, end-of-frame cells
  // pushed individually.
  std::map<Vci, Aal5Reassembler> span;
  std::map<Vci, std::vector<std::vector<uint8_t>>> span_sdus;
  size_t pos = 0;
  while (pos < stream.size()) {
    const size_t train =
        std::min(stream.size() - pos, static_cast<size_t>(rng.UniformInt(1, 128)));
    const Cell* cells = stream.data() + pos;
    size_t i = 0;
    while (i < train) {
      const Vci vci = cells[i].vci;
      size_t j = i;
      while (j < train && cells[j].vci == vci && !cells[j].end_of_frame) {
        ++j;
      }
      if (j > i) {
        span[vci].IngestSpan(cells + i, j - i);
      }
      if (j < train && cells[j].vci == vci) {
        auto sdu = span[vci].Push(cells[j]);
        ++j;
        if (sdu.has_value()) {
          span_sdus[vci].push_back(*sdu);
        }
      }
      i = j;
    }
    pos += train;
  }

  // The span path must match the reference cell-for-cell: same SDUs, same
  // resync/CRC accounting.
  for (const Vci vci : kVcis) {
    EXPECT_EQ(span_sdus[vci], ref_sdus[vci]);
    EXPECT_EQ(span[vci].length_errors(), ref[vci].length_errors());
    EXPECT_EQ(span[vci].crc_errors(), ref[vci].crc_errors());
    EXPECT_EQ(span[vci].frames_ok(), ref[vci].frames_ok());
    EXPECT_GT(span[vci].frames_ok(), 0u);
  }
  // The lost end-of-frame cells really exercised both failure modes.
  uint64_t total_length_errors = 0;
  uint64_t total_crc_errors = 0;
  for (const Vci vci : kVcis) {
    total_length_errors += span[vci].length_errors();
    total_crc_errors += span[vci].crc_errors();
  }
  EXPECT_GT(total_length_errors, 0u);
  EXPECT_GT(total_crc_errors, 0u);
}

}  // namespace
}  // namespace pegasus::atm
