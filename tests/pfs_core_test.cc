// Unit tests for the PFS substrates: disk model, striped store, log metadata.
#include <gtest/gtest.h>

#include <numeric>

#include "src/pfs/disk.h"
#include "src/pfs/log.h"
#include "src/pfs/stripe.h"
#include "src/sim/event_queue.h"

namespace pegasus::pfs {
namespace {

DiskGeometry SmallGeometry() {
  DiskGeometry g;
  g.capacity_bytes = 64 << 20;
  return g;
}

TEST(SimDiskTest, SequentialTransferTimeIsPureBandwidth) {
  sim::Simulator sim;
  SimDisk disk(&sim, "d", SmallGeometry());
  bool done = false;
  // 5 MiB at 5 MiB/s starting at the head position: exactly one second.
  disk.Write(0, std::vector<uint8_t>(5 * 1024 * 1024, 1), false, [&](bool ok) {
    EXPECT_TRUE(ok);
    done = true;
  });
  sim.Run();
  EXPECT_TRUE(done);
  EXPECT_EQ(sim.now(), sim::Seconds(1));
  EXPECT_EQ(disk.seek_time(), 0);
}

TEST(SimDiskTest, RandomAccessPaysSeekAndRotation) {
  sim::Simulator sim;
  SimDisk disk(&sim, "d", SmallGeometry());
  disk.Write(32 << 20, std::vector<uint8_t>(512, 1), false, [](bool) {});
  sim.Run();
  // Half-stroke seek (1 + 0.5*16 = 9ms) + half rotation (5.5ms) + transfer.
  EXPECT_GT(disk.seek_time(), sim::Milliseconds(14));
  EXPECT_LT(disk.seek_time(), sim::Milliseconds(15));
}

TEST(SimDiskTest, WriteThenReadRoundTrips) {
  sim::Simulator sim;
  SimDisk disk(&sim, "d", SmallGeometry());
  std::vector<uint8_t> payload(4096);
  std::iota(payload.begin(), payload.end(), 0);
  disk.Write(8192, payload, false, [](bool) {});
  std::vector<uint8_t> got;
  disk.Read(8192, 4096, false, [&](bool ok, std::vector<uint8_t> data) {
    EXPECT_TRUE(ok);
    got = std::move(data);
  });
  sim.Run();
  EXPECT_EQ(got, payload);
}

TEST(SimDiskTest, UnwrittenRangesReadZero) {
  sim::Simulator sim;
  SimDisk disk(&sim, "d", SmallGeometry());
  std::vector<uint8_t> got;
  disk.Read(1 << 20, 16, false, [&](bool ok, std::vector<uint8_t> data) {
    EXPECT_TRUE(ok);
    got = std::move(data);
  });
  sim.Run();
  EXPECT_EQ(got, std::vector<uint8_t>(16, 0));
}

TEST(SimDiskTest, OverlappingWritesResolveCorrectly) {
  sim::Simulator sim;
  SimDisk disk(&sim, "d", SmallGeometry());
  disk.Write(0, std::vector<uint8_t>(100, 0xAA), false, [](bool) {});
  disk.Write(50, std::vector<uint8_t>(100, 0xBB), false, [](bool) {});
  disk.Write(25, std::vector<uint8_t>(10, 0xCC), false, [](bool) {});
  std::vector<uint8_t> got;
  disk.Read(0, 150, false, [&](bool, std::vector<uint8_t> data) { got = std::move(data); });
  sim.Run();
  ASSERT_EQ(got.size(), 150u);
  EXPECT_EQ(got[0], 0xAA);
  EXPECT_EQ(got[24], 0xAA);
  EXPECT_EQ(got[25], 0xCC);
  EXPECT_EQ(got[34], 0xCC);
  EXPECT_EQ(got[35], 0xAA);
  EXPECT_EQ(got[49], 0xAA);
  EXPECT_EQ(got[50], 0xBB);
  EXPECT_EQ(got[149], 0xBB);
}

TEST(SimDiskTest, RealtimeRequestsJumpTheQueue) {
  sim::Simulator sim;
  SimDisk disk(&sim, "d", SmallGeometry());
  std::vector<int> order;
  // First request occupies the head; the rest queue behind it.
  disk.Read(0, 1 << 20, false, [&](bool, std::vector<uint8_t>) { order.push_back(0); });
  disk.Read(4 << 20, 4096, false, [&](bool, std::vector<uint8_t>) { order.push_back(1); });
  disk.Read(8 << 20, 4096, false, [&](bool, std::vector<uint8_t>) { order.push_back(2); });
  disk.Read(12 << 20, 4096, true, [&](bool, std::vector<uint8_t>) { order.push_back(99); });
  sim.Run();
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], 0);
  EXPECT_EQ(order[1], 99);  // realtime served before queued ordinary reads
}

TEST(SimDiskTest, FailedDiskErrorsRequests) {
  sim::Simulator sim;
  SimDisk disk(&sim, "d", SmallGeometry());
  disk.Fail();
  bool ok = true;
  disk.Read(0, 512, false, [&](bool k, std::vector<uint8_t>) { ok = k; });
  sim.Run();
  EXPECT_FALSE(ok);
  disk.Repair();
  disk.Read(0, 512, false, [&](bool k, std::vector<uint8_t>) { ok = k; });
  sim.Run();
  EXPECT_TRUE(ok);
}

TEST(SimDiskTest, FailDrainsPendingQueue) {
  sim::Simulator sim;
  SimDisk disk(&sim, "d", SmallGeometry());
  int failures = 0;
  disk.Read(0, 1 << 20, false, [&](bool k, std::vector<uint8_t>) { failures += k ? 0 : 1; });
  disk.Read(1 << 20, 4096, false, [&](bool k, std::vector<uint8_t>) { failures += k ? 0 : 1; });
  disk.Fail();
  sim.Run();
  // The in-flight request completes against a failed disk -> error; the
  // queued one is drained with an error.
  EXPECT_EQ(failures, 2);
}

class StripeFixture : public ::testing::Test {
 protected:
  StripeFixture() : store_(&sim_, 4, kSegmentSize, SmallGeometry()) {}

  static constexpr int64_t kSegmentSize = 64 << 10;

  std::vector<uint8_t> Pattern(int64_t len, uint8_t seed) {
    std::vector<uint8_t> v(static_cast<size_t>(len));
    for (size_t i = 0; i < v.size(); ++i) {
      v[i] = static_cast<uint8_t>(seed + i * 7);
    }
    return v;
  }

  sim::Simulator sim_;
  StripeStore store_;
};

TEST_F(StripeFixture, SegmentRoundTrip) {
  auto data = Pattern(kSegmentSize, 3);
  bool wrote = false;
  store_.WriteSegment(5, data, [&](bool ok) { wrote = ok; });
  sim_.Run();
  EXPECT_TRUE(wrote);
  std::vector<uint8_t> got;
  store_.ReadSegment(5, [&](bool ok, std::vector<uint8_t> d) {
    EXPECT_TRUE(ok);
    got = std::move(d);
  });
  sim_.Run();
  EXPECT_EQ(got, data);
}

TEST_F(StripeFixture, ShortSegmentPadsToFullSize) {
  bool wrote = false;
  store_.WriteSegment(0, Pattern(1000, 1), [&](bool ok) { wrote = ok; });
  sim_.Run();
  EXPECT_TRUE(wrote);
  std::vector<uint8_t> got;
  store_.ReadSegment(0, [&](bool, std::vector<uint8_t> d) { got = std::move(d); });
  sim_.Run();
  ASSERT_EQ(static_cast<int64_t>(got.size()), kSegmentSize);
  EXPECT_EQ(got[999], Pattern(1000, 1)[999]);
  EXPECT_EQ(got[1000], 0);
}

TEST_F(StripeFixture, ParityReconstructsSingleDiskFailure) {
  auto data = Pattern(kSegmentSize, 9);
  store_.WriteSegment(2, data, [](bool) {});
  sim_.Run();
  store_.disk(1)->Fail();
  std::vector<uint8_t> got;
  bool ok = false;
  store_.ReadSegment(2, [&](bool k, std::vector<uint8_t> d) {
    ok = k;
    got = std::move(d);
  });
  sim_.Run();
  EXPECT_TRUE(ok);
  EXPECT_EQ(got, data);  // §5: "recovery from disk errors" via parity
  EXPECT_GT(store_.reconstructed_reads(), 0);
}

TEST_F(StripeFixture, DoubleFailureIsNotMasked) {
  store_.WriteSegment(2, Pattern(kSegmentSize, 9), [](bool) {});
  sim_.Run();
  store_.disk(0)->Fail();
  store_.disk(1)->Fail();
  bool ok = true;
  store_.ReadSegment(2, [&](bool k, std::vector<uint8_t>) { ok = k; });
  sim_.Run();
  EXPECT_FALSE(ok);  // parity covers exactly one failure
}

TEST_F(StripeFixture, ReadRangeTouchesOnlyAffectedDisks) {
  const auto pattern = Pattern(kSegmentSize, 5);
  store_.WriteSegment(1, pattern, [](bool) {});
  sim_.Run();
  const int64_t reads_before = store_.disk(1)->reads() + store_.disk(2)->reads() +
                               store_.disk(3)->reads();
  std::vector<uint8_t> got;
  // Chunk size is 16 KiB; a read inside [0, 16K) touches only disk 0.
  store_.ReadRange(1, 100, 200, false, [&](bool ok, std::vector<uint8_t> d) {
    EXPECT_TRUE(ok);
    got = std::move(d);
  });
  sim_.Run();
  EXPECT_EQ(got, std::vector<uint8_t>(pattern.begin() + 100, pattern.begin() + 300));
  EXPECT_EQ(store_.disk(1)->reads() + store_.disk(2)->reads() + store_.disk(3)->reads(),
            reads_before);
}

TEST_F(StripeFixture, ParallelChunksGiveAggregateBandwidth) {
  // A 64 KiB segment write moves 16 KiB per disk in parallel: wall time is a
  // quarter of what one disk would need (plus nothing else: head at 0).
  store_.WriteSegment(0, Pattern(kSegmentSize, 1), [](bool) {});
  sim_.Run();
  const auto expected =
      (kSegmentSize / 4) * sim::Seconds(1) / SmallGeometry().transfer_bytes_per_sec;
  EXPECT_EQ(sim_.now(), expected);
}

TEST(LogMetadataTest, FileLifecycle) {
  LogMetadata meta(16);
  Pnode* f = meta.CreateFile(FileType::kNormal);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(meta.file_count(), 1);
  const FileId id = f->id;
  EXPECT_EQ(meta.Find(id), f);
  EXPECT_TRUE(meta.RemoveFile(id));
  EXPECT_EQ(meta.Find(id), nullptr);
  EXPECT_FALSE(meta.RemoveFile(id));
}

TEST(LogMetadataTest, SegmentAllocationRotates) {
  LogMetadata meta(4);
  EXPECT_EQ(meta.free_segments(), 4);
  int64_t a = meta.AllocateSegment(false);
  int64_t b = meta.AllocateSegment(true);
  EXPECT_NE(a, b);
  EXPECT_EQ(meta.free_segments(), 2);
  EXPECT_TRUE(meta.segment(b).continuous);
  meta.FreeSegment(a);
  EXPECT_EQ(meta.free_segments(), 3);
  // Exhaust.
  meta.AllocateSegment(false);
  meta.AllocateSegment(false);
  meta.AllocateSegment(false);
  EXPECT_EQ(meta.AllocateSegment(false), -1);
}

TEST(LogMetadataTest, GarbageMarkerProtocol) {
  LogMetadata meta(8);
  meta.AppendGarbage({1, 0, 100});
  meta.AppendGarbage({2, 0, 50});
  const size_t marker = meta.MarkGarbage();
  // Garbage arriving during the clean stays after the marker.
  meta.AppendGarbage({3, 0, 25});
  EXPECT_EQ(meta.garbage_entries(), 3);
  EXPECT_EQ(meta.garbage_bytes(), 175);
  meta.TruncateGarbage(marker);
  EXPECT_EQ(meta.garbage_entries(), 1);
  EXPECT_EQ(meta.garbage_bytes(), 25);
  EXPECT_EQ(meta.garbage().front().segment, 3);
}

TEST(LogMetadataTest, SerializeRoundTrip) {
  LogMetadata meta(8);
  Pnode* f = meta.CreateFile(FileType::kContinuous);
  f->size = 12345;
  f->blocks[0] = BlockLocation{2, 0, 8192};
  f->blocks[7] = BlockLocation{3, 8192, 8192};
  f->index[1'000'000] = 0;
  f->index[2'000'000] = 8192;
  int64_t seg = meta.AllocateSegment(true);
  meta.segment(seg).live_bytes = 16384;
  meta.segment(seg).summary.push_back(SummaryEntry{f->id, 0, 0, 8192});
  meta.AppendGarbage({1, 100, 200});

  auto restored = LogMetadata::Deserialize(meta.Serialize());
  ASSERT_TRUE(restored.has_value());
  const Pnode* g = restored->Find(f->id);
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->type, FileType::kContinuous);
  EXPECT_EQ(g->size, 12345);
  EXPECT_EQ(g->blocks.at(7).segment, 3);
  EXPECT_EQ(g->index.at(2'000'000), 8192);
  EXPECT_EQ(restored->segment(seg).live_bytes, 16384);
  ASSERT_EQ(restored->segment(seg).summary.size(), 1u);
  EXPECT_EQ(restored->garbage_bytes(), 200);
  // A fresh file id does not collide with the restored one.
  Pnode* h = restored->CreateFile(FileType::kNormal);
  EXPECT_GT(h->id, f->id);
}

TEST(LogMetadataTest, DeserializeRejectsCorruptImage) {
  LogMetadata meta(4);
  auto image = meta.Serialize();
  image[0] ^= 0xFF;  // break the magic
  EXPECT_FALSE(LogMetadata::Deserialize(image).has_value());
  EXPECT_FALSE(LogMetadata::Deserialize({1, 2, 3}).has_value());
}

}  // namespace
}  // namespace pegasus::pfs
