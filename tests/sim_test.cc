// Unit tests for the discrete-event simulation core.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <functional>
#include <vector>

#include "src/sim/event_queue.h"
#include "src/sim/random.h"
#include "src/sim/stats.h"
#include "src/sim/table.h"
#include "src/sim/time.h"

namespace pegasus::sim {
namespace {

TEST(TimeTest, Constructors) {
  EXPECT_EQ(Nanoseconds(7), 7);
  EXPECT_EQ(Microseconds(3), 3'000);
  EXPECT_EQ(Milliseconds(2), 2'000'000);
  EXPECT_EQ(Seconds(1), 1'000'000'000);
}

TEST(TimeTest, Accessors) {
  EXPECT_EQ(ToMicroseconds(Microseconds(5)), 5);
  EXPECT_EQ(ToMilliseconds(Milliseconds(9)), 9);
  EXPECT_DOUBLE_EQ(ToSecondsF(Milliseconds(1500)), 1.5);
}

TEST(TimeTest, TransmissionTimeRoundsUp) {
  // 53 bytes at 100 Mb/s = 4.24 us exactly.
  EXPECT_EQ(TransmissionTime(53, 100'000'000), 4240);
  // 1 byte at 3 bps doesn't divide evenly; must round up.
  EXPECT_EQ(TransmissionTime(1, 3), (8 * 1'000'000'000LL + 2) / 3);
}

TEST(TimeTest, FormatDurationPicksUnits) {
  EXPECT_EQ(FormatDuration(500), "500ns");
  EXPECT_EQ(FormatDuration(Microseconds(38)), "38.0us");
  EXPECT_EQ(FormatDuration(Milliseconds(33)), "33.0ms");
  EXPECT_EQ(FormatDuration(Seconds(2)), "2.00s");
  EXPECT_EQ(FormatDuration(-Milliseconds(1)), "-1.0ms");
}

TEST(SimulatorTest, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.ScheduleAt(30, [&]() { order.push_back(3); });
  sim.ScheduleAt(10, [&]() { order.push_back(1); });
  sim.ScheduleAt(20, [&]() { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30);
}

TEST(SimulatorTest, SameTimeEventsRunFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.ScheduleAt(5, [&order, i]() { order.push_back(i); });
  }
  sim.Run();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i);
  }
}

TEST(SimulatorTest, PastTimesClampToNow) {
  Simulator sim;
  TimeNs seen = -1;
  sim.ScheduleAt(100, [&]() {
    sim.ScheduleAt(50, [&]() { seen = sim.now(); });  // in the past
  });
  sim.Run();
  EXPECT_EQ(seen, 100);
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator sim;
  bool ran = false;
  EventId id = sim.ScheduleAt(10, [&]() { ran = true; });
  EXPECT_TRUE(sim.Cancel(id));
  sim.Run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(sim.executed(), 0u);
}

TEST(SimulatorTest, CancelAfterRunReportsFalse) {
  Simulator sim;
  EventId id = sim.ScheduleAt(10, []() {});
  sim.Run();
  EXPECT_FALSE(sim.Cancel(EventId{}));  // invalid id
  // The id already ran: the cancel must report failure (the slot's
  // generation moved on) and must not disturb anything.
  EXPECT_FALSE(sim.Cancel(id));
  sim.Run();
  EXPECT_EQ(sim.executed(), 1u);
}

TEST(SimulatorTest, CancelBookkeepingDoesNotLeakOrDoubleCount) {
  Simulator sim;
  // Cancel-after-run across slot reuse: stale ids must stay dead even when
  // their slot has been handed to a newer event.
  EventId first = sim.ScheduleAt(1, []() {});
  sim.Run();
  bool second_ran = false;
  EventId second = sim.ScheduleAt(2, [&]() { second_ran = true; });
  // `first` is stale; whatever slot it occupied, cancelling it must not
  // kill `second`.
  EXPECT_FALSE(sim.Cancel(first));
  EXPECT_EQ(sim.pending(), 1u);
  sim.Run();
  EXPECT_TRUE(second_ran);
  // Double-cancel: the second attempt reports false.
  EventId third = sim.ScheduleAt(3, []() {});
  EXPECT_TRUE(sim.Cancel(third));
  EXPECT_FALSE(sim.Cancel(third));
  EXPECT_EQ(sim.pending(), 0u);
  // Churn through cancelled and executed events: pending() stays exact
  // (the old engine's cancelled-id set could drift after cancel-after-run).
  for (int round = 0; round < 100; ++round) {
    EventId a = sim.ScheduleAfter(1, []() {});
    EventId b = sim.ScheduleAfter(2, []() {});
    EXPECT_TRUE(sim.Cancel(a));
    sim.Run();
    EXPECT_FALSE(sim.Cancel(a));
    EXPECT_FALSE(sim.Cancel(b));  // already ran
    EXPECT_EQ(sim.pending(), 0u);
  }
}

TEST(SimulatorTest, RunUntilAdvancesClockExactly) {
  Simulator sim;
  int count = 0;
  sim.ScheduleAt(10, [&]() { ++count; });
  sim.ScheduleAt(20, [&]() { ++count; });
  sim.ScheduleAt(30, [&]() { ++count; });
  sim.RunUntil(20);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(sim.now(), 20);
  sim.RunUntil(100);
  EXPECT_EQ(count, 3);
  EXPECT_EQ(sim.now(), 100);
}

TEST(SimulatorTest, RunUntilBeforeLeavesEventsAtHorizonPending) {
  Simulator sim;
  int count = 0;
  sim.ScheduleAt(10, [&]() { ++count; });
  sim.ScheduleAt(20, [&]() { ++count; });
  sim.ScheduleAt(30, [&]() { ++count; });
  // Strictly-before semantics: the event AT the horizon stays pending —
  // that is what lets a conservative shard window end exactly at another
  // shard's next event time without stealing it.
  sim.RunUntilBefore(20);
  EXPECT_EQ(count, 1);
  EXPECT_EQ(sim.now(), 20);
  EXPECT_EQ(sim.pending(), 2u);
  sim.RunUntil(20);
  EXPECT_EQ(count, 2);
  sim.RunUntilBefore(100);
  EXPECT_EQ(count, 3);
  EXPECT_EQ(sim.now(), 100);
}

TEST(SimulatorTest, NextEventTimeSeesThroughCancellations) {
  Simulator sim;
  EXPECT_EQ(sim.NextEventTime(), kTimeNever);
  EventId a = sim.ScheduleAt(10, []() {});
  sim.ScheduleAt(25, []() {});
  EXPECT_EQ(sim.NextEventTime(), 10);
  sim.Cancel(a);
  EXPECT_EQ(sim.NextEventTime(), 25);
  sim.Run();
  EXPECT_EQ(sim.NextEventTime(), kTimeNever);
}

TEST(SimulatorTest, RunUntilPredicate) {
  Simulator sim;
  int count = 0;
  for (int t = 1; t <= 100; ++t) {
    sim.ScheduleAt(t, [&]() { ++count; });
  }
  EXPECT_TRUE(sim.RunUntilPredicate([&]() { return count == 42; }));
  EXPECT_EQ(count, 42);
  EXPECT_FALSE(sim.RunUntilPredicate([&]() { return count == 1000; }));
}

TEST(SimulatorTest, EventsCanScheduleEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&]() {
    if (++depth < 64) {
      sim.ScheduleAfter(1, recurse);
    }
  };
  sim.ScheduleAt(0, recurse);
  sim.Run();
  EXPECT_EQ(depth, 64);
  EXPECT_EQ(sim.now(), 63);
}

TEST(SimulatorTest, PendingCountExcludesCancelled) {
  Simulator sim;
  EventId a = sim.ScheduleAt(1, []() {});
  sim.ScheduleAt(2, []() {});
  EXPECT_EQ(sim.pending(), 2u);
  sim.Cancel(a);
  EXPECT_EQ(sim.pending(), 1u);
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += a.Next() == b.Next() ? 1 : 0;
  }
  EXPECT_LT(same, 4);
}

TEST(RngTest, UniformIntStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    int64_t v = rng.UniformInt(-5, 17);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 17);
  }
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(7);
  std::vector<int> hits(10, 0);
  for (int i = 0; i < 10'000; ++i) {
    ++hits[static_cast<size_t>(rng.UniformInt(0, 9))];
  }
  for (int h : hits) {
    EXPECT_GT(h, 800);  // roughly uniform
    EXPECT_LT(h, 1200);
  }
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10'000; ++i) {
    double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, ExponentialMeanApproximatelyCorrect) {
  Rng rng(11);
  double sum = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    sum += rng.Exponential(250.0);
  }
  EXPECT_NEAR(sum / n, 250.0, 5.0);
}

TEST(RngTest, BoundedParetoStaysBounded) {
  Rng rng(13);
  for (int i = 0; i < 10'000; ++i) {
    double v = rng.BoundedPareto(1.1, 1.0, 1000.0);
    EXPECT_GE(v, 0.999);
    EXPECT_LE(v, 1000.001);
  }
}

TEST(RngTest, ZipfSkewsTowardLowRanks) {
  Rng rng(17);
  std::vector<int> hits(100, 0);
  for (int i = 0; i < 50'000; ++i) {
    ++hits[static_cast<size_t>(rng.Zipf(100, 0.9))];
  }
  EXPECT_GT(hits[0], hits[50] * 5);
  EXPECT_GT(hits[0], hits[99] * 10);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(19);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
  int heads = 0;
  for (int i = 0; i < 10'000; ++i) {
    heads += rng.Bernoulli(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(heads, 3000, 300);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(23);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(SummaryTest, BasicStatistics) {
  Summary s;
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0}) {
    s.Add(v);
  }
  EXPECT_EQ(s.count(), 5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(2.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.Median(), 3.0);
}

TEST(SummaryTest, EmptySummaryIsZero) {
  Summary s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.Quantile(0.5), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(SummaryTest, QuantilesAreExact) {
  Summary s;
  for (int i = 1; i <= 100; ++i) {
    s.Add(i);
  }
  EXPECT_DOUBLE_EQ(s.Quantile(0.01), 1.0);
  EXPECT_DOUBLE_EQ(s.Quantile(0.5), 50.0);
  EXPECT_DOUBLE_EQ(s.Quantile(0.99), 99.0);
  EXPECT_DOUBLE_EQ(s.Quantile(1.0), 100.0);
  EXPECT_DOUBLE_EQ(s.Quantile(0.0), 1.0);
}

TEST(SummaryTest, QuantileAfterIncrementalAdds) {
  Summary s;
  s.Add(10.0);
  EXPECT_DOUBLE_EQ(s.Quantile(0.5), 10.0);
  s.Add(20.0);
  s.Add(0.0);
  EXPECT_DOUBLE_EQ(s.Quantile(0.5), 10.0);  // re-sorts after new samples
}

TEST(HistogramTest, BucketsAndOverflow) {
  Histogram h(0.0, 100.0, 10);
  h.Add(5.0);    // bucket 0
  h.Add(15.0);   // bucket 1
  h.Add(95.0);   // bucket 9
  h.Add(-1.0);   // underflow
  h.Add(100.0);  // overflow (hi is exclusive)
  EXPECT_EQ(h.count(), 5);
  EXPECT_EQ(h.bucket_count(0), 1);
  EXPECT_EQ(h.bucket_count(1), 1);
  EXPECT_EQ(h.bucket_count(9), 1);
  EXPECT_EQ(h.underflow(), 1);
  EXPECT_EQ(h.overflow(), 1);
  EXPECT_DOUBLE_EQ(h.bucket_lo(1), 10.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(1), 20.0);
}

TEST(HistogramTest, ToStringMentionsNonEmptyBuckets) {
  Histogram h(0.0, 10.0, 2);
  h.Add(1.0);
  std::string s = h.ToString("ms");
  EXPECT_NE(s.find("ms"), std::string::npos);
}

TEST(TableTest, RendersAlignedColumns) {
  Table t({"a", "long-header", "c"});
  t.AddRow({"1", "2", "3"});
  t.AddRow({"row-with-long-cell", "x"});
  std::string s = t.ToString();
  EXPECT_NE(s.find("long-header"), std::string::npos);
  EXPECT_NE(s.find("row-with-long-cell"), std::string::npos);
  // Header + rule + 2 rows = 4 lines.
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 4);
}

TEST(TableTest, Formatters) {
  EXPECT_EQ(Table::Num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::Int(1234), "1234");
  EXPECT_EQ(Table::Factor(2.5), "2.5x");
  EXPECT_EQ(Table::Percent(0.123), "12.3%");
}

}  // namespace
}  // namespace pegasus::sim
