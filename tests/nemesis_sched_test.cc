// Scheduler tests: share+EDF guarantees, baselines, preemption, QoS manager.
#include <gtest/gtest.h>

#include <memory>

#include "src/nemesis/atropos.h"
#include "src/nemesis/baseline_schedulers.h"
#include "src/nemesis/kernel.h"
#include "src/nemesis/qos_manager.h"
#include "src/nemesis/workloads.h"
#include "src/sim/event_queue.h"

namespace pegasus::nemesis {
namespace {

using sim::Milliseconds;
using sim::Seconds;

std::unique_ptr<Kernel> MakeAtroposKernel(sim::Simulator* sim, double capacity = 1.0) {
  return std::make_unique<Kernel>(sim, std::make_unique<AtroposScheduler>(capacity),
                                  KernelCosts::Zero());
}

TEST(AtroposTest, AdmissionControlEnforcesCapacity) {
  sim::Simulator sim;
  auto kernel = MakeAtroposKernel(&sim);
  BatchDomain a("a", QosParams::Guaranteed(Milliseconds(60), Milliseconds(100)));
  BatchDomain b("b", QosParams::Guaranteed(Milliseconds(50), Milliseconds(100)));
  EXPECT_TRUE(kernel->AddDomain(&a));
  EXPECT_FALSE(kernel->AddDomain(&b));  // 0.6 + 0.5 > 1.0
  BatchDomain c("c", QosParams::Guaranteed(Milliseconds(40), Milliseconds(100)));
  EXPECT_TRUE(kernel->AddDomain(&c));  // 0.6 + 0.4 fits exactly
  EXPECT_NEAR(kernel->scheduler()->AdmittedUtilization(), 1.0, 1e-9);
}

TEST(AtroposTest, InvalidContractsRejected) {
  sim::Simulator sim;
  auto kernel = MakeAtroposKernel(&sim);
  BatchDomain neg("neg", QosParams{-1, Milliseconds(10), true});
  EXPECT_FALSE(kernel->AddDomain(&neg));
  BatchDomain zero_period("zp", QosParams{1, 0, true});
  EXPECT_FALSE(kernel->AddDomain(&zero_period));
}

TEST(AtroposTest, GuaranteedSharesDeliveredExactly) {
  sim::Simulator sim;
  auto kernel = MakeAtroposKernel(&sim);
  // Two greedy domains with different contracts plus one best-effort hog.
  BatchDomain a("a", QosParams::Guaranteed(Milliseconds(30), Milliseconds(100), false));
  BatchDomain b("b", QosParams::Guaranteed(Milliseconds(20), Milliseconds(50), false));
  BatchDomain hog("hog", QosParams::BestEffort());
  ASSERT_TRUE(kernel->AddDomain(&a));
  ASSERT_TRUE(kernel->AddDomain(&b));
  ASSERT_TRUE(kernel->AddDomain(&hog));
  kernel->Start();
  sim.RunUntil(Seconds(10));
  // a: 30% of 10s = 3s; b: 40% = 4s; hog gets the remaining 30%.
  EXPECT_NEAR(static_cast<double>(a.cpu_guaranteed()), 3e9, 1e9 * 0.001);
  EXPECT_NEAR(static_cast<double>(b.cpu_guaranteed()), 4e9, 1e9 * 0.001);
  EXPECT_NEAR(static_cast<double>(hog.cpu_total()), 3e9, 1e9 * 0.01);
}

TEST(AtroposTest, ExtraTimeSharedAmongOptIns) {
  sim::Simulator sim;
  auto kernel = MakeAtroposKernel(&sim);
  // One guaranteed domain that also wants slack, one pure best-effort.
  BatchDomain g("g", QosParams::Guaranteed(Milliseconds(20), Milliseconds(100), true));
  BatchDomain be("be", QosParams::BestEffort());
  ASSERT_TRUE(kernel->AddDomain(&g));
  ASSERT_TRUE(kernel->AddDomain(&be));
  kernel->Start();
  sim.RunUntil(Seconds(10));
  // Guarantee honoured...
  EXPECT_NEAR(static_cast<double>(g.cpu_guaranteed()), 2e9, 2e7);
  // ...and the remaining 80% split evenly between the two slack consumers.
  EXPECT_NEAR(static_cast<double>(g.cpu_extra()), 4e9, 2e8);
  EXPECT_NEAR(static_cast<double>(be.cpu_total()), 4e9, 2e8);
}

TEST(AtroposTest, NoExtraTimeDomainStopsAtSlice) {
  sim::Simulator sim;
  auto kernel = MakeAtroposKernel(&sim);
  BatchDomain g("g", QosParams::Guaranteed(Milliseconds(10), Milliseconds(100), false));
  ASSERT_TRUE(kernel->AddDomain(&g));
  kernel->Start();
  sim.RunUntil(Seconds(1));
  EXPECT_NEAR(static_cast<double>(g.cpu_total()), 1e8, 1e6);
  EXPECT_EQ(g.cpu_extra(), 0);
  // CPU idles 90% of the time even though g has work: its contract says no
  // extra time.
  EXPECT_NEAR(static_cast<double>(kernel->idle_time()), 9e8, 1e7);
}

TEST(AtroposTest, EdfMeetsAllDeadlinesAtFullUtilisation) {
  sim::Simulator sim;
  auto kernel = MakeAtroposKernel(&sim);
  // Three periodic media domains with harmonically unrelated periods filling
  // 95% of the CPU; EDF should miss nothing when slices cover the work.
  PeriodicDomain v1(&sim, "video-25fps", QosParams::Guaranteed(Milliseconds(16), Milliseconds(40)),
                    Milliseconds(15), Milliseconds(40));
  PeriodicDomain v2(&sim, "video-30fps",
                    QosParams::Guaranteed(Milliseconds(11), sim::Microseconds(33'333)),
                    Milliseconds(10), sim::Microseconds(33'333));
  PeriodicDomain au(&sim, "audio", QosParams::Guaranteed(Milliseconds(2), Milliseconds(8)),
                    sim::Microseconds(1'800), Milliseconds(8));
  ASSERT_TRUE(kernel->AddDomain(&v1));
  ASSERT_TRUE(kernel->AddDomain(&v2));
  ASSERT_TRUE(kernel->AddDomain(&au));
  kernel->Start();
  sim.RunUntil(Seconds(20));
  EXPECT_GT(v1.jobs_completed(), 490);
  EXPECT_EQ(v1.deadline_misses(), 0);
  EXPECT_EQ(v2.deadline_misses(), 0);
  EXPECT_EQ(au.deadline_misses(), 0);
}

TEST(AtroposTest, MediaDomainUnaffectedByLoad) {
  // The E04 claim in miniature: a guaranteed media domain sees the same
  // completion latency with and without ten competing batch domains.
  auto run = [](int n_hogs) {
    sim::Simulator sim;
    auto kernel = MakeAtroposKernel(&sim);
    PeriodicDomain media(&sim, "media", QosParams::Guaranteed(Milliseconds(10), Milliseconds(40)),
                         Milliseconds(8), Milliseconds(40));
    EXPECT_TRUE(kernel->AddDomain(&media));
    std::vector<std::unique_ptr<BatchDomain>> hogs;
    for (int i = 0; i < n_hogs; ++i) {
      hogs.push_back(std::make_unique<BatchDomain>("hog" + std::to_string(i),
                                                   QosParams::BestEffort()));
      EXPECT_TRUE(kernel->AddDomain(hogs.back().get()));
    }
    kernel->Start();
    sim.RunUntil(Seconds(10));
    EXPECT_EQ(media.deadline_misses(), 0);
    return media.completion_latency().mean();
  };
  const double unloaded = run(0);
  const double loaded = run(10);
  // Within 20%: load may only shift completions inside the period.
  EXPECT_LT(std::abs(loaded - unloaded) / unloaded, 0.2);
}

TEST(AtroposTest, RemoveDomainFreesItsShare) {
  sim::Simulator sim;
  auto kernel = MakeAtroposKernel(&sim);
  BatchDomain a("a", QosParams::Guaranteed(Milliseconds(60), Milliseconds(100)));
  ASSERT_TRUE(kernel->AddDomain(&a));
  BatchDomain b("b", QosParams::Guaranteed(Milliseconds(50), Milliseconds(100)));
  EXPECT_FALSE(kernel->AddDomain(&b));
  kernel->RemoveDomain(&a);
  EXPECT_TRUE(kernel->AddDomain(&b));
}

// Removing the domain that is ON the CPU mid-timeslice must deschedule it
// like a preemption (partial segment charged, run-end cancelled), not trip
// an assert: which domain is running when a client departs is schedule
// timing, and the QoS manager's departure path cannot be asked to avoid it.
TEST(AtroposTest, RemoveRunningDomainDeschedulesIt) {
  sim::Simulator sim;
  auto kernel = MakeAtroposKernel(&sim);
  BatchDomain a("a", QosParams::Guaranteed(Milliseconds(60), Milliseconds(100)));
  ASSERT_TRUE(kernel->AddDomain(&a));
  kernel->Start();
  // A lone batch domain is always the one running; stop mid-timeslice.
  sim.RunUntil(Milliseconds(250) + Milliseconds(1) / 2);
  ASSERT_GT(a.cpu_total(), 0);
  kernel->RemoveDomain(&a);
  const sim::DurationNs charged_at_removal = a.cpu_total();
  // The kernel goes idle and never charges the removed domain again.
  sim.RunUntil(Seconds(1));
  EXPECT_EQ(a.cpu_total(), charged_at_removal);
  // Its share is free for a newcomer, which then actually runs.
  BatchDomain b("b", QosParams::Guaranteed(Milliseconds(60), Milliseconds(100)));
  ASSERT_TRUE(kernel->AddDomain(&b));
  sim.RunUntil(Seconds(2));
  EXPECT_GT(b.cpu_total(), 0);
}

TEST(AtroposTest, UpdateQosRespectsCapacity) {
  sim::Simulator sim;
  auto kernel = MakeAtroposKernel(&sim);
  BatchDomain a("a", QosParams::Guaranteed(Milliseconds(40), Milliseconds(100)));
  BatchDomain b("b", QosParams::Guaranteed(Milliseconds(40), Milliseconds(100)));
  ASSERT_TRUE(kernel->AddDomain(&a));
  ASSERT_TRUE(kernel->AddDomain(&b));
  // Growing a to 70% would exceed capacity with b at 40%.
  EXPECT_FALSE(kernel->UpdateQos(&a, QosParams::Guaranteed(Milliseconds(70), Milliseconds(100))));
  // Shrinking b makes room.
  EXPECT_TRUE(kernel->UpdateQos(&b, QosParams::Guaranteed(Milliseconds(20), Milliseconds(100))));
  EXPECT_TRUE(kernel->UpdateQos(&a, QosParams::Guaranteed(Milliseconds(70), Milliseconds(100))));
  EXPECT_EQ(a.qos().slice, Milliseconds(70));
}

TEST(AtroposTest, UpdatedShareTakesEffect) {
  sim::Simulator sim;
  auto kernel = MakeAtroposKernel(&sim);
  BatchDomain a("a", QosParams::Guaranteed(Milliseconds(20), Milliseconds(100), false));
  BatchDomain hog("hog", QosParams::BestEffort());
  ASSERT_TRUE(kernel->AddDomain(&a));
  ASSERT_TRUE(kernel->AddDomain(&hog));
  kernel->Start();
  sim.RunUntil(Seconds(5));
  const auto at_5s = a.cpu_guaranteed();
  EXPECT_NEAR(static_cast<double>(at_5s), 1e9, 2e7);
  ASSERT_TRUE(kernel->UpdateQos(&a, QosParams::Guaranteed(Milliseconds(50), Milliseconds(100),
                                                          false)));
  sim.RunUntil(Seconds(10));
  // Second half at 50%: 2.5s more.
  EXPECT_NEAR(static_cast<double>(a.cpu_guaranteed() - at_5s), 2.5e9, 1e8);
}

TEST(RoundRobinTest, SplitsCpuEvenly) {
  sim::Simulator sim;
  auto kernel = std::make_unique<Kernel>(&sim, std::make_unique<RoundRobinScheduler>(),
                                         KernelCosts::Zero());
  BatchDomain a("a", QosParams::BestEffort());
  BatchDomain b("b", QosParams::BestEffort());
  BatchDomain c("c", QosParams::BestEffort());
  ASSERT_TRUE(kernel->AddDomain(&a));
  ASSERT_TRUE(kernel->AddDomain(&b));
  ASSERT_TRUE(kernel->AddDomain(&c));
  kernel->Start();
  sim.RunUntil(Seconds(9));
  EXPECT_NEAR(static_cast<double>(a.cpu_total()), 3e9, 1e8);
  EXPECT_NEAR(static_cast<double>(b.cpu_total()), 3e9, 1e8);
  EXPECT_NEAR(static_cast<double>(c.cpu_total()), 3e9, 1e8);
}

TEST(RoundRobinTest, MediaMissesDeadlinesUnderLoad) {
  // The negative result motivating the paper: timesharing cannot protect a
  // media domain from background load.
  sim::Simulator sim;
  auto kernel = std::make_unique<Kernel>(&sim, std::make_unique<RoundRobinScheduler>(),
                                         KernelCosts::Zero());
  PeriodicDomain media(&sim, "media", QosParams::BestEffort(), Milliseconds(8), Milliseconds(40));
  ASSERT_TRUE(kernel->AddDomain(&media));
  std::vector<std::unique_ptr<BatchDomain>> hogs;
  for (int i = 0; i < 10; ++i) {
    // Hogs that consume their full 10ms quantum per service turn.
    hogs.push_back(std::make_unique<BatchDomain>("hog" + std::to_string(i),
                                                 QosParams::BestEffort(), Milliseconds(10)));
    ASSERT_TRUE(kernel->AddDomain(hogs.back().get()));
  }
  kernel->Start();
  sim.RunUntil(Seconds(10));
  // With 11 domains sharing via 10ms quanta, an 8ms job in a 40ms period is
  // hopeless: most deadlines are blown.
  EXPECT_GT(media.deadline_misses(), media.jobs_completed() / 2);
}

TEST(PriorityTest, HigherPriorityPreempts) {
  sim::Simulator sim;
  auto sched = std::make_unique<PriorityScheduler>();
  PriorityScheduler* sp = sched.get();
  auto kernel = std::make_unique<Kernel>(&sim, std::move(sched), KernelCosts::Zero());
  BatchDomain lo("lo", QosParams::BestEffort());
  PeriodicDomain hi(&sim, "hi", QosParams::BestEffort(), Milliseconds(5), Milliseconds(20));
  sp->SetPriority(&lo, 1);
  sp->SetPriority(&hi, 10);
  ASSERT_TRUE(kernel->AddDomain(&lo));
  ASSERT_TRUE(kernel->AddDomain(&hi));
  kernel->Start();
  sim.RunUntil(Seconds(2));
  // hi runs the moment its job is released: zero misses, latency == cost.
  EXPECT_EQ(hi.deadline_misses(), 0);
  EXPECT_NEAR(hi.completion_latency().mean(), 5e6, 1e4);
  // lo got the rest.
  EXPECT_NEAR(static_cast<double>(lo.cpu_total()), 1.5e9, 1e8);
}

TEST(PriorityTest, PriorityInversionStarvesMedia) {
  // If the media domain is NOT the highest priority, a single higher hog
  // starves it completely — priorities don't compose like contracts do.
  sim::Simulator sim;
  auto sched = std::make_unique<PriorityScheduler>();
  PriorityScheduler* sp = sched.get();
  auto kernel = std::make_unique<Kernel>(&sim, std::move(sched), KernelCosts::Zero());
  PeriodicDomain media(&sim, "media", QosParams::BestEffort(), Milliseconds(8), Milliseconds(40));
  BatchDomain hog("hog", QosParams::BestEffort());
  sp->SetPriority(&media, 5);
  sp->SetPriority(&hog, 9);
  ASSERT_TRUE(kernel->AddDomain(&media));
  ASSERT_TRUE(kernel->AddDomain(&hog));
  kernel->Start();
  sim.RunUntil(Seconds(2));
  EXPECT_EQ(media.jobs_completed(), 0);
}

TEST(QosManagerTest, WeightsDriveShares) {
  sim::Simulator sim;
  auto kernel = MakeAtroposKernel(&sim);
  QosManagerDomain::Options opts;
  opts.target_utilization = 0.8;
  opts.reclaim_unused = false;
  opts.smoothing = 1.0;
  QosManagerDomain mgr(&sim, "qosmgr",
                       QosParams::Guaranteed(sim::Microseconds(500), Milliseconds(50)), opts);
  BatchDomain a("a", QosParams::Guaranteed(Milliseconds(1), Milliseconds(100)));
  BatchDomain b("b", QosParams::Guaranteed(Milliseconds(1), Milliseconds(100)));
  ASSERT_TRUE(kernel->AddDomain(&mgr));
  ASSERT_TRUE(kernel->AddDomain(&a));
  ASSERT_TRUE(kernel->AddDomain(&b));
  // Both ask for everything; a has 3x b's weight.
  mgr.Register(&a, 3.0, QosParams::Guaranteed(Milliseconds(100), Milliseconds(100)));
  mgr.Register(&b, 1.0, QosParams::Guaranteed(Milliseconds(100), Milliseconds(100)));
  kernel->Start();
  sim.RunUntil(Seconds(5));
  EXPECT_GT(mgr.reviews(), 5);
  EXPECT_NEAR(mgr.GrantedUtilization(&a), 0.6, 0.02);
  EXPECT_NEAR(mgr.GrantedUtilization(&b), 0.2, 0.02);
}

TEST(QosManagerTest, DepartureReleasesShareToRemaining) {
  sim::Simulator sim;
  auto kernel = MakeAtroposKernel(&sim);
  QosManagerDomain::Options opts;
  opts.target_utilization = 0.8;
  opts.reclaim_unused = false;
  QosManagerDomain mgr(&sim, "qosmgr",
                       QosParams::Guaranteed(sim::Microseconds(500), Milliseconds(50)), opts);
  BatchDomain a("a", QosParams::Guaranteed(Milliseconds(1), Milliseconds(100)));
  BatchDomain b("b", QosParams::Guaranteed(Milliseconds(1), Milliseconds(100)));
  ASSERT_TRUE(kernel->AddDomain(&mgr));
  ASSERT_TRUE(kernel->AddDomain(&a));
  ASSERT_TRUE(kernel->AddDomain(&b));
  mgr.Register(&a, 1.0, QosParams::Guaranteed(Milliseconds(100), Milliseconds(100)));
  mgr.Register(&b, 1.0, QosParams::Guaranteed(Milliseconds(100), Milliseconds(100)));
  kernel->Start();
  sim.RunUntil(Seconds(5));
  EXPECT_NEAR(mgr.GrantedUtilization(&a), 0.4, 0.02);
  // b leaves; a should converge to the whole target.
  mgr.Unregister(&b);
  kernel->RemoveDomain(&b);
  sim.RunUntil(Seconds(15));
  EXPECT_NEAR(mgr.GrantedUtilization(&a), 0.8, 0.02);
}

TEST(QosManagerTest, ReclaimsUnusedAllocation) {
  sim::Simulator sim;
  auto kernel = MakeAtroposKernel(&sim);
  QosManagerDomain::Options opts;
  opts.target_utilization = 0.9;
  opts.reclaim_unused = true;
  QosManagerDomain mgr(&sim, "qosmgr",
                       QosParams::Guaranteed(sim::Microseconds(500), Milliseconds(50)), opts);
  // `idle` asks for 50% but only ever uses ~5% (1ms job per 20ms period);
  // `greedy` can use everything it gets.
  PeriodicDomain idle(&sim, "idle", QosParams::Guaranteed(Milliseconds(10), Milliseconds(20)),
                      Milliseconds(1), Milliseconds(20));
  BatchDomain greedy("greedy", QosParams::Guaranteed(Milliseconds(1), Milliseconds(100)));
  ASSERT_TRUE(kernel->AddDomain(&mgr));
  ASSERT_TRUE(kernel->AddDomain(&idle));
  ASSERT_TRUE(kernel->AddDomain(&greedy));
  mgr.Register(&idle, 1.0, QosParams::Guaranteed(Milliseconds(10), Milliseconds(20)));
  mgr.Register(&greedy, 1.0, QosParams::Guaranteed(Milliseconds(90), Milliseconds(100)));
  kernel->Start();
  sim.RunUntil(Seconds(20));
  // The idle domain's grant shrinks towards observed usage; greedy absorbs it.
  EXPECT_LT(mgr.GrantedUtilization(&idle), 0.15);
  EXPECT_GT(mgr.GrantedUtilization(&greedy), 0.7);
  // And the idle domain still meets its deadlines with the trimmed share.
  EXPECT_EQ(idle.deadline_misses(), 0);
}

}  // namespace
}  // namespace pegasus::nemesis
