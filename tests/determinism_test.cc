// Engine-swap regression: the slab/inline-handler event engine must execute
// a fixed scheduling scenario in EXACTLY the order the std::function
// priority-queue engine did. The golden values below were recorded by
// running this very scenario against the pre-swap engine (commit eedd4d2);
// any reordering of (time, seq) ties, any clamp change, or any cancellation
// semantics drift shows up as a hash mismatch.
#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "src/sim/event_queue.h"
#include "src/sim/random.h"
#include "src/sim/time.h"

namespace pegasus::sim {
namespace {

// FNV-1a over the executed (tag, time) sequence — order-sensitive, so any
// reordering changes the digest.
uint64_t DigestLog(const std::vector<std::pair<int, TimeNs>>& log) {
  uint64_t h = 1469598103934665603ull;
  auto mix = [&h](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFF;
      h *= 1099511628211ull;
    }
  };
  for (const auto& [tag, t] : log) {
    mix(static_cast<uint64_t>(tag));
    mix(static_cast<uint64_t>(t));
  }
  return h;
}

struct ScenarioResult {
  uint64_t digest = 0;
  uint64_t executed = 0;
  TimeNs final_now = 0;
  size_t log_size = 0;
};

// A fixed pseudo-random scheduling scenario covering the engine's whole
// surface: bulk out-of-order scheduling, same-time FIFO ties, cancellation
// before and after execution, double-cancels, nested scheduling from inside
// handlers, past-time clamping, and a RunUntil boundary mid-run.
ScenarioResult RunScenario() {
  Simulator sim;
  Rng rng(2024);
  std::vector<std::pair<int, TimeNs>> log;
  std::vector<EventId> ids;
  for (int i = 0; i < 400; ++i) {
    const TimeNs t = rng.UniformInt(0, 5000);
    ids.push_back(sim.ScheduleAt(t, [&log, &sim, i]() { log.emplace_back(i, sim.now()); }));
  }
  // Same-time FIFO ties.
  for (int i = 0; i < 20; ++i) {
    sim.ScheduleAt(1234, [&log, &sim, i]() { log.emplace_back(500 + i, sim.now()); });
  }
  // Nested scheduling, including a past-time clamp.
  for (int i = 0; i < 50; ++i) {
    const TimeNs t = rng.UniformInt(0, 5000);
    sim.ScheduleAt(t, [&log, &sim, i]() {
      log.emplace_back(1000 + i, sim.now());
      sim.ScheduleAfter(3, [&log, &sim, i]() { log.emplace_back(2000 + i, sim.now()); });
      sim.ScheduleAt(sim.now() - 100, [&log, &sim, i]() {  // clamps to now
        log.emplace_back(3000 + i, sim.now());
      });
    });
  }
  // Cancel a subset before anything runs (every 7th).
  for (size_t i = 0; i < ids.size(); i += 7) {
    sim.Cancel(ids[i]);
  }
  sim.RunUntil(2500);
  // Mid-run cancels: a mix of already-run ids (no effect), still-pending
  // ids, and one index cancelled in both passes (i == 14).
  for (size_t i = 3; i < ids.size(); i += 11) {
    sim.Cancel(ids[i]);
  }
  sim.Run();
  return ScenarioResult{DigestLog(log), sim.executed(), sim.now(), log.size()};
}

TEST(DeterminismRegression, GoldenExecutionOrderSurvivesEngineSwap) {
  const ScenarioResult r = RunScenario();
  // Golden values from the pre-swap std::function engine.
  EXPECT_EQ(r.log_size, 496u);
  EXPECT_EQ(r.executed, 496u);
  EXPECT_EQ(r.final_now, 4999);
  EXPECT_EQ(r.digest, 9707556646098588992ull);
}

// The scenario itself must be reproducible run-to-run (no address-dependent
// ordering anywhere in the engine).
TEST(DeterminismRegression, ScenarioIsReproducible) {
  const ScenarioResult a = RunScenario();
  const ScenarioResult b = RunScenario();
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.executed, b.executed);
  EXPECT_EQ(a.final_now, b.final_now);
}

}  // namespace
}  // namespace pegasus::sim
