// Property-style tests: invariants swept over parameter spaces with
// TEST_P / INSTANTIATE_TEST_SUITE_P.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <numeric>

#include "src/atm/aal5.h"
#include "src/atm/crc32.h"
#include "src/atm/wire.h"
#include "src/devices/compression.h"
#include "src/devices/frame_source.h"
#include "src/nemesis/atropos.h"
#include "src/nemesis/kernel.h"
#include "src/nemesis/workloads.h"
#include "src/pfs/server.h"
#include "src/pfs/stripe.h"
#include "src/sim/event_queue.h"
#include "src/sim/random.h"

namespace pegasus {
namespace {

using sim::Milliseconds;
using sim::Seconds;

// --- AAL5: any SDU size round-trips ---

class Aal5SizeProperty : public ::testing::TestWithParam<size_t> {};

TEST_P(Aal5SizeProperty, RoundTripsAtAnySize) {
  const size_t size = GetParam();
  sim::Rng rng(size + 1);
  std::vector<uint8_t> sdu(size);
  for (auto& b : sdu) {
    b = static_cast<uint8_t>(rng.Next());
  }
  auto cells = atm::Aal5Segment(7, sdu);
  ASSERT_FALSE(cells.empty());
  // Exactly ceil((size + 8) / 48) cells.
  EXPECT_EQ(cells.size(), (size + 8 + 47) / 48);
  atm::Aal5Reassembler reasm;
  std::optional<std::vector<uint8_t>> out;
  for (const atm::Cell& c : cells) {
    out = reasm.Push(c);
  }
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, sdu);
}

INSTANTIATE_TEST_SUITE_P(Sizes, Aal5SizeProperty,
                         ::testing::Values(0, 1, 39, 40, 41, 47, 48, 49, 95, 96, 1000, 4096,
                                           65535));

// --- AAL5: a flipped bit anywhere is detected ---

class Aal5CorruptionProperty : public ::testing::TestWithParam<int> {};

TEST_P(Aal5CorruptionProperty, AnySingleBitFlipIsDetected) {
  const int flip_position = GetParam();
  std::vector<uint8_t> sdu(500);
  std::iota(sdu.begin(), sdu.end(), 0);
  auto cells = atm::Aal5Segment(7, sdu);
  const int cell_idx = flip_position / atm::kCellPayloadSize;
  const int byte_idx = flip_position % atm::kCellPayloadSize;
  ASSERT_LT(static_cast<size_t>(cell_idx), cells.size());
  cells[static_cast<size_t>(cell_idx)].payload[static_cast<size_t>(byte_idx)] ^= 0x40;

  atm::Aal5Reassembler reasm;
  std::optional<std::vector<uint8_t>> out;
  for (const atm::Cell& c : cells) {
    out = reasm.Push(c);
  }
  // Either rejected outright, or (if the flip hit pad/trailer-length bytes in
  // a way CRC catches) never equal to the original while accepted.
  if (out.has_value()) {
    EXPECT_NE(*out, sdu);
  } else {
    EXPECT_EQ(reasm.crc_errors() + reasm.length_errors(), 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(FlipPositions, Aal5CorruptionProperty,
                         ::testing::Values(0, 17, 48, 99, 200, 300, 433, 499, 505));

// --- CRC32: incremental == whole, for any split point ---

class CrcSplitProperty : public ::testing::TestWithParam<size_t> {};

TEST_P(CrcSplitProperty, SeedChainingMatchesWhole) {
  std::vector<uint8_t> data(1024);
  sim::Rng rng(99);
  for (auto& b : data) {
    b = static_cast<uint8_t>(rng.Next());
  }
  const size_t split = GetParam();
  const uint32_t whole = atm::Crc32(data.data(), data.size());
  const uint32_t part =
      atm::Crc32(data.data() + split, data.size() - split, atm::Crc32(data.data(), split));
  EXPECT_EQ(whole, part);
}

INSTANTIATE_TEST_SUITE_P(Splits, CrcSplitProperty,
                         ::testing::Values(0, 1, 7, 64, 512, 1000, 1023, 1024));

// --- Codec: round trip bounded error at any quality ---

class CodecQualityProperty : public ::testing::TestWithParam<int> {};

TEST_P(CodecQualityProperty, RoundTripWithinQualityBound) {
  const int quality = GetParam();
  dev::FrameSource source(64, 64, 0.2, 7);
  dev::Frame frame = source.Render(3);
  for (int ty = 0; ty < 64; ty += 16) {
    dev::Tile tile = frame.ExtractTile(ty, ty);
    auto compressed = dev::CompressTile(tile.data, quality);
    auto restored = dev::DecompressTile(compressed);
    ASSERT_TRUE(restored.has_value());
    ASSERT_EQ(restored->size(), static_cast<size_t>(dev::kTilePixels));
    double rmse = 0;
    for (int i = 0; i < dev::kTilePixels; ++i) {
      const double d = static_cast<double>((*restored)[static_cast<size_t>(i)]) -
                       static_cast<double>(tile.data[static_cast<size_t>(i)]);
      rmse += d * d;
    }
    rmse = std::sqrt(rmse / dev::kTilePixels);
    // Higher quality must bound error tighter; even q=10 stays sane.
    EXPECT_LT(rmse, quality >= 80 ? 11.0 : (quality >= 40 ? 17.0 : 40.0));
  }
}

INSTANTIATE_TEST_SUITE_P(Qualities, CodecQualityProperty,
                         ::testing::Values(10, 25, 40, 60, 80, 95, 100));

// --- Wire format: random message structures round-trip ---

class WireProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WireProperty, RandomMessagesRoundTrip) {
  sim::Rng rng(GetParam());
  atm::WireWriter w;
  struct Op {
    int kind;
    uint64_t value;
    std::string str;
  };
  std::vector<Op> ops;
  const int n = static_cast<int>(rng.UniformInt(1, 30));
  for (int i = 0; i < n; ++i) {
    Op op;
    op.kind = static_cast<int>(rng.UniformInt(0, 4));
    op.value = rng.Next();
    if (op.kind == 4) {
      const auto len = static_cast<size_t>(rng.UniformInt(0, 100));
      for (size_t j = 0; j < len; ++j) {
        op.str.push_back(static_cast<char>('a' + rng.UniformInt(0, 25)));
      }
    }
    ops.push_back(op);
    switch (op.kind) {
      case 0:
        w.PutU8(static_cast<uint8_t>(op.value));
        break;
      case 1:
        w.PutU16(static_cast<uint16_t>(op.value));
        break;
      case 2:
        w.PutU32(static_cast<uint32_t>(op.value));
        break;
      case 3:
        w.PutU64(op.value);
        break;
      case 4:
        w.PutString(op.str);
        break;
    }
  }
  atm::WireReader r(w.data());
  for (const Op& op : ops) {
    switch (op.kind) {
      case 0:
        EXPECT_EQ(r.GetU8(), static_cast<uint8_t>(op.value));
        break;
      case 1:
        EXPECT_EQ(r.GetU16(), static_cast<uint16_t>(op.value));
        break;
      case 2:
        EXPECT_EQ(r.GetU32(), static_cast<uint32_t>(op.value));
        break;
      case 3:
        EXPECT_EQ(r.GetU64(), op.value);
        break;
      case 4:
        EXPECT_EQ(r.GetString(), op.str);
        break;
    }
  }
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.AtEnd());
}

INSTANTIATE_TEST_SUITE_P(Seeds, WireProperty, ::testing::Range(uint64_t{1}, uint64_t{13}));

// --- Simulator: events always execute in nondecreasing time order ---

class SimOrderProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SimOrderProperty, RandomSchedulesExecuteInOrder) {
  sim::Simulator sim;
  sim::Rng rng(GetParam());
  std::vector<sim::TimeNs> executed;
  std::vector<sim::EventId> ids;
  for (int i = 0; i < 500; ++i) {
    const sim::TimeNs t = rng.UniformInt(0, 10'000);
    ids.push_back(sim.ScheduleAt(t, [&executed, &sim]() { executed.push_back(sim.now()); }));
  }
  // Cancel a random subset.
  int cancelled = 0;
  for (size_t i = 0; i < ids.size(); i += 3) {
    cancelled += sim.Cancel(ids[i]) ? 1 : 0;
  }
  sim.Run();
  EXPECT_EQ(executed.size(), 500u - static_cast<size_t>(cancelled));
  EXPECT_TRUE(std::is_sorted(executed.begin(), executed.end()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimOrderProperty, ::testing::Range(uint64_t{1}, uint64_t{9}));

// --- Stripe: reconstruction works whichever single disk dies ---

class StripeFailureProperty : public ::testing::TestWithParam<int> {};

TEST_P(StripeFailureProperty, AnySingleDiskIsRecoverable) {
  const int victim = GetParam();
  sim::Simulator sim;
  pfs::DiskGeometry geom;
  geom.capacity_bytes = 16 << 20;
  pfs::StripeStore store(&sim, 4, 64 << 10, geom);
  std::vector<uint8_t> data(64 << 10);
  sim::Rng rng(5);
  for (auto& b : data) {
    b = static_cast<uint8_t>(rng.Next());
  }
  store.WriteSegment(3, data, [](bool) {});
  sim.Run();
  store.disk(victim)->Fail();  // includes the parity disk (index 4)
  std::vector<uint8_t> got;
  bool ok = false;
  store.ReadSegment(3, [&](bool k, std::vector<uint8_t> d) {
    ok = k;
    got = std::move(d);
  });
  sim.Run();
  ASSERT_TRUE(ok);
  EXPECT_EQ(got, data);
}

INSTANTIATE_TEST_SUITE_P(Victims, StripeFailureProperty, ::testing::Range(0, 5));

// --- Atropos: contracts delivered exactly, over a (slice, period) sweep ---

struct Contract {
  int64_t slice_ms;
  int64_t period_ms;
};

class AtroposContractProperty : public ::testing::TestWithParam<Contract> {};

TEST_P(AtroposContractProperty, GuaranteeDeliveredWithinTolerance) {
  const Contract contract = GetParam();
  sim::Simulator sim;
  nemesis::Kernel kernel(&sim, std::make_unique<nemesis::AtroposScheduler>(1.0),
                         nemesis::KernelCosts::Zero());
  nemesis::BatchDomain subject("subject",
                               nemesis::QosParams::Guaranteed(Milliseconds(contract.slice_ms),
                                                              Milliseconds(contract.period_ms),
                                                              false));
  nemesis::BatchDomain hog1("hog1", nemesis::QosParams::BestEffort());
  nemesis::BatchDomain hog2("hog2", nemesis::QosParams::BestEffort());
  ASSERT_TRUE(kernel.AddDomain(&subject));
  ASSERT_TRUE(kernel.AddDomain(&hog1));
  ASSERT_TRUE(kernel.AddDomain(&hog2));
  kernel.Start();
  sim.RunUntil(Seconds(10));
  const double expected = 10e9 * static_cast<double>(contract.slice_ms) /
                          static_cast<double>(contract.period_ms);
  EXPECT_NEAR(static_cast<double>(subject.cpu_guaranteed()), expected, expected * 0.02);
}

INSTANTIATE_TEST_SUITE_P(Contracts, AtroposContractProperty,
                         ::testing::Values(Contract{1, 10}, Contract{5, 10}, Contract{9, 10},
                                           Contract{10, 100}, Contract{33, 100},
                                           Contract{16, 40}, Contract{2, 8},
                                           Contract{90, 100}),
                         [](const ::testing::TestParamInfo<Contract>& param_info) {
                           return std::to_string(param_info.param.slice_ms) + "per" +
                                  std::to_string(param_info.param.period_ms);
                         });

// --- Atropos: N equal domains share the machine equally ---

class FairShareProperty : public ::testing::TestWithParam<int> {};

TEST_P(FairShareProperty, EqualContractsGetEqualService) {
  const int n = GetParam();
  sim::Simulator sim;
  nemesis::Kernel kernel(&sim, std::make_unique<nemesis::AtroposScheduler>(1.0),
                         nemesis::KernelCosts::Zero());
  std::vector<std::unique_ptr<nemesis::BatchDomain>> domains;
  for (int i = 0; i < n; ++i) {
    domains.push_back(std::make_unique<nemesis::BatchDomain>(
        "d" + std::to_string(i),
        nemesis::QosParams::Guaranteed(Milliseconds(100 / n), Milliseconds(100), true)));
    ASSERT_TRUE(kernel.AddDomain(domains.back().get()));
  }
  kernel.Start();
  sim.RunUntil(Seconds(10));
  for (auto& d : domains) {
    EXPECT_NEAR(static_cast<double>(d->cpu_total()), 10e9 / n, 10e9 / n * 0.05) << d->name();
  }
}

INSTANTIATE_TEST_SUITE_P(Counts, FairShareProperty, ::testing::Values(1, 2, 4, 5, 10));

// --- PFS: random write/read sequences match a reference model ---

class PfsRandomOpsProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PfsRandomOpsProperty, MatchesReferenceModel) {
  sim::Simulator sim;
  pfs::PfsConfig cfg;
  cfg.segment_size = 64 << 10;
  cfg.block_size = 8 << 10;
  cfg.geometry.capacity_bytes = 64 << 20;
  cfg.write_back_delay = Seconds(5);
  pfs::PegasusFileServer server(&sim, cfg);
  sim::Rng rng(GetParam());

  const pfs::FileId f = server.CreateFile(pfs::FileType::kNormal);
  std::vector<uint8_t> reference(96 << 10, 0);  // the file's true contents
  for (int op = 0; op < 40; ++op) {
    const int64_t offset = rng.UniformInt(0, (80 << 10));
    const int64_t len = rng.UniformInt(1, 16 << 10);
    std::vector<uint8_t> data(static_cast<size_t>(len));
    for (auto& b : data) {
      b = static_cast<uint8_t>(rng.Next());
    }
    std::copy(data.begin(), data.end(), reference.begin() + offset);
    bool done = false;
    server.Write(f, offset, data, [&](bool ok) {
      EXPECT_TRUE(ok);
      done = true;
    });
    sim.RunUntilPredicate([&]() { return done; });
    // Occasionally force everything to disk mid-sequence.
    if (op % 13 == 12) {
      bool synced = false;
      server.Sync([&]() { synced = true; });
      sim.RunUntilPredicate([&]() { return synced; });
    }
  }
  bool synced = false;
  server.Sync([&]() { synced = true; });
  sim.RunUntilPredicate([&]() { return synced; });

  // Read back in random chunks and compare with the reference.
  for (int i = 0; i < 20; ++i) {
    const int64_t offset = rng.UniformInt(0, (90 << 10));
    const int64_t len = rng.UniformInt(1, 8 << 10);
    bool done = false;
    server.Read(f, offset, len, [&](bool ok, std::vector<uint8_t> got) {
      ASSERT_TRUE(ok);
      const std::vector<uint8_t> want(reference.begin() + offset,
                                      reference.begin() + offset + len);
      EXPECT_EQ(got, want) << "offset " << offset << " len " << len;
      done = true;
    });
    sim.RunUntilPredicate([&]() { return done; });
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PfsRandomOpsProperty, ::testing::Range(uint64_t{1}, uint64_t{9}));

// --- Cleaner: random delete patterns never lose live data ---

class CleanerProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CleanerProperty, LiveDataSurvivesCleaning) {
  sim::Simulator sim;
  pfs::PfsConfig cfg;
  cfg.segment_size = 64 << 10;
  cfg.block_size = 8 << 10;
  cfg.geometry.capacity_bytes = 64 << 20;
  cfg.write_back_delay = 0;
  pfs::PegasusFileServer server(&sim, cfg);
  sim::Rng rng(GetParam());

  struct FileState {
    pfs::FileId id;
    uint8_t fill;
    int64_t blocks;
    bool alive = true;
  };
  std::vector<FileState> files;
  for (int i = 0; i < 12; ++i) {
    FileState fs;
    fs.id = server.CreateFile(pfs::FileType::kNormal);
    fs.fill = static_cast<uint8_t>(rng.UniformInt(1, 255));
    fs.blocks = rng.UniformInt(1, 6);
    bool done = false;
    server.Write(fs.id, 0,
                 std::vector<uint8_t>(static_cast<size_t>(fs.blocks) * 8192, fs.fill),
                 [&](bool) { done = true; });
    sim.RunUntilPredicate([&]() { return done; });
    files.push_back(fs);
  }
  bool synced = false;
  server.Sync([&]() { synced = true; });
  sim.RunUntilPredicate([&]() { return synced; });

  // Delete a random subset, clean, repeat.
  for (int round = 0; round < 2; ++round) {
    for (auto& fs : files) {
      if (fs.alive && rng.Bernoulli(0.4)) {
        EXPECT_TRUE(server.Delete(fs.id));
        fs.alive = false;
      }
    }
    bool cleaned = false;
    server.Clean([&](pfs::CleanStats) { cleaned = true; });
    sim.RunUntilPredicate([&]() { return cleaned; });
  }
  EXPECT_EQ(server.garbage_entries(), 0);

  // Every surviving file reads back exactly.
  for (const auto& fs : files) {
    if (!fs.alive) {
      continue;
    }
    bool done = false;
    server.Read(fs.id, 0, fs.blocks * 8192, [&](bool ok, std::vector<uint8_t> got) {
      ASSERT_TRUE(ok);
      EXPECT_EQ(got, std::vector<uint8_t>(static_cast<size_t>(fs.blocks) * 8192, fs.fill));
      done = true;
    });
    sim.RunUntilPredicate([&]() { return done; });
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CleanerProperty, ::testing::Range(uint64_t{1}, uint64_t{11}));

}  // namespace
}  // namespace pegasus
