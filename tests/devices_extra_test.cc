// Additional device and transport coverage: camera taps, per-VC pacing,
// audio underruns, screen-edge clipping, transport dispatch.
#include <gtest/gtest.h>

#include "src/atm/network.h"
#include "src/atm/transport.h"
#include "src/devices/audio.h"
#include "src/devices/camera.h"
#include "src/devices/display.h"
#include "src/devices/frame_source.h"
#include "src/devices/processing.h"

namespace pegasus::dev {
namespace {

using sim::Milliseconds;
using sim::Seconds;

class ExtraFixture : public ::testing::Test {
 protected:
  ExtraFixture() : net_(&sim_) {
    sw_ = net_.AddSwitch("sw", 8);
    for (int i = 0; i < 6; ++i) {
      eps_.push_back(net_.AddEndpoint("ep" + std::to_string(i), sw_, i, 155'000'000));
    }
  }

  sim::Simulator sim_;
  atm::Network net_;
  atm::Switch* sw_;
  std::vector<atm::Endpoint*> eps_;
};

TEST_F(ExtraFixture, CameraTapFeedsTwoSinks) {
  // Point-to-multipoint: the same camera drives a display and a second sink
  // (e.g. a recording VC) simultaneously.
  auto vc1 = net_.OpenVc(eps_[0], eps_[1]);
  auto vc2 = net_.OpenVc(eps_[0], eps_[2]);
  ASSERT_TRUE(vc1.has_value());
  ASSERT_TRUE(vc2.has_value());
  AtmCamera::Config cfg;
  cfg.width = 32;
  cfg.height = 32;
  AtmCamera camera(&sim_, eps_[0], cfg);
  AtmDisplay display1(&sim_, eps_[1], 100, 100);
  AtmDisplay display2(&sim_, eps_[2], 100, 100);
  WindowManager wm1(&display1);
  WindowManager wm2(&display2);
  wm1.CreateWindow(vc1->destination_vci, 0, 0, 32, 32);
  wm2.CreateWindow(vc2->destination_vci, 0, 0, 32, 32);
  camera.AddOutput(vc2->source_vci);
  camera.Start(vc1->source_vci);
  sim_.RunUntil(Milliseconds(500));
  EXPECT_GT(display1.tiles_blitted(), 100);
  EXPECT_EQ(display1.tiles_blitted(), display2.tiles_blitted());
  // Same pixels on both screens.
  EXPECT_EQ(display1.PixelAt(10, 10), display2.PixelAt(10, 10));
}

TEST_F(ExtraFixture, PerVcPacingIsIndependent) {
  // Two paced flows from one endpoint: each respects its own rate; a slow
  // pace on one VC must not throttle the other.
  auto vc1 = net_.OpenVc(eps_[0], eps_[1]);
  auto vc2 = net_.OpenVc(eps_[0], eps_[2]);
  atm::MessageTransport rx1(eps_[1]);
  atm::MessageTransport rx2(eps_[2]);
  sim::TimeNs done1 = 0;
  sim::TimeNs done2 = 0;
  rx1.SetDefaultHandler([&](atm::Vci, std::vector<uint8_t>, sim::TimeNs) {
    done1 = sim_.now();
  });
  rx2.SetDefaultHandler([&](atm::Vci, std::vector<uint8_t>, sim::TimeNs) {
    done2 = sim_.now();
  });
  const std::vector<uint8_t> frame(4800);  // ~101 cells
  eps_[0]->SendFrame(vc1->source_vci, frame, 1'000'000);    // 1 Mb/s: slow
  eps_[0]->SendFrame(vc2->source_vci, frame, 50'000'000);   // 50 Mb/s: fast
  sim_.Run();
  // The fast flow finishes far sooner than the slow one.
  EXPECT_LT(done2, done1 / 10);
  EXPECT_GT(done1, Milliseconds(40));  // ~101 cells * 424us
}

TEST_F(ExtraFixture, AudioGapCausesCountedUnderruns) {
  auto vc = net_.OpenVc(eps_[0], eps_[1]);
  AudioCapture capture(&sim_, eps_[0], 44'100);
  AudioPlayback playback(&sim_, eps_[1], 44'100, Milliseconds(5));
  capture.Start(vc->source_vci);
  sim_.RunUntil(Milliseconds(200));
  capture.Stop();  // a network dropout
  sim_.RunUntil(Milliseconds(400));
  const int64_t underruns_during_gap = playback.underruns();
  EXPECT_GT(underruns_during_gap, 50);  // the DAC kept ticking with no data
  capture.Start(vc->source_vci);  // stream resumes
  sim_.RunUntil(Milliseconds(600));
  EXPECT_GT(playback.cells_played(), 300);
}

TEST_F(ExtraFixture, WindowsClipAtScreenEdges) {
  auto vc = net_.OpenVc(eps_[0], eps_[1]);
  AtmCamera::Config cfg;
  cfg.width = 32;
  cfg.height = 32;
  AtmCamera camera(&sim_, eps_[0], cfg);
  AtmDisplay display(&sim_, eps_[1], 100, 100);
  WindowManager wm(&display);
  // Mostly off the right-bottom corner.
  wm.CreateWindow(vc->destination_vci, 90, 90, 32, 32);
  camera.Start(vc->source_vci);
  sim_.RunUntil(Milliseconds(200));
  // Visible sliver renders; nothing wraps or crashes.
  EXPECT_NE(display.PixelAt(95, 95), 0);
  EXPECT_GT(display.pixels_drawn(), 0);
  // Only the on-screen 10x10 corner is owned.
  EXPECT_EQ(display.OwnerAt(99, 99), vc->destination_vci);
  EXPECT_EQ(display.OwnerAt(89, 89), atm::kVciUnassigned);
}

TEST(TransformTest, StockTransformsBehave) {
  std::vector<uint8_t> flat(kTilePixels, 100);
  auto inverted = flat;
  InvertTransform()(inverted);
  EXPECT_EQ(inverted[0], 155);
  auto bright = flat;
  BrightnessTransform(200)(bright);
  EXPECT_EQ(bright[0], 255);  // clamps
  BrightnessTransform(-300)(bright);
  EXPECT_EQ(bright[0], 0);
  // Edges of a flat tile are zero; a step edge is not.
  auto edges = flat;
  EdgeTransform()(edges);
  EXPECT_EQ(edges[3 * kTileDim + 3], 0);
  std::vector<uint8_t> step(kTilePixels, 0);
  for (int y = 0; y < kTileDim; ++y) {
    for (int x = 4; x < kTileDim; ++x) {
      step[static_cast<size_t>(y) * kTileDim + x] = 200;
    }
  }
  EdgeTransform()(step);
  EXPECT_GT(step[3 * kTileDim + 4], 50);
  // Blur preserves a flat tile exactly.
  auto blurred = flat;
  BlurTransform()(blurred);
  EXPECT_EQ(blurred, flat);
}

TEST_F(ExtraFixture, ProcessorFiltersStreamInTransit) {
  // One camera feeds two windows: a direct (raw) path and a path detouring
  // through an inverting TileProcessor. After the stream drains, every
  // processed pixel must be the exact inverse of its raw counterpart, and
  // the capture timestamps must have survived the compute hop.
  auto raw_vc = net_.OpenVc(eps_[0], eps_[1]);
  auto leg1 = net_.OpenVc(eps_[0], eps_[3]);
  auto leg2 = net_.OpenVc(eps_[3], eps_[1]);
  ASSERT_TRUE(raw_vc.has_value());
  ASSERT_TRUE(leg1.has_value());
  ASSERT_TRUE(leg2.has_value());
  AtmCamera::Config cfg;
  cfg.width = 32;
  cfg.height = 32;
  cfg.content_noise = 0.0;
  AtmCamera camera(&sim_, eps_[0], cfg);
  atm::MessageTransport compute_transport(eps_[3]);
  TileProcessor::Config stage;
  stage.transform = InvertTransform();
  TileProcessor processor(&sim_, &compute_transport, leg1->destination_vci, leg2->source_vci,
                          stage);
  AtmDisplay display(&sim_, eps_[1], 100, 100);
  WindowManager wm(&display);
  wm.CreateWindow(raw_vc->destination_vci, 0, 0, 32, 32);
  wm.CreateWindow(leg2->destination_vci, 50, 0, 32, 32);
  camera.AddOutput(leg1->source_vci);
  camera.Start(raw_vc->source_vci);
  sim_.RunUntil(Milliseconds(400));
  camera.Stop();
  sim_.Run();  // drain both paths completely

  EXPECT_GT(processor.tiles_processed(), 100);
  EXPECT_EQ(processor.decode_errors(), 0u);
  for (int y = 0; y < 32; y += 5) {
    for (int x = 0; x < 32; x += 5) {
      EXPECT_EQ(display.PixelAt(50 + x, y), 255 - display.PixelAt(x, y))
          << "pixel (" << x << "," << y << ")";
    }
  }
  // Timestamps passed through: end-to-end latency includes the compute hop
  // but still sits far below a frame time.
  EXPECT_GT(display.tile_latency().Quantile(0.5), 0.0);
  EXPECT_LT(display.tile_latency().Quantile(0.5), 5e6);
}

TEST_F(ExtraFixture, TransportDispatchPrecedence) {
  auto vc1 = net_.OpenVc(eps_[0], eps_[1]);
  auto vc2 = net_.OpenVc(eps_[2], eps_[1]);
  atm::MessageTransport rx(eps_[1]);
  int specific = 0;
  int fallback = 0;
  rx.SetHandler(vc1->destination_vci,
                [&](atm::Vci, std::vector<uint8_t>, sim::TimeNs) { ++specific; });
  rx.SetDefaultHandler([&](atm::Vci, std::vector<uint8_t>, sim::TimeNs) { ++fallback; });
  atm::MessageTransport tx0(eps_[0]);
  atm::MessageTransport tx2(eps_[2]);
  tx0.Send(vc1->source_vci, {1});
  tx2.Send(vc2->source_vci, {2});
  sim_.Run();
  EXPECT_EQ(specific, 1);
  EXPECT_EQ(fallback, 1);
  // After clearing, the specific VCI falls back too.
  rx.ClearHandler(vc1->destination_vci);
  tx0.Send(vc1->source_vci, {3});
  sim_.Run();
  EXPECT_EQ(specific, 1);
  EXPECT_EQ(fallback, 2);
}

}  // namespace
}  // namespace pegasus::dev
