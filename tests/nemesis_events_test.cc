// Tests for events, IPC, activations, KPS and user-level threads (§3.2–3.5).
#include <gtest/gtest.h>

#include <memory>

#include "src/nemesis/atropos.h"
#include "src/nemesis/baseline_schedulers.h"
#include "src/nemesis/kernel.h"
#include "src/nemesis/threads.h"
#include "src/nemesis/workloads.h"
#include "src/sim/event_queue.h"

namespace pegasus::nemesis {
namespace {

using sim::Microseconds;
using sim::Milliseconds;
using sim::Seconds;

std::unique_ptr<Kernel> MakeKernel(sim::Simulator* sim, KernelCosts costs = KernelCosts::Zero()) {
  return std::make_unique<Kernel>(sim, std::make_unique<AtroposScheduler>(1.0), costs);
}

TEST(EventTest, EventsAreCountedNotValued) {
  sim::Simulator sim;
  auto kernel = MakeKernel(&sim);
  BatchDomain src("src", QosParams::BestEffort());
  ServerDomain dst("dst", QosParams::BestEffort(), Microseconds(10));
  ASSERT_TRUE(kernel->AddDomain(&src));
  ASSERT_TRUE(kernel->AddDomain(&dst));
  EventChannel* ch = kernel->CreateChannel(&src, &dst, /*synchronous=*/false);
  int delivered = 0;
  ch->set_closure([&](sim::TimeNs, sim::TimeNs) { ++delivered; });
  kernel->Start();
  kernel->SendEvent(ch);
  kernel->SendEvent(ch);
  sim.RunUntil(Milliseconds(10));
  EXPECT_EQ(ch->sent(), 2u);
  EXPECT_EQ(ch->delivered(), 2u);
  EXPECT_EQ(delivered, 2);
}

TEST(EventTest, PendingEventsDeliveredAtActivation) {
  sim::Simulator sim;
  auto kernel = MakeKernel(&sim);
  // A guaranteed hog occupies the CPU; the destination only gets activated
  // when the hog's slice allows, so delivery latency > 0 but bounded by the
  // scheduler, not by the sender.
  BatchDomain hog("hog", QosParams::Guaranteed(Milliseconds(50), Milliseconds(100)));
  ServerDomain dst("dst", QosParams::Guaranteed(Milliseconds(10), Milliseconds(100)),
                   Microseconds(10));
  ASSERT_TRUE(kernel->AddDomain(&hog));
  ASSERT_TRUE(kernel->AddDomain(&dst));
  EventChannel* ch = kernel->CreateChannel(nullptr, &dst, false);
  kernel->Start();
  sim.RunUntil(Milliseconds(1));
  kernel->RaiseInterrupt(ch);
  sim.RunUntil(Milliseconds(200));
  EXPECT_EQ(ch->delivered(), 1u);
  EXPECT_EQ(dst.dib().activation_count, 1u);
}

TEST(IpcTest, RoundTripCompletes) {
  sim::Simulator sim;
  auto kernel = MakeKernel(&sim);
  ClientDomain client(&sim, "client", QosParams::Guaranteed(Milliseconds(10), Milliseconds(50)),
                      Microseconds(50), /*total_calls=*/100);
  ServerDomain server("server", QosParams::Guaranteed(Milliseconds(10), Milliseconds(50)),
                      Microseconds(100));
  ASSERT_TRUE(kernel->AddDomain(&client));
  ASSERT_TRUE(kernel->AddDomain(&server));
  IpcChannel* ch = kernel->CreateIpcChannel(&client, &server, 16, 64, /*synchronous=*/true);
  client.BindChannel(ch);
  server.BindChannel(ch);
  kernel->Start();
  sim.RunUntil(Seconds(5));
  EXPECT_EQ(client.calls_completed(), 100);
  EXPECT_EQ(server.requests_served(), 100);
  EXPECT_GT(client.round_trip().mean(), 0.0);
}

TEST(IpcTest, SynchronousCallsAreFasterThanAsynchronous) {
  // §3.4: "lowest latency for a client/server interaction will be achieved
  // by the client and server implementing the synchronous form".
  auto run = [](bool synchronous) {
    sim::Simulator sim;
    auto kernel = MakeKernel(&sim);
    // The client has 500us of post-send bookkeeping and the earlier EDF
    // deadline: with asynchronous signalling it finishes the bookkeeping
    // before the server runs; with synchronous signalling the send donates
    // the processor to the server at once.
    ClientDomain client(&sim, "client", QosParams::Guaranteed(Milliseconds(10), Milliseconds(50)),
                        Microseconds(50), 200, /*think_time=*/0,
                        /*post_send_work=*/Microseconds(500));
    ServerDomain server("server", QosParams::Guaranteed(Milliseconds(20), Milliseconds(100)),
                        Microseconds(100));
    BatchDomain hog("hog", QosParams::BestEffort());
    EXPECT_TRUE(kernel->AddDomain(&client));
    EXPECT_TRUE(kernel->AddDomain(&server));
    EXPECT_TRUE(kernel->AddDomain(&hog));
    IpcChannel* ch = kernel->CreateIpcChannel(&client, &server, 16, 64, synchronous);
    client.BindChannel(ch);
    server.BindChannel(ch);
    kernel->Start();
    sim.RunUntil(Seconds(10));
    EXPECT_EQ(client.calls_completed(), 200);
    return client.round_trip().mean();
  };
  const double sync_rtt = run(true);
  const double async_rtt = run(false);
  // The asynchronous path pays the client's bookkeeping before the server
  // gets the CPU; the synchronous path does not.
  EXPECT_LT(sync_rtt + 4e5, async_rtt);
}

TEST(IpcTest, QueueFullRejectsSend) {
  sim::Simulator sim;
  auto kernel = MakeKernel(&sim);
  BatchDomain client("client", QosParams::BestEffort());
  BatchDomain server("server", QosParams::BestEffort());
  ASSERT_TRUE(kernel->AddDomain(&client));
  ASSERT_TRUE(kernel->AddDomain(&server));
  IpcChannel* ch = kernel->CreateIpcChannel(&client, &server, 2, 16, false);
  EXPECT_TRUE(ch->SendRequest({1}));
  EXPECT_TRUE(ch->SendRequest({2}));
  EXPECT_FALSE(ch->SendRequest({3}));  // ring full
  EXPECT_TRUE(ch->ReceiveRequest().has_value());
  EXPECT_TRUE(ch->SendRequest({3}));  // slot freed
}

TEST(IpcTest, OversizeMessageRejected) {
  sim::Simulator sim;
  auto kernel = MakeKernel(&sim);
  BatchDomain client("client", QosParams::BestEffort());
  BatchDomain server("server", QosParams::BestEffort());
  ASSERT_TRUE(kernel->AddDomain(&client));
  ASSERT_TRUE(kernel->AddDomain(&server));
  IpcChannel* ch = kernel->CreateIpcChannel(&client, &server, 2, 8, false);
  EXPECT_FALSE(ch->SendRequest(std::vector<uint8_t>(9)));
  EXPECT_TRUE(ch->SendRequest(std::vector<uint8_t>(8)));
}

TEST(IpcTest, MessagesTransitSharedMemoryIntact) {
  sim::Simulator sim;
  auto kernel = MakeKernel(&sim);
  BatchDomain client("client", QosParams::BestEffort());
  BatchDomain server("server", QosParams::BestEffort());
  ASSERT_TRUE(kernel->AddDomain(&client));
  ASSERT_TRUE(kernel->AddDomain(&server));
  IpcChannel* ch = kernel->CreateIpcChannel(&client, &server, 4, 64, false);
  std::vector<uint8_t> msg{0xDE, 0xAD, 0xBE, 0xEF};
  ASSERT_TRUE(ch->SendRequest(msg));
  auto got = ch->ReceiveRequest();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, msg);
  // And no protection faults occurred: rights were set up correctly.
  EXPECT_EQ(client.pdom().faults(), 0u);
  EXPECT_EQ(server.pdom().faults(), 0u);
}

TEST(ActivationTest, ActivationCountsAndUpcalls) {
  sim::Simulator sim;
  auto kernel = MakeKernel(&sim);
  PeriodicDomain media(&sim, "media", QosParams::Guaranteed(Milliseconds(10), Milliseconds(40)),
                       Milliseconds(5), Milliseconds(40));
  BatchDomain hog("hog", QosParams::BestEffort());
  ASSERT_TRUE(kernel->AddDomain(&media));
  ASSERT_TRUE(kernel->AddDomain(&hog));
  kernel->Start();
  sim.RunUntil(Seconds(1));
  // The media domain was activated roughly once per period (each job release
  // follows an idle gap, so the CPU had been given away in between).
  EXPECT_GE(media.dib().activation_count, 20u);
  EXPECT_GT(kernel->context_switches(), 40u);
}

TEST(KpsTest, InterruptsDeferredDuringPrivilegedSection) {
  sim::Simulator sim;
  auto kernel = MakeKernel(&sim);
  // A monolithic driver whose entire 5ms item runs privileged.
  DriverDomain drv("drv", QosParams::Guaranteed(Milliseconds(50), Milliseconds(100)),
                   DriverDomain::Mode::kMonolithic, Milliseconds(4), Milliseconds(1));
  ServerDomain other("other", QosParams::BestEffort(), Microseconds(1));
  ASSERT_TRUE(kernel->AddDomain(&drv));
  ASSERT_TRUE(kernel->AddDomain(&other));
  EventChannel* work = kernel->CreateChannel(nullptr, &drv, false);
  drv.BindInterruptChannel(work);
  EventChannel* ping = kernel->CreateChannel(nullptr, &other, false);
  kernel->Start();
  // Give the driver an item, then raise an unrelated interrupt mid-item.
  kernel->RaiseInterrupt(work);
  sim.RunUntil(Milliseconds(2));  // inside the privileged item
  kernel->RaiseInterrupt(ping);
  sim.RunUntil(Milliseconds(100));
  ASSERT_EQ(kernel->interrupt_latency().count(), 2);
  // The second interrupt waited for the privileged section to end: ~3ms.
  EXPECT_GT(kernel->interrupt_latency().max(), 2.5e6);
}

TEST(KpsTest, ShortSectionsKeepInterruptLatencyLow) {
  sim::Simulator sim;
  auto kernel = MakeKernel(&sim);
  DriverDomain drv("drv", QosParams::Guaranteed(Milliseconds(50), Milliseconds(100)),
                   DriverDomain::Mode::kKps, Milliseconds(4), Microseconds(100));
  ServerDomain other("other", QosParams::BestEffort(), Microseconds(1));
  ASSERT_TRUE(kernel->AddDomain(&drv));
  ASSERT_TRUE(kernel->AddDomain(&other));
  EventChannel* work = kernel->CreateChannel(nullptr, &drv, false);
  drv.BindInterruptChannel(work);
  EventChannel* ping = kernel->CreateChannel(nullptr, &other, false);
  kernel->Start();
  kernel->RaiseInterrupt(work);
  sim.RunUntil(Milliseconds(2));  // inside the *unprivileged* part now
  kernel->RaiseInterrupt(ping);
  sim.RunUntil(Milliseconds(100));
  // Delivered immediately: the bulk of the item is preemptible.
  EXPECT_LT(kernel->interrupt_latency().max(), 1e5);
  EXPECT_EQ(drv.items_done(), 1);
}

TEST(DemuxTest, AsyncDemuxDrainsQueueInOneActivation) {
  sim::Simulator sim;
  auto kernel = MakeKernel(&sim);
  DemuxDomain demux("demux", QosParams::Guaranteed(Milliseconds(20), Milliseconds(100)),
                    Microseconds(20));
  ServerDomain client("client", QosParams::BestEffort(), Microseconds(5));
  ASSERT_TRUE(kernel->AddDomain(&demux));
  ASSERT_TRUE(kernel->AddDomain(&client));
  EventChannel* packets = kernel->CreateChannel(nullptr, &demux, false);
  demux.BindPacketChannel(packets);
  demux.AddClientChannel(kernel->CreateChannel(&demux, &client, /*synchronous=*/false));
  kernel->Start();
  for (int i = 0; i < 50; ++i) {
    kernel->RaiseInterrupt(packets);
  }
  sim.RunUntil(Seconds(1));
  EXPECT_EQ(demux.packets_processed(), 50);
  // Async signalling: the demux never yielded between packets, so it needed
  // very few activations to drain the burst.
  EXPECT_LE(demux.dib().activation_count, 3u);
}

TEST(ActivationTest, DisabledActivationsSuppressUpcalls) {
  // §3.2: activations can be masked; events then pend in the DIB without
  // upcalls until re-enabled (a critical-section mechanism for the ULS).
  sim::Simulator sim;
  auto kernel = MakeKernel(&sim);
  ServerDomain dst("dst", QosParams::BestEffort(), Microseconds(10));
  ASSERT_TRUE(kernel->AddDomain(&dst));
  dst.dib().activations_enabled = false;
  EventChannel* ch = kernel->CreateChannel(nullptr, &dst, false);
  kernel->Start();
  kernel->RaiseInterrupt(ch);
  sim.RunUntil(Milliseconds(50));
  // The event pends but is never delivered.
  EXPECT_EQ(ch->delivered(), 0u);
  EXPECT_EQ(dst.dib().pending_events.size(), 1u);
  // Re-enable: the next scheduling pass delivers it.
  dst.dib().activations_enabled = true;
  kernel->NotifyWork(&dst);
  sim.RunUntil(Milliseconds(100));
  EXPECT_EQ(ch->delivered(), 1u);
}

TEST(KernelTest, RemoveDomainLeavesCleanState) {
  sim::Simulator sim;
  auto kernel = MakeKernel(&sim);
  BatchDomain a("a", QosParams::Guaranteed(Milliseconds(10), Milliseconds(100)));
  BatchDomain b("b", QosParams::BestEffort());
  ASSERT_TRUE(kernel->AddDomain(&a));
  ASSERT_TRUE(kernel->AddDomain(&b));
  kernel->Start();
  sim.RunUntil(Milliseconds(500));
  EXPECT_GT(a.cpu_total(), 0);
  // Remove `a` at the first instant it is off the CPU.
  bool removed = false;
  sim.RunUntilPredicate([&]() {
    if (!removed && kernel->running() != &a) {
      kernel->RemoveDomain(&a);
      removed = true;
    }
    return removed;
  });
  const auto a_cpu = a.cpu_total();
  sim.RunUntil(sim.now() + Milliseconds(500));
  // The removed domain accrues nothing further; b absorbs the machine.
  EXPECT_EQ(a.cpu_total(), a_cpu);
  EXPECT_GT(b.cpu_total(), 0);
}

TEST(KernelTest, GuaranteesHoldWithRealisticKernelCosts) {
  // With non-zero context-switch/activation costs and admission headroom,
  // the media domain still misses nothing (costs are charged to its slice).
  sim::Simulator sim;
  auto kernel = std::make_unique<Kernel>(&sim, std::make_unique<AtroposScheduler>(0.95),
                                         KernelCosts{});
  PeriodicDomain media(&sim, "media", QosParams::Guaranteed(Milliseconds(10), Milliseconds(40)),
                       Milliseconds(8), Milliseconds(40));
  BatchDomain hog("hog", QosParams::BestEffort());
  ASSERT_TRUE(kernel->AddDomain(&media));
  ASSERT_TRUE(kernel->AddDomain(&hog));
  kernel->Start();
  sim.RunUntil(Seconds(10));
  EXPECT_GT(media.jobs_completed(), 240);
  EXPECT_EQ(media.deadline_misses(), 0);
}

TEST(UlsTest, BlockedThreadDoesNotStallSiblings) {
  sim::Simulator sim;
  auto kernel = MakeKernel(&sim);
  // 4 threads, 1ms compute + 3ms I/O each: with a user-level scheduler the
  // domain overlaps one thread's I/O with siblings' compute.
  UlsDomain uls(&sim, "uls", QosParams::Guaranteed(Milliseconds(50), Milliseconds(100)), 4,
                Milliseconds(1), Milliseconds(3));
  BatchDomain hog("hog", QosParams::BestEffort());
  ASSERT_TRUE(kernel->AddDomain(&uls));
  ASSERT_TRUE(kernel->AddDomain(&hog));
  kernel->Start();
  sim.RunUntil(Seconds(10));
  // Perfect overlap: 4 threads * (1ms compute per 4ms cycle) saturates the
  // 50% allocation? Each thread completes an item per 4ms when overlapped;
  // the binding constraint is CPU: 50% of 10s = 5s CPU => 5000 items max;
  // I/O overlap allows ~4 in flight, so expect thousands, not ~2500/4.
  EXPECT_GT(uls.items_completed(), 3500);
  EXPECT_GT(uls.user_switches(), 1000);
}

TEST(UlsTest, OutperformsKernelThreadBaselineUnderTimesharing) {
  // E07 in miniature, under the quantum-forfeiting discipline the paper's
  // complaint is about: when a kernel thread blocks, the processor goes to
  // a thread belonging to another process and the application waits a full
  // service rotation. The user-level scheduler instead switches to a sibling
  // thread within the same quantum.
  sim::Simulator sim;
  auto kernel = std::make_unique<Kernel>(&sim, std::make_unique<RoundRobinScheduler>(),
                                         KernelCosts::Zero());
  // 1ms compute + 2ms I/O: four pipelined threads keep a CPU continuously
  // busy, so the ULS can fill its whole quantum.
  UlsDomain uls(&sim, "uls", QosParams::BestEffort(), 4, Milliseconds(1), Milliseconds(2));
  std::vector<std::unique_ptr<IoThreadDomain>> kthreads;
  for (int i = 0; i < 4; ++i) {
    kthreads.push_back(std::make_unique<IoThreadDomain>(&sim, "kt" + std::to_string(i),
                                                        QosParams::BestEffort(), Milliseconds(1),
                                                        Milliseconds(2)));
  }
  ASSERT_TRUE(kernel->AddDomain(&uls));
  for (auto& kt : kthreads) {
    ASSERT_TRUE(kernel->AddDomain(kt.get()));
  }
  BatchDomain hog1("hog1", QosParams::BestEffort(), Milliseconds(10));
  BatchDomain hog2("hog2", QosParams::BestEffort(), Milliseconds(10));
  ASSERT_TRUE(kernel->AddDomain(&hog1));
  ASSERT_TRUE(kernel->AddDomain(&hog2));
  kernel->Start();
  sim.RunUntil(Seconds(10));
  int64_t kthread_items = 0;
  for (auto& kt : kthreads) {
    kthread_items += kt->items_completed();
  }
  // Per service rotation the ULS runs several threads back to back; each
  // kernel thread runs 1ms then forfeits. Expect a clear win, not a tie.
  EXPECT_GT(uls.items_completed(), kthread_items * 3 / 2);
}

}  // namespace
}  // namespace pegasus::nemesis
