// Tests for the v-node layer and disk rebuild (§5 extensions).
#include <gtest/gtest.h>

#include "src/pfs/server.h"
#include "src/pfs/vnode.h"
#include "src/sim/event_queue.h"

namespace pegasus::pfs {
namespace {

using sim::Seconds;

PfsConfig TestConfig() {
  PfsConfig cfg;
  cfg.segment_size = 64 << 10;
  cfg.block_size = 8 << 10;
  cfg.geometry.capacity_bytes = 64 << 20;
  return cfg;
}

class VnodeFixture : public ::testing::Test {
 protected:
  VnodeFixture() : server_(&sim_, TestConfig()), vfs_(&server_) {}

  bool WriteFd(VnodeLayer::Fd fd, const std::vector<uint8_t>& data) {
    bool ok = false;
    bool done = false;
    vfs_.Write(fd, data, [&](bool k, int64_t) {
      ok = k;
      done = true;
    });
    sim_.RunUntilPredicate([&]() { return done; });
    return ok;
  }

  std::pair<bool, std::vector<uint8_t>> ReadFd(VnodeLayer::Fd fd, int64_t len) {
    std::pair<bool, std::vector<uint8_t>> out{false, {}};
    bool done = false;
    vfs_.Read(fd, len, [&](bool ok, std::vector<uint8_t> data) {
      out = {ok, std::move(data)};
      done = true;
    });
    sim_.RunUntilPredicate([&]() { return done; });
    return out;
  }

  sim::Simulator sim_;
  PegasusFileServer server_;
  VnodeLayer vfs_;
};

TEST_F(VnodeFixture, CreateWriteReadThroughPaths) {
  auto fd = vfs_.Create("home/user/notes.txt");
  ASSERT_TRUE(fd.has_value());
  std::vector<uint8_t> text{'h', 'e', 'l', 'l', 'o'};
  EXPECT_TRUE(WriteFd(*fd, text));
  EXPECT_EQ(vfs_.Tell(*fd), 5);
  EXPECT_TRUE(vfs_.Close(*fd));

  auto fd2 = vfs_.Open("home/user/notes.txt");
  ASSERT_TRUE(fd2.has_value());
  auto [ok, got] = ReadFd(*fd2, 100);
  EXPECT_TRUE(ok);
  EXPECT_EQ(got, text);  // read clamps at EOF
  auto [ok2, got2] = ReadFd(*fd2, 100);
  EXPECT_TRUE(ok2);
  EXPECT_TRUE(got2.empty());  // at EOF
}

TEST_F(VnodeFixture, SequentialWritesAdvanceCursor) {
  auto fd = vfs_.Create("log");
  ASSERT_TRUE(fd.has_value());
  EXPECT_TRUE(WriteFd(*fd, std::vector<uint8_t>(100, 1)));
  EXPECT_TRUE(WriteFd(*fd, std::vector<uint8_t>(100, 2)));
  vfs_.Seek(*fd, 0);
  auto [ok, got] = ReadFd(*fd, 200);
  ASSERT_TRUE(ok);
  EXPECT_EQ(got[0], 1);
  EXPECT_EQ(got[99], 1);
  EXPECT_EQ(got[100], 2);
  EXPECT_EQ(got[199], 2);
}

TEST_F(VnodeFixture, DirectoryOperations) {
  EXPECT_TRUE(vfs_.Mkdir("a/b"));
  EXPECT_FALSE(vfs_.Mkdir("a/b"));  // exists
  ASSERT_TRUE(vfs_.Create("a/b/file1").has_value());
  ASSERT_TRUE(vfs_.Create("a/b/file2").has_value());
  auto names = vfs_.ReadDir("a/b");
  ASSERT_TRUE(names.has_value());
  EXPECT_EQ(*names, (std::vector<std::string>{"file1", "file2"}));
  EXPECT_FALSE(vfs_.Rmdir("a/b"));  // not empty
  EXPECT_TRUE(vfs_.Unlink("a/b/file1"));
  EXPECT_TRUE(vfs_.Unlink("a/b/file2"));
  EXPECT_TRUE(vfs_.Rmdir("a/b"));
  EXPECT_FALSE(vfs_.ReadDir("a/b").has_value());
}

TEST_F(VnodeFixture, CreateRefusesDuplicatesAndOpenMissing) {
  ASSERT_TRUE(vfs_.Create("x").has_value());
  EXPECT_FALSE(vfs_.Create("x").has_value());
  EXPECT_FALSE(vfs_.Open("missing").has_value());
  EXPECT_FALSE(vfs_.Open("x/not-a-dir").has_value());
}

TEST_F(VnodeFixture, StatReportsSizeAndType) {
  auto fd = vfs_.Create("media/clip", FileType::kContinuous);
  ASSERT_TRUE(fd.has_value());
  EXPECT_TRUE(WriteFd(*fd, std::vector<uint8_t>(12345, 7)));
  auto st = vfs_.Stat("media/clip");
  ASSERT_TRUE(st.has_value());
  EXPECT_EQ(st->size, 12345);
  EXPECT_EQ(st->type, FileType::kContinuous);
  EXPECT_FALSE(vfs_.Stat("media").has_value());  // directories have no stat here
}

TEST_F(VnodeFixture, RenameMovesAcrossDirectories) {
  auto fd = vfs_.Create("tmp/draft");
  ASSERT_TRUE(fd.has_value());
  EXPECT_TRUE(WriteFd(*fd, {1, 2, 3}));
  EXPECT_TRUE(vfs_.Rename("tmp/draft", "docs/final"));
  EXPECT_FALSE(vfs_.Open("tmp/draft").has_value());
  auto fd2 = vfs_.Open("docs/final");
  ASSERT_TRUE(fd2.has_value());
  auto [ok, got] = ReadFd(*fd2, 3);
  EXPECT_TRUE(ok);
  EXPECT_EQ(got, (std::vector<uint8_t>{1, 2, 3}));
  // Renaming over an existing target is refused.
  ASSERT_TRUE(vfs_.Create("docs/other").has_value());
  EXPECT_FALSE(vfs_.Rename("docs/other", "docs/final"));
}

TEST_F(VnodeFixture, UnlinkDeletesBackingFile) {
  auto fd = vfs_.Create("gone");
  ASSERT_TRUE(fd.has_value());
  EXPECT_TRUE(WriteFd(*fd, std::vector<uint8_t>(8192, 1)));
  bool synced = false;
  server_.Sync([&]() { synced = true; });
  sim_.RunUntilPredicate([&]() { return synced; });
  const auto st = vfs_.Stat("gone");
  ASSERT_TRUE(st.has_value());
  EXPECT_TRUE(vfs_.Unlink("gone"));
  // The core-layer file is gone too: its blocks became garbage.
  EXPECT_FALSE(server_.FileTypeOf(st->file).has_value());
  EXPECT_GT(server_.garbage_bytes(), 0);
}

TEST_F(VnodeFixture, BadFdsFailGracefully) {
  bool done = false;
  vfs_.Write(99, {1}, [&](bool ok, int64_t n) {
    EXPECT_FALSE(ok);
    EXPECT_EQ(n, 0);
    done = true;
  });
  EXPECT_TRUE(done);  // bad-fd errors are synchronous
  EXPECT_EQ(vfs_.Seek(99, 0), -1);
  EXPECT_EQ(vfs_.Tell(99), -1);
  EXPECT_FALSE(vfs_.Close(99));
}

class RebuildFixture : public ::testing::Test {
 protected:
  RebuildFixture() : server_(&sim_, TestConfig()) {}

  sim::Simulator sim_;
  PegasusFileServer server_;
};

TEST_F(RebuildFixture, RebuiltDiskRestoresRedundancy) {
  FileId f = server_.CreateFile(FileType::kNormal);
  std::vector<uint8_t> data(32 << 10);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<uint8_t>(i * 31);
  }
  bool done = false;
  server_.Write(f, 0, data, [&](bool) { done = true; });
  sim_.RunUntilPredicate([&]() { return done; });
  bool synced = false;
  server_.Sync([&]() { synced = true; });
  sim_.RunUntilPredicate([&]() { return synced; });

  // Disk 1 dies and is replaced by a blank drive.
  server_.store().disk(1)->Fail();
  server_.store().disk(1)->ReplaceBlank();
  bool rebuilt = false;
  bool rebuild_ok = false;
  server_.RebuildDisk(1, [&](bool ok, int64_t segments) {
    rebuild_ok = ok;
    EXPECT_GE(segments, 1);
    rebuilt = true;
  });
  sim_.RunUntilPredicate([&]() { return rebuilt; });
  EXPECT_TRUE(rebuild_ok);

  // Redundancy is restored: a *different* disk can now fail and the data
  // still reads back (which requires disk 1's rebuilt content).
  server_.store().disk(0)->Fail();
  bool read_done = false;
  server_.Read(f, 0, static_cast<int64_t>(data.size()),
               [&](bool ok, std::vector<uint8_t> got) {
                 EXPECT_TRUE(ok);
                 EXPECT_EQ(got, data);
                 read_done = true;
               });
  sim_.RunUntilPredicate([&]() { return read_done; });
}

TEST_F(RebuildFixture, ParityDiskRebuilds) {
  FileId f = server_.CreateFile(FileType::kNormal);
  bool done = false;
  server_.Write(f, 0, std::vector<uint8_t>(16 << 10, 0xEE), [&](bool) { done = true; });
  sim_.RunUntilPredicate([&]() { return done; });
  bool synced = false;
  server_.Sync([&]() { synced = true; });
  sim_.RunUntilPredicate([&]() { return synced; });

  const int parity = server_.config().num_data_disks;
  server_.store().disk(parity)->Fail();
  server_.store().disk(parity)->ReplaceBlank();
  bool rebuilt = false;
  server_.RebuildDisk(parity, [&](bool ok, int64_t) {
    EXPECT_TRUE(ok);
    rebuilt = true;
  });
  sim_.RunUntilPredicate([&]() { return rebuilt; });

  // Parity works again: lose a data disk, data survives.
  server_.store().disk(2)->Fail();
  bool read_done = false;
  server_.Read(f, 0, 16 << 10, [&](bool ok, std::vector<uint8_t> got) {
    EXPECT_TRUE(ok);
    EXPECT_EQ(got, std::vector<uint8_t>(16 << 10, 0xEE));
    read_done = true;
  });
  sim_.RunUntilPredicate([&]() { return read_done; });
}

}  // namespace
}  // namespace pegasus::pfs
