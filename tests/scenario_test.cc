// Metro-scale scenario engine: generated topology well-formedness,
// seed-reproducible churn, and blocking that grows with offered load.
#include <gtest/gtest.h>

#include "src/scenario/topology.h"
#include "src/scenario/workload.h"

namespace pegasus {
namespace {

scenario::TopologyParams SmallMetro() {
  scenario::TopologyParams params;
  params.core_switches = 2;
  params.agg_per_core = 2;
  params.edge_per_agg = 2;
  params.hosts_per_edge = 3;
  params.storage_per_core = 1;
  return params;
}

TEST(MetroTopologyTest, GeneratedFabricIsWellFormed) {
  sim::Simulator sim;
  core::PegasusSystem system(&sim);
  const scenario::TopologyParams params = SmallMetro();
  const scenario::MetroTopology topo = scenario::BuildMetroTopology(system, params);

  EXPECT_EQ(static_cast<int>(topo.cores.size()), params.num_cores());
  EXPECT_EQ(static_cast<int>(topo.aggs.size()), params.num_aggs());
  EXPECT_EQ(static_cast<int>(topo.edges.size()), params.num_edges());
  EXPECT_EQ(static_cast<int>(topo.hosts.size()), params.num_hosts());
  EXPECT_EQ(static_cast<int>(topo.storage.size()), params.num_storage());

  // Every ConnectSwitches / AddEndpoint call is a directed link pair; the
  // closed-form count must match what the network actually holds.
  EXPECT_EQ(system.network().links().size(), params.expected_network_links());

  // Every subscriber can reach every storage server, and the path crosses
  // at least the host uplink, the edge trunk and the storage attachment.
  for (core::Workstation* host : topo.hosts) {
    for (core::StorageNode* storage : topo.storage) {
      auto path = system.network().PathLinks(storage->endpoint(), host->host());
      ASSERT_TRUE(path.has_value());
      EXPECT_GE(path->size(), 4u);
    }
  }

  // Tier arithmetic: the last host hangs off the last edge, under the last
  // aggregation switch and core.
  const int last = params.num_hosts() - 1;
  EXPECT_EQ(topo.edge_of_host(last), params.num_edges() - 1);
  EXPECT_EQ(topo.agg_of_host(last), params.num_aggs() - 1);
  EXPECT_EQ(topo.core_of_host(last), params.num_cores() - 1);
}

scenario::FleetMetrics RunChurn(uint64_t seed, double arrivals_per_sec) {
  sim::Simulator sim;
  core::PegasusSystem system(&sim);
  const scenario::TopologyParams tparams = SmallMetro();
  const scenario::MetroTopology topo = scenario::BuildMetroTopology(system, tparams);

  scenario::WorkloadParams wparams;
  wparams.seed = seed;
  wparams.arrivals_per_sec = arrivals_per_sec;
  wparams.mean_holding_sec = 1.0;
  wparams.data_session_fraction = 0.2;
  wparams.enable_qos_monitor = true;
  scenario::ScenarioEngine engine(&system, &topo, wparams);
  return engine.Run(sim::Seconds(3));
}

TEST(ScenarioEngineTest, ChurnIsReproducibleFromSeed) {
  const scenario::FleetMetrics a = RunChurn(42, 30.0);
  const scenario::FleetMetrics b = RunChurn(42, 30.0);

  EXPECT_GT(a.arrivals, 0);
  EXPECT_GT(a.admitted, 0);
  EXPECT_GT(a.link_cells_sent, 0u);
  EXPECT_EQ(a.arrivals, b.arrivals);
  EXPECT_EQ(a.admitted, b.admitted);
  EXPECT_EQ(a.blocked, b.blocked);
  EXPECT_EQ(a.departed, b.departed);
  EXPECT_EQ(a.peak_concurrent, b.peak_concurrent);
  EXPECT_EQ(a.link_cells_sent, b.link_cells_sent);
  EXPECT_EQ(a.records_played, b.records_played);
  EXPECT_EQ(a.Fingerprint(), b.Fingerprint());

  // A different seed drives a different sample path.
  const scenario::FleetMetrics c = RunChurn(43, 30.0);
  EXPECT_NE(a.Fingerprint(), c.Fingerprint());
}

TEST(ScenarioEngineTest, BlockingProbabilityMonotoneInArrivalRate) {
  // Same fabric and seed, rising offered load: admission must turn away a
  // non-decreasing fraction, and the heaviest load must actually block.
  const scenario::FleetMetrics low = RunChurn(7, 10.0);
  const scenario::FleetMetrics mid = RunChurn(7, 80.0);
  const scenario::FleetMetrics high = RunChurn(7, 400.0);

  EXPECT_LE(low.blocking_probability(), mid.blocking_probability());
  EXPECT_LE(mid.blocking_probability(), high.blocking_probability());
  EXPECT_GT(high.blocked, 0);
  EXPECT_GT(high.blocking_probability(), low.blocking_probability());
}

}  // namespace
}  // namespace pegasus
