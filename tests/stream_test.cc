// The cross-layer stream API: admission across network, CPU and disk,
// counter-offers, teardown releasing every layer, and renegotiation.
#include <gtest/gtest.h>

#include "src/core/stream.h"
#include "src/core/system.h"
#include "src/nemesis/atropos.h"
#include "src/nemesis/kernel.h"
#include "src/nemesis/qos_manager.h"

namespace pegasus::core {
namespace {

using nemesis::QosParams;
using sim::Milliseconds;
using sim::Seconds;

class StreamFixture : public ::testing::Test {
 protected:
  StreamFixture() : system_(&sim_) {}

  // Total bandwidth currently reserved anywhere in the network.
  int64_t TotalReservedBps() {
    int64_t total = 0;
    for (const auto& link : system_.network().links()) {
      total += system_.network().ReservedBandwidth(link.get());
    }
    return total;
  }

  sim::Simulator sim_;
  PegasusSystem system_;
};

TEST_F(StreamFixture, AdmitAcceptBindsEveryLayer) {
  Workstation* src = system_.AddWorkstation("src");
  Workstation* dst = system_.AddWorkstation("dst");
  nemesis::Kernel kernel(&sim_, std::make_unique<nemesis::AtroposScheduler>(1.0));
  dst->AttachKernel(&kernel);

  dev::AtmCamera::Config cfg;
  dev::AtmCamera* camera = src->AddCamera(cfg);
  dev::AtmDisplay* display = dst->AddDisplay(640, 480);

  StreamSpec spec = StreamSpec::Video(25, 10'000'000);
  spec.sink_cpu = QosParams::Guaranteed(Milliseconds(5), Milliseconds(40));

  auto r = system_.BuildStream("accept")
               .From(src, camera)
               .To(dst, display)
               .WithSpec(spec)
               .WithWindow(10, 10)
               .Open();
  ASSERT_TRUE(r.report.ok());
  ASSERT_NE(r.session, nullptr);
  EXPECT_TRUE(r.session->active());
  EXPECT_EQ(r.session->contract().granted.bandwidth_bps, 10'000'000);
  EXPECT_GT(r.session->contract().hop_count, 0);

  // Network layer: the reservation shows on the traversed links.
  EXPECT_GT(TotalReservedBps(), 0);
  // Every hop carries the full peak rate: camera uplink, two inter-switch
  // hops (src->backbone, backbone->dst), display downlink.
  EXPECT_GE(TotalReservedBps(), 4 * 10'000'000);
  // CPU layer: the sink host's scheduler now carries the handler contract.
  EXPECT_NEAR(kernel.scheduler()->AdmittedUtilization(), 0.125, 1e-9);
  ASSERT_NE(r.session->sink_handler(), nullptr);
  EXPECT_EQ(r.session->source_handler(), nullptr);
  // Device layer: the camera is paced to the granted bandwidth.
  EXPECT_EQ(camera->config().pace_bps, 10'000'000);
}

TEST_F(StreamFixture, AdmitRejectsOversubscribedLink) {
  Workstation* a = system_.AddWorkstation("a");
  Workstation* b = system_.AddWorkstation("b");
  dev::AtmCamera::Config cfg;
  dev::AtmCamera* cam1 = a->AddCamera(cfg);
  dev::AtmCamera* cam2 = a->AddCamera(cfg);
  dev::AtmDisplay* disp = b->AddDisplay(640, 480);

  // Two 100 Mb/s reservations cannot share one 155 Mb/s backbone uplink.
  const StreamSpec heavy = StreamSpec::Video(25, 100'000'000);
  auto s1 = system_.BuildStream("s1").From(a, cam1).To(b, disp).WithSpec(heavy).Open();
  ASSERT_TRUE(s1.report.ok());

  auto s2 = system_.BuildStream("s2").From(a, cam2).To(b, disp).WithSpec(heavy).Open();
  EXPECT_FALSE(s2.report.ok());
  EXPECT_EQ(s2.report.failure, AdmitFailure::kNetworkBandwidth);
  EXPECT_EQ(s2.session, nullptr);
  // The counter-offer is the remaining capacity of the tightest hop.
  ASSERT_EQ(s2.report.verdict, AdmitVerdict::kCounterOffer);
  ASSERT_TRUE(s2.report.counter_offer.has_value());
  EXPECT_EQ(s2.report.counter_offer->bandwidth_bps, 55'000'000);

  // Accepting the counter-offer succeeds.
  auto s3 = system_.BuildStream("s3")
                .From(a, cam2)
                .To(b, disp)
                .WithSpec(*s2.report.counter_offer)
                .Open();
  EXPECT_TRUE(s3.report.ok());
}

TEST_F(StreamFixture, AdmitRejectsCpuOverCommitment) {
  Workstation* src = system_.AddWorkstation("src");
  Workstation* dst = system_.AddWorkstation("dst");
  nemesis::Kernel kernel(&sim_, std::make_unique<nemesis::AtroposScheduler>(1.0));
  dst->AttachKernel(&kernel);
  dev::AtmCamera::Config cfg;
  dev::AtmCamera* cam1 = src->AddCamera(cfg);
  dev::AtmCamera* cam2 = src->AddCamera(cfg);
  dev::AtmDisplay* disp = dst->AddDisplay(640, 480);

  StreamSpec first = StreamSpec::Video(25, 0);
  first.sink_cpu = QosParams::Guaranteed(Milliseconds(600), Milliseconds(1000));
  auto s1 = system_.BuildStream("s1").From(src, cam1).To(dst, disp).WithSpec(first).Open();
  ASSERT_TRUE(s1.report.ok());

  // Another 60% demand exceeds the remaining 40% Atropos headroom.
  auto s2 = system_.BuildStream("s2").From(src, cam2).To(dst, disp).WithSpec(first).Open();
  EXPECT_FALSE(s2.report.ok());
  EXPECT_EQ(s2.report.failure, AdmitFailure::kSinkCpu);
  ASSERT_EQ(s2.report.verdict, AdmitVerdict::kCounterOffer);
  ASSERT_TRUE(s2.report.counter_offer.has_value());
  const sim::DurationNs offered = s2.report.counter_offer->sink_cpu.slice;
  EXPECT_GT(offered, Milliseconds(300));
  EXPECT_LE(offered, Milliseconds(400));

  // A CPU demand on a host with no kernel attached is an outright reject.
  StreamSpec no_kernel = StreamSpec::Video(25, 0);
  no_kernel.source_cpu = QosParams::Guaranteed(Milliseconds(1), Milliseconds(100));
  auto s3 = system_.BuildStream("s3").From(src, cam2).To(dst, disp).WithSpec(no_kernel).Open();
  EXPECT_FALSE(s3.report.ok());
  EXPECT_EQ(s3.report.failure, AdmitFailure::kSourceCpu);
  EXPECT_EQ(s3.report.verdict, AdmitVerdict::kRejected);
}

TEST_F(StreamFixture, TeardownReleasesAllThreeLayers) {
  Workstation* ws = system_.AddWorkstation("ws");
  nemesis::Kernel kernel(&sim_, std::make_unique<nemesis::AtroposScheduler>(1.0));
  ws->AttachKernel(&kernel);
  dev::AtmCamera::Config cfg;
  dev::AtmCamera* camera = ws->AddCamera(cfg);
  pfs::PfsConfig pfs_cfg;
  pfs_cfg.segment_size = 64 << 10;
  pfs_cfg.block_size = 8 << 10;
  pfs_cfg.geometry.capacity_bytes = 64 << 20;
  StorageNode* storage = system_.AddStorageServer(pfs_cfg);

  const int64_t base_vcs = system_.network().open_vc_count();
  StreamSpec spec = StreamSpec::Video(25, 20'000'000);
  spec.source_cpu = QosParams::Guaranteed(Milliseconds(4), Milliseconds(40));
  spec.disk_bps = 2'000'000;
  auto r = system_.BuildStream("rec")
               .FromEndpoint(ws, ws->device_endpoint(camera))
               .ToStorage(storage, /*stream_id=*/1)
               .WithSpec(spec)
               .Open();
  ASSERT_TRUE(r.report.ok());

  // All three layers hold reservations while the session is live.
  EXPECT_GT(TotalReservedBps(), 0);
  EXPECT_GT(kernel.scheduler()->AdmittedUtilization(), 0.0);
  EXPECT_EQ(storage->server()->reserved_stream_bps(), 2'000'000);
  EXPECT_GT(system_.network().open_vc_count(), base_vcs);

  r.session->Close();
  EXPECT_FALSE(r.session->active());

  // ...and all three are fully released on teardown.
  EXPECT_EQ(TotalReservedBps(), 0);
  EXPECT_EQ(kernel.scheduler()->AdmittedUtilization(), 0.0);
  EXPECT_EQ(storage->server()->reserved_stream_bps(), 0);
  EXPECT_EQ(system_.network().open_vc_count(), base_vcs);

  // Close is idempotent.
  r.session->Close();
  EXPECT_EQ(TotalReservedBps(), 0);
}

TEST_F(StreamFixture, RenegotiationRoundTrip) {
  Workstation* src = system_.AddWorkstation("src");
  Workstation* dst = system_.AddWorkstation("dst");
  nemesis::Kernel kernel(&sim_, std::make_unique<nemesis::AtroposScheduler>(1.0));
  dst->AttachKernel(&kernel);
  dev::AtmCamera::Config cfg;
  dev::AtmCamera* camera = src->AddCamera(cfg);
  dev::AtmDisplay* display = dst->AddDisplay(640, 480);

  StreamSpec spec = StreamSpec::Video(25, 10'000'000);
  spec.sink_cpu = QosParams::Guaranteed(Milliseconds(4), Milliseconds(40));
  auto r = system_.BuildStream("stream")
               .From(src, camera)
               .To(dst, display)
               .WithSpec(spec)
               .Open();
  ASSERT_TRUE(r.report.ok());
  const int64_t reserved_before = TotalReservedBps();

  // Scale up within capacity: both layers re-admit in place.
  StreamSpec more = r.session->contract().granted;
  more.bandwidth_bps = 40'000'000;
  more.sink_cpu = QosParams::Guaranteed(Milliseconds(8), Milliseconds(40));
  auto up = r.session->Renegotiate(more);
  EXPECT_TRUE(up.ok());
  EXPECT_EQ(r.session->contract().granted.bandwidth_bps, 40'000'000);
  EXPECT_EQ(r.session->contract().renegotiations, 1);
  EXPECT_EQ(TotalReservedBps(), reserved_before * 4);
  EXPECT_NEAR(kernel.scheduler()->AdmittedUtilization(), 0.2, 1e-9);
  EXPECT_EQ(camera->config().pace_bps, 40'000'000);

  // An infeasible demand is refused atomically: nothing changes.
  StreamSpec too_much = more;
  too_much.bandwidth_bps = 500'000'000;
  auto refused = r.session->Renegotiate(too_much);
  EXPECT_FALSE(refused.ok());
  EXPECT_EQ(refused.failure, AdmitFailure::kNetworkBandwidth);
  ASSERT_TRUE(refused.counter_offer.has_value());
  EXPECT_EQ(refused.counter_offer->bandwidth_bps, 155'000'000);
  EXPECT_EQ(r.session->contract().granted.bandwidth_bps, 40'000'000);
  EXPECT_EQ(TotalReservedBps(), reserved_before * 4);
  EXPECT_NEAR(kernel.scheduler()->AdmittedUtilization(), 0.2, 1e-9);

  // Scale back down: the freed bandwidth is admissible again elsewhere.
  StreamSpec back = r.session->contract().granted;
  back.bandwidth_bps = 10'000'000;
  back.sink_cpu = QosParams::Guaranteed(Milliseconds(4), Milliseconds(40));
  EXPECT_TRUE(r.session->Renegotiate(back).ok());
  EXPECT_EQ(TotalReservedBps(), reserved_before);
  EXPECT_NEAR(kernel.scheduler()->AdmittedUtilization(), 0.1, 1e-9);
  // The refused attempt does not count: only bound contracts do.
  EXPECT_EQ(r.session->contract().renegotiations, 2);
}

TEST_F(StreamFixture, ManagerDegradationReachesTheSession) {
  Workstation* ws = system_.AddWorkstation("ws");
  nemesis::Kernel kernel(&sim_, std::make_unique<nemesis::AtroposScheduler>(1.0));
  ws->AttachKernel(&kernel);
  dev::AtmCamera::Config cfg;
  dev::AtmCamera* camera = ws->AddCamera(cfg);
  dev::AtmDisplay* display = ws->AddDisplay(640, 480);

  nemesis::QosManagerDomain::Options opts;
  opts.epoch = Milliseconds(250);
  opts.target_utilization = 0.5;
  opts.reclaim_unused = false;
  opts.smoothing = 1.0;
  nemesis::QosManagerDomain manager(&sim_, "mgr",
                                    QosParams::Guaranteed(Milliseconds(1), Milliseconds(100)),
                                    opts);
  ASSERT_TRUE(kernel.AddDomain(&manager));

  // The stream holds 40% but the manager's target only sustains 50% total;
  // a second registered client forces a weighted squeeze.
  StreamSpec spec = StreamSpec::Video(25, 0);
  spec.sink_cpu = QosParams::Guaranteed(Milliseconds(40), Milliseconds(100));
  int degrade_calls = 0;
  double last_granted = -1.0;
  auto r = system_.BuildStream("managed")
               .From(ws, camera)
               .To(ws, display)
               .WithSpec(spec)
               .ManagedBy(&manager, /*weight=*/1.0)
               .OnDegrade([&](const QosContract& c) {
                 ++degrade_calls;
                 last_granted = c.granted.sink_cpu.Utilization();
               })
               .Open();
  ASSERT_TRUE(r.report.ok());

  nemesis::BatchDomain competitor("competitor",
                                  QosParams::Guaranteed(Milliseconds(1), Milliseconds(100)));
  ASSERT_TRUE(kernel.AddDomain(&competitor));
  manager.Register(&competitor, /*weight=*/1.0,
                   QosParams::Guaranteed(Milliseconds(40), Milliseconds(100)));

  kernel.Start();
  sim_.RunUntil(Seconds(2));

  // Equal weights, 50% to divide: the stream was squeezed to ~25% and the
  // session heard about it through the degradation callback.
  EXPECT_GT(degrade_calls, 0);
  EXPECT_NEAR(last_granted, 0.25, 0.02);
  EXPECT_NEAR(r.session->contract().granted.sink_cpu.Utilization(), 0.25, 0.02);
}


// --- one-to-many sessions (ToMany / AddSink / RemoveSink) ---

TEST_F(StreamFixture, ToManyChargesSharedEdgesOnce) {
  Workstation* src = system_.AddWorkstation("head");
  Workstation* a = system_.AddWorkstation("a");
  Workstation* b = system_.AddWorkstation("b");
  Workstation* c = system_.AddWorkstation("c");
  dev::AtmCamera::Config cfg;
  dev::AtmCamera* camera = src->AddCamera(cfg);
  std::vector<MulticastSink> sinks;
  for (Workstation* ws : {a, b, c}) {
    MulticastSink sink;
    sink.ws = ws;
    sink.display = ws->AddDisplay(640, 480);
    sinks.push_back(sink);
  }

  auto r = system_.BuildStream("broadcast")
               .From(src, camera)
               .ToMany(sinks)
               .WithSpec(StreamSpec::Video(25, 10'000'000))
               .WithWindow(0, 0, 320, 240)
               .Open();
  ASSERT_TRUE(r.report.ok()) << r.report.detail;
  ASSERT_NE(r.session, nullptr);
  EXPECT_TRUE(r.session->is_multicast());
  EXPECT_EQ(r.session->sink_count(), 3);
  // The tree reserves each EDGE once: camera uplink and head->backbone are
  // shared by all three viewers (charged once), then backbone->edge plus
  // display downlink per viewer. Per-viewer unicast would reserve 4 links
  // each (12 total); the tree reserves 8.
  EXPECT_EQ(TotalReservedBps(), (2 + 2 * 3) * 10'000'000);
  // Every leaf observes its own incoming VCI.
  for (const MulticastSink& sink : sinks) {
    EXPECT_TRUE(r.session->SinkVci(sink.ws->device_endpoint(sink.display)).has_value());
  }
  // The camera is paced to the ONE tree rate, not the sum over viewers.
  EXPECT_EQ(camera->config().pace_bps, 10'000'000);

  r.session->Close();
  EXPECT_EQ(TotalReservedBps(), 0);
}

TEST_F(StreamFixture, AddSinkAdmitsOnlyGraftPathAndRemoveSinkPrunes) {
  Workstation* src = system_.AddWorkstation("head");
  Workstation* a = system_.AddWorkstation("a");
  Workstation* b = system_.AddWorkstation("b");
  dev::AtmCamera::Config cfg;
  dev::AtmCamera* camera = src->AddCamera(cfg);
  MulticastSink first;
  first.ws = a;
  first.display = a->AddDisplay(640, 480);

  auto r = system_.BuildStream("join-leave")
               .From(src, camera)
               .ToMany({first})
               .WithSpec(StreamSpec::Video(25, 10'000'000))
               .Open();
  ASSERT_TRUE(r.report.ok()) << r.report.detail;
  EXPECT_EQ(TotalReservedBps(), 4 * 10'000'000);

  // A late join grafts only its own branch: +2 links, the shared trunk
  // stays at one stream's reservation.
  MulticastSink late;
  late.ws = b;
  late.display = b->AddDisplay(640, 480);
  auto graft = r.session->AddSink(late);
  ASSERT_TRUE(graft.ok()) << graft.detail;
  EXPECT_EQ(r.session->sink_count(), 2);
  EXPECT_EQ(TotalReservedBps(), 6 * 10'000'000);
  atm::Endpoint* late_ep = b->device_endpoint(late.display);
  EXPECT_TRUE(r.session->SinkVci(late_ep).has_value());

  // Re-joining an existing leaf is refused.
  EXPECT_FALSE(r.session->AddSink(late).ok());

  // Leaving prunes exactly the leaf's branches.
  atm::Endpoint* first_ep = a->device_endpoint(first.display);
  EXPECT_TRUE(r.session->RemoveSink(first_ep));
  EXPECT_EQ(r.session->sink_count(), 1);
  EXPECT_EQ(TotalReservedBps(), 4 * 10'000'000);
  EXPECT_FALSE(r.session->SinkVci(first_ep).has_value());

  // The last viewer cannot leave; the session closes instead.
  EXPECT_FALSE(r.session->RemoveSink(late_ep));
  r.session->Close();
  EXPECT_EQ(TotalReservedBps(), 0);
}

TEST_F(StreamFixture, ToManyCounterOfferTakesTightestLeafHost) {
  Workstation* src = system_.AddWorkstation("head");
  Workstation* a = system_.AddWorkstation("a");
  Workstation* b = system_.AddWorkstation("b");
  nemesis::Kernel kernel_a(&sim_, std::make_unique<nemesis::AtroposScheduler>(1.0));
  nemesis::Kernel kernel_b(&sim_, std::make_unique<nemesis::AtroposScheduler>(1.0));
  a->AttachKernel(&kernel_a);
  b->AttachKernel(&kernel_b);
  // Host b is already 60% committed; host a is idle.
  nemesis::BatchDomain load("load",
                            QosParams::Guaranteed(Milliseconds(600), Milliseconds(1000)));
  ASSERT_TRUE(kernel_b.AddDomain(&load));

  dev::AtmCamera::Config cfg;
  dev::AtmCamera* camera = src->AddCamera(cfg);
  MulticastSink sa;
  sa.ws = a;
  sa.display = a->AddDisplay(640, 480);
  MulticastSink sb;
  sb.ws = b;
  sb.display = b->AddDisplay(640, 480);

  // 50% of each leaf host: fits a, exceeds b's 40% headroom. The joint
  // counter-offer must carry the TIGHTEST leaf's clamp, so resubmitting it
  // admits everywhere.
  StreamSpec spec = StreamSpec::Video(25, 1'000'000);
  spec.sink_cpu = QosParams::Guaranteed(Milliseconds(500), Milliseconds(1000));
  auto r = system_.BuildStream("tight")
               .From(src, camera)
               .ToMany({sa, sb})
               .WithSpec(spec)
               .Open();
  EXPECT_FALSE(r.report.ok());
  EXPECT_EQ(r.report.failure, AdmitFailure::kSinkCpu);
  ASSERT_EQ(r.report.verdict, AdmitVerdict::kCounterOffer);
  ASSERT_TRUE(r.report.counter_offer.has_value());
  EXPECT_LE(r.report.counter_offer->sink_cpu.Utilization(), 0.4);
  EXPECT_GT(r.report.counter_offer->sink_cpu.Utilization(), 0.35);

  auto r2 = system_.BuildStream("tight2")
                .From(src, camera)
                .ToMany({sa, sb})
                .WithSpec(*r.report.counter_offer)
                .Open();
  ASSERT_TRUE(r2.report.ok()) << r2.report.detail;
  // BOTH leaf hosts now carry the clamped per-sink contract.
  const double clamped = r.report.counter_offer->sink_cpu.Utilization();
  EXPECT_NEAR(kernel_a.scheduler()->AdmittedUtilization(), clamped, 1e-9);
  EXPECT_NEAR(kernel_b.scheduler()->AdmittedUtilization(), 0.6 + clamped, 1e-9);
  r2.session->Close();
}

TEST_F(StreamFixture, MulticastRenegotiateScalesTreeAndEveryLeafTogether) {
  Workstation* src = system_.AddWorkstation("head");
  Workstation* a = system_.AddWorkstation("a");
  Workstation* b = system_.AddWorkstation("b");
  nemesis::Kernel kernel_a(&sim_, std::make_unique<nemesis::AtroposScheduler>(1.0));
  nemesis::Kernel kernel_b(&sim_, std::make_unique<nemesis::AtroposScheduler>(1.0));
  a->AttachKernel(&kernel_a);
  b->AttachKernel(&kernel_b);
  dev::AtmCamera::Config cfg;
  dev::AtmCamera* camera = src->AddCamera(cfg);
  MulticastSink sa;
  sa.ws = a;
  sa.display = a->AddDisplay(640, 480);
  MulticastSink sb;
  sb.ws = b;
  sb.display = b->AddDisplay(640, 480);

  StreamSpec spec = StreamSpec::Video(25, 20'000'000);
  spec.sink_cpu = QosParams::Guaranteed(Milliseconds(10), Milliseconds(100));
  auto r = system_.BuildStream("scaled")
               .From(src, camera)
               .ToMany({sa, sb})
               .WithSpec(spec)
               .Open();
  ASSERT_TRUE(r.report.ok()) << r.report.detail;
  EXPECT_EQ(TotalReservedBps(), 6 * 20'000'000);
  EXPECT_NEAR(kernel_a.scheduler()->AdmittedUtilization(), 0.1, 1e-9);
  EXPECT_NEAR(kernel_b.scheduler()->AdmittedUtilization(), 0.1, 1e-9);

  // One renegotiation moves the WHOLE tree and every leaf contract.
  StreamSpec smaller = r.session->contract().granted;
  smaller.bandwidth_bps = 10'000'000;
  smaller.sink_cpu = QosParams::Guaranteed(Milliseconds(5), Milliseconds(100));
  auto renego = r.session->Renegotiate(smaller);
  ASSERT_TRUE(renego.ok()) << renego.detail;
  EXPECT_EQ(TotalReservedBps(), 6 * 10'000'000);
  EXPECT_NEAR(kernel_a.scheduler()->AdmittedUtilization(), 0.05, 1e-9);
  EXPECT_NEAR(kernel_b.scheduler()->AdmittedUtilization(), 0.05, 1e-9);
  EXPECT_EQ(camera->config().pace_bps, 10'000'000);

  r.session->Close();
  EXPECT_EQ(TotalReservedBps(), 0);
  EXPECT_NEAR(kernel_a.scheduler()->AdmittedUtilization(), 0.0, 1e-9);
  EXPECT_NEAR(kernel_b.scheduler()->AdmittedUtilization(), 0.0, 1e-9);
}

}  // namespace
}  // namespace pegasus::core
