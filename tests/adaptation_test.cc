// The cross-layer adaptation plane: a QoS-manager CPU cut, a network
// congestion signal or disk budget pressure each drive exactly ONE joint
// renegotiation that moves every layer to the proportional target; reclaim
// cuts hold the other layers; refusals leave the contract intact; and every
// paced media source (camera, audio capture, storage play-out) actually
// slows to the renegotiated rate.
#include <gtest/gtest.h>

#include "src/atm/wire.h"
#include "src/core/compute_node.h"
#include "src/core/stream.h"
#include "src/core/system.h"
#include "src/devices/sync.h"
#include "src/nemesis/atropos.h"
#include "src/nemesis/kernel.h"
#include "src/nemesis/qos_manager.h"

namespace pegasus::core {
namespace {

using nemesis::QosParams;
using sim::Milliseconds;
using sim::Seconds;

class AdaptationFixture : public ::testing::Test {
 protected:
  AdaptationFixture() : system_(&sim_) {
    ws_ = system_.AddWorkstation("desk");
    kernel_ = std::make_unique<nemesis::Kernel>(
        &sim_, std::make_unique<nemesis::AtroposScheduler>(1.0));
    ws_->AttachKernel(kernel_.get());
    pfs::PfsConfig pfs_cfg;
    pfs_cfg.segment_size = 64 << 10;
    pfs_cfg.block_size = 8 << 10;
    pfs_cfg.geometry.capacity_bytes = 64 << 20;
    storage_ = system_.AddStorageServer(pfs_cfg);
  }

  int64_t TotalReservedBps() {
    int64_t total = 0;
    for (const auto& link : system_.network().links()) {
      total += system_.network().ReservedBandwidth(link.get());
    }
    return total;
  }

  AdaptationPolicy Policy(AdaptationMode mode = AdaptationMode::kFrameRateScaling) {
    AdaptationPolicy policy;
    policy.mode = mode;
    policy.floor = 0.05;
    policy.hysteresis = 0.02;
    policy.smoothing = 1.0;
    return policy;
  }

  sim::Simulator sim_;
  PegasusSystem system_;
  Workstation* ws_ = nullptr;
  StorageNode* storage_ = nullptr;
  std::unique_ptr<nemesis::Kernel> kernel_;
};

// A QoS-manager contention cut triggers exactly one joint renegotiation in
// which network bandwidth and disk rate follow the CPU's steady-state share
// proportionally — despite the manager's EWMA emitting a grant change every
// epoch on the way down.
TEST_F(AdaptationFixture, CpuCutDrivesOneJointRenegotiationAcrossLayers) {
  nemesis::QosManagerDomain::Options opts;
  opts.epoch = Milliseconds(250);
  opts.target_utilization = 0.5;
  opts.reclaim_unused = false;
  opts.smoothing = 0.4;  // EWMA: many grant steps, one steady-state target
  nemesis::QosManagerDomain manager(&sim_, "mgr",
                                    QosParams::Guaranteed(Milliseconds(1), Milliseconds(100)),
                                    opts);
  ASSERT_TRUE(kernel_.get()->AddDomain(&manager));

  dev::AtmCamera::Config cfg;
  dev::AtmCamera* camera = ws_->AddCamera(cfg);
  StreamSpec spec = StreamSpec::Video(25, 8'000'000);
  spec.source_cpu = QosParams::Guaranteed(Milliseconds(40), Milliseconds(100));
  spec.disk_bps = 2'000'000;
  auto r = system_.BuildStream("rec")
               .From(ws_, camera)
               .ToStorage(storage_)
               .WithSpec(spec)
               .ManagedBy(&manager, 1.0)
               .WithAdaptation(Policy())
               .Open();
  ASSERT_TRUE(r.report.ok());
  EXPECT_EQ(camera->config().pace_bps, 8'000'000);
  EXPECT_EQ(storage_->server()->reserved_stream_bps(), 2'000'000);

  // An equal-weight competitor squeezes the stream to 0.25 of the CPU: the
  // steady-state share of its 0.4 request is 0.625 of nominal.
  nemesis::BatchDomain competitor("competitor",
                                  QosParams::Guaranteed(Milliseconds(1), Milliseconds(100)));
  ASSERT_TRUE(kernel_.get()->AddDomain(&competitor));
  manager.Register(&competitor, 1.0,
                   QosParams::Guaranteed(Milliseconds(40), Milliseconds(100)));

  kernel_.get()->Start();
  sim_.RunUntil(Seconds(3));

  // Exactly ONE joint renegotiation, not one per EWMA epoch.
  EXPECT_EQ(r.session->contract().renegotiations, 1);
  EXPECT_EQ(r.session->adaptations_applied(), 1);
  EXPECT_NEAR(r.session->adaptation_fraction(), 0.625, 1e-9);
  // Network and disk moved to the proportional target together...
  EXPECT_EQ(r.session->contract().granted.bandwidth_bps, 5'000'000);
  EXPECT_EQ(r.session->contract().granted.disk_bps, 1'250'000);
  EXPECT_EQ(storage_->server()->reserved_stream_bps(), 1'250'000);
  // ...and the camera paces at the renegotiated rate.
  EXPECT_EQ(camera->config().pace_bps, 5'000'000);
  // Frame-rate scaling shrinks the presentation rate too.
  EXPECT_NEAR(r.session->contract().granted.frame_rate, 25 * 0.625, 1e-6);

  // The applied event records the per-layer movement.
  const auto& log = r.session->adaptation_log();
  ASSERT_FALSE(log.empty());
  const AdaptationEvent& applied = log.front();
  EXPECT_TRUE(applied.applied);
  EXPECT_EQ(applied.trigger, AdaptationEvent::Trigger::kCpuGrant);
  EXPECT_EQ(applied.reason, nemesis::GrantReason::kContention);
  EXPECT_EQ(applied.net_bps_before, 8'000'000);
  EXPECT_EQ(applied.net_bps_after, 5'000'000);
  EXPECT_EQ(applied.disk_bps_before, 2'000'000);
  EXPECT_EQ(applied.disk_bps_after, 1'250'000);
  EXPECT_LT(applied.cpu_util_after, applied.cpu_util_before);
  // Subsequent EWMA steps were held by hysteresis, not renegotiated.
  for (size_t i = 1; i < log.size(); ++i) {
    EXPECT_TRUE(log[i].held) << "event " << i;
  }
}

// A reclaim cut mirrors the stream's own idleness: the manager trims CPU
// toward observed usage, but network and disk can still deliver, so the
// adaptation plane holds the cross-layer contracts.
TEST_F(AdaptationFixture, ReclaimCutHoldsNetworkAndDisk) {
  nemesis::QosManagerDomain::Options opts;
  opts.epoch = Milliseconds(250);
  opts.target_utilization = 0.9;
  opts.reclaim_unused = true;
  opts.smoothing = 1.0;
  nemesis::QosManagerDomain manager(&sim_, "mgr",
                                    QosParams::Guaranteed(Milliseconds(1), Milliseconds(100)),
                                    opts);
  ASSERT_TRUE(kernel_.get()->AddDomain(&manager));

  dev::AtmCamera::Config cfg;
  dev::AtmCamera* camera = ws_->AddCamera(cfg);
  StreamSpec spec = StreamSpec::Video(25, 8'000'000);
  spec.source_cpu = QosParams::Guaranteed(Milliseconds(40), Milliseconds(100));
  spec.disk_bps = 2'000'000;
  auto r = system_.BuildStream("rec")
               .From(ws_, camera)
               .ToStorage(storage_)
               .WithSpec(spec)
               .ManagedBy(&manager, 1.0)
               .WithAdaptation(Policy())
               .Open();
  ASSERT_TRUE(r.report.ok());

  kernel_.get()->Start();
  sim_.RunUntil(Seconds(1));
  // The handler goes idle (the application stopped decoding); the manager
  // reclaims its unused CPU over the following epochs.
  r.session->source_handler()->Stop();
  sim_.RunUntil(Seconds(4));

  EXPECT_LT(r.session->contract().granted.source_cpu.Utilization(), 0.2);
  // No cross-layer renegotiation happened: the cuts were reclaim, not
  // contention, so network and disk kept their full contracts.
  EXPECT_EQ(r.session->contract().renegotiations, 0);
  EXPECT_EQ(r.session->contract().granted.bandwidth_bps, 8'000'000);
  EXPECT_EQ(storage_->server()->reserved_stream_bps(), 2'000'000);
  const auto& log = r.session->adaptation_log();
  ASSERT_FALSE(log.empty());
  int reclaim_events = 0;
  for (const AdaptationEvent& event : log) {
    // Every event held: the reclaim cuts by rule, the transient restores
    // toward full rate by hysteresis (they aim within 2% of nominal).
    EXPECT_TRUE(event.held);
    reclaim_events += event.reason == nemesis::GrantReason::kReclaim ? 1 : 0;
  }
  EXPECT_GT(reclaim_events, 0);
}

// A refused restoration leaves the degraded contract fully intact: nothing
// is re-bound, the counter-offer names what is still available.
TEST_F(AdaptationFixture, RefusedAdaptationLeavesContractIntact) {
  dev::AtmCamera::Config cfg;
  dev::AtmCamera* cam1 = ws_->AddCamera(cfg);
  dev::AtmCamera* cam2 = ws_->AddCamera(cfg);
  Workstation* peer = system_.AddWorkstation("peer");
  dev::AtmDisplay* display = peer->AddDisplay(640, 480);

  auto r = system_.BuildStream("adaptive")
               .From(ws_, cam1)
               .To(peer, display)
               .WithSpec(StreamSpec::Video(25, 100'000'000))
               .WithAdaptation(Policy())
               .Open();
  ASSERT_TRUE(r.report.ok());

  ASSERT_TRUE(r.session->AdaptTo(0.5).ok());
  EXPECT_EQ(r.session->contract().granted.bandwidth_bps, 50'000'000);

  // A competitor takes the freed bandwidth; restoring to nominal no longer
  // fits on the shared uplink.
  auto competitor = system_.BuildStream("greedy")
                        .From(ws_, cam2)
                        .To(peer, display)
                        .WithSpec(StreamSpec::Video(25, 100'000'000))
                        .Open();
  ASSERT_TRUE(competitor.report.ok());

  auto refused = r.session->AdaptTo(1.0);
  EXPECT_FALSE(refused.ok());
  EXPECT_EQ(refused.failure, AdmitFailure::kNetworkBandwidth);
  ASSERT_TRUE(refused.counter_offer.has_value());
  EXPECT_EQ(refused.counter_offer->bandwidth_bps, 55'000'000);
  // The degraded contract is untouched.
  EXPECT_EQ(r.session->contract().granted.bandwidth_bps, 50'000'000);
  EXPECT_NEAR(r.session->adaptation_fraction(), 0.5, 1e-9);
  EXPECT_EQ(r.session->contract().renegotiations, 1);
  const AdaptationEvent& last = r.session->adaptation_log().back();
  EXPECT_FALSE(last.applied);
  EXPECT_FALSE(last.held);
  EXPECT_EQ(last.net_bps_after, last.net_bps_before);
}

// The audio source paces at the renegotiated rate: below its nominal cell
// cadence the ADC decimates, and the measured cell rate follows the grant.
TEST_F(AdaptationFixture, AudioSourcePacesAtRenegotiatedRate) {
  dev::AudioCapture* capture = ws_->AddAudioCapture();
  Workstation* peer = system_.AddWorkstation("peer");
  dev::AudioPlayback* playback = peer->AddAudioPlayback();

  // Nominal audio is ~467 kb/s on the wire (one 53-byte cell per 40
  // samples at 44.1 kHz); grant just above it.
  auto r = system_.BuildStream("voice")
               .From(ws_, capture)
               .To(peer, playback)
               .WithSpec(StreamSpec::Audio(480'000))
               .WithAdaptation(Policy(AdaptationMode::kQualityScaling))
               .Open();
  ASSERT_TRUE(r.report.ok());
  EXPECT_EQ(capture->pace_bps(), 480'000);

  capture->Start(r.session->source_vci());
  sim_.RunUntil(Seconds(1));
  const int64_t full_rate_cells = capture->cells_sent();
  // Unthrottled cadence: one cell per ~907 us.
  EXPECT_NEAR(static_cast<double>(full_rate_cells), 1102.0, 15.0);

  ASSERT_TRUE(r.session->AdaptTo(0.5).ok());
  EXPECT_EQ(capture->pace_bps(), 240'000);
  sim_.RunUntil(Seconds(2));
  const int64_t degraded_cells = capture->cells_sent() - full_rate_cells;
  // 240 kb/s carries ~566 cells/s; the decimated balance is counted.
  EXPECT_NEAR(static_cast<double>(degraded_cells), 566.0, 30.0);
  EXPECT_GT(capture->cells_decimated(), 0);
  EXPECT_GT(playback->cells_played(), 0);
}

// Storage play-out paces at min(granted network, granted disk) rate and
// re-paces when the session renegotiates.
TEST_F(AdaptationFixture, StoragePlayoutPacesAtGrantedRate) {
  // Craft a continuous file of 200 length-prefixed records, 1000 payload
  // bytes each, recorded 1 ms apart (~8.1 Mb/s on the wire at full cadence).
  pfs::PegasusFileServer* server = storage_->server();
  const pfs::FileId file = server->CreateFile(pfs::FileType::kContinuous);
  for (int i = 0; i < 200; ++i) {
    // Spaced in time like a real recording: each append sees the previous
    // one's buffered block.
    sim_.ScheduleAt(sim::Microseconds(50) * i, [this, server, file, i]() {
      atm::WireWriter w;
      w.PutU32(1000);
      w.PutI64(sim::Milliseconds(i));
      std::vector<uint8_t> record = w.Take();
      record.resize(record.size() + 1000, static_cast<uint8_t>(i));
      server->Write(file, static_cast<int64_t>(i) * 1012, std::move(record),
                    [](bool ok) { ASSERT_TRUE(ok); });
    });
  }
  sim_.RunUntil(Milliseconds(100));

  // Grant 4 Mb/s network and 500 kB/s disk (equal on the wire): each 1012-
  // byte record needs ~2.02 ms, halving the recorded cadence.
  StreamSpec spec;
  spec.media = MediaType::kVideo;
  spec.bandwidth_bps = 4'000'000;
  spec.disk_bps = 500'000;
  auto r = system_.BuildStream("playout")
               .FromStorage(storage_, file)
               .ToEndpoint(ws_, ws_->host())
               .WithSpec(spec)
               .WithAdaptation(Policy(AdaptationMode::kQualityScaling))
               .Open();
  ASSERT_TRUE(r.report.ok());
  EXPECT_EQ(storage_->PlayoutPaceBps(file), 4'000'000);

  const sim::TimeNs start = sim_.now();
  ASSERT_TRUE(storage_->StartPlayback(file, r.session->source_vci()));
  sim_.RunUntil(start + Milliseconds(250));
  const int64_t paced_records = storage_->records_played();
  // ~123 records in 250 ms at the paced rate (vs ~250 unpaced).
  EXPECT_GT(paced_records, 90);
  EXPECT_LT(paced_records, 160);

  // Degrade to half: the running play-out slows immediately.
  ASSERT_TRUE(r.session->AdaptTo(0.5).ok());
  EXPECT_EQ(storage_->PlayoutPaceBps(file), 2'000'000);
  sim_.RunUntil(start + Milliseconds(500));
  const int64_t degraded_records = storage_->records_played() - paced_records;
  EXPECT_LT(degraded_records, paced_records);
  EXPECT_GT(degraded_records, 30);

  // Close releases the pacing along with everything else.
  r.session->Close();
  EXPECT_EQ(storage_->PlayoutPaceBps(file), 0);
}

// Network congestion funnels into the same joint renegotiation: bandwidth,
// unmanaged CPU and the playback controller's effective rate all move, and
// the signal's clear restores them.
TEST_F(AdaptationFixture, CongestionSignalDrivesJointRenegotiation) {
  dev::AtmCamera::Config cfg;
  dev::AtmCamera* camera = ws_->AddCamera(cfg);
  Workstation* peer = system_.AddWorkstation("peer");
  nemesis::Kernel peer_kernel(&sim_, std::make_unique<nemesis::AtroposScheduler>(1.0));
  peer->AttachKernel(&peer_kernel);
  dev::AtmDisplay* display = peer->AddDisplay(640, 480);

  dev::PlaybackController controller(&sim_, dev::PlaybackController::Options{});
  const int video = controller.RegisterStream("video");

  StreamSpec spec = StreamSpec::Video(25, 10'000'000);
  spec.sink_cpu = QosParams::Guaranteed(Milliseconds(8), Milliseconds(40));
  StreamSession* session = nullptr;
  auto r = system_.BuildStream("feed")
               .From(ws_, camera)
               .To(peer, display)
               .WithSpec(spec)
               .WithAdaptation(Policy())
               .OnDegrade([&](const QosContract&) {
                 controller.SetEffectiveRate(video, session->adaptation_fraction());
               })
               .Open();
  ASSERT_TRUE(r.report.ok());
  session = r.session;
  EXPECT_NEAR(peer_kernel.scheduler()->AdmittedUtilization(), 0.2, 1e-9);

  // 40% of the first link's deliverable capacity goes away.
  const std::vector<atm::Link*>* links = system_.network().VcLinks(session->data_vc());
  ASSERT_NE(links, nullptr);
  EXPECT_EQ(system_.network().SignalCongestion(links->front(), 0.4), 1);

  EXPECT_EQ(session->contract().renegotiations, 1);
  EXPECT_EQ(session->contract().granted.bandwidth_bps, 6'000'000);
  EXPECT_EQ(camera->config().pace_bps, 6'000'000);
  // The unmanaged sink CPU scaled with the stream.
  EXPECT_NEAR(peer_kernel.scheduler()->AdmittedUtilization(), 0.12, 1e-9);
  // A/V sync sees the degradation coherently.
  EXPECT_NEAR(controller.EffectiveRate(video), 0.6, 1e-9);
  EXPECT_EQ(session->adaptation_log().back().trigger,
            AdaptationEvent::Trigger::kNetworkCongestion);

  // The congestion clears: everything restores to nominal.
  EXPECT_EQ(system_.network().SignalCongestion(links->front(), 0.0), 1);
  EXPECT_EQ(session->contract().granted.bandwidth_bps, 10'000'000);
  EXPECT_NEAR(peer_kernel.scheduler()->AdmittedUtilization(), 0.2, 1e-9);
  EXPECT_NEAR(controller.EffectiveRate(video), 1.0, 1e-9);
}

// Disk budget pressure shrinks the whole stream, and the pressure hook
// survives the release-and-re-reserve renegotiation cycle.
TEST_F(AdaptationFixture, DiskPressureShrinksJointlyAndRearms) {
  dev::AtmCamera::Config cfg;
  dev::AtmCamera* camera = ws_->AddCamera(cfg);
  StreamSpec spec = StreamSpec::Video(25, 8'000'000);
  spec.disk_bps = 2'000'000;
  auto r = system_.BuildStream("rec")
               .From(ws_, camera)
               .ToStorage(storage_)
               .WithSpec(spec)
               .WithAdaptation(Policy(AdaptationMode::kQualityScaling))
               .Open();
  ASSERT_TRUE(r.report.ok());

  EXPECT_EQ(storage_->server()->SignalBudgetPressure(0.5), 1);
  EXPECT_EQ(r.session->contract().granted.disk_bps, 1'000'000);
  EXPECT_EQ(storage_->server()->reserved_stream_bps(), 1'000'000);
  EXPECT_EQ(r.session->contract().granted.bandwidth_bps, 4'000'000);
  // Quality scaling holds the frame rate.
  EXPECT_NEAR(r.session->contract().granted.frame_rate, 25.0, 1e-9);
  EXPECT_EQ(r.session->adaptation_log().back().trigger,
            AdaptationEvent::Trigger::kDiskPressure);

  // The hook re-armed across the reserve cycle: the clear restores.
  EXPECT_EQ(storage_->server()->SignalBudgetPressure(1.0), 1);
  EXPECT_EQ(r.session->contract().granted.disk_bps, 2'000'000);
  EXPECT_EQ(r.session->contract().granted.bandwidth_bps, 8'000'000);

  // Close drops the subscription: later pressure reaches nobody.
  r.session->Close();
  EXPECT_EQ(storage_->server()->SignalBudgetPressure(0.5), 0);
}

// Independent degradation signals compose: the session always sits at the
// MINIMUM of every source's limit, so a milder signal from one layer never
// un-degrades a deeper cut from another.
TEST_F(AdaptationFixture, LimitsComposeAcrossTriggers) {
  dev::AtmCamera::Config cfg;
  dev::AtmCamera* camera = ws_->AddCamera(cfg);
  Workstation* peer = system_.AddWorkstation("peer");
  dev::AtmDisplay* display = peer->AddDisplay(640, 480);
  auto r = system_.BuildStream("feed")
               .From(ws_, camera)
               .To(peer, display)
               .WithSpec(StreamSpec::Video(25, 10'000'000))
               .WithAdaptation(Policy())
               .Open();
  ASSERT_TRUE(r.report.ok());
  const std::vector<atm::Link*>* links = system_.network().VcLinks(r.session->data_vc());
  ASSERT_NE(links, nullptr);

  // The application limits itself to 0.4; a mild congestion signal (limit
  // 0.8) must NOT un-degrade it.
  ASSERT_TRUE(r.session->AdaptTo(0.4).ok());
  EXPECT_EQ(r.session->contract().granted.bandwidth_bps, 4'000'000);
  system_.network().SignalCongestion(links->front(), 0.2);
  EXPECT_NEAR(r.session->adaptation_fraction(), 0.4, 1e-9);
  EXPECT_EQ(r.session->contract().granted.bandwidth_bps, 4'000'000);
  EXPECT_EQ(r.session->contract().renegotiations, 1);

  // A deeper congestion cut takes over (min wins)...
  system_.network().SignalCongestion(links->front(), 0.7);
  EXPECT_NEAR(r.session->adaptation_fraction(), 0.3, 1e-9);
  EXPECT_EQ(r.session->contract().granted.bandwidth_bps, 3'000'000);

  // ...and lifting only the application limit changes nothing while the
  // network still holds the stream down.
  ASSERT_TRUE(r.session->AdaptTo(1.0).ok());
  EXPECT_NEAR(r.session->adaptation_fraction(), 0.3, 1e-9);

  // Clearing the congestion releases the last limit: full restore.
  system_.network().SignalCongestion(links->front(), 0.0);
  EXPECT_NEAR(r.session->adaptation_fraction(), 1.0, 1e-9);
  EXPECT_EQ(r.session->contract().granted.bandwidth_bps, 10'000'000);

  // Congestion limits are tracked per link: a milder signal (or a clear)
  // on a second link does not lift a deeper cut still in force on the
  // first.
  ASSERT_GE(links->size(), 2u);
  system_.network().SignalCongestion(links->front(), 0.5);
  EXPECT_NEAR(r.session->adaptation_fraction(), 0.5, 1e-9);
  system_.network().SignalCongestion(links->back(), 0.2);
  EXPECT_NEAR(r.session->adaptation_fraction(), 0.5, 1e-9);
  system_.network().SignalCongestion(links->back(), 0.0);
  EXPECT_NEAR(r.session->adaptation_fraction(), 0.5, 1e-9);
  system_.network().SignalCongestion(links->front(), 0.0);
  EXPECT_NEAR(r.session->adaptation_fraction(), 1.0, 1e-9);
  EXPECT_EQ(r.session->contract().granted.bandwidth_bps, 10'000'000);
}

// Manual adaptation of a pipeline scales every leg's bandwidth and every
// unmanaged compute-stage contract in the one renegotiation.
TEST_F(AdaptationFixture, PipelineAdaptationScalesStagesAndLegs) {
  ComputeNode* compute = system_.AddComputeServer();
  nemesis::Kernel compute_kernel(&sim_, std::make_unique<nemesis::AtroposScheduler>(1.0));
  compute->AttachKernel(&compute_kernel);
  dev::AtmCamera::Config cfg;
  dev::AtmCamera* camera = ws_->AddCamera(cfg);
  dev::AtmDisplay* display = ws_->AddDisplay(640, 480);

  StreamSpec spec = StreamSpec::Video(25, 10'000'000);
  spec.legs.resize(2);
  spec.legs[0].compute_cpu = QosParams::Guaranteed(Milliseconds(4), Milliseconds(40));
  dev::TileProcessor::Config stage;
  stage.transform = dev::InvertTransform();
  auto r = system_.BuildStream("fx")
               .From(ws_, camera)
               .Via(compute, stage)
               .To(ws_, display)
               .WithSpec(spec)
               .WithAdaptation(Policy())
               .Open();
  ASSERT_TRUE(r.report.ok());
  EXPECT_NEAR(compute_kernel.scheduler()->AdmittedUtilization(), 0.1, 1e-9);

  ASSERT_TRUE(r.session->AdaptTo(0.5).ok());
  EXPECT_EQ(r.session->legs()[0].granted_bps, 5'000'000);
  EXPECT_EQ(r.session->legs()[1].granted_bps, 5'000'000);
  EXPECT_NEAR(compute_kernel.scheduler()->AdmittedUtilization(), 0.05, 1e-9);
  EXPECT_NEAR(r.session->contract().granted.legs[0].compute_cpu.Utilization(), 0.05, 1e-9);

  ASSERT_TRUE(r.session->AdaptTo(1.0).ok());
  EXPECT_EQ(r.session->legs()[0].granted_bps, 10'000'000);
  EXPECT_NEAR(compute_kernel.scheduler()->AdmittedUtilization(), 0.1, 1e-9);
}

}  // namespace
}  // namespace pegasus::core
