// Tests for the ATM devices: tiles, codec, camera, display, audio, control,
// synchronisation (§2).
#include <gtest/gtest.h>

#include <cmath>

#include "src/atm/network.h"
#include "src/devices/audio.h"
#include "src/devices/camera.h"
#include "src/devices/compression.h"
#include "src/devices/control.h"
#include "src/devices/display.h"
#include "src/devices/frame_source.h"
#include "src/devices/sync.h"
#include "src/devices/tile.h"

namespace pegasus::dev {
namespace {

using sim::Milliseconds;
using sim::Seconds;

TEST(TileTest, PacketSerializationRoundTrip) {
  TilePacket packet;
  packet.frame_no = 42;
  packet.capture_ts = Milliseconds(123);
  for (int i = 0; i < 3; ++i) {
    Tile t;
    t.x = static_cast<uint16_t>(i * 8);
    t.y = 16;
    t.data.assign(kTilePixels, static_cast<uint8_t>(i));
    packet.tiles.push_back(t);
  }
  auto parsed = TilePacket::Parse(packet.Serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->frame_no, 42u);
  EXPECT_EQ(parsed->capture_ts, Milliseconds(123));
  ASSERT_EQ(parsed->tiles.size(), 3u);
  EXPECT_EQ(parsed->tiles[2].x, 16);
  EXPECT_EQ(parsed->tiles[2].data[0], 2);
}

TEST(TileTest, ParseRejectsGarbage) {
  EXPECT_FALSE(TilePacket::Parse({1, 2, 3}).has_value());
  EXPECT_FALSE(TilePacket::Parse({}).has_value());
}

TEST(TileTest, ExtractAndBlitRoundTrip) {
  Frame frame(32, 32);
  for (int y = 0; y < 32; ++y) {
    for (int x = 0; x < 32; ++x) {
      frame.set(x, y, static_cast<uint8_t>(x * 7 + y));
    }
  }
  Tile tile = frame.ExtractTile(8, 16);
  Frame out(32, 32);
  out.BlitTile(tile);
  for (int row = 0; row < 8; ++row) {
    for (int col = 0; col < 8; ++col) {
      EXPECT_EQ(out.at(8 + col, 16 + row), frame.at(8 + col, 16 + row));
    }
  }
  EXPECT_EQ(out.at(0, 0), 0);  // untouched
}

TEST(CompressionTest, SmoothTileCompressesWell) {
  std::vector<uint8_t> pixels(kTilePixels);
  for (int i = 0; i < kTilePixels; ++i) {
    pixels[static_cast<size_t>(i)] = static_cast<uint8_t>(100 + i / 8);  // gentle gradient
  }
  auto compressed = CompressTile(pixels, 60);
  EXPECT_LT(compressed.size(), pixels.size() / 2);
  auto restored = DecompressTile(compressed);
  ASSERT_TRUE(restored.has_value());
  // Lossy but close.
  double err = 0;
  for (int i = 0; i < kTilePixels; ++i) {
    err += std::abs(static_cast<double>((*restored)[static_cast<size_t>(i)]) -
                    static_cast<double>(pixels[static_cast<size_t>(i)]));
  }
  EXPECT_LT(err / kTilePixels, 4.0);
}

TEST(CompressionTest, QualityTradesSizeForFidelity) {
  FrameSource source(64, 64, 0.3);
  Frame frame = source.Render(0);
  Tile tile = frame.ExtractTile(24, 24);
  auto lo = CompressTile(tile.data, 10);
  auto hi = CompressTile(tile.data, 95);
  EXPECT_LT(lo.size(), hi.size());

  auto lo_restored = DecompressTile(lo);
  auto hi_restored = DecompressTile(hi);
  ASSERT_TRUE(lo_restored.has_value());
  ASSERT_TRUE(hi_restored.has_value());
  auto error = [&](const std::vector<uint8_t>& got) {
    double e = 0;
    for (int i = 0; i < kTilePixels; ++i) {
      const double d = static_cast<double>(got[static_cast<size_t>(i)]) -
                       static_cast<double>(tile.data[static_cast<size_t>(i)]);
      e += d * d;
    }
    return e;
  };
  EXPECT_LT(error(*hi_restored), error(*lo_restored));
}

TEST(CompressionTest, DecompressRejectsTruncated) {
  std::vector<uint8_t> pixels(kTilePixels, 99);
  auto compressed = CompressTile(pixels, 60);
  compressed.pop_back();
  EXPECT_FALSE(DecompressTile(compressed).has_value());
  EXPECT_FALSE(DecompressTile({}).has_value());
}

TEST(CompressionTest, InPlaceHelpers) {
  FrameSource source(16, 16, 0.0);
  Frame frame = source.Render(0);
  Tile tile = frame.ExtractTile(0, 0);
  const auto original = tile.data;
  CompressTileInPlace(&tile, CompressionMode::kMotionJpeg, 80);
  EXPECT_TRUE(tile.compressed);
  EXPECT_TRUE(DecompressTileInPlace(&tile));
  EXPECT_FALSE(tile.compressed);
  EXPECT_EQ(tile.data.size(), original.size());
}

class DeviceFixture : public ::testing::Test {
 protected:
  DeviceFixture() : net_(&sim_) {
    sw_ = net_.AddSwitch("sw", 8);
    cam_ep_ = net_.AddEndpoint("cam", sw_, 0, 155'000'000);
    disp_ep_ = net_.AddEndpoint("disp", sw_, 1, 155'000'000);
    audio_in_ep_ = net_.AddEndpoint("audio-in", sw_, 2, 155'000'000);
    audio_out_ep_ = net_.AddEndpoint("audio-out", sw_, 3, 155'000'000);
  }

  sim::Simulator sim_;
  atm::Network net_;
  atm::Switch* sw_;
  atm::Endpoint* cam_ep_;
  atm::Endpoint* disp_ep_;
  atm::Endpoint* audio_in_ep_;
  atm::Endpoint* audio_out_ep_;
};

TEST_F(DeviceFixture, CameraStreamsTilesToDisplay) {
  auto vc = net_.OpenVc(cam_ep_, disp_ep_);
  ASSERT_TRUE(vc.has_value());

  AtmCamera::Config config;
  config.width = 64;
  config.height = 48;
  config.fps = 25;
  AtmCamera camera(&sim_, cam_ep_, config);
  AtmDisplay display(&sim_, disp_ep_, 320, 240);
  WindowManager wm(&display);
  wm.CreateWindow(vc->destination_vci, 10, 10, 64, 48);

  camera.Start(vc->source_vci);
  sim_.RunUntil(Seconds(1));
  camera.Stop();

  EXPECT_GE(camera.frames_captured(), 24u);
  EXPECT_GT(display.tiles_blitted(), 1000);
  EXPECT_EQ(display.decode_errors(), 0u);
  // Pixels landed inside the window...
  EXPECT_NE(display.PixelAt(12, 12), 0);
  // ...and nowhere else.
  EXPECT_EQ(display.PixelAt(200, 200), 0);
  EXPECT_EQ(display.OwnerAt(12, 12), vc->destination_vci);
}

TEST_F(DeviceFixture, TileLatencyFarBelowFrameTime) {
  // E01's claim in miniature: tile emission keeps capture-to-screen latency
  // in the tens-of-microseconds range, far below the 40 ms frame time.
  auto vc = net_.OpenVc(cam_ep_, disp_ep_);
  ASSERT_TRUE(vc.has_value());
  AtmCamera::Config config;
  config.width = 64;
  config.height = 48;
  config.emission = AtmCamera::Emission::kTiles;
  AtmCamera camera(&sim_, cam_ep_, config);
  AtmDisplay display(&sim_, disp_ep_, 320, 240);
  WindowManager wm(&display);
  wm.CreateWindow(vc->destination_vci, 0, 0, 64, 48);
  camera.Start(vc->source_vci);
  sim_.RunUntil(Seconds(1));
  ASSERT_GT(display.tile_latency().count(), 0);
  // Tens of microseconds, as the paper promises — three orders of magnitude
  // below the 40 ms frame time.
  EXPECT_LT(display.tile_latency().Quantile(0.5), 1e5);
  EXPECT_LT(display.tile_latency().max(), 1e6);
}

TEST_F(DeviceFixture, WholeFrameEmissionCostsAFrameTime) {
  auto vc = net_.OpenVc(cam_ep_, disp_ep_);
  ASSERT_TRUE(vc.has_value());
  AtmCamera::Config config;
  config.width = 64;
  config.height = 48;
  config.emission = AtmCamera::Emission::kWholeFrame;
  AtmCamera camera(&sim_, cam_ep_, config);
  AtmDisplay display(&sim_, disp_ep_, 320, 240);
  WindowManager wm(&display);
  wm.CreateWindow(vc->destination_vci, 0, 0, 64, 48);
  camera.Start(vc->source_vci);
  sim_.RunUntil(Seconds(1));
  ASSERT_GT(display.tile_latency().count(), 0);
  // Bands wait for the frame scan to finish: the oldest is nearly a frame
  // time (40 ms) old, the median about half a frame.
  EXPECT_GT(display.tile_latency().Quantile(0.5), 10e6);
  EXPECT_GT(display.tile_latency().max(), 30e6);
}

TEST_F(DeviceFixture, CompressionReducesBandwidth) {
  auto vc1 = net_.OpenVc(cam_ep_, disp_ep_);
  ASSERT_TRUE(vc1.has_value());
  AtmCamera::Config raw;
  raw.width = 64;
  raw.height = 48;
  raw.compression = CompressionMode::kRaw;
  raw.content_noise = 0.0;  // clean scene: what MJPEG is good at
  AtmCamera raw_cam(&sim_, cam_ep_, raw);
  raw_cam.Start(vc1->source_vci);
  sim_.RunUntil(Seconds(1));
  raw_cam.Stop();
  const int64_t raw_bytes = raw_cam.bytes_sent();

  AtmCamera::Config mjpeg = raw;
  mjpeg.compression = CompressionMode::kMotionJpeg;
  mjpeg.jpeg_quality = 60;
  AtmCamera jpeg_cam(&sim_, cam_ep_, mjpeg);
  jpeg_cam.Start(vc1->source_vci);
  sim_.RunUntil(sim_.now() + Seconds(1));
  jpeg_cam.Stop();
  EXPECT_LT(jpeg_cam.bytes_sent(), raw_bytes / 2);
}

TEST_F(DeviceFixture, WindowOcclusionRespectsZOrder) {
  auto vc1 = net_.OpenVc(cam_ep_, disp_ep_);
  auto vc2 = net_.OpenVc(audio_in_ep_, disp_ep_);  // any endpoint will do
  ASSERT_TRUE(vc1.has_value());
  ASSERT_TRUE(vc2.has_value());
  AtmDisplay display(&sim_, disp_ep_, 100, 100);
  WindowManager wm(&display);
  wm.CreateWindow(vc1->destination_vci, 0, 0, 50, 50);
  wm.CreateWindow(vc2->destination_vci, 25, 25, 50, 50);  // on top (later = higher z)
  // Overlap is owned by the second window.
  EXPECT_EQ(display.OwnerAt(30, 30), vc2->destination_vci);
  EXPECT_EQ(display.OwnerAt(10, 10), vc1->destination_vci);
  wm.RaiseWindow(vc1->destination_vci);
  EXPECT_EQ(display.OwnerAt(30, 30), vc1->destination_vci);
  wm.IconifyWindow(vc1->destination_vci);
  EXPECT_EQ(display.OwnerAt(30, 30), vc2->destination_vci);
  EXPECT_EQ(display.OwnerAt(10, 10), atm::kVciUnassigned);
  wm.RestoreWindow(vc1->destination_vci);
  EXPECT_EQ(display.OwnerAt(10, 10), vc1->destination_vci);
}

TEST_F(DeviceFixture, WindowOpsMoveNoPixels) {
  // E14: window management = descriptor edits; media keeps flowing into the
  // moved window without the manager copying a single pixel.
  auto vc = net_.OpenVc(cam_ep_, disp_ep_);
  ASSERT_TRUE(vc.has_value());
  AtmCamera::Config config;
  config.width = 32;
  config.height = 32;
  AtmCamera camera(&sim_, cam_ep_, config);
  AtmDisplay display(&sim_, disp_ep_, 200, 200);
  WindowManager wm(&display);
  wm.CreateWindow(vc->destination_vci, 0, 0, 32, 32);
  camera.Start(vc->source_vci);
  sim_.RunUntil(Milliseconds(200));
  EXPECT_NE(display.PixelAt(5, 5), 0);
  wm.MoveWindow(vc->destination_vci, 100, 100);
  sim_.RunUntil(sim_.now() + Milliseconds(200));
  EXPECT_NE(display.PixelAt(105, 105), 0);
  EXPECT_EQ(display.OwnerAt(5, 5), atm::kVciUnassigned);
  EXPECT_EQ(wm.operations(), 2);
  EXPECT_EQ(display.descriptor_updates(), 2);
}

TEST_F(DeviceFixture, AudioCellsCarryTimestamps) {
  auto vc = net_.OpenVc(audio_in_ep_, audio_out_ep_);
  ASSERT_TRUE(vc.has_value());
  AudioCapture capture(&sim_, audio_in_ep_, 44'100);
  AudioPlayback playback(&sim_, audio_out_ep_, 44'100, Milliseconds(10));
  capture.Start(vc->source_vci);
  sim_.RunUntil(Seconds(1));
  capture.Stop();
  // 44100 / 40 samples-per-cell = ~1102 cells per second.
  EXPECT_NEAR(static_cast<double>(capture.cells_sent()), 1102.0, 5.0);
  EXPECT_GT(playback.cells_played(), 1000);
  EXPECT_EQ(playback.underruns(), 0);
  // End-to-end latency = buffer depth + transport, and the buffer dominates.
  EXPECT_GT(playback.end_to_end_latency().mean(), 9e6);
  EXPECT_LT(playback.end_to_end_latency().mean(), 15e6);
  // The play-out clock is smooth.
  EXPECT_LT(playback.playout_jitter().max(), 1e3);
}

TEST(ControlTest, MessageRoundTrip) {
  ControlMessage msg;
  msg.type = ControlType::kIndexMark;
  msg.stream_id = 7;
  msg.media_ts = Milliseconds(80);
  msg.aux = 123456;
  auto parsed = ControlMessage::Parse(msg.Serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->type, ControlType::kIndexMark);
  EXPECT_EQ(parsed->stream_id, 7u);
  EXPECT_EQ(parsed->media_ts, Milliseconds(80));
  EXPECT_EQ(parsed->aux, 123456);
  EXPECT_FALSE(ControlMessage::Parse({1, 2}).has_value());
}

TEST_F(DeviceFixture, ControlChannelDelivers) {
  auto pair = net_.OpenDuplex(cam_ep_, disp_ep_);
  ASSERT_TRUE(pair.has_value());
  atm::MessageTransport cam_t(cam_ep_);
  atm::MessageTransport disp_t(disp_ep_);
  ControlChannel sender(&cam_t, pair->first.source_vci, pair->second.destination_vci);
  ControlChannel receiver(&disp_t, pair->second.source_vci, pair->first.destination_vci);
  ControlMessage got;
  receiver.set_handler([&](const ControlMessage& m) { got = m; });
  ControlMessage msg;
  msg.type = ControlType::kSeek;
  msg.media_ts = Seconds(3);
  sender.Send(msg);
  sim_.Run();
  EXPECT_EQ(receiver.received(), 1);
  EXPECT_EQ(got.type, ControlType::kSeek);
  EXPECT_EQ(got.media_ts, Seconds(3));
}

TEST(SyncTest, ControllerAlignsSkewedStreams) {
  sim::Simulator sim;
  PlaybackController::Options opts;
  opts.margin = Milliseconds(40);
  PlaybackController controller(&sim, opts);
  const int video = controller.RegisterStream("video");
  const int audio = controller.RegisterStream("audio");

  // Video arrives 25 ms after capture, audio 5 ms after: a 20 ms skew that
  // immediate play-out would expose.
  for (int i = 0; i < 50; ++i) {
    const sim::TimeNs ts = i * Milliseconds(40);
    sim.ScheduleAt(ts + Milliseconds(25), [&, ts]() { controller.OnArrival(video, ts); });
    sim.ScheduleAt(ts + Milliseconds(5), [&, ts]() { controller.OnArrival(audio, ts); });
  }
  sim.Run();
  ASSERT_GT(controller.skew().count(), 0);
  EXPECT_LT(controller.skew().Quantile(0.9), 1e6);  // sub-millisecond skew
  EXPECT_EQ(controller.late_arrivals(), 0);
}

TEST(SyncTest, ImmediateModeExposesSkew) {
  sim::Simulator sim;
  PlaybackController::Options opts;
  opts.mode = PlaybackController::Mode::kImmediate;
  PlaybackController controller(&sim, opts);
  const int video = controller.RegisterStream("video");
  const int audio = controller.RegisterStream("audio");
  for (int i = 0; i < 50; ++i) {
    const sim::TimeNs ts = i * Milliseconds(40);
    sim.ScheduleAt(ts + Milliseconds(25), [&, ts]() { controller.OnArrival(video, ts); });
    sim.ScheduleAt(ts + Milliseconds(5), [&, ts]() { controller.OnArrival(audio, ts); });
  }
  sim.Run();
  ASSERT_GT(controller.skew().count(), 0);
  EXPECT_GT(controller.skew().mean(), 19e6);  // the 20 ms skew shows through
}

TEST(SyncTest, LateArrivalsCountedNotDropped) {
  sim::Simulator sim;
  PlaybackController::Options opts;
  opts.margin = Milliseconds(10);
  PlaybackController controller(&sim, opts);
  const int s = controller.RegisterStream("v");
  controller.OnArrival(s, 0);
  // Sample for ts=40ms arrives at 120ms: past its 50ms due time.
  sim.ScheduleAt(Milliseconds(120), [&]() { controller.OnArrival(s, Milliseconds(40)); });
  sim.Run();
  EXPECT_EQ(controller.late_arrivals(), 1);
  EXPECT_EQ(controller.playouts(), 2);
}

}  // namespace
}  // namespace pegasus::dev
