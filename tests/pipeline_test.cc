// Multi-leg pipeline contracts: camera -> compute -> display admitted
// atomically as ONE contract, joint counter-offers across all failing
// resources, all-or-nothing renegotiation, and teardown that restores
// every layer's capacity.
#include <gtest/gtest.h>

#include <algorithm>

#include "src/core/compute_node.h"
#include "src/core/stream.h"
#include "src/core/system.h"
#include "src/nemesis/atropos.h"
#include "src/nemesis/kernel.h"

namespace pegasus::core {
namespace {

using nemesis::QosParams;
using sim::Milliseconds;
using sim::Seconds;

class PipelineFixture : public ::testing::Test {
 protected:
  PipelineFixture() : system_(&sim_) {
    ws_ = system_.AddWorkstation("desk");
    ws_kernel_ = std::make_unique<nemesis::Kernel>(
        &sim_, std::make_unique<nemesis::AtroposScheduler>(1.0));
    ws_->AttachKernel(ws_kernel_.get());
    compute_ = system_.AddComputeServer();
    compute_kernel_ = std::make_unique<nemesis::Kernel>(
        &sim_, std::make_unique<nemesis::AtroposScheduler>(1.0));
    compute_->AttachKernel(compute_kernel_.get());

    dev::AtmCamera::Config cfg;
    cfg.width = 64;
    cfg.height = 64;
    cfg.fps = 25;
    camera_ = ws_->AddCamera(cfg);
    display_ = ws_->AddDisplay(640, 480);
  }

  // Total bandwidth currently reserved anywhere in the network.
  int64_t TotalReservedBps() {
    int64_t total = 0;
    for (const auto& link : system_.network().links()) {
      total += system_.network().ReservedBandwidth(link.get());
    }
    return total;
  }

  // A 2-leg pipeline spec: bandwidth on both legs, CPU at the filter stage
  // and the sink end.
  StreamSpec PipelineSpec(int64_t bps, sim::DurationNs stage_slice,
                          sim::DurationNs sink_slice) {
    StreamSpec spec = StreamSpec::Video(25, bps);
    spec.legs.resize(2);
    spec.legs[0].compute_cpu = QosParams::Guaranteed(stage_slice, Milliseconds(40));
    spec.sink_cpu = QosParams::Guaranteed(sink_slice, Milliseconds(40));
    return spec;
  }

  StreamResult OpenPipeline(const std::string& name, const StreamSpec& spec) {
    dev::TileProcessor::Config stage;
    stage.transform = dev::InvertTransform();
    stage.per_tile_cost = sim::Microseconds(5);
    return system_.BuildStream(name)
        .From(ws_, camera_)
        .Via(compute_, stage)
        .To(ws_, display_)
        .WithSpec(spec)
        .WithWindow(10, 10)
        .Open();
  }

  sim::Simulator sim_;
  PegasusSystem system_;
  Workstation* ws_ = nullptr;
  ComputeNode* compute_ = nullptr;
  std::unique_ptr<nemesis::Kernel> ws_kernel_;
  std::unique_ptr<nemesis::Kernel> compute_kernel_;
  dev::AtmCamera* camera_ = nullptr;
  dev::AtmDisplay* display_ = nullptr;
};

TEST_F(PipelineFixture, PipelineIsOneContractAcrossAllLayers) {
  auto r = OpenPipeline("fx", PipelineSpec(10'000'000, Milliseconds(4), Milliseconds(2)));
  ASSERT_TRUE(r.report.ok());
  ASSERT_NE(r.session, nullptr);
  ASSERT_EQ(r.session->leg_count(), 2);

  // Both legs carry the reservation on every link: camera->local switch,
  // uplink, backbone->compute, and the mirror path back to the display.
  EXPECT_EQ(TotalReservedBps(), 6 * 10'000'000);
  // The stage's CPU contract lives on the compute node's kernel, the sink
  // handler on the workstation's.
  EXPECT_NEAR(compute_kernel_->scheduler()->AdmittedUtilization(), 0.1, 1e-9);
  EXPECT_NEAR(ws_kernel_->scheduler()->AdmittedUtilization(), 0.05, 1e-9);
  EXPECT_EQ(compute_->active_stages(), 1);
  ASSERT_NE(r.session->legs()[0].processor, nullptr);
  ASSERT_NE(r.session->legs()[0].handler, nullptr);
  EXPECT_EQ(r.session->legs()[0].compute, compute_);
  EXPECT_EQ(r.session->legs()[1].compute, nullptr);
  // The granted contract carries fully explicit legs.
  EXPECT_EQ(r.session->contract().granted.legs[0].bandwidth_bps, 10'000'000);
  EXPECT_EQ(r.session->contract().granted.legs[1].bandwidth_bps, 10'000'000);

  // Media actually flows camera -> filter -> display under the contract.
  camera_->Start(r.session->source_vci());
  sim_.RunUntil(Seconds(1));
  EXPECT_GT(r.session->legs()[0].processor->tiles_processed(), 0);
  EXPECT_GT(display_->tile_latency().count(), 0);
}

TEST_F(PipelineFixture, OverCommittingAnySingleLegRejectsTheWholePipeline) {
  const int64_t base_vcs = system_.network().open_vc_count();
  struct Case {
    const char* name;
    StreamSpec spec;
    AdmitFailure expected;
  };
  std::vector<Case> cases;
  // (a) one leg's bandwidth beyond any link.
  StreamSpec fat_link = PipelineSpec(8'000'000, Milliseconds(4), Milliseconds(2));
  fat_link.legs[0].bandwidth_bps = 500'000'000;
  cases.push_back({"link", fat_link, AdmitFailure::kNetworkBandwidth});
  // (b) the compute stage beyond the node's CPU.
  cases.push_back({"compute",
                   PipelineSpec(8'000'000, Milliseconds(60), Milliseconds(2)),
                   AdmitFailure::kComputeCpu});
  // (c) the sink handler beyond the host's CPU.
  cases.push_back({"sink", PipelineSpec(8'000'000, Milliseconds(4), Milliseconds(60)),
                   AdmitFailure::kSinkCpu});

  for (const Case& c : cases) {
    SCOPED_TRACE(c.name);
    auto r = OpenPipeline(c.name, c.spec);
    EXPECT_FALSE(r.report.ok());
    EXPECT_EQ(r.session, nullptr);
    EXPECT_EQ(r.report.failure, c.expected);
    ASSERT_EQ(r.report.verdict, AdmitVerdict::kCounterOffer);
    ASSERT_TRUE(r.report.counter_offer.has_value());
    // The whole chain was refused: nothing is left allocated anywhere.
    EXPECT_EQ(system_.network().open_vc_count(), base_vcs);
    EXPECT_EQ(TotalReservedBps(), 0);
    EXPECT_EQ(compute_kernel_->scheduler()->AdmittedUtilization(), 0.0);
    EXPECT_EQ(ws_kernel_->scheduler()->AdmittedUtilization(), 0.0);
    EXPECT_EQ(compute_->active_stages(), 0);

    // The counter-offer is itself admissible.
    auto retry = OpenPipeline(std::string(c.name) + "-counter", *r.report.counter_offer);
    ASSERT_TRUE(retry.report.ok());
    retry.session->Close();
  }
}

TEST_F(PipelineFixture, JointCounterOfferCoversAllFailingResourcesInOnePass) {
  StreamSpec greedy = PipelineSpec(500'000'000, Milliseconds(60), Milliseconds(60));
  auto r = OpenPipeline("greedy", greedy);
  EXPECT_FALSE(r.report.ok());
  ASSERT_EQ(r.report.verdict, AdmitVerdict::kCounterOffer);

  // One pass reports every failing resource, not just the first: both legs'
  // bandwidth, the stage CPU and the sink CPU.
  const auto& failures = r.report.failures;
  EXPECT_EQ(static_cast<int>(std::count(failures.begin(), failures.end(),
                                        AdmitFailure::kNetworkBandwidth)),
            2);
  EXPECT_EQ(static_cast<int>(
                std::count(failures.begin(), failures.end(), AdmitFailure::kComputeCpu)),
            1);
  EXPECT_EQ(static_cast<int>(
                std::count(failures.begin(), failures.end(), AdmitFailure::kSinkCpu)),
            1);
  EXPECT_EQ(r.report.failure, AdmitFailure::kNetworkBandwidth);

  // Every failing resource is clamped in the same offer...
  const StreamSpec& offer = *r.report.counter_offer;
  EXPECT_EQ(offer.LegBandwidthBps(0), 155'000'000);
  EXPECT_EQ(offer.LegBandwidthBps(1), 155'000'000);
  EXPECT_LT(offer.LegComputeCpu(0).Utilization(), 1.0);
  EXPECT_GT(offer.LegComputeCpu(0).Utilization(), 0.9);
  EXPECT_LT(offer.sink_cpu.Utilization(), 1.0);
  EXPECT_GT(offer.sink_cpu.Utilization(), 0.9);
  // ...and the offer is jointly admissible verbatim.
  auto retry = OpenPipeline("greedy-counter", offer);
  EXPECT_TRUE(retry.report.ok());
}

TEST_F(PipelineFixture, CloseRestoresEveryLayersCapacity) {
  const int64_t base_vcs = system_.network().open_vc_count();
  auto r = OpenPipeline("fx", PipelineSpec(20'000'000, Milliseconds(8), Milliseconds(4)));
  ASSERT_TRUE(r.report.ok());
  EXPECT_GT(TotalReservedBps(), 0);
  EXPECT_GT(compute_kernel_->scheduler()->AdmittedUtilization(), 0.0);
  EXPECT_GT(ws_kernel_->scheduler()->AdmittedUtilization(), 0.0);
  EXPECT_EQ(compute_->active_stages(), 1);

  r.session->Close();
  EXPECT_FALSE(r.session->active());
  EXPECT_EQ(TotalReservedBps(), 0);
  EXPECT_EQ(compute_kernel_->scheduler()->AdmittedUtilization(), 0.0);
  EXPECT_EQ(ws_kernel_->scheduler()->AdmittedUtilization(), 0.0);
  EXPECT_EQ(compute_->active_stages(), 0);
  EXPECT_EQ(system_.network().open_vc_count(), base_vcs);

  // Idempotent: a second Close releases nothing twice.
  r.session->Close();
  EXPECT_EQ(TotalReservedBps(), 0);
  EXPECT_EQ(system_.network().open_vc_count(), base_vcs);
}

TEST_F(PipelineFixture, RenegotiateScalesTheWholePipelineAtomically) {
  auto r = OpenPipeline("fx", PipelineSpec(10'000'000, Milliseconds(4), Milliseconds(2)));
  ASSERT_TRUE(r.report.ok());

  // Scale every layer up in one renegotiation.
  StreamSpec more = r.session->contract().granted;
  more.legs[0].bandwidth_bps = 30'000'000;
  more.legs[1].bandwidth_bps = 20'000'000;
  more.legs[0].compute_cpu = QosParams::Guaranteed(Milliseconds(8), Milliseconds(40));
  more.sink_cpu = QosParams::Guaranteed(Milliseconds(6), Milliseconds(40));
  ASSERT_TRUE(r.session->Renegotiate(more).ok());
  EXPECT_EQ(r.session->legs()[0].granted_bps, 30'000'000);
  EXPECT_EQ(r.session->legs()[1].granted_bps, 20'000'000);
  EXPECT_EQ(TotalReservedBps(), 3 * 30'000'000 + 3 * 20'000'000);
  EXPECT_NEAR(compute_kernel_->scheduler()->AdmittedUtilization(), 0.2, 1e-9);
  EXPECT_NEAR(ws_kernel_->scheduler()->AdmittedUtilization(), 0.15, 1e-9);
  EXPECT_EQ(r.session->contract().renegotiations, 1);
  // The camera is re-paced to the first leg's grant.
  EXPECT_EQ(camera_->config().pace_bps, 30'000'000);

  // The stream-wide bandwidth knob plays no part in pipeline renegotiation
  // and is not echoed into the granted contract.
  StreamSpec noop = r.session->contract().granted;
  noop.bandwidth_bps = 999;
  ASSERT_TRUE(r.session->Renegotiate(noop).ok());
  EXPECT_EQ(r.session->contract().granted.bandwidth_bps, 10'000'000);
  EXPECT_EQ(r.session->legs()[0].granted_bps, 30'000'000);

  // And back down; the freed capacity is admissible again.
  StreamSpec back = r.session->contract().granted;
  back.legs[0].bandwidth_bps = 10'000'000;
  back.legs[1].bandwidth_bps = 10'000'000;
  back.legs[0].compute_cpu = QosParams::Guaranteed(Milliseconds(4), Milliseconds(40));
  back.sink_cpu = QosParams::Guaranteed(Milliseconds(2), Milliseconds(40));
  ASSERT_TRUE(r.session->Renegotiate(back).ok());
  EXPECT_EQ(TotalReservedBps(), 6 * 10'000'000);
  EXPECT_NEAR(compute_kernel_->scheduler()->AdmittedUtilization(), 0.1, 1e-9);
  EXPECT_NEAR(ws_kernel_->scheduler()->AdmittedUtilization(), 0.05, 1e-9);
}

// Regression: a failed renegotiation is all-or-nothing — the original
// contract stays fully bound on every layer, and a later Close releases
// each layer exactly once.
TEST_F(PipelineFixture, FailedRenegotiateLeavesContractIntactAndCloseReleasesOnce) {
  const int64_t base_vcs = system_.network().open_vc_count();
  auto r = OpenPipeline("fx", PipelineSpec(10'000'000, Milliseconds(4), Milliseconds(2)));
  ASSERT_TRUE(r.report.ok());
  const int64_t reserved_before = TotalReservedBps();
  const double compute_util_before = compute_kernel_->scheduler()->AdmittedUtilization();
  const double ws_util_before = ws_kernel_->scheduler()->AdmittedUtilization();

  // Ask for the impossible on several layers at once.
  StreamSpec impossible = r.session->contract().granted;
  impossible.legs[0].bandwidth_bps = 900'000'000;
  impossible.legs[0].compute_cpu = QosParams::Guaranteed(Milliseconds(80), Milliseconds(40));
  impossible.sink_cpu = QosParams::Guaranteed(Milliseconds(80), Milliseconds(40));
  auto refused = r.session->Renegotiate(impossible);
  EXPECT_FALSE(refused.ok());
  EXPECT_GE(refused.failures.size(), 3u);

  // Every layer still holds exactly the original contract.
  EXPECT_TRUE(r.session->active());
  EXPECT_EQ(TotalReservedBps(), reserved_before);
  EXPECT_EQ(compute_kernel_->scheduler()->AdmittedUtilization(), compute_util_before);
  EXPECT_EQ(ws_kernel_->scheduler()->AdmittedUtilization(), ws_util_before);
  EXPECT_EQ(r.session->contract().granted.legs[0].bandwidth_bps, 10'000'000);
  EXPECT_EQ(r.session->contract().renegotiations, 0);
  EXPECT_EQ(compute_->active_stages(), 1);
  // All legs remain bound: their VCs still exist.
  for (const auto& leg : r.session->legs()) {
    EXPECT_NE(system_.network().GetVc(leg.vc), nullptr);
  }
  // The joint counter-offer covers the failing layers and is admissible.
  ASSERT_TRUE(refused.counter_offer.has_value());
  EXPECT_TRUE(r.session->Renegotiate(*refused.counter_offer).ok());

  // Close after the failed (then successful) renegotiation releases every
  // layer exactly once.
  r.session->Close();
  EXPECT_EQ(TotalReservedBps(), 0);
  EXPECT_EQ(compute_kernel_->scheduler()->AdmittedUtilization(), 0.0);
  EXPECT_EQ(ws_kernel_->scheduler()->AdmittedUtilization(), 0.0);
  EXPECT_EQ(system_.network().open_vc_count(), base_vcs);
  EXPECT_EQ(compute_->active_stages(), 0);
  r.session->Close();
  EXPECT_EQ(TotalReservedBps(), 0);
  EXPECT_EQ(system_.network().open_vc_count(), base_vcs);
}

// A failed renegotiation of a recording stream must not touch the PFS
// reservation either (the old implementation released-and-re-reserved).
TEST_F(PipelineFixture, FailedRenegotiateKeepsDiskReservation) {
  pfs::PfsConfig pfs_cfg;
  pfs_cfg.segment_size = 64 << 10;
  pfs_cfg.block_size = 8 << 10;
  pfs_cfg.geometry.capacity_bytes = 64 << 20;
  StorageNode* storage = system_.AddStorageServer(pfs_cfg);

  StreamSpec spec = StreamSpec::Video(25, 10'000'000);
  spec.disk_bps = 1'000'000;
  auto r = system_.BuildStream("rec")
               .FromEndpoint(ws_, ws_->device_endpoint(camera_))
               .ToStorage(storage)
               .WithSpec(spec)
               .Open();
  ASSERT_TRUE(r.report.ok());
  EXPECT_EQ(storage->server()->reserved_stream_bps(), 1'000'000);

  StreamSpec impossible = r.session->contract().granted;
  impossible.disk_bps = storage->server()->StreamBudgetBps() * 2;
  impossible.bandwidth_bps = 900'000'000;
  auto refused = r.session->Renegotiate(impossible);
  EXPECT_FALSE(refused.ok());
  EXPECT_GE(refused.failures.size(), 2u);
  // The original disk reservation is untouched.
  EXPECT_EQ(storage->server()->reserved_stream_bps(), 1'000'000);

  r.session->Close();
  EXPECT_EQ(storage->server()->reserved_stream_bps(), 0);
}

}  // namespace
}  // namespace pegasus::core
