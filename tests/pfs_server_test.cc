// Tests for the Pegasus file-server core layer, cleaner, failure model,
// client agent and continuous-media streams (§5).
#include <gtest/gtest.h>

#include <numeric>

#include "src/pfs/client.h"
#include "src/pfs/server.h"
#include "src/sim/event_queue.h"

namespace pegasus::pfs {
namespace {

using sim::Milliseconds;
using sim::Seconds;

PfsConfig TestConfig() {
  PfsConfig cfg;
  cfg.segment_size = 64 << 10;
  cfg.block_size = 8 << 10;
  cfg.geometry.capacity_bytes = 64 << 20;
  cfg.write_back_delay = Seconds(30);
  return cfg;
}

std::vector<uint8_t> Pattern(int64_t len, uint8_t seed) {
  std::vector<uint8_t> v(static_cast<size_t>(len));
  for (size_t i = 0; i < v.size(); ++i) {
    v[i] = static_cast<uint8_t>(seed + i * 13);
  }
  return v;
}

class ServerFixture : public ::testing::Test {
 protected:
  ServerFixture() : server_(&sim_, TestConfig()) {}

  // Convenience synchronous wrappers (they pump the simulator).
  bool WriteSync(FileId f, int64_t off, std::vector<uint8_t> data) {
    bool result = false;
    bool done = false;
    server_.Write(f, off, std::move(data), [&](bool ok) {
      result = ok;
      done = true;
    });
    sim_.RunUntilPredicate([&]() { return done; });
    return result;
  }

  std::pair<bool, std::vector<uint8_t>> ReadSync(FileId f, int64_t off, int64_t len) {
    std::pair<bool, std::vector<uint8_t>> out{false, {}};
    bool done = false;
    server_.Read(f, off, len, [&](bool ok, std::vector<uint8_t> data) {
      out = {ok, std::move(data)};
      done = true;
    });
    sim_.RunUntilPredicate([&]() { return done; });
    return out;
  }

  void SyncAll() {
    bool done = false;
    server_.Sync([&]() { done = true; });
    sim_.RunUntilPredicate([&]() { return done; });
  }

  void CheckpointSync() {
    bool done = false;
    server_.Checkpoint([&]() { done = true; });
    sim_.RunUntilPredicate([&]() { return done; });
  }

  CleanStats CleanSync(bool full_scan = false) {
    CleanStats stats;
    bool done = false;
    auto cb = [&](CleanStats s) {
      stats = s;
      done = true;
    };
    if (full_scan) {
      server_.CleanFullScan(cb);
    } else {
      server_.Clean(cb);
    }
    sim_.RunUntilPredicate([&]() { return done; });
    return stats;
  }

  sim::Simulator sim_;
  PegasusFileServer server_;
};

TEST_F(ServerFixture, WriteReadRoundTripFromBuffer) {
  FileId f = server_.CreateFile(FileType::kNormal);
  auto data = Pattern(10000, 7);
  EXPECT_TRUE(WriteSync(f, 0, data));
  EXPECT_EQ(server_.FileSize(f), 10000);
  auto [ok, got] = ReadSync(f, 0, 10000);
  EXPECT_TRUE(ok);
  EXPECT_EQ(got, data);
  // Nothing has touched the disk yet: the data is in the open segment.
  EXPECT_EQ(server_.segments_written(), 0);
  EXPECT_GT(server_.buffered_bytes(), 0);
}

TEST_F(ServerFixture, WriteReadRoundTripFromDisk) {
  FileId f = server_.CreateFile(FileType::kNormal);
  auto data = Pattern(20000, 3);
  EXPECT_TRUE(WriteSync(f, 0, data));
  SyncAll();
  EXPECT_EQ(server_.buffered_bytes(), 0);
  EXPECT_GE(server_.segments_written(), 1);
  auto [ok, got] = ReadSync(f, 0, 20000);
  EXPECT_TRUE(ok);
  EXPECT_EQ(got, data);
}

TEST_F(ServerFixture, UnalignedWritesAndReads) {
  FileId f = server_.CreateFile(FileType::kNormal);
  EXPECT_TRUE(WriteSync(f, 5000, Pattern(1000, 1)));
  SyncAll();
  // Read-modify-write against the on-disk block.
  EXPECT_TRUE(WriteSync(f, 5500, Pattern(100, 9)));
  auto [ok, got] = ReadSync(f, 4990, 1020);
  EXPECT_TRUE(ok);
  // Hole before 5000 reads zero.
  EXPECT_EQ(got[0], 0);
  EXPECT_EQ(got[9], 0);
  EXPECT_EQ(got[10], Pattern(1000, 1)[0]);
  // Overwritten region.
  EXPECT_EQ(got[510], Pattern(100, 9)[0]);
  // Tail of the original write survives the RMW (got[610] is file offset
  // 5600, i.e. index 600 of the pattern written at 5000).
  EXPECT_EQ(got[610], Pattern(1000, 1)[600]);
}

TEST_F(ServerFixture, HolesReadAsZeros) {
  FileId f = server_.CreateFile(FileType::kNormal);
  EXPECT_TRUE(WriteSync(f, 100 * 8192, Pattern(8192, 2)));
  auto [ok, got] = ReadSync(f, 0, 8192);
  EXPECT_TRUE(ok);
  EXPECT_EQ(got, std::vector<uint8_t>(8192, 0));
}

TEST_F(ServerFixture, MemoryPressureFlushesOldestBlocks) {
  // A small write buffer: the oldest segment's worth spills early even
  // though the write-back window has not elapsed.
  PfsConfig cfg = TestConfig();
  cfg.max_buffered_bytes = 64 << 10;  // one segment of buffer
  PegasusFileServer server(&sim_, cfg);
  FileId f = server.CreateFile(FileType::kNormal);
  bool done = false;
  server.Write(f, 0, Pattern(16 * 8192, 4), [&](bool) { done = true; });
  sim_.RunUntilPredicate([&]() { return done; });
  sim_.RunUntil(sim_.now() + Seconds(1));
  EXPECT_GE(server.segments_written(), 1);
  // The young blocks are still buffered, awaiting the 30 s window.
  EXPECT_GT(server.buffered_bytes(), 0);
  EXPECT_LE(server.buffered_bytes(), cfg.max_buffered_bytes);
}

TEST_F(ServerFixture, DelayedWriteTimerFlushes) {
  FileId f = server_.CreateFile(FileType::kNormal);
  EXPECT_TRUE(WriteSync(f, 0, Pattern(100, 5)));
  EXPECT_EQ(server_.segments_written(), 0);
  sim_.RunUntil(sim_.now() + Seconds(31));
  EXPECT_EQ(server_.segments_written(), 1);
  EXPECT_EQ(server_.buffered_bytes(), 0);
}

TEST_F(ServerFixture, OverwriteBeforeFlushSavesDiskWrites) {
  FileId f = server_.CreateFile(FileType::kNormal);
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(WriteSync(f, 0, Pattern(8192, static_cast<uint8_t>(i))));
  }
  SyncAll();
  // Ten writes of the same block produced one disk block and no garbage:
  // nine died in memory — the delayed-write benefit of §5.
  EXPECT_EQ(server_.blocks_written_to_disk(), 1);
  EXPECT_EQ(server_.blocks_died_in_buffer(), 9);
  EXPECT_EQ(server_.garbage_bytes(), 0);
}

TEST_F(ServerFixture, OverwriteAfterFlushCreatesGarbage) {
  FileId f = server_.CreateFile(FileType::kNormal);
  EXPECT_TRUE(WriteSync(f, 0, Pattern(8192, 1)));
  SyncAll();
  EXPECT_TRUE(WriteSync(f, 0, Pattern(8192, 2)));
  SyncAll();
  EXPECT_EQ(server_.garbage_entries(), 1);
  EXPECT_EQ(server_.garbage_bytes(), 8192);
  // The fresh copy wins.
  auto [ok, got] = ReadSync(f, 0, 8192);
  EXPECT_TRUE(ok);
  EXPECT_EQ(got, Pattern(8192, 2));
}

TEST_F(ServerFixture, DeleteCreatesGarbageAndRemovesFile) {
  FileId f = server_.CreateFile(FileType::kNormal);
  EXPECT_TRUE(WriteSync(f, 0, Pattern(3 * 8192, 1)));
  SyncAll();
  EXPECT_TRUE(server_.Delete(f));
  EXPECT_EQ(server_.garbage_entries(), 3);
  EXPECT_FALSE(server_.FileTypeOf(f).has_value());
  auto [ok, got] = ReadSync(f, 0, 100);
  EXPECT_FALSE(ok);
}

TEST_F(ServerFixture, CleanerReclaimsDeletedSegments) {
  FileId f = server_.CreateFile(FileType::kNormal);
  EXPECT_TRUE(WriteSync(f, 0, Pattern(16 * 8192, 1)));  // two full segments
  SyncAll();
  const int64_t free_before = server_.free_segments();
  server_.Delete(f);
  CleanStats stats = CleanSync();
  EXPECT_EQ(stats.entries_processed, 16);
  EXPECT_EQ(stats.segments_cleaned, 2);
  EXPECT_EQ(stats.live_bytes_copied, 0);  // fully dead: freed without copying
  EXPECT_EQ(server_.free_segments(), free_before + 2);
  EXPECT_EQ(server_.garbage_entries(), 0);  // garbage file truncated
}

TEST_F(ServerFixture, CleanerRelocatesLiveData) {
  FileId dead = server_.CreateFile(FileType::kNormal);
  FileId live = server_.CreateFile(FileType::kNormal);
  // Interleave blocks of the two files so segments hold a mix.
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(WriteSync(dead, i * 8192, Pattern(8192, 0xD0)));
    EXPECT_TRUE(WriteSync(live, i * 8192, Pattern(8192, static_cast<uint8_t>(i))));
  }
  SyncAll();
  server_.Delete(dead);
  CleanStats stats = CleanSync();
  EXPECT_GT(stats.live_bytes_copied, 0);
  EXPECT_GT(stats.bytes_reclaimed, 0);
  // The live file still reads back intact after relocation.
  for (int i = 0; i < 8; ++i) {
    auto [ok, got] = ReadSync(live, i * 8192, 8192);
    EXPECT_TRUE(ok);
    EXPECT_EQ(got, Pattern(8192, static_cast<uint8_t>(i)));
  }
  EXPECT_EQ(server_.garbage_entries(), 0);
}

TEST_F(ServerFixture, CleanerCostIndependentOfStoreSize) {
  // The paper's scaling claim: the garbage-file cleaner touches only dirty
  // segments, while the full-scan baseline examines every segment.
  FileId f = server_.CreateFile(FileType::kNormal);
  EXPECT_TRUE(WriteSync(f, 0, Pattern(8 * 8192, 1)));
  SyncAll();
  server_.Delete(f);
  CleanStats garbage_file = CleanSync();
  EXPECT_EQ(garbage_file.segments_examined, 1);

  FileId g = server_.CreateFile(FileType::kNormal);
  EXPECT_TRUE(WriteSync(g, 0, Pattern(8 * 8192, 2)));
  SyncAll();
  server_.Delete(g);
  CleanStats full = CleanSync(/*full_scan=*/true);
  // 64 MiB store at 16 KiB chunks = 4096 segments, all examined.
  EXPECT_EQ(full.segments_examined, server_.total_segments());
  EXPECT_GT(full.segments_examined, 1000);
}

TEST_F(ServerFixture, ConcurrentWritesDuringCleanSurvive) {
  FileId dead = server_.CreateFile(FileType::kNormal);
  FileId live = server_.CreateFile(FileType::kNormal);
  EXPECT_TRUE(WriteSync(dead, 0, Pattern(8 * 8192, 1)));
  EXPECT_TRUE(WriteSync(live, 0, Pattern(8 * 8192, 2)));
  SyncAll();
  server_.Delete(dead);
  bool clean_done = false;
  server_.Clean([&](CleanStats) { clean_done = true; });
  // New work arrives while the cleaner runs.
  bool write_done = false;
  server_.Write(live, 8 * 8192, Pattern(8192, 3), [&](bool) { write_done = true; });
  sim_.RunUntilPredicate([&]() { return clean_done && write_done; });
  SyncAll();
  auto [ok, got] = ReadSync(live, 8 * 8192, 8192);
  EXPECT_TRUE(ok);
  EXPECT_EQ(got, Pattern(8192, 3));
  // Garbage created during the clean (none here) would stay after marker; at
  // minimum the pre-clean garbage is gone.
  EXPECT_EQ(server_.garbage_bytes(), 0);
}

TEST_F(ServerFixture, CrashLosesBufferedDataKeepsDurable) {
  FileId f = server_.CreateFile(FileType::kNormal);
  EXPECT_TRUE(WriteSync(f, 0, Pattern(8192, 1)));
  SyncAll();  // durable + checkpointed
  EXPECT_TRUE(WriteSync(f, 8192, Pattern(8192, 2)));  // only buffered
  server_.Crash();
  EXPECT_TRUE(server_.crashed());
  bool recovered = false;
  server_.Recover([&](bool ok) { recovered = ok; });
  sim_.RunUntilPredicate([&]() { return recovered; });
  auto [ok1, got1] = ReadSync(f, 0, 8192);
  EXPECT_TRUE(ok1);
  EXPECT_EQ(got1, Pattern(8192, 1));  // durable data survived
  auto [ok2, got2] = ReadSync(f, 8192, 8192);
  EXPECT_TRUE(ok2);
  EXPECT_EQ(got2, std::vector<uint8_t>(8192, 0));  // buffered data lost
}

TEST_F(ServerFixture, PowerFailureWithUpsFlushesBuffers) {
  FileId f = server_.CreateFile(FileType::kNormal);
  EXPECT_TRUE(WriteSync(f, 0, Pattern(8192, 7)));
  bool halted = false;
  server_.PowerFailure(/*has_ups=*/true, [&]() { halted = true; });
  sim_.RunUntilPredicate([&]() { return halted; });
  bool recovered = false;
  server_.Recover([&](bool ok) { recovered = ok; });
  sim_.RunUntilPredicate([&]() { return recovered; });
  auto [ok, got] = ReadSync(f, 0, 8192);
  EXPECT_TRUE(ok);
  EXPECT_EQ(got, Pattern(8192, 7));  // the UPS window saved the buffer
}

TEST_F(ServerFixture, PowerFailureWithoutUpsLosesBuffers) {
  FileId f = server_.CreateFile(FileType::kNormal);
  CheckpointSync();  // the file's existence is durable, its data is not
  EXPECT_TRUE(WriteSync(f, 0, Pattern(8192, 7)));
  bool halted = false;
  server_.PowerFailure(/*has_ups=*/false, [&]() { halted = true; });
  sim_.RunUntilPredicate([&]() { return halted; });
  bool recovered = false;
  server_.Recover([&](bool ok) { recovered = ok; });
  sim_.RunUntilPredicate([&]() { return recovered; });
  auto [ok, got] = ReadSync(f, 0, 8192);
  EXPECT_TRUE(ok);
  EXPECT_EQ(got, std::vector<uint8_t>(8192, 0));  // buffered data is gone
}

TEST_F(ServerFixture, StreamReservationAdmissionControl) {
  FileId f = server_.CreateFile(FileType::kContinuous);
  // Budget: 4 disks * 5 MiB/s * 0.8 = 16.78 MB/s.
  EXPECT_TRUE(server_.ReserveStream(f, 10'000'000));
  FileId g = server_.CreateFile(FileType::kContinuous);
  EXPECT_FALSE(server_.ReserveStream(g, 10'000'000));
  server_.ReleaseStream(f);
  EXPECT_TRUE(server_.ReserveStream(g, 10'000'000));
}

TEST_F(ServerFixture, IndexLookupFindsNearestEntry) {
  FileId f = server_.CreateFile(FileType::kContinuous);
  EXPECT_TRUE(server_.AppendIndexEntry(f, Seconds(0), 0));
  EXPECT_TRUE(server_.AppendIndexEntry(f, Seconds(1), 100000));
  EXPECT_TRUE(server_.AppendIndexEntry(f, Seconds(2), 200000));
  EXPECT_EQ(server_.LookupIndex(f, Seconds(1)), 100000);
  EXPECT_EQ(server_.LookupIndex(f, Seconds(1) + Milliseconds(500)), 100000);
  EXPECT_EQ(server_.LookupIndex(f, Seconds(5)), 200000);
  EXPECT_FALSE(server_.LookupIndex(f, -1).has_value());
  EXPECT_FALSE(server_.LookupIndex(9999, 0).has_value());
}

TEST_F(ServerFixture, StreamReaderDeliversAtRate) {
  FileId f = server_.CreateFile(FileType::kContinuous);
  // Half a megabyte of "video".
  EXPECT_TRUE(WriteSync(f, 0, Pattern(512 << 10, 1)));
  SyncAll();
  int64_t bytes = 0;
  StreamReader reader(&sim_, &server_, f, 64 << 10, Milliseconds(40),
                      [&](bool ok, std::vector<uint8_t> data, sim::TimeNs) {
                        EXPECT_TRUE(ok);
                        bytes += static_cast<int64_t>(data.size());
                      });
  reader.Start();
  sim_.RunUntil(sim_.now() + Seconds(2));
  EXPECT_EQ(reader.chunks_delivered(), 8);  // 512K / 64K
  EXPECT_EQ(bytes, 512 << 10);
  EXPECT_EQ(reader.deadline_misses(), 0);
}

TEST_F(ServerFixture, StreamSeekViaIndex) {
  FileId f = server_.CreateFile(FileType::kContinuous);
  EXPECT_TRUE(WriteSync(f, 0, Pattern(256 << 10, 1)));
  SyncAll();
  // "Frame" index: 25 fps, 10 KiB per frame.
  for (int i = 0; i < 25; ++i) {
    server_.AppendIndexEntry(f, i * Milliseconds(40), i * 10240);
  }
  auto offset = server_.LookupIndex(f, Milliseconds(400));
  ASSERT_TRUE(offset.has_value());
  EXPECT_EQ(*offset, 10 * 10240);
  std::vector<uint8_t> first_chunk;
  StreamReader reader(&sim_, &server_, f, 10240, Milliseconds(40),
                      [&](bool, std::vector<uint8_t> data, sim::TimeNs) {
                        if (first_chunk.empty()) {
                          first_chunk = std::move(data);
                        }
                      });
  reader.Start(*offset);
  sim_.RunUntil(sim_.now() + Milliseconds(200));
  reader.Stop();
  ASSERT_EQ(first_chunk.size(), 10240u);
  EXPECT_EQ(first_chunk[0], Pattern(256 << 10, 1)[10 * 10240]);
}

class ClientFixture : public ServerFixture {
 protected:
  ClientFixture() : agent_(&sim_, &server_, ClientAgent::Options{}) {}

  bool AgentWrite(FileId f, int64_t off, std::vector<uint8_t> data) {
    bool result = false;
    bool done = false;
    agent_.Write(f, off, std::move(data), [&](bool ok) {
      result = ok;
      done = true;
    });
    sim_.RunUntilPredicate([&]() { return done; });
    return result;
  }

  std::pair<bool, std::vector<uint8_t>> AgentRead(FileId f, int64_t off, int64_t len) {
    std::pair<bool, std::vector<uint8_t>> out{false, {}};
    bool done = false;
    agent_.Read(f, off, len, [&](bool ok, std::vector<uint8_t> data) {
      out = {ok, std::move(data)};
      done = true;
    });
    sim_.RunUntilPredicate([&]() { return done; });
    return out;
  }

  ClientAgent agent_;
};

TEST_F(ClientFixture, WriteAcksBeforeDurable) {
  FileId f = server_.CreateFile(FileType::kNormal);
  EXPECT_TRUE(AgentWrite(f, 0, Pattern(8192, 1)));
  // Acked but not flushed: the agent still holds the safety copy.
  EXPECT_EQ(agent_.unflushed_writes(), 1);
  EXPECT_EQ(server_.segments_written(), 0);
  SyncAll();
  sim_.RunUntil(sim_.now() + Milliseconds(10));
  // Durable notification released the copy.
  EXPECT_EQ(agent_.unflushed_writes(), 0);
}

TEST_F(ClientFixture, ServerCrashThenResendPreservesData) {
  FileId f = server_.CreateFile(FileType::kNormal);
  CheckpointSync();  // file creation reaches the checkpoint
  EXPECT_TRUE(AgentWrite(f, 0, Pattern(8192, 5)));
  server_.Crash();
  bool recovered = false;
  server_.Recover([&](bool ok) { recovered = ok; });
  sim_.RunUntilPredicate([&]() { return recovered; });
  // The write was lost with the server's volatile buffer...
  auto [ok0, got0] = ReadSync(f, 0, 8192);
  EXPECT_TRUE(ok0);
  EXPECT_EQ(got0, std::vector<uint8_t>(8192, 0));
  // ...but the agent's copy survives the single-point failure.
  bool resent = false;
  agent_.ResendUnacknowledged([&]() { resent = true; });
  sim_.RunUntilPredicate([&]() { return resent; });
  EXPECT_GT(agent_.resends(), 0);
  auto [ok, got] = ReadSync(f, 0, 8192);
  EXPECT_TRUE(ok);
  EXPECT_EQ(got, Pattern(8192, 5));
}

TEST_F(ClientFixture, ClientCrashServerCompletesWrite) {
  FileId f = server_.CreateFile(FileType::kNormal);
  EXPECT_TRUE(AgentWrite(f, 0, Pattern(8192, 6)));
  // The client machine dies; the server already has the data and completes
  // the write on its own.
  agent_.ClientCrash();
  EXPECT_EQ(agent_.unflushed_writes(), 0);
  SyncAll();
  auto [ok, got] = ReadSync(f, 0, 8192);
  EXPECT_TRUE(ok);
  EXPECT_EQ(got, Pattern(8192, 6));
}

TEST_F(ClientFixture, CacheServesRepeatedReads) {
  FileId f = server_.CreateFile(FileType::kNormal);
  EXPECT_TRUE(WriteSync(f, 0, Pattern(4 * 8192, 3)));
  SyncAll();
  auto first = AgentRead(f, 0, 4 * 8192);
  EXPECT_TRUE(first.first);
  const int64_t misses_after_first = agent_.cache().misses();
  const sim::TimeNs t0 = sim_.now();
  auto second = AgentRead(f, 0, 4 * 8192);
  EXPECT_TRUE(second.first);
  EXPECT_EQ(second.second, first.second);
  EXPECT_EQ(agent_.cache().misses(), misses_after_first);  // pure cache hit
  EXPECT_GT(agent_.cache().hits(), 0);
  // And it was instantaneous: no network, no disk.
  EXPECT_EQ(sim_.now(), t0);
}

TEST_F(ClientFixture, ContinuousFilesBypassCache) {
  FileId f = server_.CreateFile(FileType::kContinuous);
  EXPECT_TRUE(WriteSync(f, 0, Pattern(4 * 8192, 3)));
  SyncAll();
  AgentRead(f, 0, 4 * 8192);
  AgentRead(f, 0, 4 * 8192);
  EXPECT_EQ(agent_.cache().hits(), 0);  // §5: caching video is counterproductive
  EXPECT_EQ(agent_.cache().size_bytes(), 0);
}

TEST(BlockCacheTest, LruEvictionOrder) {
  BlockCache cache(3 * 100);
  cache.Put(1, 0, std::vector<uint8_t>(100, 1));
  cache.Put(1, 1, std::vector<uint8_t>(100, 2));
  cache.Put(1, 2, std::vector<uint8_t>(100, 3));
  std::vector<uint8_t> out;
  EXPECT_TRUE(cache.Get(1, 0, &out));  // touch block 0: block 1 is now LRU
  cache.Put(1, 3, std::vector<uint8_t>(100, 4));
  EXPECT_EQ(cache.evictions(), 1);
  EXPECT_FALSE(cache.Get(1, 1, &out));  // evicted
  EXPECT_TRUE(cache.Get(1, 0, &out));
  EXPECT_TRUE(cache.Get(1, 3, &out));
}

TEST(BlockCacheTest, InvalidateFileRemovesAllItsBlocks) {
  BlockCache cache(1000);
  cache.Put(1, 0, std::vector<uint8_t>(100, 1));
  cache.Put(2, 0, std::vector<uint8_t>(100, 2));
  cache.InvalidateFile(1);
  std::vector<uint8_t> out;
  EXPECT_FALSE(cache.Get(1, 0, &out));
  EXPECT_TRUE(cache.Get(2, 0, &out));
}

}  // namespace
}  // namespace pegasus::pfs
