// E03 — Desk-Area-Network data path vs bus-based workstation (§2, Figs 1, 4).
//
// "When video flows from a camera in one system to a display in another ...
// no processors need to process any video data. Hence the processors in the
// workstations, at both the camera and display, only need to manage the
// connections and devices."
#include "bench/bench_util.h"
#include "src/core/system.h"

using namespace pegasus;

int main() {
  bench::PrintHeader("E03", "DAN media path: zero CPU on the media path",
                     "direct switch connections mean no processor touches media cells; a "
                     "bus architecture forwards every cell through host software");

  sim::Table table({"architecture", "cells thru host", "host CPU time", "median latency",
                    "p99 latency"});

  // --- DAN: camera -> display straight through the switch ---
  double dan_median = 0;
  double dan_p99 = 0;
  {
    sim::Simulator sim;
    core::PegasusSystem system(&sim);
    core::Workstation* ws = system.AddWorkstation("dan");
    dev::AtmCamera::Config cfg;
    cfg.width = 160;
    cfg.height = 120;
    dev::AtmCamera* camera = ws->AddCamera(cfg);
    dev::AtmDisplay* display = ws->AddDisplay(640, 480);
    auto s = system.BuildStream("dan").From(ws, camera).To(ws, display).WithWindow(0, 0).Open();
    camera->Start(s.session->source_vci());
    sim.RunUntil(sim::Seconds(2));
    dan_median = display->tile_latency().Quantile(0.5);
    dan_p99 = display->tile_latency().Quantile(0.99);
    table.AddRow({"DAN (Pegasus)",
                  sim::Table::Int(static_cast<long long>(ws->host()->cells_received())),
                  "0ns",
                  sim::FormatDuration(static_cast<sim::DurationNs>(dan_median)),
                  sim::FormatDuration(static_cast<sim::DurationNs>(dan_p99))});
  }

  // --- Bus: every cell crosses the host NIC and is relayed in software ---
  double bus_median = 0;
  sim::DurationNs bus_cpu = 0;
  int64_t bus_cells = 0;
  for (sim::DurationNs per_cell : {sim::Microseconds(5), sim::Microseconds(10)}) {
    sim::Simulator sim;
    core::PegasusSystem system(&sim);
    core::Workstation* ws = system.AddWorkstation("bus");
    dev::AtmCamera::Config cfg;
    cfg.width = 160;
    cfg.height = 120;
    dev::AtmCamera* camera = ws->AddCamera(cfg);
    dev::AtmDisplay* display = ws->AddDisplay(640, 480);
    core::HostRelay* relay = ws->EnableHostRelay(per_cell);
    atm::Endpoint* nic = ws->device_endpoint(relay);
    auto leg1 = system.network().OpenVc(ws->device_endpoint(camera), nic);
    auto leg2 = system.network().OpenVc(nic, ws->device_endpoint(display));
    relay->AddRoute(leg1->destination_vci, leg2->source_vci);
    dev::WindowManager wm(display);
    wm.CreateWindow(leg2->destination_vci, 0, 0, 160, 120);
    camera->Start(leg1->source_vci);
    sim.RunUntil(sim::Seconds(2));
    bus_median = display->tile_latency().Quantile(0.5);
    bus_cpu = relay->cpu_time_spent();
    bus_cells = relay->cells_relayed();
    char label[64];
    std::snprintf(label, sizeof(label), "bus (%lldus/cell)",
                  static_cast<long long>(sim::ToMicroseconds(per_cell)));
    table.AddRow({label, sim::Table::Int(bus_cells),
                  sim::FormatDuration(bus_cpu),
                  sim::FormatDuration(static_cast<sim::DurationNs>(bus_median)),
                  sim::FormatDuration(
                      static_cast<sim::DurationNs>(display->tile_latency().Quantile(0.99)))});
  }
  bench::PrintTable("2 simulated seconds of 160x120@25 video on one workstation", table);

  std::printf("\nhost CPU utilisation on the bus path: %.1f%% of one CPU\n",
              static_cast<double>(bus_cpu) / 2e9 * 100.0);
  bench::PrintVerdict(bus_cpu > 0 && dan_median < bus_median,
                      "the DAN path consumes zero host CPU and has lower latency; the bus "
                      "path burns CPU per cell and adds store-and-forward delay");
  return 0;
}
