// E05 — The QoS manager's longer-timescale adaptation (§3.3).
//
// "A Quality-of-Service-manager domain ... updates the scheduler weights;
// not only in response to applications entering or leaving the system, but
// also adaptively as applications modify their behaviour ... on a longer
// time scale ... to smooth out short-term variations in load."
//
// The applications are media streams opened through the cross-layer stream
// API: each admits a small initial CPU contract and registers its full
// demand with the QoS manager, which grows the contracts toward weighted
// shares — and re-divides them as streams enter and leave. Every grant
// change surfaces through the sessions' degradation callbacks.
#include "bench/bench_util.h"
#include "src/core/system.h"
#include "src/nemesis/atropos.h"
#include "src/nemesis/kernel.h"
#include "src/nemesis/qos_manager.h"

using namespace pegasus;
using nemesis::QosParams;
using sim::Milliseconds;
using sim::Seconds;

int main() {
  bench::PrintHeader("E05", "QoS manager adaptation on stream entry/exit",
                     "per-stream CPU contracts re-computed as streams enter and leave, "
                     "smoothed over a longer timescale than individual scheduling decisions");

  sim::Simulator sim;
  nemesis::Kernel kernel(&sim, std::make_unique<nemesis::AtroposScheduler>(0.98));
  core::PegasusSystem system(&sim);
  core::Workstation* desk = system.AddWorkstation("desk");
  desk->AttachKernel(&kernel);
  dev::AtmDisplay* display = desk->AddDisplay(800, 600);

  nemesis::QosManagerDomain::Options opts;
  opts.epoch = Milliseconds(250);
  opts.target_utilization = 0.9;
  opts.reclaim_unused = false;
  opts.smoothing = 0.4;
  nemesis::QosManagerDomain manager(&sim, "qos-mgr",
                                    QosParams::Guaranteed(Milliseconds(1), Milliseconds(100)),
                                    opts);
  kernel.AddDomain(&manager);

  // Three applications as managed streams with different policy weights;
  // each opens with a token 1% contract and asks the manager for everything.
  int64_t grant_updates = 0;
  auto open_stream = [&](const char* name, double weight) -> core::StreamSession* {
    dev::AtmCamera::Config cfg;
    cfg.width = 64;
    cfg.height = 48;
    dev::AtmCamera* cam = desk->AddCamera(cfg);
    core::StreamSpec spec = core::StreamSpec::Video(25, 0);
    spec.sink_cpu = QosParams::Guaranteed(Milliseconds(1), Milliseconds(100));
    auto r = system.BuildStream(name)
                 .From(desk, cam)
                 .To(desk, display)
                 .WithSpec(spec)
                 .ManagedBy(&manager, weight)
                 .RequestingSinkCpu(QosParams::Guaranteed(Milliseconds(100), Milliseconds(100)))
                 .OnDegrade([&grant_updates](const core::QosContract&) { ++grant_updates; })
                 .Open();
    return r.report.ok() ? r.session : nullptr;
  };

  core::StreamSession* a = open_stream("editor (w=1)", 1.0);
  core::StreamSession* c = open_stream("viz (w=2)", 2.0);
  if (a == nullptr || c == nullptr) {
    std::printf("stream admission failed\n");
    return 1;
  }
  core::StreamSession* b = nullptr;
  sim.ScheduleAt(Seconds(10), [&]() { b = open_stream("video (w=4)", 4.0); });
  // The departing stream closes its whole session: the manager registration,
  // the CPU contract and the VCs all go together.
  sim.ScheduleAt(Seconds(25), [&]() {
    if (b != nullptr) {
      b->Close();
    }
  });

  kernel.Start();
  sim::Table table({"t(s)", "editor w=1", "video w=4", "viz w=2", "phase"});
  for (int t = 2; t <= 34; t += 4) {
    sim.RunUntil(Seconds(t));
    const char* phase = t < 10 ? "a+c" : (t < 25 ? "a+b+c" : "a+c (b left)");
    table.AddRow({sim::Table::Int(t),
                  sim::Table::Percent(manager.GrantedUtilization(a->sink_handler())),
                  sim::Table::Percent(
                      b != nullptr ? manager.GrantedUtilization(b->sink_handler()) : 0.0),
                  sim::Table::Percent(manager.GrantedUtilization(c->sink_handler())), phase});
  }
  bench::PrintTable("granted utilisation per epoch (weights 1:4:2, target 90%)", table);

  // Expected steady states: a+c => 30%/60%; a+b+c => ~12.9%/51.4%/25.7%.
  const double a_end = manager.GrantedUtilization(a->sink_handler());
  const double c_end = manager.GrantedUtilization(c->sink_handler());
  std::printf("\nfinal shares after departure: editor %.1f%%, viz %.1f%% (expect 30/60)\n",
              a_end * 100, c_end * 100);
  std::printf("cross-layer grant callbacks fired: %lld\n",
              static_cast<long long>(grant_updates));
  bench::PrintVerdict(std::abs(a_end - 0.3) < 0.03 && std::abs(c_end - 0.6) < 0.05,
                      "shares track weighted policy through entry and exit, converging over "
                      "a few 250 ms epochs rather than instantaneously (the smoothing)");
  return 0;
}
