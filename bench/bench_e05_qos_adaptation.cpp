// E05 — The QoS manager's longer-timescale adaptation (§3.3), now across
// every resource layer.
//
// "A Quality-of-Service-manager domain ... updates the scheduler weights;
// not only in response to applications entering or leaving the system, but
// also adaptively as applications modify their behaviour ... on a longer
// time scale ... to smooth out short-term variations in load."
//
// The applications are media streams opened through the cross-layer stream
// API. Three display streams register their full CPU demand and grow toward
// weighted shares. A fourth stream records to the file server under an
// AdaptationPolicy: every steady-state change of its CPU grant drives
// exactly ONE joint renegotiation in which network bandwidth, disk rate and
// camera pacing all move to the proportional target — the per-layer deltas
// of each degradation event are the output of this experiment.
//
//   ./build/bench/bench_e05_qos_adaptation [total_seconds]   (default 34;
//   CI smoke-runs a short clock)
//
// Closed-loop mode: NO explicit SignalCongestion / SignalBudgetPressure
// calls anywhere. The QosMonitor derives congestion from the link queues a
// real best-effort cross-traffic overload creates on the shared desk
// uplink, degrades the adapting stream, and restores it when the
// cross-traffic stops and the queues drain.
//
//   ./build/bench/bench_e05_qos_adaptation closed-loop [total_seconds]
//   (default 12; exits non-zero if no adaptation event fires — the guard
//   against the monitor silently going inert)
#include <cstdlib>
#include <cstring>

#include "bench/bench_util.h"
#include "src/core/system.h"
#include "src/nemesis/atropos.h"
#include "src/nemesis/kernel.h"
#include "src/nemesis/qos_manager.h"

using namespace pegasus;
using nemesis::QosParams;
using sim::Milliseconds;
using sim::Seconds;

namespace {

// The closed-loop experiment: monitor-derived signals only.
int RunClosedLoop(int total_seconds) {
  bench::PrintHeader("E05b", "Closed-loop adaptation from observed link queues",
                     "QoS feedback comes from measured resource behaviour, not "
                     "application assertion: the monitor turns real queue growth and "
                     "tail-drops on a shared uplink into congestion severity, and the "
                     "drained queue back into a recovery signal — no operator calls");

  sim::Simulator sim;
  core::PegasusSystem system(&sim);
  core::Workstation* desk = system.AddWorkstation("desk");
  core::Workstation* peer = system.AddWorkstation("peer");

  // The adapting stream: a 320x240 raw camera (~17 Mb/s of tiles on the
  // wire) under a 16 Mb/s contract, frame-rate scaling on degradation.
  dev::AtmCamera::Config cam_cfg;
  cam_cfg.width = 320;
  cam_cfg.height = 240;
  dev::AtmCamera* camera = desk->AddCamera(cam_cfg);
  dev::AtmDisplay* display = peer->AddDisplay(640, 480);
  core::AdaptationPolicy policy;
  policy.mode = core::AdaptationMode::kFrameRateScaling;
  policy.floor = 0.05;
  policy.hysteresis = 0.02;
  policy.smoothing = 1.0;
  auto r = system.BuildStream("feed")
               .From(desk, camera)
               .To(peer, display)
               .WithSpec(core::StreamSpec::Video(25, 16'000'000))
               .WithWindow(0, 0)
               .WithAdaptation(policy)
               .Open();
  if (!r.report.ok()) {
    std::printf("stream admission failed\n");
    return 1;
  }
  core::StreamSession* session = r.session;
  camera->Start(session->source_vci());

  core::QosMonitor* monitor = system.EnableQosMonitor();

  // Best-effort cross-traffic floods the shared desk -> backbone uplink at
  // beyond line rate for the middle third of the run.
  auto cross = system.network().OpenVc(desk->host(), peer->host());
  if (!cross.has_value()) {
    std::printf("cross-traffic VC failed\n");
    return 1;
  }
  const sim::TimeNs blast_from = Seconds(total_seconds) / 3;
  const sim::TimeNs blast_to = 2 * Seconds(total_seconds) / 3;
  for (sim::TimeNs t = blast_from; t < blast_to; t += Milliseconds(1)) {
    sim.ScheduleAt(t, [&system, vci = cross->source_vci, ep = desk->host()]() {
      (void)system;
      for (int i = 0; i < 500; ++i) {  // ~212 Mb/s offered
        atm::Cell cell;
        cell.vci = vci;
        cell.low_priority = true;
        ep->SendCell(cell);
      }
    });
  }

  // The shared uplink is the second link of the stream's data path.
  const std::vector<atm::Link*>* links = system.network().VcLinks(session->data_vc());
  const atm::Link* shared = links != nullptr && links->size() > 1 ? (*links)[1] : nullptr;

  sim::Table timeline({"t(s)", "phase", "uplink score", "severity", "fraction",
                       "granted Mb/s", "camera pace Mb/s"});
  char buf[4][32];
  for (int t = 1; t <= total_seconds; ++t) {
    sim.RunUntil(Seconds(t));
    const char* phase = Seconds(t) <= blast_from           ? "quiet"
                        : Seconds(t) <= blast_to           ? "cross-traffic"
                                                           : "drained";
    std::snprintf(buf[0], sizeof(buf[0]), "%.3f",
                  shared != nullptr ? monitor->link_score(shared) : 0.0);
    std::snprintf(buf[1], sizeof(buf[1]), "%.3f",
                  shared != nullptr ? monitor->link_severity(shared) : 0.0);
    std::snprintf(buf[2], sizeof(buf[2]), "%.2f", session->adaptation_fraction());
    std::snprintf(buf[3], sizeof(buf[3]), "%.1f",
                  static_cast<double>(camera->config().pace_bps) / 1e6);
    timeline.AddRow({sim::Table::Int(t), phase, buf[0], buf[1], buf[2],
                     sim::Table::Num(
                         static_cast<double>(session->contract().granted.bandwidth_bps) / 1e6,
                         1),
                     buf[3]});
  }
  bench::PrintTable("monitor-derived severity and the stream it steers", timeline);

  // Every applied adaptation event, with its trigger: all of them must be
  // monitor-raised (net-congestion), none manual.
  sim::Table events({"event", "trigger", "reason", "target", "net Mb/s"});
  int applied_congestion = 0;
  int applied_other = 0;
  char ebuf[2][48];
  int n = 0;
  for (const core::AdaptationEvent& e : session->adaptation_log()) {
    if (!e.applied) {
      continue;
    }
    const bool congestion = e.trigger == core::AdaptationEvent::Trigger::kNetworkCongestion;
    applied_congestion += congestion ? 1 : 0;
    applied_other += congestion ? 0 : 1;
    std::snprintf(ebuf[0], sizeof(ebuf[0]), "%.2f", e.target_fraction);
    std::snprintf(ebuf[1], sizeof(ebuf[1]), "%.1f -> %.1f",
                  static_cast<double>(e.net_bps_before) / 1e6,
                  static_cast<double>(e.net_bps_after) / 1e6);
    events.AddRow({sim::Table::Int(++n), core::AdaptationTriggerName(e.trigger),
                   nemesis::GrantReasonName(e.reason), ebuf[0], ebuf[1]});
  }
  bench::PrintTable("applied adaptation events (all monitor-raised)", events);

  std::printf("\nmonitor: %lld congestion signals, %lld recoveries over %lld ticks; "
              "uplink dropped %llu best-effort / %llu reserved-class cells\n",
              static_cast<long long>(monitor->congestion_signals()),
              static_cast<long long>(monitor->congestion_recoveries()),
              static_cast<long long>(monitor->ticks()),
              shared != nullptr
                  ? static_cast<unsigned long long>(shared->cells_dropped_low())
                  : 0ULL,
              shared != nullptr
                  ? static_cast<unsigned long long>(shared->cells_dropped_high())
                  : 0ULL);

  const bool holds = applied_congestion >= 1 && applied_other == 0 &&
                     session->adaptation_fraction() > 0.999 &&
                     session->contract().granted.bandwidth_bps == 16'000'000 &&
                     monitor->congestion_recoveries() >= 1;
  bench::PrintVerdict(holds,
                      "with zero explicit signal calls, real cross-traffic overload "
                      "degrades the adapting stream via monitor-derived congestion "
                      "severity and the drained queue restores it to nominal");
  return holds ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && (std::strcmp(argv[1], "closed-loop") == 0 ||
                   std::strcmp(argv[1], "--closed-loop") == 0)) {
    const int seconds = argc > 2 ? std::max(6, std::atoi(argv[2])) : 12;
    return RunClosedLoop(seconds);
  }
  const int total_seconds = argc > 1 ? std::max(8, std::atoi(argv[1])) : 34;
  bench::PrintHeader("E05", "QoS manager adaptation across CPU, network and disk",
                     "per-stream CPU contracts re-computed as streams enter and leave; an "
                     "adaptation policy turns each steady-state change into one joint "
                     "renegotiation moving network bandwidth and disk rate proportionally");

  sim::Simulator sim;
  nemesis::Kernel kernel(&sim, std::make_unique<nemesis::AtroposScheduler>(0.98));
  core::PegasusSystem system(&sim);
  core::Workstation* desk = system.AddWorkstation("desk");
  desk->AttachKernel(&kernel);
  dev::AtmDisplay* display = desk->AddDisplay(800, 600);
  pfs::PfsConfig pfs_cfg;
  pfs_cfg.segment_size = 64 << 10;
  pfs_cfg.block_size = 8 << 10;
  pfs_cfg.geometry.capacity_bytes = 64 << 20;
  core::StorageNode* storage = system.AddStorageServer(pfs_cfg);

  nemesis::QosManagerDomain::Options opts;
  opts.epoch = Milliseconds(250);
  opts.target_utilization = 0.9;
  opts.reclaim_unused = false;
  opts.smoothing = 0.4;
  nemesis::QosManagerDomain manager(&sim, "qos-mgr",
                                    QosParams::Guaranteed(Milliseconds(1), Milliseconds(100)),
                                    opts);
  kernel.AddDomain(&manager);

  // Three applications as managed display streams with different policy
  // weights; each opens with a token 1% contract and asks for everything.
  int64_t grant_updates = 0;
  auto open_stream = [&](const char* name, double weight) -> core::StreamSession* {
    dev::AtmCamera::Config cfg;
    cfg.width = 64;
    cfg.height = 48;
    dev::AtmCamera* cam = desk->AddCamera(cfg);
    core::StreamSpec spec = core::StreamSpec::Video(25, 0);
    spec.sink_cpu = QosParams::Guaranteed(Milliseconds(1), Milliseconds(100));
    auto r = system.BuildStream(name)
                 .From(desk, cam)
                 .To(desk, display)
                 .WithSpec(spec)
                 .ManagedBy(&manager, weight)
                 .RequestingSinkCpu(QosParams::Guaranteed(Milliseconds(100), Milliseconds(100)))
                 .OnDegrade([&grant_updates](const core::QosContract&) { ++grant_updates; })
                 .Open();
    return r.report.ok() ? r.session : nullptr;
  };

  core::StreamSession* a = open_stream("editor (w=1)", 1.0);
  core::StreamSession* c = open_stream("viz (w=2)", 2.0);

  // The adapting application: a recorder whose CPU, network bandwidth, disk
  // rate and camera pacing form ONE cross-layer contract. When its CPU
  // grant's steady state moves, the policy renegotiates everything.
  dev::AtmCamera::Config rec_cfg;
  rec_cfg.width = 64;
  rec_cfg.height = 48;
  dev::AtmCamera* rec_camera = desk->AddCamera(rec_cfg);
  core::StreamSpec rec_spec = core::StreamSpec::Video(25, 8'000'000);
  rec_spec.source_cpu = QosParams::Guaranteed(Milliseconds(30), Milliseconds(100));
  rec_spec.disk_bps = 1'000'000;
  core::AdaptationPolicy rec_policy;
  rec_policy.mode = core::AdaptationMode::kFrameRateScaling;
  rec_policy.floor = 0.05;
  rec_policy.hysteresis = 0.02;
  rec_policy.smoothing = 1.0;
  auto rec = system.BuildStream("recorder (w=1)")
                 .From(desk, rec_camera)
                 .ToStorage(storage)
                 .WithSpec(rec_spec)
                 .ManagedBy(&manager, 1.0)
                 .WithAdaptation(rec_policy)
                 .Open();
  if (a == nullptr || c == nullptr || !rec.report.ok()) {
    std::printf("stream admission failed\n");
    return 1;
  }
  core::StreamSession* recorder = rec.session;

  // A heavy stream enters around a third of the run and leaves near three
  // quarters; each transition moves every client's steady-state share.
  const int t_enter = total_seconds * 3 / 10;
  const int t_leave = total_seconds * 3 / 4;
  core::StreamSession* b = nullptr;
  sim.ScheduleAt(Seconds(t_enter), [&]() { b = open_stream("video (w=4)", 4.0); });
  sim.ScheduleAt(Seconds(t_leave), [&]() {
    if (b != nullptr) {
      b->Close();
    }
  });

  kernel.Start();
  sim::Table shares({"t(s)", "editor w=1", "video w=4", "viz w=2", "recorder w=1", "phase"});
  const int step = std::max(1, total_seconds / 8);
  for (int t = step; t <= total_seconds; t += step) {
    sim.RunUntil(Seconds(t));
    const char* phase = t < t_enter ? "a+c+rec" : (t < t_leave ? "all four" : "video left");
    shares.AddRow({sim::Table::Int(t),
                   sim::Table::Percent(manager.GrantedUtilization(a->sink_handler())),
                   sim::Table::Percent(
                       b != nullptr ? manager.GrantedUtilization(b->sink_handler()) : 0.0),
                   sim::Table::Percent(manager.GrantedUtilization(c->sink_handler())),
                   sim::Table::Percent(manager.GrantedUtilization(recorder->source_handler())),
                   phase});
  }
  bench::PrintTable("granted utilisation per epoch (weights 1:4:2:1, target 90%)", shares);

  // --- the adaptation plane's per-layer report: every degradation event,
  // with what each layer did about it ---
  sim::Table events({"event", "trigger", "reason", "target", "cpu", "net Mb/s", "disk kB/s"});
  int applied = 0;
  bool refused = false;
  bool proportional = true;
  char buf[5][64];
  for (const core::AdaptationEvent& e : recorder->adaptation_log()) {
    if (e.held) {
      continue;
    }
    if (!e.applied) {
      // A mid-bench renegotiation refusal is a correctness failure, not a
      // data point: every degraded target must be jointly admissible.
      std::printf("FAIL: adaptation (%s, target %.2f) was refused mid-bench\n",
                  core::AdaptationTriggerName(e.trigger), e.target_fraction);
      refused = true;
      continue;
    }
    ++applied;
    std::snprintf(buf[0], sizeof(buf[0]), "#%d", applied);
    std::snprintf(buf[1], sizeof(buf[1]), "%.2f", e.target_fraction);
    std::snprintf(buf[2], sizeof(buf[2]), "%.1f%% -> %.1f%%", e.cpu_util_before * 100,
                  e.cpu_util_after * 100);
    std::snprintf(buf[3], sizeof(buf[3]), "%.1f -> %.1f",
                  static_cast<double>(e.net_bps_before) / 1e6,
                  static_cast<double>(e.net_bps_after) / 1e6);
    std::snprintf(buf[4], sizeof(buf[4]), "%.0f -> %.0f",
                  static_cast<double>(e.disk_bps_before) / 1e3,
                  static_cast<double>(e.disk_bps_after) / 1e3);
    events.AddRow({buf[0], core::AdaptationTriggerName(e.trigger),
                   nemesis::GrantReasonName(e.reason), buf[1], buf[2], buf[3], buf[4]});
    // Every layer lands on the proportional target of THIS event.
    const double f = e.target_fraction;
    proportional = proportional &&
                   std::abs(static_cast<double>(e.net_bps_after) - 8e6 * f) < 8e6 * 0.01 &&
                   std::abs(static_cast<double>(e.disk_bps_after) - 1e6 * f) < 1e6 * 0.01;
  }
  bench::PrintTable("recorder adaptation events (one joint renegotiation each)", events);

  std::printf("\ncross-layer grant callbacks fired: %lld; held by hysteresis/reclaim: %lld\n",
              static_cast<long long>(grant_updates),
              static_cast<long long>(recorder->adaptations_held()));
  std::printf("recorder: %d joint renegotiations for %d applied events; camera now paced at "
              "%.1f Mb/s, disk reservation %.0f kB/s, frame rate %.1f fps\n",
              recorder->contract().renegotiations, applied,
              static_cast<double>(rec_camera->config().pace_bps) / 1e6,
              static_cast<double>(storage->server()->reserved_stream_bps()) / 1e3,
              recorder->contract().granted.frame_rate);

  // Expected steady states (weights 1:2:1 of 90%): editor 22.5%, viz 45%,
  // recorder 22.5% => recorder fraction 0.75 of its 30% request. With the
  // heavy w=4 stream in: 11.25% / 45% / 22.5% / 11.25% => fraction 0.375.
  const double a_end = manager.GrantedUtilization(a->sink_handler());
  const double c_end = manager.GrantedUtilization(c->sink_handler());
  const double rec_end = manager.GrantedUtilization(recorder->source_handler());
  std::printf("final shares after departure: editor %.1f%%, viz %.1f%%, recorder %.1f%% "
              "(expect 22.5/45/22.5)\n",
              a_end * 100, c_end * 100, rec_end * 100);

  const bool shares_ok = std::abs(a_end - 0.225) < 0.03 && std::abs(c_end - 0.45) < 0.05 &&
                         std::abs(rec_end - 0.225) < 0.03;
  // Entry and exit of the heavy stream plus the initial squeeze: exactly
  // one joint renegotiation each, not one per EWMA epoch.
  const bool one_per_event = applied == 3 && recorder->contract().renegotiations == 3;
  const bool paced = rec_camera->config().pace_bps ==
                     recorder->contract().granted.bandwidth_bps;
  bench::PrintVerdict(!refused && shares_ok && one_per_event && proportional && paced,
                      "shares track weighted policy through entry and exit; each steady-state "
                      "change drives ONE joint renegotiation whose CPU, network and disk all "
                      "land on the proportional target, with the camera paced to match");
  return refused ? 1 : 0;
}
