// E05 — The QoS manager's longer-timescale adaptation (§3.3).
//
// "A Quality-of-Service-manager domain ... updates the scheduler weights;
// not only in response to applications entering or leaving the system, but
// also adaptively as applications modify their behaviour ... on a longer
// time scale ... to smooth out short-term variations in load."
#include "bench/bench_util.h"
#include "src/nemesis/atropos.h"
#include "src/nemesis/kernel.h"
#include "src/nemesis/qos_manager.h"
#include "src/nemesis/workloads.h"

using namespace pegasus;
using nemesis::QosParams;
using sim::Milliseconds;
using sim::Seconds;

int main() {
  bench::PrintHeader("E05", "QoS manager adaptation on application entry/exit",
                     "weights re-computed as applications enter and leave, smoothed over a "
                     "longer timescale than individual scheduling decisions");

  sim::Simulator sim;
  nemesis::Kernel kernel(&sim, std::make_unique<nemesis::AtroposScheduler>(0.98));
  nemesis::QosManagerDomain::Options opts;
  opts.epoch = Milliseconds(250);
  opts.target_utilization = 0.9;
  opts.reclaim_unused = false;
  opts.smoothing = 0.4;
  nemesis::QosManagerDomain manager(&sim, "qos-mgr",
                                    QosParams::Guaranteed(Milliseconds(1), Milliseconds(100)),
                                    opts);
  kernel.AddDomain(&manager);

  // Three applications with different policy weights; b joins at t=10 s and
  // leaves at t=25 s.
  nemesis::BatchDomain a("editor (w=1)", QosParams::Guaranteed(Milliseconds(1), Milliseconds(100)));
  nemesis::BatchDomain b("video (w=4)", QosParams::Guaranteed(Milliseconds(1), Milliseconds(100)));
  nemesis::BatchDomain c("viz (w=2)", QosParams::Guaranteed(Milliseconds(1), Milliseconds(100)));
  kernel.AddDomain(&a);
  kernel.AddDomain(&c);
  manager.Register(&a, 1.0, QosParams::Guaranteed(Milliseconds(100), Milliseconds(100)));
  manager.Register(&c, 2.0, QosParams::Guaranteed(Milliseconds(100), Milliseconds(100)));

  sim.ScheduleAt(Seconds(10), [&]() {
    kernel.AddDomain(&b);
    manager.Register(&b, 4.0, QosParams::Guaranteed(Milliseconds(100), Milliseconds(100)));
  });
  sim.ScheduleAt(Seconds(25), [&]() {
    manager.Unregister(&b);
    // The departing app gives its share back; zero its contract.
    kernel.UpdateQos(&b, QosParams::BestEffort());
  });

  kernel.Start();
  sim::Table table({"t(s)", "editor w=1", "video w=4", "viz w=2", "phase"});
  for (int t = 2; t <= 34; t += 4) {
    sim.RunUntil(Seconds(t));
    const char* phase = t < 10 ? "a+c" : (t < 25 ? "a+b+c" : "a+c (b left)");
    table.AddRow({sim::Table::Int(t),
                  sim::Table::Percent(manager.GrantedUtilization(&a)),
                  sim::Table::Percent(manager.GrantedUtilization(&b)),
                  sim::Table::Percent(manager.GrantedUtilization(&c)), phase});
  }
  bench::PrintTable("granted utilisation per epoch (weights 1:4:2, target 90%)", table);

  // Expected steady states: a+c => 30%/60%; a+b+c => ~12.9%/51.4%/25.7%.
  const double a_end = manager.GrantedUtilization(&a);
  const double c_end = manager.GrantedUtilization(&c);
  std::printf("\nfinal shares after departure: editor %.1f%%, viz %.1f%% (expect 30/60)\n",
              a_end * 100, c_end * 100);
  bench::PrintVerdict(std::abs(a_end - 0.3) < 0.03 && std::abs(c_end - 0.6) < 0.05,
                      "shares track weighted policy through entry and exit, converging over "
                      "a few 250 ms epochs rather than instantaneously (the smoothing)");
  return 0;
}
