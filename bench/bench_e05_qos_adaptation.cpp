// E05 — The QoS manager's longer-timescale adaptation (§3.3), now across
// every resource layer.
//
// "A Quality-of-Service-manager domain ... updates the scheduler weights;
// not only in response to applications entering or leaving the system, but
// also adaptively as applications modify their behaviour ... on a longer
// time scale ... to smooth out short-term variations in load."
//
// The applications are media streams opened through the cross-layer stream
// API. Three display streams register their full CPU demand and grow toward
// weighted shares. A fourth stream records to the file server under an
// AdaptationPolicy: every steady-state change of its CPU grant drives
// exactly ONE joint renegotiation in which network bandwidth, disk rate and
// camera pacing all move to the proportional target — the per-layer deltas
// of each degradation event are the output of this experiment.
//
//   ./build/bench/bench_e05_qos_adaptation [total_seconds]   (default 34;
//   CI smoke-runs a short clock)
#include <cstdlib>

#include "bench/bench_util.h"
#include "src/core/system.h"
#include "src/nemesis/atropos.h"
#include "src/nemesis/kernel.h"
#include "src/nemesis/qos_manager.h"

using namespace pegasus;
using nemesis::QosParams;
using sim::Milliseconds;
using sim::Seconds;

int main(int argc, char** argv) {
  const int total_seconds = argc > 1 ? std::max(8, std::atoi(argv[1])) : 34;
  bench::PrintHeader("E05", "QoS manager adaptation across CPU, network and disk",
                     "per-stream CPU contracts re-computed as streams enter and leave; an "
                     "adaptation policy turns each steady-state change into one joint "
                     "renegotiation moving network bandwidth and disk rate proportionally");

  sim::Simulator sim;
  nemesis::Kernel kernel(&sim, std::make_unique<nemesis::AtroposScheduler>(0.98));
  core::PegasusSystem system(&sim);
  core::Workstation* desk = system.AddWorkstation("desk");
  desk->AttachKernel(&kernel);
  dev::AtmDisplay* display = desk->AddDisplay(800, 600);
  pfs::PfsConfig pfs_cfg;
  pfs_cfg.segment_size = 64 << 10;
  pfs_cfg.block_size = 8 << 10;
  pfs_cfg.geometry.capacity_bytes = 64 << 20;
  core::StorageNode* storage = system.AddStorageServer(pfs_cfg);

  nemesis::QosManagerDomain::Options opts;
  opts.epoch = Milliseconds(250);
  opts.target_utilization = 0.9;
  opts.reclaim_unused = false;
  opts.smoothing = 0.4;
  nemesis::QosManagerDomain manager(&sim, "qos-mgr",
                                    QosParams::Guaranteed(Milliseconds(1), Milliseconds(100)),
                                    opts);
  kernel.AddDomain(&manager);

  // Three applications as managed display streams with different policy
  // weights; each opens with a token 1% contract and asks for everything.
  int64_t grant_updates = 0;
  auto open_stream = [&](const char* name, double weight) -> core::StreamSession* {
    dev::AtmCamera::Config cfg;
    cfg.width = 64;
    cfg.height = 48;
    dev::AtmCamera* cam = desk->AddCamera(cfg);
    core::StreamSpec spec = core::StreamSpec::Video(25, 0);
    spec.sink_cpu = QosParams::Guaranteed(Milliseconds(1), Milliseconds(100));
    auto r = system.BuildStream(name)
                 .From(desk, cam)
                 .To(desk, display)
                 .WithSpec(spec)
                 .ManagedBy(&manager, weight)
                 .RequestingSinkCpu(QosParams::Guaranteed(Milliseconds(100), Milliseconds(100)))
                 .OnDegrade([&grant_updates](const core::QosContract&) { ++grant_updates; })
                 .Open();
    return r.report.ok() ? r.session : nullptr;
  };

  core::StreamSession* a = open_stream("editor (w=1)", 1.0);
  core::StreamSession* c = open_stream("viz (w=2)", 2.0);

  // The adapting application: a recorder whose CPU, network bandwidth, disk
  // rate and camera pacing form ONE cross-layer contract. When its CPU
  // grant's steady state moves, the policy renegotiates everything.
  dev::AtmCamera::Config rec_cfg;
  rec_cfg.width = 64;
  rec_cfg.height = 48;
  dev::AtmCamera* rec_camera = desk->AddCamera(rec_cfg);
  core::StreamSpec rec_spec = core::StreamSpec::Video(25, 8'000'000);
  rec_spec.source_cpu = QosParams::Guaranteed(Milliseconds(30), Milliseconds(100));
  rec_spec.disk_bps = 1'000'000;
  core::AdaptationPolicy rec_policy;
  rec_policy.mode = core::AdaptationMode::kFrameRateScaling;
  rec_policy.floor = 0.05;
  rec_policy.hysteresis = 0.02;
  rec_policy.smoothing = 1.0;
  auto rec = system.BuildStream("recorder (w=1)")
                 .From(desk, rec_camera)
                 .ToStorage(storage)
                 .WithSpec(rec_spec)
                 .ManagedBy(&manager, 1.0)
                 .WithAdaptation(rec_policy)
                 .Open();
  if (a == nullptr || c == nullptr || !rec.report.ok()) {
    std::printf("stream admission failed\n");
    return 1;
  }
  core::StreamSession* recorder = rec.session;

  // A heavy stream enters around a third of the run and leaves near three
  // quarters; each transition moves every client's steady-state share.
  const int t_enter = total_seconds * 3 / 10;
  const int t_leave = total_seconds * 3 / 4;
  core::StreamSession* b = nullptr;
  sim.ScheduleAt(Seconds(t_enter), [&]() { b = open_stream("video (w=4)", 4.0); });
  sim.ScheduleAt(Seconds(t_leave), [&]() {
    if (b != nullptr) {
      b->Close();
    }
  });

  kernel.Start();
  sim::Table shares({"t(s)", "editor w=1", "video w=4", "viz w=2", "recorder w=1", "phase"});
  const int step = std::max(1, total_seconds / 8);
  for (int t = step; t <= total_seconds; t += step) {
    sim.RunUntil(Seconds(t));
    const char* phase = t < t_enter ? "a+c+rec" : (t < t_leave ? "all four" : "video left");
    shares.AddRow({sim::Table::Int(t),
                   sim::Table::Percent(manager.GrantedUtilization(a->sink_handler())),
                   sim::Table::Percent(
                       b != nullptr ? manager.GrantedUtilization(b->sink_handler()) : 0.0),
                   sim::Table::Percent(manager.GrantedUtilization(c->sink_handler())),
                   sim::Table::Percent(manager.GrantedUtilization(recorder->source_handler())),
                   phase});
  }
  bench::PrintTable("granted utilisation per epoch (weights 1:4:2:1, target 90%)", shares);

  // --- the adaptation plane's per-layer report: every degradation event,
  // with what each layer did about it ---
  sim::Table events({"event", "trigger", "reason", "target", "cpu", "net Mb/s", "disk kB/s"});
  int applied = 0;
  bool refused = false;
  bool proportional = true;
  char buf[5][64];
  for (const core::AdaptationEvent& e : recorder->adaptation_log()) {
    if (e.held) {
      continue;
    }
    if (!e.applied) {
      // A mid-bench renegotiation refusal is a correctness failure, not a
      // data point: every degraded target must be jointly admissible.
      std::printf("FAIL: adaptation (%s, target %.2f) was refused mid-bench\n",
                  core::AdaptationTriggerName(e.trigger), e.target_fraction);
      refused = true;
      continue;
    }
    ++applied;
    std::snprintf(buf[0], sizeof(buf[0]), "#%d", applied);
    std::snprintf(buf[1], sizeof(buf[1]), "%.2f", e.target_fraction);
    std::snprintf(buf[2], sizeof(buf[2]), "%.1f%% -> %.1f%%", e.cpu_util_before * 100,
                  e.cpu_util_after * 100);
    std::snprintf(buf[3], sizeof(buf[3]), "%.1f -> %.1f",
                  static_cast<double>(e.net_bps_before) / 1e6,
                  static_cast<double>(e.net_bps_after) / 1e6);
    std::snprintf(buf[4], sizeof(buf[4]), "%.0f -> %.0f",
                  static_cast<double>(e.disk_bps_before) / 1e3,
                  static_cast<double>(e.disk_bps_after) / 1e3);
    events.AddRow({buf[0], core::AdaptationTriggerName(e.trigger),
                   nemesis::GrantReasonName(e.reason), buf[1], buf[2], buf[3], buf[4]});
    // Every layer lands on the proportional target of THIS event.
    const double f = e.target_fraction;
    proportional = proportional &&
                   std::abs(static_cast<double>(e.net_bps_after) - 8e6 * f) < 8e6 * 0.01 &&
                   std::abs(static_cast<double>(e.disk_bps_after) - 1e6 * f) < 1e6 * 0.01;
  }
  bench::PrintTable("recorder adaptation events (one joint renegotiation each)", events);

  std::printf("\ncross-layer grant callbacks fired: %lld; held by hysteresis/reclaim: %lld\n",
              static_cast<long long>(grant_updates),
              static_cast<long long>(recorder->adaptations_held()));
  std::printf("recorder: %d joint renegotiations for %d applied events; camera now paced at "
              "%.1f Mb/s, disk reservation %.0f kB/s, frame rate %.1f fps\n",
              recorder->contract().renegotiations, applied,
              static_cast<double>(rec_camera->config().pace_bps) / 1e6,
              static_cast<double>(storage->server()->reserved_stream_bps()) / 1e3,
              recorder->contract().granted.frame_rate);

  // Expected steady states (weights 1:2:1 of 90%): editor 22.5%, viz 45%,
  // recorder 22.5% => recorder fraction 0.75 of its 30% request. With the
  // heavy w=4 stream in: 11.25% / 45% / 22.5% / 11.25% => fraction 0.375.
  const double a_end = manager.GrantedUtilization(a->sink_handler());
  const double c_end = manager.GrantedUtilization(c->sink_handler());
  const double rec_end = manager.GrantedUtilization(recorder->source_handler());
  std::printf("final shares after departure: editor %.1f%%, viz %.1f%%, recorder %.1f%% "
              "(expect 22.5/45/22.5)\n",
              a_end * 100, c_end * 100, rec_end * 100);

  const bool shares_ok = std::abs(a_end - 0.225) < 0.03 && std::abs(c_end - 0.45) < 0.05 &&
                         std::abs(rec_end - 0.225) < 0.03;
  // Entry and exit of the heavy stream plus the initial squeeze: exactly
  // one joint renegotiation each, not one per EWMA epoch.
  const bool one_per_event = applied == 3 && recorder->contract().renegotiations == 3;
  const bool paced = rec_camera->config().pace_bps ==
                     recorder->contract().granted.bandwidth_bps;
  bench::PrintVerdict(!refused && shares_ok && one_per_event && proportional && paced,
                      "shares track weighted policy through entry and exit; each steady-state "
                      "change drives ONE joint renegotiation whose CPU, network and disk all "
                      "land on the proportional target, with the camera paced to match");
  return refused ? 1 : 0;
}
