// E14 — The VCI-indexed window system (§2.1, Figure 3).
//
// "Note that as tiles essentially represent bit-blit operations of fixed
// size, from the viewpoint of a display, there is a unification of video and
// graphics. The code in conventional window systems that does the
// multiplexing of windows to the display can largely disappear."
#include "bench/bench_util.h"
#include "src/core/system.h"

using namespace pegasus;
using sim::Milliseconds;
using sim::Seconds;

int main() {
  bench::PrintHeader("E14", "window management by descriptor manipulation",
                     "window operations are descriptor updates; the display hardware "
                     "multiplexes VCs to pixels, so the window manager moves no pixel data "
                     "and video keeps flowing through every operation");

  sim::Simulator sim;
  core::PegasusSystem system(&sim);
  core::Workstation* ws = system.AddWorkstation("ws");
  dev::AtmDisplay* display = ws->AddDisplay(800, 600);
  dev::WindowManager wm(display);

  // Four live video windows on one screen.
  const int kWindows = 4;
  std::vector<dev::AtmCamera*> cameras;
  std::vector<atm::Vci> vcis;
  for (int i = 0; i < kWindows; ++i) {
    dev::AtmCamera::Config cfg;
    cfg.width = 128;
    cfg.height = 96;
    cfg.compression = dev::CompressionMode::kMotionJpeg;
    dev::AtmCamera* cam = ws->AddCamera(cfg);
    auto s = system.BuildStream("win-" + std::to_string(i))
                 .From(ws, cam)
                 .To(ws, display)
                 .WithWindow(40 + i * 160, 60)
                 .Open();
    cam->Start(s.session->source_vci());
    cameras.push_back(cam);
    vcis.push_back(s.session->sink_vci());
  }

  // A window-manager stress: move/raise/resize/iconify storm while video
  // plays. Conventional systems would repaint (copy) the window contents on
  // each op; here we count what actually moves.
  int64_t conventional_pixel_copies = 0;
  int ops = 0;
  for (int round = 0; round < 50; ++round) {
    sim.ScheduleAt(Milliseconds(100) * round, [&, round]() {
      const atm::Vci v = vcis[static_cast<size_t>(round % kWindows)];
      const dev::WindowDescriptor* d = display->GetDescriptor(v);
      const int64_t area = d == nullptr ? 0 : static_cast<int64_t>(d->width) * d->height;
      switch (round % 4) {
        case 0:
          wm.MoveWindow(v, 40 + (round * 13) % 600, 60 + (round * 7) % 400);
          conventional_pixel_copies += area;  // a bus system re-blits the window
          break;
        case 1:
          wm.RaiseWindow(v);
          conventional_pixel_copies += area;  // expose repaint
          break;
        case 2:
          wm.ResizeWindow(v, 96 + (round % 3) * 16, 72 + (round % 3) * 12);
          conventional_pixel_copies += area;
          break;
        case 3:
          wm.IconifyWindow(v);
          wm.RestoreWindow(v);
          conventional_pixel_copies += 2 * area;
          break;
      }
      ++ops;
    });
  }
  sim.RunUntil(Seconds(6));

  sim::Table table({"metric", "Pegasus display", "conventional (modelled)"});
  table.AddRow({"window operations", sim::Table::Int(wm.operations()),
                sim::Table::Int(wm.operations())});
  table.AddRow({"descriptor updates", sim::Table::Int(display->descriptor_updates()), "n/a"});
  table.AddRow({"pixels copied by the WM", "0",
                sim::Table::Int(conventional_pixel_copies)});
  table.AddRow({"video tiles blitted by hardware", sim::Table::Int(display->tiles_blitted()),
                "(same, plus repaints)"});
  table.AddRow({"tiles clipped/occluded", sim::Table::Int(display->tiles_clipped()), "n/a"});
  bench::PrintTable("6 s of 4 live 128x96 video windows under a WM stress storm", table);

  // Video kept flowing: the median tile latency is unaffected by WM churn.
  std::printf("\nmedian tile latency during the storm: %s (pure media path)\n",
              sim::FormatDuration(
                  static_cast<sim::DurationNs>(display->tile_latency().Quantile(0.5)))
                  .c_str());
  bench::PrintVerdict(display->tiles_blitted() > 50'000 && wm.operations() >= 50 &&
                          display->tile_latency().Quantile(0.5) < 1e6,
                      "every window operation was a descriptor edit; the window manager "
                      "touched zero pixels while the display multiplexed four live video "
                      "circuits — video and graphics unified in the tile primitive");
  return 0;
}
