// E06 — Synchronous vs asynchronous event signalling (§3.4).
//
// "Lowest latency for a client/server interaction will be achieved by the
// client and server implementing the synchronous form of notification.
// However, a domain performing demultiplexing of incoming packets may be
// most efficient using the asynchronous means."
#include "bench/bench_util.h"
#include "src/nemesis/atropos.h"
#include "src/nemesis/kernel.h"
#include "src/nemesis/workloads.h"

using namespace pegasus;
using nemesis::QosParams;
using sim::Microseconds;
using sim::Milliseconds;
using sim::Seconds;

namespace {

double CallRtt(bool synchronous) {
  sim::Simulator sim;
  nemesis::Kernel kernel(&sim, std::make_unique<nemesis::AtroposScheduler>(1.0));
  nemesis::ClientDomain client(&sim, "client", QosParams::Guaranteed(Milliseconds(10),
                                                                     Milliseconds(50)),
                               Microseconds(50), 500, 0, /*post_send_work=*/Microseconds(500));
  nemesis::ServerDomain server("server",
                               QosParams::Guaranteed(Milliseconds(20), Milliseconds(100)),
                               Microseconds(100));
  nemesis::BatchDomain hog("hog", QosParams::BestEffort());
  kernel.AddDomain(&client);
  kernel.AddDomain(&server);
  kernel.AddDomain(&hog);
  nemesis::IpcChannel* ch = kernel.CreateIpcChannel(&client, &server, 16, 64, synchronous);
  client.BindChannel(ch);
  server.BindChannel(ch);
  kernel.Start();
  sim.RunUntil(Seconds(20));
  return client.round_trip().mean();
}

struct DemuxOutcome {
  int64_t packets = 0;
  uint64_t activations = 0;
  double drain_ms = 0;
};

DemuxOutcome DemuxBurst(bool synchronous_clients, int n_clients, int burst) {
  sim::Simulator sim;
  // Realistic kernel costs: the sync/async trade-off is precisely about how
  // many domain switches a burst costs.
  nemesis::Kernel kernel(&sim, std::make_unique<nemesis::AtroposScheduler>(1.0),
                         nemesis::KernelCosts{});
  nemesis::DemuxDomain demux("demux", QosParams::Guaranteed(Milliseconds(30), Milliseconds(100)),
                             Microseconds(20));
  kernel.AddDomain(&demux);
  nemesis::EventChannel* packets = kernel.CreateChannel(nullptr, &demux, false);
  demux.BindPacketChannel(packets);
  // Each client does a little protocol work per delivered packet; the
  // DriverDomain model serves (its "interrupt" is our event channel).
  std::vector<std::unique_ptr<nemesis::DriverDomain>> clients;
  for (int i = 0; i < n_clients; ++i) {
    clients.push_back(std::make_unique<nemesis::DriverDomain>(
        "cl" + std::to_string(i), QosParams::BestEffort(), nemesis::DriverDomain::Mode::kKps,
        Microseconds(4), Microseconds(1)));
    kernel.AddDomain(clients.back().get());
    nemesis::EventChannel* ch =
        kernel.CreateChannel(&demux, clients.back().get(), synchronous_clients);
    clients.back()->BindInterruptChannel(ch);
    demux.AddClientChannel(ch);
  }
  kernel.Start();
  for (int i = 0; i < burst; ++i) {
    kernel.RaiseInterrupt(packets);
  }
  const sim::TimeNs start = sim.now();
  sim.RunUntilPredicate([&]() { return demux.packets_processed() == burst; });
  DemuxOutcome out;
  out.packets = demux.packets_processed();
  out.activations = demux.dib().activation_count;
  out.drain_ms = static_cast<double>(sim.now() - start) / 1e6;
  return out;
}

}  // namespace

int main() {
  bench::PrintHeader("E06", "synchronous vs asynchronous event signalling",
                     "synchronous signalling minimises client/server call latency; "
                     "asynchronous signalling maximises demultiplexer efficiency");

  sim::Table calls({"signalling", "mean RTT", "note"});
  const double sync_rtt = CallRtt(true);
  const double async_rtt = CallRtt(false);
  calls.AddRow({"synchronous", sim::Table::Num(sync_rtt / 1e3, 1) + "us",
                "sender donates the CPU at the send"});
  calls.AddRow({"asynchronous", sim::Table::Num(async_rtt / 1e3, 1) + "us",
                "sender finishes its bookkeeping first"});
  bench::PrintTable("inter-domain call round trip (client with 500us post-send work)", calls);

  sim::Table demux({"client channels", "burst", "drain time", "demux activations"});
  for (int burst : {32, 128}) {
    DemuxOutcome async_out = DemuxBurst(false, 8, burst);
    DemuxOutcome sync_out = DemuxBurst(true, 8, burst);
    demux.AddRow({"asynchronous", sim::Table::Int(burst),
                  sim::Table::Num(async_out.drain_ms, 2) + "ms",
                  sim::Table::Int(static_cast<long long>(async_out.activations))});
    demux.AddRow({"synchronous", sim::Table::Int(burst),
                  sim::Table::Num(sync_out.drain_ms, 2) + "ms",
                  sim::Table::Int(static_cast<long long>(sync_out.activations))});
  }
  bench::PrintTable("packet demultiplexer draining a burst to 8 clients", demux);

  DemuxOutcome async128 = DemuxBurst(false, 8, 128);
  DemuxOutcome sync128 = DemuxBurst(true, 8, 128);
  bench::PrintVerdict(sync_rtt < async_rtt && async128.drain_ms <= sync128.drain_ms &&
                          async128.activations < sync128.activations,
                      "synchronous wins for calls (lower RTT); asynchronous wins for the "
                      "demultiplexer (fewer activations / faster drain) — both halves of "
                      "the paper's design argument");
  return 0;
}
