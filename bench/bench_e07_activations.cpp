// E07 — Activations and user-level threads vs kernel threads (§3.2).
//
// "This avoids the problems encountered in kernel level thread
// implementations when threads block in the kernel and the kernel scheduler
// gives the processor which was running the blocked thread to a thread
// belonging to another process."
#include "bench/bench_util.h"
#include "src/nemesis/baseline_schedulers.h"
#include "src/nemesis/kernel.h"
#include "src/nemesis/threads.h"
#include "src/nemesis/workloads.h"

using namespace pegasus;
using nemesis::QosParams;
using sim::Milliseconds;
using sim::Seconds;

namespace {

struct Outcome {
  int64_t uls_items = 0;
  int64_t kthread_items = 0;
  int64_t user_switches = 0;
  uint64_t kernel_switches = 0;
};

Outcome Run(int n_threads, sim::DurationNs compute, sim::DurationNs io, int hogs) {
  sim::Simulator sim;
  nemesis::Kernel kernel(&sim, std::make_unique<nemesis::RoundRobinScheduler>(),
                         nemesis::KernelCosts::Zero());
  nemesis::UlsDomain uls(&sim, "uls", QosParams::BestEffort(), n_threads, compute, io);
  kernel.AddDomain(&uls);
  std::vector<std::unique_ptr<nemesis::IoThreadDomain>> kthreads;
  for (int i = 0; i < n_threads; ++i) {
    kthreads.push_back(std::make_unique<nemesis::IoThreadDomain>(
        &sim, "kt" + std::to_string(i), QosParams::BestEffort(), compute, io));
    kernel.AddDomain(kthreads.back().get());
  }
  std::vector<std::unique_ptr<nemesis::BatchDomain>> hog_list;
  for (int i = 0; i < hogs; ++i) {
    hog_list.push_back(std::make_unique<nemesis::BatchDomain>("hog" + std::to_string(i),
                                                              QosParams::BestEffort(),
                                                              Milliseconds(10)));
    kernel.AddDomain(hog_list.back().get());
  }
  kernel.Start();
  sim.RunUntil(Seconds(20));
  Outcome out;
  out.uls_items = uls.items_completed();
  for (auto& kt : kthreads) {
    out.kthread_items += kt->items_completed();
  }
  out.user_switches = uls.user_switches();
  out.kernel_switches = kernel.context_switches();
  return out;
}

}  // namespace

int main() {
  bench::PrintHeader("E07", "user-level threads on activations vs kernel threads",
                     "when a thread blocks, the user-level scheduler runs a sibling within "
                     "the same CPU grant; kernel threads forfeit the processor to other "
                     "processes");

  sim::Table table({"threads", "compute/io", "hogs", "ULS items", "kthread items", "ratio"});
  struct Case {
    int threads;
    sim::DurationNs compute;
    sim::DurationNs io;
    int hogs;
  };
  const Case cases[] = {
      {4, Milliseconds(1), Milliseconds(2), 2},
      {4, Milliseconds(1), Milliseconds(2), 6},
      {8, Milliseconds(1), Milliseconds(4), 2},
      {2, Milliseconds(2), Milliseconds(2), 2},
  };
  Outcome headline{};
  for (const Case& c : cases) {
    Outcome o = Run(c.threads, c.compute, c.io, c.hogs);
    if (c.threads == 4 && c.hogs == 2) {
      headline = o;
    }
    char cfg[32];
    std::snprintf(cfg, sizeof(cfg), "%lld/%lldms",
                  static_cast<long long>(sim::ToMilliseconds(c.compute)),
                  static_cast<long long>(sim::ToMilliseconds(c.io)));
    table.AddRow({sim::Table::Int(c.threads), cfg, sim::Table::Int(c.hogs),
                  sim::Table::Int(o.uls_items), sim::Table::Int(o.kthread_items),
                  sim::Table::Factor(static_cast<double>(o.uls_items) /
                                     static_cast<double>(std::max<int64_t>(1, o.kthread_items)))});
  }
  bench::PrintTable(
      "items completed in 20 s under round-robin timesharing (equal aggregate share)", table);

  std::printf("\nULS thread switches stay in user space: %lld in-domain switches vs %llu "
              "kernel context switches system-wide\n",
              static_cast<long long>(headline.user_switches),
              static_cast<unsigned long long>(headline.kernel_switches));
  bench::PrintVerdict(headline.uls_items > headline.kthread_items * 3 / 2,
                      "the activation-based domain overlaps I/O with sibling compute inside "
                      "its own quantum and clearly outperforms one-thread-per-kernel-entity "
                      "at equal total entitlement");
  return 0;
}
