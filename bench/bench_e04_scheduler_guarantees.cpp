// E04 — CPU guarantees under load (§3.3).
//
// "For a particular time ... some of the resources given to an application
// may be viewed as 'guaranteed'." The share+EDF scheduler must keep a media
// domain's deadlines regardless of background load; conventional
// timesharing cannot. Includes the EDF-vs-round-robin credit ablation.
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "src/nemesis/atropos.h"
#include "src/nemesis/baseline_schedulers.h"
#include "src/nemesis/kernel.h"
#include "src/nemesis/workloads.h"

using namespace pegasus;
using nemesis::QosParams;
using sim::Milliseconds;
using sim::Seconds;

namespace {

struct Outcome {
  int64_t jobs = 0;
  int64_t misses = 0;
  double mean_latency_ms = 0;
  double jitter_ms = 0;  // stddev of completion latency
};

Outcome Run(const std::string& sched, int hogs, bool media_guaranteed) {
  sim::Simulator sim;
  std::unique_ptr<nemesis::Scheduler> scheduler;
  if (sched == "share+EDF") {
    scheduler = std::make_unique<nemesis::AtroposScheduler>(1.0);
  } else if (sched == "share+RR") {
    scheduler = std::make_unique<nemesis::AtroposScheduler>(
        1.0, Milliseconds(5), nemesis::AtroposScheduler::CreditPolicy::kRoundRobin);
  } else if (sched == "round-robin") {
    scheduler = std::make_unique<nemesis::RoundRobinScheduler>();
  } else {
    scheduler = std::make_unique<nemesis::PriorityScheduler>();
  }
  auto* priority = dynamic_cast<nemesis::PriorityScheduler*>(scheduler.get());
  nemesis::Kernel kernel(&sim, std::move(scheduler), nemesis::KernelCosts::Zero());

  // The media domain: an 8 ms decode every 40 ms frame.
  QosParams media_qos = media_guaranteed
                            ? QosParams::Guaranteed(Milliseconds(9), Milliseconds(40))
                            : QosParams::BestEffort();
  nemesis::PeriodicDomain media(&sim, "media", media_qos, Milliseconds(8), Milliseconds(40));
  if (priority != nullptr) {
    // "priority-hi": the user renices the media app above everything (works,
    // but only for one app). Otherwise it is an ordinary mid-priority
    // process and anything above it starves it.
    priority->SetPriority(&media, sched == "priority-hi" ? 9 : 5);
  }
  kernel.AddDomain(&media);

  std::vector<std::unique_ptr<nemesis::BatchDomain>> hog_list;
  // A second guaranteed-but-greedy domain to exercise credit ordering.
  nemesis::BatchDomain greedy("greedy",
                              media_guaranteed
                                  ? QosParams::Guaranteed(Milliseconds(30), Milliseconds(100))
                                  : QosParams::BestEffort(),
                              Milliseconds(10));
  if (priority != nullptr) {
    priority->SetPriority(&greedy, 6);
  }
  kernel.AddDomain(&greedy);
  for (int i = 0; i < hogs; ++i) {
    hog_list.push_back(std::make_unique<nemesis::BatchDomain>(
        "hog" + std::to_string(i), QosParams::BestEffort(), Milliseconds(10)));
    if (priority != nullptr) {
      priority->SetPriority(hog_list.back().get(), 4);
    }
    kernel.AddDomain(hog_list.back().get());
  }
  kernel.Start();
  sim.RunUntil(Seconds(20));

  Outcome out;
  out.jobs = media.jobs_completed();
  out.misses = media.deadline_misses();
  out.mean_latency_ms = media.completion_latency().mean() / 1e6;
  out.jitter_ms = media.completion_latency().stddev() / 1e6;
  return out;
}

}  // namespace

int main() {
  bench::PrintHeader("E04", "scheduler guarantees under background load",
                     "a guaranteed media domain meets its deadlines regardless of load; "
                     "timesharing schedulers miss most of them");

  sim::Table table({"scheduler", "hogs", "jobs", "misses", "miss%", "latency", "jitter"});
  for (const char* sched :
       {"share+EDF", "share+RR", "round-robin", "priority-mid", "priority-hi"}) {
    for (int hogs : {0, 2, 10, 20}) {
      const bool guaranteed = std::string(sched).rfind("share", 0) == 0;
      Outcome o = Run(sched, hogs, guaranteed);
      table.AddRow({sched, sim::Table::Int(hogs), sim::Table::Int(o.jobs),
                    sim::Table::Int(o.misses),
                    sim::Table::Percent(o.jobs > 0 ? static_cast<double>(o.misses) /
                                                         static_cast<double>(o.jobs)
                                                   : 0.0),
                    sim::Table::Num(o.mean_latency_ms, 2) + "ms",
                    sim::Table::Num(o.jitter_ms, 2) + "ms"});
    }
  }
  bench::PrintTable("25 fps media domain (8 ms/frame), 20 simulated seconds", table);

  const Outcome edf = Run("share+EDF", 20, true);
  const Outcome rr = Run("round-robin", 20, false);
  bench::PrintVerdict(edf.misses == 0 && rr.misses > rr.jobs / 2,
                      "share+EDF misses nothing at any load; round-robin degrades with every "
                      "added hog (the paper's case for QoS-aware scheduling). The share+RR "
                      "ablation shows EDF ordering is what bounds latency jitter.");
  return 0;
}
