// E09 — Whole-segment I/O throughput (§5).
//
// "The speeds of modern disks are such that the overhead of seeks between
// reading and writing whole segments is less than ten per cent, so that a
// transfer rate of at least five megabytes per second per disk is possible
// ... Striping over four disks makes a total bandwidth of 20 MB per second
// possible."
#include "bench/bench_util.h"
#include "src/pfs/disk.h"
#include "src/pfs/stripe.h"

using namespace pegasus;

namespace {

struct DiskResult {
  double mbps = 0;
  double seek_overhead = 0;
};

// Alternating read/write of `unit`-sized extents at scattered positions —
// the paper's "seeks between reading and writing whole segments".
DiskResult SingleDisk(int64_t unit, int ops) {
  sim::Simulator sim;
  pfs::DiskGeometry geom;
  pfs::SimDisk disk(&sim, "d", geom);
  int64_t moved = 0;
  int done = 0;
  // Two regions a quarter-disk apart: the head commutes between them.
  const int64_t region_a = 0;
  const int64_t region_b = geom.capacity_bytes / 4;
  for (int i = 0; i < ops; ++i) {
    const int64_t offset = (i % 2 == 0 ? region_a : region_b) + (i / 2) * unit;
    if (i % 2 == 0) {
      disk.Write(offset, std::vector<uint8_t>(static_cast<size_t>(unit), 1), false,
                 [&](bool) { ++done; });
    } else {
      disk.Read(offset, unit, false, [&](bool, std::vector<uint8_t>) { ++done; });
    }
    moved += unit;
  }
  sim.Run();
  DiskResult r;
  r.mbps = static_cast<double>(moved) / sim::ToSecondsF(sim.now()) / 1e6;
  r.seek_overhead = static_cast<double>(disk.seek_time()) /
                    static_cast<double>(disk.seek_time() + disk.transfer_time());
  return r;
}

double StripeAggregate(int64_t segment_size, int segments) {
  sim::Simulator sim;
  pfs::DiskGeometry geom;
  pfs::StripeStore store(&sim, 4, segment_size, geom);
  int done = 0;
  for (int s = 0; s < segments; ++s) {
    store.WriteSegment(s * 7 % store.capacity_segments(),
                       std::vector<uint8_t>(static_cast<size_t>(segment_size), 1), [&](bool) {
                         ++done;
                       });
  }
  sim.Run();
  return static_cast<double>(segment_size) * segments / sim::ToSecondsF(sim.now()) / 1e6;
}

}  // namespace

int main() {
  bench::PrintHeader("E09", "segment-sized transfers keep seek overhead under 10%",
                     ">= 5 MB/s per disk with whole-(megabyte-)segment I/O; 20 MB/s across "
                     "a four-disk stripe");

  sim::Table table({"transfer unit", "MB/s per disk", "seek overhead"});
  for (int64_t unit : {int64_t{4} << 10, int64_t{64} << 10, int64_t{256} << 10,
                       int64_t{1} << 20, int64_t{4} << 20}) {
    DiskResult r = SingleDisk(unit, 100);
    char label[32];
    if (unit >= (1 << 20)) {
      std::snprintf(label, sizeof(label), "%lld MiB", static_cast<long long>(unit >> 20));
    } else {
      std::snprintf(label, sizeof(label), "%lld KiB", static_cast<long long>(unit >> 10));
    }
    table.AddRow({label, sim::Table::Num(r.mbps, 2), sim::Table::Percent(r.seek_overhead)});
  }
  bench::PrintTable("single disk, alternating scattered reads and writes", table);

  sim::Table agg({"configuration", "aggregate MB/s"});
  const double one_disk = SingleDisk(1 << 20, 100).mbps;
  const double striped = StripeAggregate(1 << 20, 100);
  agg.AddRow({"1 disk, 1 MiB segments", sim::Table::Num(one_disk, 2)});
  agg.AddRow({"4 disks + parity, 1 MiB segments", sim::Table::Num(striped, 2)});
  bench::PrintTable("stripe scaling", agg);

  DiskResult meg = SingleDisk(1 << 20, 100);
  bench::PrintVerdict(meg.seek_overhead < 0.10 && meg.mbps >= 4.7 && striped >= 4 * 4.2,
                      "megabyte segments hold seek overhead below 10% and sustain ~5 MB/s "
                      "per disk; the four-disk stripe lands near the paper's 20 MB/s");
  return 0;
}
