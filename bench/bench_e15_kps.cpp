// E15 — Kernel-Privileged Sections vs whole-module kernel mode (§3.5).
//
// "The code that requires this access is often a tiny proportion of the
// total module; however, most operating systems would require that the whole
// module run in kernel mode." KPS masks interrupts only for the tiny
// privileged fraction; the experiment measures what that does to interrupt
// latency.
#include <memory>

#include "bench/bench_util.h"
#include "src/nemesis/atropos.h"
#include "src/nemesis/kernel.h"
#include "src/nemesis/workloads.h"
#include "src/sim/random.h"

using namespace pegasus;
using nemesis::QosParams;
using sim::Microseconds;
using sim::Milliseconds;
using sim::Seconds;

namespace {

struct Outcome {
  double p50_us = 0;
  double p99_us = 0;
  double max_us = 0;
  int64_t items = 0;
};

// A driver processes items of `total` CPU each, of which `priv_fraction`
// must run with interrupts masked. Random interrupts measure masking delay.
Outcome Run(nemesis::DriverDomain::Mode mode, sim::DurationNs total, double priv_fraction) {
  sim::Simulator sim;
  nemesis::Kernel kernel(&sim, std::make_unique<nemesis::AtroposScheduler>(1.0));
  const auto priv = static_cast<sim::DurationNs>(static_cast<double>(total) * priv_fraction);
  nemesis::DriverDomain driver("driver",
                               QosParams::Guaranteed(Milliseconds(60), Milliseconds(100)), mode,
                               total - priv, priv);
  nemesis::ServerDomain other("other", QosParams::BestEffort(), Microseconds(1));
  kernel.AddDomain(&driver);
  kernel.AddDomain(&other);
  nemesis::EventChannel* work = kernel.CreateChannel(nullptr, &driver, false);
  driver.BindInterruptChannel(work);
  nemesis::EventChannel* probe = kernel.CreateChannel(nullptr, &other, false);
  kernel.Start();

  // Steady work arrivals keep the driver busy...
  sim::Rng rng(11);
  for (sim::TimeNs t = 0; t < Seconds(10); t += total * 2) {
    sim.ScheduleAt(t, [&kernel, work]() { kernel.RaiseInterrupt(work); });
  }
  // ...while probe interrupts arrive at random points.
  for (int i = 0; i < 2000; ++i) {
    const auto at = static_cast<sim::TimeNs>(rng.UniformDouble() *
                                             static_cast<double>(Seconds(10)));
    sim.ScheduleAt(at, [&kernel, probe]() { kernel.RaiseInterrupt(probe); });
  }
  sim.RunUntil(Seconds(10));

  Outcome out;
  out.p50_us = kernel.interrupt_latency().Quantile(0.5) / 1e3;
  out.p99_us = kernel.interrupt_latency().Quantile(0.99) / 1e3;
  out.max_us = kernel.interrupt_latency().max() / 1e3;
  out.items = driver.items_done();
  return out;
}

}  // namespace

int main() {
  bench::PrintHeader("E15", "Kernel-Privileged Sections vs monolithic kernel mode",
                     "privileged work is a tiny fraction of a driver; masking interrupts "
                     "only inside short KPSes keeps interrupt latency low, where a "
                     "whole-module kernel mode masks them for entire items");

  sim::Table table({"mode", "item cost", "priv fraction", "irq p50", "irq p99", "irq max",
                    "items done"});
  for (sim::DurationNs total : {Milliseconds(2), Milliseconds(8)}) {
    for (double frac : {0.05, 0.20}) {
      Outcome kps = Run(nemesis::DriverDomain::Mode::kKps, total, frac);
      Outcome mono = Run(nemesis::DriverDomain::Mode::kMonolithic, total, frac);
      char cost[32];
      std::snprintf(cost, sizeof(cost), "%lldms",
                    static_cast<long long>(sim::ToMilliseconds(total)));
      table.AddRow({"KPS", cost, sim::Table::Percent(frac),
                    sim::Table::Num(kps.p50_us, 1) + "us",
                    sim::Table::Num(kps.p99_us, 1) + "us",
                    sim::Table::Num(kps.max_us, 1) + "us", sim::Table::Int(kps.items)});
      table.AddRow({"monolithic", cost, sim::Table::Percent(frac),
                    sim::Table::Num(mono.p50_us, 1) + "us",
                    sim::Table::Num(mono.p99_us, 1) + "us",
                    sim::Table::Num(mono.max_us, 1) + "us", sim::Table::Int(mono.items)});
    }
  }
  bench::PrintTable("interrupt delivery latency while a driver streams items", table);

  Outcome kps = Run(nemesis::DriverDomain::Mode::kKps, Milliseconds(8), 0.05);
  Outcome mono = Run(nemesis::DriverDomain::Mode::kMonolithic, Milliseconds(8), 0.05);
  bench::PrintVerdict(kps.p99_us * 5 < mono.p99_us && kps.items == mono.items,
                      "KPS keeps tail interrupt latency an order of magnitude below the "
                      "monolithic module at identical throughput — the dynamic, extensible "
                      "alternative to running whole modules in kernel mode");
  return 0;
}
