// E11 — Delayed writes against short file lifetimes (§5).
//
// "Baker et al. showed that 70% of files are deleted or overwritten within
// 30 seconds ... The data that does eventually get written to the log is
// reasonably stable, so garbage is created at a much lower rate." The
// client-agent safety copy is what makes the delay safe.
#include <memory>

#include "bench/bench_util.h"
#include "src/pfs/server.h"
#include "src/sim/random.h"

using namespace pegasus;
using sim::Seconds;

namespace {

struct Outcome {
  int64_t blocks_accepted = 0;
  int64_t blocks_to_disk = 0;
  int64_t died_in_buffer = 0;
  int64_t garbage_mb = 0;
  int64_t segments_written = 0;
};

// Baker-style workload: files are created steadily; 70% die (delete) with a
// short lifetime (exponential, mean 12 s => ~70% gone within 30 s of their
// *last* write), 30% live long.
Outcome Run(sim::DurationNs write_back_delay, int n_files) {
  sim::Simulator sim;
  pfs::PfsConfig cfg;
  cfg.segment_size = 64 << 10;
  cfg.block_size = 8 << 10;
  cfg.geometry.capacity_bytes = 512 << 20;
  cfg.write_back_delay = write_back_delay;
  auto server = std::make_unique<pfs::PegasusFileServer>(&sim, cfg);
  sim::Rng rng(2024);

  for (int i = 0; i < n_files; ++i) {
    const sim::TimeNs created = static_cast<sim::TimeNs>(
        rng.UniformDouble() * static_cast<double>(Seconds(300)));
    const bool short_lived = rng.Bernoulli(0.7);
    const auto lifetime = static_cast<sim::DurationNs>(
        short_lived ? rng.Exponential(static_cast<double>(Seconds(12)))
                    : rng.Exponential(static_cast<double>(Seconds(600))));
    const int blocks = static_cast<int>(rng.UniformInt(1, 4));
    sim.ScheduleAt(created, [&sim, &rng, srv = server.get(), lifetime, blocks]() {
      const pfs::FileId f = srv->CreateFile(pfs::FileType::kNormal);
      srv->Write(f, 0, std::vector<uint8_t>(static_cast<size_t>(blocks) * 8192, 1),
                 [](bool) {});
      // Half the dying files are overwritten once before deletion.
      if (rng.Bernoulli(0.5)) {
        sim.ScheduleAfter(lifetime / 2, [srv, f, blocks]() {
          srv->Write(f, 0, std::vector<uint8_t>(static_cast<size_t>(blocks) * 8192, 2),
                     [](bool) {});
        });
      }
      sim.ScheduleAfter(lifetime, [srv, f]() { srv->Delete(f); });
    });
  }
  sim.RunUntil(Seconds(400));
  bool synced = false;
  server->Sync([&]() { synced = true; });
  sim.RunUntilPredicate([&]() { return synced; });

  Outcome out;
  out.blocks_accepted = server->blocks_accepted();
  out.blocks_to_disk = server->blocks_written_to_disk();
  out.died_in_buffer = server->blocks_died_in_buffer();
  out.garbage_mb = server->garbage_bytes() >> 20;
  out.segments_written = server->segments_written();
  return out;
}

}  // namespace

int main() {
  bench::PrintHeader("E11", "delayed write-back vs the Baker file-lifetime distribution",
                     "70% of files die within ~30 s; delaying writes lets them die in "
                     "memory, cutting disk writes and the garbage creation rate");

  sim::Table table({"write-back delay", "blocks written", "to disk", "died in buffer",
                    "disk-write savings", "garbage created"});
  const int files = 3000;
  Outcome baseline{};
  for (sim::DurationNs delay : {Seconds(0), Seconds(1), Seconds(5), Seconds(15), Seconds(30),
                                Seconds(60)}) {
    Outcome o = Run(delay, files);
    if (delay == 0) {
      baseline = o;
    }
    table.AddRow({delay == 0 ? "write-through" : sim::FormatDuration(delay),
                  sim::Table::Int(o.blocks_accepted), sim::Table::Int(o.blocks_to_disk),
                  sim::Table::Int(o.died_in_buffer),
                  sim::Table::Percent(1.0 - static_cast<double>(o.blocks_to_disk) /
                                                static_cast<double>(baseline.blocks_to_disk)),
                  sim::Table::Int(o.garbage_mb) + " MiB"});
  }
  bench::PrintTable("3000 files over 400 simulated seconds, 70% short-lived", table);

  Outcome d30 = Run(Seconds(30), files);
  bench::PrintVerdict(
      d30.blocks_to_disk < baseline.blocks_to_disk / 2 && d30.garbage_mb < baseline.garbage_mb,
      "a 30 s write-back window absorbs most short-lived data: far fewer disk "
      "writes and a much lower garbage creation rate, exactly the paper's "
      "point (and the client-agent copy keeps it crash-safe — see E12)");
  return 0;
}
