// E08 — Name resolution and the invocation triad (§4).
//
// "Name resolution should be most efficient for local names. This implies
// that local names should be shortest." And invocation degrades gracefully:
// procedure call, protected call, remote procedure call — with the maillon
// imposing "very little overhead" once resolved.
#include "bench/bench_util.h"
#include "src/atm/network.h"
#include "src/naming/name_space.h"
#include "src/naming/object.h"
#include "src/naming/rpc.h"

using namespace pegasus;
using sim::Microseconds;

int main() {
  bench::PrintHeader("E08", "naming and invocation costs",
                     "local names resolve fastest; invocation cost ordering is procedure "
                     "call < protected call < RPC; a resolved maillon adds almost nothing");

  // --- resolution steps vs path depth ---
  sim::Simulator sim;
  naming::EchoObject obj;
  auto handle_for = [&](uint64_t id) {
    return naming::ObjectHandle(naming::ObjectRef{id}, [&](naming::ObjectRef) {
      return std::make_shared<naming::LocalPath>(&sim, &obj);
    });
  };
  naming::NameSpace ns("process");
  ns.Bind("cam", handle_for(1));
  ns.Bind("dev/audio", handle_for(2));
  ns.Bind("global/site/dept/host/fs/file", handle_for(3));

  sim::Table res({"name", "depth", "steps walked"});
  for (const char* path : {"cam", "dev/audio", "global/site/dept/host/fs/file"}) {
    ns.ResolveLocal(path);
    res.AddRow({path, sim::Table::Int(static_cast<long long>(
                          naming::NameSpace::SplitPath(path).size())),
                sim::Table::Int(ns.last_resolution_steps())});
  }
  bench::PrintTable("resolution work vs name length (local objects near the root win)", res);

  // --- invocation triad over the same object ---
  // Remote setup: RPC over a 2-switch ATM path.
  atm::Network net(&sim);
  atm::Switch* sw1 = net.AddSwitch("sw1", 4);
  atm::Switch* sw2 = net.AddSwitch("sw2", 4);
  net.ConnectSwitches(sw1, 3, sw2, 3, 155'000'000);
  atm::Endpoint* cep = net.AddEndpoint("client", sw1, 0, 155'000'000);
  atm::Endpoint* sep = net.AddEndpoint("server", sw2, 0, 155'000'000);
  atm::MessageTransport ct(cep);
  atm::MessageTransport st(sep);
  auto pair = net.OpenDuplex(cep, sep);
  naming::RpcServer rpc_server(&sim, &st);
  rpc_server.Serve(pair->first.destination_vci, pair->second.source_vci);
  rpc_server.ExportObject("echo", &obj);
  naming::RpcClient rpc_client(&sim, &ct, pair->first.source_vci,
                               pair->second.destination_vci);

  auto time_path = [&](naming::InvocationPath& path, int calls) {
    sim::Summary lat;
    for (int i = 0; i < calls; ++i) {
      const sim::TimeNs start = sim.now();
      bool done = false;
      path.Call("echo", std::vector<uint8_t>(64), [&](naming::InvokeStatus,
                                                      std::vector<uint8_t>) { done = true; });
      sim.RunUntilPredicate([&]() { return done; });
      lat.Add(static_cast<double>(sim.now() - start));
    }
    return lat.mean();
  };
  naming::LocalPath local(&sim, &obj);
  naming::ProtectedPath prot(&sim, &obj);
  naming::RemotePath remote(&rpc_client, "echo");

  const double t_local = time_path(local, 200);
  const double t_prot = time_path(prot, 200);
  const double t_remote = time_path(remote, 200);
  sim::Table inv({"relation", "mechanism", "mean latency", "vs procedure call"});
  inv.AddRow({"same protection domain", "procedure-call",
              sim::Table::Num(t_local / 1e3, 2) + "us", "1.0x"});
  inv.AddRow({"same machine", "protected-call", sim::Table::Num(t_prot / 1e3, 2) + "us",
              sim::Table::Factor(t_prot / t_local)});
  inv.AddRow({"different machines", "remote-procedure-call",
              sim::Table::Num(t_remote / 1e3, 2) + "us",
              sim::Table::Factor(t_remote / t_local)});
  bench::PrintTable("one invocation, 64-byte argument, by domain relation", inv);

  // --- maillon overhead: first call (resolution) vs subsequent (cached) ---
  naming::ObjectHandle maillon(naming::ObjectRef{9}, [&](naming::ObjectRef) {
    return std::make_shared<naming::LocalPath>(&sim, &obj);
  });
  sim::TimeNs t0 = sim.now();
  bool done = false;
  maillon.Invoke("echo", {}, [&](naming::InvokeStatus, std::vector<uint8_t>) { done = true; });
  sim.RunUntilPredicate([&]() { return done; });
  const sim::TimeNs first_call = sim.now() - t0;
  sim::Summary cached;
  for (int i = 0; i < 100; ++i) {
    t0 = sim.now();
    done = false;
    maillon.Invoke("echo", {}, [&](naming::InvokeStatus, std::vector<uint8_t>) { done = true; });
    sim.RunUntilPredicate([&]() { return done; });
    cached.Add(static_cast<double>(sim.now() - t0));
  }
  sim::Table mtab({"call", "latency"});
  mtab.AddRow({"first (resolves the maillon)", sim::FormatDuration(first_call)});
  mtab.AddRow({"cached (common case)",
               sim::FormatDuration(static_cast<sim::DurationNs>(cached.mean()))});
  bench::PrintTable("maillon indirection cost", mtab);

  bench::PrintVerdict(t_local < t_prot && t_prot < t_remote &&
                          cached.mean() <= static_cast<double>(first_call),
                      "procedure < protected < remote holds (here ~1 : ~300 : ~3000), and "
                      "the cached maillon costs no more than the direct call path");
  return 0;
}
