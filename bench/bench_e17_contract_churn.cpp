// E17 — Contract-churn throughput of the admission plane (§2.2, §6).
//
// PR 6 measured the control plane becoming the hot path: at metro-large
// scale, mean admission wall latency reached ~1 ms per session because every
// open re-ran the pathfinder three times per leg and every congestion signal
// scanned all VCs. This harness measures the signalling plane the way an
// exchange would be specified: sustained open / renegotiate / close
// contract operations per second on generated metro fabrics — pure
// control-plane work against the route cache, the flat reservation ledger
// and the per-link VC index — alongside the scenario engine's end-to-end
// admission latency on the same fabrics. After every churn round the
// reservation ledger must drain to exactly zero on every link.
//
// Modes:
//   (default)        full sweep: churn ops/s on small/mid/large fabrics +
//                    scenario-engine admission latency on the large one
//   smoke [secs]     CI-sized run; exits non-zero if nothing churned or the
//                    ledger failed to drain
//   snapshot         machine-readable JSON (churn ops/s + metro admission
//                    latency points incl. fleet fingerprints)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/stream.h"
#include "src/scenario/topology.h"
#include "src/scenario/workload.h"
#include "src/sim/random.h"

using namespace pegasus;
using sim::Seconds;

namespace {

double SecondsSince(const std::chrono::steady_clock::time_point& t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

scenario::TopologyParams Metro(int cores, int aggs, int edges, int hosts) {
  scenario::TopologyParams p;
  p.core_switches = cores;
  p.agg_per_core = aggs;
  p.edge_per_agg = edges;
  p.hosts_per_edge = hosts;
  p.storage_per_core = 2;
  return p;
}

// One fabric's churn measurement: rounds of (open K sessions, renegotiate
// each down, close all), wall-timed per phase.
struct ChurnPoint {
  std::string name;
  scenario::TopologyParams topo;
  int rounds = 3;
  int sessions_per_round = 0;  // 0 = one per host
  // results
  int switches = 0;
  int hosts = 0;
  int64_t opens = 0;
  int64_t open_rejects = 0;
  int64_t renegotiates = 0;
  int64_t closes = 0;
  double open_seconds = 0;
  double reneg_seconds = 0;
  double close_seconds = 0;
  bool drained = true;

  double opens_per_sec() const { return open_seconds > 0 ? opens / open_seconds : 0; }
  double renegs_per_sec() const { return reneg_seconds > 0 ? renegotiates / reneg_seconds : 0; }
  double closes_per_sec() const { return close_seconds > 0 ? closes / close_seconds : 0; }
};

void RunChurn(ChurnPoint* point, uint64_t seed) {
  sim::Simulator sim;
  core::PegasusSystem system(&sim);
  const scenario::MetroTopology topo = scenario::BuildMetroTopology(system, point->topo);
  point->switches = point->topo.num_switches();
  point->hosts = point->topo.num_hosts();
  const int num_hosts = static_cast<int>(topo.hosts.size());
  const int per_round =
      point->sessions_per_round > 0 ? point->sessions_per_round : num_hosts;
  const int64_t base_vcs = system.network().open_vc_count();

  sim::Rng rng(seed);
  std::vector<core::StreamSession*> open;
  open.reserve(static_cast<size_t>(per_round));
  for (int round = 0; round < point->rounds; ++round) {
    // --- open phase: phone-class contracts between random distinct hosts ---
    auto t0 = std::chrono::steady_clock::now();
    for (int k = 0; k < per_round; ++k) {
      const int a = static_cast<int>(rng.UniformInt(0, num_hosts - 1));
      int b = static_cast<int>(rng.UniformInt(0, num_hosts - 2));
      if (b >= a) {
        ++b;
      }
      core::Workstation* src = topo.hosts[static_cast<size_t>(a)];
      core::Workstation* dst = topo.hosts[static_cast<size_t>(b)];
      core::StreamBuilder builder = system.BuildStream();
      builder.FromEndpoint(src, src->host()).ToEndpoint(dst, dst->host());
      auto r = builder.WithSpec(core::StreamSpec::Video(25.0, 2'000'000)).Open();
      if (r.report.ok()) {
        open.push_back(r.session);
      } else {
        ++point->open_rejects;
      }
    }
    point->opens += static_cast<int64_t>(open.size());
    point->open_seconds += SecondsSince(t0);

    // --- renegotiate phase: every session steps down to 60% ---
    t0 = std::chrono::steady_clock::now();
    for (core::StreamSession* s : open) {
      core::StreamSpec spec = s->contract().granted;
      spec.bandwidth_bps = spec.bandwidth_bps * 6 / 10;
      if (s->Renegotiate(spec).ok()) {
        ++point->renegotiates;
      }
    }
    point->reneg_seconds += SecondsSince(t0);

    // --- close phase: tear everything down ---
    t0 = std::chrono::steady_clock::now();
    for (core::StreamSession* s : open) {
      s->Close();
    }
    point->closes += static_cast<int64_t>(open.size());
    point->close_seconds += SecondsSince(t0);
    open.clear();

    // The books must drain to exactly zero after every round — the flat
    // ledger has no tolerance for leaks.
    if (system.network().open_vc_count() != base_vcs) {
      point->drained = false;
    }
    for (const auto& link : system.network().links()) {
      if (system.network().ReservedBandwidth(link.get()) != 0) {
        point->drained = false;
        break;
      }
    }
  }
}

// Scenario-engine point (identical parameters to bench_e16) for end-to-end
// admission latency under real Poisson churn.
struct ScenarioPoint {
  std::string name;
  scenario::TopologyParams topo;
  double arrivals_per_sec = 0;
  int seconds = 6;
  double data_fraction = 0.05;
  scenario::FleetMetrics metrics;
  int switches = 0;
};

void RunScenario(ScenarioPoint* point, uint64_t seed) {
  sim::Simulator sim;
  core::PegasusSystem system(&sim);
  const scenario::MetroTopology topo = scenario::BuildMetroTopology(system, point->topo);
  point->switches = point->topo.num_switches();
  scenario::WorkloadParams w;
  w.seed = seed;
  w.arrivals_per_sec = point->arrivals_per_sec;
  w.mean_holding_sec = 5.0;
  w.data_session_fraction = point->data_fraction;
  w.enable_qos_monitor = true;
  scenario::ScenarioEngine engine(&system, &topo, w);
  point->metrics = engine.Run(Seconds(point->seconds));
}

void AddChurnRow(sim::Table* table, const ChurnPoint& p) {
  table->AddRow({p.name, sim::Table::Int(p.switches), sim::Table::Int(p.hosts),
                 sim::Table::Int(p.opens), sim::Table::Int(p.open_rejects),
                 sim::Table::Num(p.opens_per_sec() / 1e3, 1),
                 sim::Table::Num(p.renegs_per_sec() / 1e3, 1),
                 sim::Table::Num(p.closes_per_sec() / 1e3, 1),
                 std::string(p.drained ? "yes" : "NO")});
}

int RunSmoke(int seconds) {
  (void)seconds;  // same CLI shape as the other bench smokes
  ChurnPoint p;
  p.name = "smoke";
  p.topo = Metro(1, 2, 2, 8);
  p.topo.storage_per_core = 1;
  p.rounds = 2;
  RunChurn(&p, 17);
  std::printf("smoke: %d switches, %d hosts: %lld opens (%lld rejected), %lld renegotiations, "
              "%lld closes; ledger drained: %s\n",
              p.switches, p.hosts, static_cast<long long>(p.opens),
              static_cast<long long>(p.open_rejects), static_cast<long long>(p.renegotiates),
              static_cast<long long>(p.closes), p.drained ? "yes" : "NO");
  const bool ok = p.opens > 0 && p.renegotiates > 0 && p.closes == p.opens && p.drained;
  bench::PrintVerdict(
      ok, ok ? "contract churn opened, renegotiated and closed with the ledger drained to zero"
             : "contract churn failed to cycle contracts or leaked reservations");
  return ok ? 0 : 1;
}

int RunSnapshot() {
  std::vector<ChurnPoint> churn(2);
  churn[0].name = "churn-small";
  churn[0].topo = Metro(1, 2, 2, 8);
  churn[1].name = "churn-mid";
  churn[1].topo = Metro(2, 2, 3, 16);
  for (auto& p : churn) {
    RunChurn(&p, 17);
  }
  std::vector<ScenarioPoint> scen(2);
  scen[0] = ScenarioPoint{"metro-small", Metro(1, 2, 2, 8), 40.0, 4, 0.05, {}, 0};
  scen[1] = ScenarioPoint{"metro-mid", Metro(2, 2, 3, 16), 120.0, 4, 0.02, {}, 0};
  for (auto& p : scen) {
    RunScenario(&p, 16);
  }

  std::printf("{\n  \"bench\": \"e17_contract_churn\",\n  \"churn\": [\n");
  for (size_t i = 0; i < churn.size(); ++i) {
    const ChurnPoint& p = churn[i];
    std::printf("    {\"name\": \"%s\", \"switches\": %d, \"hosts\": %d, \"opens\": %lld, "
                "\"open_rejects\": %lld, \"opens_per_sec\": %.0f, "
                "\"renegotiates_per_sec\": %.0f, \"closes_per_sec\": %.0f, "
                "\"ledger_drained\": %s}%s\n",
                p.name.c_str(), p.switches, p.hosts, static_cast<long long>(p.opens),
                static_cast<long long>(p.open_rejects), p.opens_per_sec(), p.renegs_per_sec(),
                p.closes_per_sec(), p.drained ? "true" : "false",
                i + 1 < churn.size() ? "," : "");
  }
  std::printf("  ],\n  \"admission\": [\n");
  for (size_t i = 0; i < scen.size(); ++i) {
    const scenario::FleetMetrics& m = scen[i].metrics;
    std::printf("    {\"name\": \"%s\", \"switches\": %d, \"admit_mean_us\": %.2f, "
                "\"admit_max_us\": %.2f, \"arrivals\": %lld, \"admitted\": %lld, "
                "\"fingerprint\": \"%llx\"}%s\n",
                scen[i].name.c_str(), scen[i].switches, m.mean_admit_wall_us(),
                m.admit_wall_ns_max / 1e3, static_cast<long long>(m.arrivals),
                static_cast<long long>(m.admitted),
                static_cast<unsigned long long>(m.Fingerprint()),
                i + 1 < scen.size() ? "," : "");
  }
  std::printf("  ]\n}\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "smoke") == 0) {
    const int seconds = argc > 2 ? std::max(2, std::atoi(argv[2])) : 3;
    return RunSmoke(seconds);
  }
  if (argc > 1 && std::strcmp(argv[1], "snapshot") == 0) {
    return RunSnapshot();
  }

  bench::PrintHeader(
      "E17", "contract-churn throughput of the admission plane",
      "at metro scale the control plane is a hot path too: open/renegotiate/close "
      "ops/s must hold up on thousand-switch fabrics, with the reservation ledger "
      "draining to zero after every churn round");

  // --- sweep 1: churn ops/s vs fabric size ---
  std::vector<ChurnPoint> churn(3);
  churn[0].name = "churn-small";
  churn[0].topo = Metro(1, 2, 2, 8);
  churn[1].name = "churn-mid";
  churn[1].topo = Metro(2, 2, 3, 16);
  churn[2].name = "churn-large";
  churn[2].topo = Metro(3, 3, 4, 30);
  for (auto& p : churn) {
    RunChurn(&p, 17);
  }
  sim::Table t1({"point", "switches", "hosts", "opens", "rejects", "open kop/s",
                 "reneg kop/s", "close kop/s", "drained"});
  for (const auto& p : churn) {
    AddChurnRow(&t1, p);
  }
  bench::PrintTable("contract churn (phone-class 2 Mb/s contracts, 60% renegotiation)", t1);

  // --- sweep 2: end-to-end admission latency, identical to E16's points ---
  std::vector<ScenarioPoint> scen(2);
  scen[0] = ScenarioPoint{"metro-mid", Metro(2, 2, 3, 16), 120.0, 6, 0.02, {}, 0};
  scen[1] = ScenarioPoint{"metro-large", Metro(3, 3, 4, 30), 400.0, 8, 0.02, {}, 0};
  for (auto& p : scen) {
    RunScenario(&p, 16);
  }
  sim::Table t2({"point", "switches", "arrivals", "admitted", "admit us", "admit max us"});
  for (const auto& p : scen) {
    const scenario::FleetMetrics& m = p.metrics;
    t2.AddRow({p.name, sim::Table::Int(p.switches), sim::Table::Int(m.arrivals),
               sim::Table::Int(m.admitted), sim::Table::Num(m.mean_admit_wall_us(), 1),
               sim::Table::Num(m.admit_wall_ns_max / 1e3, 1)});
  }
  bench::PrintTable("scenario-engine admission latency (Poisson churn, seed 16)", t2);

  const bool churned = churn[0].opens > 0 && churn[1].opens > 0 && churn[2].opens > 0 &&
                       churn[2].renegotiates > 0 && churn[2].closes == churn[2].opens;
  const bool drained = churn[0].drained && churn[1].drained && churn[2].drained;
  const bool admitted = scen[0].metrics.admitted > 0 && scen[1].metrics.admitted > 0;
  const bool holds = churned && drained && admitted;

  char text[256];
  std::snprintf(text, sizeof(text),
                "%lld contracts churned across three fabrics (largest %d switches) with the "
                "reservation ledger drained to zero after every round",
                static_cast<long long>(churn[0].opens + churn[1].opens + churn[2].opens),
                churn[2].switches);
  bench::PrintVerdict(holds, text);
  return holds ? 0 : 1;
}
