// E18 — Broadcast fan-out over point-to-multipoint VC trees (§2.2, §6).
//
// The millions-of-users story is one source feeding thousands of sinks:
// live TV, hot VOD titles. Per-viewer unicast costs O(viewers × path) cells
// and O(viewers) reservations on the head-end's uplink; a point-to-
// multipoint VC tree costs O(tree edges) cells — each edge carries the
// train exactly once, switches replicate only where the tree branches — and
// ONE stream's reservation on every shared trunk no matter how many viewers
// hang off it. Viewers collapse at the access link: the first viewer behind
// a host grafts the host's leaf, later viewers behind the same host ride it
// for free (the broadcast analogue of IGMP join suppression).
//
// This harness opens one broadcast channel on a generated metro fabric,
// sweeps the audience from tens to ten thousand viewers, pumps frames for a
// fixed stretch of simulated time, and compares measured cell-hops against
// the per-viewer unicast baseline (each viewer's resolved path length times
// the cells one delivery takes — what AtmCamera::AddOutput-style source
// re-sending would put on the wire). After every point the tree closes and
// the reservation ledger must drain to zero.
//
// Modes:
//   (default)        full viewer sweep 10 -> 10k on metro-mid + verdict
//   smoke [secs]     CI-sized run on metro-small; exits non-zero if the
//                    tree under-delivers, over-reserves or leaks
//   snapshot         machine-readable JSON (sweep points + acceptance)
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/atm/link.h"
#include "src/core/stream.h"
#include "src/scenario/topology.h"

using namespace pegasus;

namespace {

constexpr sim::DurationNs kFrameInterval = sim::Milliseconds(40);
constexpr int64_t kChannelBps = 3'000'000;

scenario::TopologyParams Metro(int cores, int aggs, int edges, int hosts) {
  scenario::TopologyParams p;
  p.core_switches = cores;
  p.agg_per_core = aggs;
  p.edge_per_agg = edges;
  p.hosts_per_edge = hosts;
  p.storage_per_core = 1;
  return p;
}

// One audience size on one fabric: open the tree, graft every distinct
// viewer host, pump frames, measure.
struct SweepPoint {
  std::string name;
  scenario::TopologyParams topo;
  int viewers = 0;
  int seconds = 1;
  // results
  int leaf_hosts = 0;       // distinct access links the audience collapses to
  int tree_edges = 0;       // links the tree actually reserves and carries
  int frames = 0;
  uint64_t mcast_cells = 0;     // measured: cell-hops the tree put on links
  uint64_t unicast_cells = 0;   // baseline: sum over viewers of path x train
  double mean_path_links = 0;   // per-viewer unicast path length
  int64_t trunk_reserved_bps = 0;  // on the head-end's uplink, audience-wide
  int64_t granted_bps = 0;
  bool edges_single_reserved = true;  // every tree edge carries ONE stream
  bool drained = true;

  double ratio() const {
    return mcast_cells > 0 ? static_cast<double>(unicast_cells) / static_cast<double>(mcast_cells)
                           : 0.0;
  }
  // Cells the fabric moves per frame actually delivered to a viewer.
  double mcast_cells_per_delivered_frame() const {
    const double delivered = static_cast<double>(frames) * static_cast<double>(viewers);
    return delivered > 0 ? static_cast<double>(mcast_cells) / delivered : 0.0;
  }
  double unicast_cells_per_delivered_frame() const {
    const double delivered = static_cast<double>(frames) * static_cast<double>(viewers);
    return delivered > 0 ? static_cast<double>(unicast_cells) / delivered : 0.0;
  }
};

void RunPoint(SweepPoint* p) {
  sim::Simulator sim;
  core::PegasusSystem system(&sim);
  const scenario::MetroTopology topo = scenario::BuildMetroTopology(system, p->topo);
  atm::Network& network = system.network();
  const int num_hosts = static_cast<int>(topo.hosts.size());

  // Audience layout: head-end on host 0, viewers dealt round-robin over the
  // remaining hosts — the worst case for the tree (it must reach the
  // largest possible number of distinct access links).
  core::Workstation* head = topo.hosts[0];
  std::vector<int> viewers_on_host(static_cast<size_t>(num_hosts), 0);
  for (int v = 0; v < p->viewers; ++v) {
    ++viewers_on_host[static_cast<size_t>(1 + v % (num_hosts - 1))];
  }

  // Open the tree with the first leaf, then graft the other distinct hosts.
  core::MulticastSink first;
  first.ws = topo.hosts[1];
  first.endpoint = topo.hosts[1]->host();
  auto r = system.BuildStream("e18/channel")
               .FromEndpoint(head, head->host())
               .ToMany({first})
               .WithSpec(core::StreamSpec::Video(25.0, kChannelBps))
               .Open();
  if (!r.report.ok()) {
    std::fprintf(stderr, "e18: channel open failed: %s\n",
                 core::AdmitFailureName(r.report.failure));
    return;
  }
  core::StreamSession* session = r.session;
  for (int h = 2; h < num_hosts; ++h) {
    if (viewers_on_host[static_cast<size_t>(h)] == 0) {
      continue;
    }
    core::MulticastSink sink;
    sink.ws = topo.hosts[static_cast<size_t>(h)];
    sink.endpoint = topo.hosts[static_cast<size_t>(h)]->host();
    if (!session->AddSink(sink).ok()) {
      std::fprintf(stderr, "e18: graft to host %d refused\n", h);
      session->Close();
      return;
    }
  }
  p->leaf_hosts = session->sink_count();
  p->granted_bps = session->legs().front().granted_bps;

  // The reservation story: every edge of the tree — the head-end's uplink
  // above all, shared by the entire audience — carries exactly ONE stream's
  // bandwidth.
  const std::vector<atm::Link*>* tree_links = network.VcLinks(session->legs().front().vc);
  p->tree_edges = tree_links != nullptr ? static_cast<int>(tree_links->size()) : 0;
  if (tree_links != nullptr) {
    for (atm::Link* link : *tree_links) {
      if (network.ReservedBandwidth(link) != p->granted_bps) {
        p->edges_single_reserved = false;
      }
    }
    p->trunk_reserved_bps = network.ReservedBandwidth(tree_links->front());
  }

  // Per-viewer unicast baseline: each viewer's resolved path length. The
  // head would put the whole train on every link of every viewer's path.
  double path_links_total = 0;
  for (int h = 1; h < num_hosts; ++h) {
    if (viewers_on_host[static_cast<size_t>(h)] == 0) {
      continue;
    }
    const auto route = network.ResolveRoute(head->host(), topo.hosts[static_cast<size_t>(h)]->host());
    path_links_total += route.has_value()
                            ? static_cast<double>(route->links.size()) *
                                  viewers_on_host[static_cast<size_t>(h)]
                            : 0.0;
  }
  p->mean_path_links = p->viewers > 0 ? path_links_total / p->viewers : 0.0;

  // Pump frames at the channel cadence and measure cell-hops across every
  // link in the fabric.
  uint64_t cells0 = 0;
  for (const auto& link : network.links()) {
    cells0 += link->cells_sent();
  }
  const uint64_t trunk0 =
      tree_links != nullptr ? tree_links->front()->cells_sent() : 0;

  const int target_frames = p->seconds * 25;
  const size_t bytes = static_cast<size_t>(kChannelBps / 8 / 25);
  std::vector<uint8_t> payload(bytes, 0xe1);
  const atm::Vci vci = session->source_vci();
  std::function<void()> pump = [&]() {
    if (p->frames >= target_frames) {
      return;
    }
    ++p->frames;
    head->host_transport()->Send(vci, payload, kChannelBps);
    sim.ScheduleAfter(kFrameInterval, pump);
  };
  pump();
  sim.RunUntil(sim.now() + sim::Seconds(p->seconds) + sim::Milliseconds(100));

  uint64_t cells1 = 0;
  for (const auto& link : network.links()) {
    cells1 += link->cells_sent();
  }
  p->mcast_cells = cells1 - cells0;
  // One delivery's train, measured on the trunk (it carries the stream
  // exactly once), scaled by every viewer's path length.
  const uint64_t train_cells =
      tree_links != nullptr ? tree_links->front()->cells_sent() - trunk0 : 0;
  p->unicast_cells = static_cast<uint64_t>(path_links_total * static_cast<double>(train_cells));

  session->Close();
  for (const auto& link : network.links()) {
    if (network.ReservedBandwidth(link.get()) != 0) {
      p->drained = false;
      break;
    }
  }
}

void AddRow(sim::Table* table, const SweepPoint& p) {
  table->AddRow({sim::Table::Int(p.viewers), sim::Table::Int(p.leaf_hosts),
                 sim::Table::Int(p.tree_edges), sim::Table::Int(static_cast<int64_t>(p.mcast_cells)),
                 sim::Table::Int(static_cast<int64_t>(p.unicast_cells)),
                 sim::Table::Num(p.ratio(), 1),
                 sim::Table::Num(p.mcast_cells_per_delivered_frame(), 2),
                 sim::Table::Num(p.unicast_cells_per_delivered_frame(), 1),
                 sim::Table::Num(static_cast<double>(p.trunk_reserved_bps) / 1e6, 1)});
}

std::vector<SweepPoint> MidSweep(int seconds) {
  std::vector<SweepPoint> sweep;
  for (int viewers : {10, 100, 1000, 10000}) {
    SweepPoint p;
    p.name = "metro-mid/" + std::to_string(viewers);
    p.topo = Metro(2, 2, 3, 16);
    p.viewers = viewers;
    p.seconds = seconds;
    sweep.push_back(p);
  }
  return sweep;
}

bool Acceptance(const std::vector<SweepPoint>& sweep, double* ratio_at_1k) {
  bool ok = !sweep.empty();
  *ratio_at_1k = 0;
  for (const SweepPoint& p : sweep) {
    ok = ok && p.frames > 0 && p.mcast_cells > 0 && p.edges_single_reserved &&
         p.trunk_reserved_bps == p.granted_bps && p.drained;
    if (p.viewers == 1000) {
      *ratio_at_1k = p.ratio();
    }
  }
  return ok && *ratio_at_1k >= 10.0;
}

int RunSmoke(int seconds) {
  SweepPoint p;
  p.name = "smoke";
  p.topo = Metro(1, 2, 2, 8);
  p.viewers = 100;
  p.seconds = std::max(1, seconds / 2);
  RunPoint(&p);
  std::printf("smoke: %d viewers on %d access links, tree %d edges: %llu cell-hops vs "
              "%llu unicast baseline (%.1fx), trunk reserved %.1f Mb/s, drained: %s\n",
              p.viewers, p.leaf_hosts, p.tree_edges,
              static_cast<unsigned long long>(p.mcast_cells),
              static_cast<unsigned long long>(p.unicast_cells), p.ratio(),
              static_cast<double>(p.trunk_reserved_bps) / 1e6, p.drained ? "yes" : "NO");
  const bool ok = p.frames > 0 && p.mcast_cells > 0 && p.ratio() >= 5.0 &&
                  p.edges_single_reserved && p.trunk_reserved_bps == p.granted_bps && p.drained;
  bench::PrintVerdict(ok,
                      ok ? "one tree fed the whole audience with one stream's reservation "
                           "per edge and the ledger drained to zero"
                         : "broadcast tree under-delivered, over-reserved or leaked");
  return ok ? 0 : 1;
}

int RunSnapshot() {
  std::vector<SweepPoint> sweep = MidSweep(1);
  for (auto& p : sweep) {
    RunPoint(&p);
  }
  double ratio_at_1k = 0;
  const bool ok = Acceptance(sweep, &ratio_at_1k);
  std::printf("{\n  \"bench\": \"e18_broadcast\",\n  \"sweep\": [\n");
  for (size_t i = 0; i < sweep.size(); ++i) {
    const SweepPoint& p = sweep[i];
    std::printf("    {\"viewers\": %d, \"leaf_hosts\": %d, \"tree_edges\": %d, "
                "\"mcast_cells\": %llu, \"unicast_cells\": %llu, \"ratio\": %.1f, "
                "\"mcast_cells_per_delivered_frame\": %.3f, "
                "\"unicast_cells_per_delivered_frame\": %.1f, "
                "\"trunk_reserved_bps\": %lld, \"granted_bps\": %lld, "
                "\"edges_single_reserved\": %s, \"ledger_drained\": %s}%s\n",
                p.viewers, p.leaf_hosts, p.tree_edges,
                static_cast<unsigned long long>(p.mcast_cells),
                static_cast<unsigned long long>(p.unicast_cells), p.ratio(),
                p.mcast_cells_per_delivered_frame(), p.unicast_cells_per_delivered_frame(),
                static_cast<long long>(p.trunk_reserved_bps),
                static_cast<long long>(p.granted_bps), p.edges_single_reserved ? "true" : "false",
                p.drained ? "true" : "false", i + 1 < sweep.size() ? "," : "");
  }
  std::printf("  ],\n  \"ratio_at_1k_viewers\": %.1f,\n  \"acceptance\": %s\n}\n", ratio_at_1k,
              ok ? "true" : "false");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "smoke") == 0) {
    const int seconds = argc > 2 ? std::max(2, std::atoi(argv[2])) : 2;
    return RunSmoke(seconds);
  }
  if (argc > 1 && std::strcmp(argv[1], "snapshot") == 0) {
    return RunSnapshot();
  }

  bench::PrintHeader(
      "E18", "broadcast fan-out over point-to-multipoint VC trees",
      "one source, ten thousand viewers: cells must scale with the delivery tree's "
      "edges, not the audience, and every shared trunk must carry exactly one "
      "stream's reservation no matter how many viewers sit behind it");

  std::vector<SweepPoint> sweep = MidSweep(2);
  for (auto& p : sweep) {
    RunPoint(&p);
  }
  sim::Table t({"viewers", "leaf hosts", "tree edges", "mcast cells", "unicast cells", "ratio",
                "mc/frame", "uc/frame", "trunk Mb/s"});
  for (const auto& p : sweep) {
    AddRow(&t, p);
  }
  bench::PrintTable("viewer sweep on metro-mid (one 3 Mb/s channel, 2 s of frames)", t);

  double ratio_at_1k = 0;
  const bool holds = Acceptance(sweep, &ratio_at_1k);
  char text[256];
  std::snprintf(text, sizeof(text),
                "at 1k viewers the tree moved %.1fx fewer cells than per-viewer unicast, with "
                "one stream's bandwidth reserved per tree edge at every audience size",
                ratio_at_1k);
  bench::PrintVerdict(holds, text);
  return holds ? 0 : 1;
}
