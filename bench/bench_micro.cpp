// Microbenchmarks of the hot paths (google-benchmark).
//
// These measure the *implementation's* wall-clock costs — useful when
// changing the codec, CRC, AAL5 or event-queue internals — as opposed to the
// E01..E15 harnesses, which measure simulated-time behaviour.
#include <benchmark/benchmark.h>

#include "src/atm/aal5.h"
#include "src/atm/crc32.h"
#include "src/devices/compression.h"
#include "src/devices/frame_source.h"
#include "src/naming/name_space.h"
#include "src/sim/event_queue.h"
#include "src/sim/random.h"

using namespace pegasus;

namespace {

void BM_Crc32(benchmark::State& state) {
  std::vector<uint8_t> data(static_cast<size_t>(state.range(0)));
  sim::Rng rng(1);
  for (auto& b : data) {
    b = static_cast<uint8_t>(rng.Next());
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(atm::Crc32(data.data(), data.size()));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Crc32)->Arg(48)->Arg(1024)->Arg(65536);

void BM_Aal5SegmentReassemble(benchmark::State& state) {
  std::vector<uint8_t> sdu(static_cast<size_t>(state.range(0)), 0xAB);
  for (auto _ : state) {
    auto cells = atm::Aal5Segment(42, sdu);
    atm::Aal5Reassembler r;
    std::optional<std::vector<uint8_t>> out;
    for (const atm::Cell& c : cells) {
      out = r.Push(c);
    }
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Aal5SegmentReassemble)->Arg(48)->Arg(1024)->Arg(16384);

void BM_TileCompress(benchmark::State& state) {
  dev::FrameSource source(64, 64, 0.2);
  dev::Frame frame = source.Render(0);
  dev::Tile tile = frame.ExtractTile(16, 16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dev::CompressTile(tile.data, static_cast<int>(state.range(0))));
  }
}
BENCHMARK(BM_TileCompress)->Arg(30)->Arg(60)->Arg(90);

void BM_TileRoundTrip(benchmark::State& state) {
  dev::FrameSource source(64, 64, 0.2);
  dev::Frame frame = source.Render(0);
  dev::Tile tile = frame.ExtractTile(16, 16);
  for (auto _ : state) {
    auto c = dev::CompressTile(tile.data, 60);
    benchmark::DoNotOptimize(dev::DecompressTile(c));
  }
}
BENCHMARK(BM_TileRoundTrip);

void BM_SimulatorEventChurn(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    int64_t count = 0;
    for (int i = 0; i < state.range(0); ++i) {
      sim.ScheduleAt(i * 10, [&count]() { ++count; });
    }
    sim.Run();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_SimulatorEventChurn)->Arg(1000)->Arg(100000);

void BM_NameResolution(benchmark::State& state) {
  sim::Simulator sim;
  naming::EchoObject obj;
  naming::NameSpace ns("bench");
  const int depth = static_cast<int>(state.range(0));
  std::string path;
  for (int i = 0; i < depth; ++i) {
    path += (i > 0 ? "/" : "");
    path += "d" + std::to_string(i);
  }
  ns.Bind(path, naming::ObjectHandle(naming::ObjectRef{1}, [&](naming::ObjectRef) {
            return std::make_shared<naming::LocalPath>(&sim, &obj);
          }));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ns.ResolveLocal(path));
  }
}
BENCHMARK(BM_NameResolution)->Arg(1)->Arg(4)->Arg(16);

}  // namespace

BENCHMARK_MAIN();
