// Microbenchmarks of the hot paths (google-benchmark).
//
// These measure the *implementation's* wall-clock costs — useful when
// changing the codec, CRC, AAL5 or event-queue internals — as opposed to the
// E01..E15 harnesses, which measure simulated-time behaviour.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>

#include "src/atm/aal5.h"
#include "src/atm/crc32.h"
#include "src/atm/link.h"
#include "src/atm/switch.h"
#include "src/devices/compression.h"
#include "src/devices/frame_source.h"
#include "src/naming/name_space.h"
#include "src/sim/event_queue.h"
#include "src/sim/random.h"
#include "src/sim/shard.h"

using namespace pegasus;

namespace {

// Swallows delivered cells; only counts them so delivery cannot be elided.
class CountingSink : public atm::CellSink {
 public:
  void DeliverCell(const atm::Cell& cell) override {
    ++count_;
    benchmark::DoNotOptimize(cell.seq);
  }
  uint64_t count() const { return count_; }

 private:
  uint64_t count_ = 0;
};

// The per-cell data-plane hot path: bursts of back-to-back cells offered to
// one link, simulator drained between bursts. Before the cell-train data
// plane this cost 2 heap-allocated events per cell; with trains a whole
// burst rides O(1) events. range(0) is the burst size.
void BM_LinkCellHotPath(benchmark::State& state) {
  const int kBurst = static_cast<int>(state.range(0));
  sim::Simulator sim;
  atm::Link link(&sim, "l", 622'000'000, sim::Microseconds(1), /*queue_limit=*/8192);
  CountingSink sink;
  link.set_sink(&sink);
  atm::Cell cell;
  cell.vci = 42;
  uint64_t seq = 0;
  for (auto _ : state) {
    for (int i = 0; i < kBurst; ++i) {
      cell.seq = seq++;
      link.SendCell(cell);
    }
    sim.Run();
  }
  state.SetItemsProcessed(static_cast<int64_t>(seq));
  state.counters["cells/s"] =
      benchmark::Counter(static_cast<double>(seq), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_LinkCellHotPath)->Arg(1)->Arg(16)->Arg(64)->Arg(256);

// A full switch transit: ingress link -> VCI lookup + relabel -> fabric ->
// egress link -> sink. Exercises the whole forwarding path the way media
// traffic crosses a Fairisle port controller. range(0) is the burst size.
void BM_SwitchForward(benchmark::State& state) {
  const int kBurst = static_cast<int>(state.range(0));
  sim::Simulator sim;
  atm::Link ingress(&sim, "in", 622'000'000, sim::Microseconds(1), /*queue_limit=*/8192);
  atm::Link egress(&sim, "out", 622'000'000, sim::Microseconds(1), /*queue_limit=*/8192);
  atm::Switch sw(&sim, "sw", 4, sim::Microseconds(1));
  ingress.set_sink(sw.input(0));
  sw.AttachOutput(1, &egress);
  sw.AddRoute(0, 42, 1, 77);
  CountingSink sink;
  egress.set_sink(&sink);
  atm::Cell cell;
  cell.vci = 42;
  uint64_t seq = 0;
  for (auto _ : state) {
    for (int i = 0; i < kBurst; ++i) {
      cell.seq = seq++;
      ingress.SendCell(cell);
    }
    sim.Run();
  }
  state.SetItemsProcessed(static_cast<int64_t>(seq));
  state.counters["cells/s"] =
      benchmark::Counter(static_cast<double>(seq), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SwitchForward)->Arg(1)->Arg(64)->Arg(256);

void BM_Crc32(benchmark::State& state) {
  std::vector<uint8_t> data(static_cast<size_t>(state.range(0)));
  sim::Rng rng(1);
  for (auto& b : data) {
    b = static_cast<uint8_t>(rng.Next());
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(atm::Crc32(data.data(), data.size()));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Crc32)->Arg(48)->Arg(1024)->Arg(65536);

void BM_Aal5SegmentReassemble(benchmark::State& state) {
  std::vector<uint8_t> sdu(static_cast<size_t>(state.range(0)), 0xAB);
  for (auto _ : state) {
    auto cells = atm::Aal5Segment(42, sdu);
    atm::Aal5Reassembler r;
    std::optional<std::vector<uint8_t>> out;
    for (const atm::Cell& c : cells) {
      out = r.Push(c);
    }
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Aal5SegmentReassemble)->Arg(48)->Arg(1024)->Arg(16384);

void BM_TileCompress(benchmark::State& state) {
  dev::FrameSource source(64, 64, 0.2);
  dev::Frame frame = source.Render(0);
  dev::Tile tile = frame.ExtractTile(16, 16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dev::CompressTile(tile.data, static_cast<int>(state.range(0))));
  }
}
BENCHMARK(BM_TileCompress)->Arg(30)->Arg(60)->Arg(90);

void BM_TileRoundTrip(benchmark::State& state) {
  dev::FrameSource source(64, 64, 0.2);
  dev::Frame frame = source.Render(0);
  dev::Tile tile = frame.ExtractTile(16, 16);
  for (auto _ : state) {
    auto c = dev::CompressTile(tile.data, 60);
    benchmark::DoNotOptimize(dev::DecompressTile(c));
  }
}
BENCHMARK(BM_TileRoundTrip);

void BM_SimulatorEventChurn(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    int64_t count = 0;
    for (int i = 0; i < state.range(0); ++i) {
      sim.ScheduleAt(i * 10, [&count]() { ++count; });
    }
    sim.Run();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_SimulatorEventChurn)->Arg(1000)->Arg(100000);

void BM_NameResolution(benchmark::State& state) {
  sim::Simulator sim;
  naming::EchoObject obj;
  naming::NameSpace ns("bench");
  const int depth = static_cast<int>(state.range(0));
  std::string path;
  for (int i = 0; i < depth; ++i) {
    path += (i > 0 ? "/" : "");
    path += "d" + std::to_string(i);
  }
  ns.Bind(path, naming::ObjectHandle(naming::ObjectRef{1}, [&](naming::ObjectRef) {
            return std::make_shared<naming::LocalPath>(&sim, &obj);
          }));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ns.ResolveLocal(path));
  }
}
BENCHMARK(BM_NameResolution)->Arg(1)->Arg(4)->Arg(16);

// The conservative-window machinery of the region-sharded engine: K shards
// in a boundary ring (5 us lookahead), each carrying a steady 1 MHz local
// event load that occasionally crosses to its neighbour. Measures sharded
// event throughput as the shard count grows — on a single-core host this
// is the pure window/merge overhead curve; on a multi-core host the same
// filter exposes the parallel speedup.
void BM_ShardRingWindows(benchmark::State& state) {
  const int kShards = static_cast<int>(state.range(0));
  sim::Simulator control;
  sim::ShardGroup group(&control, {kShards, /*threads=*/0});
  std::vector<sim::BoundaryChannel*> ring;
  if (kShards > 1) {
    for (int i = 0; i < kShards; ++i) {
      ring.push_back(group.RegisterBoundary(group.shard(i), group.shard((i + 1) % kShards),
                                            sim::Microseconds(5)));
    }
  }
  uint64_t events = 0;
  struct Node {
    sim::Simulator* s;
    sim::BoundaryChannel* out;
    uint64_t* events;
    uint64_t n = 0;
    void Fire() {
      ++*events;
      if (out != nullptr && (++n & 7) == 0) {
        out->Post(s->now() + sim::Microseconds(5), []() {});
      }
      s->ScheduleAfter(sim::Microseconds(1), [this]() { Fire(); });
    }
  };
  std::vector<std::unique_ptr<Node>> nodes;
  for (int i = 0; i < kShards; ++i) {
    nodes.push_back(std::make_unique<Node>(
        Node{group.shard(i), ring.empty() ? nullptr : ring[static_cast<size_t>(i)], &events}));
    nodes.back()->s->ScheduleAt(1, [node = nodes.back().get()]() { node->Fire(); });
  }
  sim::TimeNs t = 0;
  for (auto _ : state) {
    t += sim::Milliseconds(1);
    group.RunUntil(t);
  }
  state.SetItemsProcessed(static_cast<int64_t>(events));
  state.counters["events/s"] =
      benchmark::Counter(static_cast<double>(events), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ShardRingWindows)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// The same ring with ONE tight hop: the channel closing the ring has a 1 us
// lookahead, the rest keep 5 us. Under a global-min horizon every shard
// would crawl at the tight hop's pace; per-channel lookahead confines the
// narrow windows to the shard the tight channel feeds, so windows per
// simulated second stay near the symmetric ring's, not 5x it. The bench
// aborts — loudly — if the window rate regresses past the guard, so a
// lookahead regression fails the perf job instead of shifting a number
// nobody reads.
void BM_ShardRingWindowsAsym(benchmark::State& state) {
  const int kShards = static_cast<int>(state.range(0));
  sim::Simulator control;
  sim::ShardGroup group(&control, {kShards, /*threads=*/0});
  std::vector<sim::BoundaryChannel*> ring;
  for (int i = 0; i < kShards; ++i) {
    const sim::DurationNs lookahead =
        i == kShards - 1 ? sim::Microseconds(1) : sim::Microseconds(5);
    ring.push_back(group.RegisterBoundary(group.shard(i), group.shard((i + 1) % kShards),
                                          lookahead));
  }
  uint64_t events = 0;
  struct Node {
    sim::Simulator* s;
    sim::BoundaryChannel* out;
    sim::DurationNs lookahead;
    uint64_t* events;
    uint64_t n = 0;
    void Fire() {
      ++*events;
      if ((++n & 7) == 0) {
        out->Post(s->now() + lookahead, []() {});
      }
      s->ScheduleAfter(sim::Microseconds(1), [this]() { Fire(); });
    }
  };
  std::vector<std::unique_ptr<Node>> nodes;
  for (int i = 0; i < kShards; ++i) {
    const sim::DurationNs lookahead =
        i == kShards - 1 ? sim::Microseconds(1) : sim::Microseconds(5);
    nodes.push_back(std::make_unique<Node>(
        Node{group.shard(i), ring[static_cast<size_t>(i)], lookahead, &events}));
    nodes.back()->s->ScheduleAt(1, [node = nodes.back().get()]() { node->Fire(); });
  }
  sim::TimeNs t = 0;
  for (auto _ : state) {
    t += sim::Milliseconds(1);
    group.RunUntil(t);
  }
  const double sim_seconds = static_cast<double>(t) / 1e9;
  const double windows_per_sim_sec =
      static_cast<double>(group.stats().windows) / sim_seconds;
  // Per-channel lookahead keeps the asymmetric ring near one window per
  // MEAN lookahead step (measured 3.3e5/s at 2 shards down to 2.2e5/s at
  // 8). One window per tight-hop step — the global-min behaviour — is
  // ~1e6/s; fail the run before anyone mistakes that for a benchmark
  // number.
  if (kShards > 1 && windows_per_sim_sec > 600e3) {
    std::fprintf(stderr,
                 "FATAL: BM_ShardRingWindowsAsym/%d: %.0f windows per simulated second "
                 "(guard 600e3) — per-channel lookahead has regressed toward the "
                 "global-min horizon\n",
                 kShards, windows_per_sim_sec);
    std::abort();
  }
  state.SetItemsProcessed(static_cast<int64_t>(events));
  state.counters["events/s"] =
      benchmark::Counter(static_cast<double>(events), benchmark::Counter::kIsRate);
  state.counters["windows/simsec"] = benchmark::Counter(windows_per_sim_sec);
}
BENCHMARK(BM_ShardRingWindowsAsym)->Arg(2)->Arg(4)->Arg(8);

}  // namespace

BENCHMARK_MAIN();
