// E12 — No data loss under single-point failures (§5).
//
// "The data is now safe under single-point failures: when the server
// crashes, the client agent ... waits for the crashed server to come back
// up; when the client machine crashes, the server will complete the write
// operation." Plus RAID parity for disk failures and the UPS story for
// power failures.
#include "bench/bench_util.h"
#include "src/pfs/client.h"
#include "src/pfs/server.h"

using namespace pegasus;
using sim::Seconds;

namespace {

struct Rig {
  sim::Simulator sim;
  std::unique_ptr<pfs::PegasusFileServer> server;
  std::unique_ptr<pfs::ClientAgent> agent;
  pfs::FileId file = -1;

  Rig() {
    pfs::PfsConfig cfg;
    cfg.segment_size = 64 << 10;
    cfg.block_size = 8 << 10;
    cfg.geometry.capacity_bytes = 64 << 20;
    cfg.write_back_delay = Seconds(30);
    server = std::make_unique<pfs::PegasusFileServer>(&sim, cfg);
    agent = std::make_unique<pfs::ClientAgent>(&sim, server.get(), pfs::ClientAgent::Options{});
    file = server->CreateFile(pfs::FileType::kNormal);
    bool ck = false;
    server->Checkpoint([&]() { ck = true; });
    sim.RunUntilPredicate([&]() { return ck; });
  }

  bool WriteViaAgent(const std::vector<uint8_t>& data) {
    bool ok = false;
    bool done = false;
    agent->Write(file, 0, data, [&](bool k) {
      ok = k;
      done = true;
    });
    sim.RunUntilPredicate([&]() { return done; });
    return ok;
  }

  std::vector<uint8_t> ReadBack(int64_t len) {
    std::vector<uint8_t> out;
    bool done = false;
    server->Read(file, 0, len, [&](bool ok, std::vector<uint8_t> data) {
      if (ok) {
        out = std::move(data);
      }
      done = true;
    });
    sim.RunUntilPredicate([&]() { return done; });
    return out;
  }
};

std::vector<uint8_t> Payload() { return std::vector<uint8_t>(8192, 0x5A); }

}  // namespace

int main() {
  bench::PrintHeader("E12", "failure injection: single-point failures lose no data",
                     "client crash, server crash, single disk failure and UPS-backed power "
                     "failure all preserve acknowledged data; only the designed-for "
                     "exceptions (no UPS, double failure) lose it");

  sim::Table table({"scenario", "mechanism", "data intact", "expected"});
  bool all_as_expected = true;
  auto check = [&](bool got, bool expected) {
    all_as_expected = all_as_expected && (got == expected);
  };

  {  // 1. server crash before flush; agent resends after recovery
    Rig rig;
    rig.WriteViaAgent(Payload());
    rig.server->Crash();
    bool rec = false;
    rig.server->Recover([&](bool) { rec = true; });
    rig.sim.RunUntilPredicate([&]() { return rec; });
    bool resent = false;
    rig.agent->ResendUnacknowledged([&]() { resent = true; });
    rig.sim.RunUntilPredicate([&]() { return resent; });
    bool ok = rig.ReadBack(8192) == Payload();
    check(ok, true);
    table.AddRow({"server crash (unflushed write)", "client-agent copy + resend",
                  ok ? "yes" : "NO", "yes"});
  }
  {  // 2. client crash after ack; server completes the write
    Rig rig;
    rig.WriteViaAgent(Payload());
    rig.agent->ClientCrash();
    bool synced = false;
    rig.server->Sync([&]() { synced = true; });
    rig.sim.RunUntilPredicate([&]() { return synced; });
    bool ok = rig.ReadBack(8192) == Payload();
    check(ok, true);
    table.AddRow({"client crash (acked write)", "server buffer completes it",
                  ok ? "yes" : "NO", "yes"});
  }
  {  // 3. single disk failure; parity reconstructs
    Rig rig;
    rig.WriteViaAgent(Payload());
    bool synced = false;
    rig.server->Sync([&]() { synced = true; });
    rig.sim.RunUntilPredicate([&]() { return synced; });
    // Fail the disk that actually holds the data's chunk.
    rig.server->store().disk(0)->Fail();
    bool ok = rig.ReadBack(8192) == Payload();
    check(ok, true);
    table.AddRow({"one data disk fails", "RAID parity reconstruction", ok ? "yes" : "NO",
                  "yes"});
    std::printf("  (parity reconstructions performed: %lld)\n",
                static_cast<long long>(rig.server->store().reconstructed_reads()));
  }
  {  // 4. double disk failure: beyond the design point
    Rig rig;
    rig.WriteViaAgent(Payload());
    bool synced = false;
    rig.server->Sync([&]() { synced = true; });
    rig.sim.RunUntilPredicate([&]() { return synced; });
    rig.server->store().disk(0)->Fail();
    rig.server->store().disk(1)->Fail();
    bool ok = rig.ReadBack(8192) == Payload();
    check(ok, false);
    table.AddRow({"two disks fail", "(single parity cannot cover)", ok ? "yes" : "no",
                  "no"});
  }
  {  // 4b. disk replaced and rebuilt: redundancy is restored
    Rig rig;
    rig.WriteViaAgent(Payload());
    bool synced = false;
    rig.server->Sync([&]() { synced = true; });
    rig.sim.RunUntilPredicate([&]() { return synced; });
    rig.server->store().disk(0)->Fail();
    rig.server->store().disk(0)->ReplaceBlank();
    bool rebuilt = false;
    rig.server->RebuildDisk(0, [&](bool, int64_t) { rebuilt = true; });
    rig.sim.RunUntilPredicate([&]() { return rebuilt; });
    // After the rebuild, a *different* disk can fail and data still reads.
    rig.server->store().disk(1)->Fail();
    bool ok = rig.ReadBack(8192) == Payload();
    check(ok, true);
    table.AddRow({"disk replaced + rebuilt, 2nd fails", "XOR rebuild onto new drive",
                  ok ? "yes" : "NO", "yes"});
  }
  {  // 5. power failure with UPS: buffers flushed before halt
    Rig rig;
    rig.WriteViaAgent(Payload());
    bool halted = false;
    rig.server->PowerFailure(true, [&]() { halted = true; });
    rig.sim.RunUntilPredicate([&]() { return halted; });
    bool rec = false;
    rig.server->Recover([&](bool) { rec = true; });
    rig.sim.RunUntilPredicate([&]() { return rec; });
    bool ok = rig.ReadBack(8192) == Payload();
    check(ok, true);
    table.AddRow({"power failure, UPS", "flush volatile buffers, halt", ok ? "yes" : "NO",
                  "yes"});
  }
  {  // 6. power failure without UPS: both copies die together
    Rig rig;
    rig.WriteViaAgent(Payload());
    bool halted = false;
    rig.server->PowerFailure(false, [&]() { halted = true; });
    rig.sim.RunUntilPredicate([&]() { return halted; });
    rig.agent->ClientCrash();  // the client machine lost power too
    bool rec = false;
    rig.server->Recover([&](bool) { rec = true; });
    rig.sim.RunUntilPredicate([&]() { return rec; });
    bool ok = rig.ReadBack(8192) == Payload();
    check(ok, false);
    table.AddRow({"power failure, no UPS", "(client+server fail together)",
                  ok ? "yes" : "no", "no"});
  }

  bench::PrintTable("acknowledged-but-unsynced write of 8 KiB, then the failure", table);
  bench::PrintVerdict(all_as_expected,
                      "every single-point failure preserves the data; only the documented "
                      "non-goals (double failure, unprotected power loss) lose it — "
                      "matching §5's reliability argument exactly");
  return 0;
}
