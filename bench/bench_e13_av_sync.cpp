// E13 — Stream synchronisation via merged control streams (§2.2, §5).
//
// "A local process will merge the two control streams ... The playback
// control process is then responsible for the synchronization of the
// play-out of the various streams", and the file server "uses the control
// stream ... to generate index information that can later be used to go to
// specific time offsets".
#include "bench/bench_util.h"
#include "src/core/system.h"
#include "src/devices/control.h"
#include "src/devices/sync.h"
#include "src/sim/random.h"

using namespace pegasus;
using sim::Milliseconds;
using sim::Seconds;

namespace {

// Audio and video of one source arrive with different network latencies and
// jitter; measure playout skew with and without the playback controller.
sim::Summary SkewWith(dev::PlaybackController::Mode mode, sim::DurationNs video_delay,
                      sim::DurationNs audio_delay, sim::DurationNs jitter, uint64_t seed) {
  sim::Simulator sim;
  sim::Rng rng(seed);
  dev::PlaybackController::Options opts;
  opts.mode = mode;
  opts.margin = Milliseconds(50);
  dev::PlaybackController controller(&sim, opts);
  const int video = controller.RegisterStream("video");
  const int audio = controller.RegisterStream("audio");
  for (int i = 0; i < 250; ++i) {
    const sim::TimeNs ts = i * Milliseconds(40);
    const auto vj = static_cast<sim::DurationNs>(rng.UniformDouble() *
                                                 static_cast<double>(jitter));
    const auto aj = static_cast<sim::DurationNs>(rng.UniformDouble() *
                                                 static_cast<double>(jitter));
    sim.ScheduleAt(ts + video_delay + vj, [&, ts]() { controller.OnArrival(video, ts); });
    sim.ScheduleAt(ts + audio_delay + aj, [&, ts]() { controller.OnArrival(audio, ts); });
  }
  sim.Run();
  return controller.skew();
}

}  // namespace

int main() {
  bench::PrintHeader("E13", "audio/video synchronisation and stored-stream indexing",
                     "the playback controller aligns independently-transported streams; "
                     "the control stream gives stored media a seekable time index");

  sim::Table live({"playout", "net skew", "jitter", "skew p50", "skew p90", "skew max"});
  struct Case {
    sim::DurationNs vd, ad, jitter;
  };
  for (const Case& c : {Case{Milliseconds(25), Milliseconds(5), Milliseconds(2)},
                        Case{Milliseconds(25), Milliseconds(5), Milliseconds(10)},
                        Case{Milliseconds(10), Milliseconds(10), Milliseconds(15)}}) {
    for (auto mode : {dev::PlaybackController::Mode::kSynchronized,
                      dev::PlaybackController::Mode::kImmediate}) {
      sim::Summary skew = SkewWith(mode, c.vd, c.ad, c.jitter, 7);
      char net[32];
      std::snprintf(net, sizeof(net), "%lldms",
                    static_cast<long long>(sim::ToMilliseconds(c.vd - c.ad)));
      live.AddRow({mode == dev::PlaybackController::Mode::kSynchronized ? "controller"
                                                                        : "on arrival",
                   net, sim::FormatDuration(c.jitter),
                   sim::FormatDuration(static_cast<sim::DurationNs>(skew.Quantile(0.5))),
                   sim::FormatDuration(static_cast<sim::DurationNs>(skew.Quantile(0.9))),
                   sim::FormatDuration(static_cast<sim::DurationNs>(skew.max()))});
    }
  }
  bench::PrintTable("A/V playout skew, 10 s of 25 fps media (paper: lip-sync needs ~<80ms)",
                    live);

  // --- stored streams: the control stream builds the index ---
  sim::Simulator sim;
  core::PegasusSystem system(&sim);
  core::Workstation* ws = system.AddWorkstation("ws");
  pfs::PfsConfig cfg;
  cfg.segment_size = 64 << 10;
  cfg.block_size = 8 << 10;
  cfg.geometry.capacity_bytes = 128 << 20;
  core::StorageNode* storage = system.AddStorageServer(cfg);
  dev::AtmCamera::Config cam_cfg;
  cam_cfg.width = 64;
  cam_cfg.height = 48;
  cam_cfg.compression = dev::CompressionMode::kMotionJpeg;
  dev::AtmCamera* camera = ws->AddCamera(cam_cfg);
  auto rec = system.BuildStream("av-rec")
                 .FromEndpoint(ws, ws->device_endpoint(camera))
                 .ToStorage(storage, /*stream_id=*/1)
                 .Open();
  core::StreamSession* rec_session = rec.session;
  pfs::FileId file = rec_session->file();
  for (int s = 0; s <= 10; ++s) {
    sim.ScheduleAt(Seconds(s), [&, s]() {
      dev::ControlMessage mark;
      mark.type = dev::ControlType::kSyncMark;
      mark.media_ts = Seconds(s);
      ws->host_transport()->Send(rec_session->control_send_vci(), mark.Serialize());
    });
  }
  camera->Start(rec_session->source_vci());
  sim.RunUntil(Seconds(10));
  camera->Stop();
  bool synced = false;
  storage->StopRecording(rec_session->sink_vci(), [&]() { synced = true; });
  sim.RunUntilPredicate([&]() { return synced; });

  sim::Table index({"seek target", "index offset", "file size"});
  for (int s : {2, 5, 8}) {
    auto off = storage->server()->LookupIndex(file, Seconds(s));
    index.AddRow({sim::Table::Int(s) + "s",
                  off.has_value() ? sim::Table::Int(*off) : "none",
                  sim::Table::Int(storage->server()->FileSize(file))});
  }
  bench::PrintTable("control-stream index of the recorded stream", index);

  sim::Summary with = SkewWith(dev::PlaybackController::Mode::kSynchronized, Milliseconds(25),
                               Milliseconds(5), Milliseconds(10), 7);
  sim::Summary without = SkewWith(dev::PlaybackController::Mode::kImmediate, Milliseconds(25),
                                  Milliseconds(5), Milliseconds(10), 7);
  auto off5 = storage->server()->LookupIndex(file, Seconds(5));
  bench::PrintVerdict(with.Quantile(0.9) < 5e6 && without.mean() > 15e6 && off5.has_value() &&
                          *off5 > 0,
                      "the controller holds A/V skew to (sub-)milliseconds where raw arrival "
                      "play-out shows the full network skew; the stored stream is seekable "
                      "by media time through the control-stream index");
  return 0;
}
