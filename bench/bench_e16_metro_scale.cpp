// E16 — Metro-scale scenario engine: generated hierarchical fabrics under
// session churn (§2.3, §6).
//
// "It is our belief that this architecture can be made to scale to very
// large systems indeed" — the paper's closing claim is about fleets, not
// desks. This harness generates core/aggregation/edge hierarchies with
// capacity tapering toward the subscriber, drives them with Poisson session
// churn (phone calls, Zipf-popular video-on-demand play-outs, recorder
// streams), and measures what an operator would: admission latency,
// blocking probability by layer, adaptation convergence and sustained
// simulated cell throughput.
//
// Modes:
//   (default)        full sweep: topology scaling + arrival-rate scaling
//   smoke [secs]     CI-sized run (2 aggregation switches, ~100 hosts);
//                    exits non-zero if nothing was admitted
//   snapshot         machine-readable JSON of the small/mid points
//   shards [secs]    region-sharded PDES scaling: metro-large at 1/2/4/8
//                    shards vs the single-simulator reference, JSON with
//                    wall clocks and fingerprints (must be identical);
//                    exits non-zero on any fingerprint divergence
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "src/scenario/topology.h"
#include "src/scenario/workload.h"

using namespace pegasus;
using sim::Seconds;

namespace {

struct Point {
  std::string name;
  scenario::TopologyParams topo;
  double arrivals_per_sec = 0;
  int seconds = 6;
  double data_fraction = 0.05;
  scenario::FleetMetrics metrics;
  int switches = 0;
  int hosts = 0;
};

scenario::TopologyParams Metro(int cores, int aggs, int edges, int hosts) {
  scenario::TopologyParams p;
  p.core_switches = cores;
  p.agg_per_core = aggs;
  p.edge_per_agg = edges;
  p.hosts_per_edge = hosts;
  p.storage_per_core = 2;
  return p;
}

Point MakePoint(const std::string& name, scenario::TopologyParams topo, double arrivals_per_sec,
                int seconds, double data_fraction) {
  Point p;
  p.name = name;
  p.topo = topo;
  p.arrivals_per_sec = arrivals_per_sec;
  p.seconds = seconds;
  p.data_fraction = data_fraction;
  return p;
}

// `shards` == 0 runs the classic single-simulator engine; > 0 partitions
// the fabric by region across that many shards (threads 0 = auto).
void RunPoint(Point* point, uint64_t seed, int shards = 0, int threads = 0,
              sim::ShardGroup::Stats* stats_out = nullptr) {
  sim::Simulator sim;
  core::PegasusSystem system(&sim);
  std::unique_ptr<sim::ShardGroup> group;
  if (shards > 0) {
    group = std::make_unique<sim::ShardGroup>(&sim, sim::ShardGroup::Options{shards, threads});
  }
  const scenario::MetroTopology topo =
      scenario::BuildMetroTopology(system, point->topo, group.get());
  point->switches = point->topo.num_switches();
  point->hosts = point->topo.num_hosts();

  scenario::WorkloadParams w;
  w.seed = seed;
  w.arrivals_per_sec = point->arrivals_per_sec;
  w.mean_holding_sec = 5.0;
  w.data_session_fraction = point->data_fraction;
  w.enable_qos_monitor = true;
  scenario::ScenarioEngine engine(&system, &topo, w);
  point->metrics = engine.Run(Seconds(point->seconds));
  if (stats_out != nullptr && group != nullptr) {
    *stats_out = group->stats();
  }
}

void AddRow(sim::Table* table, const Point& p) {
  const scenario::FleetMetrics& m = p.metrics;
  table->AddRow({p.name, sim::Table::Int(p.switches), sim::Table::Int(p.hosts),
                 sim::Table::Num(p.arrivals_per_sec, 0), sim::Table::Int(m.arrivals),
                 sim::Table::Int(m.admitted), sim::Table::Percent(m.blocking_probability()),
                 sim::Table::Int(m.peak_concurrent), sim::Table::Num(m.mean_admit_wall_us(), 1),
                 sim::Table::Num(m.mean_convergence_ms(), 0),
                 sim::Table::Num(m.cells_per_wall_second() / 1e6, 2)});
}

int RunSmoke(int seconds) {
  Point p = MakePoint("smoke", Metro(1, 2, 6, 8), 40.0, seconds, 0.3);
  p.topo.storage_per_core = 1;
  RunPoint(&p, 16);
  const scenario::FleetMetrics& m = p.metrics;
  std::printf("smoke: %d switches, %d hosts, %d s\n%s\n", p.switches, p.hosts, p.seconds,
              m.Summary().c_str());
  const bool ok = m.admitted > 0 && m.departed > 0 && m.link_cells_sent > 0 &&
                  m.records_played > 0;
  bench::PrintVerdict(ok, ok ? "metro smoke fleet admitted, moved cells and churned sessions"
                             : "metro smoke fleet admitted nothing");
  return ok ? 0 : 1;
}

void PrintJson(const std::vector<Point>& points) {
  std::printf("{\n  \"bench\": \"e16_metro_scale\",\n  \"points\": [\n");
  for (size_t i = 0; i < points.size(); ++i) {
    const scenario::FleetMetrics& m = points[i].metrics;
    std::printf("    {\"name\": \"%s\", \"switches\": %d, \"hosts\": %d, "
                "\"arrivals_per_sec\": %.0f, \"arrivals\": %lld, \"admitted\": %lld, "
                "\"blocking_probability\": %.4f, \"peak_concurrent\": %lld, "
                "\"admit_mean_us\": %.2f, \"convergence_ms\": %.1f, "
                "\"cells_per_wall_second\": %.0f, \"fingerprint\": \"%llx\"}%s\n",
                points[i].name.c_str(), points[i].switches, points[i].hosts,
                points[i].arrivals_per_sec, static_cast<long long>(m.arrivals),
                static_cast<long long>(m.admitted), m.blocking_probability(),
                static_cast<long long>(m.peak_concurrent), m.mean_admit_wall_us(),
                m.mean_convergence_ms(), m.cells_per_wall_second(),
                static_cast<unsigned long long>(m.Fingerprint()),
                i + 1 < points.size() ? "," : "");
  }
  std::printf("  ]\n}\n");
}

int RunSnapshot() {
  std::vector<Point> points;
  points.push_back(MakePoint("metro-small", Metro(1, 2, 2, 8), 40.0, 4, 0.05));
  points.push_back(MakePoint("metro-mid", Metro(2, 2, 3, 16), 120.0, 4, 0.02));
  for (auto& p : points) {
    RunPoint(&p, 16);
  }
  PrintJson(points);
  return 0;
}

// Region-sharded PDES scaling on the metro-large fabric: the
// single-simulator reference, then 1/2/4/8 shards — each shard count both
// pinned serial (threads=1, the pure window-machinery overhead) and with
// auto threads (the speedup when cores exist). Parallelism must change wall
// clock only — every fingerprint must equal the reference's. The JSON
// records the host's hardware concurrency plus per-point window, sync,
// hand-off and merge counters, so the scaling curve stays interpretable
// when the artifact is read off a machine with real cores.
int RunShardScaling(int seconds) {
  struct ShardPoint {
    int shards = 0;   // 0 = single-simulator reference
    int threads = 0;  // 0 = auto (one per shard, capped at the hardware)
    double wall_seconds = 0;
    uint64_t fingerprint = 0;
    sim::ShardGroup::Stats stats;
  };
  std::vector<ShardPoint> points;
  for (const auto& [shards, threads] :
       {std::pair<int, int>{0, 0}, {1, 1}, {2, 1}, {4, 1}, {8, 1}, {2, 0}, {4, 0}, {8, 0}}) {
    ShardPoint sp;
    sp.shards = shards;
    sp.threads = threads;
    points.push_back(sp);
  }
  for (auto& sp : points) {
    Point p = MakePoint("metro-large", Metro(3, 3, 4, 30), 400.0, seconds, 0.02);
    RunPoint(&p, 16, sp.shards, sp.threads, &sp.stats);
    sp.wall_seconds = p.metrics.run_wall_seconds;
    sp.fingerprint = p.metrics.Fingerprint();
  }

  bool identical = true;
  for (const auto& sp : points) {
    identical = identical && sp.fingerprint == points[0].fingerprint;
  }
  std::printf("{\n  \"bench\": \"e16_shard_scaling\",\n"
              "  \"fabric\": \"metro-large\", \"seconds\": %d,\n"
              "  \"hardware_concurrency\": %u,\n  \"points\": [\n",
              seconds, std::thread::hardware_concurrency());
  for (size_t i = 0; i < points.size(); ++i) {
    const ShardPoint& sp = points[i];
    std::printf("    {\"shards\": %d, \"threads\": %d, \"wall_seconds\": %.3f, "
                "\"speedup\": %.2f, \"windows\": %llu, \"sync_points\": %llu, "
                "\"boundary_messages\": %llu, \"handoffs\": %llu, \"merges\": %llu, "
                "\"fingerprint\": \"%llx\"}%s\n",
                sp.shards, sp.threads, sp.wall_seconds,
                points[0].wall_seconds / sp.wall_seconds,
                static_cast<unsigned long long>(sp.stats.windows),
                static_cast<unsigned long long>(sp.stats.sync_points),
                static_cast<unsigned long long>(sp.stats.messages),
                static_cast<unsigned long long>(sp.stats.handoffs),
                static_cast<unsigned long long>(sp.stats.merges),
                static_cast<unsigned long long>(sp.fingerprint),
                i + 1 < points.size() ? "," : "");
  }
  std::printf("  ],\n  \"identical_fingerprints\": %s\n}\n", identical ? "true" : "false");
  return identical ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "smoke") == 0) {
    const int seconds = argc > 2 ? std::max(2, std::atoi(argv[2])) : 3;
    return RunSmoke(seconds);
  }
  if (argc > 1 && std::strcmp(argv[1], "snapshot") == 0) {
    return RunSnapshot();
  }
  if (argc > 1 && std::strcmp(argv[1], "shards") == 0) {
    const int seconds = argc > 2 ? std::max(1, std::atoi(argv[2])) : 8;
    return RunShardScaling(seconds);
  }

  bench::PrintHeader(
      "E16", "metro-scale fabrics under session churn",
      "\"the system accommodates...millions of users\" — admission, blocking and "
      "adaptation must hold up on generated metropolitan hierarchies, not just a desk");

  // --- sweep 1: topology scaling at proportionate offered load ---
  std::vector<Point> scale;
  scale.push_back(MakePoint("metro-small", Metro(1, 2, 2, 8), 40.0, 6, 0.05));
  scale.push_back(MakePoint("metro-mid", Metro(2, 2, 3, 16), 120.0, 6, 0.02));
  scale.push_back(MakePoint("metro-large", Metro(3, 3, 4, 30), 400.0, 8, 0.02));
  for (auto& p : scale) {
    RunPoint(&p, 16);
  }
  sim::Table t1({"point", "switches", "hosts", "arr/s", "arrivals", "admitted", "blocking",
                 "peak", "admit us", "conv ms", "Mcell/s"});
  for (const auto& p : scale) {
    AddRow(&t1, p);
  }
  bench::PrintTable("topology scaling (Poisson churn, Zipf VOD, 5 s mean holding)", t1);

  // --- sweep 2: arrival-rate scaling on the mid fabric ---
  std::vector<Point> load;
  for (double rate : {60.0, 120.0, 240.0}) {
    load.push_back(
        MakePoint("mid@" + std::to_string(static_cast<int>(rate)), Metro(2, 2, 3, 16), rate, 6,
                  0.02));
  }
  for (auto& p : load) {
    RunPoint(&p, 16);
  }
  sim::Table t2({"point", "switches", "hosts", "arr/s", "arrivals", "admitted", "blocking",
                 "peak", "admit us", "conv ms", "Mcell/s"});
  for (const auto& p : load) {
    AddRow(&t2, p);
  }
  bench::PrintTable("arrival-rate scaling, fixed mid fabric", t2);

  // --- determinism spot-check: the small point replayed from its seed ---
  Point replay = MakePoint("metro-small", Metro(1, 2, 2, 8), 40.0, 6, 0.05);
  RunPoint(&replay, 16);
  const bool deterministic =
      replay.metrics.Fingerprint() == scale[0].metrics.Fingerprint();

  const scenario::FleetMetrics& big = scale.back().metrics;
  const bool fleet_scale = scale.back().switches >= 100 && big.peak_concurrent >= 1000;
  const bool monotone =
      load[0].metrics.blocking_probability() <= load[1].metrics.blocking_probability() &&
      load[1].metrics.blocking_probability() <= load[2].metrics.blocking_probability();
  const bool holds = fleet_scale && monotone && deterministic && big.admitted > 0 &&
                     big.blocked > 0 && big.link_cells_sent > 0;

  char text[256];
  std::snprintf(text, sizeof(text),
                "%d-switch fabric held %lld concurrent sessions (blocking %.1f%%, "
                "admission %.0f us mean), blocking monotone in load, seed-deterministic",
                scale.back().switches, static_cast<long long>(big.peak_concurrent),
                big.blocking_probability() * 100.0, big.mean_admit_wall_us());
  bench::PrintVerdict(holds, text);
  return holds ? 0 : 1;
}
