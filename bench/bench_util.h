// Shared scaffolding for the experiment harnesses.
//
// Each bench binary reproduces one experiment from DESIGN.md's index: it
// prints the paper's claim, runs the workload on the simulated system, and
// prints a table of measured results so EXPERIMENTS.md can record
// paper-vs-measured side by side.
#ifndef PEGASUS_BENCH_BENCH_UTIL_H_
#define PEGASUS_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>

#include "src/sim/table.h"

namespace pegasus::bench {

inline void PrintHeader(const std::string& id, const std::string& title,
                        const std::string& claim) {
  std::printf("==============================================================================\n");
  std::printf("%s  %s\n", id.c_str(), title.c_str());
  std::printf("paper: %s\n", claim.c_str());
  std::printf("==============================================================================\n");
}

inline void PrintTable(const std::string& caption, const sim::Table& table) {
  std::printf("\n-- %s --\n%s", caption.c_str(), table.ToString().c_str());
}

inline void PrintVerdict(bool holds, const std::string& text) {
  std::printf("\nresult: [%s] %s\n\n", holds ? "REPRODUCED" : "DIVERGES", text.c_str());
}

}  // namespace pegasus::bench

#endif  // PEGASUS_BENCH_BENCH_UTIL_H_
