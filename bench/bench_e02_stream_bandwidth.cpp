// E02 — Media stream bandwidth (§2).
//
// "Using frame-by-frame compression, for instance with JPEG, a video stream
// requires no more than a megabyte per second. ... Audio has modest
// bandwidth requirements compared to video."
//
// Every stream here rides the admission-controlled StreamBuilder path — the
// same cross-layer contract the system uses — rather than raw OpenVc, so
// the measured rates are of streams the network actually admitted, and the
// signalling cost of that admission is itself measured at the end.
#include <chrono>
#include <cstdlib>

#include "bench/bench_util.h"
#include "src/core/system.h"
#include "src/devices/audio.h"
#include "src/devices/camera.h"

using namespace pegasus;

namespace {

// Peak reservation comfortably above every tested encoding, well inside the
// 155 Mb/s device links, so pacing never distorts the measured rate.
constexpr int64_t kReserveBps = 100'000'000;

double CameraBandwidth(dev::CompressionMode mode, int quality, int w, int h, double noise) {
  sim::Simulator sim;
  core::PegasusSystem system(&sim);
  core::Workstation* ws = system.AddWorkstation("desk");
  dev::AtmCamera::Config cfg;
  cfg.width = w;
  cfg.height = h;
  cfg.fps = 25;
  cfg.compression = mode;
  cfg.jpeg_quality = quality;
  cfg.content_noise = noise;
  dev::AtmCamera* camera = ws->AddCamera(cfg);
  dev::AtmDisplay* display = ws->AddDisplay(640, 480);
  auto r = system.BuildStream("bw")
               .From(ws, camera)
               .To(ws, display)
               .WithSpec(core::StreamSpec::Video(25, kReserveBps))
               .Open();
  if (!r.report.ok()) {
    return 0.0;
  }
  camera->Start(r.session->source_vci());
  sim.RunUntil(sim::Seconds(2));
  return camera->average_bandwidth_bps(sim.now());
}

// Wall-clock microseconds per open+close cycle of `body`, amortised.
template <typename Body>
double MicrosPerCycle(int cycles, Body body) {
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < cycles; ++i) {
    body();
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  return std::chrono::duration<double, std::micro>(elapsed).count() / cycles;
}

}  // namespace

int main() {
  bench::PrintHeader("E02", "stream bandwidth by media type and compression",
                     "JPEG video needs <= 1 MB/s; raw video substantially more; audio is "
                     "modest and jitter-sensitive rather than bandwidth-hungry");

  sim::Table table({"stream", "config", "Mbit/s", "MB/s"});
  struct Case {
    const char* name;
    const char* config;
    double bps;
  };
  std::vector<Case> cases;
  cases.push_back({"video 320x240@25", "raw",
                   CameraBandwidth(dev::CompressionMode::kRaw, 0, 320, 240, 0.1)});
  cases.push_back({"video 320x240@25", "MJPEG q85",
                   CameraBandwidth(dev::CompressionMode::kMotionJpeg, 85, 320, 240, 0.1)});
  cases.push_back({"video 320x240@25", "MJPEG q60",
                   CameraBandwidth(dev::CompressionMode::kMotionJpeg, 60, 320, 240, 0.1)});
  cases.push_back({"video 320x240@25", "MJPEG q30",
                   CameraBandwidth(dev::CompressionMode::kMotionJpeg, 30, 320, 240, 0.1)});
  cases.push_back({"video 160x120@25", "MJPEG q60",
                   CameraBandwidth(dev::CompressionMode::kMotionJpeg, 60, 160, 120, 0.1)});

  // Audio: 44.1 kHz, 8-bit samples, 40 per timestamped cell.
  {
    sim::Simulator sim;
    core::PegasusSystem system(&sim);
    core::Workstation* ws = system.AddWorkstation("desk");
    dev::AudioCapture* capture = ws->AddAudioCapture(44'100);
    dev::AudioPlayback* playback = ws->AddAudioPlayback(44'100);
    auto r = system.BuildStream("audio")
                 .From(ws, capture)
                 .To(ws, playback)
                 .WithSpec(core::StreamSpec::Audio(2'000'000))
                 .Open();
    double bps = 0.0;
    if (r.report.ok()) {
      capture->Start(r.session->source_vci());
      sim.RunUntil(sim::Seconds(2));
      bps = static_cast<double>(capture->cells_sent()) * atm::kCellSize * 8.0 / 2.0;
    }
    cases.push_back({"audio 44.1kHz", "cells+timestamps", bps});
  }

  double mjpeg_q60 = 0;
  double raw = 0;
  for (const Case& c : cases) {
    table.AddRow({c.name, c.config, sim::Table::Num(c.bps / 1e6, 2),
                  sim::Table::Num(c.bps / 8e6, 2)});
    if (std::string(c.config) == "MJPEG q60" && std::string(c.name) == "video 320x240@25") {
      mjpeg_q60 = c.bps;
    }
    if (std::string(c.config) == "raw" && std::string(c.name) == "video 320x240@25") {
      raw = c.bps;
    }
  }
  bench::PrintTable("sustained stream bandwidth (2 simulated seconds)", table);

  // --- contract overhead: what the cross-layer admission machinery costs
  // over a bare VC, per open+close cycle (host wall-clock) ---
  {
    sim::Simulator sim;
    core::PegasusSystem system(&sim);
    core::Workstation* ws = system.AddWorkstation("desk");
    core::ComputeNode* compute = system.AddComputeServer();
    dev::AtmCamera::Config cfg;
    dev::AtmCamera* camera = ws->AddCamera(cfg);
    dev::AtmDisplay* display = ws->AddDisplay(640, 480);
    atm::Endpoint* cam_ep = ws->device_endpoint(camera);
    atm::Endpoint* disp_ep = ws->device_endpoint(display);
    const int cycles = 2000;

    const double raw_us = MicrosPerCycle(cycles, [&]() {
      auto vc = system.network().OpenVc(cam_ep, disp_ep, atm::QosSpec{8'000'000});
      system.network().CloseVc(vc->id);
    });
    // A mid-bench admission failure means a prior Close leaked capacity —
    // fail loudly rather than dereference a null session.
    auto close_or_die = [](core::StreamResult& r) {
      if (!r.report.ok()) {
        std::fprintf(stderr, "contract admission failed mid-bench: %s\n",
                     core::AdmitFailureName(r.report.failure));
        std::exit(1);
      }
      r.session->Close();
    };
    const double contract_us = MicrosPerCycle(cycles, [&]() {
      auto r = system.BuildStream()
                   .From(ws, camera)
                   .To(ws, display)
                   .WithSpec(core::StreamSpec::Video(25, 8'000'000))
                   .Open();
      close_or_die(r);
    });
    dev::TileProcessor::Config stage;
    const double pipeline_us = MicrosPerCycle(cycles, [&]() {
      auto r = system.BuildStream()
                   .From(ws, camera)
                   .Via(compute, stage)
                   .To(ws, display)
                   .WithSpec(core::StreamSpec::Video(25, 8'000'000))
                   .Open();
      close_or_die(r);
    });

    sim::Table overhead({"setup path", "us/open+close", "vs raw VC"});
    overhead.AddRow({"raw VC (no admission)", sim::Table::Num(raw_us, 2), "1.0x"});
    overhead.AddRow({"stream contract (1 leg)", sim::Table::Num(contract_us, 2),
                     sim::Table::Num(contract_us / raw_us, 1) + "x"});
    overhead.AddRow({"pipeline contract (2 legs)", sim::Table::Num(pipeline_us, 2),
                     sim::Table::Num(pipeline_us / raw_us, 1) + "x"});
    bench::PrintTable("cross-layer contract overhead (host wall-clock)", overhead);
  }

  std::printf("\ncompression factor at q60: %.1fx\n", raw / mjpeg_q60);
  bench::PrintVerdict(mjpeg_q60 / 8e6 <= 1.0 && raw > 2 * mjpeg_q60,
                      "MJPEG video fits in a megabyte per second; raw video needs several "
                      "times more; audio is an order of magnitude below video");
  return 0;
}
