// E02 — Media stream bandwidth (§2).
//
// "Using frame-by-frame compression, for instance with JPEG, a video stream
// requires no more than a megabyte per second. ... Audio has modest
// bandwidth requirements compared to video."
#include "bench/bench_util.h"
#include "src/atm/network.h"
#include "src/devices/audio.h"
#include "src/devices/camera.h"

using namespace pegasus;

namespace {

double CameraBandwidth(dev::CompressionMode mode, int quality, int w, int h, double noise) {
  sim::Simulator sim;
  atm::Network net(&sim);
  atm::Switch* sw = net.AddSwitch("sw", 4);
  atm::Endpoint* cam_ep = net.AddEndpoint("cam", sw, 0, 622'000'000);
  atm::Endpoint* sink_ep = net.AddEndpoint("sink", sw, 1, 622'000'000);
  auto vc = net.OpenVc(cam_ep, sink_ep);
  dev::AtmCamera::Config cfg;
  cfg.width = w;
  cfg.height = h;
  cfg.fps = 25;
  cfg.compression = mode;
  cfg.jpeg_quality = quality;
  cfg.content_noise = noise;
  dev::AtmCamera camera(&sim, cam_ep, cfg);
  camera.Start(vc->source_vci);
  sim.RunUntil(sim::Seconds(2));
  return camera.average_bandwidth_bps(sim.now());
}

}  // namespace

int main() {
  bench::PrintHeader("E02", "stream bandwidth by media type and compression",
                     "JPEG video needs <= 1 MB/s; raw video substantially more; audio is "
                     "modest and jitter-sensitive rather than bandwidth-hungry");

  sim::Table table({"stream", "config", "Mbit/s", "MB/s"});
  struct Case {
    const char* name;
    const char* config;
    double bps;
  };
  std::vector<Case> cases;
  cases.push_back({"video 320x240@25", "raw",
                   CameraBandwidth(dev::CompressionMode::kRaw, 0, 320, 240, 0.1)});
  cases.push_back({"video 320x240@25", "MJPEG q85",
                   CameraBandwidth(dev::CompressionMode::kMotionJpeg, 85, 320, 240, 0.1)});
  cases.push_back({"video 320x240@25", "MJPEG q60",
                   CameraBandwidth(dev::CompressionMode::kMotionJpeg, 60, 320, 240, 0.1)});
  cases.push_back({"video 320x240@25", "MJPEG q30",
                   CameraBandwidth(dev::CompressionMode::kMotionJpeg, 30, 320, 240, 0.1)});
  cases.push_back({"video 160x120@25", "MJPEG q60",
                   CameraBandwidth(dev::CompressionMode::kMotionJpeg, 60, 160, 120, 0.1)});

  // Audio: 44.1 kHz, 8-bit samples, 40 per timestamped cell.
  {
    sim::Simulator sim;
    atm::Network net(&sim);
    atm::Switch* sw = net.AddSwitch("sw", 4);
    atm::Endpoint* in = net.AddEndpoint("in", sw, 0, 155'000'000);
    atm::Endpoint* out = net.AddEndpoint("out", sw, 1, 155'000'000);
    auto vc = net.OpenVc(in, out);
    dev::AudioCapture capture(&sim, in, 44'100);
    capture.Start(vc->source_vci);
    sim.RunUntil(sim::Seconds(2));
    const double bps =
        static_cast<double>(capture.cells_sent()) * atm::kCellSize * 8.0 / 2.0;
    cases.push_back({"audio 44.1kHz", "cells+timestamps", bps});
  }

  double mjpeg_q60 = 0;
  double raw = 0;
  for (const Case& c : cases) {
    table.AddRow({c.name, c.config, sim::Table::Num(c.bps / 1e6, 2),
                  sim::Table::Num(c.bps / 8e6, 2)});
    if (std::string(c.config) == "MJPEG q60" && std::string(c.name) == "video 320x240@25") {
      mjpeg_q60 = c.bps;
    }
    if (std::string(c.config) == "raw" && std::string(c.name) == "video 320x240@25") {
      raw = c.bps;
    }
  }
  bench::PrintTable("sustained stream bandwidth (2 simulated seconds)", table);

  std::printf("\ncompression factor at q60: %.1fx\n", raw / mjpeg_q60);
  bench::PrintVerdict(mjpeg_q60 / 8e6 <= 1.0 && raw > 2 * mjpeg_q60,
                      "MJPEG video fits in a megabyte per second; raw video needs several "
                      "times more; audio is an order of magnitude below video");
  return 0;
}
