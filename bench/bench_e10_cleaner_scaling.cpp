// E10 — Garbage-file cleaner scaling (§5).
//
// "We are currently implementing a cleaning algorithm whose complexity only
// depends on the number of segments to be cleaned and the amount of
// 'garbage'" — never on file-system size, so the design scales to 10 TB.
// The ablation baseline is a Sprite-style cleaner that examines every
// segment's summary.
#include <memory>

#include "bench/bench_util.h"
#include "src/pfs/server.h"
#include "src/sim/event_queue.h"

using namespace pegasus;
using sim::Seconds;

namespace {

struct Setup {
  std::unique_ptr<sim::Simulator> sim;
  std::unique_ptr<pfs::PegasusFileServer> server;
};

// Builds a store of `capacity_mb`, fills `live_files` + `dead_files` of
// `file_kb` each — interleaved, so dirty segments also hold live data the
// cleaner must relocate — then deletes the dead ones.
Setup Prepare(int64_t capacity_mb, int dead_files, int live_files, int64_t file_kb) {
  Setup s;
  s.sim = std::make_unique<sim::Simulator>();
  pfs::PfsConfig cfg;
  cfg.segment_size = 64 << 10;
  cfg.block_size = 8 << 10;
  cfg.geometry.capacity_bytes = capacity_mb << 20;
  cfg.write_back_delay = sim::Seconds(3600);  // batch everything, sync once
  cfg.max_buffered_bytes = 1 << 30;
  s.server = std::make_unique<pfs::PegasusFileServer>(s.sim.get(), cfg);

  std::vector<pfs::FileId> dead;
  const int total = dead_files + live_files;
  int dead_left = dead_files;
  int live_left = live_files;
  for (int i = 0; i < total; ++i) {
    // Alternate dead and live so every segment is a mix.
    const bool is_dead = (i % 2 == 0 && dead_left > 0) || live_left == 0;
    pfs::FileId f = s.server->CreateFile(pfs::FileType::kNormal);
    bool ok = false;
    s.server->Write(f, 0, std::vector<uint8_t>(static_cast<size_t>(file_kb) << 10, 1),
                    [&](bool k) { ok = k; });
    s.sim->Run();
    (void)ok;
    if (is_dead) {
      dead.push_back(f);
      --dead_left;
    } else {
      --live_left;
    }
  }
  bool synced = false;
  s.server->Sync([&]() { synced = true; });
  s.sim->Run();
  for (pfs::FileId f : dead) {
    s.server->Delete(f);
  }
  return s;
}

pfs::CleanStats RunClean(Setup& s, bool full_scan) {
  pfs::CleanStats stats;
  bool done = false;
  auto cb = [&](pfs::CleanStats st) {
    stats = st;
    done = true;
  };
  if (full_scan) {
    s.server->CleanFullScan(cb);
  } else {
    s.server->Clean(cb);
  }
  s.sim->RunUntilPredicate([&]() { return done; });
  return stats;
}

}  // namespace

int main() {
  bench::PrintHeader("E10", "cleaning cost vs store size and garbage volume",
                     "garbage-file cleaning cost depends only on dirty segments + garbage "
                     "volume; a full-scan cleaner's cost grows with store size");

  // --- sweep store size at fixed garbage ---
  sim::Table by_size({"store size", "total segments", "cleaner", "segs examined",
                      "segs cleaned", "entries", "wall time"});
  for (int64_t mb : {64, 256, 1024, 4096}) {
    for (bool full : {false, true}) {
      Setup s = Prepare(mb, /*dead=*/8, /*live=*/8, /*file_kb=*/32);
      pfs::CleanStats st = RunClean(s, full);
      char size_label[32];
      std::snprintf(size_label, sizeof(size_label), "%lld MiB", static_cast<long long>(mb));
      by_size.AddRow({size_label, sim::Table::Int(s.server->total_segments()),
                      full ? "full-scan" : "garbage-file",
                      sim::Table::Int(st.segments_examined),
                      sim::Table::Int(st.segments_cleaned),
                      sim::Table::Int(st.entries_processed),
                      sim::FormatDuration(st.wall_time)});
    }
  }
  bench::PrintTable("fixed garbage (8 x 64 KiB dead files), growing store", by_size);

  // --- sweep garbage at fixed store size ---
  sim::Table by_garbage({"dead files", "garbage MB", "segs cleaned", "entries", "wall time"});
  for (int dead : {4, 16, 64, 128}) {
    Setup s = Prepare(1024, dead, dead, 32);
    pfs::CleanStats st = RunClean(s, false);
    by_garbage.AddRow({sim::Table::Int(dead),
                       sim::Table::Num(static_cast<double>(dead) * 32 / 1024, 2),
                       sim::Table::Int(st.segments_cleaned),
                       sim::Table::Int(st.entries_processed),
                       sim::FormatDuration(st.wall_time)});
  }
  bench::PrintTable("fixed store (1 GiB), growing garbage — cost is linear in garbage",
                    by_garbage);

  Setup small = Prepare(64, 8, 8, 32);
  Setup big = Prepare(4096, 8, 8, 32);
  Setup big2 = Prepare(4096, 8, 8, 32);
  pfs::CleanStats small_st = RunClean(small, false);
  pfs::CleanStats big_st = RunClean(big, false);
  pfs::CleanStats big_scan = RunClean(big2, true);
  bench::PrintVerdict(small_st.segments_examined == big_st.segments_examined &&
                          big_scan.segments_examined > 100 * big_st.segments_examined,
                      "the garbage-file cleaner examines the same handful of segments at "
                      "64 MiB and 4 GiB, while the full scan examines every segment — the "
                      "separation that makes 10 TB feasible");
  return 0;
}
