// E01 — Tile-based transport vs whole-frame transport (§2.1).
//
// "The use of tiles for video reduces latency in several places from a
// 'frame time' (33 or 40 ms) to a 'tile time' (30 to 40 us)."
#include "bench/bench_util.h"
#include "src/atm/network.h"
#include "src/devices/camera.h"
#include "src/devices/display.h"

using namespace pegasus;

namespace {

struct Result {
  double median_ns = 0;
  double p99_ns = 0;
  double max_ns = 0;
};

Result Run(dev::AtmCamera::Emission emission, int fps, int64_t link_bps) {
  sim::Simulator sim;
  atm::Network net(&sim);
  atm::Switch* sw = net.AddSwitch("sw", 4);
  atm::Endpoint* cam_ep = net.AddEndpoint("cam", sw, 0, link_bps);
  atm::Endpoint* disp_ep = net.AddEndpoint("disp", sw, 1, link_bps);
  auto vc = net.OpenVc(cam_ep, disp_ep);

  dev::AtmCamera::Config cfg;
  cfg.width = 160;
  cfg.height = 120;
  cfg.fps = fps;
  cfg.emission = emission;
  dev::AtmCamera camera(&sim, cam_ep, cfg);
  dev::AtmDisplay display(&sim, disp_ep, 640, 480);
  dev::WindowManager wm(&display);
  wm.CreateWindow(vc->destination_vci, 0, 0, 160, 120);
  camera.Start(vc->source_vci);
  sim.RunUntil(sim::Seconds(2));

  Result r;
  r.median_ns = display.tile_latency().Quantile(0.5);
  r.p99_ns = display.tile_latency().Quantile(0.99);
  r.max_ns = display.tile_latency().max();
  return r;
}

}  // namespace

int main() {
  bench::PrintHeader("E01", "tile latency vs frame latency",
                     "tiles cut media latency from a frame time (33-40 ms) to a tile "
                     "time (30-40 us)");

  sim::Table table({"emission", "fps", "link", "median", "p99", "max"});
  Result tiles_25 = Run(dev::AtmCamera::Emission::kTiles, 25, 155'000'000);
  Result frame_25 = Run(dev::AtmCamera::Emission::kWholeFrame, 25, 155'000'000);
  Result tiles_30 = Run(dev::AtmCamera::Emission::kTiles, 30, 155'000'000);
  Result frame_30 = Run(dev::AtmCamera::Emission::kWholeFrame, 30, 155'000'000);
  Result tiles_slow = Run(dev::AtmCamera::Emission::kTiles, 25, 100'000'000);

  auto row = [&](const char* name, int fps, const char* link, const Result& r) {
    table.AddRow({name, sim::Table::Int(fps), link,
                  sim::FormatDuration(static_cast<sim::DurationNs>(r.median_ns)),
                  sim::FormatDuration(static_cast<sim::DurationNs>(r.p99_ns)),
                  sim::FormatDuration(static_cast<sim::DurationNs>(r.max_ns))});
  };
  row("tiles (8x8)", 25, "155M", tiles_25);
  row("whole-frame", 25, "155M", frame_25);
  row("tiles (8x8)", 30, "155M", tiles_30);
  row("whole-frame", 30, "155M", frame_30);
  row("tiles (8x8)", 25, "100M", tiles_slow);
  bench::PrintTable("capture-to-screen latency per tile packet", table);

  const double factor = frame_25.max_ns / tiles_25.median_ns;
  std::printf("\nlatency ratio (whole-frame max / tile median): %.0fx\n", factor);
  bench::PrintVerdict(
      tiles_25.median_ns < 1e5 && frame_25.max_ns > 30e6,
      "tile-time latency is tens of microseconds; whole-frame latency is a frame time "
      "(paper: 33-40 ms vs 30-40 us)");
  return 0;
}
