// CRC-32 (IEEE 802.3 / AAL5 polynomial 0x04C11DB7, reflected form).
#ifndef PEGASUS_SRC_ATM_CRC32_H_
#define PEGASUS_SRC_ATM_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace pegasus::atm {

// Computes the CRC-32 of `data`. `seed` allows incremental computation:
// pass the previous return value to continue a running CRC.
uint32_t Crc32(const uint8_t* data, size_t len, uint32_t seed = 0);

}  // namespace pegasus::atm

#endif  // PEGASUS_SRC_ATM_CRC32_H_
