// Network endpoint: the attachment point of a device or host NIC.
//
// Cameras, displays, audio nodes, file servers and workstation NICs all
// attach to a switch port through an Endpoint. An endpoint owns nothing of
// the network; it hands cells to its uplink and receives cells from its
// downlink, dispatching them to a registered handler (a device, a protocol
// stack, an RPC transport...).
#ifndef PEGASUS_SRC_ATM_ENDPOINT_H_
#define PEGASUS_SRC_ATM_ENDPOINT_H_

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/atm/cell.h"
#include "src/atm/link.h"
#include "src/sim/event_queue.h"

namespace pegasus::atm {

class Switch;

class Endpoint : public CellSink {
 public:
  using CellHandler = std::function<void(const Cell&)>;

  Endpoint(sim::Simulator* sim, std::string name);

  const std::string& name() const { return name_; }

  // Wires this endpoint to the network (called by Network).
  void AttachUplink(Link* uplink) { uplink_ = uplink; }
  void AttachSwitch(Switch* sw, int port) {
    switch_ = sw;
    port_ = port;
  }
  Switch* attached_switch() const { return switch_; }
  int attached_port() const { return port_; }
  Link* uplink() const { return uplink_; }

  // Receives a cell (or a whole train) from the downlink and forwards it to
  // the handler.
  void DeliverCell(const Cell& cell) override;
  void DeliverBurst(const Cell* cells, size_t count) override;

  void set_cell_handler(CellHandler handler) { handler_ = std::move(handler); }

  // Sends one cell on the uplink. Returns false if the endpoint is detached
  // or the uplink queue is full.
  bool SendCell(Cell cell);

  // Convenience: AAL5-segments `sdu` and sends the cells. When `pace_bps` is
  // non-zero the cells are spaced at that rate (a per-VC traffic shaper);
  // otherwise the frame is segmented straight into the outgoing train
  // buffer and offered to the uplink as one burst.
  void SendFrame(Vci vci, const std::vector<uint8_t>& sdu, int64_t pace_bps = 0);

  // Incoming-VCI bookkeeping used by signalling: the terminating VCI of each
  // VC ending at this endpoint must be locally unique.
  Vci AllocateIncomingVci();
  void ReleaseIncomingVci(Vci vci) { incoming_vcis_.erase(vci); }

  uint64_t cells_received() const { return cells_received_; }
  uint64_t cells_sent() const { return cells_sent_; }
  uint64_t next_seq() const { return next_seq_; }

 private:
  sim::Simulator* sim_;
  std::string name_;
  Link* uplink_ = nullptr;
  Switch* switch_ = nullptr;
  int port_ = -1;
  CellHandler handler_;
  std::set<Vci> incoming_vcis_;
  uint64_t cells_received_ = 0;
  uint64_t cells_sent_ = 0;
  uint64_t next_seq_ = 0;
  // Per-VC pacing horizon: the earliest time the next paced cell on that VC
  // may enter the uplink.
  std::map<Vci, sim::TimeNs> pace_free_at_;
  // Reusable segmentation buffer: frames are cut straight into it and
  // offered to the uplink as one train, so SendFrame allocates nothing in
  // steady state.
  std::vector<Cell> tx_train_;
};

}  // namespace pegasus::atm

#endif  // PEGASUS_SRC_ATM_ENDPOINT_H_
