// Network endpoint: the attachment point of a device or host NIC.
//
// Cameras, displays, audio nodes, file servers and workstation NICs all
// attach to a switch port through an Endpoint. An endpoint owns nothing of
// the network; it hands cells to its uplink and receives cells from its
// downlink, dispatching them to a registered handler (a device, a protocol
// stack, an RPC transport...).
#ifndef PEGASUS_SRC_ATM_ENDPOINT_H_
#define PEGASUS_SRC_ATM_ENDPOINT_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/atm/cell.h"
#include "src/atm/link.h"
#include "src/sim/event_queue.h"

namespace pegasus::atm {

class Switch;

class Endpoint : public CellSink {
 public:
  using CellHandler = std::function<void(const Cell&)>;
  // Receives a whole delivered train in one call (see set_burst_handler).
  using BurstHandler = std::function<void(const Cell* cells, size_t count)>;

  Endpoint(sim::Simulator* sim, std::string name);

  const std::string& name() const { return name_; }
  // The simulator this endpoint paces and receives on. Under region
  // sharding this is the shard owning the attachment switch.
  sim::Simulator* simulator() const { return sim_; }

  // Wires this endpoint to the network (called by Network).
  void AttachUplink(Link* uplink) { uplink_ = uplink; }
  void AttachSwitch(Switch* sw, int port) {
    switch_ = sw;
    port_ = port;
  }
  Switch* attached_switch() const { return switch_; }
  int attached_port() const { return port_; }
  Link* uplink() const { return uplink_; }

  // Receives a cell (or a whole train) from the downlink and forwards it to
  // the handler.
  void DeliverCell(const Cell& cell) override;
  void DeliverBurst(const Cell* cells, size_t count) override;

  // Installing a cell handler reverts burst delivery to the per-cell loop:
  // a consumer that takes over the cell path (HostRelay, a raw tap) must
  // never race a stale span consumer left behind by a previous owner.
  void set_cell_handler(CellHandler handler) {
    handler_ = std::move(handler);
    burst_handler_ = nullptr;
  }
  // Span-aware consumers (the AAL5 message transport) take whole delivered
  // trains in one call instead of a per-cell fan-out. DeliverCell still goes
  // through the cell handler, so both must be kept coherent by the owner.
  void set_burst_handler(BurstHandler handler) { burst_handler_ = std::move(handler); }

  // Sends one cell on the uplink. Returns false if the endpoint is detached
  // or the uplink queue is full.
  bool SendCell(Cell cell);

  // Convenience: AAL5-segments `sdu` and sends the cells. When `pace_bps` is
  // non-zero the cells ride a per-VC token-bucket shaper at that rate:
  // long-term each cell is budgeted one cell-slot of the paced rate, but the
  // shaper wakes once per burst window of kPaceBurstCells and emits the due
  // prefix of the train as ONE burst — one scheduled event per window
  // instead of one per cell. A cell never enters the uplink before the
  // instant the old per-cell shaper would have sent it, and the last cell of
  // a window (in particular every frame's end-of-frame cell that closes a
  // window) enters at exactly its per-cell instant. When `pace_bps` is zero
  // the frame is segmented straight into the outgoing train buffer and
  // offered to the uplink as one burst.
  void SendFrame(Vci vci, const std::vector<uint8_t>& sdu, int64_t pace_bps = 0);

  // Token-bucket depth of the paced path: the most cells one shaper wake may
  // emit back-to-back, and so the burst a paced VC can put on the wire.
  static constexpr size_t kPaceBurstCells = 32;

  // Incoming-VCI bookkeeping used by signalling: the terminating VCI of each
  // VC ending at this endpoint must be locally unique.
  Vci AllocateIncomingVci();
  void ReleaseIncomingVci(Vci vci) { incoming_vcis_.erase(vci); }

  uint64_t cells_received() const { return cells_received_; }
  uint64_t cells_sent() const { return cells_sent_; }
  uint64_t next_seq() const { return next_seq_; }

 private:
  sim::Simulator* sim_;
  std::string name_;
  Link* uplink_ = nullptr;
  Switch* switch_ = nullptr;
  int port_ = -1;
  CellHandler handler_;
  BurstHandler burst_handler_;
  std::set<Vci> incoming_vcis_;
  uint64_t cells_received_ = 0;
  uint64_t cells_sent_ = 0;
  uint64_t next_seq_ = 0;
  // Per-VC token-bucket shaper state. `horizon` is the pacing horizon: the
  // due instant of the next cell queued on that VC. `pending` holds cells
  // whose due instant is still in the future, drained a burst window at a
  // time by the armed wake event.
  struct PacedCell {
    sim::TimeNs due;
    Cell cell;
  };
  struct Pacer {
    sim::TimeNs horizon = 0;
    std::deque<PacedCell> pending;
    bool wake_armed = false;
  };
  // Emits the due prefix of `vci`'s pending cells as one burst.
  void DrainPacer(Vci vci, Pacer& pacer);
  // Schedules the next shaper wake: at the due instant of the last cell of
  // the next burst window, when that whole window is the due prefix.
  void ArmPacer(Vci vci, Pacer& pacer);

  std::map<Vci, Pacer> pacers_;
  // Reusable segmentation buffer: frames are cut straight into it and
  // offered to the uplink as one train, so SendFrame allocates nothing in
  // steady state.
  std::vector<Cell> tx_train_;
};

}  // namespace pegasus::atm

#endif  // PEGASUS_SRC_ATM_ENDPOINT_H_
