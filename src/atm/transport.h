// MSNA-style message transport over AAL5.
//
// The paper layers its RPC on MSNA, the Multi-Service Network Architecture
// (§4): a protocol hierarchy for ATM that carries both RPC traffic and
// continuous media. This transport provides the messaging half — framed,
// per-VC message delivery over AAL5 — while continuous media go straight to
// the cell interface for minimal latency.
#ifndef PEGASUS_SRC_ATM_TRANSPORT_H_
#define PEGASUS_SRC_ATM_TRANSPORT_H_

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "src/atm/aal5.h"
#include "src/atm/endpoint.h"

namespace pegasus::atm {

class MessageTransport {
 public:
  // `first_cell_at` is the source timestamp of the frame's first cell, for
  // end-to-end latency measurement.
  using MessageHandler =
      std::function<void(Vci vci, std::vector<uint8_t> message, sim::TimeNs first_cell_at)>;

  // Takes over the endpoint's cell handler. The endpoint must outlive this.
  explicit MessageTransport(Endpoint* endpoint);

  MessageTransport(const MessageTransport&) = delete;
  MessageTransport& operator=(const MessageTransport&) = delete;

  Endpoint* endpoint() const { return endpoint_; }

  // Per-VCI dispatch; unmatched VCIs fall back to the default handler.
  void SetHandler(Vci vci, MessageHandler handler);
  void ClearHandler(Vci vci);
  void SetDefaultHandler(MessageHandler handler);

  // Sends one message on `vci`, optionally paced to `pace_bps`.
  void Send(Vci vci, const std::vector<uint8_t>& message, int64_t pace_bps = 0);

  uint64_t messages_received() const { return messages_received_; }
  uint64_t messages_sent() const { return messages_sent_; }
  uint64_t reassembly_errors() const;

 private:
  void OnCell(const Cell& cell);
  // Span-ingest fast path for delivered trains: maximal same-VC runs with no
  // frame boundary are bulk-appended by the reassembler in one go; cell-for-
  // cell equivalent to OnCell over the same sequence.
  void OnBurst(const Cell* cells, size_t count);
  void Dispatch(Vci vci, std::vector<uint8_t> sdu, sim::TimeNs first_cell_at);

  Endpoint* endpoint_;
  std::map<Vci, MessageHandler> handlers_;
  MessageHandler default_handler_;
  struct VcRx {
    Aal5Reassembler reassembler;
    sim::TimeNs frame_first_cell_at = 0;
    bool in_frame = false;
  };
  std::map<Vci, VcRx> rx_;
  uint64_t messages_received_ = 0;
  uint64_t messages_sent_ = 0;
};

}  // namespace pegasus::atm

#endif  // PEGASUS_SRC_ATM_TRANSPORT_H_
