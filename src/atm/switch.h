// Fairisle-style ATM switch model.
//
// The paper's workstations control a local switch through which all media
// devices are connected (§2, Figure 1); the sites used the Fairisle switch in
// Cambridge and Rattlesnake in Twente. The model is an output-queued fabric:
// a cell arriving on an input port is looked up in that port's VCI table,
// relabelled, delayed by the fabric transit time, and handed to the output
// port's link. Cells with no route are counted and dropped — exactly what a
// Fairisle port controller does.
//
// The key architectural property exercised by experiments E03/F1: the
// switch's routing tables are manipulated by a *controlling workstation*
// (management software), but cells never touch that workstation's CPU.
#ifndef PEGASUS_SRC_ATM_SWITCH_H_
#define PEGASUS_SRC_ATM_SWITCH_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/atm/cell.h"
#include "src/atm/link.h"
#include "src/sim/event_queue.h"

namespace pegasus::atm {

class Switch {
 public:
  Switch(sim::Simulator* sim, std::string name, int num_ports,
         sim::DurationNs fabric_delay = sim::Microseconds(1));

  Switch(const Switch&) = delete;
  Switch& operator=(const Switch&) = delete;

  const std::string& name() const { return name_; }
  // Dense id assigned by the owning Network in insertion order; -1 when the
  // switch is free-standing. Pathfinding tie-breaks and adjacency indexing
  // use it so route selection is independent of heap addresses.
  int id() const { return id_; }
  void set_id(int id) { id_ = id; }
  int num_ports() const { return static_cast<int>(inputs_.size()); }
  // The simulator this switch schedules its fabric transits on. Under
  // region sharding (src/sim/shard.h) this is the owning shard's clock.
  sim::Simulator* simulator() const { return sim_; }

  // The sink incoming links should deliver into for a given port.
  CellSink* input(int port);

  // Attaches the outgoing link of `port`. The switch does not own the link.
  void AttachOutput(int port, Link* link);
  Link* output(int port) const { return outputs_[static_cast<size_t>(port)]; }

  // Routing-table management — this is the interface the controlling
  // workstation's management domain uses (ATM signalling terminates there).
  // Returns false if the (in_port, in_vci) entry already exists.
  bool AddRoute(int in_port, Vci in_vci, int out_port, Vci out_vci);
  bool RemoveRoute(int in_port, Vci in_vci);
  bool HasRoute(int in_port, Vci in_vci) const;

  // --- point-to-multipoint entries ---
  // Grafts a further branch onto an existing (in_port, in_vci) entry: cells
  // arriving there are thereafter replicated to `out_port` as well, once per
  // distinct output port — the Fairisle port controller copies a cell into
  // each subscribed output FIFO, never once per downstream leaf. Returns
  // false when the entry does not exist or already branches to `out_port`.
  bool AddRouteTarget(int in_port, Vci in_vci, int out_port, Vci out_vci);
  // Prunes the branch to `out_port` alone; the entry (and its VCI) stays
  // live while other branches remain. Removing the last branch removes the
  // entry. Returns false when no such branch exists.
  bool RemoveRouteTarget(int in_port, Vci in_vci, int out_port);
  // Number of output branches of an entry (0 = no entry, 1 = unicast).
  int RouteTargetCount(int in_port, Vci in_vci) const;

  // Finds a VCI unused on the given *input* port, starting at kVciFirstData.
  // A per-port next-free hint makes allocate/add/remove churn amortised
  // O(1) instead of a linear probe over every live route.
  Vci AllocateVci(int in_port) const;

  uint64_t cells_switched() const { return cells_switched_; }
  uint64_t cells_unroutable() const { return cells_unroutable_; }

 private:
  // One output branch of a route entry; out_port < 0 marks an empty slot.
  struct RouteTarget {
    int out_port = -1;
    Vci out_vci = kVciUnassigned;
  };
  // An entry in a port's flat VCI table. Unicast entries — the overwhelming
  // majority — live entirely in `primary` (no heap, same two loads on the
  // hot path as before); multicast entries keep their further branches in
  // `extra`, in graft order, each a distinct output port.
  struct RouteEntry {
    RouteTarget primary;
    std::vector<RouteTarget> extra;
    bool empty() const { return primary.out_port < 0; }
    bool unicast() const { return extra.empty(); }
  };
  // VCIs are allocated densely from kVciFirstData (AllocateVci hands out
  // the first free one), so a flat per-port vector indexed by VCI stays
  // small; the ceiling only guards against a wild AddRoute allocating
  // gigabytes. Lookup on the cell hot path is two loads, no tree walk.
  static constexpr Vci kMaxRoutableVci = 1u << 20;

  // Adapter delivering into the fabric with the input-port tag attached.
  class InputPort : public CellSink {
   public:
    InputPort(Switch* parent, int port) : parent_(parent), port_(port) {}
    void DeliverCell(const Cell& cell) override { parent_->OnBurst(port_, &cell, 1); }
    void DeliverBurst(const Cell* cells, size_t count) override {
      parent_->OnBurst(port_, cells, count);
    }

   private:
    Switch* parent_;
    int port_;
  };

  // Routes a train in one pass: consecutive cells bound for the same output
  // link are relabelled together and cross the fabric as ONE scheduled
  // event. A multicast entry's run is replicated once per branch (distinct
  // output ports by construction), still one relabel pass per branch. Per-
  // cell stats count every copy switched.
  void OnBurst(int in_port, const Cell* cells, size_t count);
  // Dispatches one relabelled run to `out` (one fabric-transit event).
  void ForwardRun(Link* out, std::vector<Cell>& run);
  const RouteEntry* Lookup(int in_port, Vci vci) const {
    const auto& table = routes_[static_cast<size_t>(in_port)];
    if (vci >= table.size() || table[vci].empty()) {
      return nullptr;
    }
    return &table[vci];
  }

  sim::Simulator* sim_;
  std::string name_;
  int id_ = -1;
  sim::DurationNs fabric_delay_;
  std::vector<std::unique_ptr<InputPort>> inputs_;
  std::vector<Link*> outputs_;
  // Flat per-input-port VCI tables (see kMaxRoutableVci).
  std::vector<std::vector<RouteEntry>> routes_;
  // Relabel scratch for OnBurst (see there for the re-entrancy argument).
  std::vector<Cell> relabel_buf_;
  // Per-input-port allocation hints: every VCI below the hint (and at or
  // above kVciFirstData) is known occupied. Advanced by AllocateVci/AddRoute,
  // lowered only when an entry becomes fully empty — pruning one branch of a
  // multicast entry must not hand the VCI out again while other branches
  // still route through it.
  mutable std::vector<Vci> vci_hints_;
  uint64_t cells_switched_ = 0;
  uint64_t cells_unroutable_ = 0;
};

}  // namespace pegasus::atm

#endif  // PEGASUS_SRC_ATM_SWITCH_H_
