#include "src/atm/switch.h"

namespace pegasus::atm {

Switch::Switch(sim::Simulator* sim, std::string name, int num_ports, sim::DurationNs fabric_delay)
    : sim_(sim),
      name_(std::move(name)),
      fabric_delay_(fabric_delay),
      outputs_(static_cast<size_t>(num_ports), nullptr) {
  inputs_.reserve(static_cast<size_t>(num_ports));
  for (int p = 0; p < num_ports; ++p) {
    inputs_.push_back(std::make_unique<InputPort>(this, p));
  }
}

CellSink* Switch::input(int port) { return inputs_[static_cast<size_t>(port)].get(); }

void Switch::AttachOutput(int port, Link* link) { outputs_[static_cast<size_t>(port)] = link; }

bool Switch::AddRoute(int in_port, Vci in_vci, int out_port, Vci out_vci) {
  auto [it, inserted] = routes_.insert({RouteKey{in_port, in_vci}, RouteTarget{out_port, out_vci}});
  (void)it;
  return inserted;
}

bool Switch::RemoveRoute(int in_port, Vci in_vci) {
  return routes_.erase(RouteKey{in_port, in_vci}) > 0;
}

bool Switch::HasRoute(int in_port, Vci in_vci) const {
  return routes_.count(RouteKey{in_port, in_vci}) > 0;
}

Vci Switch::AllocateVci(int in_port) const {
  Vci vci = kVciFirstData;
  while (HasRoute(in_port, vci)) {
    ++vci;
  }
  return vci;
}

void Switch::OnCell(int in_port, const Cell& cell) {
  auto it = routes_.find(RouteKey{in_port, cell.vci});
  if (it == routes_.end()) {
    ++cells_unroutable_;
    return;
  }
  const RouteTarget target = it->second;
  Link* out = outputs_[static_cast<size_t>(target.out_port)];
  if (out == nullptr) {
    ++cells_unroutable_;
    return;
  }
  ++cells_switched_;
  Cell relabelled = cell;
  relabelled.vci = target.out_vci;
  if (fabric_delay_ == 0) {
    out->SendCell(relabelled);
  } else {
    sim_->ScheduleAfter(fabric_delay_, [out, relabelled]() { out->SendCell(relabelled); });
  }
}

}  // namespace pegasus::atm
