#include "src/atm/switch.h"

#include <utility>

namespace pegasus::atm {

Switch::Switch(sim::Simulator* sim, std::string name, int num_ports, sim::DurationNs fabric_delay)
    : sim_(sim),
      name_(std::move(name)),
      fabric_delay_(fabric_delay),
      outputs_(static_cast<size_t>(num_ports), nullptr),
      routes_(static_cast<size_t>(num_ports)),
      vci_hints_(static_cast<size_t>(num_ports), kVciFirstData) {
  inputs_.reserve(static_cast<size_t>(num_ports));
  for (int p = 0; p < num_ports; ++p) {
    inputs_.push_back(std::make_unique<InputPort>(this, p));
  }
}

CellSink* Switch::input(int port) { return inputs_[static_cast<size_t>(port)].get(); }

void Switch::AttachOutput(int port, Link* link) { outputs_[static_cast<size_t>(port)] = link; }

bool Switch::AddRoute(int in_port, Vci in_vci, int out_port, Vci out_vci) {
  if (in_vci >= kMaxRoutableVci) {
    return false;
  }
  auto& table = routes_[static_cast<size_t>(in_port)];
  if (in_vci >= table.size()) {
    table.resize(static_cast<size_t>(in_vci) + 1);
  }
  RouteTarget& slot = table[in_vci];
  if (slot.out_port >= 0) {
    return false;
  }
  slot = RouteTarget{out_port, out_vci};
  Vci& hint = vci_hints_[static_cast<size_t>(in_port)];
  if (in_vci == hint) {
    ++hint;
  }
  return true;
}

bool Switch::RemoveRoute(int in_port, Vci in_vci) {
  auto& table = routes_[static_cast<size_t>(in_port)];
  if (in_vci >= table.size() || table[in_vci].out_port < 0) {
    return false;
  }
  table[in_vci] = RouteTarget{};
  Vci& hint = vci_hints_[static_cast<size_t>(in_port)];
  if (in_vci >= kVciFirstData && in_vci < hint) {
    hint = in_vci;
  }
  return true;
}

bool Switch::HasRoute(int in_port, Vci in_vci) const {
  return Lookup(in_port, in_vci) != nullptr;
}

Vci Switch::AllocateVci(int in_port) const {
  Vci& hint = vci_hints_[static_cast<size_t>(in_port)];
  Vci vci = hint < kVciFirstData ? kVciFirstData : hint;
  while (HasRoute(in_port, vci)) {
    ++vci;
  }
  // Everything in [old hint, vci) was occupied; remember that so churny
  // allocate/release cycles never re-probe the same run. The found VCI is
  // NOT marked used here — AddRoute advances past it when the caller
  // commits, so repeated AllocateVci without AddRoute stays idempotent.
  hint = vci;
  return vci;
}

void Switch::OnBurst(int in_port, const Cell* cells, size_t count) {
  size_t i = 0;
  while (i < count) {
    const RouteTarget* target = Lookup(in_port, cells[i].vci);
    Link* out = target != nullptr ? outputs_[static_cast<size_t>(target->out_port)] : nullptr;
    if (out == nullptr) {
      ++cells_unroutable_;
      ++i;
      continue;
    }
    // Gather the maximal run of cells bound for the same output link and
    // relabel them in one pass; the run crosses the fabric as one event.
    // The scratch buffer is a member so the zero-delay path allocates
    // nothing; downstream delivery is always via a scheduled event, so
    // nothing re-enters OnBurst while the scratch is live.
    relabel_buf_.clear();
    do {
      relabel_buf_.push_back(cells[i]);
      relabel_buf_.back().vci = target->out_vci;
      ++i;
      if (i == count) {
        break;
      }
      target = Lookup(in_port, cells[i].vci);
    } while (target != nullptr &&
             outputs_[static_cast<size_t>(target->out_port)] == out);
    cells_switched_ += relabel_buf_.size();
    if (fabric_delay_ == 0) {
      out->SendBurst(relabel_buf_.data(), relabel_buf_.size());
    } else if (relabel_buf_.size() == 1) {
      // Single cell: capture it in the closure (inline in the engine's
      // handler storage) instead of heap-allocating a one-element train.
      const Cell relabelled = relabel_buf_[0];
      sim_->ScheduleAfter(fabric_delay_, [out, relabelled]() { out->SendCell(relabelled); });
    } else {
      sim_->ScheduleAfter(fabric_delay_,
                          [out, train = std::move(relabel_buf_)]() mutable {
                            out->SendBurst(train.data(), train.size());
                          });
      relabel_buf_.clear();  // moved-from; make the state explicit
    }
  }
}

}  // namespace pegasus::atm
