#include "src/atm/switch.h"

#include <algorithm>
#include <utility>

namespace pegasus::atm {

Switch::Switch(sim::Simulator* sim, std::string name, int num_ports, sim::DurationNs fabric_delay)
    : sim_(sim),
      name_(std::move(name)),
      fabric_delay_(fabric_delay),
      outputs_(static_cast<size_t>(num_ports), nullptr),
      routes_(static_cast<size_t>(num_ports)),
      vci_hints_(static_cast<size_t>(num_ports), kVciFirstData) {
  inputs_.reserve(static_cast<size_t>(num_ports));
  for (int p = 0; p < num_ports; ++p) {
    inputs_.push_back(std::make_unique<InputPort>(this, p));
  }
}

CellSink* Switch::input(int port) { return inputs_[static_cast<size_t>(port)].get(); }

void Switch::AttachOutput(int port, Link* link) { outputs_[static_cast<size_t>(port)] = link; }

bool Switch::AddRoute(int in_port, Vci in_vci, int out_port, Vci out_vci) {
  if (in_vci >= kMaxRoutableVci) {
    return false;
  }
  auto& table = routes_[static_cast<size_t>(in_port)];
  if (in_vci >= table.size()) {
    table.resize(static_cast<size_t>(in_vci) + 1);
  }
  RouteEntry& entry = table[in_vci];
  if (!entry.empty()) {
    return false;
  }
  entry.primary = RouteTarget{out_port, out_vci};
  Vci& hint = vci_hints_[static_cast<size_t>(in_port)];
  if (in_vci == hint) {
    ++hint;
  }
  return true;
}

bool Switch::RemoveRoute(int in_port, Vci in_vci) {
  auto& table = routes_[static_cast<size_t>(in_port)];
  if (in_vci >= table.size() || table[in_vci].empty()) {
    return false;
  }
  table[in_vci] = RouteEntry{};
  Vci& hint = vci_hints_[static_cast<size_t>(in_port)];
  if (in_vci >= kVciFirstData && in_vci < hint) {
    hint = in_vci;
  }
  return true;
}

bool Switch::AddRouteTarget(int in_port, Vci in_vci, int out_port, Vci out_vci) {
  auto& table = routes_[static_cast<size_t>(in_port)];
  if (in_vci >= table.size() || table[in_vci].empty()) {
    return false;
  }
  RouteEntry& entry = table[in_vci];
  if (entry.primary.out_port == out_port) {
    return false;
  }
  for (const RouteTarget& t : entry.extra) {
    if (t.out_port == out_port) {
      return false;
    }
  }
  entry.extra.push_back(RouteTarget{out_port, out_vci});
  return true;
}

bool Switch::RemoveRouteTarget(int in_port, Vci in_vci, int out_port) {
  auto& table = routes_[static_cast<size_t>(in_port)];
  if (in_vci >= table.size() || table[in_vci].empty()) {
    return false;
  }
  RouteEntry& entry = table[in_vci];
  if (entry.primary.out_port == out_port) {
    if (entry.extra.empty()) {
      // Last branch: the whole entry retires (and only now may the
      // allocation hint drop back to this VCI).
      return RemoveRoute(in_port, in_vci);
    }
    // The next-oldest branch becomes primary, preserving graft order — the
    // replication order of OnBurst stays the deterministic graft order.
    entry.primary = entry.extra.front();
    entry.extra.erase(entry.extra.begin());
    return true;
  }
  auto it = std::find_if(entry.extra.begin(), entry.extra.end(),
                         [out_port](const RouteTarget& t) { return t.out_port == out_port; });
  if (it == entry.extra.end()) {
    return false;
  }
  entry.extra.erase(it);
  return true;
}

int Switch::RouteTargetCount(int in_port, Vci in_vci) const {
  const RouteEntry* entry = Lookup(in_port, in_vci);
  return entry == nullptr ? 0 : 1 + static_cast<int>(entry->extra.size());
}

bool Switch::HasRoute(int in_port, Vci in_vci) const {
  return Lookup(in_port, in_vci) != nullptr;
}

Vci Switch::AllocateVci(int in_port) const {
  Vci& hint = vci_hints_[static_cast<size_t>(in_port)];
  Vci vci = hint < kVciFirstData ? kVciFirstData : hint;
  while (HasRoute(in_port, vci)) {
    ++vci;
  }
  // Everything in [old hint, vci) was occupied; remember that so churny
  // allocate/release cycles never re-probe the same run. The found VCI is
  // NOT marked used here — AddRoute advances past it when the caller
  // commits, so repeated AllocateVci without AddRoute stays idempotent.
  hint = vci;
  return vci;
}

void Switch::ForwardRun(Link* out, std::vector<Cell>& run) {
  if (fabric_delay_ == 0) {
    out->SendBurst(run.data(), run.size());
  } else if (run.size() == 1) {
    // Single cell: capture it in the closure (inline in the engine's
    // handler storage) instead of heap-allocating a one-element train.
    const Cell relabelled = run[0];
    sim_->ScheduleAfter(fabric_delay_, [out, relabelled]() { out->SendCell(relabelled); });
  } else {
    sim_->ScheduleAfter(fabric_delay_, [out, train = std::move(run)]() mutable {
      out->SendBurst(train.data(), train.size());
    });
    run.clear();  // moved-from; make the state explicit
  }
}

void Switch::OnBurst(int in_port, const Cell* cells, size_t count) {
  size_t i = 0;
  while (i < count) {
    const RouteEntry* entry = Lookup(in_port, cells[i].vci);
    Link* out =
        entry != nullptr ? outputs_[static_cast<size_t>(entry->primary.out_port)] : nullptr;
    if (out == nullptr) {
      ++cells_unroutable_;
      ++i;
      continue;
    }
    if (!entry->unicast()) {
      // Point-to-multipoint entry: the run of consecutive cells carrying
      // this VCI is replicated once per BRANCH (each a distinct output
      // port), not once per downstream leaf — one relabel pass and one
      // fabric-transit event per branch, in graft order.
      const Vci in_vci = cells[i].vci;
      size_t j = i;
      while (j < count && cells[j].vci == in_vci) {
        ++j;
      }
      const size_t run = j - i;
      const RouteEntry snapshot = *entry;  // relabel loop must not hold a table ref
      auto replicate = [&](const RouteTarget& target) {
        relabel_buf_.clear();
        for (size_t k = i; k < j; ++k) {
          relabel_buf_.push_back(cells[k]);
          relabel_buf_.back().vci = target.out_vci;
        }
        ForwardRun(outputs_[static_cast<size_t>(target.out_port)], relabel_buf_);
      };
      replicate(snapshot.primary);
      for (const RouteTarget& target : snapshot.extra) {
        replicate(target);
      }
      cells_switched_ += run * (1 + snapshot.extra.size());
      i = j;
      continue;
    }
    // Gather the maximal run of cells bound for the same output link and
    // relabel them in one pass; the run crosses the fabric as one event.
    // The scratch buffer is a member so the zero-delay path allocates
    // nothing; downstream delivery is always via a scheduled event, so
    // nothing re-enters OnBurst while the scratch is live.
    relabel_buf_.clear();
    do {
      relabel_buf_.push_back(cells[i]);
      relabel_buf_.back().vci = entry->primary.out_vci;
      ++i;
      if (i == count) {
        break;
      }
      entry = Lookup(in_port, cells[i].vci);
    } while (entry != nullptr && entry->unicast() &&
             outputs_[static_cast<size_t>(entry->primary.out_port)] == out);
    cells_switched_ += relabel_buf_.size();
    ForwardRun(out, relabel_buf_);
  }
}

}  // namespace pegasus::atm
