// Wire-format serialisation helpers.
//
// Control-protocol messages, RPC requests and stored metadata all use the
// same little-endian framing, written and read through these two classes.
// Readers are resilient: reads past the end return zero values and mark the
// reader bad, so malformed frames can be rejected after parsing.
#ifndef PEGASUS_SRC_ATM_WIRE_H_
#define PEGASUS_SRC_ATM_WIRE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace pegasus::atm {

class WireWriter {
 public:
  void PutU8(uint8_t v) { buf_.push_back(v); }
  void PutU16(uint16_t v);
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }
  // Length-prefixed (u32) byte string.
  void PutBytes(const std::vector<uint8_t>& v);
  void PutString(const std::string& s);

  const std::vector<uint8_t>& data() const { return buf_; }
  std::vector<uint8_t> Take() { return std::move(buf_); }

 private:
  std::vector<uint8_t> buf_;
};

class WireReader {
 public:
  explicit WireReader(const std::vector<uint8_t>& data) : data_(data) {}

  uint8_t GetU8();
  uint16_t GetU16();
  uint32_t GetU32();
  uint64_t GetU64();
  int64_t GetI64() { return static_cast<int64_t>(GetU64()); }
  std::vector<uint8_t> GetBytes();
  std::string GetString();

  // True if every read so far was in bounds and all bytes were consumed or
  // not; use ok() to validate after parsing a full message.
  bool ok() const { return ok_; }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  bool Need(size_t n);

  const std::vector<uint8_t>& data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace pegasus::atm

#endif  // PEGASUS_SRC_ATM_WIRE_H_
