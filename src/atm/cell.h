// ATM cell representation.
//
// A cell is 53 octets on the wire: a 5-octet header and a 48-octet payload.
// The simulator models the header fields that matter for switching and AAL5
// (VCI, payload-type indicator with the AAL5 end-of-frame bit, cell-loss
// priority) and carries a little out-of-band metadata (creation timestamp)
// used only for measurement, never for protocol decisions.
#ifndef PEGASUS_SRC_ATM_CELL_H_
#define PEGASUS_SRC_ATM_CELL_H_

#include <array>
#include <cstdint>

#include "src/sim/time.h"

namespace pegasus::atm {

// Virtual-circuit identifier. The paper's devices demultiplex purely on VCI
// (e.g. the ATM display indexes its window-descriptor table by VCI).
using Vci = uint32_t;

inline constexpr Vci kVciUnassigned = 0;
// Cells on VCI 5 carry signalling in real ATM; the simulator reserves the
// first few VCIs so tests can assert that data circuits never collide.
inline constexpr Vci kVciFirstData = 32;

inline constexpr int kCellPayloadSize = 48;
inline constexpr int kCellHeaderSize = 5;
inline constexpr int kCellSize = kCellPayloadSize + kCellHeaderSize;

struct Cell {
  Vci vci = kVciUnassigned;
  // Payload-type indicator bit 0: AAL5 "last cell of CS-PDU" marker.
  bool end_of_frame = false;
  // Cell-loss priority: true means "drop me first" under congestion.
  bool low_priority = false;
  std::array<uint8_t, kCellPayloadSize> payload{};

  // --- Simulation metadata (not part of the 53 wire octets) ---
  // Time the cell was created at its source; used for end-to-end latency
  // measurement in experiments E01/E03.
  sim::TimeNs created_at = 0;
  // Monotonic per-source sequence number, for loss/reorder detection in tests.
  uint64_t seq = 0;
};

}  // namespace pegasus::atm

#endif  // PEGASUS_SRC_ATM_CELL_H_
