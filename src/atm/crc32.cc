#include "src/atm/crc32.h"

#include <array>

namespace pegasus::atm {

namespace {

std::array<uint32_t, 256> BuildTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

uint32_t Crc32(const uint8_t* data, size_t len, uint32_t seed) {
  static const std::array<uint32_t, 256> kTable = BuildTable();
  uint32_t c = seed ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < len; ++i) {
    c = kTable[(c ^ data[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace pegasus::atm
