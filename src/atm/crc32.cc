#include "src/atm/crc32.h"

#include <array>
#include <cstring>

namespace pegasus::atm {

namespace {

// Slicing-by-8 tables: table[0] is the classic byte-at-a-time table for the
// reflected AAL5 polynomial; table[k][b] is the CRC of byte b followed by k
// zero bytes. Eight lookups then advance the CRC eight input bytes at once.
struct Crc32Tables {
  std::array<std::array<uint32_t, 256>, 8> t;
};

Crc32Tables BuildTables() {
  Crc32Tables tables{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    tables.t[0][i] = c;
  }
  for (int k = 1; k < 8; ++k) {
    for (uint32_t i = 0; i < 256; ++i) {
      const uint32_t prev = tables.t[k - 1][i];
      tables.t[k][i] = tables.t[0][prev & 0xFFu] ^ (prev >> 8);
    }
  }
  return tables;
}

}  // namespace

uint32_t Crc32(const uint8_t* data, size_t len, uint32_t seed) {
  static const Crc32Tables kTables = BuildTables();
  const auto& t = kTables.t;
  uint32_t c = seed ^ 0xFFFFFFFFu;
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
  // Eight bytes per step. The 32-bit loads fold the running CRC into the
  // first word; this formulation assumes little-endian loads.
  while (len >= 8) {
    uint32_t lo;
    uint32_t hi;
    std::memcpy(&lo, data, 4);
    std::memcpy(&hi, data + 4, 4);
    lo ^= c;
    c = t[7][lo & 0xFFu] ^ t[6][(lo >> 8) & 0xFFu] ^ t[5][(lo >> 16) & 0xFFu] ^ t[4][lo >> 24] ^
        t[3][hi & 0xFFu] ^ t[2][(hi >> 8) & 0xFFu] ^ t[1][(hi >> 16) & 0xFFu] ^ t[0][hi >> 24];
    data += 8;
    len -= 8;
  }
#endif
  while (len-- > 0) {
    c = t[0][(c ^ *data++) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace pegasus::atm
