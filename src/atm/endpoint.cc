#include "src/atm/endpoint.h"

#include <algorithm>

#include "src/atm/aal5.h"

namespace pegasus::atm {

Endpoint::Endpoint(sim::Simulator* sim, std::string name) : sim_(sim), name_(std::move(name)) {}

void Endpoint::DeliverCell(const Cell& cell) {
  ++cells_received_;
  if (handler_) {
    handler_(cell);
  }
}

bool Endpoint::SendCell(Cell cell) {
  if (uplink_ == nullptr) {
    return false;
  }
  ++cells_sent_;
  return uplink_->SendCell(cell);
}

void Endpoint::SendFrame(Vci vci, const std::vector<uint8_t>& sdu, int64_t pace_bps) {
  std::vector<Cell> cells = Aal5Segment(vci, sdu, sim_->now(), next_seq_);
  next_seq_ += cells.size();
  if (pace_bps <= 0) {
    for (const Cell& c : cells) {
      SendCell(c);
    }
    return;
  }
  const sim::DurationNs spacing = sim::TransmissionTime(kCellSize, pace_bps);
  sim::TimeNs& horizon = pace_free_at_[vci];
  horizon = std::max(horizon, sim_->now());
  for (const Cell& c : cells) {
    const sim::TimeNs at = horizon;
    horizon += spacing;
    if (at <= sim_->now()) {
      SendCell(c);
    } else {
      sim_->ScheduleAt(at, [this, c]() { SendCell(c); });
    }
  }
}

Vci Endpoint::AllocateIncomingVci() {
  Vci vci = kVciFirstData;
  while (incoming_vcis_.count(vci) > 0) {
    ++vci;
  }
  incoming_vcis_.insert(vci);
  return vci;
}

}  // namespace pegasus::atm
