#include "src/atm/endpoint.h"

#include <algorithm>

#include "src/atm/aal5.h"

namespace pegasus::atm {

Endpoint::Endpoint(sim::Simulator* sim, std::string name) : sim_(sim), name_(std::move(name)) {}

void Endpoint::DeliverCell(const Cell& cell) {
  ++cells_received_;
  if (handler_) {
    handler_(cell);
  }
}

void Endpoint::DeliverBurst(const Cell* cells, size_t count) {
  cells_received_ += count;
  if (handler_) {
    for (size_t i = 0; i < count; ++i) {
      handler_(cells[i]);
    }
  }
}

bool Endpoint::SendCell(Cell cell) {
  if (uplink_ == nullptr) {
    return false;
  }
  ++cells_sent_;
  return uplink_->SendCell(cell);
}

void Endpoint::SendFrame(Vci vci, const std::vector<uint8_t>& sdu, int64_t pace_bps) {
  tx_train_.clear();
  Aal5SegmentInto(vci, sdu.data(), sdu.size(), sim_->now(), next_seq_, &tx_train_);
  next_seq_ += tx_train_.size();
  if (uplink_ == nullptr) {
    // Matches SendCell on a detached endpoint: nothing is counted as sent.
    return;
  }
  if (pace_bps <= 0) {
    cells_sent_ += tx_train_.size();
    uplink_->SendBurst(tx_train_.data(), tx_train_.size());
    return;
  }
  const sim::DurationNs spacing = sim::TransmissionTime(kCellSize, pace_bps);
  sim::TimeNs& horizon = pace_free_at_[vci];
  horizon = std::max(horizon, sim_->now());
  for (const Cell& c : tx_train_) {
    const sim::TimeNs at = horizon;
    horizon += spacing;
    if (at <= sim_->now()) {
      SendCell(c);
    } else {
      sim_->ScheduleAt(at, [this, c]() { SendCell(c); });
    }
  }
}

Vci Endpoint::AllocateIncomingVci() {
  Vci vci = kVciFirstData;
  while (incoming_vcis_.count(vci) > 0) {
    ++vci;
  }
  incoming_vcis_.insert(vci);
  return vci;
}

}  // namespace pegasus::atm
