#include "src/atm/endpoint.h"

#include <algorithm>

#include "src/atm/aal5.h"

namespace pegasus::atm {

Endpoint::Endpoint(sim::Simulator* sim, std::string name) : sim_(sim), name_(std::move(name)) {}

void Endpoint::DeliverCell(const Cell& cell) {
  ++cells_received_;
  if (handler_) {
    handler_(cell);
  }
}

void Endpoint::DeliverBurst(const Cell* cells, size_t count) {
  cells_received_ += count;
  if (burst_handler_) {
    burst_handler_(cells, count);
    return;
  }
  if (handler_) {
    for (size_t i = 0; i < count; ++i) {
      handler_(cells[i]);
    }
  }
}

bool Endpoint::SendCell(Cell cell) {
  if (uplink_ == nullptr) {
    return false;
  }
  ++cells_sent_;
  return uplink_->SendCell(cell);
}

void Endpoint::SendFrame(Vci vci, const std::vector<uint8_t>& sdu, int64_t pace_bps) {
  tx_train_.clear();
  Aal5SegmentInto(vci, sdu.data(), sdu.size(), sim_->now(), next_seq_, &tx_train_);
  next_seq_ += tx_train_.size();
  if (uplink_ == nullptr) {
    // Matches SendCell on a detached endpoint: nothing is counted as sent.
    return;
  }
  if (pace_bps <= 0) {
    cells_sent_ += tx_train_.size();
    uplink_->SendBurst(tx_train_.data(), tx_train_.size());
    return;
  }
  const sim::DurationNs spacing = sim::TransmissionTime(kCellSize, pace_bps);
  Pacer& pacer = pacers_[vci];
  pacer.horizon = std::max(pacer.horizon, sim_->now());
  for (const Cell& c : tx_train_) {
    pacer.pending.push_back(PacedCell{pacer.horizon, c});
    pacer.horizon += spacing;
  }
  // Cells already due (the horizon had fallen behind the clock) leave now;
  // the rest wait for their window's wake.
  DrainPacer(vci, pacer);
  ArmPacer(vci, pacer);
}

void Endpoint::DrainPacer(Vci vci, Pacer& pacer) {
  (void)vci;
  const sim::TimeNs now = sim_->now();
  size_t due = 0;
  while (due < pacer.pending.size() && pacer.pending[due].due <= now) {
    ++due;
  }
  if (due == 0) {
    return;
  }
  // The due prefix leaves as one train (deque storage is not contiguous, so
  // stage it through the tx buffer).
  tx_train_.clear();
  for (size_t i = 0; i < due; ++i) {
    tx_train_.push_back(pacer.pending[i].cell);
  }
  pacer.pending.erase(pacer.pending.begin(), pacer.pending.begin() + static_cast<ptrdiff_t>(due));
  cells_sent_ += tx_train_.size();
  uplink_->SendBurst(tx_train_.data(), tx_train_.size());
}

void Endpoint::ArmPacer(Vci vci, Pacer& pacer) {
  if (pacer.wake_armed || pacer.pending.empty()) {
    return;
  }
  // Wake when the last cell of the next burst window falls due: the whole
  // window is then the due prefix and leaves as one burst. The final
  // (possibly partial) window of a frame therefore wakes at the end-of-frame
  // cell's own per-cell instant.
  const size_t last = std::min(pacer.pending.size(), kPaceBurstCells) - 1;
  pacer.wake_armed = true;
  sim_->ScheduleAt(pacer.pending[last].due, [this, vci]() {
    auto it = pacers_.find(vci);
    if (it == pacers_.end()) {
      return;
    }
    it->second.wake_armed = false;
    DrainPacer(vci, it->second);
    ArmPacer(vci, it->second);
  });
}

Vci Endpoint::AllocateIncomingVci() {
  Vci vci = kVciFirstData;
  while (incoming_vcis_.count(vci) > 0) {
    ++vci;
  }
  incoming_vcis_.insert(vci);
  return vci;
}

}  // namespace pegasus::atm
