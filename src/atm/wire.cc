#include "src/atm/wire.h"

namespace pegasus::atm {

void WireWriter::PutU16(uint16_t v) {
  PutU8(static_cast<uint8_t>(v));
  PutU8(static_cast<uint8_t>(v >> 8));
}

void WireWriter::PutU32(uint32_t v) {
  PutU16(static_cast<uint16_t>(v));
  PutU16(static_cast<uint16_t>(v >> 16));
}

void WireWriter::PutU64(uint64_t v) {
  PutU32(static_cast<uint32_t>(v));
  PutU32(static_cast<uint32_t>(v >> 32));
}

void WireWriter::PutBytes(const std::vector<uint8_t>& v) {
  PutU32(static_cast<uint32_t>(v.size()));
  buf_.insert(buf_.end(), v.begin(), v.end());
}

void WireWriter::PutString(const std::string& s) {
  PutU32(static_cast<uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

bool WireReader::Need(size_t n) {
  if (!ok_ || pos_ + n > data_.size()) {
    ok_ = false;
    return false;
  }
  return true;
}

uint8_t WireReader::GetU8() {
  if (!Need(1)) {
    return 0;
  }
  return data_[pos_++];
}

uint16_t WireReader::GetU16() {
  uint16_t lo = GetU8();
  uint16_t hi = GetU8();
  return static_cast<uint16_t>(lo | hi << 8);
}

uint32_t WireReader::GetU32() {
  uint32_t lo = GetU16();
  uint32_t hi = GetU16();
  return lo | hi << 16;
}

uint64_t WireReader::GetU64() {
  uint64_t lo = GetU32();
  uint64_t hi = GetU32();
  return lo | hi << 32;
}

std::vector<uint8_t> WireReader::GetBytes() {
  const uint32_t len = GetU32();
  if (!Need(len)) {
    return {};
  }
  std::vector<uint8_t> out(data_.begin() + static_cast<long>(pos_),
                           data_.begin() + static_cast<long>(pos_ + len));
  pos_ += len;
  return out;
}

std::string WireReader::GetString() {
  const uint32_t len = GetU32();
  if (!Need(len)) {
    return {};
  }
  std::string out(data_.begin() + static_cast<long>(pos_),
                  data_.begin() + static_cast<long>(pos_ + len));
  pos_ += len;
  return out;
}

}  // namespace pegasus::atm
