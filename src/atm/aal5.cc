#include "src/atm/aal5.h"

#include <cstring>

#include "src/atm/crc32.h"

namespace pegasus::atm {

namespace {

// AAL5 trailer layout (last 8 octets of the CS-PDU):
//   [0] CPCS-UU  [1] CPI  [2..3] length (big-endian)  [4..7] CRC-32 (big-endian)
constexpr size_t kTrailerSize = 8;

void PutU16(uint8_t* p, uint16_t v) {
  p[0] = static_cast<uint8_t>(v >> 8);
  p[1] = static_cast<uint8_t>(v);
}

uint16_t GetU16(const uint8_t* p) { return static_cast<uint16_t>(p[0] << 8 | p[1]); }

void PutU32(uint8_t* p, uint32_t v) {
  p[0] = static_cast<uint8_t>(v >> 24);
  p[1] = static_cast<uint8_t>(v >> 16);
  p[2] = static_cast<uint8_t>(v >> 8);
  p[3] = static_cast<uint8_t>(v);
}

uint32_t GetU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) << 24 | static_cast<uint32_t>(p[1]) << 16 |
         static_cast<uint32_t>(p[2]) << 8 | static_cast<uint32_t>(p[3]);
}

}  // namespace

size_t Aal5SegmentInto(Vci vci, const uint8_t* sdu, size_t sdu_len, sim::TimeNs created_at,
                       uint64_t first_seq, std::vector<Cell>* out) {
  if (sdu_len > kAal5MaxSduSize) {
    return 0;
  }
  // CS-PDU layout: SDU + zero pad + 8-octet trailer, a multiple of the cell
  // payload size — but cut directly into cell payloads instead of being
  // materialised.
  const size_t unpadded = sdu_len + kTrailerSize;
  const size_t n_cells = (unpadded + kCellPayloadSize - 1) / kCellPayloadSize;
  const size_t base = out->size();
  out->resize(base + n_cells);
  size_t offset = 0;  // position within the SDU
  for (size_t i = 0; i < n_cells; ++i) {
    Cell& c = (*out)[base + i];
    c.vci = vci;
    c.end_of_frame = (i + 1 == n_cells);
    c.low_priority = false;
    c.created_at = created_at;
    c.seq = first_seq + i;
    const size_t take = std::min(sdu_len - offset, static_cast<size_t>(kCellPayloadSize));
    if (take > 0) {
      std::memcpy(c.payload.data(), sdu + offset, take);
      offset += take;
    }
    if (take < static_cast<size_t>(kCellPayloadSize)) {
      std::memset(c.payload.data() + take, 0, kCellPayloadSize - take);
    }
  }
  // Trailer lives in the last 8 octets of the last cell (the PDU is padded
  // to a payload multiple, so it never straddles cells).
  Cell& last = (*out)[base + n_cells - 1];
  uint8_t* trailer = last.payload.data() + kCellPayloadSize - kTrailerSize;
  trailer[0] = 0;  // CPCS-UU
  trailer[1] = 0;  // CPI
  PutU16(trailer + 2, static_cast<uint16_t>(sdu_len));
  // CRC covers the whole PDU with the CRC field itself zeroed (it is zero
  // here), computed incrementally over the finished cell payloads.
  uint32_t crc = 0;
  for (size_t i = 0; i + 1 < n_cells; ++i) {
    crc = Crc32((*out)[base + i].payload.data(), kCellPayloadSize, crc);
  }
  crc = Crc32(last.payload.data(), kCellPayloadSize - 4, crc);
  PutU32(trailer + 4, crc);
  return n_cells;
}

std::vector<Cell> Aal5Segment(Vci vci, const std::vector<uint8_t>& sdu, sim::TimeNs created_at,
                              uint64_t first_seq) {
  std::vector<Cell> cells;
  Aal5SegmentInto(vci, sdu.data(), sdu.size(), created_at, first_seq, &cells);
  return cells;
}

namespace {
// Past this the PDU cannot be valid: an end-of-frame cell was lost and the
// reassembler resynchronises by dropping the accumulated buffer.
constexpr size_t kResyncLimit = kAal5MaxSduSize + 2 * kCellPayloadSize;
}  // namespace

void Aal5Reassembler::IngestSpan(const Cell* cells, size_t count) {
  size_t i = 0;
  while (i < count) {
    if (buffer_.empty()) {
      buffer_.reserve(64 * kCellPayloadSize);
    }
    // Cells that fit without tripping the resync limit; the one after them
    // trips it, exactly as the per-cell path's append-then-check would.
    const size_t room = (kResyncLimit - buffer_.size()) / kCellPayloadSize;
    const size_t take = std::min(count - i, room + 1);
    const size_t base = buffer_.size();
    buffer_.resize(base + take * kCellPayloadSize);
    uint8_t* dst = buffer_.data() + base;
    for (size_t k = 0; k < take; ++k) {
      std::memcpy(dst + k * kCellPayloadSize, cells[i + k].payload.data(), kCellPayloadSize);
    }
    i += take;
    if (buffer_.size() > kResyncLimit) {
      ++length_errors_;
      buffer_.clear();
    }
  }
}

std::optional<std::vector<uint8_t>> Aal5Reassembler::Push(const Cell& cell) {
  if (buffer_.empty()) {
    // One up-front reservation sized for a typical tile/frame PDU, so the
    // per-cell appends below never reallocate mid-frame for common sizes.
    buffer_.reserve(64 * kCellPayloadSize);
  }
  buffer_.insert(buffer_.end(), cell.payload.begin(), cell.payload.end());
  if (buffer_.size() > kResyncLimit) {
    // Lost an end-of-frame cell somewhere; resynchronise.
    ++length_errors_;
    buffer_.clear();
    return std::nullopt;
  }
  if (!cell.end_of_frame) {
    return std::nullopt;
  }
  std::vector<uint8_t> pdu;
  pdu.swap(buffer_);
  if (pdu.size() < kTrailerSize) {
    ++length_errors_;
    return std::nullopt;
  }
  const uint8_t* trailer = pdu.data() + pdu.size() - kTrailerSize;
  const uint16_t sdu_len = GetU16(trailer + 2);
  const uint32_t want_crc = GetU32(trailer + 4);
  if (sdu_len + kTrailerSize > pdu.size()) {
    ++length_errors_;
    return std::nullopt;
  }
  // Recompute CRC over the PDU with the CRC field zeroed.
  const uint32_t got_crc = Crc32(pdu.data(), pdu.size() - 4);
  if (got_crc != want_crc) {
    ++crc_errors_;
    return std::nullopt;
  }
  ++frames_ok_;
  pdu.resize(sdu_len);
  return pdu;
}

}  // namespace pegasus::atm
