#include "src/atm/aal5.h"

#include <cstring>

#include "src/atm/crc32.h"

namespace pegasus::atm {

namespace {

// AAL5 trailer layout (last 8 octets of the CS-PDU):
//   [0] CPCS-UU  [1] CPI  [2..3] length (big-endian)  [4..7] CRC-32 (big-endian)
constexpr size_t kTrailerSize = 8;

void PutU16(uint8_t* p, uint16_t v) {
  p[0] = static_cast<uint8_t>(v >> 8);
  p[1] = static_cast<uint8_t>(v);
}

uint16_t GetU16(const uint8_t* p) { return static_cast<uint16_t>(p[0] << 8 | p[1]); }

void PutU32(uint8_t* p, uint32_t v) {
  p[0] = static_cast<uint8_t>(v >> 24);
  p[1] = static_cast<uint8_t>(v >> 16);
  p[2] = static_cast<uint8_t>(v >> 8);
  p[3] = static_cast<uint8_t>(v);
}

uint32_t GetU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) << 24 | static_cast<uint32_t>(p[1]) << 16 |
         static_cast<uint32_t>(p[2]) << 8 | static_cast<uint32_t>(p[3]);
}

}  // namespace

std::vector<Cell> Aal5Segment(Vci vci, const std::vector<uint8_t>& sdu, sim::TimeNs created_at,
                              uint64_t first_seq) {
  if (sdu.size() > kAal5MaxSduSize) {
    return {};
  }
  // Build the CS-PDU: SDU + pad + trailer, length a multiple of the payload size.
  const size_t unpadded = sdu.size() + kTrailerSize;
  const size_t pdu_len = (unpadded + kCellPayloadSize - 1) / kCellPayloadSize * kCellPayloadSize;
  std::vector<uint8_t> pdu(pdu_len, 0);
  if (!sdu.empty()) {
    std::memcpy(pdu.data(), sdu.data(), sdu.size());
  }
  uint8_t* trailer = pdu.data() + pdu_len - kTrailerSize;
  trailer[0] = 0;  // CPCS-UU
  trailer[1] = 0;  // CPI
  PutU16(trailer + 2, static_cast<uint16_t>(sdu.size()));
  // CRC covers the whole PDU with the CRC field itself zeroed (it is zero here).
  PutU32(trailer + 4, Crc32(pdu.data(), pdu_len - 4));

  std::vector<Cell> cells(pdu_len / kCellPayloadSize);
  for (size_t i = 0; i < cells.size(); ++i) {
    Cell& c = cells[i];
    c.vci = vci;
    c.end_of_frame = (i + 1 == cells.size());
    c.created_at = created_at;
    c.seq = first_seq + i;
    std::memcpy(c.payload.data(), pdu.data() + i * kCellPayloadSize, kCellPayloadSize);
  }
  return cells;
}

std::optional<std::vector<uint8_t>> Aal5Reassembler::Push(const Cell& cell) {
  buffer_.insert(buffer_.end(), cell.payload.begin(), cell.payload.end());
  if (buffer_.size() > kAal5MaxSduSize + 2 * kCellPayloadSize) {
    // Lost an end-of-frame cell somewhere; resynchronise.
    ++length_errors_;
    buffer_.clear();
    return std::nullopt;
  }
  if (!cell.end_of_frame) {
    return std::nullopt;
  }
  std::vector<uint8_t> pdu;
  pdu.swap(buffer_);
  if (pdu.size() < kTrailerSize) {
    ++length_errors_;
    return std::nullopt;
  }
  const uint8_t* trailer = pdu.data() + pdu.size() - kTrailerSize;
  const uint16_t sdu_len = GetU16(trailer + 2);
  const uint32_t want_crc = GetU32(trailer + 4);
  if (sdu_len + kTrailerSize > pdu.size()) {
    ++length_errors_;
    return std::nullopt;
  }
  // Recompute CRC over the PDU with the CRC field zeroed.
  const uint32_t got_crc = Crc32(pdu.data(), pdu.size() - 4);
  if (got_crc != want_crc) {
    ++crc_errors_;
    return std::nullopt;
  }
  ++frames_ok_;
  pdu.resize(sdu_len);
  return pdu;
}

}  // namespace pegasus::atm
