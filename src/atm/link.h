// Point-to-point ATM link model.
//
// A Link is unidirectional: cells handed to SendCell are serialised at the
// link rate, experience the propagation delay, and are delivered to the
// attached sink. The link keeps a bounded transmit queue and TAIL-DROPS:
// a cell arriving to a full queue is dropped regardless of its cell-loss
// priority bit (priority-aware discard would be a switch policy; the link
// itself is a dumb pipe). Drops are counted per priority class so an
// observer can weight the loss of reserved-class cells above best-effort
// ones when deriving congestion severity.
//
// Cell trains: back-to-back cells queued while the transmitter is busy are
// coalesced into a train and handed to the sink as ONE DeliverBurst — one
// scheduled event per train instead of two per cell. A train is CUT at
// serialisation completion: the event fires when the next end-of-frame cell
// (or the kMaxTrainCells-th cell of a raw stream) clears the transmitter,
// groups whatever has serialised by then, and the wire then adds pure
// propagation delay on top. A frame's completion instant — the latency
// media code can observe — is identical to the per-cell path; only interior
// cells move (to their frame's end). Cutting at serialisation completion
// rather than completion-plus-propagation matters for determinism: a shard
// boundary link's event cannot wait out the propagation delay (that delay
// IS its conservative lookahead), so the cut must never depend on cells
// sent during the propagation window. Admission (per-cell tail-drop), the
// split drop counters, cells_sent, busy_time and the queue-occupancy view
// are bit-identical to the per-cell path.
#ifndef PEGASUS_SRC_ATM_LINK_H_
#define PEGASUS_SRC_ATM_LINK_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/atm/cell.h"
#include "src/sim/event_queue.h"
#include "src/sim/shard.h"
#include "src/sim/time.h"

namespace pegasus::atm {

// Anything that can accept a cell: a switch input port, a device, a NIC.
class CellSink {
 public:
  virtual ~CellSink() = default;
  virtual void DeliverCell(const Cell& cell) = 0;
  // A train of back-to-back cells that completed the link together, in send
  // order. Sinks that can exploit batching (a switch fabric, a NIC ring)
  // override this; the default preserves per-cell semantics.
  virtual void DeliverBurst(const Cell* cells, size_t count) {
    for (size_t i = 0; i < count; ++i) {
      DeliverCell(cells[i]);
    }
  }
};

class Link {
 public:
  // `queue_limit` is the maximum number of cells waiting for serialisation;
  // a cell being transmitted does not count against the limit.
  Link(sim::Simulator* sim, std::string name, int64_t bits_per_second,
       sim::DurationNs propagation_delay, size_t queue_limit = 1024);

  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  void set_sink(CellSink* sink) { sink_ = sink; }
  CellSink* sink() const { return sink_; }
  // The simulator serialising this link's cells: the SOURCE side's shard.
  sim::Simulator* simulator() const { return sim_; }

  // Marks this link as a shard boundary (src/sim/shard.h): the sink lives
  // on another shard's simulator. Trains are cut at serialisation
  // completion either way; a boundary link ships each train through
  // `channel` timestamped `now + propagation_delay` instead of scheduling a
  // local delivery event — identical delivery instants and grouping, with
  // the propagation delay serving as the conservative lookahead window.
  void SetBoundary(sim::BoundaryChannel* channel) { boundary_ = channel; }
  bool is_boundary() const { return boundary_ != nullptr; }

  // Enqueues a cell for transmission. Returns false (and counts a drop) if
  // the transmit queue is full.
  bool SendCell(const Cell& cell);

  // Offers a whole train of cells; equivalent to calling SendCell on each
  // (admission and tail-drop stay per-cell) but schedules at most one
  // delivery event. Returns the number of cells accepted.
  size_t SendBurst(const Cell* cells, size_t count);

  const std::string& name() const { return name_; }
  // Dense id assigned by the owning Network (its index in links()); -1 when
  // the link is free-standing. Admission bookkeeping indexes flat arrays by
  // it instead of hashing the pointer.
  int id() const { return id_; }
  void set_id(int id) { id_ = id; }
  int64_t bits_per_second() const { return bps_; }
  sim::DurationNs propagation_delay() const { return prop_delay_; }
  // Serialisation time of one 53-octet cell on this link.
  sim::DurationNs cell_time() const { return cell_time_; }

  uint64_t cells_sent() const { return cells_sent_; }
  uint64_t cells_dropped() const { return cells_dropped_high_ + cells_dropped_low_; }
  // Tail-drops split by the dropped cell's loss-priority bit.
  uint64_t cells_dropped_high() const { return cells_dropped_high_; }
  uint64_t cells_dropped_low() const { return cells_dropped_low_; }
  int64_t bytes_sent() const { return static_cast<int64_t>(cells_sent_) * kCellSize; }
  // Fraction of wall-clock time the transmitter has been busy, in [0, 1].
  double utilization() const;
  // Cells accepted but not yet clear of the transmitter. The transmitter
  // drains deterministically (one cell per cell_time until tx_free_at_), so
  // occupancy is computed from the busy horizon instead of counted per
  // delivery event — same trajectory, no bookkeeping on the hot path.
  size_t queued_cells() const;
  size_t queue_limit() const { return queue_limit_; }
  // Cumulative time the transmitter has spent busy since construction.
  sim::DurationNs busy_time() const { return busy_time_; }

  // Cheap copyable snapshot of the link's cumulative counters plus the
  // instantaneous queue state — a monitor diffs two snapshots to get the
  // per-interval drop/throughput deltas and interval utilisation.
  struct StatsSnapshot {
    uint64_t cells_sent = 0;
    uint64_t cells_dropped_high = 0;
    uint64_t cells_dropped_low = 0;
    size_t queued_cells = 0;
    size_t queue_limit = 0;
    sim::DurationNs busy_time = 0;
  };
  StatsSnapshot Stats() const {
    return StatsSnapshot{cells_sent_,    cells_dropped_high_, cells_dropped_low_,
                         queued_cells(), queue_limit_,        busy_time_};
  }

 private:
  // Ceiling on how many cells one delivery event may defer when a stream
  // never marks end-of-frame (raw floods): bounds the added latency of an
  // interior cell to kMaxTrainCells serialisation times.
  static constexpr size_t kMaxTrainCells = 128;

  // A cell waiting in (or in flight beyond) the transmitter, tagged with the
  // instant its serialisation completes.
  struct PendingCell {
    Cell cell;
    sim::TimeNs done;
  };

  // Number of accepted cells whose serialisation completes after `now`.
  size_t QueuedAt(sim::TimeNs now) const;
  // Schedules the next delivery event: at the first undelivered
  // end-of-frame cell's completion, or the kMaxTrainCells-th undelivered
  // cell's, whichever is earlier.
  void ArmDelivery();
  void DeliverReady();

  sim::Simulator* sim_;
  std::string name_;
  // Destination-shard entry point for a boundary train shipped through
  // BoundaryChannel::PostSpan: `ctx` is the CellSink, `data` the cell span
  // copied into the channel's batch arena.
  static void DeliverBoundaryTrain(void* ctx, const void* data, size_t size);

  int id_ = -1;
  int64_t bps_;
  sim::DurationNs prop_delay_;
  sim::DurationNs cell_time_;
  size_t queue_limit_;
  CellSink* sink_ = nullptr;
  sim::BoundaryChannel* boundary_ = nullptr;

  // The transmitter is modelled by a "busy until" horizon rather than an
  // explicit queue: each accepted cell reserves the next cell_time_ slot.
  sim::TimeNs tx_free_at_ = 0;
  uint64_t cells_sent_ = 0;
  uint64_t cells_dropped_high_ = 0;
  uint64_t cells_dropped_low_ = 0;
  sim::DurationNs busy_time_ = 0;

  // The current train: accepted, undelivered cells in send order.
  // train_head_ marks the delivered prefix (compacted when it drains).
  std::vector<PendingCell> train_;
  size_t train_head_ = 0;
  bool delivery_pending_ = false;
  // Scratch the cut train is copied into, so a re-entrant SendCell from the
  // sink can grow train_ without invalidating the span being delivered. For
  // a local link with nonzero propagation it is moved into the delayed
  // delivery event instead (and rebuilt empty on the next cut).
  std::vector<Cell> burst_buf_;
};

}  // namespace pegasus::atm

#endif  // PEGASUS_SRC_ATM_LINK_H_
