#include "src/atm/link.h"

#include <algorithm>

namespace pegasus::atm {

Link::Link(sim::Simulator* sim, std::string name, int64_t bits_per_second,
           sim::DurationNs propagation_delay, size_t queue_limit)
    : sim_(sim),
      name_(std::move(name)),
      bps_(bits_per_second),
      prop_delay_(propagation_delay),
      cell_time_(sim::TransmissionTime(kCellSize, bits_per_second)),
      queue_limit_(queue_limit) {}

bool Link::SendCell(const Cell& cell) {
  const sim::TimeNs now = sim_->now();
  if (queued_ >= queue_limit_) {
    // Tail-drop: the ARRIVING cell is lost, whatever its priority bit says
    // (see the class comment); the split counters record which class lost.
    ++(cell.low_priority ? cells_dropped_low_ : cells_dropped_high_);
    return false;
  }
  const sim::TimeNs start = std::max(now, tx_free_at_);
  const sim::TimeNs done = start + cell_time_;
  tx_free_at_ = done;
  busy_time_ += cell_time_;
  ++queued_;
  ++cells_sent_;
  // The transmit slot frees at `done`; delivery happens prop_delay_ later.
  sim_->ScheduleAt(done, [this, cell]() {
    --queued_;
    if (sink_ == nullptr) {
      return;
    }
    if (prop_delay_ == 0) {
      sink_->DeliverCell(cell);
    } else {
      sim_->ScheduleAfter(prop_delay_, [this, cell]() { sink_->DeliverCell(cell); });
    }
  });
  return true;
}

double Link::utilization() const {
  const sim::TimeNs now = sim_->now();
  if (now <= 0) {
    return 0.0;
  }
  return std::min(1.0, static_cast<double>(busy_time_) / static_cast<double>(now));
}

}  // namespace pegasus::atm
