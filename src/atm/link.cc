#include "src/atm/link.h"

#include <algorithm>

namespace pegasus::atm {

Link::Link(sim::Simulator* sim, std::string name, int64_t bits_per_second,
           sim::DurationNs propagation_delay, size_t queue_limit)
    : sim_(sim),
      name_(std::move(name)),
      bps_(bits_per_second),
      prop_delay_(propagation_delay),
      cell_time_(sim::TransmissionTime(kCellSize, bits_per_second)),
      queue_limit_(queue_limit) {}

size_t Link::QueuedAt(sim::TimeNs now) const {
  if (tx_free_at_ <= now) {
    return 0;
  }
  return static_cast<size_t>((tx_free_at_ - now + cell_time_ - 1) / cell_time_);
}

size_t Link::queued_cells() const { return QueuedAt(sim_->now()); }

bool Link::SendCell(const Cell& cell) {
  const sim::TimeNs now = sim_->now();
  if (QueuedAt(now) >= queue_limit_) {
    // Tail-drop: the ARRIVING cell is lost, whatever its priority bit says
    // (see the class comment); the split counters record which class lost.
    ++(cell.low_priority ? cells_dropped_low_ : cells_dropped_high_);
    return false;
  }
  const sim::TimeNs start = std::max(now, tx_free_at_);
  const sim::TimeNs done = start + cell_time_;
  tx_free_at_ = done;
  busy_time_ += cell_time_;
  ++cells_sent_;
  train_.push_back(PendingCell{cell, done});
  // Cells appended while a delivery event is pending ride that train; the
  // event re-arms itself for whatever it finds undelivered.
  if (!delivery_pending_) {
    ArmDelivery();
  }
  return true;
}

size_t Link::SendBurst(const Cell* cells, size_t count) {
  size_t accepted = 0;
  for (size_t i = 0; i < count; ++i) {
    accepted += SendCell(cells[i]) ? 1 : 0;
  }
  return accepted;
}

void Link::ArmDelivery() {
  // The train is cut at the first end-of-frame cell so frame completion
  // instants match the per-cell path exactly; frameless streams batch up to
  // kMaxTrainCells per event.
  const size_t last = std::min(train_.size(), train_head_ + kMaxTrainCells) - 1;
  size_t target = last;
  for (size_t i = train_head_; i < last; ++i) {
    if (train_[i].cell.end_of_frame) {
      target = i;
      break;
    }
  }
  delivery_pending_ = true;
  // A boundary link computes its delivery at serialisation completion and
  // lets the cross-shard channel carry the propagation delay (the prefix
  // below shifts identically, so grouping and instants are unchanged).
  const sim::DurationNs lag = boundary_ == nullptr ? prop_delay_ : 0;
  sim_->ScheduleAt(train_[target].done + lag, [this]() { DeliverReady(); });
}

void Link::DeliverReady() {
  delivery_pending_ = false;
  const sim::TimeNs now = sim_->now();
  const sim::DurationNs lag = boundary_ == nullptr ? prop_delay_ : 0;
  size_t end = train_head_;
  while (end < train_.size() && train_[end].done + lag <= now) {
    ++end;
  }
  const size_t count = end - train_head_;
  if (count > 0) {
    burst_buf_.clear();
    burst_buf_.reserve(count);
    for (size_t i = train_head_; i < end; ++i) {
      burst_buf_.push_back(train_[i].cell);
    }
    train_head_ = end;
    if (train_head_ == train_.size()) {
      train_.clear();
      train_head_ = 0;
    } else if (train_head_ * 2 >= train_.size()) {
      // Compact once the delivered prefix outweighs the remainder: each
      // erase moves at most as many cells as were just delivered, so the
      // cost is amortised O(1) per cell and a permanently backlogged link
      // holds O(queue_limit) memory instead of growing without bound.
      train_.erase(train_.begin(), train_.begin() + static_cast<ptrdiff_t>(train_head_));
      train_head_ = 0;
    }
    if (boundary_ != nullptr) {
      // Ship the train to the sink's shard, due one propagation delay out —
      // exactly when the single-simulator path would have delivered it.
      boundary_->Post(now + prop_delay_,
                      [sink = sink_, cells = burst_buf_]() {
                        if (cells.size() == 1) {
                          sink->DeliverCell(cells[0]);
                        } else {
                          sink->DeliverBurst(cells.data(), cells.size());
                        }
                      });
    } else if (sink_ != nullptr) {
      if (count == 1) {
        sink_->DeliverCell(burst_buf_[0]);
      } else {
        sink_->DeliverBurst(burst_buf_.data(), count);
      }
    }
  }
  // Whatever is still undelivered (queued after the event was armed, or
  // enqueued re-entrantly by the sink — which then armed its own event)
  // gets the next event.
  if (train_head_ < train_.size() && !delivery_pending_) {
    ArmDelivery();
  }
}

double Link::utilization() const {
  const sim::TimeNs now = sim_->now();
  if (now <= 0) {
    return 0.0;
  }
  return std::min(1.0, static_cast<double>(busy_time_) / static_cast<double>(now));
}

}  // namespace pegasus::atm
