#include "src/atm/link.h"

#include <algorithm>
#include <type_traits>

namespace pegasus::atm {

Link::Link(sim::Simulator* sim, std::string name, int64_t bits_per_second,
           sim::DurationNs propagation_delay, size_t queue_limit)
    : sim_(sim),
      name_(std::move(name)),
      bps_(bits_per_second),
      prop_delay_(propagation_delay),
      cell_time_(sim::TransmissionTime(kCellSize, bits_per_second)),
      queue_limit_(queue_limit) {}

size_t Link::QueuedAt(sim::TimeNs now) const {
  if (tx_free_at_ <= now) {
    return 0;
  }
  return static_cast<size_t>((tx_free_at_ - now + cell_time_ - 1) / cell_time_);
}

size_t Link::queued_cells() const { return QueuedAt(sim_->now()); }

bool Link::SendCell(const Cell& cell) {
  const sim::TimeNs now = sim_->now();
  if (QueuedAt(now) >= queue_limit_) {
    // Tail-drop: the ARRIVING cell is lost, whatever its priority bit says
    // (see the class comment); the split counters record which class lost.
    ++(cell.low_priority ? cells_dropped_low_ : cells_dropped_high_);
    return false;
  }
  const sim::TimeNs start = std::max(now, tx_free_at_);
  const sim::TimeNs done = start + cell_time_;
  tx_free_at_ = done;
  busy_time_ += cell_time_;
  ++cells_sent_;
  train_.push_back(PendingCell{cell, done});
  // Cells appended while a delivery event is pending ride that train; the
  // event re-arms itself for whatever it finds undelivered.
  if (!delivery_pending_) {
    ArmDelivery();
  }
  return true;
}

size_t Link::SendBurst(const Cell* cells, size_t count) {
  size_t accepted = 0;
  for (size_t i = 0; i < count; ++i) {
    accepted += SendCell(cells[i]) ? 1 : 0;
  }
  return accepted;
}

void Link::ArmDelivery() {
  // The train is cut at the first end-of-frame cell so frame completion
  // instants match the per-cell path exactly; frameless streams batch up to
  // kMaxTrainCells per event.
  const size_t last = std::min(train_.size(), train_head_ + kMaxTrainCells) - 1;
  size_t target = last;
  for (size_t i = train_head_; i < last; ++i) {
    if (train_[i].cell.end_of_frame) {
      target = i;
      break;
    }
  }
  delivery_pending_ = true;
  // The event fires at serialisation completion for EVERY link — boundary or
  // not. Grouping decisions must only depend on what the transmitter has
  // actually serialised, never on cells that happen to be sent during the
  // propagation window; otherwise a boundary link (whose event cannot wait
  // out the propagation delay without forfeiting its lookahead) would cut
  // trains differently from the single-simulator path. The wire itself is
  // pure delay, applied after the cut in DeliverReady.
  sim_->ScheduleAt(train_[target].done, [this]() { DeliverReady(); });
}

void Link::DeliverBoundaryTrain(void* ctx, const void* data, size_t size) {
  static_assert(std::is_trivially_copyable<Cell>::value,
                "boundary trains cross the shard mailbox as raw bytes");
  auto* sink = static_cast<CellSink*>(ctx);
  const Cell* cells = static_cast<const Cell*>(data);
  const size_t count = size / sizeof(Cell);
  if (count == 1) {
    sink->DeliverCell(cells[0]);
  } else {
    sink->DeliverBurst(cells, count);
  }
}

void Link::DeliverReady() {
  delivery_pending_ = false;
  const sim::TimeNs now = sim_->now();
  size_t end = train_head_;
  while (end < train_.size() && train_[end].done <= now) {
    ++end;
  }
  const size_t count = end - train_head_;
  if (count > 0) {
    burst_buf_.clear();
    burst_buf_.reserve(count);
    for (size_t i = train_head_; i < end; ++i) {
      burst_buf_.push_back(train_[i].cell);
    }
    train_head_ = end;
    if (train_head_ == train_.size()) {
      train_.clear();
      train_head_ = 0;
    } else if (train_head_ * 2 >= train_.size()) {
      // Compact once the delivered prefix outweighs the remainder: each
      // erase moves at most as many cells as were just delivered, so the
      // cost is amortised O(1) per cell and a permanently backlogged link
      // holds O(queue_limit) memory instead of growing without bound.
      train_.erase(train_.begin(), train_.begin() + static_cast<ptrdiff_t>(train_head_));
      train_head_ = 0;
    }
    if (boundary_ != nullptr) {
      // Ship the train to the sink's shard, due one propagation delay out —
      // exactly when the local path below would have delivered it. The cells
      // are memcpy'd into the channel's window batch (one mailbox hand-off
      // per channel per window), not captured per-train.
      boundary_->PostSpan(now + prop_delay_, burst_buf_.data(), count * sizeof(Cell),
                          &Link::DeliverBoundaryTrain, sink_);
    } else if (sink_ != nullptr) {
      if (prop_delay_ == 0) {
        if (count == 1) {
          sink_->DeliverCell(burst_buf_[0]);
        } else {
          sink_->DeliverBurst(burst_buf_.data(), count);
        }
      } else {
        // The cut is made at serialisation completion; the wire adds pure
        // delay. The train is moved into the event so later cuts (which
        // rebuild burst_buf_) cannot clobber an in-flight delivery.
        sim_->ScheduleAt(now + prop_delay_,
                         [sink = sink_, flight = std::move(burst_buf_)]() {
                           if (flight.size() == 1) {
                             sink->DeliverCell(flight[0]);
                           } else {
                             sink->DeliverBurst(flight.data(), flight.size());
                           }
                         });
      }
    }
  }
  // Whatever is still undelivered (queued after the event was armed, or
  // enqueued re-entrantly by the sink — which then armed its own event)
  // gets the next event.
  if (train_head_ < train_.size() && !delivery_pending_) {
    ArmDelivery();
  }
}

double Link::utilization() const {
  const sim::TimeNs now = sim_->now();
  if (now <= 0) {
    return 0.0;
  }
  return std::min(1.0, static_cast<double>(busy_time_) / static_cast<double>(now));
}

}  // namespace pegasus::atm
