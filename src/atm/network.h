// Network assembly and signalling.
//
// A Network owns switches, links and endpoints, and implements the control
// plane the paper calls "the normal mechanism of ATM signalling" (§2.2):
// virtual circuits are established hop-by-hop with per-link admission
// control, and the routing-table updates are exactly the operations a
// device-managing workstation performs on its local switch.
#ifndef PEGASUS_SRC_ATM_NETWORK_H_
#define PEGASUS_SRC_ATM_NETWORK_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/atm/cell.h"
#include "src/atm/endpoint.h"
#include "src/atm/link.h"
#include "src/atm/switch.h"
#include "src/sim/event_queue.h"

namespace pegasus::atm {

// Quality-of-service request for a virtual circuit. `peak_bps == 0` means
// best-effort (no reservation, never rejected by admission control).
struct QosSpec {
  int64_t peak_bps = 0;
};

// Identifier of an established VC, valid until CloseVc.
using VcId = int64_t;

// Where a VC enters and leaves the network, as seen by the two endpoints.
struct VcDescriptor {
  VcId id = -1;
  Endpoint* source = nullptr;
  Endpoint* destination = nullptr;
  // VCI the source must stamp on outgoing cells.
  Vci source_vci = kVciUnassigned;
  // VCI the destination will observe on delivered cells.
  Vci destination_vci = kVciUnassigned;
  QosSpec qos;
  int hop_count = 0;
};

class Network {
 public:
  explicit Network(sim::Simulator* sim);
  ~Network();

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  sim::Simulator* simulator() const { return sim_; }

  // --- Topology construction ---
  Switch* AddSwitch(const std::string& name, int num_ports,
                    sim::DurationNs fabric_delay = sim::Microseconds(1));
  // Creates an endpoint attached to `port` of `sw` by a full-duplex link pair.
  Endpoint* AddEndpoint(const std::string& name, Switch* sw, int port, int64_t link_bps,
                        sim::DurationNs propagation = sim::Microseconds(1));
  // Wires two switches together with a full-duplex link pair.
  void ConnectSwitches(Switch* a, int port_a, Switch* b, int port_b, int64_t link_bps,
                       sim::DurationNs propagation = sim::Microseconds(5));

  // --- Signalling ---
  // Establishes a unidirectional VC from `src` to `dst`. Returns nullopt when
  // no path exists or admission control rejects the reservation.
  std::optional<VcDescriptor> OpenVc(Endpoint* src, Endpoint* dst, QosSpec qos = {});
  // Establishes a data VC plus a reverse control VC, as every Pegasus device
  // does (§2.2). first = forward/data, second = reverse/control.
  std::optional<std::pair<VcDescriptor, VcDescriptor>> OpenDuplex(Endpoint* src, Endpoint* dst,
                                                                  QosSpec data_qos = {},
                                                                  QosSpec control_qos = {});
  bool CloseVc(VcId id);
  const VcDescriptor* GetVc(VcId id) const;

  // --- congestion signalling ---
  // Observer for congestion on any link the VC traverses. `severity` is the
  // fraction of the link's deliverable capacity that is gone, in (0, 1]:
  // reservations riding the link can only count on (1 - severity) of their
  // rate until the condition clears (severity 0 announces the clear for
  // that link). The link is handed through so observers spanning several
  // links can track each one's condition independently.
  using CongestionCallback =
      std::function<void(VcId vc, const Link* link, double severity)>;
  // At most one handler per VC; replaced on re-set, dropped on CloseVc.
  void SetCongestionHandler(VcId id, CongestionCallback callback);
  void ClearCongestionHandler(VcId id);
  // Announces congestion on `link` (an operator/driver event: a flapping
  // port, a policer kicking in). Every open VC traversing the link that has
  // a handler is notified. Returns the number of VCs notified.
  int SignalCongestion(const Link* link, double severity);
  // Re-negotiates the reservation of an open VC in place — the routes stay,
  // only the admission-control books change. An increase is checked against
  // the headroom of every traversed link; on failure the old reservation
  // stays and an admission rejection is counted.
  bool UpdateVcQos(VcId id, QosSpec qos);

  // Reserved bandwidth currently admitted on `link`, in bits per second.
  int64_t ReservedBps(const Link* link) const;
  // Alias of ReservedBps under the name admission-control clients use.
  int64_t ReservedBandwidth(const Link* link) const { return ReservedBps(link); }
  // Unreserved capacity remaining on `link`, in bits per second.
  int64_t AvailableBandwidth(const Link* link) const;
  // Smallest unreserved capacity over the links a VC from `src` to `dst`
  // would traverse — the largest reservation the path can still admit.
  // nullopt when either endpoint is unattached or no path exists.
  std::optional<int64_t> PathAvailableBps(const Endpoint* src, const Endpoint* dst) const;
  // The ordered links a VC from `src` to `dst` would traverse. Multi-leg
  // admission does joint per-link accounting over these sets, because two
  // legs of one pipeline may share a directed link. nullopt when either
  // endpoint is unattached or no path exists.
  std::optional<std::vector<Link*>> PathLinks(const Endpoint* src, const Endpoint* dst) const;
  // The links an established VC traverses (its reservation applies to each),
  // or nullptr for an unknown id. Valid until the VC is closed.
  const std::vector<Link*>* VcLinks(VcId id) const;
  // One-way delivery-time floor for a cell along src -> dst: propagation
  // plus one cell serialisation per traversed link (queueing excluded).
  std::optional<sim::DurationNs> PathLatencyNs(const Endpoint* src, const Endpoint* dst) const;

  int64_t open_vc_count() const { return static_cast<int64_t>(vcs_.size()); }
  int64_t admission_rejections() const { return admission_rejections_; }

  const std::vector<std::unique_ptr<Link>>& links() const { return links_; }

  // A link's raw counters together with the admission-control view of it —
  // what a monitor deriving congestion severity needs in one read.
  struct LinkStats {
    Link::StatsSnapshot snapshot;
    int64_t capacity_bps = 0;
    int64_t reserved_bps = 0;
  };
  LinkStats GetLinkStats(const Link* link) const {
    return LinkStats{link->Stats(), link->bits_per_second(), ReservedBps(link)};
  }

 private:
  struct HopRecord {
    Switch* sw;
    int in_port;
    Vci in_vci;
  };
  struct VcState {
    VcDescriptor desc;
    std::vector<HopRecord> hops;
    // Every link the VC traverses, in order; reservation bookkeeping applies
    // desc.qos.peak_bps to each (nothing when best-effort).
    std::vector<Link*> hop_links;
  };
  // Either a switch-to-switch edge or an endpoint attachment.
  struct Attachment {
    Switch* sw = nullptr;
    int port = -1;
    Link* to_switch = nullptr;    // carries cells toward the switch
    Link* from_switch = nullptr;  // carries cells away from the switch
  };

  // Breadth-first path of switches from `from` to `to` (inclusive).
  std::optional<std::vector<Switch*>> FindPath(Switch* from, Switch* to) const;
  // The ordered links a VC from `src` to `dst` would traverse.
  std::optional<std::vector<Link*>> HopLinks(const Endpoint* src, const Endpoint* dst) const;
  // The (out_port on `a`, link a->b) wiring between two adjacent switches.
  std::optional<std::pair<int, Link*>> EdgeBetween(Switch* a, Switch* b) const;

  sim::Simulator* sim_;
  std::vector<std::unique_ptr<Switch>> switches_;
  std::vector<std::unique_ptr<Link>> links_;
  std::vector<std::unique_ptr<Endpoint>> endpoints_;
  std::map<const Endpoint*, Attachment> endpoint_attachments_;
  // adjacency: switch -> (neighbour switch -> (out_port, link))
  std::map<Switch*, std::map<Switch*, std::pair<int, Link*>>> edges_;
  std::map<VcId, VcState> vcs_;
  std::map<VcId, CongestionCallback> congestion_handlers_;
  std::map<const Link*, int64_t> reserved_bps_;
  VcId next_vc_id_ = 1;
  int64_t admission_rejections_ = 0;
};

}  // namespace pegasus::atm

#endif  // PEGASUS_SRC_ATM_NETWORK_H_
