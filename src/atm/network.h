// Network assembly and signalling.
//
// A Network owns switches, links and endpoints, and implements the control
// plane the paper calls "the normal mechanism of ATM signalling" (§2.2):
// virtual circuits are established hop-by-hop with per-link admission
// control, and the routing-table updates are exactly the operations a
// device-managing workstation performs on its local switch.
//
// Admission-plane fast path: path resolution is cached per (src switch,
// dst switch) pair and invalidated by a topology epoch, the reservation
// ledger is a flat vector indexed by dense link id, and a per-link -> VC
// index makes congestion fan-out O(affected VCs). Pathfinding expands
// neighbours in deterministic switch-id (insertion) order, so equal-length
// paths tie-break identically across runs — cached routes inherit that
// determinism (the cache only memoises what the deterministic BFS returns).
#ifndef PEGASUS_SRC_ATM_NETWORK_H_
#define PEGASUS_SRC_ATM_NETWORK_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <unordered_map>
#include <vector>

#include "src/atm/cell.h"
#include "src/atm/endpoint.h"
#include "src/atm/link.h"
#include "src/atm/switch.h"
#include "src/sim/event_queue.h"
#include "src/sim/shard.h"

namespace pegasus::atm {

// Quality-of-service request for a virtual circuit. `peak_bps == 0` means
// best-effort (no reservation, never rejected by admission control).
struct QosSpec {
  int64_t peak_bps = 0;
};

// Identifier of an established VC, valid until CloseVc.
using VcId = int64_t;

// Where a VC enters and leaves the network, as seen by the two endpoints.
struct VcDescriptor {
  VcId id = -1;
  Endpoint* source = nullptr;
  Endpoint* destination = nullptr;
  // VCI the source must stamp on outgoing cells.
  Vci source_vci = kVciUnassigned;
  // VCI the destination will observe on delivered cells.
  Vci destination_vci = kVciUnassigned;
  QosSpec qos;
  int hop_count = 0;
};

// A resolved src->dst route: the ordered links a VC would traverse plus the
// one-way latency floor, stamped with the topology epoch it was computed
// under. One ResolveRoute serves a whole admission pass (bandwidth check,
// latency check, VC install) instead of three BFS walks.
struct ResolvedRoute {
  std::vector<Link*> links;
  sim::DurationNs latency_ns = 0;
  uint64_t epoch = 0;
};

class Network {
 public:
  explicit Network(sim::Simulator* sim);
  ~Network();

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  sim::Simulator* simulator() const { return sim_; }

  // --- Region sharding (src/sim/shard.h) ---
  // Opts the network into sharded construction. Must be called before any
  // sharded topology is built. Thereafter SetBuildShard directs where new
  // switches live, endpoints are always co-located with their attachment
  // switch, and a ConnectSwitches spanning two shards automatically turns
  // both directed links into boundary channels with the link propagation
  // delay as lookahead. With no shard group (the default) everything lives
  // on the control simulator and behaviour is exactly the classic one.
  void EnableSharding(sim::ShardGroup* group) { shard_group_ = group; }
  sim::ShardGroup* shard_group() const { return shard_group_; }
  // Directs subsequent AddSwitch calls onto `shard` (nullptr = the control
  // simulator). Signalling, admission and route caches stay centralised on
  // the control simulator regardless.
  void SetBuildShard(sim::Simulator* shard) { build_sim_ = shard; }
  sim::Simulator* build_simulator() const { return build_sim_ != nullptr ? build_sim_ : sim_; }

  // --- Topology construction ---
  Switch* AddSwitch(const std::string& name, int num_ports,
                    sim::DurationNs fabric_delay = sim::Microseconds(1));
  // Creates an endpoint attached to `port` of `sw` by a full-duplex link pair.
  Endpoint* AddEndpoint(const std::string& name, Switch* sw, int port, int64_t link_bps,
                        sim::DurationNs propagation = sim::Microseconds(1));
  // Wires two switches together with a full-duplex link pair.
  void ConnectSwitches(Switch* a, int port_a, Switch* b, int port_b, int64_t link_bps,
                       sim::DurationNs propagation = sim::Microseconds(5));

  // Monotone counter bumped by every topology mutation; cached routes carry
  // the epoch they were resolved under and are dropped on mismatch.
  uint64_t topology_epoch() const { return topology_epoch_; }

  // --- Signalling ---
  // Establishes a unidirectional VC from `src` to `dst`. Returns nullopt when
  // no path exists or admission control rejects the reservation.
  std::optional<VcDescriptor> OpenVc(Endpoint* src, Endpoint* dst, QosSpec qos = {});
  // As above, but reuses a route already resolved by ResolveRoute for this
  // src/dst pair — the admission caller checks bandwidth and latency against
  // the same resolve that installs the VC. A stale epoch falls back to a
  // fresh resolve (semantics identical, just slower).
  std::optional<VcDescriptor> OpenVc(Endpoint* src, Endpoint* dst, QosSpec qos,
                                     const ResolvedRoute& route);
  // Establishes a data VC plus a reverse control VC, as every Pegasus device
  // does (§2.2). first = forward/data, second = reverse/control.
  std::optional<std::pair<VcDescriptor, VcDescriptor>> OpenDuplex(Endpoint* src, Endpoint* dst,
                                                                  QosSpec data_qos = {},
                                                                  QosSpec control_qos = {});
  bool CloseVc(VcId id);
  const VcDescriptor* GetVc(VcId id) const;

  // --- point-to-multipoint signalling ---
  // Establishes a one-to-many VC: a shared delivery tree from `src` to every
  // sink, built as the union of the deterministic cached routes (BFS from one
  // source always assigns the same parent per switch, so the union IS a tree
  // and insertion-id tie-breaks carry over). Cells the source stamps with
  // `source_vci` are replicated once per tree BRANCH at each switch; the
  // reservation is charged once per tree edge, however many leaves share it.
  // All-or-nothing: any unattached/unreachable/duplicate sink rejects the
  // whole open. The returned descriptor's destination/destination_vci are the
  // FIRST sink's (use McastLeafVci for the others).
  std::optional<VcDescriptor> OpenMulticastVc(Endpoint* src, const std::vector<Endpoint*>& sinks,
                                              QosSpec qos = {});
  // Grafts a further leaf onto an open tree: admission is checked on (and the
  // reservation charged for) only the links the graft newly adds. Returns the
  // leaf's incoming VCI, or nullopt on reject (unknown id, duplicate leaf,
  // no path, or insufficient bandwidth on the graft path).
  std::optional<Vci> AddLeaf(VcId id, Endpoint* leaf);
  // Prunes a leaf: branches no other leaf depends on are removed bottom-up,
  // their reservations released. Refuses to remove the LAST leaf — close the
  // tree with CloseVc instead (a leafless tree would strand the source VCI).
  bool RemoveLeaf(VcId id, Endpoint* leaf);
  bool IsMulticastVc(VcId id) const { return mcast_.count(id) > 0; }
  int McastLeafCount(VcId id) const;
  // The incoming VCI `leaf` observes on an open tree, nullopt when the
  // endpoint is not currently a leaf.
  std::optional<Vci> McastLeafVci(VcId id, const Endpoint* leaf) const;

  // --- congestion signalling ---
  // Observer for congestion on any link the VC traverses. `severity` is the
  // fraction of the link's deliverable capacity that is gone, in (0, 1]:
  // reservations riding the link can only count on (1 - severity) of their
  // rate until the condition clears (severity 0 announces the clear for
  // that link). The link is handed through so observers spanning several
  // links can track each one's condition independently.
  using CongestionCallback =
      std::function<void(VcId vc, const Link* link, double severity)>;
  // At most one handler per VC; replaced on re-set, dropped on CloseVc.
  void SetCongestionHandler(VcId id, CongestionCallback callback);
  void ClearCongestionHandler(VcId id);
  // Announces congestion on `link` (an operator/driver event: a flapping
  // port, a policer kicking in). Every open VC traversing the link that has
  // a handler is notified. Returns the number of VCs notified.
  int SignalCongestion(const Link* link, double severity);
  // Re-negotiates the reservation of an open VC in place — the routes stay,
  // only the admission-control books change. An increase is checked against
  // the headroom of every traversed link; on failure the old reservation
  // stays and an admission rejection is counted.
  bool UpdateVcQos(VcId id, QosSpec qos);

  // Reserved bandwidth currently admitted on `link`, in bits per second.
  int64_t ReservedBps(const Link* link) const {
    const int id = link->id();
    return (id >= 0 && static_cast<size_t>(id) < reserved_bps_.size()) ? reserved_bps_[id] : 0;
  }
  // Alias of ReservedBps under the name admission-control clients use.
  int64_t ReservedBandwidth(const Link* link) const { return ReservedBps(link); }
  // Unreserved capacity remaining on `link`, in bits per second.
  int64_t AvailableBandwidth(const Link* link) const {
    return link->bits_per_second() - ReservedBps(link);
  }
  // Resolves the route a VC from `src` to `dst` would take: ordered links
  // plus the one-way latency floor (propagation + one cell serialisation per
  // link, queueing excluded), in one cached path lookup. nullopt when either
  // endpoint is unattached or no path exists.
  std::optional<ResolvedRoute> ResolveRoute(const Endpoint* src, const Endpoint* dst) const;
  // Smallest unreserved capacity over the links a VC from `src` to `dst`
  // would traverse — the largest reservation the path can still admit.
  // nullopt when either endpoint is unattached or no path exists.
  std::optional<int64_t> PathAvailableBps(const Endpoint* src, const Endpoint* dst) const;
  // The ordered links a VC from `src` to `dst` would traverse. Multi-leg
  // admission does joint per-link accounting over these sets, because two
  // legs of one pipeline may share a directed link. nullopt when either
  // endpoint is unattached or no path exists.
  std::optional<std::vector<Link*>> PathLinks(const Endpoint* src, const Endpoint* dst) const;
  // The links an established VC traverses (its reservation applies to each),
  // or nullptr for an unknown id. Valid until the VC is closed.
  const std::vector<Link*>* VcLinks(VcId id) const;
  // One-way delivery-time floor for a cell along src -> dst: propagation
  // plus one cell serialisation per traversed link (queueing excluded).
  std::optional<sim::DurationNs> PathLatencyNs(const Endpoint* src, const Endpoint* dst) const;

  int64_t open_vc_count() const { return static_cast<int64_t>(vcs_.size()); }
  // Admission refusals, split by cause: a reservation that did not fit
  // (bandwidth) vs an unattached endpoint or unreachable destination
  // (no_path). admission_rejections() keeps the historical all-causes total.
  int64_t admission_rejections() const { return rejections_bandwidth_ + rejections_no_path_; }
  int64_t admission_rejections_bandwidth() const { return rejections_bandwidth_; }
  int64_t admission_rejections_no_path() const { return rejections_no_path_; }

  const std::vector<std::unique_ptr<Link>>& links() const { return links_; }

  // A link's raw counters together with the admission-control view of it —
  // what a monitor deriving congestion severity needs in one read.
  struct LinkStats {
    Link::StatsSnapshot snapshot;
    int64_t capacity_bps = 0;
    int64_t reserved_bps = 0;
  };
  LinkStats GetLinkStats(const Link* link) const {
    return LinkStats{link->Stats(), link->bits_per_second(), ReservedBps(link)};
  }

  // The ids of open VCs traversing `link`, ascending (open order). Congestion
  // fan-out and monitors iterate this instead of scanning every VC's hops.
  const std::vector<VcId>& VcsOnLink(const Link* link) const;

 private:
  struct HopRecord {
    Switch* sw;
    int in_port;
    Vci in_vci;
  };
  struct VcState {
    VcDescriptor desc;
    std::vector<HopRecord> hops;
    // Every link the VC traverses, in order; reservation bookkeeping applies
    // desc.qos.peak_bps to each (nothing when best-effort). For a multicast
    // tree this is the deduped set of tree edges — each charged ONCE — so
    // UpdateVcQos and congestion fan-out work on trees unchanged.
    std::vector<Link*> hop_links;
  };
  // One tree edge out of a switch: the branch of that switch's route entry
  // feeding either the next tree switch or a leaf endpoint.
  struct McastBranch {
    Vci out_vci = kVciUnassigned;
    Link* link = nullptr;
    int refs = 0;             // leaves downstream of this branch
    int next_switch_id = -1;  // -1 when the branch feeds a leaf endpoint
  };
  struct McastLeafRec {
    Endpoint* leaf = nullptr;
    Vci leaf_vci = kVciUnassigned;
    // The tree edges this leaf rides, root -> leaf; RemoveLeaf walks them in
    // reverse decrementing refs, pruning each branch that hits zero.
    std::vector<std::pair<int, int>> branch_keys;
  };
  // Control-plane view of one delivery tree, keyed alongside its VcState.
  // Entries/branches live in the switches' route tables; this mirrors enough
  // to graft and prune without re-deriving the tree from route-table scans.
  struct McastState {
    Endpoint* source = nullptr;
    Switch* root = nullptr;
    // switch id -> the tree's (in_port, in_vci) entry at that switch. Every
    // tree switch has exactly one incoming edge (BFS-union property).
    std::map<int, std::pair<int, Vci>> node_in;
    // (switch id, out_port) -> branch. Distinct out ports by construction.
    std::map<std::pair<int, int>, McastBranch> branches;
    std::vector<McastLeafRec> leaves;  // graft order (deterministic)
  };
  // Either a switch-to-switch edge or an endpoint attachment.
  struct Attachment {
    Switch* sw = nullptr;
    int port = -1;
    Link* to_switch = nullptr;    // carries cells toward the switch
    Link* from_switch = nullptr;  // carries cells away from the switch
  };
  // One directed switch-to-switch wire, as seen from its source switch.
  struct Edge {
    int to_id = -1;
    Switch* to = nullptr;
    int out_port = -1;
    Link* link = nullptr;
  };
  // One inter-switch hop of a cached path: the wire out of the current
  // switch plus the input port it lands on — everything VC installation
  // needs without re-querying the adjacency.
  struct CachedHop {
    Switch* next = nullptr;
    int out_port = -1;        // on the current switch
    Link* link = nullptr;     // current -> next
    int next_in_port = -1;    // input port on `next` (the reverse wire's port)
  };
  struct CachedPath {
    uint64_t epoch = 0;
    bool reachable = false;
    Switch* first = nullptr;
    std::vector<CachedHop> hops;
    // Sum of propagation + cell serialisation over the hop links (the
    // endpoint attachment links are added per resolve).
    sim::DurationNs links_latency = 0;
  };

  // Cached deterministic-BFS path between two switches; recomputed (and the
  // entry overwritten, including negative "unreachable" results) when the
  // stored epoch is stale. Never returns nullptr; check ->reachable.
  const CachedPath* ResolvePath(Switch* from, Switch* to) const;
  // Runs the BFS and fills `out` (epoch + reachability + hops + latency).
  void ComputePath(Switch* from, Switch* to, CachedPath* out) const;
  // The directed edge from `a` to `b`, or nullptr when not adjacent.
  const Edge* FindEdge(const Switch* a, const Switch* b) const;
  // Registers a freshly created link: assigns its dense id and grows the
  // flat ledgers.
  Link* RegisterLink(std::unique_ptr<Link> link);
  // Shared tail of both OpenVc flavours: admission over `hop_links`, then
  // route installation along the cached path.
  std::optional<VcDescriptor> OpenVcAlongPath(Endpoint* src, Endpoint* dst, QosSpec qos,
                                              const Attachment& src_at, const Attachment& dst_at,
                                              const CachedPath& path,
                                              std::vector<Link*> hop_links);
  // Dry-runs grafting `leaf` onto tree `m` extended by the not-yet-committed
  // branches/nodes in `planned_*` (accumulated across the sinks of one open):
  // appends the links the graft would newly add to `new_links` and extends
  // the planned sets. False when the leaf is unattached, unreachable, its
  // port already carries a branch, or the fresh path would give an existing
  // tree switch a second incoming edge (only possible after a topology
  // change mid-tree-life).
  bool PlanGraft(const McastState& m, Endpoint* leaf,
                 std::set<std::pair<int, int>>* planned_branches, std::set<int>* planned_nodes,
                 std::vector<Link*>* new_links) const;
  // Installs the graft a successful PlanGraft described: allocates VCIs,
  // adds route branches, charges the reservation on each NEW tree edge and
  // bumps branch refcounts along the whole path. Must not fail.
  void CommitGraft(VcState& state, McastState& m, Endpoint* leaf);
  // Books a new tree edge: reservation, per-link VC index (sorted insert —
  // a graft can add an old id after younger VCs reached the link), hop_links.
  void ChargeTreeLink(VcState& state, Link* link);
  void UnchargeTreeLink(VcState& state, Link* link);

  // Wires `link` as a shard-boundary channel when its two sides live on
  // different shards (no-op otherwise).
  void MaybeMakeBoundary(Link* link, sim::Simulator* src, sim::Simulator* dst);

  sim::Simulator* sim_;
  sim::ShardGroup* shard_group_ = nullptr;
  sim::Simulator* build_sim_ = nullptr;
  std::vector<std::unique_ptr<Switch>> switches_;
  std::vector<std::unique_ptr<Link>> links_;
  std::vector<std::unique_ptr<Endpoint>> endpoints_;
  std::map<const Endpoint*, Attachment> endpoint_attachments_;
  // Adjacency indexed by switch id; each row sorted by neighbour id so BFS
  // expansion order is the insertion order of switches, not heap addresses.
  std::vector<std::vector<Edge>> adjacency_;
  // (src switch id << 32 | dst switch id) -> cached path.
  mutable std::unordered_map<uint64_t, CachedPath> route_cache_;
  uint64_t topology_epoch_ = 0;
  std::map<VcId, VcState> vcs_;
  // Tree bookkeeping for multicast VCs, same key space as vcs_.
  std::map<VcId, McastState> mcast_;
  std::map<VcId, CongestionCallback> congestion_handlers_;
  // Reserved bits/s per link, indexed by link id — AvailableBandwidth on the
  // admission walk is a load, not a map lookup.
  std::vector<int64_t> reserved_bps_;
  // Open VCs traversing each link, indexed by link id, ascending VcId (ids
  // are monotone and never reused, so append keeps the order sorted).
  std::vector<std::vector<VcId>> link_vcs_;
  VcId next_vc_id_ = 1;
  int64_t rejections_bandwidth_ = 0;
  int64_t rejections_no_path_ = 0;
};

}  // namespace pegasus::atm

#endif  // PEGASUS_SRC_ATM_NETWORK_H_
