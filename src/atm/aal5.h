// AAL5 segmentation and reassembly.
//
// The Pegasus devices speak AAL5 frames ("using AAL5 allows interaction with
// standard AAL5 implementations and offers protection against rendering or
// decompressing faulty tiles", §2.1). A CS-PDU is the service data unit plus
// zero padding and an 8-octet trailer (UU, CPI, 16-bit length, CRC-32),
// padded so the whole PDU is a multiple of 48 octets; the last cell of a PDU
// is flagged in the cell header's payload-type indicator.
#ifndef PEGASUS_SRC_ATM_AAL5_H_
#define PEGASUS_SRC_ATM_AAL5_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/atm/cell.h"

namespace pegasus::atm {

// Maximum SDU length representable in the AAL5 trailer's 16-bit length field.
inline constexpr size_t kAal5MaxSduSize = 65535;

// Splits `sdu` into cells on virtual circuit `vci`. Every returned cell except
// the last has end_of_frame == false. Returns an empty vector if the SDU
// exceeds kAal5MaxSduSize.
//
// `created_at` stamps each cell's measurement timestamp; `first_seq` numbers
// the cells sequentially and the caller should advance its counter by the
// number of returned cells.
std::vector<Cell> Aal5Segment(Vci vci, const std::vector<uint8_t>& sdu,
                              sim::TimeNs created_at = 0, uint64_t first_seq = 0);

// Segmentation without the intermediate CS-PDU: cells are appended straight
// onto `out` (an outgoing train buffer), payloads are filled in place and the
// trailer CRC is computed incrementally over the cell payloads — no PDU
// materialisation, no second memcpy per cell. Appends nothing when the SDU
// exceeds kAal5MaxSduSize. Returns the number of cells appended.
size_t Aal5SegmentInto(Vci vci, const uint8_t* sdu, size_t sdu_len, sim::TimeNs created_at,
                       uint64_t first_seq, std::vector<Cell>* out);

// Per-virtual-circuit reassembler. Feed cells in arrival order; when the
// end-of-frame cell arrives, the CS-PDU trailer is validated (length + CRC)
// and the SDU is returned. Corrupt or over-long PDUs are dropped and counted.
class Aal5Reassembler {
 public:
  // Pushes one cell. Returns the completed SDU if this cell finished a valid
  // CS-PDU, std::nullopt otherwise.
  std::optional<std::vector<uint8_t>> Push(const Cell& cell);

  // Bulk-appends the payloads of `count` cells, none of which may have
  // end_of_frame set (the caller splits delivered trains at frame
  // boundaries): one buffer resize per span and a tight copy loop instead of
  // a per-cell Push with its capacity checks and optional return. The
  // lost-end-of-frame resynchronisation fires at exactly the cell it would
  // on the per-cell path, with the same length_errors accounting.
  void IngestSpan(const Cell* cells, size_t count);

  uint64_t frames_ok() const { return frames_ok_; }
  uint64_t crc_errors() const { return crc_errors_; }
  uint64_t length_errors() const { return length_errors_; }

 private:
  std::vector<uint8_t> buffer_;
  uint64_t frames_ok_ = 0;
  uint64_t crc_errors_ = 0;
  uint64_t length_errors_ = 0;
};

}  // namespace pegasus::atm

#endif  // PEGASUS_SRC_ATM_AAL5_H_
