#include "src/atm/network.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace pegasus::atm {

Network::Network(sim::Simulator* sim) : sim_(sim) {}

Network::~Network() = default;

void Network::MaybeMakeBoundary(Link* link, sim::Simulator* src, sim::Simulator* dst) {
  if (src == dst) {
    return;
  }
  // Two sides on different simulators only happens under sharded
  // construction; anything else is a wiring bug.
  assert(shard_group_ != nullptr);
  link->SetBoundary(shard_group_->RegisterBoundary(src, dst, link->propagation_delay()));
}

Switch* Network::AddSwitch(const std::string& name, int num_ports, sim::DurationNs fabric_delay) {
  switches_.push_back(std::make_unique<Switch>(build_simulator(), name, num_ports, fabric_delay));
  Switch* sw = switches_.back().get();
  sw->set_id(static_cast<int>(switches_.size()) - 1);
  adjacency_.emplace_back();
  ++topology_epoch_;
  return sw;
}

Link* Network::RegisterLink(std::unique_ptr<Link> link) {
  link->set_id(static_cast<int>(links_.size()));
  links_.push_back(std::move(link));
  reserved_bps_.push_back(0);
  link_vcs_.emplace_back();
  return links_.back().get();
}

Endpoint* Network::AddEndpoint(const std::string& name, Switch* sw, int port, int64_t link_bps,
                               sim::DurationNs propagation) {
  // Endpoints are co-located with their attachment switch: a host NIC, a
  // device or a storage server always lives on the shard owning its local
  // switch, so the attachment link pair is never a shard boundary.
  sim::Simulator* shard = sw->simulator();
  endpoints_.push_back(std::make_unique<Endpoint>(shard, name));
  Endpoint* ep = endpoints_.back().get();

  Link* up = RegisterLink(
      std::make_unique<Link>(shard, name + "->" + sw->name(), link_bps, propagation));
  Link* down = RegisterLink(
      std::make_unique<Link>(shard, sw->name() + "->" + name, link_bps, propagation));

  up->set_sink(sw->input(port));
  down->set_sink(ep);
  ep->AttachUplink(up);
  ep->AttachSwitch(sw, port);
  sw->AttachOutput(port, down);

  endpoint_attachments_[ep] = Attachment{sw, port, up, down};
  ++topology_epoch_;
  return ep;
}

void Network::ConnectSwitches(Switch* a, int port_a, Switch* b, int port_b, int64_t link_bps,
                              sim::DurationNs propagation) {
  // Each directed link serialises on its SOURCE switch's shard; when the
  // two switches live on different shards the pair becomes a boundary
  // channel with the propagation delay as its lookahead.
  Link* ab = RegisterLink(
      std::make_unique<Link>(a->simulator(), a->name() + "->" + b->name(), link_bps, propagation));
  Link* ba = RegisterLink(
      std::make_unique<Link>(b->simulator(), b->name() + "->" + a->name(), link_bps, propagation));

  ab->set_sink(b->input(port_b));
  ba->set_sink(a->input(port_a));
  MaybeMakeBoundary(ab, a->simulator(), b->simulator());
  MaybeMakeBoundary(ba, b->simulator(), a->simulator());
  a->AttachOutput(port_a, ab);
  b->AttachOutput(port_b, ba);

  auto insert_edge = [this](Switch* s, Switch* t, int out_port, Link* l) {
    auto& row = adjacency_[static_cast<size_t>(s->id())];
    const Edge edge{t->id(), t, out_port, l};
    auto it = std::lower_bound(row.begin(), row.end(), edge.to_id,
                               [](const Edge& e, int id) { return e.to_id < id; });
    if (it != row.end() && it->to_id == edge.to_id) {
      *it = edge;  // re-wiring two already-adjacent switches replaces the edge
    } else {
      row.insert(it, edge);
    }
  };
  insert_edge(a, b, port_a, ab);
  insert_edge(b, a, port_b, ba);
  ++topology_epoch_;
}

const Network::Edge* Network::FindEdge(const Switch* a, const Switch* b) const {
  const int a_id = a->id();
  if (a_id < 0 || static_cast<size_t>(a_id) >= adjacency_.size()) {
    return nullptr;
  }
  const auto& row = adjacency_[static_cast<size_t>(a_id)];
  auto it = std::lower_bound(row.begin(), row.end(), b->id(),
                             [](const Edge& e, int id) { return e.to_id < id; });
  return (it != row.end() && it->to == b) ? &*it : nullptr;
}

void Network::ComputePath(Switch* from, Switch* to, CachedPath* out) const {
  out->epoch = topology_epoch_;
  out->reachable = false;
  out->first = from;
  out->hops.clear();
  out->links_latency = 0;
  const int n = static_cast<int>(adjacency_.size());
  const int from_id = from->id();
  const int to_id = to->id();
  if (from_id < 0 || from_id >= n || to_id < 0 || to_id >= n) {
    return;
  }
  if (from == to) {
    out->reachable = true;
    return;
  }
  // Breadth-first over switch ids; each adjacency row is sorted by
  // neighbour id, so equal-length paths tie-break by insertion order —
  // never by heap address.
  std::vector<int> parent(static_cast<size_t>(n), -1);
  std::vector<char> visited(static_cast<size_t>(n), 0);
  std::vector<int> frontier;
  frontier.reserve(static_cast<size_t>(n));
  visited[static_cast<size_t>(from_id)] = 1;
  frontier.push_back(from_id);
  for (size_t head = 0; head < frontier.size(); ++head) {
    const int cur = frontier[head];
    if (cur == to_id) {
      break;
    }
    for (const Edge& e : adjacency_[static_cast<size_t>(cur)]) {
      if (!visited[static_cast<size_t>(e.to_id)]) {
        visited[static_cast<size_t>(e.to_id)] = 1;
        parent[static_cast<size_t>(e.to_id)] = cur;
        frontier.push_back(e.to_id);
      }
    }
  }
  if (!visited[static_cast<size_t>(to_id)]) {
    return;
  }
  // Reconstruct dst -> src, then emit hops in src -> dst order.
  std::vector<int> reversed;
  for (int s = to_id; s != from_id; s = parent[static_cast<size_t>(s)]) {
    reversed.push_back(s);
  }
  reversed.push_back(from_id);
  out->hops.reserve(reversed.size() - 1);
  for (size_t i = reversed.size() - 1; i > 0; --i) {
    Switch* cur = switches_[static_cast<size_t>(reversed[i])].get();
    Switch* next = switches_[static_cast<size_t>(reversed[i - 1])].get();
    const Edge* fwd = FindEdge(cur, next);
    const Edge* back = FindEdge(next, cur);
    if (fwd == nullptr || back == nullptr) {
      out->hops.clear();
      return;
    }
    out->hops.push_back(CachedHop{next, fwd->out_port, fwd->link, back->out_port});
    out->links_latency += fwd->link->propagation_delay() + fwd->link->cell_time();
  }
  out->reachable = true;
}

const Network::CachedPath* Network::ResolvePath(Switch* from, Switch* to) const {
  const uint64_t key = (static_cast<uint64_t>(static_cast<uint32_t>(from->id())) << 32) |
                       static_cast<uint32_t>(to->id());
  CachedPath& entry = route_cache_[key];
  if (entry.epoch != topology_epoch_ || entry.first != from) {
    ComputePath(from, to, &entry);
  }
  return &entry;
}

std::optional<ResolvedRoute> Network::ResolveRoute(const Endpoint* src,
                                                   const Endpoint* dst) const {
  auto src_it = endpoint_attachments_.find(src);
  auto dst_it = endpoint_attachments_.find(dst);
  if (src_it == endpoint_attachments_.end() || dst_it == endpoint_attachments_.end()) {
    return std::nullopt;
  }
  const Attachment& src_at = src_it->second;
  const Attachment& dst_at = dst_it->second;
  const CachedPath* path = ResolvePath(src_at.sw, dst_at.sw);
  if (!path->reachable) {
    return std::nullopt;
  }
  ResolvedRoute route;
  route.links.reserve(path->hops.size() + 2);
  route.links.push_back(src_at.to_switch);
  for (const CachedHop& hop : path->hops) {
    route.links.push_back(hop.link);
  }
  route.links.push_back(dst_at.from_switch);
  route.latency_ns = path->links_latency +
                     src_at.to_switch->propagation_delay() + src_at.to_switch->cell_time() +
                     dst_at.from_switch->propagation_delay() + dst_at.from_switch->cell_time();
  route.epoch = topology_epoch_;
  return route;
}

std::optional<std::vector<Link*>> Network::PathLinks(const Endpoint* src,
                                                     const Endpoint* dst) const {
  auto route = ResolveRoute(src, dst);
  if (!route.has_value()) {
    return std::nullopt;
  }
  return std::move(route->links);
}

const std::vector<Link*>* Network::VcLinks(VcId id) const {
  auto it = vcs_.find(id);
  return it == vcs_.end() ? nullptr : &it->second.hop_links;
}

const std::vector<VcId>& Network::VcsOnLink(const Link* link) const {
  static const std::vector<VcId> kEmpty;
  const int id = link->id();
  if (id < 0 || static_cast<size_t>(id) >= link_vcs_.size()) {
    return kEmpty;
  }
  return link_vcs_[static_cast<size_t>(id)];
}

std::optional<int64_t> Network::PathAvailableBps(const Endpoint* src, const Endpoint* dst) const {
  auto route = ResolveRoute(src, dst);
  if (!route.has_value()) {
    return std::nullopt;
  }
  int64_t available = std::numeric_limits<int64_t>::max();
  for (const Link* l : route->links) {
    available = std::min(available, AvailableBandwidth(l));
  }
  return std::max<int64_t>(available, 0);
}

std::optional<sim::DurationNs> Network::PathLatencyNs(const Endpoint* src,
                                                      const Endpoint* dst) const {
  auto route = ResolveRoute(src, dst);
  if (!route.has_value()) {
    return std::nullopt;
  }
  return route->latency_ns;
}

std::optional<VcDescriptor> Network::OpenVc(Endpoint* src, Endpoint* dst, QosSpec qos) {
  auto src_it = endpoint_attachments_.find(src);
  auto dst_it = endpoint_attachments_.find(dst);
  if (src_it == endpoint_attachments_.end() || dst_it == endpoint_attachments_.end()) {
    ++rejections_no_path_;
    return std::nullopt;
  }
  const Attachment& src_at = src_it->second;
  const Attachment& dst_at = dst_it->second;

  const CachedPath* path = ResolvePath(src_at.sw, dst_at.sw);
  if (!path->reachable) {
    ++rejections_no_path_;
    return std::nullopt;
  }

  // Collect the links the VC will traverse, in order.
  std::vector<Link*> hop_links;
  hop_links.reserve(path->hops.size() + 2);
  hop_links.push_back(src_at.to_switch);
  for (const CachedHop& hop : path->hops) {
    hop_links.push_back(hop.link);
  }
  hop_links.push_back(dst_at.from_switch);

  return OpenVcAlongPath(src, dst, qos, src_at, dst_at, *path, std::move(hop_links));
}

std::optional<VcDescriptor> Network::OpenVc(Endpoint* src, Endpoint* dst, QosSpec qos,
                                            const ResolvedRoute& route) {
  if (route.epoch != topology_epoch_) {
    // The topology moved under the caller's resolve; fall back to a fresh
    // one — same semantics, just not the fast path.
    return OpenVc(src, dst, qos);
  }
  auto src_it = endpoint_attachments_.find(src);
  auto dst_it = endpoint_attachments_.find(dst);
  if (src_it == endpoint_attachments_.end() || dst_it == endpoint_attachments_.end()) {
    ++rejections_no_path_;
    return std::nullopt;
  }
  const Attachment& src_at = src_it->second;
  const Attachment& dst_at = dst_it->second;
  const CachedPath* path = ResolvePath(src_at.sw, dst_at.sw);
  if (!path->reachable) {
    ++rejections_no_path_;
    return std::nullopt;
  }
  return OpenVcAlongPath(src, dst, qos, src_at, dst_at, *path, route.links);
}

std::optional<VcDescriptor> Network::OpenVcAlongPath(Endpoint* src, Endpoint* dst, QosSpec qos,
                                                     const Attachment& src_at,
                                                     const Attachment& dst_at,
                                                     const CachedPath& path,
                                                     std::vector<Link*> hop_links) {
  // Admission control: the reservation must fit on every traversed link.
  if (qos.peak_bps > 0) {
    for (Link* l : hop_links) {
      if (ReservedBps(l) + qos.peak_bps > l->bits_per_second()) {
        ++rejections_bandwidth_;
        return std::nullopt;
      }
    }
  }

  // Allocate per-hop VCIs and install routes.
  VcState state;
  const Vci dst_vci = dst->AllocateIncomingVci();
  Vci in_vci = src_at.sw->AllocateVci(src_at.port);
  const Vci source_vci = in_vci;
  int in_port = src_at.port;
  Switch* sw = path.first;
  for (const CachedHop& hop : path.hops) {
    // The VCI on the inter-switch link is whatever is free on the next
    // switch's input port.
    const Vci out_vci = hop.next->AllocateVci(hop.next_in_port);
    sw->AddRoute(in_port, in_vci, hop.out_port, out_vci);
    state.hops.push_back(HopRecord{sw, in_port, in_vci});
    in_port = hop.next_in_port;
    in_vci = out_vci;
    sw = hop.next;
  }
  sw->AddRoute(in_port, in_vci, dst_at.port, dst_vci);
  state.hops.push_back(HopRecord{sw, in_port, in_vci});

  if (qos.peak_bps > 0) {
    for (Link* l : hop_links) {
      reserved_bps_[static_cast<size_t>(l->id())] += qos.peak_bps;
    }
  }

  VcDescriptor desc;
  desc.id = next_vc_id_++;
  desc.source = src;
  desc.destination = dst;
  desc.source_vci = source_vci;
  desc.destination_vci = dst_vci;
  desc.qos = qos;
  desc.hop_count = static_cast<int>(path.hops.size()) + 1;
  for (Link* l : hop_links) {
    link_vcs_[static_cast<size_t>(l->id())].push_back(desc.id);
  }
  state.hop_links = std::move(hop_links);
  state.desc = desc;
  vcs_[desc.id] = std::move(state);
  return desc;
}

std::optional<std::pair<VcDescriptor, VcDescriptor>> Network::OpenDuplex(Endpoint* src,
                                                                         Endpoint* dst,
                                                                         QosSpec data_qos,
                                                                         QosSpec control_qos) {
  auto data = OpenVc(src, dst, data_qos);
  if (!data.has_value()) {
    return std::nullopt;
  }
  auto control = OpenVc(dst, src, control_qos);
  if (!control.has_value()) {
    CloseVc(data->id);
    return std::nullopt;
  }
  return std::make_pair(*data, *control);
}

bool Network::CloseVc(VcId id) {
  auto it = vcs_.find(id);
  if (it == vcs_.end()) {
    return false;
  }
  VcState& state = it->second;
  auto mcast_it = mcast_.find(id);
  if (mcast_it == mcast_.end()) {
    for (const HopRecord& hop : state.hops) {
      hop.sw->RemoveRoute(hop.in_port, hop.in_vci);
    }
    state.desc.destination->ReleaseIncomingVci(state.desc.destination_vci);
  } else {
    // A tree: retire each switch's whole entry (RemoveRoute drops every
    // branch at once) and release EVERY leaf's incoming VCI, not just the
    // descriptor's nominal destination.
    McastState& m = mcast_it->second;
    for (const auto& [sw_id, in] : m.node_in) {
      switches_[static_cast<size_t>(sw_id)]->RemoveRoute(in.first, in.second);
    }
    for (const McastLeafRec& rec : m.leaves) {
      rec.leaf->ReleaseIncomingVci(rec.leaf_vci);
    }
    mcast_.erase(mcast_it);
  }
  for (Link* l : state.hop_links) {
    if (state.desc.qos.peak_bps > 0) {
      reserved_bps_[static_cast<size_t>(l->id())] -= state.desc.qos.peak_bps;
    }
    auto& on_link = link_vcs_[static_cast<size_t>(l->id())];
    auto pos = std::find(on_link.begin(), on_link.end(), id);
    if (pos != on_link.end()) {
      on_link.erase(pos);  // order-preserving: the index stays id-sorted
    }
  }
  congestion_handlers_.erase(id);
  vcs_.erase(it);
  return true;
}

bool Network::PlanGraft(const McastState& m, Endpoint* leaf,
                        std::set<std::pair<int, int>>* planned_branches,
                        std::set<int>* planned_nodes, std::vector<Link*>* new_links) const {
  auto leaf_it = endpoint_attachments_.find(leaf);
  if (leaf_it == endpoint_attachments_.end()) {
    return false;
  }
  const Attachment& leaf_at = leaf_it->second;
  const CachedPath* path = ResolvePath(m.root, leaf_at.sw);
  if (!path->reachable) {
    return false;
  }
  auto in_tree = [&](int sw_id) {
    return m.node_in.count(sw_id) > 0 || planned_nodes->count(sw_id) > 0;
  };
  auto have_branch = [&](const std::pair<int, int>& key) {
    return m.branches.count(key) > 0 || planned_branches->count(key) > 0;
  };
  const Switch* cur = m.root;
  for (const CachedHop& hop : path->hops) {
    const std::pair<int, int> key{cur->id(), hop.out_port};
    if (!have_branch(key)) {
      if (in_tree(hop.next->id())) {
        // The fresh path reaches a tree switch over a different edge than
        // the tree's — grafting would give that switch two incoming edges
        // (duplicate delivery). Only possible after a topology change.
        return false;
      }
      planned_branches->insert(key);
      planned_nodes->insert(hop.next->id());
      new_links->push_back(hop.link);
    }
    cur = hop.next;
  }
  const std::pair<int, int> leaf_key{cur->id(), leaf_at.port};
  if (have_branch(leaf_key)) {
    return false;
  }
  planned_branches->insert(leaf_key);
  new_links->push_back(leaf_at.from_switch);
  return true;
}

void Network::ChargeTreeLink(VcState& state, Link* link) {
  if (state.desc.qos.peak_bps > 0) {
    reserved_bps_[static_cast<size_t>(link->id())] += state.desc.qos.peak_bps;
  }
  auto& on_link = link_vcs_[static_cast<size_t>(link->id())];
  on_link.insert(std::lower_bound(on_link.begin(), on_link.end(), state.desc.id), state.desc.id);
  state.hop_links.push_back(link);
}

void Network::UnchargeTreeLink(VcState& state, Link* link) {
  if (state.desc.qos.peak_bps > 0) {
    reserved_bps_[static_cast<size_t>(link->id())] -= state.desc.qos.peak_bps;
  }
  auto& on_link = link_vcs_[static_cast<size_t>(link->id())];
  auto pos = std::find(on_link.begin(), on_link.end(), state.desc.id);
  if (pos != on_link.end()) {
    on_link.erase(pos);
  }
  auto lpos = std::find(state.hop_links.begin(), state.hop_links.end(), link);
  if (lpos != state.hop_links.end()) {
    state.hop_links.erase(lpos);
  }
}

void Network::CommitGraft(VcState& state, McastState& m, Endpoint* leaf) {
  const Attachment& leaf_at = endpoint_attachments_.at(leaf);
  const CachedPath* path = ResolvePath(m.root, leaf_at.sw);
  McastLeafRec rec;
  rec.leaf = leaf;
  auto add_branch = [&](Switch* sw, int out_port, Vci out_vci, Link* link, int next_switch_id) {
    const auto& in = m.node_in.at(sw->id());
    if (sw->HasRoute(in.first, in.second)) {
      sw->AddRouteTarget(in.first, in.second, out_port, out_vci);
    } else {
      sw->AddRoute(in.first, in.second, out_port, out_vci);
    }
    m.branches[{sw->id(), out_port}] = McastBranch{out_vci, link, 0, next_switch_id};
    ChargeTreeLink(state, link);
  };
  Switch* cur = m.root;
  for (const CachedHop& hop : path->hops) {
    const std::pair<int, int> key{cur->id(), hop.out_port};
    if (m.branches.count(key) == 0) {
      const Vci out_vci = hop.next->AllocateVci(hop.next_in_port);
      m.node_in[hop.next->id()] = {hop.next_in_port, out_vci};
      add_branch(cur, hop.out_port, out_vci, hop.link, hop.next->id());
    }
    ++m.branches.at(key).refs;
    rec.branch_keys.push_back(key);
    cur = hop.next;
  }
  rec.leaf_vci = leaf->AllocateIncomingVci();
  const std::pair<int, int> leaf_key{cur->id(), leaf_at.port};
  add_branch(cur, leaf_at.port, rec.leaf_vci, leaf_at.from_switch, -1);
  ++m.branches.at(leaf_key).refs;
  rec.branch_keys.push_back(leaf_key);
  m.leaves.push_back(std::move(rec));
}

std::optional<VcDescriptor> Network::OpenMulticastVc(Endpoint* src,
                                                     const std::vector<Endpoint*>& sinks,
                                                     QosSpec qos) {
  auto src_it = endpoint_attachments_.find(src);
  if (sinks.empty() || src_it == endpoint_attachments_.end()) {
    ++rejections_no_path_;
    return std::nullopt;
  }
  const Attachment& src_at = src_it->second;
  McastState m;
  m.source = src;
  m.root = src_at.sw;

  // Dry pass: simulate every graft to learn the tree's distinct edges. Any
  // bad sink rejects the whole open before a single route is touched.
  std::set<std::pair<int, int>> planned_branches;
  std::set<int> planned_nodes;
  std::vector<Link*> union_links;
  union_links.push_back(src_at.to_switch);
  std::set<const Endpoint*> seen;
  for (Endpoint* sink : sinks) {
    if (sink == src || !seen.insert(sink).second ||
        !PlanGraft(m, sink, &planned_branches, &planned_nodes, &union_links)) {
      ++rejections_no_path_;
      return std::nullopt;
    }
  }
  // Admission: each tree edge carries ONE copy of the stream, so each is
  // checked (and later charged) once, however many sinks ride it.
  if (qos.peak_bps > 0) {
    for (Link* l : union_links) {
      if (ReservedBps(l) + qos.peak_bps > l->bits_per_second()) {
        ++rejections_bandwidth_;
        return std::nullopt;
      }
    }
  }

  VcState state;
  state.desc.id = next_vc_id_++;
  state.desc.source = src;
  state.desc.qos = qos;
  state.desc.source_vci = src_at.sw->AllocateVci(src_at.port);
  m.node_in[src_at.sw->id()] = {src_at.port, state.desc.source_vci};
  ChargeTreeLink(state, src_at.to_switch);
  for (Endpoint* sink : sinks) {
    CommitGraft(state, m, sink);
  }
  state.desc.destination = sinks.front();
  state.desc.destination_vci = m.leaves.front().leaf_vci;
  state.desc.hop_count = static_cast<int>(m.node_in.size());
  const VcDescriptor desc = state.desc;
  vcs_[desc.id] = std::move(state);
  mcast_[desc.id] = std::move(m);
  return desc;
}

std::optional<Vci> Network::AddLeaf(VcId id, Endpoint* leaf) {
  auto mcast_it = mcast_.find(id);
  if (mcast_it == mcast_.end()) {
    return std::nullopt;
  }
  McastState& m = mcast_it->second;
  if (leaf == m.source) {
    return std::nullopt;
  }
  for (const McastLeafRec& rec : m.leaves) {
    if (rec.leaf == leaf) {
      return std::nullopt;
    }
  }
  std::set<std::pair<int, int>> planned_branches;
  std::set<int> planned_nodes;
  std::vector<Link*> new_links;
  if (!PlanGraft(m, leaf, &planned_branches, &planned_nodes, &new_links)) {
    ++rejections_no_path_;
    return std::nullopt;
  }
  VcState& state = vcs_.at(id);
  // Late join: only the GRAFT path faces admission — everything upstream of
  // the attach point is already reserved.
  if (state.desc.qos.peak_bps > 0) {
    for (Link* l : new_links) {
      if (ReservedBps(l) + state.desc.qos.peak_bps > l->bits_per_second()) {
        ++rejections_bandwidth_;
        return std::nullopt;
      }
    }
  }
  CommitGraft(state, m, leaf);
  state.desc.hop_count = static_cast<int>(m.node_in.size());
  return m.leaves.back().leaf_vci;
}

bool Network::RemoveLeaf(VcId id, Endpoint* leaf) {
  auto mcast_it = mcast_.find(id);
  if (mcast_it == mcast_.end()) {
    return false;
  }
  McastState& m = mcast_it->second;
  if (m.leaves.size() <= 1) {
    return false;  // the last leaf comes off via CloseVc
  }
  auto rec_it = std::find_if(m.leaves.begin(), m.leaves.end(),
                             [leaf](const McastLeafRec& r) { return r.leaf == leaf; });
  if (rec_it == m.leaves.end()) {
    return false;
  }
  VcState& state = vcs_.at(id);
  // Prune bottom-up: the leaf-most branch always hits zero refs; upstream
  // branches survive while any other leaf still rides them.
  for (auto key_it = rec_it->branch_keys.rbegin(); key_it != rec_it->branch_keys.rend();
       ++key_it) {
    McastBranch& branch = m.branches.at(*key_it);
    if (--branch.refs > 0) {
      continue;
    }
    const auto& in = m.node_in.at(key_it->first);
    switches_[static_cast<size_t>(key_it->first)]->RemoveRouteTarget(in.first, in.second,
                                                                     key_it->second);
    UnchargeTreeLink(state, branch.link);
    if (branch.next_switch_id >= 0) {
      m.node_in.erase(branch.next_switch_id);
    }
    m.branches.erase(*key_it);
  }
  leaf->ReleaseIncomingVci(rec_it->leaf_vci);
  m.leaves.erase(rec_it);
  state.desc.hop_count = static_cast<int>(m.node_in.size());
  return true;
}

int Network::McastLeafCount(VcId id) const {
  auto it = mcast_.find(id);
  return it == mcast_.end() ? 0 : static_cast<int>(it->second.leaves.size());
}

std::optional<Vci> Network::McastLeafVci(VcId id, const Endpoint* leaf) const {
  auto it = mcast_.find(id);
  if (it == mcast_.end()) {
    return std::nullopt;
  }
  for (const McastLeafRec& rec : it->second.leaves) {
    if (rec.leaf == leaf) {
      return rec.leaf_vci;
    }
  }
  return std::nullopt;
}

void Network::SetCongestionHandler(VcId id, CongestionCallback callback) {
  if (vcs_.count(id) == 0) {
    return;
  }
  congestion_handlers_[id] = std::move(callback);
}

void Network::ClearCongestionHandler(VcId id) { congestion_handlers_.erase(id); }

int Network::SignalCongestion(const Link* link, double severity) {
  // Collect ids first: a handler may renegotiate or close VCs, mutating
  // the per-link index and the handler map mid-iteration. The index is
  // ascending VcId — the same order the historical all-VCs scan produced.
  std::vector<VcId> to_notify;
  for (VcId id : VcsOnLink(link)) {
    if (congestion_handlers_.count(id) > 0) {
      to_notify.push_back(id);
    }
  }
  int notified = 0;
  for (VcId id : to_notify) {
    // Re-validate right before the call: an earlier callback may have
    // closed this VC, re-established it off the link, or dropped its
    // handler — a stale notification would report congestion for a link
    // the VC no longer traverses.
    auto vc = vcs_.find(id);
    if (vc == vcs_.end() ||
        std::find(vc->second.hop_links.begin(), vc->second.hop_links.end(), link) ==
            vc->second.hop_links.end()) {
      continue;
    }
    auto handler = congestion_handlers_.find(id);
    if (handler == congestion_handlers_.end()) {
      continue;
    }
    // Copy the callback: the handler may replace itself mid-call.
    CongestionCallback callback = handler->second;
    callback(id, link, severity);
    ++notified;
  }
  return notified;
}

bool Network::UpdateVcQos(VcId id, QosSpec qos) {
  auto it = vcs_.find(id);
  if (it == vcs_.end()) {
    return false;
  }
  VcState& state = it->second;
  const int64_t old_bps = state.desc.qos.peak_bps;
  const int64_t new_bps = qos.peak_bps;
  if (new_bps > old_bps) {
    for (Link* l : state.hop_links) {
      if (ReservedBps(l) - old_bps + new_bps > l->bits_per_second()) {
        ++rejections_bandwidth_;
        return false;
      }
    }
  }
  for (Link* l : state.hop_links) {
    reserved_bps_[static_cast<size_t>(l->id())] += new_bps - old_bps;
  }
  state.desc.qos = qos;
  return true;
}

const VcDescriptor* Network::GetVc(VcId id) const {
  auto it = vcs_.find(id);
  return it == vcs_.end() ? nullptr : &it->second.desc;
}

}  // namespace pegasus::atm
