#include "src/atm/network.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace pegasus::atm {

Network::Network(sim::Simulator* sim) : sim_(sim) {}

Network::~Network() = default;

void Network::MaybeMakeBoundary(Link* link, sim::Simulator* src, sim::Simulator* dst) {
  if (src == dst) {
    return;
  }
  // Two sides on different simulators only happens under sharded
  // construction; anything else is a wiring bug.
  assert(shard_group_ != nullptr);
  link->SetBoundary(shard_group_->RegisterBoundary(src, dst, link->propagation_delay()));
}

Switch* Network::AddSwitch(const std::string& name, int num_ports, sim::DurationNs fabric_delay) {
  switches_.push_back(std::make_unique<Switch>(build_simulator(), name, num_ports, fabric_delay));
  Switch* sw = switches_.back().get();
  sw->set_id(static_cast<int>(switches_.size()) - 1);
  adjacency_.emplace_back();
  ++topology_epoch_;
  return sw;
}

Link* Network::RegisterLink(std::unique_ptr<Link> link) {
  link->set_id(static_cast<int>(links_.size()));
  links_.push_back(std::move(link));
  reserved_bps_.push_back(0);
  link_vcs_.emplace_back();
  return links_.back().get();
}

Endpoint* Network::AddEndpoint(const std::string& name, Switch* sw, int port, int64_t link_bps,
                               sim::DurationNs propagation) {
  // Endpoints are co-located with their attachment switch: a host NIC, a
  // device or a storage server always lives on the shard owning its local
  // switch, so the attachment link pair is never a shard boundary.
  sim::Simulator* shard = sw->simulator();
  endpoints_.push_back(std::make_unique<Endpoint>(shard, name));
  Endpoint* ep = endpoints_.back().get();

  Link* up = RegisterLink(
      std::make_unique<Link>(shard, name + "->" + sw->name(), link_bps, propagation));
  Link* down = RegisterLink(
      std::make_unique<Link>(shard, sw->name() + "->" + name, link_bps, propagation));

  up->set_sink(sw->input(port));
  down->set_sink(ep);
  ep->AttachUplink(up);
  ep->AttachSwitch(sw, port);
  sw->AttachOutput(port, down);

  endpoint_attachments_[ep] = Attachment{sw, port, up, down};
  ++topology_epoch_;
  return ep;
}

void Network::ConnectSwitches(Switch* a, int port_a, Switch* b, int port_b, int64_t link_bps,
                              sim::DurationNs propagation) {
  // Each directed link serialises on its SOURCE switch's shard; when the
  // two switches live on different shards the pair becomes a boundary
  // channel with the propagation delay as its lookahead.
  Link* ab = RegisterLink(
      std::make_unique<Link>(a->simulator(), a->name() + "->" + b->name(), link_bps, propagation));
  Link* ba = RegisterLink(
      std::make_unique<Link>(b->simulator(), b->name() + "->" + a->name(), link_bps, propagation));

  ab->set_sink(b->input(port_b));
  ba->set_sink(a->input(port_a));
  MaybeMakeBoundary(ab, a->simulator(), b->simulator());
  MaybeMakeBoundary(ba, b->simulator(), a->simulator());
  a->AttachOutput(port_a, ab);
  b->AttachOutput(port_b, ba);

  auto insert_edge = [this](Switch* s, Switch* t, int out_port, Link* l) {
    auto& row = adjacency_[static_cast<size_t>(s->id())];
    const Edge edge{t->id(), t, out_port, l};
    auto it = std::lower_bound(row.begin(), row.end(), edge.to_id,
                               [](const Edge& e, int id) { return e.to_id < id; });
    if (it != row.end() && it->to_id == edge.to_id) {
      *it = edge;  // re-wiring two already-adjacent switches replaces the edge
    } else {
      row.insert(it, edge);
    }
  };
  insert_edge(a, b, port_a, ab);
  insert_edge(b, a, port_b, ba);
  ++topology_epoch_;
}

const Network::Edge* Network::FindEdge(const Switch* a, const Switch* b) const {
  const int a_id = a->id();
  if (a_id < 0 || static_cast<size_t>(a_id) >= adjacency_.size()) {
    return nullptr;
  }
  const auto& row = adjacency_[static_cast<size_t>(a_id)];
  auto it = std::lower_bound(row.begin(), row.end(), b->id(),
                             [](const Edge& e, int id) { return e.to_id < id; });
  return (it != row.end() && it->to == b) ? &*it : nullptr;
}

void Network::ComputePath(Switch* from, Switch* to, CachedPath* out) const {
  out->epoch = topology_epoch_;
  out->reachable = false;
  out->first = from;
  out->hops.clear();
  out->links_latency = 0;
  const int n = static_cast<int>(adjacency_.size());
  const int from_id = from->id();
  const int to_id = to->id();
  if (from_id < 0 || from_id >= n || to_id < 0 || to_id >= n) {
    return;
  }
  if (from == to) {
    out->reachable = true;
    return;
  }
  // Breadth-first over switch ids; each adjacency row is sorted by
  // neighbour id, so equal-length paths tie-break by insertion order —
  // never by heap address.
  std::vector<int> parent(static_cast<size_t>(n), -1);
  std::vector<char> visited(static_cast<size_t>(n), 0);
  std::vector<int> frontier;
  frontier.reserve(static_cast<size_t>(n));
  visited[static_cast<size_t>(from_id)] = 1;
  frontier.push_back(from_id);
  for (size_t head = 0; head < frontier.size(); ++head) {
    const int cur = frontier[head];
    if (cur == to_id) {
      break;
    }
    for (const Edge& e : adjacency_[static_cast<size_t>(cur)]) {
      if (!visited[static_cast<size_t>(e.to_id)]) {
        visited[static_cast<size_t>(e.to_id)] = 1;
        parent[static_cast<size_t>(e.to_id)] = cur;
        frontier.push_back(e.to_id);
      }
    }
  }
  if (!visited[static_cast<size_t>(to_id)]) {
    return;
  }
  // Reconstruct dst -> src, then emit hops in src -> dst order.
  std::vector<int> reversed;
  for (int s = to_id; s != from_id; s = parent[static_cast<size_t>(s)]) {
    reversed.push_back(s);
  }
  reversed.push_back(from_id);
  out->hops.reserve(reversed.size() - 1);
  for (size_t i = reversed.size() - 1; i > 0; --i) {
    Switch* cur = switches_[static_cast<size_t>(reversed[i])].get();
    Switch* next = switches_[static_cast<size_t>(reversed[i - 1])].get();
    const Edge* fwd = FindEdge(cur, next);
    const Edge* back = FindEdge(next, cur);
    if (fwd == nullptr || back == nullptr) {
      out->hops.clear();
      return;
    }
    out->hops.push_back(CachedHop{next, fwd->out_port, fwd->link, back->out_port});
    out->links_latency += fwd->link->propagation_delay() + fwd->link->cell_time();
  }
  out->reachable = true;
}

const Network::CachedPath* Network::ResolvePath(Switch* from, Switch* to) const {
  const uint64_t key = (static_cast<uint64_t>(static_cast<uint32_t>(from->id())) << 32) |
                       static_cast<uint32_t>(to->id());
  CachedPath& entry = route_cache_[key];
  if (entry.epoch != topology_epoch_ || entry.first != from) {
    ComputePath(from, to, &entry);
  }
  return &entry;
}

std::optional<ResolvedRoute> Network::ResolveRoute(const Endpoint* src,
                                                   const Endpoint* dst) const {
  auto src_it = endpoint_attachments_.find(src);
  auto dst_it = endpoint_attachments_.find(dst);
  if (src_it == endpoint_attachments_.end() || dst_it == endpoint_attachments_.end()) {
    return std::nullopt;
  }
  const Attachment& src_at = src_it->second;
  const Attachment& dst_at = dst_it->second;
  const CachedPath* path = ResolvePath(src_at.sw, dst_at.sw);
  if (!path->reachable) {
    return std::nullopt;
  }
  ResolvedRoute route;
  route.links.reserve(path->hops.size() + 2);
  route.links.push_back(src_at.to_switch);
  for (const CachedHop& hop : path->hops) {
    route.links.push_back(hop.link);
  }
  route.links.push_back(dst_at.from_switch);
  route.latency_ns = path->links_latency +
                     src_at.to_switch->propagation_delay() + src_at.to_switch->cell_time() +
                     dst_at.from_switch->propagation_delay() + dst_at.from_switch->cell_time();
  route.epoch = topology_epoch_;
  return route;
}

std::optional<std::vector<Link*>> Network::PathLinks(const Endpoint* src,
                                                     const Endpoint* dst) const {
  auto route = ResolveRoute(src, dst);
  if (!route.has_value()) {
    return std::nullopt;
  }
  return std::move(route->links);
}

const std::vector<Link*>* Network::VcLinks(VcId id) const {
  auto it = vcs_.find(id);
  return it == vcs_.end() ? nullptr : &it->second.hop_links;
}

const std::vector<VcId>& Network::VcsOnLink(const Link* link) const {
  static const std::vector<VcId> kEmpty;
  const int id = link->id();
  if (id < 0 || static_cast<size_t>(id) >= link_vcs_.size()) {
    return kEmpty;
  }
  return link_vcs_[static_cast<size_t>(id)];
}

std::optional<int64_t> Network::PathAvailableBps(const Endpoint* src, const Endpoint* dst) const {
  auto route = ResolveRoute(src, dst);
  if (!route.has_value()) {
    return std::nullopt;
  }
  int64_t available = std::numeric_limits<int64_t>::max();
  for (const Link* l : route->links) {
    available = std::min(available, AvailableBandwidth(l));
  }
  return std::max<int64_t>(available, 0);
}

std::optional<sim::DurationNs> Network::PathLatencyNs(const Endpoint* src,
                                                      const Endpoint* dst) const {
  auto route = ResolveRoute(src, dst);
  if (!route.has_value()) {
    return std::nullopt;
  }
  return route->latency_ns;
}

std::optional<VcDescriptor> Network::OpenVc(Endpoint* src, Endpoint* dst, QosSpec qos) {
  auto src_it = endpoint_attachments_.find(src);
  auto dst_it = endpoint_attachments_.find(dst);
  if (src_it == endpoint_attachments_.end() || dst_it == endpoint_attachments_.end()) {
    ++rejections_no_path_;
    return std::nullopt;
  }
  const Attachment& src_at = src_it->second;
  const Attachment& dst_at = dst_it->second;

  const CachedPath* path = ResolvePath(src_at.sw, dst_at.sw);
  if (!path->reachable) {
    ++rejections_no_path_;
    return std::nullopt;
  }

  // Collect the links the VC will traverse, in order.
  std::vector<Link*> hop_links;
  hop_links.reserve(path->hops.size() + 2);
  hop_links.push_back(src_at.to_switch);
  for (const CachedHop& hop : path->hops) {
    hop_links.push_back(hop.link);
  }
  hop_links.push_back(dst_at.from_switch);

  return OpenVcAlongPath(src, dst, qos, src_at, dst_at, *path, std::move(hop_links));
}

std::optional<VcDescriptor> Network::OpenVc(Endpoint* src, Endpoint* dst, QosSpec qos,
                                            const ResolvedRoute& route) {
  if (route.epoch != topology_epoch_) {
    // The topology moved under the caller's resolve; fall back to a fresh
    // one — same semantics, just not the fast path.
    return OpenVc(src, dst, qos);
  }
  auto src_it = endpoint_attachments_.find(src);
  auto dst_it = endpoint_attachments_.find(dst);
  if (src_it == endpoint_attachments_.end() || dst_it == endpoint_attachments_.end()) {
    ++rejections_no_path_;
    return std::nullopt;
  }
  const Attachment& src_at = src_it->second;
  const Attachment& dst_at = dst_it->second;
  const CachedPath* path = ResolvePath(src_at.sw, dst_at.sw);
  if (!path->reachable) {
    ++rejections_no_path_;
    return std::nullopt;
  }
  return OpenVcAlongPath(src, dst, qos, src_at, dst_at, *path, route.links);
}

std::optional<VcDescriptor> Network::OpenVcAlongPath(Endpoint* src, Endpoint* dst, QosSpec qos,
                                                     const Attachment& src_at,
                                                     const Attachment& dst_at,
                                                     const CachedPath& path,
                                                     std::vector<Link*> hop_links) {
  // Admission control: the reservation must fit on every traversed link.
  if (qos.peak_bps > 0) {
    for (Link* l : hop_links) {
      if (ReservedBps(l) + qos.peak_bps > l->bits_per_second()) {
        ++rejections_bandwidth_;
        return std::nullopt;
      }
    }
  }

  // Allocate per-hop VCIs and install routes.
  VcState state;
  const Vci dst_vci = dst->AllocateIncomingVci();
  Vci in_vci = src_at.sw->AllocateVci(src_at.port);
  const Vci source_vci = in_vci;
  int in_port = src_at.port;
  Switch* sw = path.first;
  for (const CachedHop& hop : path.hops) {
    // The VCI on the inter-switch link is whatever is free on the next
    // switch's input port.
    const Vci out_vci = hop.next->AllocateVci(hop.next_in_port);
    sw->AddRoute(in_port, in_vci, hop.out_port, out_vci);
    state.hops.push_back(HopRecord{sw, in_port, in_vci});
    in_port = hop.next_in_port;
    in_vci = out_vci;
    sw = hop.next;
  }
  sw->AddRoute(in_port, in_vci, dst_at.port, dst_vci);
  state.hops.push_back(HopRecord{sw, in_port, in_vci});

  if (qos.peak_bps > 0) {
    for (Link* l : hop_links) {
      reserved_bps_[static_cast<size_t>(l->id())] += qos.peak_bps;
    }
  }

  VcDescriptor desc;
  desc.id = next_vc_id_++;
  desc.source = src;
  desc.destination = dst;
  desc.source_vci = source_vci;
  desc.destination_vci = dst_vci;
  desc.qos = qos;
  desc.hop_count = static_cast<int>(path.hops.size()) + 1;
  for (Link* l : hop_links) {
    link_vcs_[static_cast<size_t>(l->id())].push_back(desc.id);
  }
  state.hop_links = std::move(hop_links);
  state.desc = desc;
  vcs_[desc.id] = std::move(state);
  return desc;
}

std::optional<std::pair<VcDescriptor, VcDescriptor>> Network::OpenDuplex(Endpoint* src,
                                                                         Endpoint* dst,
                                                                         QosSpec data_qos,
                                                                         QosSpec control_qos) {
  auto data = OpenVc(src, dst, data_qos);
  if (!data.has_value()) {
    return std::nullopt;
  }
  auto control = OpenVc(dst, src, control_qos);
  if (!control.has_value()) {
    CloseVc(data->id);
    return std::nullopt;
  }
  return std::make_pair(*data, *control);
}

bool Network::CloseVc(VcId id) {
  auto it = vcs_.find(id);
  if (it == vcs_.end()) {
    return false;
  }
  VcState& state = it->second;
  for (const HopRecord& hop : state.hops) {
    hop.sw->RemoveRoute(hop.in_port, hop.in_vci);
  }
  for (Link* l : state.hop_links) {
    if (state.desc.qos.peak_bps > 0) {
      reserved_bps_[static_cast<size_t>(l->id())] -= state.desc.qos.peak_bps;
    }
    auto& on_link = link_vcs_[static_cast<size_t>(l->id())];
    auto pos = std::find(on_link.begin(), on_link.end(), id);
    if (pos != on_link.end()) {
      on_link.erase(pos);  // order-preserving: the index stays id-sorted
    }
  }
  state.desc.destination->ReleaseIncomingVci(state.desc.destination_vci);
  congestion_handlers_.erase(id);
  vcs_.erase(it);
  return true;
}

void Network::SetCongestionHandler(VcId id, CongestionCallback callback) {
  if (vcs_.count(id) == 0) {
    return;
  }
  congestion_handlers_[id] = std::move(callback);
}

void Network::ClearCongestionHandler(VcId id) { congestion_handlers_.erase(id); }

int Network::SignalCongestion(const Link* link, double severity) {
  // Collect ids first: a handler may renegotiate or close VCs, mutating
  // the per-link index and the handler map mid-iteration. The index is
  // ascending VcId — the same order the historical all-VCs scan produced.
  std::vector<VcId> to_notify;
  for (VcId id : VcsOnLink(link)) {
    if (congestion_handlers_.count(id) > 0) {
      to_notify.push_back(id);
    }
  }
  int notified = 0;
  for (VcId id : to_notify) {
    // Re-validate right before the call: an earlier callback may have
    // closed this VC, re-established it off the link, or dropped its
    // handler — a stale notification would report congestion for a link
    // the VC no longer traverses.
    auto vc = vcs_.find(id);
    if (vc == vcs_.end() ||
        std::find(vc->second.hop_links.begin(), vc->second.hop_links.end(), link) ==
            vc->second.hop_links.end()) {
      continue;
    }
    auto handler = congestion_handlers_.find(id);
    if (handler == congestion_handlers_.end()) {
      continue;
    }
    // Copy the callback: the handler may replace itself mid-call.
    CongestionCallback callback = handler->second;
    callback(id, link, severity);
    ++notified;
  }
  return notified;
}

bool Network::UpdateVcQos(VcId id, QosSpec qos) {
  auto it = vcs_.find(id);
  if (it == vcs_.end()) {
    return false;
  }
  VcState& state = it->second;
  const int64_t old_bps = state.desc.qos.peak_bps;
  const int64_t new_bps = qos.peak_bps;
  if (new_bps > old_bps) {
    for (Link* l : state.hop_links) {
      if (ReservedBps(l) - old_bps + new_bps > l->bits_per_second()) {
        ++rejections_bandwidth_;
        return false;
      }
    }
  }
  for (Link* l : state.hop_links) {
    reserved_bps_[static_cast<size_t>(l->id())] += new_bps - old_bps;
  }
  state.desc.qos = qos;
  return true;
}

const VcDescriptor* Network::GetVc(VcId id) const {
  auto it = vcs_.find(id);
  return it == vcs_.end() ? nullptr : &it->second.desc;
}

}  // namespace pegasus::atm
