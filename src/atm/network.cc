#include "src/atm/network.h"

#include <algorithm>
#include <deque>
#include <limits>
#include <set>

namespace pegasus::atm {

Network::Network(sim::Simulator* sim) : sim_(sim) {}

Network::~Network() = default;

Switch* Network::AddSwitch(const std::string& name, int num_ports, sim::DurationNs fabric_delay) {
  switches_.push_back(std::make_unique<Switch>(sim_, name, num_ports, fabric_delay));
  Switch* sw = switches_.back().get();
  edges_[sw];  // ensure the node exists in the adjacency map
  return sw;
}

Endpoint* Network::AddEndpoint(const std::string& name, Switch* sw, int port, int64_t link_bps,
                               sim::DurationNs propagation) {
  endpoints_.push_back(std::make_unique<Endpoint>(sim_, name));
  Endpoint* ep = endpoints_.back().get();

  links_.push_back(std::make_unique<Link>(sim_, name + "->" + sw->name(), link_bps, propagation));
  Link* up = links_.back().get();
  links_.push_back(std::make_unique<Link>(sim_, sw->name() + "->" + name, link_bps, propagation));
  Link* down = links_.back().get();

  up->set_sink(sw->input(port));
  down->set_sink(ep);
  ep->AttachUplink(up);
  ep->AttachSwitch(sw, port);
  sw->AttachOutput(port, down);

  endpoint_attachments_[ep] = Attachment{sw, port, up, down};
  return ep;
}

void Network::ConnectSwitches(Switch* a, int port_a, Switch* b, int port_b, int64_t link_bps,
                              sim::DurationNs propagation) {
  links_.push_back(
      std::make_unique<Link>(sim_, a->name() + "->" + b->name(), link_bps, propagation));
  Link* ab = links_.back().get();
  links_.push_back(
      std::make_unique<Link>(sim_, b->name() + "->" + a->name(), link_bps, propagation));
  Link* ba = links_.back().get();

  ab->set_sink(b->input(port_b));
  ba->set_sink(a->input(port_a));
  a->AttachOutput(port_a, ab);
  b->AttachOutput(port_b, ba);

  edges_[a][b] = {port_a, ab};
  edges_[b][a] = {port_b, ba};
}

std::optional<std::vector<Switch*>> Network::FindPath(Switch* from, Switch* to) const {
  std::map<Switch*, Switch*> parent;
  std::set<Switch*> visited{from};
  std::deque<Switch*> frontier{from};
  while (!frontier.empty()) {
    Switch* cur = frontier.front();
    frontier.pop_front();
    if (cur == to) {
      std::vector<Switch*> path;
      for (Switch* s = to; s != from; s = parent[s]) {
        path.push_back(s);
      }
      path.push_back(from);
      return std::vector<Switch*>(path.rbegin(), path.rend());
    }
    auto it = edges_.find(cur);
    if (it == edges_.end()) {
      continue;
    }
    for (const auto& [next, edge] : it->second) {
      (void)edge;
      if (visited.insert(next).second) {
        parent[next] = cur;
        frontier.push_back(next);
      }
    }
  }
  return std::nullopt;
}

std::optional<std::pair<int, Link*>> Network::EdgeBetween(Switch* a, Switch* b) const {
  auto it = edges_.find(a);
  if (it == edges_.end()) {
    return std::nullopt;
  }
  auto jt = it->second.find(b);
  if (jt == it->second.end()) {
    return std::nullopt;
  }
  return jt->second;
}

int64_t Network::ReservedBps(const Link* link) const {
  auto it = reserved_bps_.find(link);
  return it == reserved_bps_.end() ? 0 : it->second;
}

int64_t Network::AvailableBandwidth(const Link* link) const {
  return link->bits_per_second() - ReservedBps(link);
}

std::optional<std::vector<Link*>> Network::HopLinks(const Endpoint* src,
                                                    const Endpoint* dst) const {
  auto src_it = endpoint_attachments_.find(src);
  auto dst_it = endpoint_attachments_.find(dst);
  if (src_it == endpoint_attachments_.end() || dst_it == endpoint_attachments_.end()) {
    return std::nullopt;
  }
  const Attachment& src_at = src_it->second;
  const Attachment& dst_at = dst_it->second;
  auto path = FindPath(src_at.sw, dst_at.sw);
  if (!path.has_value()) {
    return std::nullopt;
  }
  std::vector<Link*> hop_links;
  hop_links.push_back(src_at.to_switch);
  for (size_t i = 0; i + 1 < path->size(); ++i) {
    auto edge = EdgeBetween((*path)[i], (*path)[i + 1]);
    if (!edge.has_value()) {
      return std::nullopt;
    }
    hop_links.push_back(edge->second);
  }
  hop_links.push_back(dst_at.from_switch);
  return hop_links;
}

std::optional<std::vector<Link*>> Network::PathLinks(const Endpoint* src,
                                                     const Endpoint* dst) const {
  return HopLinks(src, dst);
}

const std::vector<Link*>* Network::VcLinks(VcId id) const {
  auto it = vcs_.find(id);
  return it == vcs_.end() ? nullptr : &it->second.hop_links;
}

std::optional<int64_t> Network::PathAvailableBps(const Endpoint* src, const Endpoint* dst) const {
  auto hop_links = HopLinks(src, dst);
  if (!hop_links.has_value()) {
    return std::nullopt;
  }
  int64_t available = std::numeric_limits<int64_t>::max();
  for (const Link* l : *hop_links) {
    available = std::min(available, AvailableBandwidth(l));
  }
  return std::max<int64_t>(available, 0);
}

std::optional<sim::DurationNs> Network::PathLatencyNs(const Endpoint* src,
                                                      const Endpoint* dst) const {
  auto hop_links = HopLinks(src, dst);
  if (!hop_links.has_value()) {
    return std::nullopt;
  }
  sim::DurationNs latency = 0;
  for (const Link* l : *hop_links) {
    latency += l->propagation_delay() + l->cell_time();
  }
  return latency;
}

std::optional<VcDescriptor> Network::OpenVc(Endpoint* src, Endpoint* dst, QosSpec qos) {
  auto src_it = endpoint_attachments_.find(src);
  auto dst_it = endpoint_attachments_.find(dst);
  if (src_it == endpoint_attachments_.end() || dst_it == endpoint_attachments_.end()) {
    return std::nullopt;
  }
  const Attachment& src_at = src_it->second;
  const Attachment& dst_at = dst_it->second;

  auto path = FindPath(src_at.sw, dst_at.sw);
  if (!path.has_value()) {
    return std::nullopt;
  }

  // Collect the links the VC will traverse, in order.
  std::vector<Link*> hop_links;
  hop_links.push_back(src_at.to_switch);
  for (size_t i = 0; i + 1 < path->size(); ++i) {
    auto edge = EdgeBetween((*path)[i], (*path)[i + 1]);
    if (!edge.has_value()) {
      return std::nullopt;
    }
    hop_links.push_back(edge->second);
  }
  hop_links.push_back(dst_at.from_switch);

  // Admission control: the reservation must fit on every traversed link.
  if (qos.peak_bps > 0) {
    for (Link* l : hop_links) {
      if (ReservedBps(l) + qos.peak_bps > l->bits_per_second()) {
        ++admission_rejections_;
        return std::nullopt;
      }
    }
  }

  // Allocate per-hop VCIs and install routes.
  VcState state;
  const Vci dst_vci = dst->AllocateIncomingVci();
  Vci in_vci = src_at.sw->AllocateVci(src_at.port);
  const Vci source_vci = in_vci;
  int in_port = src_at.port;
  for (size_t i = 0; i < path->size(); ++i) {
    Switch* sw = (*path)[i];
    int out_port;
    Vci out_vci;
    if (i + 1 < path->size()) {
      auto edge = EdgeBetween(sw, (*path)[i + 1]);
      out_port = edge->first;
      // The VCI on the inter-switch link is whatever is free on the next
      // switch's input port.
      Switch* next = (*path)[i + 1];
      auto back_edge = EdgeBetween(next, sw);
      out_vci = next->AllocateVci(back_edge->first);
      sw->AddRoute(in_port, in_vci, out_port, out_vci);
      state.hops.push_back(HopRecord{sw, in_port, in_vci});
      in_port = back_edge->first;
      in_vci = out_vci;
    } else {
      out_port = dst_at.port;
      out_vci = dst_vci;
      sw->AddRoute(in_port, in_vci, out_port, out_vci);
      state.hops.push_back(HopRecord{sw, in_port, in_vci});
    }
  }

  if (qos.peak_bps > 0) {
    for (Link* l : hop_links) {
      reserved_bps_[l] += qos.peak_bps;
    }
  }
  state.hop_links = std::move(hop_links);

  VcDescriptor desc;
  desc.id = next_vc_id_++;
  desc.source = src;
  desc.destination = dst;
  desc.source_vci = source_vci;
  desc.destination_vci = dst_vci;
  desc.qos = qos;
  desc.hop_count = static_cast<int>(path->size());
  state.desc = desc;
  vcs_[desc.id] = std::move(state);
  return desc;
}

std::optional<std::pair<VcDescriptor, VcDescriptor>> Network::OpenDuplex(Endpoint* src,
                                                                         Endpoint* dst,
                                                                         QosSpec data_qos,
                                                                         QosSpec control_qos) {
  auto data = OpenVc(src, dst, data_qos);
  if (!data.has_value()) {
    return std::nullopt;
  }
  auto control = OpenVc(dst, src, control_qos);
  if (!control.has_value()) {
    CloseVc(data->id);
    return std::nullopt;
  }
  return std::make_pair(*data, *control);
}

bool Network::CloseVc(VcId id) {
  auto it = vcs_.find(id);
  if (it == vcs_.end()) {
    return false;
  }
  VcState& state = it->second;
  for (const HopRecord& hop : state.hops) {
    hop.sw->RemoveRoute(hop.in_port, hop.in_vci);
  }
  if (state.desc.qos.peak_bps > 0) {
    for (Link* l : state.hop_links) {
      reserved_bps_[l] -= state.desc.qos.peak_bps;
    }
  }
  state.desc.destination->ReleaseIncomingVci(state.desc.destination_vci);
  congestion_handlers_.erase(id);
  vcs_.erase(it);
  return true;
}

void Network::SetCongestionHandler(VcId id, CongestionCallback callback) {
  if (vcs_.count(id) == 0) {
    return;
  }
  congestion_handlers_[id] = std::move(callback);
}

void Network::ClearCongestionHandler(VcId id) { congestion_handlers_.erase(id); }

int Network::SignalCongestion(const Link* link, double severity) {
  // Collect ids first: a handler may renegotiate or close VCs, mutating
  // vcs_ and the handler map mid-iteration.
  std::vector<VcId> to_notify;
  for (const auto& [id, state] : vcs_) {
    if (std::find(state.hop_links.begin(), state.hop_links.end(), link) ==
        state.hop_links.end()) {
      continue;
    }
    if (congestion_handlers_.count(id) > 0) {
      to_notify.push_back(id);
    }
  }
  int notified = 0;
  for (VcId id : to_notify) {
    // Re-validate right before the call: an earlier callback may have
    // closed this VC, re-established it off the link, or dropped its
    // handler — a stale notification would report congestion for a link
    // the VC no longer traverses.
    auto vc = vcs_.find(id);
    if (vc == vcs_.end() ||
        std::find(vc->second.hop_links.begin(), vc->second.hop_links.end(), link) ==
            vc->second.hop_links.end()) {
      continue;
    }
    auto handler = congestion_handlers_.find(id);
    if (handler == congestion_handlers_.end()) {
      continue;
    }
    // Copy the callback: the handler may replace itself mid-call.
    CongestionCallback callback = handler->second;
    callback(id, link, severity);
    ++notified;
  }
  return notified;
}

bool Network::UpdateVcQos(VcId id, QosSpec qos) {
  auto it = vcs_.find(id);
  if (it == vcs_.end()) {
    return false;
  }
  VcState& state = it->second;
  const int64_t old_bps = state.desc.qos.peak_bps;
  const int64_t new_bps = qos.peak_bps;
  if (new_bps > old_bps) {
    for (Link* l : state.hop_links) {
      if (ReservedBps(l) - old_bps + new_bps > l->bits_per_second()) {
        ++admission_rejections_;
        return false;
      }
    }
  }
  for (Link* l : state.hop_links) {
    reserved_bps_[l] += new_bps - old_bps;
  }
  state.desc.qos = qos;
  return true;
}

const VcDescriptor* Network::GetVc(VcId id) const {
  auto it = vcs_.find(id);
  return it == vcs_.end() ? nullptr : &it->second.desc;
}

}  // namespace pegasus::atm
