#include "src/atm/transport.h"

namespace pegasus::atm {

MessageTransport::MessageTransport(Endpoint* endpoint) : endpoint_(endpoint) {
  // set_cell_handler clears any previous owner's burst handler, so install
  // the cell path first and the span path on top of it.
  endpoint_->set_cell_handler([this](const Cell& cell) { OnCell(cell); });
  endpoint_->set_burst_handler([this](const Cell* cells, size_t count) { OnBurst(cells, count); });
}

void MessageTransport::SetHandler(Vci vci, MessageHandler handler) {
  handlers_[vci] = std::move(handler);
}

void MessageTransport::ClearHandler(Vci vci) { handlers_.erase(vci); }

void MessageTransport::SetDefaultHandler(MessageHandler handler) {
  default_handler_ = std::move(handler);
}

void MessageTransport::Send(Vci vci, const std::vector<uint8_t>& message, int64_t pace_bps) {
  ++messages_sent_;
  endpoint_->SendFrame(vci, message, pace_bps);
}

uint64_t MessageTransport::reassembly_errors() const {
  uint64_t n = 0;
  for (const auto& [vci, rx] : rx_) {
    (void)vci;
    n += rx.reassembler.crc_errors() + rx.reassembler.length_errors();
  }
  return n;
}

void MessageTransport::Dispatch(Vci vci, std::vector<uint8_t> sdu, sim::TimeNs first_cell_at) {
  ++messages_received_;
  auto it = handlers_.find(vci);
  if (it != handlers_.end()) {
    it->second(vci, std::move(sdu), first_cell_at);
  } else if (default_handler_) {
    default_handler_(vci, std::move(sdu), first_cell_at);
  }
}

void MessageTransport::OnCell(const Cell& cell) {
  VcRx& rx = rx_[cell.vci];
  if (!rx.in_frame) {
    rx.in_frame = true;
    rx.frame_first_cell_at = cell.created_at;
  }
  auto sdu = rx.reassembler.Push(cell);
  if (cell.end_of_frame) {
    rx.in_frame = false;
  }
  if (!sdu.has_value()) {
    return;
  }
  Dispatch(cell.vci, std::move(*sdu), rx.frame_first_cell_at);
}

void MessageTransport::OnBurst(const Cell* cells, size_t count) {
  size_t i = 0;
  while (i < count) {
    const Vci vci = cells[i].vci;
    VcRx& rx = rx_[vci];
    if (!rx.in_frame) {
      rx.in_frame = true;
      rx.frame_first_cell_at = cells[i].created_at;
    }
    // Maximal same-VC run with no frame boundary: one bulk append.
    size_t j = i;
    while (j < count && cells[j].vci == vci && !cells[j].end_of_frame) {
      ++j;
    }
    if (j > i) {
      rx.reassembler.IngestSpan(cells + i, j - i);
    }
    if (j < count && cells[j].vci == vci) {
      // The run's end-of-frame cell closes the CS-PDU.
      auto sdu = rx.reassembler.Push(cells[j]);
      rx.in_frame = false;
      const sim::TimeNs first_at = rx.frame_first_cell_at;
      ++j;
      if (sdu.has_value()) {
        Dispatch(vci, std::move(*sdu), first_at);
      }
    }
    i = j;
  }
}

}  // namespace pegasus::atm
