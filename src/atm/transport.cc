#include "src/atm/transport.h"

namespace pegasus::atm {

MessageTransport::MessageTransport(Endpoint* endpoint) : endpoint_(endpoint) {
  endpoint_->set_cell_handler([this](const Cell& cell) { OnCell(cell); });
}

void MessageTransport::SetHandler(Vci vci, MessageHandler handler) {
  handlers_[vci] = std::move(handler);
}

void MessageTransport::ClearHandler(Vci vci) { handlers_.erase(vci); }

void MessageTransport::SetDefaultHandler(MessageHandler handler) {
  default_handler_ = std::move(handler);
}

void MessageTransport::Send(Vci vci, const std::vector<uint8_t>& message, int64_t pace_bps) {
  ++messages_sent_;
  endpoint_->SendFrame(vci, message, pace_bps);
}

uint64_t MessageTransport::reassembly_errors() const {
  uint64_t n = 0;
  for (const auto& [vci, rx] : rx_) {
    (void)vci;
    n += rx.reassembler.crc_errors() + rx.reassembler.length_errors();
  }
  return n;
}

void MessageTransport::OnCell(const Cell& cell) {
  VcRx& rx = rx_[cell.vci];
  if (!rx.in_frame) {
    rx.in_frame = true;
    rx.frame_first_cell_at = cell.created_at;
  }
  auto sdu = rx.reassembler.Push(cell);
  if (cell.end_of_frame) {
    rx.in_frame = false;
  }
  if (!sdu.has_value()) {
    return;
  }
  ++messages_received_;
  const sim::TimeNs first_at = rx.frame_first_cell_at;
  auto it = handlers_.find(cell.vci);
  if (it != handlers_.end()) {
    it->second(cell.vci, std::move(*sdu), first_at);
  } else if (default_handler_) {
    default_handler_(cell.vci, std::move(*sdu), first_at);
  }
}

}  // namespace pegasus::atm
