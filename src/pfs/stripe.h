// Striped segment store with parity (§5).
//
// "The log is segmented in megabyte segments. Each segment is striped
// across four disks. A fifth disk is used as a parity disk and allows
// recovery from disk errors." A segment write issues one chunk per data
// disk plus the XOR parity chunk, all in parallel — the source of the
// 4 × 5 MB/s = 20 MB/s aggregate the paper quotes. Reads reconstruct
// through parity when a single data disk has failed.
#ifndef PEGASUS_SRC_PFS_STRIPE_H_
#define PEGASUS_SRC_PFS_STRIPE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/pfs/disk.h"
#include "src/sim/event_queue.h"

namespace pegasus::pfs {

class StripeStore {
 public:
  using ReadCallback = std::function<void(bool ok, std::vector<uint8_t> data)>;
  using WriteCallback = std::function<void(bool ok)>;

  // Creates `num_data_disks` + 1 disks. `segment_size` must divide evenly by
  // `num_data_disks`.
  StripeStore(sim::Simulator* sim, int num_data_disks, int64_t segment_size,
              DiskGeometry geometry);

  int64_t segment_size() const { return segment_size_; }
  int64_t chunk_size() const { return chunk_size_; }
  int num_data_disks() const { return static_cast<int>(disks_.size()) - 1; }
  // Segments that fit on the disks.
  int64_t capacity_segments() const;

  // Writes a whole segment (padded to segment_size); chunks + parity land on
  // all disks in parallel. ok only if every chunk write succeeded.
  void WriteSegment(int64_t segment, std::vector<uint8_t> data, WriteCallback callback);

  // Reads a whole segment. Tolerates one failed data disk by parity
  // reconstruction (and simply skips the parity disk if that one failed).
  void ReadSegment(int64_t segment, ReadCallback callback);

  // Reads `len` bytes at `offset` within `segment`, touching only the disks
  // whose chunks intersect the range (with reconstruction if one is down).
  // `realtime` marks continuous-media priority.
  void ReadRange(int64_t segment, int64_t offset, int64_t len, bool realtime,
                 ReadCallback callback);

  SimDisk* disk(int i) { return disks_[static_cast<size_t>(i)].get(); }
  SimDisk* parity_disk() { return disks_.back().get(); }
  int failed_disk_count() const;

  // Recomputes the chunk of `segment` belonging to disk `d` from the XOR of
  // every other disk in the parity group and writes it to `d` — the rebuild
  // step after a drive replacement. Works for data disks and for the parity
  // disk alike.
  void RebuildChunk(int d, int64_t segment, WriteCallback callback);

  // Aggregate statistics across all disks.
  int64_t total_bytes_written() const;
  int64_t total_bytes_read() const;
  sim::DurationNs total_seek_time() const;
  sim::DurationNs total_transfer_time() const;
  int64_t reconstructed_reads() const { return reconstructed_reads_; }

 private:
  // Reads a chunk range from data disk `d`, reconstructing from the other
  // disks + parity if `d` has failed.
  void ReadChunkRange(int d, int64_t disk_offset, int64_t len, bool realtime,
                      ReadCallback callback);

  sim::Simulator* sim_;
  int64_t segment_size_;
  int64_t chunk_size_;
  std::vector<std::unique_ptr<SimDisk>> disks_;  // data disks + parity last
  int64_t reconstructed_reads_ = 0;
};

}  // namespace pegasus::pfs

#endif  // PEGASUS_SRC_PFS_STRIPE_H_
