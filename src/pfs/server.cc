#include "src/pfs/server.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <set>

namespace pegasus::pfs {

// Implementation note: file blocks are stored as full block_size units
// (zero-padded at the tail), so every on-disk block, garbage entry and
// summary entry has length == block_size. This keeps the log arithmetic
// simple without changing any behaviour the experiments measure.

PegasusFileServer::PegasusFileServer(sim::Simulator* sim, PfsConfig config)
    : sim_(sim),
      config_(config),
      store_(std::make_unique<StripeStore>(sim, config.num_data_disks, config.segment_size,
                                           config.geometry)),
      meta_(store_->capacity_segments()) {
  durable_meta_image_ = meta_.Serialize();
}

PegasusFileServer::~PegasusFileServer() = default;

FileId PegasusFileServer::CreateFile(FileType type) {
  if (crashed_) {
    return -1;
  }
  return meta_.CreateFile(type)->id;
}

std::optional<FileType> PegasusFileServer::FileTypeOf(FileId file) const {
  const Pnode* node = meta_.Find(file);
  if (node == nullptr) {
    return std::nullopt;
  }
  return node->type;
}

int64_t PegasusFileServer::FileSize(FileId file) const {
  const Pnode* node = meta_.Find(file);
  return node == nullptr ? -1 : node->size;
}

int64_t PegasusFileServer::buffered_bytes() const {
  return open_normal_.bytes + open_continuous_.bytes;
}

PegasusFileServer::OpenBlock* PegasusFileServer::FindOpenBlock(FileId file, int64_t block) {
  for (OpenSegment* seg : {&open_normal_, &open_continuous_}) {
    for (OpenBlock& b : seg->blocks) {
      if (b.file == file && b.block == block) {
        return &b;
      }
    }
  }
  return nullptr;
}

void PegasusFileServer::Write(FileId file, int64_t offset, std::vector<uint8_t> data,
                              WriteCallback callback) {
  Pnode* node = meta_.Find(file);
  if (crashed_ || node == nullptr || data.empty() || offset < 0) {
    sim_->ScheduleAfter(0, [callback = std::move(callback)]() { callback(false); });
    return;
  }
  const FileType type = node->type;
  const int64_t bs = config_.block_size;
  const int64_t end = offset + static_cast<int64_t>(data.size());

  struct BlockWrite {
    int64_t block = 0;
    std::vector<uint8_t> base;  // block content before this write
    bool needs_read = false;
  };
  auto writes = std::make_shared<std::vector<BlockWrite>>();
  for (int64_t block = offset / bs; block * bs < end; ++block) {
    BlockWrite bw;
    bw.block = block;
    OpenBlock* open = FindOpenBlock(file, block);
    if (open != nullptr) {
      bw.base = open->data;
    } else {
      bw.base.assign(static_cast<size_t>(bs), 0);
      const int64_t b_start = block * bs;
      const bool full_cover = offset <= b_start && end >= b_start + bs;
      if (!full_cover && node->blocks.count(block) > 0) {
        bw.needs_read = true;  // read-modify-write against the disk copy
      }
    }
    writes->push_back(std::move(bw));
  }

  const uint64_t epoch = epoch_;
  auto commit = [this, epoch, file, type, offset, end, bs, writes,
                 data = std::move(data), callback = std::move(callback)]() {
    if (epoch != epoch_ || crashed_) {
      callback(false);
      return;
    }
    Pnode* n = meta_.Find(file);
    if (n == nullptr) {
      callback(false);
      return;
    }
    for (BlockWrite& bw : *writes) {
      // Overlay the newly written range onto the base content.
      const int64_t b_start = bw.block * bs;
      const int64_t cover_start = std::max(offset, b_start);
      const int64_t cover_end = std::min(end, b_start + bs);
      std::memcpy(bw.base.data() + (cover_start - b_start), data.data() + (cover_start - offset),
                  static_cast<size_t>(cover_end - cover_start));
      BufferBlock(type, file, bw.block, std::move(bw.base));
    }
    n->size = std::max(n->size, end);
    callback(true);
    if (config_.write_back_delay == 0) {
      FlushOpen(type, []() {});
    }
  };

  auto pending = std::make_shared<int>(0);
  for (const BlockWrite& bw : *writes) {
    if (bw.needs_read) {
      ++*pending;
    }
  }
  if (*pending == 0) {
    sim_->ScheduleAfter(0, commit);
    return;
  }
  for (size_t i = 0; i < writes->size(); ++i) {
    if (!(*writes)[i].needs_read) {
      continue;
    }
    const BlockLocation loc = node->blocks[(*writes)[i].block];
    store_->ReadRange(loc.segment, loc.offset, loc.length, type == FileType::kContinuous,
                      [writes, i, pending, commit](bool ok, std::vector<uint8_t> old) {
                        if (ok) {
                          BlockWrite& target = (*writes)[i];
                          std::memcpy(target.base.data(), old.data(),
                                      std::min(old.size(), target.base.size()));
                        }
                        if (--*pending == 0) {
                          commit();
                        }
                      });
  }
}

void PegasusFileServer::BufferBlock(FileType type, FileId file, int64_t block,
                                    std::vector<uint8_t> data) {
  data.resize(static_cast<size_t>(config_.block_size), 0);
  ++blocks_accepted_;
  OpenBlock* existing = FindOpenBlock(file, block);
  if (existing != nullptr) {
    // The previous buffered version dies in memory: one disk write saved —
    // the §5 benefit of delaying writes.
    existing->data = std::move(data);
    ++blocks_died_in_buffer_;
    return;
  }
  OpenSegment& open = open_for(type);
  OpenBlock ob;
  ob.file = file;
  ob.block = block;
  ob.data = std::move(data);
  ob.buffered_at = sim_->now();
  open.blocks.push_back(std::move(ob));
  open.bytes += config_.block_size;
  if (open.bytes > config_.max_buffered_bytes) {
    // Memory pressure: push the oldest segment's worth out early.
    const auto per_segment = static_cast<size_t>(config_.segment_size / config_.block_size);
    std::vector<OpenBlock> oldest(
        std::make_move_iterator(open.blocks.begin()),
        std::make_move_iterator(open.blocks.begin() +
                                std::min(per_segment, open.blocks.size())));
    open.blocks.erase(open.blocks.begin(),
                      open.blocks.begin() + static_cast<int64_t>(oldest.size()));
    open.bytes -= static_cast<int64_t>(oldest.size()) * config_.block_size;
    PackAndWrite(type, std::move(oldest), []() {});
  }
  ScheduleFlushTimer(type);
}

void PegasusFileServer::ScheduleFlushTimer(FileType type) {
  OpenSegment& open = open_for(type);
  if (open.flush_scheduled || config_.write_back_delay <= 0 || open.blocks.empty()) {
    return;
  }
  // Fire when the oldest buffered block's write-back window expires.
  const sim::TimeNs due = open.blocks.front().buffered_at + config_.write_back_delay;
  open.flush_scheduled = true;
  open.flush_timer = sim_->ScheduleAt(due, [this, type]() {
    open_for(type).flush_scheduled = false;
    FlushOpen(
        type, []() {}, /*aged_only=*/true);
    ScheduleFlushTimer(type);
  });
}

void PegasusFileServer::FlushOpen(FileType type, std::function<void()> done, bool aged_only) {
  OpenSegment& open = open_for(type);
  if (!aged_only && open.flush_scheduled) {
    sim_->Cancel(open.flush_timer);
    open.flush_scheduled = false;
  }
  if (open.blocks.empty() || crashed_) {
    sim_->ScheduleAfter(0, done);
    return;
  }
  std::vector<OpenBlock> blocks;
  if (aged_only) {
    const sim::TimeNs cutoff = sim_->now() - config_.write_back_delay;
    auto first_young = open.blocks.begin();
    while (first_young != open.blocks.end() && first_young->buffered_at <= cutoff) {
      ++first_young;
    }
    blocks.assign(std::make_move_iterator(open.blocks.begin()),
                  std::make_move_iterator(first_young));
    open.blocks.erase(open.blocks.begin(), first_young);
  } else {
    blocks.swap(open.blocks);
  }
  open.bytes -= static_cast<int64_t>(blocks.size()) * config_.block_size;
  if (blocks.empty()) {
    sim_->ScheduleAfter(0, done);
    return;
  }
  PackAndWrite(type, std::move(blocks), std::move(done));
}

void PegasusFileServer::PackAndWrite(FileType type, std::vector<OpenBlock> blocks,
                                     std::function<void()> done) {
  // Split into as many segments as the blocks need; `done` fires after the
  // last segment write is issued and completed.
  const auto per_segment = static_cast<size_t>(config_.segment_size / config_.block_size);
  auto remaining = std::make_shared<int>(0);
  auto done_shared = std::make_shared<std::function<void()>>(std::move(done));
  std::vector<std::vector<OpenBlock>> batches;
  for (size_t i = 0; i < blocks.size(); i += per_segment) {
    const size_t end = std::min(blocks.size(), i + per_segment);
    batches.emplace_back(std::make_move_iterator(blocks.begin() + static_cast<int64_t>(i)),
                         std::make_move_iterator(blocks.begin() + static_cast<int64_t>(end)));
  }
  *remaining = static_cast<int>(batches.size());
  for (auto& batch : batches) {
    WriteSegmentOf(type, std::move(batch), [remaining, done_shared]() {
      if (--*remaining == 0) {
        (*done_shared)();
      }
    });
  }
}

void PegasusFileServer::WriteSegmentOf(FileType type, std::vector<OpenBlock> blocks,
                                       std::function<void()> done) {
  const int64_t seg = meta_.AllocateSegment(type == FileType::kContinuous);
  if (seg < 0) {
    // Out of space: drop the flush (callers learn via free_segments()).
    sim_->ScheduleAfter(0, done);
    return;
  }
  std::vector<uint8_t> payload;
  payload.reserve(static_cast<size_t>(config_.segment_size));
  struct Placed {
    FileId file;
    int64_t block;
    int64_t offset;
  };
  std::vector<Placed> placed;
  for (OpenBlock& b : blocks) {
    placed.push_back({b.file, b.block, static_cast<int64_t>(payload.size())});
    payload.insert(payload.end(), b.data.begin(), b.data.end());
  }
  partial_padding_ += config_.segment_size - static_cast<int64_t>(payload.size());

  const uint64_t epoch = epoch_;
  ++pending_flushes_;
  auto release = [this, epoch]() {
    if (epoch == epoch_ && pending_flushes_ > 0) {
      --pending_flushes_;
      MaybeFinishSync();
    }
  };
  store_->WriteSegment(seg, std::move(payload), [this, epoch, seg, placed, release,
                                                 done = std::move(done)](bool ok) {
    if (epoch != epoch_ || crashed_) {
      done();
      return;
    }
    if (!ok) {
      // A failed segment write (multi-disk failure) leaves old data intact.
      meta_.FreeSegment(seg);
      release();
      done();
      return;
    }
    ++segments_written_;
    SegmentInfo& info = meta_.segment(seg);
    for (const Placed& p : placed) {
      Pnode* node = meta_.Find(p.file);
      if (node == nullptr) {
        // Deleted while the flush was in flight: immediately garbage.
        meta_.AppendGarbage(GarbageEntry{seg, p.offset, config_.block_size});
        continue;
      }
      auto old = node->blocks.find(p.block);
      if (old != node->blocks.end()) {
        meta_.AppendGarbage(GarbageEntry{old->second.segment, old->second.offset,
                                         old->second.length});
        meta_.segment(old->second.segment).live_bytes -= old->second.length;
      }
      node->blocks[p.block] = BlockLocation{seg, p.offset, config_.block_size};
      info.live_bytes += config_.block_size;
      info.summary.push_back(SummaryEntry{p.file, p.block, p.offset, config_.block_size});
      ++blocks_flushed_;
    }
    // Data is durable once both the segment and the checkpoint that
    // references it are on disk; only then do clients learn about it.
    WriteCheckpoint([this, placed, release]() {
      if (durable_cb_) {
        for (const Placed& p : placed) {
          durable_cb_(p.file, p.block * config_.block_size, config_.block_size);
        }
      }
      release();
    });
    done();
  });
}

void PegasusFileServer::WriteCheckpoint(std::function<void()> done) {
  // Checkpoints coalesce: while one image is being written, further requests
  // wait and are satisfied together by the next (single) checkpoint, which
  // by then covers their metadata too.
  checkpoint_waiters_.push_back(std::move(done));
  if (checkpoint_in_flight_) {
    checkpoint_dirty_ = true;
    return;
  }
  StartCheckpoint();
}

void PegasusFileServer::StartCheckpoint() {
  checkpoint_in_flight_ = true;
  checkpoint_dirty_ = false;
  std::vector<std::function<void()>> waiters;
  waiters.swap(checkpoint_waiters_);
  std::vector<uint8_t> image = meta_.Serialize();
  const uint64_t epoch = epoch_;
  // The checkpoint region lives past the segment area on the first disk.
  const int64_t ckpt_offset = config_.geometry.capacity_bytes;
  store_->disk(0)->Write(
      ckpt_offset, image,
      /*realtime=*/false,
      [this, epoch, image, waiters = std::move(waiters)](bool ok) {
        if (epoch == epoch_ && ok) {
          durable_meta_image_ = image;
          ++checkpoints_;
        }
        for (const auto& w : waiters) {
          w();
        }
        if (epoch != epoch_) {
          return;  // a crash reset the checkpoint machinery
        }
        checkpoint_in_flight_ = false;
        if (checkpoint_dirty_ || !checkpoint_waiters_.empty()) {
          StartCheckpoint();
        }
      });
}

void PegasusFileServer::MaybeFinishSync() {
  if (pending_flushes_ > 0 || buffered_bytes() > 0) {
    return;
  }
  std::vector<std::function<void()>> waiters;
  waiters.swap(sync_waiters_);
  for (auto& w : waiters) {
    w();
  }
}

void PegasusFileServer::Sync(std::function<void()> callback) {
  sync_waiters_.push_back(std::move(callback));
  FlushOpen(FileType::kNormal, []() {});
  FlushOpen(FileType::kContinuous, []() {});
  // If nothing was buffered and no flush is in flight, finish immediately.
  sim_->ScheduleAfter(0, [this]() { MaybeFinishSync(); });
}

void PegasusFileServer::DoRead(FileId file, int64_t offset, int64_t len, bool realtime,
                               ReadCallback callback) {
  Pnode* node = meta_.Find(file);
  if (crashed_ || node == nullptr || offset < 0 || len <= 0) {
    sim_->ScheduleAfter(0, [callback = std::move(callback)]() { callback(false, {}); });
    return;
  }
  const int64_t bs = config_.block_size;
  const int64_t end = offset + len;

  struct Gather {
    int pending = 1;  // released once all requests are issued
    bool ok = true;
    std::vector<uint8_t> out;
  };
  auto gather = std::make_shared<Gather>();
  gather->out.assign(static_cast<size_t>(len), 0);
  auto finish = [gather, callback = std::move(callback)]() {
    if (--gather->pending == 0) {
      callback(gather->ok, std::move(gather->out));
    }
  };

  for (int64_t block = offset / bs; block * bs < end; ++block) {
    const int64_t b_start = block * bs;
    const int64_t copy_start = std::max(offset, b_start);
    const int64_t copy_end = std::min(end, b_start + bs);
    OpenBlock* open = FindOpenBlock(file, block);
    if (open != nullptr) {
      std::memcpy(gather->out.data() + (copy_start - offset),
                  open->data.data() + (copy_start - b_start),
                  static_cast<size_t>(copy_end - copy_start));
      continue;
    }
    auto loc_it = node->blocks.find(block);
    if (loc_it == node->blocks.end()) {
      continue;  // hole: zeros
    }
    ++gather->pending;
    const BlockLocation loc = loc_it->second;
    store_->ReadRange(loc.segment, loc.offset, loc.length, realtime,
                      [gather, copy_start, copy_end, b_start, offset, finish](
                          bool ok, std::vector<uint8_t> data) {
                        if (!ok) {
                          gather->ok = false;
                        } else {
                          std::memcpy(gather->out.data() + (copy_start - offset),
                                      data.data() + (copy_start - b_start),
                                      static_cast<size_t>(copy_end - copy_start));
                        }
                        finish();
                      });
  }
  sim_->ScheduleAfter(0, finish);  // release the issue hold
}

void PegasusFileServer::Read(FileId file, int64_t offset, int64_t len, ReadCallback callback) {
  DoRead(file, offset, len, /*realtime=*/false, std::move(callback));
}

void PegasusFileServer::ReadRealtime(FileId file, int64_t offset, int64_t len,
                                     ReadCallback callback) {
  DoRead(file, offset, len, /*realtime=*/true, std::move(callback));
}

bool PegasusFileServer::Delete(FileId file) {
  Pnode* node = meta_.Find(file);
  if (crashed_ || node == nullptr) {
    return false;
  }
  // On-disk blocks become garbage-file entries.
  for (const auto& [block, loc] : node->blocks) {
    (void)block;
    meta_.AppendGarbage(GarbageEntry{loc.segment, loc.offset, loc.length});
    meta_.segment(loc.segment).live_bytes -= loc.length;
  }
  // Buffered blocks die quietly in memory: disk writes saved.
  for (OpenSegment* seg : {&open_normal_, &open_continuous_}) {
    auto& blocks = seg->blocks;
    auto it = blocks.begin();
    while (it != blocks.end()) {
      if (it->file == file) {
        seg->bytes -= config_.block_size;
        ++blocks_died_in_buffer_;
        it = blocks.erase(it);
      } else {
        ++it;
      }
    }
  }
  ReleaseStream(file);
  return meta_.RemoveFile(file);
}

// --- continuous-media support ---

int64_t PegasusFileServer::StreamBudgetBps() const {
  return static_cast<int64_t>(static_cast<double>(config_.num_data_disks) *
                              static_cast<double>(config_.geometry.transfer_bytes_per_sec) *
                              config_.stream_admission_fraction);
}

bool PegasusFileServer::ReserveStream(FileId file, int64_t bytes_per_second) {
  if (reserved_bps_ + bytes_per_second > StreamBudgetBps()) {
    return false;
  }
  reserved_bps_ += bytes_per_second;
  stream_reservations_[file] += bytes_per_second;
  return true;
}

void PegasusFileServer::ReleaseStream(FileId file) {
  auto it = stream_reservations_.find(file);
  if (it == stream_reservations_.end()) {
    return;
  }
  reserved_bps_ -= it->second;
  stream_reservations_.erase(it);
  stream_pressure_callbacks_.erase(file);
}

void PegasusFileServer::SetStreamPressureCallback(FileId file, PressureCallback callback) {
  if (stream_reservations_.count(file) == 0) {
    return;
  }
  stream_pressure_callbacks_[file] = std::move(callback);
}

void PegasusFileServer::ClearStreamPressureCallback(FileId file) {
  stream_pressure_callbacks_.erase(file);
}

int PegasusFileServer::SignalBudgetPressure(double fraction) {
  // Collect first: a callback may renegotiate its reservation, mutating the
  // reservation and callback maps.
  std::vector<PressureCallback> to_notify;
  for (const auto& [file, callback] : stream_pressure_callbacks_) {
    (void)file;
    to_notify.push_back(callback);
  }
  for (PressureCallback& callback : to_notify) {
    callback(fraction);
  }
  return static_cast<int>(to_notify.size());
}

bool PegasusFileServer::AppendIndexEntry(FileId file, int64_t media_ts, int64_t byte_offset) {
  Pnode* node = meta_.Find(file);
  if (node == nullptr) {
    return false;
  }
  node->index[media_ts] = byte_offset;
  return true;
}

std::optional<int64_t> PegasusFileServer::LookupIndex(FileId file, int64_t media_ts) const {
  const Pnode* node = meta_.Find(file);
  if (node == nullptr || node->index.empty()) {
    return std::nullopt;
  }
  auto it = node->index.upper_bound(media_ts);
  if (it == node->index.begin()) {
    return std::nullopt;
  }
  --it;
  return it->second;
}

// --- cleaning ---

void PegasusFileServer::Clean(CleanCallback callback) {
  const sim::TimeNs started = sim_->now();
  CleanStats stats;
  // Read the garbage file up to the marker; sort its entries by segment.
  const size_t marker = meta_.MarkGarbage();
  std::set<int64_t> victim_set;
  size_t i = 0;
  for (const GarbageEntry& g : meta_.garbage()) {
    if (i++ >= marker) {
      break;
    }
    ++stats.entries_processed;
    victim_set.insert(g.segment);
  }
  stats.segments_examined = static_cast<int64_t>(victim_set.size());
  std::vector<int64_t> victims(victim_set.begin(), victim_set.end());
  CleanSegments(std::move(victims), marker, stats, started, std::move(callback));
}

void PegasusFileServer::CleanFullScan(CleanCallback callback) {
  const sim::TimeNs started = sim_->now();
  CleanStats stats;
  // Sprite-style: examine EVERY segment's summary to decide cleanability.
  std::vector<int64_t> victims;
  for (int64_t s = 0; s < meta_.num_segments(); ++s) {
    ++stats.segments_examined;
    const SegmentInfo& info = meta_.segment(s);
    if (info.state != SegmentInfo::State::kLive) {
      continue;
    }
    int64_t occupied = 0;
    for (const SummaryEntry& e : info.summary) {
      (void)e;
      occupied += e.length;
    }
    if (info.live_bytes < occupied) {
      victims.push_back(s);
    }
  }
  // The full scan subsumes the garbage file: consume it all.
  const size_t marker = meta_.MarkGarbage();
  CleanSegments(std::move(victims), marker, stats, started, std::move(callback));
}

void PegasusFileServer::CleanSegments(std::vector<int64_t> victims, size_t garbage_marker,
                                      CleanStats stats, sim::TimeNs started_at,
                                      CleanCallback callback) {
  // Relocation buffers, one per data class, flushed as they fill.
  struct CleanState {
    std::vector<int64_t> victims;
    size_t next = 0;
    CleanStats stats;
    size_t marker;
    sim::TimeNs started_at;
    CleanCallback callback;
  };
  auto state = std::make_shared<CleanState>();
  state->victims = std::move(victims);
  state->stats = stats;
  state->marker = garbage_marker;
  state->started_at = started_at;
  state->callback = std::move(callback);

  const uint64_t epoch = epoch_;
  // Processes victims one at a time (bounded memory, like the real cleaner).
  auto step = std::make_shared<std::function<void()>>();
  // The closure holds itself only weakly; the strong references live in the
  // caller and the pending async continuations, so the chain frees itself
  // after the last step (a strong self-capture would leak the closure).
  *step = [this, state, epoch,
           weak_step = std::weak_ptr<std::function<void()>>(step)]() {
    auto step = weak_step.lock();
    if (step == nullptr) {
      return;
    }
    if (epoch != epoch_ || crashed_) {
      state->callback(state->stats);
      return;
    }
    if (state->next >= state->victims.size()) {
      // Done: drop the processed prefix of the garbage file ("the portion of
      // the garbage file before the marker is deleted") and checkpoint.
      meta_.TruncateGarbage(state->marker);
      WriteCheckpoint([state, this]() {
        state->stats.wall_time = sim_->now() - state->started_at;
        state->callback(state->stats);
      });
      return;
    }
    const int64_t seg = state->victims[state->next++];
    SegmentInfo& info = meta_.segment(seg);
    if (info.state != SegmentInfo::State::kLive) {
      (*step)();
      return;
    }
    if (info.live_bytes <= 0) {
      // Entirely dead: free without reading a byte.
      state->stats.bytes_reclaimed += config_.segment_size;
      ++state->stats.segments_cleaned;
      meta_.FreeSegment(seg);
      (*step)();
      return;
    }
    // Live data present: read the segment, relocate the live blocks.
    store_->ReadSegment(seg, [this, state, seg, epoch, step](bool ok,
                                                             std::vector<uint8_t> data) {
      if (epoch != epoch_ || crashed_ || !ok) {
        state->callback(state->stats);
        return;
      }
      SegmentInfo& info2 = meta_.segment(seg);
      std::vector<std::pair<SummaryEntry, std::vector<uint8_t>>> live;
      for (const SummaryEntry& e : info2.summary) {
        Pnode* node = meta_.Find(e.file);
        if (node == nullptr) {
          continue;
        }
        auto it = node->blocks.find(e.block);
        if (it == node->blocks.end() || it->second.segment != seg ||
            it->second.offset != e.offset) {
          continue;  // superseded elsewhere
        }
        live.emplace_back(e, std::vector<uint8_t>(
                                 data.begin() + e.offset,
                                 data.begin() + e.offset + e.length));
      }
      state->stats.bytes_reclaimed +=
          config_.segment_size - static_cast<int64_t>(live.size()) * config_.block_size;
      ++state->stats.segments_cleaned;

      if (live.empty()) {
        meta_.FreeSegment(seg);
        (*step)();
        return;
      }
      // Pack live blocks into a fresh segment and write it before freeing
      // the victim (crash safety).
      const bool continuous = info2.continuous;
      const int64_t new_seg = meta_.AllocateSegment(continuous);
      if (new_seg < 0) {
        state->callback(state->stats);  // out of space; abort the clean
        return;
      }
      std::vector<uint8_t> payload;
      std::vector<SummaryEntry> new_summary;
      for (auto& [entry, bytes] : live) {
        SummaryEntry moved = entry;
        moved.offset = static_cast<int64_t>(payload.size());
        new_summary.push_back(moved);
        payload.insert(payload.end(), bytes.begin(), bytes.end());
        state->stats.live_bytes_copied += entry.length;
      }
      store_->WriteSegment(new_seg, std::move(payload),
                           [this, state, seg, new_seg, new_summary, epoch, step](bool ok2) {
                             if (epoch != epoch_ || crashed_ || !ok2) {
                               state->callback(state->stats);
                               return;
                             }
                             SegmentInfo& dst = meta_.segment(new_seg);
                             for (const SummaryEntry& e : new_summary) {
                               Pnode* node = meta_.Find(e.file);
                               if (node != nullptr) {
                                 node->blocks[e.block] =
                                     BlockLocation{new_seg, e.offset, e.length};
                               }
                               dst.live_bytes += e.length;
                               dst.summary.push_back(e);
                             }
                             meta_.FreeSegment(seg);
                             (*step)();
                           });
    });
  };
  sim_->ScheduleAfter(0, [step]() { (*step)(); });
}

void PegasusFileServer::RebuildDisk(int disk_index,
                                    std::function<void(bool, int64_t)> callback) {
  // Only live segments hold data worth rebuilding; free ones are rewritten
  // in full when reallocated.
  auto victims = std::make_shared<std::vector<int64_t>>();
  for (int64_t s = 0; s < meta_.num_segments(); ++s) {
    if (meta_.segment(s).state == SegmentInfo::State::kLive) {
      victims->push_back(s);
    }
  }
  auto state = std::make_shared<std::pair<size_t, bool>>(0, true);  // next index, ok
  auto step = std::make_shared<std::function<void()>>();
  const uint64_t epoch = epoch_;
  // Weak self-capture, as in CleanSegments: the pending RebuildChunk
  // continuations carry the strong references.
  *step = [this, epoch, disk_index, victims, state,
           weak_step = std::weak_ptr<std::function<void()>>(step),
           callback = std::move(callback)]() {
    auto step = weak_step.lock();
    if (step == nullptr) {
      return;
    }
    if (epoch != epoch_ || crashed_) {
      callback(false, static_cast<int64_t>(state->first));
      return;
    }
    if (state->first >= victims->size()) {
      callback(state->second, static_cast<int64_t>(victims->size()));
      return;
    }
    const int64_t seg = (*victims)[state->first++];
    store_->RebuildChunk(disk_index, seg, [state, step](bool ok) {
      state->second = state->second && ok;
      (*step)();
    });
  };
  sim_->ScheduleAfter(0, [step]() { (*step)(); });
}

// --- failure injection ---

void PegasusFileServer::Crash() {
  crashed_ = true;
  ++epoch_;
  open_normal_.blocks.clear();
  open_normal_.bytes = 0;
  if (open_normal_.flush_scheduled) {
    sim_->Cancel(open_normal_.flush_timer);
    open_normal_.flush_scheduled = false;
  }
  open_continuous_.blocks.clear();
  open_continuous_.bytes = 0;
  if (open_continuous_.flush_scheduled) {
    sim_->Cancel(open_continuous_.flush_timer);
    open_continuous_.flush_scheduled = false;
  }
  pending_flushes_ = 0;
  sync_waiters_.clear();
  checkpoint_in_flight_ = false;
  checkpoint_dirty_ = false;
  checkpoint_waiters_.clear();
}

void PegasusFileServer::Recover(std::function<void(bool)> callback) {
  // Model the checkpoint read from disk, then restore the metadata image.
  const int64_t ckpt_offset = config_.geometry.capacity_bytes;
  const auto len = static_cast<int64_t>(durable_meta_image_.size());
  store_->disk(0)->Read(ckpt_offset, std::max<int64_t>(len, 1), false,
                        [this, callback = std::move(callback)](bool ok, std::vector<uint8_t>) {
                          if (!ok) {
                            callback(false);
                            return;
                          }
                          auto meta = LogMetadata::Deserialize(durable_meta_image_);
                          if (!meta.has_value()) {
                            callback(false);
                            return;
                          }
                          meta_ = std::move(*meta);
                          crashed_ = false;
                          callback(true);
                        });
}

void PegasusFileServer::PowerFailure(bool has_ups, std::function<void()> halted) {
  if (!has_ups) {
    Crash();
    sim_->ScheduleAfter(0, std::move(halted));
    return;
  }
  // The UPS gives the server time to push its volatile buffers out ("the
  // server has time to write its volatile-memory buffers to disk and halt").
  Sync([this, halted = std::move(halted)]() {
    crashed_ = true;
    ++epoch_;
    halted();
  });
}

// --- StreamReader ---

StreamReader::StreamReader(sim::Simulator* sim, PegasusFileServer* server, FileId file,
                           int64_t chunk_bytes, sim::DurationNs interval, ChunkCallback on_chunk)
    : sim_(sim),
      server_(server),
      file_(file),
      chunk_bytes_(chunk_bytes),
      interval_(interval),
      on_chunk_(std::move(on_chunk)) {}

void StreamReader::Start(int64_t byte_offset) {
  position_ = byte_offset;
  running_ = true;
  next_due_ = sim_->now() + interval_;
  Tick();
}

void StreamReader::Stop() { running_ = false; }

void StreamReader::Tick() {
  if (!running_) {
    return;
  }
  const int64_t size = server_->FileSize(file_);
  if (position_ >= size) {
    running_ = false;
    return;
  }
  const int64_t len = std::min(chunk_bytes_, size - position_);
  const sim::TimeNs due = next_due_;
  server_->ReadRealtime(file_, position_, len,
                        [this, due](bool ok, std::vector<uint8_t> data) {
                          if (!running_) {
                            return;
                          }
                          const sim::TimeNs now = sim_->now();
                          lateness_.Add(static_cast<double>(now - due));
                          server_->stream_quality().Record(now - due);
                          if (now > due) {
                            ++deadline_misses_;
                          }
                          ++chunks_delivered_;
                          if (on_chunk_) {
                            on_chunk_(ok, std::move(data), due);
                          }
                        });
  position_ += len;
  next_due_ += interval_;
  sim_->ScheduleAt(due, [this]() { Tick(); });
}

}  // namespace pegasus::pfs
