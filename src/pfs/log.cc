#include "src/pfs/log.h"

#include "src/atm/wire.h"

namespace pegasus::pfs {

LogMetadata::LogMetadata(int64_t num_segments)
    : segments_(static_cast<size_t>(num_segments)) {}

int64_t LogMetadata::free_segments() const {
  int64_t n = 0;
  for (const auto& s : segments_) {
    n += s.state == SegmentInfo::State::kFree ? 1 : 0;
  }
  return n;
}

Pnode* LogMetadata::CreateFile(FileType type) {
  Pnode node;
  node.id = next_file_id_++;
  node.type = type;
  auto [it, inserted] = pnodes_.emplace(node.id, std::move(node));
  (void)inserted;
  return &it->second;
}

Pnode* LogMetadata::Find(FileId id) {
  auto it = pnodes_.find(id);
  return it == pnodes_.end() ? nullptr : &it->second;
}

const Pnode* LogMetadata::Find(FileId id) const {
  auto it = pnodes_.find(id);
  return it == pnodes_.end() ? nullptr : &it->second;
}

bool LogMetadata::RemoveFile(FileId id) { return pnodes_.erase(id) > 0; }

int64_t LogMetadata::AllocateSegment(bool continuous) {
  const int64_t n = num_segments();
  for (int64_t i = 0; i < n; ++i) {
    const int64_t s = (alloc_cursor_ + i) % n;
    if (segments_[static_cast<size_t>(s)].state == SegmentInfo::State::kFree) {
      alloc_cursor_ = (s + 1) % n;
      SegmentInfo& info = segments_[static_cast<size_t>(s)];
      info.state = SegmentInfo::State::kLive;
      info.continuous = continuous;
      info.live_bytes = 0;
      info.summary.clear();
      return s;
    }
  }
  return -1;
}

void LogMetadata::FreeSegment(int64_t segment) {
  SegmentInfo& info = segments_[static_cast<size_t>(segment)];
  info.state = SegmentInfo::State::kFree;
  info.continuous = false;
  info.live_bytes = 0;
  info.summary.clear();
}

void LogMetadata::AppendGarbage(const GarbageEntry& entry) {
  garbage_.push_back(entry);
  garbage_bytes_ += entry.length;
}

void LogMetadata::TruncateGarbage(size_t marker) {
  for (size_t i = 0; i < marker && !garbage_.empty(); ++i) {
    garbage_bytes_ -= garbage_.front().length;
    garbage_.pop_front();
  }
}

std::vector<uint8_t> LogMetadata::Serialize() const {
  atm::WireWriter w;
  w.PutU32(0x50464D44);  // "PFMD"
  w.PutI64(next_file_id_);
  w.PutI64(alloc_cursor_);

  w.PutU32(static_cast<uint32_t>(pnodes_.size()));
  for (const auto& [id, node] : pnodes_) {
    w.PutI64(id);
    w.PutU8(static_cast<uint8_t>(node.type));
    w.PutI64(node.size);
    w.PutU32(static_cast<uint32_t>(node.blocks.size()));
    for (const auto& [block, loc] : node.blocks) {
      w.PutI64(block);
      w.PutI64(loc.segment);
      w.PutI64(loc.offset);
      w.PutI64(loc.length);
    }
    w.PutU32(static_cast<uint32_t>(node.index.size()));
    for (const auto& [ts, off] : node.index) {
      w.PutI64(ts);
      w.PutI64(off);
    }
  }

  // Segment table: free segments are implicit; only live ones are recorded,
  // so the checkpoint image scales with live data, not with store size.
  w.PutU32(static_cast<uint32_t>(segments_.size()));
  uint32_t live = 0;
  for (const auto& s : segments_) {
    live += s.state == SegmentInfo::State::kLive ? 1 : 0;
  }
  w.PutU32(live);
  for (size_t i = 0; i < segments_.size(); ++i) {
    const SegmentInfo& s = segments_[i];
    if (s.state != SegmentInfo::State::kLive) {
      continue;
    }
    w.PutI64(static_cast<int64_t>(i));
    w.PutU8(s.continuous ? 1 : 0);
    w.PutI64(s.live_bytes);
    w.PutU32(static_cast<uint32_t>(s.summary.size()));
    for (const auto& e : s.summary) {
      w.PutI64(e.file);
      w.PutI64(e.block);
      w.PutI64(e.offset);
      w.PutI64(e.length);
    }
  }

  w.PutU32(static_cast<uint32_t>(garbage_.size()));
  for (const auto& g : garbage_) {
    w.PutI64(g.segment);
    w.PutI64(g.offset);
    w.PutI64(g.length);
  }
  return w.Take();
}

std::optional<LogMetadata> LogMetadata::Deserialize(const std::vector<uint8_t>& image) {
  atm::WireReader r(image);
  if (r.GetU32() != 0x50464D44) {
    return std::nullopt;
  }
  LogMetadata meta;
  meta.next_file_id_ = r.GetI64();
  meta.alloc_cursor_ = r.GetI64();

  const uint32_t n_files = r.GetU32();
  for (uint32_t i = 0; i < n_files && r.ok(); ++i) {
    Pnode node;
    node.id = r.GetI64();
    node.type = static_cast<FileType>(r.GetU8());
    node.size = r.GetI64();
    const uint32_t n_blocks = r.GetU32();
    for (uint32_t b = 0; b < n_blocks && r.ok(); ++b) {
      const int64_t block = r.GetI64();
      BlockLocation loc;
      loc.segment = r.GetI64();
      loc.offset = r.GetI64();
      loc.length = r.GetI64();
      node.blocks[block] = loc;
    }
    const uint32_t n_index = r.GetU32();
    for (uint32_t x = 0; x < n_index && r.ok(); ++x) {
      const int64_t ts = r.GetI64();
      node.index[ts] = r.GetI64();
    }
    meta.pnodes_[node.id] = std::move(node);
  }

  const uint32_t n_segments = r.GetU32();
  meta.segments_.resize(n_segments);
  const uint32_t n_live = r.GetU32();
  for (uint32_t i = 0; i < n_live && r.ok(); ++i) {
    const int64_t index = r.GetI64();
    if (index < 0 || index >= static_cast<int64_t>(n_segments)) {
      return std::nullopt;
    }
    SegmentInfo& s = meta.segments_[static_cast<size_t>(index)];
    s.state = SegmentInfo::State::kLive;
    s.continuous = r.GetU8() != 0;
    s.live_bytes = r.GetI64();
    const uint32_t n_sum = r.GetU32();
    for (uint32_t e = 0; e < n_sum && r.ok(); ++e) {
      SummaryEntry entry;
      entry.file = r.GetI64();
      entry.block = r.GetI64();
      entry.offset = r.GetI64();
      entry.length = r.GetI64();
      s.summary.push_back(entry);
    }
  }

  const uint32_t n_garbage = r.GetU32();
  for (uint32_t i = 0; i < n_garbage && r.ok(); ++i) {
    GarbageEntry g;
    g.segment = r.GetI64();
    g.offset = r.GetI64();
    g.length = r.GetI64();
    meta.AppendGarbage(g);
  }
  if (!r.ok()) {
    return std::nullopt;
  }
  return meta;
}

}  // namespace pegasus::pfs
