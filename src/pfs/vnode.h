// V-node layer: the Unix-facing face of the storage service (§5).
//
// "Higher-level services are being added; a Unix v-node interface is
// installed which allows the storage system to be used as a Unix file
// system." This layer adds what the core layer deliberately lacks: a
// directory tree mapping slash-separated paths to file ids, and per-open
// file descriptors with an offset cursor. Directories are kept in the
// metadata checkpoint via a reserved "directory file" so they survive
// crashes with everything else.
#ifndef PEGASUS_SRC_PFS_VNODE_H_
#define PEGASUS_SRC_PFS_VNODE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/pfs/server.h"

namespace pegasus::pfs {

struct VnodeStat {
  FileId file = -1;
  FileType type = FileType::kNormal;
  int64_t size = 0;
};

class VnodeLayer {
 public:
  using Fd = int;
  using IoCallback = std::function<void(bool ok, int64_t bytes)>;
  using ReadCallback = std::function<void(bool ok, std::vector<uint8_t> data)>;

  explicit VnodeLayer(PegasusFileServer* server);

  // --- namespace operations (synchronous: directory data is metadata) ---
  bool Mkdir(const std::string& path);
  bool Rmdir(const std::string& path);  // must be empty
  // Creates and opens a file; fails if it exists.
  std::optional<Fd> Create(const std::string& path, FileType type = FileType::kNormal);
  // Opens an existing file.
  std::optional<Fd> Open(const std::string& path);
  bool Unlink(const std::string& path);
  bool Rename(const std::string& from, const std::string& to);
  std::optional<VnodeStat> Stat(const std::string& path) const;
  // Names (not paths) of entries in a directory; nullopt if not a directory.
  std::optional<std::vector<std::string>> ReadDir(const std::string& path) const;

  // --- descriptor operations ---
  void Write(Fd fd, const std::vector<uint8_t>& data, IoCallback callback);
  void Read(Fd fd, int64_t len, ReadCallback callback);
  // Absolute seek; returns the new offset or -1 for a bad fd.
  int64_t Seek(Fd fd, int64_t offset);
  int64_t Tell(Fd fd) const;
  bool Close(Fd fd);
  int open_files() const { return static_cast<int>(fds_.size()); }

 private:
  struct Node {
    bool is_dir = false;
    FileId file = -1;  // for files
    std::map<std::string, Node> children;
  };
  struct OpenFile {
    FileId file = -1;
    int64_t offset = 0;
  };

  const Node* Walk(const std::vector<std::string>& parts) const;
  Node* WalkParent(const std::vector<std::string>& parts, bool create_dirs);
  static std::vector<std::string> Split(const std::string& path);

  PegasusFileServer* server_;
  Node root_;
  std::map<Fd, OpenFile> fds_;
  Fd next_fd_ = 3;  // tradition
};

}  // namespace pegasus::pfs

#endif  // PEGASUS_SRC_PFS_VNODE_H_
