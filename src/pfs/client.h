// The client-side file-server agent (§5).
//
// "When an application makes a write operation, the client agent sends the
// data to the server and keeps a copy of the data in its buffers. When the
// server receives the data, it acknowledges this to the client agent which,
// in turn, unblocks the application. The data is now safe under single-point
// failures." The copy is released only when the server reports the range
// durable; if the server crashes first, the agent resends after recovery
// (or would direct it at an alternative server). If the *client* crashes,
// the server already has the data and completes the write.
//
// The agent also hosts the client half of the normal-file service stack: an
// LRU block cache. Continuous-media files deliberately bypass it — "caching
// video and audio is usually not a good idea" (§5).
#ifndef PEGASUS_SRC_PFS_CLIENT_H_
#define PEGASUS_SRC_PFS_CLIENT_H_

#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <vector>

#include "src/pfs/server.h"
#include "src/sim/event_queue.h"

namespace pegasus::pfs {

// LRU cache of (file, block) -> bytes, used for ordinary files only.
class BlockCache {
 public:
  explicit BlockCache(int64_t capacity_bytes);

  bool Get(FileId file, int64_t block, std::vector<uint8_t>* out);
  void Put(FileId file, int64_t block, std::vector<uint8_t> data);
  void InvalidateFile(FileId file);

  int64_t hits() const { return hits_; }
  int64_t misses() const { return misses_; }
  int64_t size_bytes() const { return size_; }
  int64_t evictions() const { return evictions_; }

 private:
  struct Key {
    FileId file;
    int64_t block;
    bool operator<(const Key& o) const {
      if (file != o.file) {
        return file < o.file;
      }
      return block < o.block;
    }
  };
  using LruList = std::list<Key>;
  struct Entry {
    std::vector<uint8_t> data;
    LruList::iterator lru_it;
  };

  void EvictIfNeeded();

  int64_t capacity_;
  int64_t size_ = 0;
  std::map<Key, Entry> entries_;
  LruList lru_;  // front = most recent
  int64_t hits_ = 0;
  int64_t misses_ = 0;
  int64_t evictions_ = 0;
};

class ClientAgent {
 public:
  using WriteCallback = std::function<void(bool ok)>;
  using ReadCallback = std::function<void(bool ok, std::vector<uint8_t> data)>;

  struct Options {
    // One-way client<->server message latency (the core module replaces this
    // with a real ATM path in integration scenarios).
    sim::DurationNs network_delay = sim::Microseconds(200);
    int64_t cache_bytes = 4 << 20;
  };

  ClientAgent(sim::Simulator* sim, PegasusFileServer* server, Options options);

  // Blocks the application until the server acknowledges receipt — NOT until
  // the data is on disk; the retained copy makes that safe.
  void Write(FileId file, int64_t offset, std::vector<uint8_t> data, WriteCallback callback);
  // Reads through the cache for ordinary files; continuous files bypass it.
  void Read(FileId file, int64_t offset, int64_t len, ReadCallback callback);

  // --- failure handling (E12) ---
  // Called when the agent learns the server recovered from a crash: resends
  // every acknowledged-but-not-durable write.
  void ResendUnacknowledged(std::function<void()> done);
  // Simulates a client-machine crash: the agent forgets everything. Data the
  // server already acknowledged is the server's responsibility now.
  void ClientCrash();

  int64_t retained_bytes() const;
  int64_t unflushed_writes() const { return static_cast<int64_t>(retained_.size()); }
  int64_t resends() const { return resends_; }
  BlockCache& cache() { return cache_; }

 private:
  struct Retained {
    FileId file;
    int64_t offset;
    std::vector<uint8_t> data;
    bool acked = false;
    // Bytes of this record covered by durable notifications so far; the
    // record is released when every byte has been covered.
    int64_t durable_bytes = 0;
  };

  void OnDurable(FileId file, int64_t offset, int64_t length);
  void SendWrite(uint64_t id);

  sim::Simulator* sim_;
  PegasusFileServer* server_;
  Options options_;
  BlockCache cache_;
  std::map<uint64_t, Retained> retained_;
  uint64_t next_write_id_ = 1;
  int64_t resends_ = 0;
};

}  // namespace pegasus::pfs

#endif  // PEGASUS_SRC_PFS_CLIENT_H_
