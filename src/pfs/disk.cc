#include "src/pfs/disk.h"

#include <algorithm>
#include <cstring>

namespace pegasus::pfs {

SimDisk::SimDisk(sim::Simulator* sim, std::string name, DiskGeometry geometry)
    : sim_(sim), name_(std::move(name)), geometry_(geometry) {}

void SimDisk::Read(int64_t offset, int64_t len, bool realtime, ReadCallback callback) {
  Request req;
  req.is_write = false;
  req.offset = offset;
  req.len = len;
  req.read_cb = std::move(callback);
  Enqueue(std::move(req), realtime);
}

void SimDisk::Write(int64_t offset, std::vector<uint8_t> data, bool realtime,
                    WriteCallback callback) {
  Request req;
  req.is_write = true;
  req.offset = offset;
  req.len = static_cast<int64_t>(data.size());
  req.data = std::move(data);
  req.write_cb = std::move(callback);
  Enqueue(std::move(req), realtime);
}

void SimDisk::Enqueue(Request req, bool realtime) {
  if (failed_) {
    // Fail fast without consuming disk time.
    sim_->ScheduleAfter(0, [req = std::move(req)]() mutable {
      if (req.is_write) {
        req.write_cb(false);
      } else {
        req.read_cb(false, {});
      }
    });
    return;
  }
  if (realtime) {
    rt_queue_.push_back(std::move(req));
  } else {
    queue_.push_back(std::move(req));
  }
  if (!busy_) {
    StartNext();
  }
}

sim::DurationNs SimDisk::PositioningTime(int64_t offset) const {
  const int64_t distance = std::abs(offset - head_pos_);
  if (distance == 0) {
    // Sequential access: no seek, no rotational delay (the head is there).
    return 0;
  }
  const double frac =
      static_cast<double>(distance) / static_cast<double>(geometry_.capacity_bytes);
  const auto seek = static_cast<sim::DurationNs>(
      static_cast<double>(geometry_.min_seek) +
      frac * static_cast<double>(geometry_.max_seek - geometry_.min_seek));
  return seek + geometry_.rotation / 2;
}

void SimDisk::StartNext() {
  std::deque<Request>* source = nullptr;
  if (!rt_queue_.empty()) {
    source = &rt_queue_;
  } else if (!queue_.empty()) {
    source = &queue_;
  } else {
    busy_ = false;
    return;
  }
  busy_ = true;
  Request req = std::move(source->front());
  source->pop_front();

  const sim::DurationNs position = PositioningTime(req.offset);
  const sim::DurationNs transfer =
      req.len * sim::Seconds(1) / geometry_.transfer_bytes_per_sec;
  seek_time_ += position;
  transfer_time_ += transfer;
  busy_time_ += position + transfer;
  head_pos_ = req.offset + req.len;

  sim_->ScheduleAfter(position + transfer, [this, req = std::move(req)]() mutable {
    Complete(std::move(req));
    StartNext();
  });
}

void SimDisk::Complete(Request req) {
  if (failed_) {
    if (req.is_write) {
      req.write_cb(false);
    } else {
      req.read_cb(false, {});
    }
    return;
  }
  if (req.is_write) {
    ++writes_;
    bytes_written_ += req.len;
    StoreWrite(req.offset, req.data);
    req.write_cb(true);
  } else {
    ++reads_;
    bytes_read_ += req.len;
    req.read_cb(true, StoreRead(req.offset, req.len));
  }
}

void SimDisk::StoreWrite(int64_t offset, const std::vector<uint8_t>& data) {
  if (data.empty()) {
    return;
  }
  const int64_t end = offset + static_cast<int64_t>(data.size());
  // Trim or split any extent overlapping [offset, end).
  auto it = extents_.lower_bound(offset);
  if (it != extents_.begin()) {
    auto prev = std::prev(it);
    const int64_t prev_end = prev->first + static_cast<int64_t>(prev->second.size());
    if (prev_end > offset) {
      // The previous extent overlaps the front of the write range.
      std::vector<uint8_t> head(prev->second.begin(),
                                prev->second.begin() + (offset - prev->first));
      if (prev_end > end) {
        std::vector<uint8_t> tail(prev->second.begin() + (end - prev->first),
                                  prev->second.end());
        extents_[end] = std::move(tail);
      }
      prev->second = std::move(head);
      if (prev->second.empty()) {
        extents_.erase(prev);
      }
    }
  }
  it = extents_.lower_bound(offset);
  while (it != extents_.end() && it->first < end) {
    const int64_t it_end = it->first + static_cast<int64_t>(it->second.size());
    if (it_end <= end) {
      it = extents_.erase(it);
    } else {
      std::vector<uint8_t> tail(it->second.begin() + (end - it->first), it->second.end());
      extents_.erase(it);
      extents_[end] = std::move(tail);
      break;
    }
  }
  extents_[offset] = data;
}

std::vector<uint8_t> SimDisk::StoreRead(int64_t offset, int64_t len) const {
  std::vector<uint8_t> out(static_cast<size_t>(len), 0);
  auto it = extents_.upper_bound(offset);
  if (it != extents_.begin()) {
    --it;
  }
  const int64_t end = offset + len;
  for (; it != extents_.end() && it->first < end; ++it) {
    const int64_t ext_start = it->first;
    const int64_t ext_end = ext_start + static_cast<int64_t>(it->second.size());
    const int64_t copy_start = std::max(offset, ext_start);
    const int64_t copy_end = std::min(end, ext_end);
    if (copy_start >= copy_end) {
      continue;
    }
    std::memcpy(out.data() + (copy_start - offset), it->second.data() + (copy_start - ext_start),
                static_cast<size_t>(copy_end - copy_start));
  }
  return out;
}

void SimDisk::Fail() {
  failed_ = true;
  // Error out everything already queued.
  auto flush = [this](std::deque<Request>* q) {
    while (!q->empty()) {
      Request req = std::move(q->front());
      q->pop_front();
      sim_->ScheduleAfter(0, [req = std::move(req)]() mutable {
        if (req.is_write) {
          req.write_cb(false);
        } else {
          req.read_cb(false, {});
        }
      });
    }
  };
  flush(&rt_queue_);
  flush(&queue_);
}

void SimDisk::Repair() { failed_ = false; }

void SimDisk::ReplaceBlank() {
  failed_ = false;
  extents_.clear();
  head_pos_ = 0;
}

}  // namespace pegasus::pfs
