// Log-structured core-layer metadata (§5).
//
// Pegasus inherits the log structure of Sprite LFS: file data is appended to
// megabyte segments, file metadata lives in *pnodes* (the Pegasus inode),
// and space held by overwritten or deleted data is reclaimed by a cleaner.
// Pegasus departs from Sprite in two ways reproduced here:
//   * continuous-media data is collected in separate segments, while pnodes
//     (for both kinds) are appended to the normal log;
//   * cleaning is driven by a *garbage file*: every client operation that
//     creates garbage appends an entry describing the hole, so cleaning
//     cost depends only on the number of dirty segments and the amount of
//     garbage — never on the size of the store (the 10-terabyte goal).
//
// This header holds the in-memory metadata and its serial form (the
// checkpoint image); timing and disk I/O live in server.cc.
#ifndef PEGASUS_SRC_PFS_LOG_H_
#define PEGASUS_SRC_PFS_LOG_H_

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <vector>

namespace pegasus::pfs {

using FileId = int64_t;

enum class FileType : uint8_t { kNormal = 0, kContinuous = 1 };

// Where a file block lives on disk.
struct BlockLocation {
  int64_t segment = -1;
  int64_t offset = 0;  // within the segment
  int64_t length = 0;
  bool valid() const { return segment >= 0; }
};

// A hole in the log left by an overwrite or delete.
struct GarbageEntry {
  int64_t segment = -1;
  int64_t offset = 0;
  int64_t length = 0;
};

// One block recorded in a segment's summary (who the data belongs to);
// needed by the cleaner to find and relocate live data.
struct SummaryEntry {
  FileId file = -1;
  int64_t block = -1;
  int64_t offset = 0;
  int64_t length = 0;
};

struct Pnode {
  FileId id = -1;
  FileType type = FileType::kNormal;
  int64_t size = 0;
  std::map<int64_t, BlockLocation> blocks;  // block index -> on-disk location
  // Continuous-media index built from the control stream: media timestamp
  // (ns) -> byte offset. Enables "go to time offset", fast forward, reverse.
  std::map<int64_t, int64_t> index;
};

struct SegmentInfo {
  enum class State : uint8_t { kFree = 0, kLive = 1 };
  State state = State::kFree;
  bool continuous = false;
  int64_t live_bytes = 0;
  std::vector<SummaryEntry> summary;
};

// The whole core-layer metadata: pnode map, segment table, garbage file.
// Serialisable to a checkpoint image and back (crash recovery, E12).
class LogMetadata {
 public:
  explicit LogMetadata(int64_t num_segments = 0);

  int64_t num_segments() const { return static_cast<int64_t>(segments_.size()); }
  int64_t free_segments() const;

  // --- pnodes ---
  Pnode* CreateFile(FileType type);
  Pnode* Find(FileId id);
  const Pnode* Find(FileId id) const;
  bool RemoveFile(FileId id);
  int64_t file_count() const { return static_cast<int64_t>(pnodes_.size()); }

  // --- segment table ---
  // Allocates a free segment, or -1 when full.
  int64_t AllocateSegment(bool continuous);
  void FreeSegment(int64_t segment);
  SegmentInfo& segment(int64_t s) { return segments_[static_cast<size_t>(s)]; }
  const SegmentInfo& segment(int64_t s) const { return segments_[static_cast<size_t>(s)]; }

  // --- garbage file ---
  void AppendGarbage(const GarbageEntry& entry);
  int64_t garbage_entries() const { return static_cast<int64_t>(garbage_.size()); }
  int64_t garbage_bytes() const { return garbage_bytes_; }
  // Cleaning marker protocol: entries [0, marker) belong to the running
  // clean; entries appended later stay for the next one.
  size_t MarkGarbage() const { return garbage_.size(); }
  const std::deque<GarbageEntry>& garbage() const { return garbage_; }
  // Drops entries [0, marker) after a completed clean.
  void TruncateGarbage(size_t marker);

  // --- checkpoint image ---
  std::vector<uint8_t> Serialize() const;
  static std::optional<LogMetadata> Deserialize(const std::vector<uint8_t>& image);

 private:
  std::map<FileId, Pnode> pnodes_;
  std::vector<SegmentInfo> segments_;
  std::deque<GarbageEntry> garbage_;
  int64_t garbage_bytes_ = 0;
  FileId next_file_id_ = 1;
  // Rotating allocation cursor so the log walks the disk.
  int64_t alloc_cursor_ = 0;
};

}  // namespace pegasus::pfs

#endif  // PEGASUS_SRC_PFS_LOG_H_
