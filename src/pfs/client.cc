#include "src/pfs/client.h"

#include <algorithm>
#include <cstring>

namespace pegasus::pfs {

// --- BlockCache ---

BlockCache::BlockCache(int64_t capacity_bytes) : capacity_(capacity_bytes) {}

bool BlockCache::Get(FileId file, int64_t block, std::vector<uint8_t>* out) {
  auto it = entries_.find(Key{file, block});
  if (it == entries_.end()) {
    ++misses_;
    return false;
  }
  ++hits_;
  lru_.erase(it->second.lru_it);
  lru_.push_front(it->first);
  it->second.lru_it = lru_.begin();
  *out = it->second.data;
  return true;
}

void BlockCache::Put(FileId file, int64_t block, std::vector<uint8_t> data) {
  const Key key{file, block};
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    size_ -= static_cast<int64_t>(it->second.data.size());
    lru_.erase(it->second.lru_it);
    entries_.erase(it);
  }
  size_ += static_cast<int64_t>(data.size());
  lru_.push_front(key);
  entries_[key] = Entry{std::move(data), lru_.begin()};
  EvictIfNeeded();
}

void BlockCache::EvictIfNeeded() {
  while (size_ > capacity_ && !lru_.empty()) {
    const Key victim = lru_.back();
    lru_.pop_back();
    auto it = entries_.find(victim);
    size_ -= static_cast<int64_t>(it->second.data.size());
    entries_.erase(it);
    ++evictions_;
  }
}

void BlockCache::InvalidateFile(FileId file) {
  auto it = entries_.begin();
  while (it != entries_.end()) {
    if (it->first.file == file) {
      size_ -= static_cast<int64_t>(it->second.data.size());
      lru_.erase(it->second.lru_it);
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

// --- ClientAgent ---

ClientAgent::ClientAgent(sim::Simulator* sim, PegasusFileServer* server, Options options)
    : sim_(sim), server_(server), options_(options), cache_(options.cache_bytes) {
  server_->SetDurableCallback([this](FileId file, int64_t offset, int64_t length) {
    OnDurable(file, offset, length);
  });
}

int64_t ClientAgent::retained_bytes() const {
  int64_t total = 0;
  for (const auto& [id, r] : retained_) {
    (void)id;
    total += static_cast<int64_t>(r.data.size());
  }
  return total;
}

void ClientAgent::Write(FileId file, int64_t offset, std::vector<uint8_t> data,
                        WriteCallback callback) {
  // Keep the safety copy first, then ship the data.
  const uint64_t id = next_write_id_++;
  Retained r;
  r.file = file;
  r.offset = offset;
  r.data = data;
  retained_[id] = std::move(r);

  // Update the cache write-through so later reads see fresh data.
  const int64_t bs = server_->config().block_size;
  if (server_->FileTypeOf(file) == FileType::kNormal && offset % bs == 0 &&
      static_cast<int64_t>(data.size()) % bs == 0) {
    for (int64_t i = 0; i * bs < static_cast<int64_t>(data.size()); ++i) {
      std::vector<uint8_t> block(data.begin() + i * bs, data.begin() + (i + 1) * bs);
      cache_.Put(file, offset / bs + i, std::move(block));
    }
  }

  sim_->ScheduleAfter(options_.network_delay, [this, id, file, offset, data = std::move(data),
                                               callback = std::move(callback)]() mutable {
    server_->Write(file, offset, std::move(data),
                   [this, id, callback = std::move(callback)](bool accepted) {
                     // The ack travels back over the network, then the
                     // application unblocks.
                     sim_->ScheduleAfter(options_.network_delay,
                                         [this, id, accepted, callback]() {
                                           auto it = retained_.find(id);
                                           if (it != retained_.end()) {
                                             if (accepted) {
                                               it->second.acked = true;
                                             } else {
                                               retained_.erase(it);
                                             }
                                           }
                                           callback(accepted);
                                         });
                   });
  });
}

void ClientAgent::OnDurable(FileId file, int64_t offset, int64_t length) {
  // Durable notifications arrive block by block; a retained copy is released
  // once notifications have covered all of its bytes.
  auto it = retained_.begin();
  while (it != retained_.end()) {
    Retained& r = it->second;
    if (r.file == file) {
      const int64_t r_end = r.offset + static_cast<int64_t>(r.data.size());
      const int64_t overlap = std::min(r_end, offset + length) - std::max(r.offset, offset);
      if (overlap > 0) {
        r.durable_bytes += overlap;
        if (r.durable_bytes >= static_cast<int64_t>(r.data.size())) {
          it = retained_.erase(it);
          continue;
        }
      }
    }
    ++it;
  }
}

void ClientAgent::Read(FileId file, int64_t offset, int64_t len, ReadCallback callback) {
  const bool cacheable = server_->FileTypeOf(file) == FileType::kNormal;
  const int64_t bs = server_->config().block_size;
  // Cache fast path: whole range in cache, block aligned.
  if (cacheable) {
    bool all_cached = true;
    std::vector<uint8_t> out(static_cast<size_t>(len), 0);
    for (int64_t block = offset / bs; block * bs < offset + len && all_cached; ++block) {
      std::vector<uint8_t> data;
      if (!cache_.Get(file, block, &data)) {
        all_cached = false;
        break;
      }
      const int64_t b_start = block * bs;
      const int64_t copy_start = std::max(offset, b_start);
      const int64_t copy_end = std::min(offset + len, b_start + bs);
      if (copy_end > copy_start && static_cast<int64_t>(data.size()) >= copy_end - b_start) {
        std::memcpy(out.data() + (copy_start - offset), data.data() + (copy_start - b_start),
                    static_cast<size_t>(copy_end - copy_start));
      }
    }
    if (all_cached) {
      sim_->ScheduleAfter(0, [out = std::move(out), callback = std::move(callback)]() mutable {
        callback(true, std::move(out));
      });
      return;
    }
  }
  // Miss (or uncacheable): fetch from the server, then populate the cache.
  sim_->ScheduleAfter(options_.network_delay, [this, file, offset, len, cacheable,
                                               callback = std::move(callback)]() {
    server_->Read(file, offset, len,
                  [this, file, offset, len, cacheable, callback](bool ok,
                                                                 std::vector<uint8_t> data) {
                    if (ok && cacheable) {
                      const int64_t bs2 = server_->config().block_size;
                      if (offset % bs2 == 0) {
                        for (int64_t i = 0; (i + 1) * bs2 <= len; ++i) {
                          std::vector<uint8_t> block(data.begin() + i * bs2,
                                                     data.begin() + (i + 1) * bs2);
                          cache_.Put(file, offset / bs2 + i, std::move(block));
                        }
                      }
                    }
                    sim_->ScheduleAfter(options_.network_delay,
                                        [ok, data = std::move(data), callback]() mutable {
                                          callback(ok, std::move(data));
                                        });
                  });
  });
}

void ClientAgent::ResendUnacknowledged(std::function<void()> done) {
  std::vector<uint64_t> ids;
  for (const auto& [id, r] : retained_) {
    (void)r;
    ids.push_back(id);
  }
  if (ids.empty()) {
    sim_->ScheduleAfter(0, std::move(done));
    return;
  }
  auto pending = std::make_shared<size_t>(ids.size());
  auto finish = std::make_shared<std::function<void()>>(std::move(done));
  for (uint64_t id : ids) {
    auto it = retained_.find(id);
    if (it == retained_.end()) {
      if (--*pending == 0) {
        (*finish)();
      }
      continue;
    }
    ++resends_;
    const Retained& r = it->second;
    sim_->ScheduleAfter(options_.network_delay,
                        [this, file = r.file, offset = r.offset, data = r.data, pending,
                         finish]() mutable {
                          server_->Write(file, offset, std::move(data), [pending, finish](bool) {
                            if (--*pending == 0) {
                              (*finish)();
                            }
                          });
                        });
  }
}

void ClientAgent::ClientCrash() { retained_.clear(); }

}  // namespace pegasus::pfs
