#include "src/pfs/stripe.h"

#include <algorithm>
#include <cassert>

namespace pegasus::pfs {

namespace {

// Shared completion state for scatter-gather operations.
struct Gather {
  int pending = 0;
  bool ok = true;
  std::vector<std::vector<uint8_t>> parts;
};

}  // namespace

StripeStore::StripeStore(sim::Simulator* sim, int num_data_disks, int64_t segment_size,
                         DiskGeometry geometry)
    : sim_(sim), segment_size_(segment_size), chunk_size_(segment_size / num_data_disks) {
  assert(segment_size % num_data_disks == 0);
  for (int i = 0; i <= num_data_disks; ++i) {
    const std::string name = i < num_data_disks ? "data" + std::to_string(i) : "parity";
    disks_.push_back(std::make_unique<SimDisk>(sim, name, geometry));
  }
}

int64_t StripeStore::capacity_segments() const {
  return disks_[0]->geometry().capacity_bytes / chunk_size_;
}

int StripeStore::failed_disk_count() const {
  int n = 0;
  for (const auto& d : disks_) {
    n += d->failed() ? 1 : 0;
  }
  return n;
}

void StripeStore::WriteSegment(int64_t segment, std::vector<uint8_t> data,
                               WriteCallback callback) {
  data.resize(static_cast<size_t>(segment_size_), 0);
  const int n = num_data_disks();
  const int64_t disk_offset = segment * chunk_size_;

  std::vector<uint8_t> parity(static_cast<size_t>(chunk_size_), 0);
  auto state = std::make_shared<Gather>();
  state->pending = n + 1;
  auto done = [state, callback = std::move(callback)](bool ok) {
    state->ok = state->ok && ok;
    if (--state->pending == 0) {
      callback(state->ok);
    }
  };

  for (int d = 0; d < n; ++d) {
    std::vector<uint8_t> chunk(data.begin() + d * chunk_size_,
                               data.begin() + (d + 1) * chunk_size_);
    for (int64_t i = 0; i < chunk_size_; ++i) {
      parity[static_cast<size_t>(i)] ^= chunk[static_cast<size_t>(i)];
    }
    disks_[static_cast<size_t>(d)]->Write(disk_offset, std::move(chunk), false, done);
  }
  disks_.back()->Write(disk_offset, std::move(parity), false, done);
}

void StripeStore::ReadSegment(int64_t segment, ReadCallback callback) {
  const int n = num_data_disks();
  auto state = std::make_shared<Gather>();
  state->pending = n;
  state->parts.resize(static_cast<size_t>(n));
  auto finish = [this, state, callback = std::move(callback)]() {
    if (!state->ok) {
      callback(false, {});
      return;
    }
    std::vector<uint8_t> out;
    out.reserve(static_cast<size_t>(segment_size_));
    for (auto& part : state->parts) {
      out.insert(out.end(), part.begin(), part.end());
    }
    callback(true, std::move(out));
  };
  for (int d = 0; d < n; ++d) {
    ReadChunkRange(d, segment * chunk_size_, chunk_size_, false,
                   [state, d, finish](bool ok, std::vector<uint8_t> data) {
                     state->ok = state->ok && ok;
                     state->parts[static_cast<size_t>(d)] = std::move(data);
                     if (--state->pending == 0) {
                       finish();
                     }
                   });
  }
}

void StripeStore::ReadRange(int64_t segment, int64_t offset, int64_t len, bool realtime,
                            ReadCallback callback) {
  assert(offset >= 0 && offset + len <= segment_size_);
  // Which chunks does [offset, offset+len) intersect? Read from each disk
  // exactly the bytes that fall in its chunk.
  const int first = static_cast<int>(offset / chunk_size_);
  const int last = static_cast<int>((offset + len - 1) / chunk_size_);
  auto state = std::make_shared<Gather>();
  state->pending = last - first + 1;
  state->parts.resize(static_cast<size_t>(last - first + 1));
  auto finish = [state, callback = std::move(callback)]() {
    if (!state->ok) {
      callback(false, {});
      return;
    }
    std::vector<uint8_t> out;
    for (auto& part : state->parts) {
      out.insert(out.end(), part.begin(), part.end());
    }
    callback(true, std::move(out));
  };
  for (int d = first; d <= last; ++d) {
    // Intersection of the request with chunk d, in segment coordinates.
    const int64_t chunk_start = static_cast<int64_t>(d) * chunk_size_;
    const int64_t lo = std::max(offset, chunk_start);
    const int64_t hi = std::min(offset + len, chunk_start + chunk_size_);
    const int64_t disk_offset = segment * chunk_size_ + (lo - chunk_start);
    ReadChunkRange(d, disk_offset, hi - lo, realtime,
                   [state, idx = d - first, finish](bool ok, std::vector<uint8_t> data) {
                     state->ok = state->ok && ok;
                     state->parts[static_cast<size_t>(idx)] = std::move(data);
                     if (--state->pending == 0) {
                       finish();
                     }
                   });
  }
}

void StripeStore::ReadChunkRange(int d, int64_t disk_offset, int64_t len, bool realtime,
                                 ReadCallback callback) {
  SimDisk* disk = disks_[static_cast<size_t>(d)].get();
  if (!disk->failed()) {
    disk->Read(disk_offset, len, realtime, std::move(callback));
    return;
  }
  // Single-disk failure: XOR the other data chunks with parity (§5: "a fifth
  // disk ... allows recovery from disk errors").
  const int n = num_data_disks();
  auto state = std::make_shared<Gather>();
  state->pending = n;  // n-1 sibling data disks + parity
  state->parts.clear();
  auto accum = std::make_shared<std::vector<uint8_t>>(static_cast<size_t>(len), 0);
  ++reconstructed_reads_;
  auto done = [state, accum, callback = std::move(callback)](bool ok,
                                                             std::vector<uint8_t> data) {
    state->ok = state->ok && ok;
    if (ok) {
      for (size_t i = 0; i < data.size() && i < accum->size(); ++i) {
        (*accum)[i] ^= data[i];
      }
    }
    if (--state->pending == 0) {
      if (state->ok) {
        callback(true, std::move(*accum));
      } else {
        callback(false, {});
      }
    }
  };
  for (int other = 0; other < n; ++other) {
    if (other == d) {
      continue;
    }
    disks_[static_cast<size_t>(other)]->Read(disk_offset, len, realtime, done);
  }
  disks_.back()->Read(disk_offset, len, realtime, done);
}

void StripeStore::RebuildChunk(int d, int64_t segment, WriteCallback callback) {
  const int total = static_cast<int>(disks_.size());
  const int64_t disk_offset = segment * chunk_size_;
  auto accum = std::make_shared<std::vector<uint8_t>>(static_cast<size_t>(chunk_size_), 0);
  auto state = std::make_shared<Gather>();
  state->pending = total - 1;
  auto done = [this, d, disk_offset, state, accum,
               callback = std::move(callback)](bool ok, std::vector<uint8_t> data) {
    state->ok = state->ok && ok;
    if (ok) {
      for (size_t i = 0; i < data.size() && i < accum->size(); ++i) {
        (*accum)[i] ^= data[i];
      }
    }
    if (--state->pending == 0) {
      if (!state->ok) {
        callback(false);
        return;
      }
      disks_[static_cast<size_t>(d)]->Write(disk_offset, std::move(*accum), false,
                                            std::move(callback));
    }
  };
  for (int other = 0; other < total; ++other) {
    if (other == d) {
      continue;
    }
    disks_[static_cast<size_t>(other)]->Read(disk_offset, chunk_size_, false, done);
  }
}

int64_t StripeStore::total_bytes_written() const {
  int64_t total = 0;
  for (const auto& d : disks_) {
    total += d->bytes_written();
  }
  return total;
}

int64_t StripeStore::total_bytes_read() const {
  int64_t total = 0;
  for (const auto& d : disks_) {
    total += d->bytes_read();
  }
  return total;
}

sim::DurationNs StripeStore::total_seek_time() const {
  sim::DurationNs total = 0;
  for (const auto& d : disks_) {
    total += d->seek_time();
  }
  return total;
}

sim::DurationNs StripeStore::total_transfer_time() const {
  sim::DurationNs total = 0;
  for (const auto& d : disks_) {
    total += d->transfer_time();
  }
  return total;
}

}  // namespace pegasus::pfs
