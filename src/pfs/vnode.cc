#include "src/pfs/vnode.h"

#include <algorithm>

namespace pegasus::pfs {

VnodeLayer::VnodeLayer(PegasusFileServer* server) : server_(server) { root_.is_dir = true; }

std::vector<std::string> VnodeLayer::Split(const std::string& path) {
  std::vector<std::string> parts;
  std::string cur;
  for (char c : path) {
    if (c == '/') {
      if (!cur.empty()) {
        parts.push_back(cur);
        cur.clear();
      }
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) {
    parts.push_back(cur);
  }
  return parts;
}

const VnodeLayer::Node* VnodeLayer::Walk(const std::vector<std::string>& parts) const {
  const Node* node = &root_;
  for (const std::string& part : parts) {
    if (!node->is_dir) {
      return nullptr;
    }
    auto it = node->children.find(part);
    if (it == node->children.end()) {
      return nullptr;
    }
    node = &it->second;
  }
  return node;
}

VnodeLayer::Node* VnodeLayer::WalkParent(const std::vector<std::string>& parts,
                                         bool create_dirs) {
  Node* node = &root_;
  for (size_t i = 0; i + 1 < parts.size(); ++i) {
    if (!node->is_dir) {
      return nullptr;
    }
    auto it = node->children.find(parts[i]);
    if (it == node->children.end()) {
      if (!create_dirs) {
        return nullptr;
      }
      Node dir;
      dir.is_dir = true;
      it = node->children.emplace(parts[i], std::move(dir)).first;
    }
    node = &it->second;
  }
  return node->is_dir ? node : nullptr;
}

bool VnodeLayer::Mkdir(const std::string& path) {
  auto parts = Split(path);
  if (parts.empty()) {
    return false;
  }
  Node* parent = WalkParent(parts, /*create_dirs=*/true);
  if (parent == nullptr || parent->children.count(parts.back()) > 0) {
    return false;
  }
  Node dir;
  dir.is_dir = true;
  parent->children.emplace(parts.back(), std::move(dir));
  return true;
}

bool VnodeLayer::Rmdir(const std::string& path) {
  auto parts = Split(path);
  if (parts.empty()) {
    return false;
  }
  Node* parent = WalkParent(parts, false);
  if (parent == nullptr) {
    return false;
  }
  auto it = parent->children.find(parts.back());
  if (it == parent->children.end() || !it->second.is_dir || !it->second.children.empty()) {
    return false;
  }
  parent->children.erase(it);
  return true;
}

std::optional<VnodeLayer::Fd> VnodeLayer::Create(const std::string& path, FileType type) {
  auto parts = Split(path);
  if (parts.empty()) {
    return std::nullopt;
  }
  Node* parent = WalkParent(parts, /*create_dirs=*/true);
  if (parent == nullptr || parent->children.count(parts.back()) > 0) {
    return std::nullopt;
  }
  const FileId file = server_->CreateFile(type);
  if (file < 0) {
    return std::nullopt;
  }
  Node node;
  node.is_dir = false;
  node.file = file;
  parent->children.emplace(parts.back(), std::move(node));
  const Fd fd = next_fd_++;
  fds_[fd] = OpenFile{file, 0};
  return fd;
}

std::optional<VnodeLayer::Fd> VnodeLayer::Open(const std::string& path) {
  const Node* node = Walk(Split(path));
  if (node == nullptr || node->is_dir) {
    return std::nullopt;
  }
  const Fd fd = next_fd_++;
  fds_[fd] = OpenFile{node->file, 0};
  return fd;
}

bool VnodeLayer::Unlink(const std::string& path) {
  auto parts = Split(path);
  if (parts.empty()) {
    return false;
  }
  Node* parent = WalkParent(parts, false);
  if (parent == nullptr) {
    return false;
  }
  auto it = parent->children.find(parts.back());
  if (it == parent->children.end() || it->second.is_dir) {
    return false;
  }
  server_->Delete(it->second.file);
  parent->children.erase(it);
  return true;
}

bool VnodeLayer::Rename(const std::string& from, const std::string& to) {
  auto from_parts = Split(from);
  auto to_parts = Split(to);
  if (from_parts.empty() || to_parts.empty()) {
    return false;
  }
  Node* from_parent = WalkParent(from_parts, false);
  if (from_parent == nullptr) {
    return false;
  }
  auto it = from_parent->children.find(from_parts.back());
  if (it == from_parent->children.end()) {
    return false;
  }
  Node* to_parent = WalkParent(to_parts, /*create_dirs=*/true);
  if (to_parent == nullptr || to_parent->children.count(to_parts.back()) > 0) {
    return false;
  }
  Node moved = std::move(it->second);
  from_parent->children.erase(it);
  to_parent->children.emplace(to_parts.back(), std::move(moved));
  return true;
}

std::optional<VnodeStat> VnodeLayer::Stat(const std::string& path) const {
  const Node* node = Walk(Split(path));
  if (node == nullptr || node->is_dir) {
    return std::nullopt;
  }
  VnodeStat st;
  st.file = node->file;
  auto type = server_->FileTypeOf(node->file);
  st.type = type.value_or(FileType::kNormal);
  st.size = server_->FileSize(node->file);
  return st;
}

std::optional<std::vector<std::string>> VnodeLayer::ReadDir(const std::string& path) const {
  const Node* node = path.empty() || path == "/" ? &root_ : Walk(Split(path));
  if (node == nullptr || !node->is_dir) {
    return std::nullopt;
  }
  std::vector<std::string> names;
  for (const auto& [name, child] : node->children) {
    (void)child;
    names.push_back(name);
  }
  return names;
}

void VnodeLayer::Write(Fd fd, const std::vector<uint8_t>& data, IoCallback callback) {
  auto it = fds_.find(fd);
  if (it == fds_.end()) {
    callback(false, 0);
    return;
  }
  OpenFile& of = it->second;
  const int64_t len = static_cast<int64_t>(data.size());
  const int64_t at = of.offset;
  of.offset += len;  // Unix semantics: the cursor advances optimistically
  server_->Write(of.file, at, data, [len, callback = std::move(callback)](bool ok) {
    callback(ok, ok ? len : 0);
  });
}

void VnodeLayer::Read(Fd fd, int64_t len, ReadCallback callback) {
  auto it = fds_.find(fd);
  if (it == fds_.end()) {
    callback(false, {});
    return;
  }
  OpenFile& of = it->second;
  const int64_t size = server_->FileSize(of.file);
  const int64_t avail = std::max<int64_t>(0, size - of.offset);
  const int64_t want = std::min(len, avail);
  if (want == 0) {
    // EOF reads succeed with empty data, as read(2) does.
    server_->simulator()->ScheduleAfter(0, [callback = std::move(callback)]() {
      callback(true, {});
    });
    return;
  }
  const int64_t at = of.offset;
  of.offset += want;
  server_->Read(of.file, at, want, std::move(callback));
}

int64_t VnodeLayer::Seek(Fd fd, int64_t offset) {
  auto it = fds_.find(fd);
  if (it == fds_.end() || offset < 0) {
    return -1;
  }
  it->second.offset = offset;
  return offset;
}

int64_t VnodeLayer::Tell(Fd fd) const {
  auto it = fds_.find(fd);
  return it == fds_.end() ? -1 : it->second.offset;
}

bool VnodeLayer::Close(Fd fd) { return fds_.erase(fd) > 0; }

}  // namespace pegasus::pfs
