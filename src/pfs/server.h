// The Pegasus File Server core layer (§5).
//
// "The bottom layer of the Pegasus storage service is called the core layer.
// It manages storage structures on secondary and tertiary storage devices
// and carries out the actual I/O." On top of the striped segment store this
// class implements:
//   * buffered, delayed writes (data becomes durable when its segment goes
//     to disk; the client agent's copy covers the window — §5's reliability
//     argument, exploited for performance via Baker et al.'s observation
//     that 70% of files die within 30 seconds);
//   * segregated normal / continuous-media segments;
//   * the garbage-file cleaner with the concurrent-clean marker protocol,
//     plus a Sprite-style full-scan cleaner as the ablation baseline;
//   * checkpointed metadata and crash recovery (server crash, power failure
//     with and without UPS);
//   * rate-reserved continuous-media streams with realtime disk priority
//     and control-stream indexing for seek / fast-forward / reverse.
#ifndef PEGASUS_SRC_PFS_SERVER_H_
#define PEGASUS_SRC_PFS_SERVER_H_

#include <algorithm>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "src/pfs/disk.h"
#include "src/pfs/log.h"
#include "src/pfs/stripe.h"
#include "src/sim/event_queue.h"
#include "src/sim/stats.h"

namespace pegasus::pfs {

struct PfsConfig {
  int num_data_disks = 4;
  int64_t segment_size = 1 << 20;  // the paper's megabyte segments
  int64_t block_size = 8192;
  DiskGeometry geometry;
  // How long a buffered block may wait before its segment is forced out.
  // The client-agent copy makes this safe (§5); 0 forces write-through.
  sim::DurationNs write_back_delay = sim::Seconds(30);
  // Server write-buffer memory per data class; exceeding it flushes the
  // oldest segment's worth of blocks early.
  int64_t max_buffered_bytes = 4 << 20;
  // Fraction of aggregate disk bandwidth admitted to stream reservations.
  double stream_admission_fraction = 0.8;
};

// Aggregates the delivery quality of a volume's continuous-media reads:
// every play-out path (StreamReader ticks, StorageNode record play-out)
// records how late each chunk left relative to its due time. Cumulative
// counters serve dashboards; TakeWindow() drains the samples recorded since
// the previous call — the per-tick export the QoS monitor derives disk
// budget pressure from, without the server asserting anything itself.
class StreamQualityRecorder {
 public:
  struct Window {
    int64_t chunks = 0;
    int64_t deadline_misses = 0;
    sim::DurationNs max_lateness = 0;  // worst chunk in the window, ns
    double mean_lateness = 0.0;        // over late chunks only, ns
  };

  // Window misses below this lateness are jitter, not pressure: they are
  // excluded from the windowed miss count (the cumulative counters keep the
  // strict > 0 definition). The QoS monitor sets this from its config.
  void set_miss_tolerance(sim::DurationNs tolerance) { miss_tolerance_ = tolerance; }
  sim::DurationNs miss_tolerance() const { return miss_tolerance_; }

  // `lateness` is delivery time minus due time; <= 0 is on time.
  void Record(sim::DurationNs lateness) {
    ++chunks_;
    ++window_.chunks;
    if (lateness > 0) {
      ++deadline_misses_;
    }
    if (lateness > miss_tolerance_) {
      ++window_.deadline_misses;
      window_late_sum_ += static_cast<double>(lateness);
      window_.max_lateness = std::max(window_.max_lateness, lateness);
    }
    // Cumulative aggregates only — this object lives as long as the server
    // and hears every chunk of every stream, so per-sample storage (a
    // sim::Summary) would grow without bound.
    lateness_sum_ += static_cast<double>(lateness);
    max_lateness_ = std::max(max_lateness_, lateness);
  }

  // Drains the current window: deltas since the previous TakeWindow().
  Window TakeWindow() {
    Window out = window_;
    if (out.deadline_misses > 0) {
      out.mean_lateness = window_late_sum_ / static_cast<double>(out.deadline_misses);
    }
    window_ = Window{};
    window_late_sum_ = 0.0;
    return out;
  }

  int64_t chunks() const { return chunks_; }
  int64_t deadline_misses() const { return deadline_misses_; }
  // Mean lateness over every chunk ever recorded, ns (<= 0 when play-out
  // runs ahead of its deadlines on average).
  double mean_lateness() const {
    return chunks_ > 0 ? lateness_sum_ / static_cast<double>(chunks_) : 0.0;
  }
  sim::DurationNs max_lateness() const { return max_lateness_; }

 private:
  int64_t chunks_ = 0;
  int64_t deadline_misses_ = 0;
  sim::DurationNs miss_tolerance_ = 0;
  double lateness_sum_ = 0.0;
  sim::DurationNs max_lateness_ = 0;
  Window window_;
  double window_late_sum_ = 0.0;
};

struct CleanStats {
  int64_t entries_processed = 0;
  int64_t segments_cleaned = 0;
  int64_t segments_examined = 0;  // full-scan baseline examines them all
  int64_t bytes_reclaimed = 0;
  int64_t live_bytes_copied = 0;
  sim::DurationNs wall_time = 0;
};

class PegasusFileServer {
 public:
  using WriteCallback = std::function<void(bool accepted)>;
  using ReadCallback = std::function<void(bool ok, std::vector<uint8_t> data)>;
  using DurableCallback = std::function<void(FileId file, int64_t offset, int64_t length)>;
  using CleanCallback = std::function<void(CleanStats stats)>;

  PegasusFileServer(sim::Simulator* sim, PfsConfig config);
  ~PegasusFileServer();

  PegasusFileServer(const PegasusFileServer&) = delete;
  PegasusFileServer& operator=(const PegasusFileServer&) = delete;

  const PfsConfig& config() const { return config_; }
  StripeStore& store() { return *store_; }
  sim::Simulator* simulator() const { return sim_; }
  bool crashed() const { return crashed_; }

  // --- file operations (the core-layer interface) ---
  FileId CreateFile(FileType type);
  std::optional<FileType> FileTypeOf(FileId file) const;
  int64_t FileSize(FileId file) const;
  // Buffers `data` at `offset`; `callback(true)` fires when the server has
  // the data in memory (the ack that unblocks the client application).
  void Write(FileId file, int64_t offset, std::vector<uint8_t> data, WriteCallback callback);
  void Read(FileId file, int64_t offset, int64_t len, ReadCallback callback);
  // Deletes the file, turning its on-disk blocks into garbage.
  bool Delete(FileId file);
  // Forces every buffered block to disk; callback on completion.
  void Sync(std::function<void()> callback);
  // Writes a metadata checkpoint without flushing data; used to make
  // metadata-only changes (file creation, deletion) durable immediately.
  void Checkpoint(std::function<void()> callback) { WriteCheckpoint(std::move(callback)); }
  // Registered observer learns when written ranges become durable (the
  // client agent uses this to release its safety copies).
  void SetDurableCallback(DurableCallback callback) { durable_cb_ = std::move(callback); }

  // --- continuous-media support ---
  // Admission control against aggregate disk bandwidth. Returns false when
  // the reservation would oversubscribe the store.
  bool ReserveStream(FileId file, int64_t bytes_per_second);
  void ReleaseStream(FileId file);
  int64_t reserved_stream_bps() const { return reserved_bps_; }
  // Aggregate disk bandwidth the admission controller hands out to stream
  // reservations (stream_admission_fraction of the raw disk rate).
  int64_t StreamBudgetBps() const;
  // Unreserved stream bandwidth remaining — the largest reservation the
  // store can still admit.
  int64_t AvailableStreamBps() const { return StreamBudgetBps() - reserved_bps_; }
  // Observer for disk-bandwidth pressure on a reserved stream. `fraction`
  // is the share of its reserved rate the stream can still count on, in
  // (0, 1]; 1.0 announces the pressure cleared.
  using PressureCallback = std::function<void(double fraction)>;
  // At most one callback per reserved file; dropped on ReleaseStream.
  void SetStreamPressureCallback(FileId file, PressureCallback callback);
  void ClearStreamPressureCallback(FileId file);
  // Announces budget pressure (a failing disk, a rebuild eating bandwidth):
  // every reserved stream with a callback hears that only `fraction` of its
  // reservation is deliverable. Returns the number of streams notified.
  int SignalBudgetPressure(double fraction);
  // Control-stream indexing: record that media timestamp `ts` lives at byte
  // `offset` of `file`; look it up later for seek/ff/reverse.
  bool AppendIndexEntry(FileId file, int64_t media_ts, int64_t byte_offset);
  std::optional<int64_t> LookupIndex(FileId file, int64_t media_ts) const;
  // Reads with continuous-media priority at the disks.
  void ReadRealtime(FileId file, int64_t offset, int64_t len, ReadCallback callback);
  // Measured delivery quality of this volume's continuous-media reads.
  // Play-out paths record per-chunk lateness here; the QoS monitor's
  // windowed reads of it close the disk-pressure feedback loop.
  StreamQualityRecorder& stream_quality() { return stream_quality_; }
  const StreamQualityRecorder& stream_quality() const { return stream_quality_; }

  // --- cleaning ---
  // The Pegasus garbage-file cleaner: sorts the garbage file by segment,
  // cleans exactly the dirty segments, truncates the processed entries.
  // Client operations may continue while it runs (marker protocol).
  void Clean(CleanCallback callback);
  // Sprite-LFS-style baseline: examines every live segment's summary to
  // find cleanable ones. Cost scales with store size (the ablation of E10).
  void CleanFullScan(CleanCallback callback);

  // Rebuilds a replaced disk: every live segment's chunk on `disk_index` is
  // recomputed from the surviving disks and written back. Reports the number
  // of segments rebuilt. The disk must be Repair()ed/ReplaceBlank()ed first.
  void RebuildDisk(int disk_index, std::function<void(bool ok, int64_t segments)> callback);

  // --- failure injection (E12) ---
  // Loses all volatile state (open segments, pending requests).
  void Crash();
  // Reloads metadata from the last checkpoint image.
  void Recover(std::function<void(bool ok)> callback);
  // Power failure hits client and server together. With a UPS the server
  // flushes its buffers and halts cleanly; without, volatile state is lost.
  void PowerFailure(bool has_ups, std::function<void()> halted);

  // --- introspection ---
  int64_t garbage_bytes() const { return meta_.garbage_bytes(); }
  int64_t garbage_entries() const { return meta_.garbage_entries(); }
  int64_t free_segments() const { return meta_.free_segments(); }
  int64_t total_segments() const { return meta_.num_segments(); }
  int64_t buffered_bytes() const;
  int64_t segments_written() const { return segments_written_; }
  int64_t partial_segment_padding() const { return partial_padding_; }
  int64_t blocks_accepted() const { return blocks_accepted_; }
  int64_t blocks_written_to_disk() const { return blocks_flushed_; }
  int64_t blocks_died_in_buffer() const { return blocks_died_in_buffer_; }
  int64_t checkpoint_count() const { return checkpoints_; }
  const LogMetadata& metadata() const { return meta_; }

 private:
  // One buffered (not yet durable) block in the write buffer.
  struct OpenBlock {
    FileId file;
    int64_t block;
    std::vector<uint8_t> data;
    sim::TimeNs buffered_at;
  };
  // The delayed-write buffer per data class. Blocks wait out the write-back
  // window here (dying quietly if overwritten or deleted) and are packed
  // into segments when flushed.
  struct OpenSegment {
    std::vector<OpenBlock> blocks;
    int64_t bytes = 0;
    sim::EventId flush_timer;
    bool flush_scheduled = false;
  };

  OpenSegment& open_for(FileType type) {
    return type == FileType::kContinuous ? open_continuous_ : open_normal_;
  }
  // Finds a buffered copy of (file, block), or nullptr.
  OpenBlock* FindOpenBlock(FileId file, int64_t block);
  // Appends to the write buffer; flushes the oldest blocks on memory
  // pressure and arms the write-back timer.
  void BufferBlock(FileType type, FileId file, int64_t block, std::vector<uint8_t> data);
  void ScheduleFlushTimer(FileType type);
  // Flushes blocks of `type`: all of them, or only those older than the
  // write-back window (aged_only).
  void FlushOpen(FileType type, std::function<void()> done, bool aged_only = false);
  // Packs `blocks` into as many segments as needed and writes them.
  void PackAndWrite(FileType type, std::vector<OpenBlock> blocks, std::function<void()> done);
  // Writes one segment's worth of blocks (<= segment_size / block_size).
  void WriteSegmentOf(FileType type, std::vector<OpenBlock> blocks, std::function<void()> done);
  void WriteCheckpoint(std::function<void()> done);
  void StartCheckpoint();
  void MaybeFinishSync();
  void DoRead(FileId file, int64_t offset, int64_t len, bool realtime, ReadCallback callback);
  // Core of both cleaners: relocate live data out of `victims`, free them.
  void CleanSegments(std::vector<int64_t> victims, size_t garbage_marker, CleanStats stats,
                     sim::TimeNs started_at, CleanCallback callback);

  sim::Simulator* sim_;
  PfsConfig config_;
  std::unique_ptr<StripeStore> store_;
  LogMetadata meta_;
  OpenSegment open_normal_;
  OpenSegment open_continuous_;
  DurableCallback durable_cb_;
  // The checkpoint image as most recently written to disk; survives Crash().
  std::vector<uint8_t> durable_meta_image_;
  bool crashed_ = false;
  // Bumped by Crash(): completions from a previous epoch are ignored.
  uint64_t epoch_ = 1;
  int64_t reserved_bps_ = 0;
  StreamQualityRecorder stream_quality_;
  std::map<FileId, int64_t> stream_reservations_;
  std::map<FileId, PressureCallback> stream_pressure_callbacks_;
  int pending_flushes_ = 0;
  std::vector<std::function<void()>> sync_waiters_;
  bool checkpoint_in_flight_ = false;
  bool checkpoint_dirty_ = false;
  std::vector<std::function<void()>> checkpoint_waiters_;

  int64_t segments_written_ = 0;
  int64_t partial_padding_ = 0;
  int64_t blocks_accepted_ = 0;
  int64_t blocks_flushed_ = 0;
  int64_t blocks_died_in_buffer_ = 0;
  int64_t checkpoints_ = 0;
};

// Server-side play-out of a continuous file: every `interval` it reads the
// next `chunk_bytes` with realtime priority and hands them to `on_chunk`.
// Records delivery jitter and deadline misses — the stream-quality metrics.
class StreamReader {
 public:
  using ChunkCallback =
      std::function<void(bool ok, std::vector<uint8_t> data, sim::TimeNs due)>;

  StreamReader(sim::Simulator* sim, PegasusFileServer* server, FileId file, int64_t chunk_bytes,
               sim::DurationNs interval, ChunkCallback on_chunk);

  // Starts play-out at `byte_offset` (use LookupIndex for time seeks).
  void Start(int64_t byte_offset = 0);
  void Stop();
  bool running() const { return running_; }

  int64_t chunks_delivered() const { return chunks_delivered_; }
  int64_t deadline_misses() const { return deadline_misses_; }
  // Lateness of each chunk relative to its due time, ns (<= 0 is on time).
  const sim::Summary& lateness() const { return lateness_; }

 private:
  void Tick();

  sim::Simulator* sim_;
  PegasusFileServer* server_;
  FileId file_;
  int64_t chunk_bytes_;
  sim::DurationNs interval_;
  ChunkCallback on_chunk_;
  bool running_ = false;
  int64_t position_ = 0;
  sim::TimeNs next_due_ = 0;
  int64_t chunks_delivered_ = 0;
  int64_t deadline_misses_ = 0;
  sim::Summary lateness_;
};

}  // namespace pegasus::pfs

#endif  // PEGASUS_SRC_PFS_SERVER_H_
