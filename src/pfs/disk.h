// Simulated disk with a mechanical timing model.
//
// The paper's storage arithmetic (§5) rests on disk mechanics: "the speeds
// of modern disks are such that the overhead of seeks between reading and
// writing whole segments is less than ten per cent, so that a transfer rate
// of at least five megabytes per second per disk is possible". The model
// charges seek (distance-dependent), rotational latency (half a rotation)
// and transfer time, and serves one request at a time from a two-level
// queue: continuous-media ("realtime") requests bypass queued ordinary ones,
// which is how the Pegasus storage service protects stream deadlines.
#ifndef PEGASUS_SRC_PFS_DISK_H_
#define PEGASUS_SRC_PFS_DISK_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/sim/event_queue.h"
#include "src/sim/time.h"

namespace pegasus::pfs {

struct DiskGeometry {
  int64_t capacity_bytes = 2LL << 30;  // 2 GB, generous for 1994
  // Sustained media rate; the paper's disks do ≥ 5 MB/s.
  int64_t transfer_bytes_per_sec = 5 * 1024 * 1024;
  sim::DurationNs min_seek = sim::Milliseconds(1);   // track-to-track
  sim::DurationNs max_seek = sim::Milliseconds(17);  // full stroke
  sim::DurationNs rotation = sim::Milliseconds(11);  // ~5400 rpm
};

class SimDisk {
 public:
  using ReadCallback = std::function<void(bool ok, std::vector<uint8_t> data)>;
  using WriteCallback = std::function<void(bool ok)>;

  SimDisk(sim::Simulator* sim, std::string name, DiskGeometry geometry);

  SimDisk(const SimDisk&) = delete;
  SimDisk& operator=(const SimDisk&) = delete;

  const std::string& name() const { return name_; }
  const DiskGeometry& geometry() const { return geometry_; }

  // Queues a read of `len` bytes at `offset`. Unwritten ranges read as zero.
  // `realtime` requests jump ahead of queued non-realtime ones.
  void Read(int64_t offset, int64_t len, bool realtime, ReadCallback callback);
  // Queues a write. The data is durable once the callback reports ok.
  void Write(int64_t offset, std::vector<uint8_t> data, bool realtime, WriteCallback callback);

  // Failure injection (E12): a failed disk errors every queued and future
  // request until repaired. Repair keeps the stored bytes (a transient
  // controller failure); ReplaceBlank also clears them (a swapped drive).
  void Fail();
  void Repair();
  void ReplaceBlank();
  bool failed() const { return failed_; }

  // --- statistics ---
  int64_t reads() const { return reads_; }
  int64_t writes() const { return writes_; }
  int64_t bytes_read() const { return bytes_read_; }
  int64_t bytes_written() const { return bytes_written_; }
  sim::DurationNs busy_time() const { return busy_time_; }
  sim::DurationNs seek_time() const { return seek_time_; }
  sim::DurationNs transfer_time() const { return transfer_time_; }
  size_t queue_depth() const { return rt_queue_.size() + queue_.size(); }

 private:
  struct Request {
    bool is_write;
    int64_t offset;
    int64_t len;
    std::vector<uint8_t> data;
    ReadCallback read_cb;
    WriteCallback write_cb;
  };

  void Enqueue(Request req, bool realtime);
  void StartNext();
  void Complete(Request req);
  sim::DurationNs PositioningTime(int64_t offset) const;
  // Direct store access used by Complete.
  void StoreWrite(int64_t offset, const std::vector<uint8_t>& data);
  std::vector<uint8_t> StoreRead(int64_t offset, int64_t len) const;

  sim::Simulator* sim_;
  std::string name_;
  DiskGeometry geometry_;
  // Sparse content map: extent start offset -> bytes. Extents never overlap;
  // writes split/merge as needed.
  std::map<int64_t, std::vector<uint8_t>> extents_;
  std::deque<Request> rt_queue_;
  std::deque<Request> queue_;
  bool busy_ = false;
  bool failed_ = false;
  int64_t head_pos_ = 0;

  int64_t reads_ = 0;
  int64_t writes_ = 0;
  int64_t bytes_read_ = 0;
  int64_t bytes_written_ = 0;
  sim::DurationNs busy_time_ = 0;
  sim::DurationNs seek_time_ = 0;
  sim::DurationNs transfer_time_ = 0;
};

}  // namespace pegasus::pfs

#endif  // PEGASUS_SRC_PFS_DISK_H_
