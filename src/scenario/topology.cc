#include "src/scenario/topology.h"

#include <string>

namespace pegasus::scenario {

MetroTopology BuildMetroTopology(core::PegasusSystem& system, const TopologyParams& params) {
  return BuildMetroTopology(system, params, nullptr);
}

MetroTopology BuildMetroTopology(core::PegasusSystem& system, const TopologyParams& params,
                                 sim::ShardGroup* group) {
  MetroTopology topo;
  topo.params = params;
  atm::Network& net = system.network();
  // With a null group the partitioner is inert and this build is
  // line-for-line the classic single-simulator one: same switch/link ids,
  // same BFS tie-breaks, same everything.
  RegionPartitioner part(&net, group);

  // Core tier: enough ports for the mesh, the aggregation fan-out and the
  // storage servers. Ports are handed out in that order.
  const int core_ports = (params.core_switches - 1) + params.agg_per_core +
                         params.storage_per_core;
  std::vector<int> core_next_port(static_cast<size_t>(params.core_switches), 0);
  for (int c = 0; c < params.core_switches; ++c) {
    part.EnterRegion(topo.region_of_core(c));
    topo.cores.push_back(net.AddSwitch("core" + std::to_string(c), core_ports));
  }
  for (int a = 0; a < params.core_switches; ++a) {
    for (int b = a + 1; b < params.core_switches; ++b) {
      net.ConnectSwitches(topo.cores[a], core_next_port[a]++, topo.cores[b], core_next_port[b]++,
                          params.core_mesh_bps, params.core_mesh_prop);
    }
  }

  // Aggregation tier: one trunk up to the owning core, the rest feed edges.
  for (int c = 0; c < params.core_switches; ++c) {
    for (int i = 0; i < params.agg_per_core; ++i) {
      const int a = c * params.agg_per_core + i;
      part.EnterRegion(topo.region_of_agg(a));
      atm::Switch* agg =
          net.AddSwitch("agg" + std::to_string(a), 1 + params.edge_per_agg);
      topo.aggs.push_back(agg);
      net.ConnectSwitches(agg, 0, topo.cores[c], core_next_port[c]++, params.core_agg_bps,
                          params.core_agg_prop);
    }
  }

  // Edge tier: one trunk up, one port per subscriber workstation. Edges
  // live in their agg's region, so the agg-edge wire never crosses shards.
  for (int a = 0; a < static_cast<int>(topo.aggs.size()); ++a) {
    for (int i = 0; i < params.edge_per_agg; ++i) {
      const int e = a * params.edge_per_agg + i;
      part.EnterRegion(topo.region_of_edge(e));
      atm::Switch* edge =
          net.AddSwitch("edge" + std::to_string(e), 1 + params.hosts_per_edge);
      topo.edges.push_back(edge);
      net.ConnectSwitches(edge, 0, topo.aggs[a], 1 + i, params.agg_edge_bps);
    }
  }

  // Subscriber workstations hang off the edges at the tapered uplink rate.
  // A workstation's local switch follows the build region; its devices and
  // host NIC co-locate with that switch.
  for (int e = 0; e < static_cast<int>(topo.edges.size()); ++e) {
    for (int i = 0; i < params.hosts_per_edge; ++i) {
      const int h = e * params.hosts_per_edge + i;
      part.EnterRegion(topo.region_of_edge(e));
      topo.hosts.push_back(system.AddWorkstation("ws" + std::to_string(h), topo.edges[e], 1 + i,
                                                 params.host_uplink_bps));
    }
  }

  // Storage servers sit at the cores, on fat links; their endpoints and
  // play-out engines co-locate with the core switch's shard.
  for (int c = 0; c < params.core_switches; ++c) {
    for (int i = 0; i < params.storage_per_core; ++i) {
      const int s = c * params.storage_per_core + i;
      topo.storage.push_back(system.AddStorageServer(params.storage_config,
                                                     "store" + std::to_string(s), topo.cores[c],
                                                     core_next_port[c]++,
                                                     params.storage_link_bps));
    }
  }
  return topo;
}

}  // namespace pegasus::scenario
