#include "src/scenario/workload.h"

#include <algorithm>
#include <chrono>
#include <string>

namespace pegasus::scenario {

namespace {

// Live sources frame at the classic video cadence; paced frame sizes follow
// the granted rate.
constexpr sim::DurationNs kFrameInterval = sim::Milliseconds(40);

double WallNsSince(std::chrono::steady_clock::time_point t0) {
  return static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                 std::chrono::steady_clock::now() - t0)
                                 .count());
}

// Stream-derivation tags: arbitrary distinct constants XORed into the user
// seed so the per-purpose streams are mutually independent but still a
// pure function of params.seed.
constexpr uint64_t kArrivalStream = 0x9e3779b97f4a7c15ULL;
constexpr uint64_t kMixStream = 0xbf58476d1ce4e5b9ULL;
constexpr uint64_t kHoldingStream = 0x94d049bb133111ebULL;
constexpr uint64_t kFateStream = 0xd6e8feb86659fd93ULL;

}  // namespace

ScenarioEngine::ScenarioEngine(core::PegasusSystem* system, const MetroTopology* topo,
                               WorkloadParams params)
    : system_(system),
      topo_(topo),
      params_(params),
      sim_(system->simulator()),
      arrival_rng_(params.seed ^ kArrivalStream),
      mix_rng_(params.seed ^ kMixStream),
      holding_rng_(params.seed ^ kHoldingStream),
      fate_rng_(params.seed ^ kFateStream) {
  SeedCatalog();
  channels_.resize(static_cast<size_t>(std::max(0, params_.broadcast_channels)));
}

void ScenarioEngine::SeedCatalog() {
  if (params_.vod_weight <= 0.0 || topo_->storage.empty()) {
    return;
  }
  // Storage-major layout: popularity rank i lives on storage node
  // i / files_per_storage, so the head of the Zipf ranking — most of the
  // offered VOD load — lands on the first storage node and makes it hot.
  for (int s = 0; s < static_cast<int>(topo_->storage.size()); ++s) {
    for (int f = 0; f < params_.catalog_files_per_storage; ++f) {
      catalog_files_.push_back(topo_->storage[static_cast<size_t>(s)]->SeedContinuousFile(
          params_.catalog_records_per_file, params_.catalog_record_bytes,
          params_.catalog_record_cadence));
      catalog_storage_.push_back(s);
      catalog_busy_.push_back(false);
    }
  }
}

int ScenarioEngine::ProbeCatalog(int rank) {
  const int n = static_cast<int>(catalog_files_.size());
  for (int k = 0; k < n; ++k) {
    const int idx = (rank + k) % n;
    if (!catalog_busy_[static_cast<size_t>(idx)]) {
      return idx;
    }
  }
  return -1;
}

void ScenarioEngine::ScheduleNextArrival() {
  const double gap_ns = arrival_rng_.Exponential(1e9 / params_.arrivals_per_sec);
  const sim::DurationNs gap = std::max<sim::DurationNs>(1, static_cast<sim::DurationNs>(gap_ns));
  sim_->ScheduleAfter(gap, [this]() { OnArrival(); });
}

void ScenarioEngine::RecordBlock(const core::AdmissionReport& report) {
  ++metrics_.blocked;
  if (report.counter_offer.has_value()) {
    ++metrics_.counter_offers;
  }
  switch (report.failure) {
    case core::AdmitFailure::kNetworkBandwidth:
      ++metrics_.blocked_network;
      break;
    case core::AdmitFailure::kDiskBandwidth:
      ++metrics_.blocked_disk;
      break;
    default:
      ++metrics_.blocked_other;
      break;
  }
}

void ScenarioEngine::OnArrival() {
  if (!running_) {
    return;
  }
  ScheduleNextArrival();
  ++metrics_.arrivals;

  // Every arrival draws in a fixed order so a seed replays exactly; each
  // aspect draws from its own stream so they cannot perturb one another.
  const double type_draw = mix_rng_.UniformDouble();
  const sim::DurationNs holding = std::max<sim::DurationNs>(
      sim::Milliseconds(1),
      static_cast<sim::DurationNs>(holding_rng_.Exponential(params_.mean_holding_sec * 1e9)));
  const bool drives_data = fate_rng_.Bernoulli(params_.data_session_fraction);
  const bool renegotiates = fate_rng_.Bernoulli(params_.renegotiate_fraction);

  const int num_hosts = static_cast<int>(topo_->hosts.size());
  const int num_storage = static_cast<int>(topo_->storage.size());
  double phone_w = num_hosts >= 2 ? params_.phone_weight : 0.0;
  double vod_w = (!catalog_files_.empty() && num_hosts >= 1) ? params_.vod_weight : 0.0;
  double record_w = (num_storage >= 1 && num_hosts >= 1) ? params_.record_weight : 0.0;
  // Broadcast needs a head host plus at least one distinct viewer host. The
  // default weight of 0.0 makes every threshold below identical to the
  // legacy three-way mix, so pre-broadcast fleets replay bit-for-bit.
  double broadcast_w =
      (num_hosts >= 2 && !channels_.empty()) ? params_.broadcast_weight : 0.0;
  const double total_w = phone_w + vod_w + record_w + broadcast_w;
  if (total_w <= 0.0) {
    ++metrics_.blocked;
    ++metrics_.blocked_other;
    return;
  }

  const int64_t id = next_session_id_++;
  SessionType type;
  if (type_draw < phone_w / total_w) {
    type = SessionType::kPhone;
  } else if (type_draw < (phone_w + vod_w) / total_w) {
    type = SessionType::kVod;
  } else if (type_draw < (phone_w + vod_w + record_w) / total_w) {
    type = SessionType::kRecord;
  } else {
    type = SessionType::kBroadcast;
  }

  if (type == SessionType::kBroadcast) {
    // Broadcast viewers ride a shared tree, not their own contract: channel
    // choice is Zipf over the popularity-ranked channel list, the viewer
    // host is drawn uniformly. Both draws come from the mix stream in the
    // same fixed order as the other branches. Viewers never renegotiate —
    // the channel, degraded as one unit, owns its contract.
    const int rank = static_cast<int>(mix_rng_.Zipf(
        static_cast<int64_t>(channels_.size()), params_.broadcast_zipf_theta));
    const int viewer_draw = static_cast<int>(mix_rng_.UniformInt(0, num_hosts - 1));
    OnBroadcastArrival(id, rank, viewer_draw, holding, drives_data);
    return;
  }

  ActiveSession entry;
  entry.type = type;
  entry.drives_data = drives_data;
  core::StreamSpec spec;
  core::StorageNode* storage = nullptr;

  core::StreamBuilder builder = system_->BuildStream();
  switch (type) {
    case SessionType::kPhone: {
      const int a = static_cast<int>(mix_rng_.UniformInt(0, num_hosts - 1));
      int b = static_cast<int>(mix_rng_.UniformInt(0, num_hosts - 2));
      if (b >= a) {
        ++b;
      }
      core::Workstation* src = topo_->hosts[static_cast<size_t>(a)];
      core::Workstation* dst = topo_->hosts[static_cast<size_t>(b)];
      spec = core::StreamSpec::Video(25.0, params_.phone_bps);
      builder.FromEndpoint(src, src->host()).ToEndpoint(dst, dst->host());
      entry.source_ws = src;
      break;
    }
    case SessionType::kVod: {
      const int viewer = static_cast<int>(mix_rng_.UniformInt(0, num_hosts - 1));
      const int rank = static_cast<int>(
          mix_rng_.Zipf(static_cast<int64_t>(catalog_files_.size()), params_.zipf_theta));
      const int idx = ProbeCatalog(rank);
      if (idx < 0) {
        // Whole catalog on the air: the title (and every fallback) is busy.
        ++metrics_.blocked;
        ++metrics_.blocked_content_busy;
        return;
      }
      storage = topo_->storage[static_cast<size_t>(catalog_storage_[static_cast<size_t>(idx)])];
      core::Workstation* dst = topo_->hosts[static_cast<size_t>(viewer)];
      spec = core::StreamSpec::Video(25.0, params_.vod_bps);
      spec.disk_bps = params_.vod_bps / 8;
      builder.FromStorage(storage, catalog_files_[static_cast<size_t>(idx)])
          .ToEndpoint(dst, dst->host());
      entry.catalog_index = idx;
      break;
    }
    case SessionType::kRecord: {
      const int src_idx = static_cast<int>(mix_rng_.UniformInt(0, num_hosts - 1));
      const int st = static_cast<int>(mix_rng_.UniformInt(0, num_storage - 1));
      storage = topo_->storage[static_cast<size_t>(st)];
      core::Workstation* src = topo_->hosts[static_cast<size_t>(src_idx)];
      spec = core::StreamSpec::Video(25.0, params_.record_bps);
      spec.disk_bps = params_.record_bps / 8;
      builder.FromEndpoint(src, src->host()).ToStorage(storage, static_cast<uint32_t>(id));
      entry.source_ws = src;
      break;
    }
    case SessionType::kBroadcast:
      return;  // dispatched above; never reaches the unicast builder path
  }

  builder.WithSpec(spec).WithAdaptation(params_.adaptation);
  const auto wall0 = std::chrono::steady_clock::now();
  core::StreamResult result = builder.Open();
  const double admit_ns = WallNsSince(wall0);
  ++metrics_.admit_calls;
  metrics_.admit_wall_ns_total += admit_ns;
  metrics_.admit_wall_ns_max = std::max(metrics_.admit_wall_ns_max, admit_ns);

  if (!result.report.ok()) {
    RecordBlock(result.report);
    return;
  }

  ++metrics_.admitted;
  entry.session = result.session;
  if (entry.catalog_index >= 0) {
    catalog_busy_[static_cast<size_t>(entry.catalog_index)] = true;
  }
  active_[id] = entry;
  metrics_.peak_concurrent =
      std::max(metrics_.peak_concurrent, static_cast<int64_t>(active_.size()));

  sim_->ScheduleAfter(holding, [this, id]() { OnDeparture(id); });
  if (renegotiates) {
    sim_->ScheduleAfter(holding / 2, [this, id]() { OnRenegotiate(id); });
  }
  if (drives_data) {
    if (type == SessionType::kVod) {
      // Real play-out: the storage node streams the title's records onto
      // the session's first-leg VC at the granted pace (bound by Open).
      storage->StartPlayback(entry.session->file(), entry.session->source_vci());
    } else {
      DriveFrames(id);
    }
  }
}

void ScenarioEngine::OnBroadcastArrival(int64_t id, int channel, int viewer_draw,
                                        sim::DurationNs holding, bool drives_data) {
  BroadcastChannel& ch = channels_[static_cast<size_t>(channel)];
  const int num_hosts = static_cast<int>(topo_->hosts.size());
  const int head_idx = channel % num_hosts;

  // Find a seat: starting at the drawn host, probe linearly past the
  // channel's head-end and hosts already watching this channel. A channel
  // every host is already watching is full — the broadcast analogue of the
  // whole catalog being on the air.
  core::Workstation* viewer = nullptr;
  for (int k = 0; k < num_hosts; ++k) {
    const int h = (viewer_draw + k) % num_hosts;
    if (h == head_idx) {
      continue;
    }
    core::Workstation* ws = topo_->hosts[static_cast<size_t>(h)];
    if (ch.session != nullptr && ch.session->SinkVci(ws->host()).has_value()) {
      continue;
    }
    viewer = ws;
    break;
  }
  if (viewer == nullptr) {
    ++metrics_.blocked;
    ++metrics_.blocked_content_busy;
    return;
  }

  core::MulticastSink sink;
  sink.ws = viewer;
  sink.endpoint = viewer->host();

  if (ch.session == nullptr) {
    // First viewer in: open the delivery tree with this viewer as its only
    // leaf. Whether the channel actually moves cells is the channel's fate,
    // fixed now by its first viewer's draw.
    core::Workstation* head = topo_->hosts[static_cast<size_t>(head_idx)];
    core::StreamBuilder builder = system_->BuildStream();
    builder.FromEndpoint(head, head->host())
        .ToMany({sink})
        .WithSpec(core::StreamSpec::Video(25.0, params_.broadcast_bps))
        .WithAdaptation(params_.adaptation);
    const auto wall0 = std::chrono::steady_clock::now();
    core::StreamResult result = builder.Open();
    const double admit_ns = WallNsSince(wall0);
    ++metrics_.admit_calls;
    metrics_.admit_wall_ns_total += admit_ns;
    metrics_.admit_wall_ns_max = std::max(metrics_.admit_wall_ns_max, admit_ns);
    if (!result.report.ok()) {
      RecordBlock(result.report);
      return;
    }
    ++metrics_.admitted;
    ++metrics_.mcast_trees_opened;
    ch.session = result.session;
    ch.head = head;
    ch.viewers = 0;
    ch.applied_seen = 0;
    ch.first_applied_at = -1;
    ch.last_applied_at = -1;
    ++ch.generation;
    if (drives_data) {
      DriveChannelFrames(channel, ch.generation);
    }
  } else {
    // Channel already on the air: the graft admits and reserves only the
    // branch from the existing tree to this viewer.
    const auto wall0 = std::chrono::steady_clock::now();
    const core::AdmissionReport report = ch.session->AddSink(sink);
    const double admit_ns = WallNsSince(wall0);
    ++metrics_.admit_calls;
    metrics_.admit_wall_ns_total += admit_ns;
    metrics_.admit_wall_ns_max = std::max(metrics_.admit_wall_ns_max, admit_ns);
    if (!report.ok()) {
      RecordBlock(report);
      return;
    }
    ++metrics_.admitted;
    ++metrics_.mcast_grafts;
  }
  ++ch.viewers;
  metrics_.mcast_peak_leaves =
      std::max(metrics_.mcast_peak_leaves, static_cast<int64_t>(ch.session->sink_count()));

  ActiveSession entry;
  entry.session = ch.session;
  entry.type = SessionType::kBroadcast;
  entry.channel = channel;
  entry.viewer_ep = viewer->host();
  active_[id] = entry;
  metrics_.peak_concurrent =
      std::max(metrics_.peak_concurrent, static_cast<int64_t>(active_.size()));
  sim_->ScheduleAfter(holding, [this, id]() { OnDeparture(id); });
}

void ScenarioEngine::DriveChannelFrames(int channel, int64_t generation) {
  BroadcastChannel& ch = channels_[static_cast<size_t>(channel)];
  if (!running_ || ch.session == nullptr || ch.generation != generation) {
    return;
  }
  // One chain per channel, not per viewer: the head-end sends each frame
  // exactly once regardless of how many leaves the tree carries.
  const int64_t bps = ch.session->legs().front().granted_bps;
  const size_t bytes = static_cast<size_t>(std::clamp<int64_t>(
      bps / 8 / 25, 64, static_cast<int64_t>(atm::kAal5MaxSduSize) - 64));
  std::vector<uint8_t> payload(bytes, static_cast<uint8_t>(channel + 1));
  ch.head->host_transport()->Send(ch.session->source_vci(), payload, bps);
  sim_->ScheduleAfter(kFrameInterval,
                      [this, channel, generation]() { DriveChannelFrames(channel, generation); });
}

void ScenarioEngine::DriveFrames(int64_t id) {
  auto it = active_.find(id);
  if (it == active_.end() || !running_) {
    return;
  }
  ActiveSession& s = it->second;
  const int64_t bps = s.session->legs().front().granted_bps;
  // One frame interval's worth of the granted rate, paced onto the wire
  // through the token-bucket shaper.
  const size_t bytes = static_cast<size_t>(std::clamp<int64_t>(
      bps / 8 / 25, 64, static_cast<int64_t>(atm::kAal5MaxSduSize) - 64));
  std::vector<uint8_t> payload(bytes, static_cast<uint8_t>(id));
  s.source_ws->host_transport()->Send(s.session->source_vci(), payload, bps);
  sim_->ScheduleAfter(kFrameInterval, [this, id]() { DriveFrames(id); });
}

void ScenarioEngine::OnRenegotiate(int64_t id) {
  auto it = active_.find(id);
  if (it == active_.end() || !running_) {
    return;
  }
  core::StreamSession* session = it->second.session;
  core::StreamSpec spec = session->contract().granted;
  spec.bandwidth_bps =
      static_cast<int64_t>(static_cast<double>(spec.bandwidth_bps) * params_.renegotiate_scale);
  for (auto& leg : spec.legs) {
    if (leg.bandwidth_bps > 0) {
      leg.bandwidth_bps = static_cast<int64_t>(static_cast<double>(leg.bandwidth_bps) *
                                               params_.renegotiate_scale);
    }
  }
  spec.disk_bps =
      static_cast<int64_t>(static_cast<double>(spec.disk_bps) * params_.renegotiate_scale);
  const core::AdmissionReport report = session->Renegotiate(spec);
  if (report.ok()) {
    ++metrics_.renegotiations;
  } else {
    ++metrics_.renegotiations_refused;
  }
}

void ScenarioEngine::PollAdaptation(ActiveSession* s) {
  // Broadcast viewers share one session; its adaptation history is polled
  // once at channel level (PollChannel), never per viewer.
  if (s->type == SessionType::kBroadcast || !s->session->has_adaptation()) {
    return;
  }
  const int64_t applied = s->session->adaptations_applied();
  if (applied > s->applied_seen) {
    if (s->first_applied_at < 0) {
      s->first_applied_at = sim_->now();
    }
    s->last_applied_at = sim_->now();
    metrics_.adaptation_events += applied - s->applied_seen;
    s->applied_seen = applied;
  }
}

void ScenarioEngine::FinishSession(ActiveSession* s) {
  if (s->first_applied_at < 0) {
    return;
  }
  ++metrics_.adapting_sessions;
  const sim::DurationNs convergence = s->last_applied_at - s->first_applied_at;
  metrics_.convergence_total_ns += convergence;
  metrics_.convergence_max_ns = std::max(metrics_.convergence_max_ns, convergence);
}

void ScenarioEngine::PollChannel(BroadcastChannel* ch) {
  if (ch->session == nullptr || !ch->session->has_adaptation()) {
    return;
  }
  const int64_t applied = ch->session->adaptations_applied();
  if (applied > ch->applied_seen) {
    if (ch->first_applied_at < 0) {
      ch->first_applied_at = sim_->now();
    }
    ch->last_applied_at = sim_->now();
    metrics_.adaptation_events += applied - ch->applied_seen;
    ch->applied_seen = applied;
  }
}

void ScenarioEngine::FinishChannel(BroadcastChannel* ch) {
  if (ch->first_applied_at < 0) {
    return;
  }
  ++metrics_.adapting_sessions;
  const sim::DurationNs convergence = ch->last_applied_at - ch->first_applied_at;
  metrics_.convergence_total_ns += convergence;
  metrics_.convergence_max_ns = std::max(metrics_.convergence_max_ns, convergence);
  ch->first_applied_at = -1;
  ch->last_applied_at = -1;
  ch->applied_seen = 0;
}

void ScenarioEngine::OnDeparture(int64_t id) {
  auto it = active_.find(id);
  if (it == active_.end()) {
    return;
  }
  ActiveSession& s = it->second;
  if (s.type == SessionType::kBroadcast) {
    BroadcastChannel& ch = channels_[static_cast<size_t>(s.channel)];
    if (ch.session != nullptr) {
      if (ch.viewers > 1) {
        if (ch.session->RemoveSink(s.viewer_ep)) {
          ++metrics_.mcast_prunes;
        }
        --ch.viewers;
      } else {
        // Last viewer out: the whole tree comes down with it.
        PollChannel(&ch);
        FinishChannel(&ch);
        ch.session->Close();
        ch.session = nullptr;
        ch.head = nullptr;
        ch.viewers = 0;
      }
    }
    ++metrics_.departed;
    active_.erase(it);
    return;
  }
  PollAdaptation(&s);
  FinishSession(&s);
  if (s.catalog_index >= 0) {
    catalog_busy_[static_cast<size_t>(s.catalog_index)] = false;
  }
  s.session->Close();
  ++metrics_.departed;
  active_.erase(it);
}

void ScenarioEngine::OnMetricsTick() {
  if (!running_) {
    return;
  }
  for (auto& [id, s] : active_) {
    (void)id;
    PollAdaptation(&s);
  }
  for (BroadcastChannel& ch : channels_) {
    PollChannel(&ch);
  }
  sim_->ScheduleAfter(params_.metrics_period, [this]() { OnMetricsTick(); });
}

const FleetMetrics& ScenarioEngine::Run(sim::DurationNs duration) {
  const auto wall0 = std::chrono::steady_clock::now();
  uint64_t cells0 = 0;
  uint64_t drops0 = 0;
  for (const auto& link : system_->network().links()) {
    cells0 += link->cells_sent();
    drops0 += link->cells_dropped();
  }
  int64_t played0 = 0;
  int64_t recorded0 = 0;
  for (core::StorageNode* node : topo_->storage) {
    played0 += node->records_played();
    recorded0 += node->records_recorded();
  }
  const int64_t rej_bw0 = system_->network().admission_rejections_bandwidth();
  const int64_t rej_np0 = system_->network().admission_rejections_no_path();

  if (params_.enable_qos_monitor) {
    system_->EnableQosMonitor(params_.monitor_config);
  }
  running_ = true;
  end_time_ = sim_->now() + duration;
  ScheduleNextArrival();
  sim_->ScheduleAfter(params_.metrics_period, [this]() { OnMetricsTick(); });
  // A sharded network is driven through its shard group: every control
  // event (arrival, departure, tick...) becomes a global sync point with
  // all shards quiesced at that instant, so this code may touch any shard's
  // state exactly as it does single-simulator.
  if (sim::ShardGroup* group = system_->network().shard_group(); group != nullptr) {
    group->RunUntil(end_time_);
  } else {
    sim_->RunUntil(end_time_);
  }
  running_ = false;

  // Final sweep: sessions still on the air contribute their adaptation
  // history even though they never departed.
  for (auto& [id, s] : active_) {
    (void)id;
    PollAdaptation(&s);
    FinishSession(&s);
  }
  for (BroadcastChannel& ch : channels_) {
    PollChannel(&ch);
    FinishChannel(&ch);
  }
  metrics_.concurrent_at_end = static_cast<int64_t>(active_.size());
  metrics_.sim_duration_ns = duration;

  uint64_t cells1 = 0;
  uint64_t drops1 = 0;
  for (const auto& link : system_->network().links()) {
    cells1 += link->cells_sent();
    drops1 += link->cells_dropped();
  }
  metrics_.link_cells_sent = cells1 - cells0;
  metrics_.link_cells_dropped = drops1 - drops0;
  for (core::StorageNode* node : topo_->storage) {
    metrics_.records_played += node->records_played();
    metrics_.records_recorded += node->records_recorded();
  }
  metrics_.records_played -= played0;
  metrics_.records_recorded -= recorded0;
  metrics_.net_rejections_bandwidth =
      system_->network().admission_rejections_bandwidth() - rej_bw0;
  metrics_.net_rejections_no_path = system_->network().admission_rejections_no_path() - rej_np0;
  metrics_.run_wall_seconds = WallNsSince(wall0) / 1e9;
  return metrics_;
}

}  // namespace pegasus::scenario
