#include "src/scenario/metrics.h"

#include <cinttypes>
#include <cstdio>

namespace pegasus::scenario {

namespace {

void Mix(uint64_t* h, uint64_t v) {
  // FNV-1a, folding each value in byte-wise.
  for (int i = 0; i < 8; ++i) {
    *h ^= (v >> (8 * i)) & 0xffu;
    *h *= 1099511628211ull;
  }
}

}  // namespace

uint64_t FleetMetrics::Fingerprint() const {
  uint64_t h = 14695981039346656037ull;
  Mix(&h, static_cast<uint64_t>(arrivals));
  Mix(&h, static_cast<uint64_t>(admitted));
  Mix(&h, static_cast<uint64_t>(blocked));
  Mix(&h, static_cast<uint64_t>(blocked_network));
  Mix(&h, static_cast<uint64_t>(blocked_disk));
  Mix(&h, static_cast<uint64_t>(blocked_content_busy));
  Mix(&h, static_cast<uint64_t>(blocked_other));
  Mix(&h, static_cast<uint64_t>(counter_offers));
  Mix(&h, static_cast<uint64_t>(departed));
  Mix(&h, static_cast<uint64_t>(peak_concurrent));
  Mix(&h, static_cast<uint64_t>(concurrent_at_end));
  Mix(&h, static_cast<uint64_t>(renegotiations));
  Mix(&h, static_cast<uint64_t>(renegotiations_refused));
  Mix(&h, static_cast<uint64_t>(adapting_sessions));
  Mix(&h, static_cast<uint64_t>(adaptation_events));
  Mix(&h, static_cast<uint64_t>(convergence_total_ns));
  Mix(&h, static_cast<uint64_t>(convergence_max_ns));
  Mix(&h, link_cells_sent);
  Mix(&h, link_cells_dropped);
  Mix(&h, static_cast<uint64_t>(records_played));
  Mix(&h, static_cast<uint64_t>(records_recorded));
  Mix(&h, static_cast<uint64_t>(sim_duration_ns));
  return h;
}

std::string FleetMetrics::Summary() const {
  char buf[1024];
  std::snprintf(
      buf, sizeof(buf),
      "arrivals=%" PRId64 " admitted=%" PRId64 " blocked=%" PRId64
      " (net=%" PRId64 " disk=%" PRId64 " busy=%" PRId64 " other=%" PRId64
      ") blocking_p=%.4f\n"
      "departed=%" PRId64 " peak_concurrent=%" PRId64 " at_end=%" PRId64
      " renegotiations=%" PRId64 "/%" PRId64 " refused\n"
      "adaptation: sessions=%" PRId64 " events=%" PRId64
      " mean_convergence=%.1f ms max=%.1f ms\n"
      "data plane: cell_hops=%" PRIu64 " dropped=%" PRIu64 " played=%" PRId64
      " recorded=%" PRId64 "\n"
      "signalling: rejections_bandwidth=%" PRId64 " rejections_no_path=%" PRId64 "\n"
      "broadcast: trees=%" PRId64 " grafts=%" PRId64 " prunes=%" PRId64
      " peak_leaves=%" PRId64 "\n"
      "wall: admit_mean=%.1f us admit_max=%.1f us cells/s=%.3g",
      arrivals, admitted, blocked, blocked_network, blocked_disk, blocked_content_busy,
      blocked_other, blocking_probability(), departed, peak_concurrent, concurrent_at_end,
      renegotiations, renegotiations_refused, adapting_sessions, adaptation_events,
      mean_convergence_ms(), static_cast<double>(convergence_max_ns) / 1e6, link_cells_sent,
      link_cells_dropped, records_played, records_recorded, net_rejections_bandwidth,
      net_rejections_no_path, mcast_trees_opened, mcast_grafts, mcast_prunes,
      mcast_peak_leaves, mean_admit_wall_us(), admit_wall_ns_max / 1e3,
      cells_per_wall_second());
  return buf;
}

}  // namespace pegasus::scenario
