// Metro-scale topology generation.
//
// The paper closes on the ambition of scaling Pegasus beyond a machine room:
// "the system accommodates millions of users" only if the fabric between
// them does. This generator grows the single-backbone picture of Figure 4
// into a metropolitan hierarchy: a full mesh of core switches, each core
// fanning out to aggregation switches, each aggregation switch to edge
// switches, and workstations hanging off the edges — with link capacity
// tapering toward the edge the way a carrier network is provisioned (fat
// core trunks, thinner aggregation links, 155 Mb/s subscriber uplinks).
// Storage servers sit at the cores, next to the bandwidth, so a popular
// title is a trunk hop — not an edge hop — away from most viewers.
//
// Everything is built through the existing PegasusSystem / atm::Network
// factories; the result is an ordinary network that BuildStream() admission
// and the QosMonitor treat like any hand-wired one.
#ifndef PEGASUS_SRC_SCENARIO_TOPOLOGY_H_
#define PEGASUS_SRC_SCENARIO_TOPOLOGY_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/core/system.h"
#include "src/pfs/server.h"
#include "src/sim/shard.h"
#include "src/sim/time.h"

namespace pegasus::scenario {

struct TopologyParams {
  // Tier fan-out. Defaults make a small two-core metro; benches scale them
  // into the hundreds-of-switches regime.
  int core_switches = 2;
  int agg_per_core = 2;
  int edge_per_agg = 2;
  int hosts_per_edge = 4;
  int storage_per_core = 1;

  // Link capacity tapers toward the edge: OC-48-class core trunks down to
  // OC-3 subscriber uplinks.
  int64_t core_mesh_bps = 2'400'000'000;
  int64_t core_agg_bps = 1'200'000'000;
  int64_t agg_edge_bps = 622'000'000;
  int64_t host_uplink_bps = 155'000'000;
  int64_t storage_link_bps = 622'000'000;

  // Trunk propagation delays follow metro geography: light in fibre covers
  // ~200 m/µs and carrier fibre routes run ~2x the geographic distance, so
  // an ~80 km inter-office core span is ~800 µs of route and a ~50 km
  // core-to-aggregation run ~500 µs; intra-building tiers keep the library
  // default. These are also what the sharded runtime (src/sim/shard.h)
  // feeds on — every cross-region wire is a core-mesh or core-agg trunk,
  // and its propagation delay is that channel's conservative lookahead, so
  // realistic trunk lengths directly widen the parallel windows.
  sim::DurationNs core_mesh_prop = sim::Microseconds(800);
  sim::DurationNs core_agg_prop = sim::Microseconds(500);

  pfs::PfsConfig storage_config;

  int num_cores() const { return core_switches; }
  int num_aggs() const { return core_switches * agg_per_core; }
  int num_edges() const { return num_aggs() * edge_per_agg; }
  int num_hosts() const { return num_edges() * hosts_per_edge; }
  int num_storage() const { return core_switches * storage_per_core; }
  // Region partitioning for sharded runs (src/sim/shard.h): one region per
  // core cluster (the core switch plus its storage servers) and one per
  // aggregation subtree (the agg switch, its edges and their workstations).
  // Regions map round-robin onto shards; every cross-region wire is a core
  // trunk, so the trunk propagation delay is the conservative lookahead.
  int num_regions() const { return num_cores() + num_aggs(); }
  // Fabric switches plus the per-workstation local switches (every
  // Workstation owns one).
  int num_switches() const { return num_cores() + num_aggs() + num_edges() + num_hosts(); }

  // Directed links the generated network must hold. Every switch-to-switch
  // connection and every endpoint attachment is a link pair:
  //   core mesh        C*(C-1)   (full mesh, C choose 2 pairs)
  //   core <-> agg     2*A
  //   agg  <-> edge    2*E
  //   edge <-> host switch and host switch <-> host NIC   4*H
  //   core <-> storage endpoint                           2*S
  // The PegasusSystem backbone switch exists but contributes no links.
  size_t expected_network_links() const {
    const size_t c = static_cast<size_t>(num_cores());
    return c * (c - 1) + 2 * static_cast<size_t>(num_aggs()) +
           2 * static_cast<size_t>(num_edges()) + 4 * static_cast<size_t>(num_hosts()) +
           2 * static_cast<size_t>(num_storage());
  }
};

// The generated fabric, in deterministic construction order: aggs are
// grouped by core (agg a belongs to core a / agg_per_core), edges by agg,
// hosts by edge, storage by core.
struct MetroTopology {
  TopologyParams params;
  std::vector<atm::Switch*> cores;
  std::vector<atm::Switch*> aggs;
  std::vector<atm::Switch*> edges;
  std::vector<core::Workstation*> hosts;
  std::vector<core::StorageNode*> storage;

  int edge_of_host(int host) const { return host / params.hosts_per_edge; }
  int agg_of_host(int host) const { return edge_of_host(host) / params.edge_per_agg; }
  int core_of_host(int host) const { return agg_of_host(host) / params.agg_per_core; }

  // Construction-time region of each element (see TopologyParams::num_regions).
  int region_of_core(int core) const { return core; }
  int region_of_agg(int agg) const { return params.core_switches + agg; }
  int region_of_edge(int edge) const { return region_of_agg(edge / params.edge_per_agg); }
  int region_of_host(int host) const { return region_of_edge(edge_of_host(host)); }
};

// Steers sharded construction for any fabric, hand-built or generated: a
// region is a contiguous group of switches that must share a shard, and
// regions map round-robin onto the group's shards. EnterRegion directs the
// network's subsequent AddSwitch calls onto the owning shard; endpoints
// co-locate with their attachment switch and cross-region wires become
// boundary channels automatically (see atm::Network::EnableSharding). With
// a null group every call is a no-op, so one build function serves both
// sharded and classic runs.
class RegionPartitioner {
 public:
  RegionPartitioner(atm::Network* network, sim::ShardGroup* group)
      : network_(network), group_(group) {
    if (group_ != nullptr) {
      network_->EnableSharding(group_);
    }
  }
  ~RegionPartitioner() { network_->SetBuildShard(nullptr); }

  RegionPartitioner(const RegionPartitioner&) = delete;
  RegionPartitioner& operator=(const RegionPartitioner&) = delete;

  // The shard owning `region` (round-robin), or the control simulator when
  // running unsharded.
  sim::Simulator* shard_of(int region) const {
    return group_ == nullptr ? network_->simulator()
                             : group_->shard(region % group_->shard_count());
  }
  // Subsequent switches are built on `region`'s shard.
  void EnterRegion(int region) {
    if (group_ != nullptr) {
      network_->SetBuildShard(shard_of(region));
    }
  }
  // Subsequent switches are built on the control simulator.
  void EnterControl() { network_->SetBuildShard(nullptr); }

 private:
  atm::Network* network_;
  sim::ShardGroup* group_;
};

// Builds the hierarchy into `system`'s network. Call on a freshly
// constructed system: host/storage names are generated from tier indices.
MetroTopology BuildMetroTopology(core::PegasusSystem& system, const TopologyParams& params);

// As above, but partitions the fabric across `group`'s shards by region
// (one shard per worker thread at run time). The construction order — and
// so every switch/link id and BFS tie-break — is identical to the
// unsharded build; a null group degenerates to it exactly.
MetroTopology BuildMetroTopology(core::PegasusSystem& system, const TopologyParams& params,
                                 sim::ShardGroup* group);

}  // namespace pegasus::scenario

#endif  // PEGASUS_SRC_SCENARIO_TOPOLOGY_H_
