// Session-churn workload engine for metro-scale scenarios.
//
// Drives a generated metro fabric the way a city drives it: calls arrive as
// a Poisson process, each opening a cross-layer StreamBuilder contract —
// phone calls between workstations, video-on-demand play-outs from the
// storage tier, recorder streams into it — holding it for an exponential
// time, perhaps renegotiating mid-life, then departing. Content popularity
// is Zipf-distributed over the catalog, so a handful of titles (and the
// storage node shelving them) take most of the load.
//
// Everything stochastic draws from per-purpose seeded sim::Rng streams —
// arrival spacing, session mix/placement, holding times and per-session
// fates each have their own stream, so changing (say) the data-session
// fraction cannot shift which sessions arrive or where they go — and every
// schedule lives on the simulator clock, so a (topology, params, duration)
// triple replays bit-for-bit: identical seeds produce identical
// FleetMetrics fingerprints. The only wall-clock observations
// (admission-call latency, sustained cells/s) are kept outside the
// fingerprint.
//
// When the system's network carries a sim::ShardGroup, Run() drives the
// group instead of the bare simulator: churn control stays on the control
// simulator (global sync points) while the shards advance the data plane
// in parallel windows. Metrics are bit-identical either way.
#ifndef PEGASUS_SRC_SCENARIO_WORKLOAD_H_
#define PEGASUS_SRC_SCENARIO_WORKLOAD_H_

#include <cstdint>
#include <map>
#include <vector>

#include "src/core/qos_monitor.h"
#include "src/core/stream.h"
#include "src/core/system.h"
#include "src/pfs/server.h"
#include "src/scenario/metrics.h"
#include "src/scenario/topology.h"
#include "src/sim/random.h"

namespace pegasus::scenario {

struct WorkloadParams {
  uint64_t seed = 1;

  // Session churn: Poisson arrivals, exponential holding times.
  double arrivals_per_sec = 20.0;
  double mean_holding_sec = 5.0;

  // Session mix (normalised internally).
  double phone_weight = 0.55;
  double vod_weight = 0.35;
  double record_weight = 0.10;
  int64_t phone_bps = 2'000'000;
  int64_t vod_bps = 4'000'000;
  int64_t record_bps = 3'000'000;

  // Content popularity: Zipf rank over the whole catalog, laid out
  // storage-major so the hottest titles pile onto the first storage node.
  // The PFS reservation ledger and the play-out engine are per-file, so a
  // title can be on the air once; a viewer finding it busy probes down the
  // popularity ranking and blocks only when every title is playing.
  double zipf_theta = 0.8;
  int catalog_files_per_storage = 32;
  int catalog_records_per_file = 64;
  int catalog_record_bytes = 4096;
  sim::DurationNs catalog_record_cadence = sim::Milliseconds(40);

  // Broadcast head-end tier: Zipf-popular live channels viewers join and
  // leave. Each channel is ONE multicast tree sourced at a deterministic
  // edge host; a viewer arrival grafts a leaf (StreamSession::AddSink), a
  // departure prunes it, and the last viewer's departure closes the tree.
  // Weight 0.0 (the default) draws nothing from any RNG stream, keeping
  // legacy mixes bit-identical.
  double broadcast_weight = 0.0;
  int64_t broadcast_bps = 3'000'000;
  int broadcast_channels = 8;
  double broadcast_zipf_theta = 0.8;

  // Fraction of admitted sessions that actually move cells (live frame
  // sources / real play-outs) rather than holding reservations only; keeps
  // fleet-sized runs tractable while still exercising the data plane.
  double data_session_fraction = 0.05;
  // Fraction of sessions that renegotiate their contract down mid-life.
  double renegotiate_fraction = 0.10;
  double renegotiate_scale = 0.6;

  core::AdaptationPolicy adaptation;
  sim::DurationNs metrics_period = sim::Milliseconds(100);

  // Closed-loop monitoring over the whole fabric; adaptation convergence
  // metrics need it (nothing else degrades fleet sessions).
  bool enable_qos_monitor = false;
  core::QosMonitor::Config monitor_config;

  WorkloadParams() { adaptation.floor = 0.25; }
};

class ScenarioEngine {
 public:
  // `system` and `topo` must outlive the engine. Seeds the VOD catalog on
  // construction (before any churn) when the mix plays video on demand.
  ScenarioEngine(core::PegasusSystem* system, const MetroTopology* topo, WorkloadParams params);

  ScenarioEngine(const ScenarioEngine&) = delete;
  ScenarioEngine& operator=(const ScenarioEngine&) = delete;

  // Drives churn for `duration` of simulated time and finalises the
  // metrics. One shot: call once per engine.
  const FleetMetrics& Run(sim::DurationNs duration);

  const FleetMetrics& metrics() const { return metrics_; }
  int64_t active_sessions() const { return static_cast<int64_t>(active_.size()); }

 private:
  enum class SessionType { kPhone, kVod, kRecord, kBroadcast };

  struct ActiveSession {
    core::StreamSession* session = nullptr;
    SessionType type = SessionType::kPhone;
    core::Workstation* source_ws = nullptr;  // frame-driving end (phone/record)
    int catalog_index = -1;                  // busy flag to drop on departure
    int channel = -1;                        // broadcast: channel this viewer watches
    atm::Endpoint* viewer_ep = nullptr;      // broadcast: this viewer's leaf endpoint
    bool drives_data = false;
    // Adaptation polling state: applied-counter watermark and the sim times
    // the first/last applied change was observed at.
    int64_t applied_seen = 0;
    sim::TimeNs first_applied_at = -1;
    sim::TimeNs last_applied_at = -1;
  };

  // One live broadcast channel: a single multicast tree every viewer of the
  // channel shares. The first viewer's arrival opens the tree with itself
  // as the only leaf; later viewers graft (AddSink) and prune (RemoveSink)
  // leaves at runtime; the last viewer's departure closes the tree. The
  // channel — not any viewer — owns frame driving and adaptation history.
  struct BroadcastChannel {
    core::StreamSession* session = nullptr;
    core::Workstation* head = nullptr;
    int viewers = 0;
    int64_t generation = 0;  // guards stale frame-driving chains across reopen
    int64_t applied_seen = 0;
    sim::TimeNs first_applied_at = -1;
    sim::TimeNs last_applied_at = -1;
  };

  void SeedCatalog();
  void ScheduleNextArrival();
  void OnArrival();
  void OnBroadcastArrival(int64_t id, int channel, int viewer_draw, sim::DurationNs holding,
                          bool drives_data);
  void OnDeparture(int64_t id);
  void OnRenegotiate(int64_t id);
  void DriveFrames(int64_t id);
  void DriveChannelFrames(int channel, int64_t generation);
  void OnMetricsTick();
  void PollAdaptation(ActiveSession* s);
  void FinishSession(ActiveSession* s);
  void PollChannel(BroadcastChannel* ch);
  void FinishChannel(BroadcastChannel* ch);
  void RecordBlock(const core::AdmissionReport& report);
  // First non-busy catalog index at or below rank `rank` in popularity
  // order (wrapping), or -1 when the whole catalog is on the air.
  int ProbeCatalog(int rank);

  core::PegasusSystem* system_;
  const MetroTopology* topo_;
  WorkloadParams params_;
  sim::Simulator* sim_;
  // Independent per-purpose streams, all derived from params.seed: arrival
  // spacing, session mix + placement + content choice, holding times, and
  // per-session fates (drives data / renegotiates).
  sim::Rng arrival_rng_;
  sim::Rng mix_rng_;
  sim::Rng holding_rng_;
  sim::Rng fate_rng_;

  // Catalog, popularity-ranked: index i is the i-th most popular title.
  std::vector<pfs::FileId> catalog_files_;
  std::vector<int> catalog_storage_;
  std::vector<bool> catalog_busy_;

  std::vector<BroadcastChannel> channels_;
  std::map<int64_t, ActiveSession> active_;
  int64_t next_session_id_ = 1;
  sim::TimeNs end_time_ = 0;
  bool running_ = false;
  FleetMetrics metrics_;
};

}  // namespace pegasus::scenario

#endif  // PEGASUS_SRC_SCENARIO_WORKLOAD_H_
