// Fleet-level metrics for metro-scale scenario runs.
//
// Everything an operator would watch across thousands of sessions: how many
// calls arrived, how many the cross-layer admission took, which layer turned
// the rest away, how long adaptation took to settle after the fabric pushed
// back, and how much cell traffic the run actually moved.
//
// The struct is split along a determinism line. Counters derived from the
// simulation (arrivals, admissions, blocking, cell counts, sim-time
// convergence) are reproducible bit-for-bit from the workload seed and feed
// Fingerprint(); wall-clock observations (admission-call latency, sustained
// cells per wall second) measure the simulator itself and are excluded.
#ifndef PEGASUS_SRC_SCENARIO_METRICS_H_
#define PEGASUS_SRC_SCENARIO_METRICS_H_

#include <cstdint>
#include <string>

#include "src/sim/event_queue.h"

namespace pegasus::scenario {

struct FleetMetrics {
  // --- deterministic (seed-reproducible) ---
  int64_t arrivals = 0;
  int64_t admitted = 0;
  int64_t blocked = 0;
  int64_t blocked_network = 0;       // a link on the path lacked capacity
  int64_t blocked_disk = 0;          // PFS stream budget exhausted
  int64_t blocked_content_busy = 0;  // every probed catalog title in play
  int64_t blocked_other = 0;
  int64_t counter_offers = 0;  // rejections that carried a feasible counter
  int64_t departed = 0;
  int64_t peak_concurrent = 0;
  int64_t concurrent_at_end = 0;
  int64_t renegotiations = 0;
  int64_t renegotiations_refused = 0;
  // Sessions whose adaptation plane applied at least one joint
  // renegotiation, and the decisions they applied in total.
  int64_t adapting_sessions = 0;
  int64_t adaptation_events = 0;
  // Convergence: per adapting session, sim time from its first applied
  // adaptation to its last (0 = settled in one move), observed at the
  // metrics-poll granularity. Summed / maxed over adapting sessions.
  sim::DurationNs convergence_total_ns = 0;
  sim::DurationNs convergence_max_ns = 0;
  // Data-plane volume over the run: cells put on links (every hop counts)
  // and cells tail-dropped.
  uint64_t link_cells_sent = 0;
  uint64_t link_cells_dropped = 0;
  int64_t records_played = 0;
  int64_t records_recorded = 0;
  sim::DurationNs sim_duration_ns = 0;
  // Network-signalling admission refusals over the run, split by cause
  // (Network::admission_rejections_*). Deterministic, but EXCLUDED from
  // Fingerprint: the fingerprint layout is frozen at the BENCH_06 baseline
  // so fleet fingerprints stay byte-comparable across PRs.
  int64_t net_rejections_bandwidth = 0;
  int64_t net_rejections_no_path = 0;
  // One-to-many (broadcast) plane over the run: delivery trees opened,
  // viewer joins grafted onto / leaves pruned from live trees, and the
  // largest leaf set any one tree reached. Deterministic, but EXCLUDED
  // from Fingerprint like the net_rejections_* split — the fingerprint
  // layout is frozen at the BENCH_06 baseline.
  int64_t mcast_trees_opened = 0;
  int64_t mcast_grafts = 0;
  int64_t mcast_prunes = 0;
  int64_t mcast_peak_leaves = 0;

  // --- wall-clock (machine-dependent, excluded from Fingerprint) ---
  int64_t admit_calls = 0;       // Open() invocations timed
  double admit_wall_ns_total = 0.0;
  double admit_wall_ns_max = 0.0;
  double run_wall_seconds = 0.0;

  double blocking_probability() const {
    return arrivals > 0 ? static_cast<double>(blocked) / static_cast<double>(arrivals) : 0.0;
  }
  double mean_admit_wall_us() const {
    return admit_calls > 0 ? admit_wall_ns_total / static_cast<double>(admit_calls) / 1e3 : 0.0;
  }
  double mean_convergence_ms() const {
    return adapting_sessions > 0 ? static_cast<double>(convergence_total_ns) /
                                       static_cast<double>(adapting_sessions) / 1e6
                                 : 0.0;
  }
  // Simulated cell-hops pushed per wall-clock second: the engine's
  // sustained data-plane throughput.
  double cells_per_wall_second() const {
    return run_wall_seconds > 0 ? static_cast<double>(link_cells_sent) / run_wall_seconds : 0.0;
  }

  // FNV-1a over every deterministic field, in declaration order. Two runs
  // from the same seed and parameters must agree exactly.
  uint64_t Fingerprint() const;

  // One-per-line human summary (deterministic fields first).
  std::string Summary() const;
};

}  // namespace pegasus::scenario

#endif  // PEGASUS_SRC_SCENARIO_METRICS_H_
