#include "src/naming/name_space.h"

namespace pegasus::naming {

NameSpace::NameSpace(std::string name) : name_(std::move(name)), root_(std::make_unique<Node>()) {}

NameSpace::~NameSpace() = default;

std::vector<std::string> NameSpace::SplitPath(const std::string& path) {
  std::vector<std::string> parts;
  std::string cur;
  for (char c : path) {
    if (c == '/') {
      if (!cur.empty()) {
        parts.push_back(cur);
        cur.clear();
      }
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) {
    parts.push_back(cur);
  }
  return parts;
}

NameSpace::Node* NameSpace::WalkToParent(const std::vector<std::string>& components, bool create) {
  Node* node = root_.get();
  for (size_t i = 0; i + 1 < components.size(); ++i) {
    if (node->kind != Node::Kind::kDirectory) {
      return nullptr;
    }
    auto it = node->children.find(components[i]);
    if (it == node->children.end()) {
      if (!create) {
        return nullptr;
      }
      auto child = std::make_unique<Node>();
      it = node->children.emplace(components[i], std::move(child)).first;
    }
    node = it->second.get();
  }
  return node;
}

bool NameSpace::Bind(const std::string& path, ObjectHandle handle) {
  auto components = SplitPath(path);
  if (components.empty()) {
    return false;
  }
  Node* parent = WalkToParent(components, /*create=*/true);
  if (parent == nullptr || parent->kind != Node::Kind::kDirectory) {
    return false;
  }
  auto& slot = parent->children[components.back()];
  if (slot != nullptr && slot->kind == Node::Kind::kDirectory && !slot->children.empty()) {
    return false;  // refusing to shadow a populated directory
  }
  slot = std::make_unique<Node>();
  slot->kind = Node::Kind::kLeaf;
  slot->handle = std::move(handle);
  return true;
}

bool NameSpace::Unbind(const std::string& path) {
  auto components = SplitPath(path);
  if (components.empty()) {
    return false;
  }
  Node* parent = WalkToParent(components, /*create=*/false);
  if (parent == nullptr || parent->kind != Node::Kind::kDirectory) {
    return false;
  }
  auto it = parent->children.find(components.back());
  if (it == parent->children.end() || it->second->kind != Node::Kind::kLeaf) {
    return false;
  }
  parent->children.erase(it);
  return true;
}

bool NameSpace::Mount(const std::string& path, std::shared_ptr<NameSpaceConnection> connection) {
  auto components = SplitPath(path);
  if (components.empty() || connection == nullptr) {
    return false;
  }
  Node* parent = WalkToParent(components, /*create=*/true);
  if (parent == nullptr || parent->kind != Node::Kind::kDirectory) {
    return false;
  }
  auto& slot = parent->children[components.back()];
  if (slot != nullptr && slot->kind == Node::Kind::kDirectory && !slot->children.empty()) {
    return false;
  }
  slot = std::make_unique<Node>();
  slot->kind = Node::Kind::kMount;
  slot->mount = std::move(connection);
  return true;
}

bool NameSpace::Unmount(const std::string& path) {
  auto components = SplitPath(path);
  if (components.empty()) {
    return false;
  }
  Node* parent = WalkToParent(components, /*create=*/false);
  if (parent == nullptr) {
    return false;
  }
  auto it = parent->children.find(components.back());
  if (it == parent->children.end() || it->second->kind != Node::Kind::kMount) {
    return false;
  }
  parent->children.erase(it);
  return true;
}

void NameSpace::Resolve(const std::string& path, ResolveCallback callback) {
  ++lookups_;
  auto components = SplitPath(path);
  Node* node = root_.get();
  int steps = 0;
  for (size_t i = 0; i < components.size(); ++i) {
    if (node->kind != Node::Kind::kDirectory) {
      break;
    }
    auto it = node->children.find(components[i]);
    if (it == node->children.end()) {
      last_steps_ = steps;
      steps_.Add(steps);
      callback(std::nullopt);
      return;
    }
    ++steps;
    Node* child = it->second.get();
    if (child->kind == Node::Kind::kLeaf) {
      last_steps_ = steps;
      steps_.Add(steps);
      if (i + 1 == components.size()) {
        callback(child->handle);
      } else {
        callback(std::nullopt);  // path continues below a leaf
      }
      return;
    }
    if (child->kind == Node::Kind::kMount) {
      last_steps_ = steps;
      steps_.Add(steps);
      // Reassemble the remainder and delegate through the connection.
      std::string rest;
      for (size_t j = i + 1; j < components.size(); ++j) {
        if (!rest.empty()) {
          rest += '/';
        }
        rest += components[j];
      }
      child->mount->Lookup(rest, std::move(callback));
      return;
    }
    node = child;
  }
  last_steps_ = steps;
  steps_.Add(steps);
  callback(std::nullopt);  // empty path or resolved to a directory
}

std::optional<ObjectHandle> NameSpace::ResolveLocal(const std::string& path) {
  std::optional<ObjectHandle> out;
  bool completed = false;
  Resolve(path, [&](std::optional<ObjectHandle> handle) {
    out = std::move(handle);
    completed = true;
  });
  if (!completed) {
    return std::nullopt;  // crossed a mount that answers asynchronously
  }
  return out;
}

std::unique_ptr<NameSpace::Node> NameSpace::CloneNode(const Node& node) {
  auto out = std::make_unique<Node>();
  out->kind = node.kind;
  out->handle = node.handle;
  out->mount = node.mount;  // mounts are shared with the child
  for (const auto& [name, child] : node.children) {
    out->children.emplace(name, CloneNode(*child));
  }
  return out;
}

std::unique_ptr<NameSpace> NameSpace::Fork(const std::string& child_name) const {
  auto child = std::make_unique<NameSpace>(child_name);
  child->root_ = CloneNode(*root_);
  return child;
}

LocalNameSpaceConnection::LocalNameSpaceConnection(NameSpace* target) : target_(target) {}

void LocalNameSpaceConnection::Lookup(const std::string& relative_path,
                                      ResolveCallback callback) {
  target_->Resolve(relative_path, std::move(callback));
}

RemoteNameSpaceConnection::RemoteNameSpaceConnection(RpcClient* client) : client_(client) {}

void RemoteNameSpaceConnection::Lookup(const std::string& relative_path,
                                       ResolveCallback callback) {
  RpcClient* client = client_;
  client->Lookup(relative_path, [client, relative_path,
                                 callback = std::move(callback)](bool found) {
    if (!found) {
      callback(std::nullopt);
      return;
    }
    // The handle's maillon resolver builds the remote invocation path on
    // first use — the connection exists, so resolution is cheap.
    ObjectHandle handle(ObjectRef{0}, [client, relative_path](ObjectRef) {
      return std::make_shared<RemotePath>(client, relative_path);
    });
    callback(std::move(handle));
  });
}

}  // namespace pegasus::naming
