#include "src/naming/rpc.h"

#include "src/atm/wire.h"

namespace pegasus::naming {

namespace {

// Message types on the RPC VC pair.
constexpr uint8_t kMsgInvoke = 1;
constexpr uint8_t kMsgReply = 2;
constexpr uint8_t kMsgLookup = 3;
constexpr uint8_t kMsgLookupReply = 4;

}  // namespace

RpcServer::RpcServer(sim::Simulator* sim, atm::MessageTransport* transport,
                     sim::DurationNs service_cost)
    : sim_(sim), transport_(transport), service_cost_(service_cost) {}

void RpcServer::Serve(atm::Vci request_vci, atm::Vci reply_vci) {
  reply_vci_ = reply_vci;
  transport_->SetHandler(request_vci,
                         [this](atm::Vci, std::vector<uint8_t> message, sim::TimeNs) {
                           OnRequest(message);
                         });
}

void RpcServer::ExportObject(const std::string& name, Invocable* object) {
  objects_[name] = object;
}

bool RpcServer::UnexportObject(const std::string& name) { return objects_.erase(name) > 0; }

void RpcServer::OnRequest(const std::vector<uint8_t>& message) {
  atm::WireReader reader(message);
  const uint8_t type = reader.GetU8();
  const uint64_t call_id = reader.GetU64();
  if (type == kMsgLookup) {
    const std::string name = reader.GetString();
    if (!reader.ok()) {
      return;
    }
    ++lookup_calls_;
    atm::WireWriter reply;
    reply.PutU8(kMsgLookupReply);
    reply.PutU64(call_id);
    reply.PutU8(objects_.count(name) > 0 ? 1 : 0);
    sim_->ScheduleAfter(service_cost_, [this, data = reply.Take()]() {
      transport_->Send(reply_vci_, data);
    });
    return;
  }
  if (type != kMsgInvoke) {
    return;
  }
  const std::string object_name = reader.GetString();
  const std::string method = reader.GetString();
  const std::vector<uint8_t> args = reader.GetBytes();
  if (!reader.ok()) {
    return;
  }
  // The dispatch itself costs server CPU; then the object body runs.
  sim_->ScheduleAfter(service_cost_, [this, call_id, object_name, method, args]() {
    ++calls_served_;
    InvokeStatus status = InvokeStatus::kNoSuchObject;
    std::vector<uint8_t> result;
    auto it = objects_.find(object_name);
    if (it != objects_.end()) {
      status = it->second->Invoke(method, args, &result);
    }
    atm::WireWriter reply;
    reply.PutU8(kMsgReply);
    reply.PutU64(call_id);
    reply.PutU8(static_cast<uint8_t>(status));
    reply.PutBytes(result);
    transport_->Send(reply_vci_, reply.Take());
  });
}

RpcClient::RpcClient(sim::Simulator* sim, atm::MessageTransport* transport, atm::Vci send_vci,
                     atm::Vci receive_vci)
    : sim_(sim), transport_(transport), send_vci_(send_vci) {
  transport_->SetHandler(receive_vci, [this](atm::Vci, std::vector<uint8_t> message, sim::TimeNs) {
    OnReply(message);
  });
}

void RpcClient::Call(const std::string& object_name, const std::string& method,
                     const std::vector<uint8_t>& args, InvokeCallback callback) {
  const uint64_t id = next_call_id_++;
  Pending pending;
  pending.invoke_cb = std::move(callback);
  pending.sent_at = sim_->now();
  pending_[id] = std::move(pending);
  ++calls_sent_;

  atm::WireWriter w;
  w.PutU8(kMsgInvoke);
  w.PutU64(id);
  w.PutString(object_name);
  w.PutString(method);
  w.PutBytes(args);
  transport_->Send(send_vci_, w.Take());
}

void RpcClient::Lookup(const std::string& name, std::function<void(bool)> callback) {
  const uint64_t id = next_call_id_++;
  Pending pending;
  pending.lookup_cb = std::move(callback);
  pending.sent_at = sim_->now();
  pending_[id] = std::move(pending);

  atm::WireWriter w;
  w.PutU8(kMsgLookup);
  w.PutU64(id);
  w.PutString(name);
  transport_->Send(send_vci_, w.Take());
}

void RpcClient::OnReply(const std::vector<uint8_t>& message) {
  atm::WireReader reader(message);
  const uint8_t type = reader.GetU8();
  const uint64_t id = reader.GetU64();
  auto it = pending_.find(id);
  if (it == pending_.end()) {
    return;
  }
  Pending pending = std::move(it->second);
  pending_.erase(it);
  latency_.Add(static_cast<double>(sim_->now() - pending.sent_at));
  if (type == kMsgLookupReply) {
    const bool found = reader.GetU8() != 0;
    if (pending.lookup_cb && reader.ok()) {
      pending.lookup_cb(found);
    }
    return;
  }
  if (type != kMsgReply) {
    return;
  }
  const auto status = static_cast<InvokeStatus>(reader.GetU8());
  std::vector<uint8_t> result = reader.GetBytes();
  if (!reader.ok()) {
    if (pending.invoke_cb) {
      pending.invoke_cb(InvokeStatus::kTransportError, {});
    }
    return;
  }
  ++calls_completed_;
  if (pending.invoke_cb) {
    pending.invoke_cb(status, std::move(result));
  }
}

RemotePath::RemotePath(RpcClient* client, std::string object_name)
    : client_(client), object_name_(std::move(object_name)) {}

void RemotePath::Call(const std::string& method, const std::vector<uint8_t>& args,
                      InvokeCallback callback) {
  client_->Call(object_name_, method, args, std::move(callback));
}

}  // namespace pegasus::naming
