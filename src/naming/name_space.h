// Per-process name spaces (§4).
//
// Pegasus deliberately rejects a singly-rooted global name space: "the root
// of the naming tree can be the most local object and longer path names
// generally name objects further away". Every process starts with a built-in
// name space, usually inherited from its parent and partly shared. The name
// space is a local tree of bindings plus *mounted* name spaces: subtrees
// whose resolution is delegated through a connection to another process —
// possibly across the network. Sharing is achieved by convention (e.g. a
// subtree named /global), not by a universal root.
#ifndef PEGASUS_SRC_NAMING_NAME_SPACE_H_
#define PEGASUS_SRC_NAMING_NAME_SPACE_H_

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/naming/object.h"
#include "src/naming/rpc.h"
#include "src/sim/stats.h"

namespace pegasus::naming {

using ResolveCallback = std::function<void(std::optional<ObjectHandle>)>;

// A connection through which names below a mount point are resolved — the
// paper's "local object with a connection to a name space in another
// process".
class NameSpaceConnection {
 public:
  virtual ~NameSpaceConnection() = default;
  virtual void Lookup(const std::string& relative_path, ResolveCallback callback) = 0;
};

class NameSpace {
 public:
  explicit NameSpace(std::string name);
  ~NameSpace();

  const std::string& name() const { return name_; }

  // Binds `path` (e.g. "dev/camera") to a handle, creating intermediate
  // directories. Fails if a non-directory is in the way.
  bool Bind(const std::string& path, ObjectHandle handle);
  bool Unbind(const std::string& path);

  // Mounts `connection` at `path`: names below it resolve remotely.
  bool Mount(const std::string& path, std::shared_ptr<NameSpaceConnection> connection);
  bool Unmount(const std::string& path);

  // Resolves a path. Local resolutions complete before this returns;
  // resolutions crossing a mount complete when the connection answers.
  void Resolve(const std::string& path, ResolveCallback callback);

  // Convenience for paths expected to be local; nullopt if the path crosses
  // a mount or does not exist.
  std::optional<ObjectHandle> ResolveLocal(const std::string& path);

  // Child name space: copies the local tree and shares the mounts, the
  // paper's "inherited from a parent process and at least partly shared".
  std::unique_ptr<NameSpace> Fork(const std::string& child_name) const;

  // --- statistics for E08 ---
  int64_t lookups() const { return lookups_; }
  // Components walked in the most recent resolution (mount hops excluded).
  int last_resolution_steps() const { return last_steps_; }
  const sim::Summary& resolution_steps() const { return steps_; }

  // Splits "a/b/c" into components, dropping empty ones.
  static std::vector<std::string> SplitPath(const std::string& path);

 private:
  struct Node {
    // Exactly one of these is meaningful.
    enum class Kind { kDirectory, kLeaf, kMount } kind = Kind::kDirectory;
    std::map<std::string, std::unique_ptr<Node>> children;  // kDirectory
    ObjectHandle handle;                                    // kLeaf
    std::shared_ptr<NameSpaceConnection> mount;             // kMount
  };

  static std::unique_ptr<Node> CloneNode(const Node& node);
  Node* WalkToParent(const std::vector<std::string>& components, bool create);

  std::string name_;
  std::unique_ptr<Node> root_;
  int64_t lookups_ = 0;
  int last_steps_ = 0;
  sim::Summary steps_;
};

// Mount connection to a name space in the same machine (another process's
// local name server reached by protected call; the crossing cost is folded
// into the handles it returns).
class LocalNameSpaceConnection : public NameSpaceConnection {
 public:
  explicit LocalNameSpaceConnection(NameSpace* target);
  void Lookup(const std::string& relative_path, ResolveCallback callback) override;

 private:
  NameSpace* target_;
};

// Mount connection to a remote name server over RPC: lookups travel the
// network, and resolved handles invoke via remote procedure call.
class RemoteNameSpaceConnection : public NameSpaceConnection {
 public:
  explicit RemoteNameSpaceConnection(RpcClient* client);
  void Lookup(const std::string& relative_path, ResolveCallback callback) override;

 private:
  RpcClient* client_;
};

}  // namespace pegasus::naming

#endif  // PEGASUS_SRC_NAMING_NAME_SPACE_H_
