// Remote procedure call over the ATM message transport (§4).
//
// "The Pegasus remote-procedure-call mechanism is based on ANSA's RPC and
// layered on MSNA." A server exports objects by name; a client holds a
// duplex virtual-circuit pair to the server and issues calls matched to
// replies by call id. The RemotePath adapter makes an exported object usable
// through an ObjectHandle, completing the paper's procedure/protected/remote
// triad. Passing a handle to a remote party is modelled by ExportObject +
// RemotePath: the export creates the connection through which the object
// can be invoked remotely.
#ifndef PEGASUS_SRC_NAMING_RPC_H_
#define PEGASUS_SRC_NAMING_RPC_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/atm/transport.h"
#include "src/naming/object.h"
#include "src/sim/event_queue.h"
#include "src/sim/stats.h"

namespace pegasus::naming {

// Dispatches invocation requests arriving on a transport VCI to exported
// objects, and answers name-lookup requests from remote name spaces.
class RpcServer {
 public:
  // `service_cost` models the server-side dispatch overhead per call.
  RpcServer(sim::Simulator* sim, atm::MessageTransport* transport,
            sim::DurationNs service_cost = sim::Microseconds(20));

  // Accepts requests on `request_vci`, replying on `reply_vci`.
  void Serve(atm::Vci request_vci, atm::Vci reply_vci);

  // Exports `object` under `name`. The object must outlive the server.
  void ExportObject(const std::string& name, Invocable* object);
  bool UnexportObject(const std::string& name);
  bool HasObject(const std::string& name) const { return objects_.count(name) > 0; }

  int64_t calls_served() const { return calls_served_; }
  int64_t lookup_calls() const { return lookup_calls_; }

 private:
  void OnRequest(const std::vector<uint8_t>& message);

  sim::Simulator* sim_;
  atm::MessageTransport* transport_;
  sim::DurationNs service_cost_;
  atm::Vci reply_vci_ = atm::kVciUnassigned;
  std::map<std::string, Invocable*> objects_;
  int64_t calls_served_ = 0;
  int64_t lookup_calls_ = 0;
};

// Client half: issues calls over an established VC pair.
class RpcClient {
 public:
  RpcClient(sim::Simulator* sim, atm::MessageTransport* transport, atm::Vci send_vci,
            atm::Vci receive_vci);

  // Invokes `method` on the remote object `object_name`.
  void Call(const std::string& object_name, const std::string& method,
            const std::vector<uint8_t>& args, InvokeCallback callback);

  // Remote name lookup: asks the server whether `name` is exported. Used by
  // mounted name spaces; the reply carries the remote object name usable
  // with Call.
  void Lookup(const std::string& name, std::function<void(bool found)> callback);

  int64_t calls_sent() const { return calls_sent_; }
  int64_t calls_completed() const { return calls_completed_; }
  // Per-call round-trip latency, ns.
  const sim::Summary& latency() const { return latency_; }

 private:
  void OnReply(const std::vector<uint8_t>& message);

  sim::Simulator* sim_;
  atm::MessageTransport* transport_;
  atm::Vci send_vci_;
  struct Pending {
    InvokeCallback invoke_cb;
    std::function<void(bool)> lookup_cb;
    sim::TimeNs sent_at;
  };
  std::map<uint64_t, Pending> pending_;
  uint64_t next_call_id_ = 1;
  int64_t calls_sent_ = 0;
  int64_t calls_completed_ = 0;
  sim::Summary latency_;
};

// InvocationPath adapter: remote procedure call through an RpcClient. The
// maillon resolver for a remote object returns one of these.
class RemotePath : public InvocationPath {
 public:
  RemotePath(RpcClient* client, std::string object_name);
  void Call(const std::string& method, const std::vector<uint8_t>& args,
            InvokeCallback callback) override;
  std::string kind() const override { return "remote-procedure-call"; }

 private:
  RpcClient* client_;
  std::string object_name_;
};

}  // namespace pegasus::naming

#endif  // PEGASUS_SRC_NAMING_RPC_H_
