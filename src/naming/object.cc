#include "src/naming/object.h"

#include <cstring>

namespace pegasus::naming {

const char* InvokeStatusName(InvokeStatus s) {
  switch (s) {
    case InvokeStatus::kOk:
      return "ok";
    case InvokeStatus::kNoSuchObject:
      return "no-such-object";
    case InvokeStatus::kNoSuchMethod:
      return "no-such-method";
    case InvokeStatus::kBadArguments:
      return "bad-arguments";
    case InvokeStatus::kTransportError:
      return "transport-error";
  }
  return "unknown";
}

LocalPath::LocalPath(sim::Simulator* sim, Invocable* target, sim::DurationNs call_cost)
    : sim_(sim), target_(target), call_cost_(call_cost) {}

void LocalPath::Call(const std::string& method, const std::vector<uint8_t>& args,
                     InvokeCallback callback) {
  // A procedure call completes "immediately" in simulated time, after the
  // (tiny) modelled call overhead.
  sim_->ScheduleAfter(call_cost_, [this, method, args, callback = std::move(callback)]() {
    std::vector<uint8_t> result;
    InvokeStatus status = target_->Invoke(method, args, &result);
    callback(status, std::move(result));
  });
}

ProtectedPath::ProtectedPath(sim::Simulator* sim, Invocable* target)
    : ProtectedPath(sim, target, Costs()) {}

ProtectedPath::ProtectedPath(sim::Simulator* sim, Invocable* target, Costs costs)
    : sim_(sim), target_(target), costs_(costs) {}

void ProtectedPath::Call(const std::string& method, const std::vector<uint8_t>& args,
                         InvokeCallback callback) {
  // Crossing in: trap + copy arguments into the server domain.
  const sim::DurationNs in_cost =
      costs_.crossing + static_cast<sim::DurationNs>(args.size()) * costs_.per_byte;
  sim_->ScheduleAfter(in_cost, [this, method, args, callback = std::move(callback)]() {
    std::vector<uint8_t> result;
    InvokeStatus status = target_->Invoke(method, args, &result);
    // Crossing out: copy the result back and return to the caller's domain.
    const sim::DurationNs out_cost =
        costs_.crossing + static_cast<sim::DurationNs>(result.size()) * costs_.per_byte;
    sim_->ScheduleAfter(out_cost, [status, result = std::move(result),
                                   callback = std::move(callback)]() mutable {
      callback(status, std::move(result));
    });
  });
}

ObjectHandle::ObjectHandle(ObjectRef ref, Resolver resolver)
    : ref_(ref), resolver_(std::move(resolver)) {}

void ObjectHandle::Invoke(const std::string& method, const std::vector<uint8_t>& args,
                          InvokeCallback callback) {
  if (!path_) {
    if (!resolver_) {
      callback(InvokeStatus::kNoSuchObject, {});
      return;
    }
    path_ = resolver_(ref_);
    ++resolutions_;
    if (!path_) {
      callback(InvokeStatus::kNoSuchObject, {});
      return;
    }
  }
  path_->Call(method, args, std::move(callback));
}

std::string ObjectHandle::kind() const { return path_ ? path_->kind() : "unresolved"; }

InvokeStatus EchoObject::Invoke(const std::string& method, const std::vector<uint8_t>& args,
                                std::vector<uint8_t>* result) {
  ++calls_;
  if (method != "echo") {
    return InvokeStatus::kNoSuchMethod;
  }
  *result = args;
  return InvokeStatus::kOk;
}

InvokeStatus CounterObject::Invoke(const std::string& method, const std::vector<uint8_t>& args,
                                   std::vector<uint8_t>* result) {
  auto put = [result](int64_t v) {
    result->resize(8);
    std::memcpy(result->data(), &v, 8);
  };
  if (method == "get") {
    put(value_);
    return InvokeStatus::kOk;
  }
  if (method == "add") {
    if (args.size() != 8) {
      return InvokeStatus::kBadArguments;
    }
    int64_t delta = 0;
    std::memcpy(&delta, args.data(), 8);
    value_ += delta;
    put(value_);
    return InvokeStatus::kOk;
  }
  return InvokeStatus::kNoSuchMethod;
}

}  // namespace pegasus::naming
