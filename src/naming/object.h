// Objects, maillons and invocation paths (§4).
//
// System services are objects: abstract data types accessed through their
// methods. How a method call travels depends on the "domain relation"
// between invoker and object:
//   * same protection domain            -> procedure call,
//   * same machine, different domain    -> protected call,
//   * different machines                -> remote procedure call.
//
// A name resolves to a *handle*, implemented as a maillon [Maisonneuve,
// Shapiro & Collet 1992]: an opaque fixed-size reference plus a function
// that returns the interface when called with the reference. The extra
// indirection lets connections be set up lazily on first use while costing
// almost nothing once the object is resolved — which experiment E08
// measures.
#ifndef PEGASUS_SRC_NAMING_OBJECT_H_
#define PEGASUS_SRC_NAMING_OBJECT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/sim/event_queue.h"
#include "src/sim/time.h"

namespace pegasus::naming {

enum class InvokeStatus : uint8_t {
  kOk = 0,
  kNoSuchObject = 1,
  kNoSuchMethod = 2,
  kBadArguments = 3,
  kTransportError = 4,
};

const char* InvokeStatusName(InvokeStatus s);

// An object's interface: named operations over byte strings. Applications
// would normally see typed stubs; the byte-level interface is what the stub
// compiler would be generated against.
class Invocable {
 public:
  virtual ~Invocable() = default;
  virtual InvokeStatus Invoke(const std::string& method, const std::vector<uint8_t>& args,
                              std::vector<uint8_t>* result) = 0;
};

// Completion callback of an invocation: invocations are asynchronous because
// protected and remote calls take simulated time.
using InvokeCallback = std::function<void(InvokeStatus, std::vector<uint8_t> result)>;

// How an invocation reaches the object. Concrete paths: LocalPath (procedure
// call), ProtectedPath (same machine, protection-domain crossing), and the
// RPC client path in rpc.h.
class InvocationPath {
 public:
  virtual ~InvocationPath() = default;
  virtual void Call(const std::string& method, const std::vector<uint8_t>& args,
                    InvokeCallback callback) = 0;
  // For experiments: the paper's taxonomy name of this path.
  virtual std::string kind() const = 0;
};

// Procedure call: invoker and object share a protection domain. `call_cost`
// models the (tiny) call overhead; the object body runs synchronously.
class LocalPath : public InvocationPath {
 public:
  LocalPath(sim::Simulator* sim, Invocable* target,
            sim::DurationNs call_cost = sim::Nanoseconds(100));
  void Call(const std::string& method, const std::vector<uint8_t>& args,
            InvokeCallback callback) override;
  std::string kind() const override { return "procedure-call"; }

 private:
  sim::Simulator* sim_;
  Invocable* target_;
  sim::DurationNs call_cost_;
};

// Protected call ("local remote procedure call"): same address space,
// different protection domain. Costs two protection-domain crossings plus
// argument/result copies through a shared buffer.
class ProtectedPath : public InvocationPath {
 public:
  struct Costs {
    sim::DurationNs crossing = sim::Microseconds(15);  // trap + domain switch
    sim::DurationNs per_byte = sim::Nanoseconds(2);    // copy through shared memory
  };

  ProtectedPath(sim::Simulator* sim, Invocable* target);
  ProtectedPath(sim::Simulator* sim, Invocable* target, Costs costs);
  void Call(const std::string& method, const std::vector<uint8_t>& args,
            InvokeCallback callback) override;
  std::string kind() const override { return "protected-call"; }

 private:
  sim::Simulator* sim_;
  Invocable* target_;
  Costs costs_;
};

// The opaque fixed-size object reference inside a maillon.
struct ObjectRef {
  uint64_t value = 0;
  bool operator==(const ObjectRef& o) const { return value == o.value; }
};

// The maillon: reference + resolver. Resolution may set up a connection (or
// fetch the object); the result is cached so the common case — object ready
// — pays only one indirection.
class ObjectHandle {
 public:
  using Resolver = std::function<std::shared_ptr<InvocationPath>(ObjectRef)>;

  ObjectHandle() = default;
  ObjectHandle(ObjectRef ref, Resolver resolver);

  bool valid() const { return static_cast<bool>(resolver_) || static_cast<bool>(path_); }
  ObjectRef ref() const { return ref_; }
  bool resolved() const { return static_cast<bool>(path_); }

  // Invokes through the maillon, resolving on first use.
  void Invoke(const std::string& method, const std::vector<uint8_t>& args,
              InvokeCallback callback);

  // The resolved path's kind, or "unresolved".
  std::string kind() const;
  // Number of times the resolver has run (1 after first use; the cached
  // path is reused afterwards).
  int resolutions() const { return resolutions_; }

 private:
  ObjectRef ref_;
  Resolver resolver_;
  std::shared_ptr<InvocationPath> path_;
  int resolutions_ = 0;
};

// Convenience in-memory objects used by tests and examples.
class EchoObject : public Invocable {
 public:
  InvokeStatus Invoke(const std::string& method, const std::vector<uint8_t>& args,
                      std::vector<uint8_t>* result) override;
  int64_t calls() const { return calls_; }

 private:
  int64_t calls_ = 0;
};

class CounterObject : public Invocable {
 public:
  // Methods: "add" (args: 8-byte LE delta) -> new value; "get" -> value.
  InvokeStatus Invoke(const std::string& method, const std::vector<uint8_t>& args,
                      std::vector<uint8_t>* result) override;
  int64_t value() const { return value_; }

 private:
  int64_t value_ = 0;
};

}  // namespace pegasus::naming

#endif  // PEGASUS_SRC_NAMING_OBJECT_H_
