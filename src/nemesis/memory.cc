#include "src/nemesis/memory.h"

#include <cstring>
#include <functional>

namespace pegasus::nemesis {

namespace {

// Data stretches live in the lower half; hashed code slots use the top 32
// bits of the upper half, mirroring the paper's sparse 64-bit allocation.
constexpr VirtAddr kDataRegionBase = 0x0000'0001'0000'0000ULL;
constexpr VirtAddr kCodeRegionBase = 0x8000'0000'0000'0000ULL;

uint32_t HashKey(const std::string& key) {
  // FNV-1a, folded to 32 bits: deterministic across runs (std::hash is not
  // guaranteed stable, and address reuse is the point of the experiment).
  uint64_t h = 1469598103934665603ULL;
  for (char c : key) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ULL;
  }
  return static_cast<uint32_t>(h ^ (h >> 32));
}

}  // namespace

Stretch::Stretch(StretchId id, VirtAddr base, size_t size)
    : id_(id), base_(base), size_(size), bytes_(size, 0) {}

AddressSpace::AddressSpace() : next_data_addr_(kDataRegionBase) {}

Stretch* AddressSpace::AllocateStretch(size_t size) {
  const VirtAddr base = next_data_addr_;
  // Keep stretches page-aligned; protection is per-stretch so alignment is
  // cosmetic, but it keeps addresses legible in traces.
  const size_t aligned = (size + 0xFFF) & ~size_t{0xFFF};
  next_data_addr_ += aligned;
  auto stretch = std::make_unique<Stretch>(next_id_, base, size);
  Stretch* out = stretch.get();
  by_base_[base] = next_id_;
  by_id_[next_id_] = std::move(stretch);
  ++next_id_;
  return out;
}

Stretch* AddressSpace::AllocateCodeStretch(const std::string& code_key, size_t size) {
  last_code_reused_ = false;
  auto slot = code_slots_.find(code_key);
  VirtAddr base;
  if (slot != code_slots_.end()) {
    // Same image as before: reuse the cached placement if it is free.
    base = slot->second;
    if (by_base_.count(base) == 0) {
      last_code_reused_ = true;
    } else {
      base = 0;
    }
  } else {
    base = kCodeRegionBase | (static_cast<VirtAddr>(HashKey(code_key)) << 32);
    if (by_base_.count(base) > 0) {
      base = 0;  // hash collision with a live stretch
    } else {
      code_slots_[code_key] = base;
      last_code_reused_ = true;  // first load establishes the cacheable slot
    }
  }
  if (base == 0) {
    return AllocateStretch(size);
  }
  auto stretch = std::make_unique<Stretch>(next_id_, base, size);
  Stretch* out = stretch.get();
  by_base_[base] = next_id_;
  by_id_[next_id_] = std::move(stretch);
  ++next_id_;
  return out;
}

bool AddressSpace::Free(StretchId id) {
  auto it = by_id_.find(id);
  if (it == by_id_.end()) {
    return false;
  }
  by_base_.erase(it->second->base());
  by_id_.erase(it);
  return true;
}

Stretch* AddressSpace::Find(StretchId id) {
  auto it = by_id_.find(id);
  return it == by_id_.end() ? nullptr : it->second.get();
}

Stretch* AddressSpace::StretchAt(VirtAddr addr) {
  auto it = by_base_.upper_bound(addr);
  if (it == by_base_.begin()) {
    return nullptr;
  }
  --it;
  Stretch* s = by_id_[it->second].get();
  return s->Contains(addr) ? s : nullptr;
}

ProtectionDomain::ProtectionDomain(std::string name) : name_(std::move(name)) {}

void ProtectionDomain::Grant(const Stretch* s, AccessRights rights) { rights_[s->id()] = rights; }

void ProtectionDomain::Revoke(const Stretch* s) { rights_.erase(s->id()); }

AccessRights ProtectionDomain::RightsOn(const Stretch* s) const {
  auto it = rights_.find(s->id());
  return it == rights_.end() ? AccessRights::None() : it->second;
}

bool ProtectionDomain::Read(const Stretch* s, VirtAddr addr, uint8_t* out, size_t len) {
  if (!RightsOn(s).read || !s->Contains(addr, len)) {
    ++faults_;
    return false;
  }
  std::memcpy(out, s->data() + (addr - s->base()), len);
  return true;
}

bool ProtectionDomain::Write(Stretch* s, VirtAddr addr, const uint8_t* in, size_t len) {
  if (!RightsOn(s).write || !s->Contains(addr, len)) {
    ++faults_;
    return false;
  }
  std::memcpy(s->data() + (addr - s->base()), in, len);
  return true;
}

}  // namespace pegasus::nemesis
