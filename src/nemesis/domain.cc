#include "src/nemesis/domain.h"

namespace pegasus::nemesis {

Domain::Domain(std::string name, QosParams qos) : name_(std::move(name)), qos_(qos) {}

void Domain::AttachKernel(Kernel* kernel, DomainId id) {
  kernel_ = kernel;
  id_ = id;
  OnAttached();
}

void Domain::OnAttached() {}

void Domain::OnActivate(ActivationReason reason, sim::TimeNs now) {
  (void)reason;
  (void)now;
}

void Domain::OnEventPosted(EventChannel* channel, sim::TimeNs now) {
  (void)channel;
  (void)now;
}

}  // namespace pegasus::nemesis
