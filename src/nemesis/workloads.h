// Domain workload models used by tests, examples and experiments.
//
// Each model translates an application pattern from the paper into run
// segments: a periodic media processor (decode a frame every 40 ms), a batch
// compute hog, an IPC server/client pair, a packet demultiplexer and an
// interrupt-driven device driver. Models are deliberately simple — the
// claims under test concern the *kernel's* behaviour, and simple models make
// the expected arithmetic checkable by hand.
#ifndef PEGASUS_SRC_NEMESIS_WORKLOADS_H_
#define PEGASUS_SRC_NEMESIS_WORKLOADS_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "src/nemesis/domain.h"
#include "src/nemesis/events.h"
#include "src/sim/event_queue.h"
#include "src/sim/stats.h"

namespace pegasus::nemesis {

// Releases a job of `job_cost` CPU every `job_period`, deadline one period
// after release (the natural contract for frame-rate media processing).
// Tracks completion latency, deadline misses and start latency — the metrics
// behind experiment E04.
class PeriodicDomain : public Domain {
 public:
  PeriodicDomain(sim::Simulator* sim, std::string name, QosParams qos, sim::DurationNs job_cost,
                 sim::DurationNs job_period);

  // Stops releasing new jobs (queued ones still complete).
  void Stop() { stopped_ = true; }

  RunRequest NextRun(sim::TimeNs now) override;
  void OnRunEnd(sim::TimeNs start, sim::DurationNs ran, bool completed) override;
  void OnAttached() override;

  int64_t jobs_released() const { return jobs_released_; }
  int64_t jobs_completed() const { return jobs_completed_; }
  int64_t deadline_misses() const { return deadline_misses_; }
  // Release-to-completion latency (ns).
  const sim::Summary& completion_latency() const { return completion_latency_; }

  // Invoked on each completion; used by integration tests.
  std::function<void(sim::TimeNs release, sim::TimeNs completion)> on_job_complete;

 private:
  void ReleaseJob();

  sim::Simulator* sim_;
  sim::DurationNs job_cost_;
  sim::DurationNs job_period_;
  bool stopped_ = false;

  std::deque<sim::TimeNs> backlog_;  // release times of jobs not yet started
  sim::TimeNs current_release_ = -1;
  sim::DurationNs remaining_ = 0;

  int64_t jobs_released_ = 0;
  int64_t jobs_completed_ = 0;
  int64_t deadline_misses_ = 0;
  sim::Summary completion_latency_;
};

// Always has work; consumes whatever CPU it is given in `chunk`-sized
// segments. The antagonist in every contention experiment.
class BatchDomain : public Domain {
 public:
  BatchDomain(std::string name, QosParams qos, sim::DurationNs chunk = sim::Microseconds(500));

  RunRequest NextRun(sim::TimeNs now) override;
  void OnRunEnd(sim::TimeNs start, sim::DurationNs ran, bool completed) override;

  sim::DurationNs consumed() const { return consumed_; }

 private:
  sim::DurationNs chunk_;
  sim::DurationNs consumed_ = 0;
};

// Serves requests arriving on an IpcChannel: each request costs
// `service_cost` CPU, then a reply is sent. Requests are discovered at
// activation time via the request event's closure — the event-driven domain
// pattern of §3.4.
class ServerDomain : public Domain {
 public:
  ServerDomain(std::string name, QosParams qos, sim::DurationNs service_cost);

  // Must be called once, after the kernel created the channel.
  void BindChannel(IpcChannel* channel);

  RunRequest NextRun(sim::TimeNs now) override;
  void OnRunEnd(sim::TimeNs start, sim::DurationNs ran, bool completed) override;

  int64_t requests_served() const { return requests_served_; }

 private:
  void DrainRequests();

  sim::DurationNs service_cost_;
  IpcChannel* channel_ = nullptr;
  std::deque<std::vector<uint8_t>> queue_;
  sim::DurationNs remaining_ = 0;
  std::vector<uint8_t> current_;
  int64_t requests_served_ = 0;
};

// Issues `total_calls` RPC-style calls back to back: prepare (`call_cost`
// CPU), send, optionally do `post_send_work` CPU of local bookkeeping, block
// until the reply event, repeat after `think_time`. Measures round-trip
// latency — the metric of experiment E06. With synchronous signalling the
// send donates the CPU to the server even though post-send work remains;
// with asynchronous signalling the client finishes its bookkeeping first.
class ClientDomain : public Domain {
 public:
  ClientDomain(sim::Simulator* sim, std::string name, QosParams qos, sim::DurationNs call_cost,
               int64_t total_calls, sim::DurationNs think_time = 0,
               sim::DurationNs post_send_work = 0);

  void BindChannel(IpcChannel* channel);

  RunRequest NextRun(sim::TimeNs now) override;
  void OnRunEnd(sim::TimeNs start, sim::DurationNs ran, bool completed) override;
  void OnAttached() override;

  int64_t calls_completed() const { return calls_completed_; }
  bool done() const { return calls_completed_ >= total_calls_; }
  // Send-to-reply-delivery round-trip time (ns).
  const sim::Summary& round_trip() const { return round_trip_; }

 private:
  enum class Phase { kIdle, kPrepare, kPostSend };

  void MaybeStartNextCall();

  sim::Simulator* sim_;
  sim::DurationNs call_cost_;
  int64_t total_calls_;
  sim::DurationNs think_time_;
  sim::DurationNs post_send_work_;
  IpcChannel* channel_ = nullptr;

  Phase phase_ = Phase::kIdle;
  sim::DurationNs remaining_ = 0;
  bool waiting_reply_ = false;
  bool think_elapsed_ = true;
  sim::TimeNs sent_at_ = 0;
  int64_t calls_started_ = 0;
  int64_t calls_completed_ = 0;
  sim::Summary round_trip_;
};

// A protocol demultiplexer (§3.4's asynchronous example): packets arrive as
// interrupt events; each costs `per_packet_cost` CPU, after which the packet
// is signalled onward to one of the bound client channels in round-robin.
// With asynchronous signalling the demux keeps the CPU and drains its queue;
// with synchronous signalling it donates the CPU after every packet.
class DemuxDomain : public Domain {
 public:
  DemuxDomain(std::string name, QosParams qos, sim::DurationNs per_packet_cost);

  // The channel devices raise packet-arrival interrupts on.
  void BindPacketChannel(EventChannel* channel);
  // Downstream per-client channels (sync or async as created).
  void AddClientChannel(EventChannel* channel);

  RunRequest NextRun(sim::TimeNs now) override;
  void OnRunEnd(sim::TimeNs start, sim::DurationNs ran, bool completed) override;

  int64_t packets_processed() const { return packets_processed_; }

 private:
  sim::DurationNs per_packet_cost_;
  std::vector<EventChannel*> clients_;
  int64_t pending_packets_ = 0;
  sim::DurationNs remaining_ = 0;
  size_t next_client_ = 0;
  int64_t packets_processed_ = 0;
};

// An interrupt-driven device driver, the subject of the KPS experiment
// (E15). Each work item costs `unpriv_cost` of ordinary CPU plus `priv_cost`
// that must run with interrupts masked. In kKps mode only the privileged
// part masks interrupts (a short Kernel-Privileged Section); in kMonolithic
// mode the whole item runs in kernel mode, the way a conventional OS would
// run the entire driver module.
class DriverDomain : public Domain {
 public:
  enum class Mode { kKps, kMonolithic };

  DriverDomain(std::string name, QosParams qos, Mode mode, sim::DurationNs unpriv_cost,
               sim::DurationNs priv_cost);

  // The channel devices raise work-arrival interrupts on.
  void BindInterruptChannel(EventChannel* channel);

  RunRequest NextRun(sim::TimeNs now) override;
  void OnRunEnd(sim::TimeNs start, sim::DurationNs ran, bool completed) override;

  int64_t items_done() const { return items_done_; }

 private:
  enum class Phase { kIdle, kUnpriv, kPriv };

  Mode mode_;
  sim::DurationNs unpriv_cost_;
  sim::DurationNs priv_cost_;
  int64_t pending_items_ = 0;
  Phase phase_ = Phase::kIdle;
  sim::DurationNs remaining_ = 0;
  int64_t items_done_ = 0;
};

}  // namespace pegasus::nemesis

#endif  // PEGASUS_SRC_NEMESIS_WORKLOADS_H_
