// The Quality-of-Service manager domain (§3.3).
//
// "Above this primitive-level scheduler, and running on a longer time scale
// is a Quality-of-Service-manager domain whose task is to update the
// scheduler weights; this is performed not only in response to applications
// entering or leaving the system, but also adaptively as applications modify
// their behaviour — this is performed on a longer time scale [than] the
// individual scheduling decisions in order to smooth out short-term
// variations in load."
//
// The manager runs *as a Nemesis domain*: every `epoch` it wakes, reviews
// its clients' requests, weights and recent usage, computes new slices by
// weighted water-filling under a target utilisation, smooths them with an
// exponentially weighted moving average, and applies them through
// Kernel::UpdateQos.
#ifndef PEGASUS_SRC_NEMESIS_QOS_MANAGER_H_
#define PEGASUS_SRC_NEMESIS_QOS_MANAGER_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/nemesis/domain.h"
#include "src/sim/event_queue.h"

namespace pegasus::nemesis {

// Why a review moved a client's grant. Cross-layer adaptation policies key
// off this: a kContention cut means the CPU the stream asked for is truly
// gone (other layers should shrink with it), a kReclaim cut only mirrors the
// client's own idleness (the other layers' throughput is still deliverable),
// and kRestore means capacity came back.
enum class GrantReason {
  kContention,  // squeezed by competing demand against the target utilisation
  kReclaim,     // trimmed toward the client's own observed (idle) usage
  kRestore,     // the grant grew back toward the request
};

const char* GrantReasonName(GrantReason reason);

// One grant change as reported to a client's callback.
struct GrantUpdate {
  // The utilisation now applied through Kernel::UpdateQos (EWMA-smoothed).
  double granted_util = 0.0;
  // The un-smoothed water-filling target of this epoch — where the smoothed
  // grant will converge if load stays put. Adaptation policies renegotiate
  // toward this once instead of chasing every EWMA step (no thrash).
  double steady_state_util = 0.0;
  GrantReason reason = GrantReason::kContention;
  // True when the steady state is bounded by the client's own (reclaimed)
  // idleness rather than by competing demand: the client would get more the
  // moment it used more. Cross-layer policies must not treat such a grant
  // as a capacity constraint on the other layers.
  bool self_limited = false;
};

class QosManagerDomain : public Domain {
 public:
  struct Options {
    // Review interval — deliberately much longer than scheduler periods.
    sim::DurationNs epoch = sim::Milliseconds(250);
    // CPU the review itself costs per epoch.
    sim::DurationNs review_cost = sim::Microseconds(200);
    // Total guaranteed utilisation the manager is willing to hand out.
    double target_utilization = 0.9;
    // EWMA smoothing factor for slice changes, in (0, 1]; 1 = no smoothing.
    double smoothing = 0.4;
    // When true, chronically idle clients are trimmed towards their observed
    // usage (plus headroom) so the surplus can serve others.
    bool reclaim_unused = true;
    // Headroom multiplier over observed usage when reclaiming.
    double reclaim_headroom = 1.25;
  };

  QosManagerDomain(sim::Simulator* sim, std::string name, QosParams own_qos, Options options);

  // Invoked after a review changed a client's granted utilisation — the
  // cross-layer hook stream sessions use to learn of degradation and
  // re-negotiate the other layers.
  using GrantCallback = std::function<void(const GrantUpdate& update)>;

  // Registers a client with a policy weight (the "user's current policy")
  // and the QoS it *asks* for. Takes effect at the next epoch.
  void Register(Domain* client, double weight, QosParams requested,
                GrantCallback on_grant = nullptr);
  void Unregister(Domain* client);

  // Granted utilisation for a client, as of the last review.
  double GrantedUtilization(Domain* client) const;
  int64_t reviews() const { return reviews_; }

  RunRequest NextRun(sim::TimeNs now) override;
  void OnRunEnd(sim::TimeNs start, sim::DurationNs ran, bool completed) override;
  void OnAttached() override;

 private:
  struct ClientState {
    double weight = 1.0;
    QosParams requested;
    double granted_util = 0.0;
    // EWMA of observed utilisation.
    double observed_util = 0.0;
    sim::DurationNs last_cpu_total = 0;
    GrantCallback on_grant;
  };

  void Review();

  sim::Simulator* sim_;
  Options options_;
  std::map<Domain*, ClientState> clients_;
  sim::DurationNs pending_work_ = 0;
  sim::TimeNs last_review_at_ = 0;
  int64_t reviews_ = 0;
};

}  // namespace pegasus::nemesis

#endif  // PEGASUS_SRC_NEMESIS_QOS_MANAGER_H_
