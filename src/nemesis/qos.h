// CPU quality-of-service contracts (§3.3).
//
// A domain's processor guarantee is expressed as `slice` nanoseconds of CPU
// in every `period` nanoseconds — the weighted allocation the paper derives
// from user policy. `extra_time` opts the domain into fortuitous slack
// ("unguaranteed resources which become available fortuitously").
#ifndef PEGASUS_SRC_NEMESIS_QOS_H_
#define PEGASUS_SRC_NEMESIS_QOS_H_

#include "src/sim/time.h"

namespace pegasus::nemesis {

struct QosParams {
  sim::DurationNs slice = 0;
  sim::DurationNs period = sim::Milliseconds(100);
  bool extra_time = true;

  // Fraction of the CPU guaranteed by this contract.
  double Utilization() const {
    if (period <= 0) {
      return 0.0;
    }
    return static_cast<double>(slice) / static_cast<double>(period);
  }

  static QosParams BestEffort() { return QosParams{0, sim::Milliseconds(100), true}; }
  static QosParams Guaranteed(sim::DurationNs slice, sim::DurationNs period,
                              bool extra = true) {
    return QosParams{slice, period, extra};
  }
};

}  // namespace pegasus::nemesis

#endif  // PEGASUS_SRC_NEMESIS_QOS_H_
