// Domain-scheduler interface.
//
// The kernel is scheduler-agnostic; the paper's share+EDF discipline
// (AtroposScheduler) and the baseline timesharing disciplines used by the
// comparison experiments all implement this interface.
#ifndef PEGASUS_SRC_NEMESIS_SCHEDULER_H_
#define PEGASUS_SRC_NEMESIS_SCHEDULER_H_

#include <string>

#include "src/nemesis/domain.h"
#include "src/sim/time.h"

namespace pegasus::nemesis {

class Kernel;

// What the scheduler wants the CPU to do next.
struct SchedDecision {
  Domain* domain = nullptr;    // nullptr => idle
  sim::DurationNs budget = 0;  // preempt the domain after at most this long
  ActivationReason reason = ActivationReason::kAllocation;
  // True if the time consumed counts against the domain's guarantee.
  bool guaranteed = true;
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  virtual std::string name() const = 0;

  // The kernel attaches itself before any other call; the scheduler may use
  // the kernel's simulator for replenishment timers and must call
  // Kernel::RequestReschedule when its ordering changes asynchronously.
  virtual void Attach(Kernel* kernel) = 0;

  // Admission control. Returning false rejects the domain (the paper's
  // contracts are only meaningful if the sum of guarantees is feasible).
  virtual bool Admit(Domain* domain) = 0;
  virtual void Remove(Domain* domain) = 0;

  // The kernel reports runnability changes (work arrived / work exhausted).
  virtual void SetRunnable(Domain* domain, bool runnable) = 0;

  // Re-runs admission after a QoS change. Returns false if infeasible (the
  // change is rejected and the old contract stays).
  virtual bool UpdateQos(Domain* domain, const QosParams& qos) = 0;

  // Picks the next domain at `now`.
  virtual SchedDecision PickNext(sim::TimeNs now) = 0;

  // Decision for running a *specific* domain right now, if the discipline
  // permits it (used for the synchronous-event direct-switch optimisation).
  // Returns a decision with domain == nullptr when the domain may not run.
  virtual SchedDecision DecisionFor(Domain* domain, sim::TimeNs now) = 0;

  // True if the discipline would rather run someone else than let `current`
  // continue under `decision` (e.g. a domain with an earlier deadline became
  // runnable). The kernel calls this instead of blindly preempting so that
  // quantum-driven disciplines can decline mid-quantum preemption.
  virtual bool ShouldPreempt(Domain* current, const SchedDecision& decision,
                             sim::TimeNs now) = 0;

  // Charges `ran` nanoseconds consumed by `domain` under `decision`.
  virtual void Charge(Domain* domain, const SchedDecision& decision, sim::TimeNs start,
                      sim::DurationNs ran) = 0;

  // Sum of admitted guarantees, for tests and the QoS manager.
  virtual double AdmittedUtilization() const = 0;

  // Utilisation ceiling the discipline admits guarantees against. Stream
  // admission control measures CPU headroom as Capacity() minus
  // AdmittedUtilization(). Disciplines without explicit admission report 1.
  virtual double Capacity() const { return 1.0; }
};

}  // namespace pegasus::nemesis

#endif  // PEGASUS_SRC_NEMESIS_SCHEDULER_H_
