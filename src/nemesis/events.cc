#include "src/nemesis/events.h"

#include "src/nemesis/kernel.h"

namespace pegasus::nemesis {

SharedMessageQueue::SharedMessageQueue(AddressSpace* space, ProtectionDomain* producer,
                                       ProtectionDomain* consumer, size_t slots, size_t slot_size)
    : space_(space),
      producer_(producer),
      consumer_(consumer),
      stretch_(space->AllocateStretch(slots * (4 + slot_size))),
      slots_(slots),
      slot_size_(slot_size) {
  // §3.1's example: "a unidirectional inter-domain communications channel
  // would be mapped read/write in the source and read-only at the sink".
  producer_->Grant(stretch_, AccessRights::ReadWrite());
  consumer_->Grant(stretch_, AccessRights::ReadOnly());
}

bool SharedMessageQueue::Push(const std::vector<uint8_t>& message) {
  if (full() || message.size() > slot_size_) {
    ++push_failures_;
    return false;
  }
  const VirtAddr slot = stretch_->base() + tail_ * (4 + slot_size_);
  const uint32_t len = static_cast<uint32_t>(message.size());
  uint8_t hdr[4] = {static_cast<uint8_t>(len), static_cast<uint8_t>(len >> 8),
                    static_cast<uint8_t>(len >> 16), static_cast<uint8_t>(len >> 24)};
  if (!producer_->Write(stretch_, slot, hdr, 4)) {
    return false;
  }
  if (len > 0 && !producer_->Write(stretch_, slot + 4, message.data(), len)) {
    return false;
  }
  tail_ = (tail_ + 1) % slots_;
  ++count_;
  return true;
}

std::optional<std::vector<uint8_t>> SharedMessageQueue::Pop() {
  if (count_ == 0) {
    return std::nullopt;
  }
  const VirtAddr slot = stretch_->base() + head_ * (4 + slot_size_);
  uint8_t hdr[4];
  if (!consumer_->Read(stretch_, slot, hdr, 4)) {
    return std::nullopt;
  }
  const uint32_t len = static_cast<uint32_t>(hdr[0]) | static_cast<uint32_t>(hdr[1]) << 8 |
                       static_cast<uint32_t>(hdr[2]) << 16 | static_cast<uint32_t>(hdr[3]) << 24;
  std::vector<uint8_t> out(len);
  if (len > 0 && !consumer_->Read(stretch_, slot + 4, out.data(), len)) {
    return std::nullopt;
  }
  head_ = (head_ + 1) % slots_;
  --count_;
  return out;
}

IpcChannel::IpcChannel(Kernel* kernel, AddressSpace* space, Domain* client, Domain* server,
                       size_t slots, size_t slot_size, bool synchronous)
    : kernel_(kernel),
      client_(client),
      server_(server),
      requests_(space, &client->pdom(), &server->pdom(), slots, slot_size),
      replies_(space, &server->pdom(), &client->pdom(), slots, slot_size),
      request_event_(kernel->CreateChannel(client, server, synchronous)),
      reply_event_(kernel->CreateChannel(server, client, synchronous)) {}

bool IpcChannel::SendRequest(const std::vector<uint8_t>& message) {
  if (!requests_.Push(message)) {
    return false;
  }
  kernel_->SendEvent(request_event_);
  return true;
}

std::optional<std::vector<uint8_t>> IpcChannel::ReceiveRequest() { return requests_.Pop(); }

bool IpcChannel::SendReply(const std::vector<uint8_t>& message) {
  if (!replies_.Push(message)) {
    return false;
  }
  kernel_->SendEvent(reply_event_);
  return true;
}

std::optional<std::vector<uint8_t>> IpcChannel::ReceiveReply() { return replies_.Pop(); }

}  // namespace pegasus::nemesis
