#include "src/nemesis/kernel.h"

#include <algorithm>
#include <cassert>

namespace pegasus::nemesis {

Kernel::Kernel(sim::Simulator* sim, std::unique_ptr<Scheduler> scheduler, KernelCosts costs)
    : sim_(sim), scheduler_(std::move(scheduler)), costs_(costs) {
  scheduler_->Attach(this);
}

Kernel::~Kernel() = default;

bool Kernel::AddDomain(Domain* domain) {
  if (!scheduler_->Admit(domain)) {
    return false;
  }
  domain->AttachKernel(this, next_domain_id_++);
  domains_.push_back(domain);
  UpdateRunnable(domain);
  if (started_) {
    ScheduleDispatch();
  }
  return true;
}

void Kernel::RemoveDomain(Domain* domain) {
  if (domain == running_) {
    // Deschedule it exactly as a preemption would — charge the partial
    // segment and cancel the pending run-end — so removal never leaves a
    // run-end event pointing at a detached domain. Which domain happens to
    // be on the CPU when a client departs is schedule timing, not
    // something callers can be asked to avoid.
    Preempt();
  }
  scheduler_->Remove(domain);
  domains_.erase(std::remove(domains_.begin(), domains_.end(), domain), domains_.end());
  if (last_on_cpu_ == domain) {
    last_on_cpu_ = nullptr;
  }
  if (direct_switch_hint_ == domain) {
    direct_switch_hint_ = nullptr;
  }
}

bool Kernel::UpdateQos(Domain* domain, const QosParams& qos) {
  if (!scheduler_->UpdateQos(domain, qos)) {
    return false;
  }
  domain->set_qos(qos);
  RequestReschedule();
  return true;
}

void Kernel::NotifyWork(Domain* domain) {
  if (domain == running_) {
    return;  // runnability is re-evaluated when its segment ends
  }
  UpdateRunnable(domain);
  RequestReschedule();
}

EventChannel* Kernel::CreateChannel(Domain* source, Domain* destination, bool synchronous) {
  channels_.push_back(std::make_unique<EventChannel>(channels_.size() + 1, source, destination,
                                                     synchronous));
  return channels_.back().get();
}

IpcChannel* Kernel::CreateIpcChannel(Domain* client, Domain* server, size_t slots,
                                     size_t slot_size, bool synchronous) {
  ipc_channels_.push_back(std::make_unique<IpcChannel>(this, &address_space_, client, server,
                                                       slots, slot_size, synchronous));
  return ipc_channels_.back().get();
}

void Kernel::PostEvent(EventChannel* channel) {
  channel->RecordSent();
  Domain* dst = channel->destination();
  dst->dib().pending_events.push_back(PendingEvent{channel, sim_->now()});
  dst->OnEventPosted(channel, sim_->now());
  if (dst != running_) {
    UpdateRunnable(dst);
  }
}

void Kernel::SendEvent(EventChannel* channel) {
  PostEvent(channel);
  if (channel->synchronous()) {
    // The sender donates the processor: remember the destination so the next
    // dispatch tries it first. If the sender is mid-segment this takes
    // effect at the segment boundary it is signalling from.
    direct_switch_hint_ = channel->destination();
  }
  RequestReschedule();
}

void Kernel::RaiseInterrupt(EventChannel* channel) {
  if (in_privileged_) {
    deferred_interrupts_.push_back(DeferredInterrupt{channel, sim_->now()});
    return;
  }
  DeliverInterrupt(channel, sim_->now());
}

void Kernel::DeliverInterrupt(EventChannel* channel, sim::TimeNs raised_at) {
  interrupt_latency_.Add(static_cast<double>(sim_->now() - raised_at));
  PostEvent(channel);
  RequestReschedule();
}

void Kernel::Start() {
  if (started_) {
    return;
  }
  started_ = true;
  idle_ = true;
  idle_since_ = sim_->now();
  ScheduleDispatch();
}

sim::DurationNs Kernel::idle_time() const {
  if (idle_) {
    return idle_accum_ + (sim_->now() - idle_since_);
  }
  return idle_accum_;
}

void Kernel::RequestReschedule() {
  if (!started_ || reschedule_scheduled_) {
    return;
  }
  // Never act re-entrantly: the request may come from inside BeginRun (an
  // activation handler signalling an event) or from a scheduler timer. All
  // preemption checks run from a fresh event context at the current time.
  reschedule_scheduled_ = true;
  sim_->ScheduleAfter(0, [this]() {
    reschedule_scheduled_ = false;
    RescheduleCheck();
  });
}

void Kernel::RescheduleCheck() {
  if (running_ == nullptr) {
    ScheduleDispatch();
    return;
  }
  if (in_privileged_) {
    return;  // KPS: not preemptible; dispatch happens at segment end anyway
  }
  bool preempt = scheduler_->ShouldPreempt(running_, current_decision_, sim_->now());
  if (!preempt && direct_switch_hint_ != nullptr && direct_switch_hint_ != running_) {
    // A synchronous signal wants the destination on the CPU.
    preempt = scheduler_->DecisionFor(direct_switch_hint_, sim_->now()).domain != nullptr;
  }
  if (preempt) {
    Preempt();
  }
}

void Kernel::ScheduleDispatch() {
  if (dispatch_scheduled_) {
    return;
  }
  dispatch_scheduled_ = true;
  sim_->ScheduleAfter(0, [this]() {
    dispatch_scheduled_ = false;
    Dispatch();
  });
}

void Kernel::Dispatch() {
  if (running_ != nullptr) {
    return;
  }
  for (;;) {
    SchedDecision decision;
    // Honour a pending synchronous direct switch if the discipline allows
    // the destination to run right now.
    if (direct_switch_hint_ != nullptr) {
      Domain* hint = direct_switch_hint_;
      direct_switch_hint_ = nullptr;
      decision = scheduler_->DecisionFor(hint, sim_->now());
    }
    if (decision.domain == nullptr) {
      decision = scheduler_->PickNext(sim_->now());
    }
    if (decision.domain == nullptr) {
      if (!idle_) {
        idle_ = true;
        idle_since_ = sim_->now();
      }
      return;
    }
    Domain* domain = decision.domain;
    RunRequest request = domain->NextRun(sim_->now());
    bool pre_activated = false;
    if (request.length <= 0 && !domain->dib().pending_events.empty() &&
        domain->dib().activations_enabled) {
      // An event-driven domain: it was made runnable by pending events and
      // only discovers its work when activated. Activate it now and re-ask.
      Activate(domain, ActivationReason::kEventDelivery);
      pre_activated = true;
      request = domain->NextRun(sim_->now());
    }
    if (request.length <= 0) {
      // Blocked although the scheduler thought otherwise (or a spurious
      // event); correct the bookkeeping and pick again.
      scheduler_->SetRunnable(domain, false);
      continue;
    }
    if (idle_) {
      idle_ = false;
      idle_accum_ += sim_->now() - idle_since_;
    }
    BeginRun(decision, request, pre_activated);
    return;
  }
}

void Kernel::Activate(Domain* domain, ActivationReason reason) {
  ++activation_count_;
  ++domain->dib().activation_count;
  domain->dib().last_activated_at = sim_->now();
  DeliverPendingEvents(domain);
  domain->OnActivate(reason, sim_->now());
}

void Kernel::BeginRun(const SchedDecision& decision, const RunRequest& request,
                      bool pre_activated) {
  Domain* domain = decision.domain;
  running_ = domain;
  current_decision_ = decision;
  current_request_ = request;
  run_started_ = sim_->now();
  run_overhead_ = 0;

  const bool switching = (last_on_cpu_ != domain);
  if (switching) {
    run_overhead_ += costs_.context_switch;
    ++context_switches_;
  }
  if (switching || pre_activated) {
    // Activation: entry through the activation vector with pending events
    // visible — the paper's replacement for transparent resumption.
    run_overhead_ += costs_.activation;
    if (!pre_activated && domain->dib().activations_enabled) {
      Activate(domain, decision.reason);
    }
  }
  if (request.privileged) {
    run_overhead_ += costs_.kps_enter + costs_.kps_exit;
    in_privileged_ = true;
  }
  run_planned_ = std::min(request.length, decision.budget);
  run_end_event_ = sim_->ScheduleAfter(run_overhead_ + run_planned_, [this]() { OnRunEnd(); });
}

void Kernel::OnRunEnd() {
  Domain* domain = running_;
  const bool completed = (run_planned_ >= current_request_.length);
  const sim::DurationNs charged = run_overhead_ + run_planned_;

  running_ = nullptr;
  in_privileged_ = false;
  last_on_cpu_ = domain;
  domain->dib().last_deactivated_at = sim_->now();

  scheduler_->Charge(domain, current_decision_, run_started_, charged);
  domain->ChargeCpu(charged, current_decision_.guaranteed);
  domain->OnRunEnd(run_started_, run_planned_, completed);

  // Interrupts that arrived during a privileged section are delivered now.
  while (!deferred_interrupts_.empty()) {
    DeferredInterrupt di = deferred_interrupts_.front();
    deferred_interrupts_.pop_front();
    DeliverInterrupt(di.channel, di.raised_at);
  }

  UpdateRunnable(domain);
  ScheduleDispatch();
}

void Kernel::Preempt() {
  Domain* domain = running_;
  if (domain == nullptr) {
    return;
  }
  sim_->Cancel(run_end_event_);
  ++preemptions_;

  const sim::DurationNs elapsed = sim_->now() - run_started_;
  // Time actually spent in the segment body, after kernel overheads.
  const sim::DurationNs body = std::max<sim::DurationNs>(0, elapsed - run_overhead_);
  const sim::DurationNs charged = elapsed;

  running_ = nullptr;
  in_privileged_ = false;
  last_on_cpu_ = domain;
  domain->dib().last_deactivated_at = sim_->now();

  scheduler_->Charge(domain, current_decision_, run_started_, charged);
  domain->ChargeCpu(charged, current_decision_.guaranteed);
  domain->OnRunEnd(run_started_, body, /*completed=*/body >= current_request_.length);

  UpdateRunnable(domain);
  ScheduleDispatch();
}

void Kernel::UpdateRunnable(Domain* domain) {
  // A domain is eligible when its model has work *or* events pend in its DIB
  // ("a domain is eligible for scheduling when it has pending events", §3.4).
  const bool runnable =
      domain->NextRun(sim_->now()).length > 0 || !domain->dib().pending_events.empty();
  scheduler_->SetRunnable(domain, runnable);
}

void Kernel::DeliverPendingEvents(Domain* domain) {
  auto& pending = domain->dib().pending_events;
  while (!pending.empty()) {
    PendingEvent ev = pending.front();
    pending.pop_front();
    ev.channel->RecordDelivered(ev.posted_at, sim_->now());
    if (ev.channel->closure()) {
      ev.channel->closure()(ev.posted_at, sim_->now());
    }
  }
}

}  // namespace pegasus::nemesis
