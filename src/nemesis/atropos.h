// The Nemesis domain scheduler (§3.3): weighted shares with EDF selection.
//
// Each domain holds a contract of `slice` nanoseconds per `period`. The
// scheduler keeps, per domain, the credit remaining in the current period and
// the period's deadline. Among runnable domains that still have credit it
// runs the one with the *earliest deadline* — EDF is optimal for meeting the
// implicit deadline "use your slice before the period ends", which is how the
// paper turns weighted allocation into timely multimedia scheduling.
//
// When no credited domain is runnable, remaining time is shared out to
// domains that opted into extra time, in least-recently-served order (the
// paper notes the slack policy was "still the subject of investigation";
// LRS round-robin is our documented choice, ablated in bench E04).
#ifndef PEGASUS_SRC_NEMESIS_ATROPOS_H_
#define PEGASUS_SRC_NEMESIS_ATROPOS_H_

#include <map>
#include <string>

#include "src/nemesis/scheduler.h"
#include "src/sim/event_queue.h"

namespace pegasus::nemesis {

class AtroposScheduler : public Scheduler {
 public:
  // How to choose among runnable domains that still hold credit. kEdf is the
  // paper's design; kRoundRobin is the ablation of bench E04 (weighted
  // shares without deadline ordering).
  enum class CreditPolicy { kEdf, kRoundRobin };

  // `capacity` is the admissible sum of slice/period utilisations (leave
  // headroom below 1.0 when kernel costs are non-zero). The best-effort
  // quantum bounds how long a slack run may go unreviewed.
  explicit AtroposScheduler(double capacity = 1.0,
                            sim::DurationNs best_effort_quantum = sim::Milliseconds(5),
                            CreditPolicy credit_policy = CreditPolicy::kEdf);
  ~AtroposScheduler() override;

  std::string name() const override { return "atropos"; }
  void Attach(Kernel* kernel) override;
  bool Admit(Domain* domain) override;
  void Remove(Domain* domain) override;
  void SetRunnable(Domain* domain, bool runnable) override;
  bool UpdateQos(Domain* domain, const QosParams& qos) override;
  SchedDecision PickNext(sim::TimeNs now) override;
  SchedDecision DecisionFor(Domain* domain, sim::TimeNs now) override;
  bool ShouldPreempt(Domain* current, const SchedDecision& decision, sim::TimeNs now) override;
  void Charge(Domain* domain, const SchedDecision& decision, sim::TimeNs start,
              sim::DurationNs ran) override;
  double AdmittedUtilization() const override;
  double Capacity() const override { return capacity_; }

  // Introspection for tests: remaining credit / current deadline of a domain.
  sim::DurationNs CreditOf(Domain* domain) const;
  sim::TimeNs DeadlineOf(Domain* domain) const;

 private:
  struct SDom {
    sim::TimeNs deadline = 0;
    sim::DurationNs remain = 0;
    bool runnable = false;
    sim::EventId replenish_timer;
    // Least-recently-served stamp for slack rotation.
    uint64_t served_stamp = 0;
    // Time of the most recent period rollover, for split charging.
    sim::TimeNs last_replenish = 0;
    // Set when the period rolled over while the domain was on the CPU: its
    // running budget is stale and the kernel should re-decide.
    bool budget_stale = false;
  };

  void ScheduleReplenish(Domain* domain, SDom& sd);
  void Replenish(Domain* domain);

  Kernel* kernel_ = nullptr;
  double capacity_;
  sim::DurationNs be_quantum_;
  CreditPolicy credit_policy_;
  std::map<Domain*, SDom> sdoms_;
  uint64_t serve_counter_ = 0;
};

}  // namespace pegasus::nemesis

#endif  // PEGASUS_SRC_NEMESIS_ATROPOS_H_
