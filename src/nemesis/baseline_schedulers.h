// Baseline timesharing disciplines for the scheduling comparisons.
//
// The paper argues that conventional operating systems cannot give
// multimedia applications timely CPU: "on Unix platforms, multimedia
// applications co-exist with other applications, but they hardly run in real
// time" (§1). Benches E04/E05 quantify that against two conventional
// disciplines: quantum-driven round-robin (Unix-style timesharing without
// priorities) and preemptive static priority.
#ifndef PEGASUS_SRC_NEMESIS_BASELINE_SCHEDULERS_H_
#define PEGASUS_SRC_NEMESIS_BASELINE_SCHEDULERS_H_

#include <deque>
#include <map>
#include <string>

#include "src/nemesis/scheduler.h"

namespace pegasus::nemesis {

// Classic round-robin: a single FIFO of runnable domains, each run for a
// fixed quantum. Admission never fails; guarantees do not exist.
class RoundRobinScheduler : public Scheduler {
 public:
  explicit RoundRobinScheduler(sim::DurationNs quantum = sim::Milliseconds(10));

  std::string name() const override { return "round-robin"; }
  void Attach(Kernel* kernel) override { kernel_ = kernel; }
  bool Admit(Domain* domain) override;
  void Remove(Domain* domain) override;
  void SetRunnable(Domain* domain, bool runnable) override;
  bool UpdateQos(Domain* domain, const QosParams& qos) override;
  SchedDecision PickNext(sim::TimeNs now) override;
  SchedDecision DecisionFor(Domain* domain, sim::TimeNs now) override;
  bool ShouldPreempt(Domain* current, const SchedDecision& decision, sim::TimeNs now) override;
  void Charge(Domain* domain, const SchedDecision& decision, sim::TimeNs start,
              sim::DurationNs ran) override;
  double AdmittedUtilization() const override { return 0.0; }

 private:
  Kernel* kernel_ = nullptr;
  sim::DurationNs quantum_;
  // Runnable domains in service order; membership mirrored in state_.
  std::deque<Domain*> queue_;
  std::map<Domain*, bool> state_;  // admitted -> runnable?
  // Quantum continuation: a domain keeps the CPU across segment boundaries
  // until its quantum is spent or it blocks.
  Domain* current_ = nullptr;
  sim::DurationNs quantum_left_ = 0;
};

// Preemptive static priority with round-robin within a level. Priorities are
// assigned with SetPriority before (or after) admission; higher wins.
class PriorityScheduler : public Scheduler {
 public:
  explicit PriorityScheduler(sim::DurationNs quantum = sim::Milliseconds(10));

  void SetPriority(Domain* domain, int priority);
  int PriorityOf(Domain* domain) const;

  std::string name() const override { return "static-priority"; }
  void Attach(Kernel* kernel) override { kernel_ = kernel; }
  bool Admit(Domain* domain) override;
  void Remove(Domain* domain) override;
  void SetRunnable(Domain* domain, bool runnable) override;
  bool UpdateQos(Domain* domain, const QosParams& qos) override;
  SchedDecision PickNext(sim::TimeNs now) override;
  SchedDecision DecisionFor(Domain* domain, sim::TimeNs now) override;
  bool ShouldPreempt(Domain* current, const SchedDecision& decision, sim::TimeNs now) override;
  void Charge(Domain* domain, const SchedDecision& decision, sim::TimeNs start,
              sim::DurationNs ran) override;
  double AdmittedUtilization() const override { return 0.0; }

 private:
  struct State {
    int priority = 0;
    bool runnable = false;
    uint64_t served_stamp = 0;
  };

  Kernel* kernel_ = nullptr;
  sim::DurationNs quantum_;
  std::map<Domain*, State> state_;
  std::map<Domain*, int> preset_priorities_;
  uint64_t serve_counter_ = 0;
  Domain* current_ = nullptr;
  sim::DurationNs quantum_left_ = 0;
};

}  // namespace pegasus::nemesis

#endif  // PEGASUS_SRC_NEMESIS_BASELINE_SCHEDULERS_H_
