// The Nemesis kernel: dispatching, activations, events, interrupts, KPS.
//
// The kernel multiplexes one simulated CPU over domains according to a
// pluggable Scheduler. It implements the paper's distinctive mechanisms:
//   * activation instead of transparent resumption (§3.2) — a domain that
//     regains the CPU after losing it enters through its activation vector
//     and sees its pending events;
//   * value-less events with synchronous (processor-donating) and
//     asynchronous signalling (§3.4);
//   * Kernel-Privileged Sections (§3.5) — short non-preemptible segments
//     with interrupts masked, instead of whole modules in kernel mode;
//   * pluggable domain scheduling (§3.3) so the share+EDF discipline can be
//     compared against timesharing baselines.
#ifndef PEGASUS_SRC_NEMESIS_KERNEL_H_
#define PEGASUS_SRC_NEMESIS_KERNEL_H_

#include <deque>
#include <memory>
#include <vector>

#include "src/nemesis/domain.h"
#include "src/nemesis/events.h"
#include "src/nemesis/memory.h"
#include "src/nemesis/scheduler.h"
#include "src/sim/event_queue.h"
#include "src/sim/stats.h"

namespace pegasus::nemesis {

// Fixed overheads of kernel mechanisms, in simulated time. Tests that verify
// exact allocation arithmetic pass Zero(); benches use the defaults, which
// are in the right ballpark for early-90s RISC workstations.
struct KernelCosts {
  sim::DurationNs context_switch = sim::Microseconds(10);
  sim::DurationNs activation = sim::Microseconds(3);
  sim::DurationNs kps_enter = sim::Nanoseconds(300);
  sim::DurationNs kps_exit = sim::Nanoseconds(300);

  static KernelCosts Zero() { return KernelCosts{0, 0, 0, 0}; }
};

class Kernel {
 public:
  Kernel(sim::Simulator* sim, std::unique_ptr<Scheduler> scheduler, KernelCosts costs = {});
  ~Kernel();

  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  sim::Simulator* simulator() const { return sim_; }
  Scheduler* scheduler() const { return scheduler_.get(); }
  AddressSpace& address_space() { return address_space_; }
  const KernelCosts& costs() const { return costs_; }

  // Registers a domain. Returns false if scheduler admission rejects it.
  bool AddDomain(Domain* domain);
  // Removes a domain. If it is the one on the CPU it is descheduled first,
  // exactly as a preemption (partial segment charged, run-end cancelled) —
  // callers cannot be asked to know which domain the schedule put on the
  // CPU at departure time.
  void RemoveDomain(Domain* domain);

  // Changes a domain's QoS contract (used by the QoS manager). Returns false
  // if the scheduler finds the new contract infeasible.
  bool UpdateQos(Domain* domain, const QosParams& qos);

  // Domain models call this when work arrives for a domain from outside its
  // own execution (timer expiry, device data, job release).
  void NotifyWork(Domain* domain);

  // --- Events ---
  EventChannel* CreateChannel(Domain* source, Domain* destination, bool synchronous);
  // Signals `channel`. Must be called from the running domain's segment
  // boundary (OnRunEnd/OnActivate) or from outside any domain (devices use
  // RaiseInterrupt instead). Synchronous channels make the sender yield and
  // attempt a direct switch to the destination.
  void SendEvent(EventChannel* channel);

  // Creates an inter-domain call channel (shared queues + event pair).
  IpcChannel* CreateIpcChannel(Domain* client, Domain* server, size_t slots, size_t slot_size,
                               bool synchronous);

  // --- Interrupts ---
  // Signals `channel` from interrupt context. If the CPU is inside a
  // privileged section the delivery is deferred until the section exits; the
  // deferral time is recorded in interrupt_latency().
  void RaiseInterrupt(EventChannel* channel);

  // Starts dispatching. Idempotent.
  void Start();

  // --- Introspection ---
  Domain* running() const { return running_; }
  uint64_t context_switches() const { return context_switches_; }
  uint64_t activation_count() const { return activation_count_; }
  uint64_t preemptions() const { return preemptions_; }
  sim::DurationNs idle_time() const;
  // Raise-to-delivery latency of interrupts, ns.
  const sim::Summary& interrupt_latency() const { return interrupt_latency_; }
  const std::vector<Domain*>& domains() const { return domains_; }

  // Scheduler timers call this when their ordering changed asynchronously.
  void RequestReschedule();

 private:
  struct DeferredInterrupt {
    EventChannel* channel;
    sim::TimeNs raised_at;
  };

  void ScheduleDispatch();
  void Dispatch();
  // Deferred preemption check, run from a fresh event context.
  void RescheduleCheck();
  void BeginRun(const SchedDecision& decision, const RunRequest& request, bool pre_activated);
  // Performs the activation upcall (event delivery + activation vector).
  void Activate(Domain* domain, ActivationReason reason);
  void OnRunEnd();
  // Stops the current run immediately, charging the partial segment.
  void Preempt();
  // Re-evaluates a domain's runnability with the scheduler.
  void UpdateRunnable(Domain* domain);
  // Drains the DIB into closure invocations at activation time.
  void DeliverPendingEvents(Domain* domain);
  void PostEvent(EventChannel* channel);
  void DeliverInterrupt(EventChannel* channel, sim::TimeNs raised_at);

  sim::Simulator* sim_;
  std::unique_ptr<Scheduler> scheduler_;
  KernelCosts costs_;
  AddressSpace address_space_;
  std::vector<Domain*> domains_;
  std::vector<std::unique_ptr<EventChannel>> channels_;
  std::vector<std::unique_ptr<IpcChannel>> ipc_channels_;
  DomainId next_domain_id_ = 1;

  // --- CPU state ---
  Domain* running_ = nullptr;
  Domain* last_on_cpu_ = nullptr;
  SchedDecision current_decision_;
  RunRequest current_request_;
  sim::TimeNs run_started_ = 0;
  sim::DurationNs run_overhead_ = 0;   // switch/activation/KPS cost in this run
  sim::DurationNs run_planned_ = 0;    // segment time planned after overhead
  sim::EventId run_end_event_;
  bool dispatch_scheduled_ = false;
  bool reschedule_scheduled_ = false;
  bool in_privileged_ = false;
  Domain* direct_switch_hint_ = nullptr;
  bool started_ = false;

  std::deque<DeferredInterrupt> deferred_interrupts_;

  // --- Statistics ---
  uint64_t context_switches_ = 0;
  uint64_t activation_count_ = 0;
  uint64_t preemptions_ = 0;
  sim::TimeNs idle_since_ = 0;
  sim::DurationNs idle_accum_ = 0;
  bool idle_ = true;
  sim::Summary interrupt_latency_;
};

}  // namespace pegasus::nemesis

#endif  // PEGASUS_SRC_NEMESIS_KERNEL_H_
