// Nemesis single-address-space memory model (§3.1).
//
// All domains share one 64-bit virtual address space; privacy and protection
// come from per-domain access rights on address ranges ("stretches"), not
// from separate translations. The allocator reproduces the paper's trick for
// amortising load-time relocation: the top 32 bits of a code stretch's
// address are derived from a 32-bit hash of the code, so re-executing the
// same binary reuses the same virtual address with high probability.
#ifndef PEGASUS_SRC_NEMESIS_MEMORY_H_
#define PEGASUS_SRC_NEMESIS_MEMORY_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace pegasus::nemesis {

using VirtAddr = uint64_t;
using StretchId = uint64_t;

// Access rights a protection domain holds on a stretch.
struct AccessRights {
  bool read = false;
  bool write = false;
  bool execute = false;

  static AccessRights None() { return {}; }
  static AccessRights ReadOnly() { return {true, false, false}; }
  static AccessRights ReadWrite() { return {true, true, false}; }
  static AccessRights ReadExec() { return {true, false, true}; }
};

// A contiguous range of the single address space, with backing storage.
// Stretches are created by the AddressSpace and shared between domains by
// granting rights; the backing bytes are common to every domain that maps it
// (that is the point of the single address space).
class Stretch {
 public:
  Stretch(StretchId id, VirtAddr base, size_t size);

  StretchId id() const { return id_; }
  VirtAddr base() const { return base_; }
  size_t size() const { return size_; }
  bool Contains(VirtAddr addr, size_t len = 1) const {
    return addr >= base_ && addr + len <= base_ + size_;
  }

  // Raw access to backing bytes; rights enforcement lives in ProtectionDomain.
  uint8_t* data() { return bytes_.data(); }
  const uint8_t* data() const { return bytes_.data(); }

 private:
  StretchId id_;
  VirtAddr base_;
  size_t size_;
  std::vector<uint8_t> bytes_;
};

// The machine-wide single address space.
class AddressSpace {
 public:
  AddressSpace();

  AddressSpace(const AddressSpace&) = delete;
  AddressSpace& operator=(const AddressSpace&) = delete;

  // Allocates a stretch anywhere in the data region.
  Stretch* AllocateStretch(size_t size);

  // Allocates a stretch for the code image identified by `code_key`, placing
  // it at an address whose top 32 bits hash the key. If that slot is taken by
  // a *different* image, falls back to sequential placement (a hash
  // collision, which the paper accepts as rare). Re-allocating the same key
  // returns a stretch at the same base, modelling relocation-cache reuse.
  Stretch* AllocateCodeStretch(const std::string& code_key, size_t size);

  // True if the most recent AllocateCodeStretch call reused the hashed slot
  // (i.e. the relocation cache would have hit).
  bool last_code_placement_reused() const { return last_code_reused_; }

  bool Free(StretchId id);
  Stretch* Find(StretchId id);
  // Stretch containing `addr`, or nullptr.
  Stretch* StretchAt(VirtAddr addr);

  size_t stretch_count() const { return by_id_.size(); }

 private:
  VirtAddr next_data_addr_;
  StretchId next_id_ = 1;
  std::map<StretchId, std::unique_ptr<Stretch>> by_id_;
  // base -> id, for address lookups.
  std::map<VirtAddr, StretchId> by_base_;
  // code_key -> base of the previously assigned slot.
  std::map<std::string, VirtAddr> code_slots_;
  bool last_code_reused_ = false;
};

// A protection domain: the set of rights its holder has over the shared
// address space. In Nemesis a schedulable Domain executes inside exactly one
// protection domain, but protection domains can outlive or be shared by
// library code, so they are separate objects here.
class ProtectionDomain {
 public:
  explicit ProtectionDomain(std::string name);

  const std::string& name() const { return name_; }

  void Grant(const Stretch* s, AccessRights rights);
  void Revoke(const Stretch* s);
  AccessRights RightsOn(const Stretch* s) const;

  // Checked access. Returns false (a protection fault) when the domain lacks
  // the right or the range leaves the stretch; fault count is recorded.
  bool Read(const Stretch* s, VirtAddr addr, uint8_t* out, size_t len);
  bool Write(Stretch* s, VirtAddr addr, const uint8_t* in, size_t len);

  uint64_t faults() const { return faults_; }

 private:
  std::string name_;
  std::map<StretchId, AccessRights> rights_;
  uint64_t faults_ = 0;
};

}  // namespace pegasus::nemesis

#endif  // PEGASUS_SRC_NEMESIS_MEMORY_H_
