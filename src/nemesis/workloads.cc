#include "src/nemesis/workloads.h"

#include <algorithm>

#include "src/nemesis/kernel.h"

namespace pegasus::nemesis {

// --- PeriodicDomain ---

PeriodicDomain::PeriodicDomain(sim::Simulator* sim, std::string name, QosParams qos,
                               sim::DurationNs job_cost, sim::DurationNs job_period)
    : Domain(std::move(name), qos), sim_(sim), job_cost_(job_cost), job_period_(job_period) {}

void PeriodicDomain::OnAttached() {
  sim_->ScheduleAfter(0, [this]() { ReleaseJob(); });
}

void PeriodicDomain::ReleaseJob() {
  if (stopped_) {
    return;
  }
  ++jobs_released_;
  const sim::TimeNs release = sim_->now();
  if (current_release_ < 0) {
    current_release_ = release;
    remaining_ = job_cost_;
  } else {
    backlog_.push_back(release);
  }
  if (kernel() != nullptr) {
    kernel()->NotifyWork(this);
  }
  sim_->ScheduleAfter(job_period_, [this]() { ReleaseJob(); });
}

RunRequest PeriodicDomain::NextRun(sim::TimeNs now) {
  (void)now;
  return RunRequest{remaining_, false, false};
}

void PeriodicDomain::OnRunEnd(sim::TimeNs start, sim::DurationNs ran, bool completed) {
  (void)start;
  (void)completed;
  remaining_ -= std::min(remaining_, ran);
  if (remaining_ > 0 || current_release_ < 0) {
    return;
  }
  const sim::TimeNs now = kernel()->simulator()->now();
  const sim::TimeNs release = current_release_;
  ++jobs_completed_;
  completion_latency_.Add(static_cast<double>(now - release));
  if (now > release + job_period_) {
    ++deadline_misses_;
  }
  if (on_job_complete) {
    on_job_complete(release, now);
  }
  if (!backlog_.empty()) {
    current_release_ = backlog_.front();
    backlog_.pop_front();
    remaining_ = job_cost_;
  } else {
    current_release_ = -1;
  }
}

// --- BatchDomain ---

BatchDomain::BatchDomain(std::string name, QosParams qos, sim::DurationNs chunk)
    : Domain(std::move(name), qos), chunk_(chunk) {}

RunRequest BatchDomain::NextRun(sim::TimeNs now) {
  (void)now;
  return RunRequest{chunk_, false, false};
}

void BatchDomain::OnRunEnd(sim::TimeNs start, sim::DurationNs ran, bool completed) {
  (void)start;
  (void)completed;
  consumed_ += ran;
}

// --- ServerDomain ---

ServerDomain::ServerDomain(std::string name, QosParams qos, sim::DurationNs service_cost)
    : Domain(std::move(name), qos), service_cost_(service_cost) {}

void ServerDomain::BindChannel(IpcChannel* channel) {
  channel_ = channel;
  channel_->request_event()->set_closure(
      [this](sim::TimeNs posted_at, sim::TimeNs delivered_at) {
        (void)posted_at;
        (void)delivered_at;
        DrainRequests();
      });
}

void ServerDomain::DrainRequests() {
  while (auto req = channel_->ReceiveRequest()) {
    queue_.push_back(std::move(*req));
  }
  if (remaining_ == 0 && !queue_.empty()) {
    current_ = std::move(queue_.front());
    queue_.pop_front();
    remaining_ = service_cost_;
  }
}

RunRequest ServerDomain::NextRun(sim::TimeNs now) {
  (void)now;
  return RunRequest{remaining_, false, false};
}

void ServerDomain::OnRunEnd(sim::TimeNs start, sim::DurationNs ran, bool completed) {
  (void)start;
  (void)completed;
  if (remaining_ == 0) {
    return;
  }
  remaining_ -= std::min(remaining_, ran);
  if (remaining_ > 0) {
    return;
  }
  ++requests_served_;
  channel_->SendReply(current_);  // echo the request as the reply
  if (!queue_.empty()) {
    current_ = std::move(queue_.front());
    queue_.pop_front();
    remaining_ = service_cost_;
  }
}

// --- ClientDomain ---

ClientDomain::ClientDomain(sim::Simulator* sim, std::string name, QosParams qos,
                           sim::DurationNs call_cost, int64_t total_calls,
                           sim::DurationNs think_time, sim::DurationNs post_send_work)
    : Domain(std::move(name), qos),
      sim_(sim),
      call_cost_(call_cost),
      total_calls_(total_calls),
      think_time_(think_time),
      post_send_work_(post_send_work) {}

void ClientDomain::BindChannel(IpcChannel* channel) {
  channel_ = channel;
  channel_->reply_event()->set_closure([this](sim::TimeNs posted_at, sim::TimeNs delivered_at) {
    (void)posted_at;
    if (!waiting_reply_) {
      return;
    }
    while (channel_->ReceiveReply()) {
    }
    waiting_reply_ = false;
    ++calls_completed_;
    round_trip_.Add(static_cast<double>(delivered_at - sent_at_));
    if (think_time_ == 0) {
      MaybeStartNextCall();
    } else {
      think_elapsed_ = false;
      sim_->ScheduleAfter(think_time_, [this]() {
        think_elapsed_ = true;
        MaybeStartNextCall();
        kernel()->NotifyWork(this);
      });
    }
  });
}

void ClientDomain::OnAttached() {
  sim_->ScheduleAfter(0, [this]() {
    MaybeStartNextCall();
    kernel()->NotifyWork(this);
  });
}

void ClientDomain::MaybeStartNextCall() {
  if (calls_started_ >= total_calls_ || phase_ != Phase::kIdle || waiting_reply_ ||
      !think_elapsed_) {
    return;
  }
  ++calls_started_;
  phase_ = Phase::kPrepare;
  remaining_ = call_cost_;
}

RunRequest ClientDomain::NextRun(sim::TimeNs now) {
  (void)now;
  return RunRequest{remaining_, false, false};
}

void ClientDomain::OnRunEnd(sim::TimeNs start, sim::DurationNs ran, bool completed) {
  (void)start;
  (void)completed;
  if (remaining_ == 0) {
    return;
  }
  remaining_ -= std::min(remaining_, ran);
  if (remaining_ > 0) {
    return;
  }
  if (phase_ == Phase::kPrepare) {
    // Call prepared: ship it, then do local bookkeeping (if any) while the
    // reply is outstanding.
    waiting_reply_ = true;
    sent_at_ = kernel()->simulator()->now();
    channel_->SendRequest({0xCA, 0x11});
    if (post_send_work_ > 0) {
      phase_ = Phase::kPostSend;
      remaining_ = post_send_work_;
    } else {
      phase_ = Phase::kIdle;
      MaybeStartNextCall();
    }
    return;
  }
  if (phase_ == Phase::kPostSend) {
    phase_ = Phase::kIdle;
    MaybeStartNextCall();
  }
}

// --- DemuxDomain ---

DemuxDomain::DemuxDomain(std::string name, QosParams qos, sim::DurationNs per_packet_cost)
    : Domain(std::move(name), qos), per_packet_cost_(per_packet_cost) {}

void DemuxDomain::BindPacketChannel(EventChannel* channel) {
  channel->set_closure([this](sim::TimeNs posted_at, sim::TimeNs delivered_at) {
    (void)posted_at;
    (void)delivered_at;
    ++pending_packets_;
    if (remaining_ == 0) {
      remaining_ = per_packet_cost_;
    }
  });
}

void DemuxDomain::AddClientChannel(EventChannel* channel) { clients_.push_back(channel); }

RunRequest DemuxDomain::NextRun(sim::TimeNs now) {
  (void)now;
  return RunRequest{remaining_, false, false};
}

void DemuxDomain::OnRunEnd(sim::TimeNs start, sim::DurationNs ran, bool completed) {
  (void)start;
  (void)completed;
  if (remaining_ == 0) {
    return;
  }
  remaining_ -= std::min(remaining_, ran);
  if (remaining_ > 0) {
    return;
  }
  // Packet classified: signal the owning client and move to the next one.
  --pending_packets_;
  ++packets_processed_;
  if (!clients_.empty()) {
    kernel()->SendEvent(clients_[next_client_ % clients_.size()]);
    ++next_client_;
  }
  if (pending_packets_ > 0) {
    remaining_ = per_packet_cost_;
  }
}

// --- DriverDomain ---

DriverDomain::DriverDomain(std::string name, QosParams qos, Mode mode, sim::DurationNs unpriv_cost,
                           sim::DurationNs priv_cost)
    : Domain(std::move(name), qos), mode_(mode), unpriv_cost_(unpriv_cost), priv_cost_(priv_cost) {}

void DriverDomain::BindInterruptChannel(EventChannel* channel) {
  channel->set_closure([this](sim::TimeNs posted_at, sim::TimeNs delivered_at) {
    (void)posted_at;
    (void)delivered_at;
    ++pending_items_;
    if (phase_ == Phase::kIdle) {
      if (mode_ == Mode::kKps) {
        phase_ = Phase::kUnpriv;
        remaining_ = unpriv_cost_;
      } else {
        phase_ = Phase::kPriv;
        remaining_ = unpriv_cost_ + priv_cost_;
      }
    }
  });
}

RunRequest DriverDomain::NextRun(sim::TimeNs now) {
  (void)now;
  if (phase_ == Phase::kIdle) {
    return RunRequest{};
  }
  return RunRequest{remaining_, /*privileged=*/phase_ == Phase::kPriv, false};
}

void DriverDomain::OnRunEnd(sim::TimeNs start, sim::DurationNs ran, bool completed) {
  (void)start;
  (void)completed;
  if (phase_ == Phase::kIdle) {
    return;
  }
  remaining_ -= std::min(remaining_, ran);
  if (remaining_ > 0) {
    return;
  }
  if (mode_ == Mode::kKps && phase_ == Phase::kUnpriv) {
    // The short privileged tail of this item.
    phase_ = Phase::kPriv;
    remaining_ = priv_cost_;
    return;
  }
  // Item finished (privileged phase done).
  ++items_done_;
  --pending_items_;
  if (pending_items_ > 0) {
    if (mode_ == Mode::kKps) {
      phase_ = Phase::kUnpriv;
      remaining_ = unpriv_cost_;
    } else {
      phase_ = Phase::kPriv;
      remaining_ = unpriv_cost_ + priv_cost_;
    }
  } else {
    phase_ = Phase::kIdle;
  }
}

}  // namespace pegasus::nemesis
