// Nemesis events and inter-domain communication (§3.4).
//
// Events are value-less: they only indicate that *something* occurred.
// A closure associated with the channel at the receiving side interprets the
// occurrence (shared object updated, message arrived, time passed...), which
// is exactly how the paper hides heterogeneity from the event dispatcher.
//
// Inter-domain calls are built from a pair of message queues in shared
// memory plus a pair of event channels. A channel may be *synchronous* —
// signalling it makes the sender voluntarily give up the processor to the
// signalled domain (lowest call latency) — or *asynchronous* — the sender
// keeps the CPU (best for a demultiplexer posting to many clients).
#ifndef PEGASUS_SRC_NEMESIS_EVENTS_H_
#define PEGASUS_SRC_NEMESIS_EVENTS_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "src/nemesis/domain.h"
#include "src/nemesis/memory.h"
#include "src/sim/stats.h"

namespace pegasus::nemesis {

class Kernel;

class EventChannel {
 public:
  // The closure invoked at delivery; receives post time and delivery time.
  using Closure = std::function<void(sim::TimeNs posted_at, sim::TimeNs delivered_at)>;

  EventChannel(uint64_t id, Domain* source, Domain* destination, bool synchronous)
      : id_(id), source_(source), destination_(destination), synchronous_(synchronous) {}

  uint64_t id() const { return id_; }
  Domain* source() const { return source_; }
  Domain* destination() const { return destination_; }
  bool synchronous() const { return synchronous_; }

  void set_closure(Closure closure) { closure_ = std::move(closure); }
  const Closure& closure() const { return closure_; }

  void RecordSent() { ++sent_; }
  void RecordDelivered(sim::TimeNs posted_at, sim::TimeNs delivered_at) {
    ++delivered_;
    delivery_latency_.Add(static_cast<double>(delivered_at - posted_at));
  }

  uint64_t sent() const { return sent_; }
  uint64_t delivered() const { return delivered_; }
  // Post-to-delivery latency in nanoseconds.
  const sim::Summary& delivery_latency() const { return delivery_latency_; }

 private:
  uint64_t id_;
  Domain* source_;
  Domain* destination_;
  bool synchronous_;
  Closure closure_;
  uint64_t sent_ = 0;
  uint64_t delivered_ = 0;
  sim::Summary delivery_latency_;
};

// A bounded single-producer single-consumer message ring in a shared-memory
// stretch, one direction of an inter-domain call channel. The ring's bytes
// live in the single address space; producer and consumer access them with
// their own protection-domain rights (write for the producer, read for the
// consumer), demonstrating §3.1's sharing model.
class SharedMessageQueue {
 public:
  // `slot_size` is the maximum message payload; the queue allocates
  // slots * (4 + slot_size) bytes from `space`.
  SharedMessageQueue(AddressSpace* space, ProtectionDomain* producer, ProtectionDomain* consumer,
                     size_t slots, size_t slot_size);

  // False if the queue is full or the message exceeds the slot size.
  bool Push(const std::vector<uint8_t>& message);
  std::optional<std::vector<uint8_t>> Pop();

  size_t size() const { return count_; }
  size_t capacity() const { return slots_; }
  bool full() const { return count_ == slots_; }
  uint64_t push_failures() const { return push_failures_; }

 private:
  AddressSpace* space_;
  ProtectionDomain* producer_;
  ProtectionDomain* consumer_;
  Stretch* stretch_;
  size_t slots_;
  size_t slot_size_;
  size_t head_ = 0;  // next slot to pop
  size_t tail_ = 0;  // next slot to push
  size_t count_ = 0;
  uint64_t push_failures_ = 0;
};

// The paper's inter-domain call primitive: a pair of shared-memory message
// queues plus a pair of event channels between a client and a server domain.
class IpcChannel {
 public:
  // Created via Kernel::CreateIpcChannel.
  IpcChannel(Kernel* kernel, AddressSpace* space, Domain* client, Domain* server, size_t slots,
             size_t slot_size, bool synchronous);

  Domain* client() const { return client_; }
  Domain* server() const { return server_; }

  // Client-side: enqueue a request and signal the server.
  bool SendRequest(const std::vector<uint8_t>& message);
  // Server-side: dequeue the next request, if any.
  std::optional<std::vector<uint8_t>> ReceiveRequest();
  // Server-side: enqueue a reply and signal the client.
  bool SendReply(const std::vector<uint8_t>& message);
  // Client-side: dequeue the next reply, if any.
  std::optional<std::vector<uint8_t>> ReceiveReply();

  EventChannel* request_event() const { return request_event_; }
  EventChannel* reply_event() const { return reply_event_; }

 private:
  Kernel* kernel_;
  Domain* client_;
  Domain* server_;
  SharedMessageQueue requests_;
  SharedMessageQueue replies_;
  EventChannel* request_event_;
  EventChannel* reply_event_;
};

}  // namespace pegasus::nemesis

#endif  // PEGASUS_SRC_NEMESIS_EVENTS_H_
