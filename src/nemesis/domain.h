// Nemesis domains and the activation model (§3.2).
//
// A domain is the schedulable entity. Unlike a classical process — which is
// suspended and transparently resumed — a Nemesis domain is *deactivated*
// (state parked in its Domain Information Block) and later *activated*: the
// CPU enters at the activation vector, where typically a user-level thread
// scheduler decides what to run with full knowledge that it has the
// processor right now.
//
// Because this is a simulation, domains do not execute real instructions.
// Instead each domain is a *model* that emits run segments: the kernel asks
// "what would you do with the CPU now?" (NextRun), lets virtual time pass,
// and reports back (OnRunEnd). Segment boundaries are the points where real
// code would make kernel calls, so event sends, yields and privileged
// sections all happen there. This keeps scheduling mathematics — the thing
// the paper's claims are about — exact.
#ifndef PEGASUS_SRC_NEMESIS_DOMAIN_H_
#define PEGASUS_SRC_NEMESIS_DOMAIN_H_

#include <cstdint>
#include <deque>
#include <string>

#include "src/nemesis/memory.h"
#include "src/nemesis/qos.h"
#include "src/sim/time.h"

namespace pegasus::nemesis {

class Kernel;
class EventChannel;

using DomainId = uint64_t;

// Why a domain is being given the processor.
enum class ActivationReason {
  kAllocation,  // its guaranteed slice
  kExtraTime,   // fortuitous slack
  kEventDelivery,  // it has pending events
};

// A notification sitting in a domain's DIB awaiting its next activation.
struct PendingEvent {
  EventChannel* channel = nullptr;
  sim::TimeNs posted_at = 0;
};

// The shared kernel/domain structure of §3.2. The kernel appends events and
// bumps counters; the domain consumes events when activated.
struct DomainInfoBlock {
  bool activations_enabled = true;
  std::deque<PendingEvent> pending_events;
  uint64_t activation_count = 0;
  sim::TimeNs last_activated_at = 0;
  sim::TimeNs last_deactivated_at = 0;
};

// One run segment requested by a domain model.
struct RunRequest {
  // CPU the domain would consume in this segment; 0 means the domain has no
  // work (it is blocked awaiting events or timers).
  sim::DurationNs length = 0;
  // Kernel-privileged section: the segment runs with interrupts masked and
  // is not preemptible (§3.5). Kept short by well-behaved drivers.
  bool privileged = false;
  // The domain yields the processor voluntarily when the segment completes
  // even if it has more work ("no more work to do" from the kernel's view
  // until its next wakeup).
  bool yield_after = false;
};

class Domain {
 public:
  Domain(std::string name, QosParams qos);
  virtual ~Domain() = default;

  Domain(const Domain&) = delete;
  Domain& operator=(const Domain&) = delete;

  const std::string& name() const { return name_; }
  DomainId id() const { return id_; }
  const QosParams& qos() const { return qos_; }
  DomainInfoBlock& dib() { return dib_; }
  const DomainInfoBlock& dib() const { return dib_; }
  // The protection domain this domain's code executes in (§3.1).
  ProtectionDomain& pdom() { return pdom_; }

  // Called by the kernel when the domain joins it.
  void AttachKernel(Kernel* kernel, DomainId id);
  Kernel* kernel() const { return kernel_; }
  // Hook invoked right after the kernel attaches; models use it to schedule
  // their first job release.
  virtual void OnAttached();

  // --- Model interface (kernel-driven) ---
  // Next run segment if given the CPU at `now`. length == 0 <=> blocked.
  virtual RunRequest NextRun(sim::TimeNs now) = 0;
  // `ran` CPU consumed from the segment starting at `start`; `completed`
  // tells whether the whole requested segment ran or it was preempted.
  virtual void OnRunEnd(sim::TimeNs start, sim::DurationNs ran, bool completed) = 0;
  // Activation upcall — entry through the activation vector. Default: none.
  virtual void OnActivate(ActivationReason reason, sim::TimeNs now);
  // Hook invoked after the kernel posts an event to this domain's DIB (the
  // domain is not running then; this lets models update bookkeeping).
  virtual void OnEventPosted(EventChannel* channel, sim::TimeNs now);

  // --- Statistics maintained by the kernel ---
  sim::DurationNs cpu_guaranteed() const { return cpu_guaranteed_; }
  sim::DurationNs cpu_extra() const { return cpu_extra_; }
  sim::DurationNs cpu_total() const { return cpu_guaranteed_ + cpu_extra_; }
  void ChargeCpu(sim::DurationNs ns, bool guaranteed) {
    if (guaranteed) {
      cpu_guaranteed_ += ns;
    } else {
      cpu_extra_ += ns;
    }
  }

  // QoS updates (by the QoS manager) go through the kernel so the scheduler
  // can re-run admission; this setter is for the kernel's use.
  void set_qos(const QosParams& qos) { qos_ = qos; }

 private:
  std::string name_;
  QosParams qos_;
  DomainId id_ = 0;
  Kernel* kernel_ = nullptr;
  DomainInfoBlock dib_;
  ProtectionDomain pdom_{name_};
  sim::DurationNs cpu_guaranteed_ = 0;
  sim::DurationNs cpu_extra_ = 0;
};

}  // namespace pegasus::nemesis

#endif  // PEGASUS_SRC_NEMESIS_DOMAIN_H_
