#include "src/nemesis/threads.h"

#include <algorithm>

#include "src/nemesis/kernel.h"

namespace pegasus::nemesis {

// --- UlsDomain ---

UlsDomain::UlsDomain(sim::Simulator* sim, std::string name, QosParams qos, int n_threads,
                     sim::DurationNs compute_cost, sim::DurationNs io_time,
                     int64_t items_per_thread)
    : Domain(std::move(name), qos),
      sim_(sim),
      compute_cost_(compute_cost),
      io_time_(io_time),
      items_per_thread_(items_per_thread),
      threads_(static_cast<size_t>(n_threads)) {
  for (UThread& t : threads_) {
    t.ready = true;
    t.remaining = compute_cost_;
  }
  if (!threads_.empty()) {
    current_ = 0;
  }
}

int UlsDomain::threads_ready() const {
  int n = 0;
  for (const UThread& t : threads_) {
    n += t.ready ? 1 : 0;
  }
  return n;
}

RunRequest UlsDomain::NextRun(sim::TimeNs now) {
  (void)now;
  if (current_ < 0) {
    return RunRequest{};
  }
  return RunRequest{threads_[static_cast<size_t>(current_)].remaining, false, false};
}

void UlsDomain::OnActivate(ActivationReason reason, sim::TimeNs now) {
  (void)reason;
  (void)now;
  // Entry through the activation vector: the user-level scheduler re-decides
  // which thread to run instead of blindly resuming the last one.
  if (current_ < 0) {
    PromoteNext();
  }
}

void UlsDomain::PromoteNext() {
  if (threads_.empty()) {
    return;
  }
  const size_t n = threads_.size();
  const size_t start = current_ >= 0 ? static_cast<size_t>(current_) : 0;
  for (size_t off = 1; off <= n; ++off) {
    const size_t idx = (start + off) % n;
    if (threads_[idx].ready) {
      if (current_ != static_cast<int>(idx)) {
        ++user_switches_;
      }
      current_ = static_cast<int>(idx);
      return;
    }
  }
  current_ = -1;
}

void UlsDomain::OnRunEnd(sim::TimeNs start, sim::DurationNs ran, bool completed) {
  (void)start;
  (void)completed;
  if (current_ < 0) {
    return;
  }
  const size_t idx = static_cast<size_t>(current_);
  UThread& t = threads_[idx];
  t.remaining -= std::min(t.remaining, ran);
  if (t.remaining > 0) {
    return;
  }
  // The thread performs a blocking I/O operation. A kernel-thread system
  // would suspend the whole schedulable entity here; the user-level
  // scheduler instead switches to a ready sibling immediately.
  t.ready = false;
  t.in_io = true;
  sim_->ScheduleAfter(io_time_, [this, idx]() { CompleteIo(idx); });
  current_ = -1;
  PromoteNext();
}

void UlsDomain::CompleteIo(size_t index) {
  UThread& t = threads_[index];
  t.in_io = false;
  ++t.items_done;
  ++items_completed_;
  if (items_per_thread_ < 0 || t.items_done < items_per_thread_) {
    t.ready = true;
    t.remaining = compute_cost_;
    if (current_ < 0) {
      PromoteNext();
    }
  }
  if (kernel() != nullptr) {
    kernel()->NotifyWork(this);
  }
}

// --- IoThreadDomain ---

IoThreadDomain::IoThreadDomain(sim::Simulator* sim, std::string name, QosParams qos,
                               sim::DurationNs compute_cost, sim::DurationNs io_time,
                               int64_t total_items)
    : Domain(std::move(name), qos),
      sim_(sim),
      compute_cost_(compute_cost),
      io_time_(io_time),
      total_items_(total_items),
      remaining_(compute_cost) {}

RunRequest IoThreadDomain::NextRun(sim::TimeNs now) {
  (void)now;
  if (in_io_) {
    return RunRequest{};
  }
  return RunRequest{remaining_, false, false};
}

void IoThreadDomain::OnRunEnd(sim::TimeNs start, sim::DurationNs ran, bool completed) {
  (void)start;
  (void)completed;
  if (in_io_) {
    return;
  }
  remaining_ -= std::min(remaining_, ran);
  if (remaining_ > 0) {
    return;
  }
  in_io_ = true;  // the domain blocks: the kernel gives the CPU away
  sim_->ScheduleAfter(io_time_, [this]() {
    in_io_ = false;
    ++items_completed_;
    if (total_items_ < 0 || items_completed_ < total_items_) {
      remaining_ = compute_cost_;
    }
    if (kernel() != nullptr) {
      kernel()->NotifyWork(this);
    }
  });
}

}  // namespace pegasus::nemesis
