// User-level threading on activations, and its kernel-thread counterpart.
//
// §3.2: when a Nemesis domain is activated, its user-level thread scheduler
// decides which thread runs; when a thread blocks (e.g. on simulated I/O),
// the scheduler immediately runs a sibling *within the same CPU allocation*.
// Kernel-thread systems instead return the processor to the kernel, which
// "gives the processor which was running the blocked thread to a thread
// belonging to another process" — the application loses the remainder of its
// entitlement. Experiment E07 contrasts the two at equal total guarantees.
#ifndef PEGASUS_SRC_NEMESIS_THREADS_H_
#define PEGASUS_SRC_NEMESIS_THREADS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/nemesis/domain.h"
#include "src/sim/event_queue.h"
#include "src/sim/stats.h"

namespace pegasus::nemesis {

// A domain hosting `n_threads` user-level threads scheduled round-robin by
// an in-domain scheduler entered through the activation vector. Each thread
// repeatedly computes for `compute_cost` and then blocks on I/O for
// `io_time`; one compute+I/O pair is an "item".
class UlsDomain : public Domain {
 public:
  UlsDomain(sim::Simulator* sim, std::string name, QosParams qos, int n_threads,
            sim::DurationNs compute_cost, sim::DurationNs io_time,
            int64_t items_per_thread = -1);

  RunRequest NextRun(sim::TimeNs now) override;
  void OnRunEnd(sim::TimeNs start, sim::DurationNs ran, bool completed) override;
  void OnActivate(ActivationReason reason, sim::TimeNs now) override;

  int64_t items_completed() const { return items_completed_; }
  // Thread switches performed by the user-level scheduler (no kernel entry).
  int64_t user_switches() const { return user_switches_; }
  int threads_ready() const;

 private:
  struct UThread {
    sim::DurationNs remaining = 0;
    int64_t items_done = 0;
    bool ready = false;
    bool in_io = false;
  };

  void CompleteIo(size_t index);
  // Picks the next ready thread after `current_` (round-robin).
  void PromoteNext();

  sim::Simulator* sim_;
  sim::DurationNs compute_cost_;
  sim::DurationNs io_time_;
  int64_t items_per_thread_;
  std::vector<UThread> threads_;
  int current_ = -1;
  int64_t items_completed_ = 0;
  int64_t user_switches_ = 0;
};

// The kernel-thread baseline: one thread per domain, so blocking hands the
// CPU back to the kernel scheduler. Give each of the N domains 1/N of the
// application's guarantee to model one multi-threaded process.
class IoThreadDomain : public Domain {
 public:
  IoThreadDomain(sim::Simulator* sim, std::string name, QosParams qos,
                 sim::DurationNs compute_cost, sim::DurationNs io_time,
                 int64_t total_items = -1);

  RunRequest NextRun(sim::TimeNs now) override;
  void OnRunEnd(sim::TimeNs start, sim::DurationNs ran, bool completed) override;

  int64_t items_completed() const { return items_completed_; }

 private:
  sim::Simulator* sim_;
  sim::DurationNs compute_cost_;
  sim::DurationNs io_time_;
  int64_t total_items_;
  sim::DurationNs remaining_;
  bool in_io_ = false;
  int64_t items_completed_ = 0;
};

}  // namespace pegasus::nemesis

#endif  // PEGASUS_SRC_NEMESIS_THREADS_H_
