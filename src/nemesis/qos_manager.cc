#include "src/nemesis/qos_manager.h"

#include <algorithm>
#include <cmath>

#include "src/nemesis/kernel.h"

namespace pegasus::nemesis {

const char* GrantReasonName(GrantReason reason) {
  switch (reason) {
    case GrantReason::kContention:
      return "contention";
    case GrantReason::kReclaim:
      return "reclaim";
    case GrantReason::kRestore:
      return "restore";
  }
  return "unknown";
}

QosManagerDomain::QosManagerDomain(sim::Simulator* sim, std::string name, QosParams own_qos,
                                   Options options)
    : Domain(std::move(name), own_qos), sim_(sim), options_(options) {}

void QosManagerDomain::Register(Domain* client, double weight, QosParams requested,
                                GrantCallback on_grant) {
  ClientState st;
  st.weight = std::max(weight, 1e-6);
  st.requested = requested;
  st.granted_util = client->qos().Utilization();
  st.last_cpu_total = client->cpu_total();
  st.on_grant = std::move(on_grant);
  clients_[client] = st;
}

void QosManagerDomain::Unregister(Domain* client) { clients_.erase(client); }

double QosManagerDomain::GrantedUtilization(Domain* client) const {
  auto it = clients_.find(client);
  return it == clients_.end() ? 0.0 : it->second.granted_util;
}

void QosManagerDomain::OnAttached() {
  last_review_at_ = sim_->now();
  sim_->ScheduleAfter(options_.epoch, [this]() {
    pending_work_ = options_.review_cost;
    kernel()->NotifyWork(this);
  });
}

RunRequest QosManagerDomain::NextRun(sim::TimeNs now) {
  (void)now;
  return RunRequest{pending_work_, false, false};
}

void QosManagerDomain::OnRunEnd(sim::TimeNs start, sim::DurationNs ran, bool completed) {
  (void)start;
  (void)completed;
  if (pending_work_ == 0) {
    return;
  }
  pending_work_ -= std::min(pending_work_, ran);
  if (pending_work_ > 0) {
    return;
  }
  Review();
  sim_->ScheduleAfter(options_.epoch, [this]() {
    pending_work_ = options_.review_cost;
    kernel()->NotifyWork(this);
  });
}

void QosManagerDomain::Review() {
  ++reviews_;
  const sim::TimeNs now = sim_->now();
  const double window = static_cast<double>(std::max<sim::DurationNs>(1, now - last_review_at_));
  last_review_at_ = now;

  // Observe client behaviour over the elapsed epoch (EWMA-smoothed).
  for (auto& [client, st] : clients_) {
    const sim::DurationNs used = client->cpu_total() - st.last_cpu_total;
    st.last_cpu_total = client->cpu_total();
    const double inst = static_cast<double>(used) / window;
    st.observed_util = 0.5 * st.observed_util + 0.5 * inst;
  }

  // Each client's demand: its requested utilisation, optionally trimmed
  // towards what it has actually been using.
  std::map<Domain*, double> demand;
  std::map<Domain*, bool> trimmed;
  for (auto& [client, st] : clients_) {
    const double requested = st.requested.Utilization();
    double want = requested;
    if (options_.reclaim_unused && st.observed_util > 0.0) {
      want = std::min(want, std::max(st.observed_util * options_.reclaim_headroom, 0.01));
    }
    demand[client] = want;
    trimmed[client] = want < requested - 1e-9;
  }

  // Weighted water-filling: hand out target_utilization; clients capped at
  // their demand, surplus redistributed by weight among the unsatisfied.
  std::map<Domain*, double> grant;
  std::map<Domain*, bool> capped;
  for (auto& [client, st] : clients_) {
    (void)st;
    grant[client] = 0.0;
    capped[client] = false;
  }
  double available = options_.target_utilization;
  for (int iter = 0; iter < 16 && available > 1e-9; ++iter) {
    double weight_sum = 0.0;
    for (auto& [client, st] : clients_) {
      if (!capped[client]) {
        weight_sum += st.weight;
      }
    }
    if (weight_sum <= 0.0) {
      break;
    }
    bool any_capped = false;
    double distributed = 0.0;
    for (auto& [client, st] : clients_) {
      if (capped[client]) {
        continue;
      }
      const double fair = available * st.weight / weight_sum;
      const double headroom = demand[client] - grant[client];
      if (headroom <= fair) {
        grant[client] += std::max(0.0, headroom);
        distributed += std::max(0.0, headroom);
        capped[client] = true;
        any_capped = true;
      } else {
        grant[client] += fair;
        distributed += fair;
      }
    }
    available -= distributed;
    if (!any_capped) {
      break;
    }
  }

  // Smooth and apply — shrinking contracts first so that admission control
  // never transiently sees more than the target utilisation. Grant
  // callbacks are collected and fired only after the iteration: a callback
  // may Unregister or re-Register its client (closing or renegotiating a
  // stream), which mutates clients_.
  std::vector<std::pair<GrantCallback, GrantUpdate>> notifications;
  auto apply = [this, &notifications, &trimmed, &grant, &demand](Domain* client,
                                                                 ClientState& st, double next) {
    QosParams qos = client->qos();
    qos.period = st.requested.period;
    qos.extra_time = st.requested.extra_time;
    qos.slice = static_cast<sim::DurationNs>(next * static_cast<double>(qos.period));
    if (kernel()->UpdateQos(client, qos)) {
      const double previous = st.granted_util;
      st.granted_util = next;
      if (st.on_grant && std::abs(next - previous) > 1e-9) {
        GrantUpdate update;
        update.granted_util = next;
        update.steady_state_util = grant[client];
        // Self-limited = the water-filling satisfied the (trimmed) demand in
        // full; the binding constraint is the client's own idleness. When
        // contention squeezes the grant below even the trimmed demand, that
        // is a genuine capacity cut regardless of the trim.
        update.self_limited =
            trimmed[client] && grant[client] >= demand[client] - 1e-9;
        if (next > previous) {
          update.reason = GrantReason::kRestore;
        } else if (update.self_limited) {
          update.reason = GrantReason::kReclaim;
        } else {
          update.reason = GrantReason::kContention;
        }
        notifications.emplace_back(st.on_grant, update);
      }
    }
  };
  for (int pass = 0; pass < 2; ++pass) {
    for (auto& [client, st] : clients_) {
      const double next = st.granted_util + options_.smoothing * (grant[client] - st.granted_util);
      const bool shrinking = next <= st.granted_util;
      if ((pass == 0) == shrinking) {
        apply(client, st, next);
      }
    }
  }
  for (auto& [callback, update] : notifications) {
    callback(update);
  }
}

}  // namespace pegasus::nemesis
