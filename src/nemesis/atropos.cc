#include "src/nemesis/atropos.h"

#include <algorithm>

#include "src/nemesis/kernel.h"

namespace pegasus::nemesis {

AtroposScheduler::AtroposScheduler(double capacity, sim::DurationNs best_effort_quantum,
                                   CreditPolicy credit_policy)
    : capacity_(capacity), be_quantum_(best_effort_quantum), credit_policy_(credit_policy) {}

AtroposScheduler::~AtroposScheduler() = default;

void AtroposScheduler::Attach(Kernel* kernel) { kernel_ = kernel; }

double AtroposScheduler::AdmittedUtilization() const {
  double total = 0.0;
  for (const auto& [d, sd] : sdoms_) {
    (void)sd;
    total += d->qos().Utilization();
  }
  return total;
}

bool AtroposScheduler::Admit(Domain* domain) {
  if (domain->qos().slice < 0 || domain->qos().period <= 0) {
    return false;
  }
  if (AdmittedUtilization() + domain->qos().Utilization() > capacity_ + 1e-9) {
    return false;
  }
  SDom sd;
  sd.deadline = kernel_->simulator()->now() + domain->qos().period;
  sd.remain = domain->qos().slice;
  auto [it, inserted] = sdoms_.emplace(domain, sd);
  if (!inserted) {
    return false;
  }
  if (domain->qos().slice > 0) {
    ScheduleReplenish(domain, it->second);
  }
  return true;
}

void AtroposScheduler::Remove(Domain* domain) {
  auto it = sdoms_.find(domain);
  if (it == sdoms_.end()) {
    return;
  }
  kernel_->simulator()->Cancel(it->second.replenish_timer);
  sdoms_.erase(it);
}

void AtroposScheduler::SetRunnable(Domain* domain, bool runnable) {
  auto it = sdoms_.find(domain);
  if (it != sdoms_.end()) {
    it->second.runnable = runnable;
  }
}

bool AtroposScheduler::UpdateQos(Domain* domain, const QosParams& qos) {
  auto it = sdoms_.find(domain);
  if (it == sdoms_.end()) {
    return false;
  }
  if (qos.slice < 0 || qos.period <= 0) {
    return false;
  }
  const double other = AdmittedUtilization() - domain->qos().Utilization();
  if (other + qos.Utilization() > capacity_ + 1e-9) {
    return false;
  }
  SDom& sd = it->second;
  // The new contract takes full effect at the next period boundary; the rest
  // of the current period keeps (clamped) credit so guarantees never jump
  // retroactively.
  sd.remain = std::min(sd.remain, qos.slice);
  kernel_->simulator()->Cancel(sd.replenish_timer);
  sd.replenish_timer = sim::EventId{};
  // Note: Domain::set_qos is applied by the kernel after this returns; use
  // the new period for the next replenishment by scheduling from `qos` here.
  if (qos.slice > 0) {
    Domain* d = domain;
    sd.replenish_timer =
        kernel_->simulator()->ScheduleAt(sd.deadline, [this, d]() { Replenish(d); });
  }
  return true;
}

void AtroposScheduler::ScheduleReplenish(Domain* domain, SDom& sd) {
  sd.replenish_timer =
      kernel_->simulator()->ScheduleAt(sd.deadline, [this, domain]() { Replenish(domain); });
}

void AtroposScheduler::Replenish(Domain* domain) {
  auto it = sdoms_.find(domain);
  if (it == sdoms_.end()) {
    return;
  }
  SDom& sd = it->second;
  const sim::TimeNs now = kernel_->simulator()->now();
  sd.remain = domain->qos().slice;
  sd.deadline += domain->qos().period;
  // Guard against a deadline that fell behind (e.g. after a QoS shrink).
  while (sd.deadline <= now) {
    sd.deadline += domain->qos().period;
  }
  sd.last_replenish = now;
  if (kernel_->running() == domain) {
    sd.budget_stale = true;
  }
  if (domain->qos().slice > 0) {
    ScheduleReplenish(domain, sd);
  }
  kernel_->RequestReschedule();
}

SchedDecision AtroposScheduler::PickNext(sim::TimeNs now) {
  (void)now;
  // EDF among runnable domains with credit (or LRS rotation in the ablated
  // configuration).
  Domain* best = nullptr;
  const SDom* best_sd = nullptr;
  for (const auto& [d, sd] : sdoms_) {
    if (!sd.runnable || sd.remain <= 0) {
      continue;
    }
    const bool better =
        best == nullptr || (credit_policy_ == CreditPolicy::kEdf
                                ? sd.deadline < best_sd->deadline
                                : sd.served_stamp < best_sd->served_stamp);
    if (better) {
      best = d;
      best_sd = &sd;
    }
  }
  if (best != nullptr) {
    return SchedDecision{best, best_sd->remain, ActivationReason::kAllocation, true};
  }
  // Slack: least-recently-served runnable domain that wants extra time.
  for (const auto& [d, sd] : sdoms_) {
    if (!sd.runnable || !d->qos().extra_time) {
      continue;
    }
    if (best == nullptr || sd.served_stamp < best_sd->served_stamp) {
      best = d;
      best_sd = &sd;
    }
  }
  if (best != nullptr) {
    return SchedDecision{best, be_quantum_, ActivationReason::kExtraTime, false};
  }
  return SchedDecision{};
}

SchedDecision AtroposScheduler::DecisionFor(Domain* domain, sim::TimeNs now) {
  (void)now;
  auto it = sdoms_.find(domain);
  if (it == sdoms_.end() || !it->second.runnable) {
    return SchedDecision{};
  }
  const SDom& sd = it->second;
  if (sd.remain > 0) {
    return SchedDecision{domain, sd.remain, ActivationReason::kAllocation, true};
  }
  if (domain->qos().extra_time) {
    return SchedDecision{domain, be_quantum_, ActivationReason::kExtraTime, false};
  }
  return SchedDecision{};
}

bool AtroposScheduler::ShouldPreempt(Domain* current, const SchedDecision& decision,
                                     sim::TimeNs now) {
  (void)now;
  auto cur_it = sdoms_.find(current);
  if (cur_it == sdoms_.end()) {
    return true;
  }
  const SDom& cur = cur_it->second;
  if (cur.budget_stale) {
    // The current domain's own period rolled over mid-run; re-decide with a
    // fresh budget (the kernel will usually re-pick the same domain).
    return true;
  }
  if (decision.guaranteed) {
    if (credit_policy_ == CreditPolicy::kRoundRobin) {
      return false;  // ablation: no deadline ordering among credit holders
    }
    for (const auto& [d, sd] : sdoms_) {
      if (d == current || !sd.runnable || sd.remain <= 0) {
        continue;
      }
      if (sd.deadline < cur.deadline) {
        return true;
      }
    }
    return false;
  }
  // Extra-time run: any credited runnable domain preempts it.
  for (const auto& [d, sd] : sdoms_) {
    if (sd.runnable && sd.remain > 0 && d->qos().slice > 0) {
      return true;
    }
  }
  return false;
}

void AtroposScheduler::Charge(Domain* domain, const SchedDecision& decision, sim::TimeNs start,
                              sim::DurationNs ran) {
  auto it = sdoms_.find(domain);
  if (it == sdoms_.end()) {
    return;
  }
  SDom& sd = it->second;
  sd.served_stamp = ++serve_counter_;
  sd.budget_stale = false;
  if (!decision.guaranteed) {
    return;
  }
  sim::DurationNs debit = ran;
  if (sd.last_replenish > start) {
    // The period rolled over mid-run: only the part after the replenishment
    // counts against the fresh slice (the earlier part consumed the previous
    // period's credit, which has already been discarded).
    debit = std::max<sim::DurationNs>(0, start + ran - sd.last_replenish);
  }
  sd.remain = std::max<sim::DurationNs>(0, sd.remain - debit);
}

sim::DurationNs AtroposScheduler::CreditOf(Domain* domain) const {
  auto it = sdoms_.find(domain);
  return it == sdoms_.end() ? 0 : it->second.remain;
}

sim::TimeNs AtroposScheduler::DeadlineOf(Domain* domain) const {
  auto it = sdoms_.find(domain);
  return it == sdoms_.end() ? 0 : it->second.deadline;
}

}  // namespace pegasus::nemesis
