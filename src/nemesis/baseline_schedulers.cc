#include "src/nemesis/baseline_schedulers.h"

#include <algorithm>

namespace pegasus::nemesis {

RoundRobinScheduler::RoundRobinScheduler(sim::DurationNs quantum) : quantum_(quantum) {}

bool RoundRobinScheduler::Admit(Domain* domain) {
  state_[domain] = false;
  return true;
}

void RoundRobinScheduler::Remove(Domain* domain) {
  state_.erase(domain);
  queue_.erase(std::remove(queue_.begin(), queue_.end(), domain), queue_.end());
  if (current_ == domain) {
    current_ = nullptr;
  }
}

void RoundRobinScheduler::SetRunnable(Domain* domain, bool runnable) {
  auto it = state_.find(domain);
  if (it == state_.end() || it->second == runnable) {
    return;
  }
  it->second = runnable;
  if (runnable) {
    queue_.push_back(domain);
  } else {
    queue_.erase(std::remove(queue_.begin(), queue_.end(), domain), queue_.end());
    if (current_ == domain) {
      current_ = nullptr;  // blocking forfeits the rest of the quantum
    }
  }
}

bool RoundRobinScheduler::UpdateQos(Domain* domain, const QosParams& qos) {
  (void)domain;
  (void)qos;
  return true;  // timesharing ignores contracts
}

SchedDecision RoundRobinScheduler::PickNext(sim::TimeNs now) {
  (void)now;
  // Continue the current domain through segment boundaries until its quantum
  // is spent or it blocked.
  if (current_ != nullptr && quantum_left_ > 0) {
    auto it = state_.find(current_);
    if (it != state_.end() && it->second) {
      return SchedDecision{current_, quantum_left_, ActivationReason::kAllocation, false};
    }
    current_ = nullptr;
  }
  if (queue_.empty()) {
    current_ = nullptr;
    return SchedDecision{};
  }
  Domain* d = queue_.front();
  // Rotate at decision time so a quantum expiry naturally moves on.
  queue_.pop_front();
  queue_.push_back(d);
  current_ = d;
  quantum_left_ = quantum_;
  return SchedDecision{d, quantum_left_, ActivationReason::kAllocation, false};
}

SchedDecision RoundRobinScheduler::DecisionFor(Domain* domain, sim::TimeNs now) {
  (void)now;
  // No direct-switch shortcut in the timesharing baseline: everyone waits
  // their turn in the queue.
  (void)domain;
  return SchedDecision{};
}

bool RoundRobinScheduler::ShouldPreempt(Domain* current, const SchedDecision& decision,
                                        sim::TimeNs now) {
  (void)current;
  (void)decision;
  (void)now;
  return false;  // purely quantum-driven
}

void RoundRobinScheduler::Charge(Domain* domain, const SchedDecision& decision, sim::TimeNs start,
                                 sim::DurationNs ran) {
  (void)decision;
  (void)start;
  if (domain == current_) {
    quantum_left_ -= std::min(quantum_left_, ran);
    if (quantum_left_ == 0) {
      current_ = nullptr;
    }
  }
}

PriorityScheduler::PriorityScheduler(sim::DurationNs quantum) : quantum_(quantum) {}

void PriorityScheduler::SetPriority(Domain* domain, int priority) {
  preset_priorities_[domain] = priority;
  auto it = state_.find(domain);
  if (it != state_.end()) {
    it->second.priority = priority;
  }
}

int PriorityScheduler::PriorityOf(Domain* domain) const {
  auto it = state_.find(domain);
  if (it != state_.end()) {
    return it->second.priority;
  }
  auto pre = preset_priorities_.find(domain);
  return pre == preset_priorities_.end() ? 0 : pre->second;
}

bool PriorityScheduler::Admit(Domain* domain) {
  State st;
  auto pre = preset_priorities_.find(domain);
  if (pre != preset_priorities_.end()) {
    st.priority = pre->second;
  }
  state_[domain] = st;
  return true;
}

void PriorityScheduler::Remove(Domain* domain) {
  state_.erase(domain);
  if (current_ == domain) {
    current_ = nullptr;
  }
}

void PriorityScheduler::SetRunnable(Domain* domain, bool runnable) {
  auto it = state_.find(domain);
  if (it != state_.end()) {
    it->second.runnable = runnable;
    if (!runnable && current_ == domain) {
      current_ = nullptr;
    }
  }
}

bool PriorityScheduler::UpdateQos(Domain* domain, const QosParams& qos) {
  (void)domain;
  (void)qos;
  return true;
}

SchedDecision PriorityScheduler::PickNext(sim::TimeNs now) {
  (void)now;
  Domain* best = nullptr;
  const State* best_st = nullptr;
  for (const auto& [d, st] : state_) {
    if (!st.runnable) {
      continue;
    }
    if (best == nullptr || st.priority > best_st->priority ||
        (st.priority == best_st->priority && st.served_stamp < best_st->served_stamp)) {
      best = d;
      best_st = &st;
    }
  }
  if (best == nullptr) {
    current_ = nullptr;
    return SchedDecision{};
  }
  // Quantum continuation within a priority level.
  if (current_ != nullptr && quantum_left_ > 0) {
    auto it = state_.find(current_);
    if (it != state_.end() && it->second.runnable && it->second.priority >= best_st->priority) {
      return SchedDecision{current_, quantum_left_, ActivationReason::kAllocation, false};
    }
  }
  current_ = best;
  quantum_left_ = quantum_;
  return SchedDecision{best, quantum_left_, ActivationReason::kAllocation, false};
}

SchedDecision PriorityScheduler::DecisionFor(Domain* domain, sim::TimeNs now) {
  (void)now;
  (void)domain;
  return SchedDecision{};
}

bool PriorityScheduler::ShouldPreempt(Domain* current, const SchedDecision& decision,
                                      sim::TimeNs now) {
  (void)decision;
  (void)now;
  const int cur_prio = PriorityOf(current);
  for (const auto& [d, st] : state_) {
    if (d != current && st.runnable && st.priority > cur_prio) {
      return true;
    }
  }
  return false;
}

void PriorityScheduler::Charge(Domain* domain, const SchedDecision& decision, sim::TimeNs start,
                               sim::DurationNs ran) {
  (void)decision;
  (void)start;
  auto it = state_.find(domain);
  if (it != state_.end()) {
    it->second.served_stamp = ++serve_counter_;
  }
  if (domain == current_) {
    quantum_left_ -= std::min(quantum_left_, ran);
    if (quantum_left_ == 0) {
      current_ = nullptr;
    }
  }
}

}  // namespace pegasus::nemesis
