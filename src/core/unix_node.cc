#include "src/core/unix_node.h"

namespace pegasus::core {

UnixNode::UnixNode(atm::Network* network, atm::Switch* sw, int port, const std::string& name)
    : name_(name),
      endpoint_(network->AddEndpoint(name, sw, port, 155'000'000)),
      transport_(endpoint_),
      rpc_server_(sw->simulator(), &transport_),
      name_space_(name),
      sim_(sw->simulator()) {}

void UnixNode::Export(const std::string& path, naming::Invocable* object) {
  rpc_server_.ExportObject(path, object);
  naming::Invocable* target = object;
  sim::Simulator* sim = sim_;
  name_space_.Bind(path, naming::ObjectHandle(
                             naming::ObjectRef{reinterpret_cast<uint64_t>(object)},
                             [sim, target](naming::ObjectRef) {
                               return std::make_shared<naming::LocalPath>(sim, target);
                             }));
}

void UnixNode::ServeRpc(atm::Vci request_vci, atm::Vci reply_vci) {
  rpc_server_.Serve(request_vci, reply_vci);
}

}  // namespace pegasus::core
